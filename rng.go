package repro

import (
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// roundRNG drives per-round client sampling for Train/TrainWith.
type roundRNG struct {
	rng *tensor.RNG
}

func newRoundRNG(seed uint64) *roundRNG {
	return &roundRNG{rng: tensor.NewRNG(seed)}
}

// sample picks k distinct users' datasets (all of them when k exceeds the
// population).
func (r *roundRNG) sample(fed *data.Federated, k int) [][]nn.Example {
	if k <= 0 || k > len(fed.Users) {
		k = len(fed.Users)
	}
	perm := r.rng.Perm(len(fed.Users))
	out := make([][]nn.Example, k)
	for i := 0; i < k; i++ {
		out[i] = fed.Users[perm[i]]
	}
	return out
}
