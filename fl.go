// Package repro is a from-scratch Go reproduction of "Towards Federated
// Learning at Scale: System Design" (Bonawitz et al., MLSys 2019): the
// synchronous FL protocol, the actor-based server (Coordinator / Selector /
// Master Aggregator / Aggregator), the on-device runtime, pace steering,
// Secure Aggregation, the analytics layer, and the model engineer workflow.
//
// This root package is the public API surface. Three levels of use:
//
//   - Train: run Federated Averaging in-process over a per-user dataset
//     (the algorithmic core, no servers).
//   - Simulate: run the discrete-event fleet simulation behind the paper's
//     operational figures (diurnal participation, drop-out, traffic).
//   - NewServer / NewDeviceClient: run the real protocol — actor server on
//     one side, device runtimes on the other — over in-memory or TCP
//     transports.
//
// See examples/ for runnable programs and DESIGN.md for the system map.
package repro

import (
	"time"

	"repro/internal/attest"
	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/fedanalytics"
	"repro/internal/fedavg"
	"repro/internal/fleet"
	"repro/internal/flserver"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/population"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tasks"
	"repro/internal/transport"
)

// Re-exported core types. The internal packages stay the implementation;
// these aliases are the supported names.
type (
	// ModelSpec describes a model architecture (logistic, MLP, RNN LM).
	ModelSpec = nn.Spec
	// Model is a trainable model with a flat parameter vector.
	Model = nn.Model
	// Example is one training example.
	Example = nn.Example
	// Metrics summarizes an evaluation.
	Metrics = nn.Metrics
	// Federated is a per-user dataset partition.
	Federated = data.Federated
	// TaskConfig is the model-engineer task configuration (Sec. 7).
	TaskConfig = plan.Config
	// Plan is a generated FL plan.
	Plan = plan.Plan
	// ClientConfig is the on-device training configuration.
	ClientConfig = fedavg.ClientConfig
	// Trainer runs the FedAvg loop in-process.
	Trainer = fedavg.Trainer
	// RoundResult reports one training round.
	RoundResult = fedavg.RoundResult
	// SimConfig configures the fleet simulation.
	SimConfig = sim.Config
	// SimResults is the fleet simulation output.
	SimResults = sim.Results
	// PopulationConfig parametrizes the simulated fleet.
	PopulationConfig = population.Config
	// ServerConfig configures the actor-based FL server.
	ServerConfig = flserver.Config
	// Server is the FL server for one population.
	Server = flserver.Server
	// FleetConfig configures the multi-population fleet gateway.
	FleetConfig = fleet.Config
	// Fleet serves many FL populations over one shared Selector layer.
	Fleet = fleet.Fleet
	// PopulationSpec registers one FL population with a Fleet.
	PopulationSpec = fleet.PopulationSpec
	// FleetPopulationStats bundles one population's round and selector
	// progress within a Fleet.
	FleetPopulationStats = fleet.PopulationStats
	// TaskState is an FL task's lifecycle state (Active/Paused/Retired).
	TaskState = tasks.State
	// TaskPolicy is a task's scheduling policy: weighted round-robin
	// weight, eval cadence, deployment gates.
	TaskPolicy = tasks.Policy
	// TaskStats is one task's cumulative lifecycle record.
	TaskStats = tasks.Stats
	// DeviceClient drives one device through the protocol.
	DeviceClient = flserver.DeviceClient
	// DeviceRuntime executes FL plans on a device.
	DeviceRuntime = device.Runtime
	// Checkpoint is serialized model state.
	Checkpoint = checkpoint.Checkpoint
)

// Model kinds for ModelSpec.
const (
	KindLogistic = nn.KindLogistic
	KindMLP      = nn.KindMLP
	KindRNNLM    = nn.KindRNNLM
)

// Task types for TaskConfig.Type.
const (
	TaskTrain = plan.TaskTrain
	TaskEval  = plan.TaskEval
)

// Task lifecycle states. Tasks are submitted onto live populations with
// Server.SubmitTask / Fleet.SubmitTask, scheduled per their TaskPolicy,
// and paused, resumed, or retired at runtime; per-task progress is
// reported by TaskStats.
const (
	TaskActive  = tasks.Active
	TaskPaused  = tasks.Paused
	TaskRetired = tasks.Retired
)

// GeneratePlan builds a validated FL plan from a task configuration,
// applying the paper's defaults (130% over-selection, quantized update
// encoding, …).
func GeneratePlan(cfg TaskConfig) (*Plan, error) { return plan.Generate(cfg) }

// NewTrainer builds an in-process FedAvg trainer with a freshly initialized
// global model.
func NewTrainer(spec ModelSpec, client ClientConfig, seed uint64) (*Trainer, error) {
	return fedavg.NewTrainer(spec, client, seed)
}

// Train runs rounds of Federated Averaging with devicesPerRound uniformly
// sampled users per round, returning the trainer (holding the global
// model) and the final test metrics.
func Train(spec ModelSpec, fed *Federated, client ClientConfig, rounds, devicesPerRound int, seed uint64) (*Trainer, Metrics, error) {
	tr, err := fedavg.NewTrainer(spec, client, seed)
	if err != nil {
		return nil, Metrics{}, err
	}
	if err := TrainWith(tr, fed, rounds, devicesPerRound, seed+1); err != nil {
		return nil, Metrics{}, err
	}
	return tr, tr.Evaluate(fed.Test), nil
}

// TrainWith continues training an existing trainer for more rounds.
func TrainWith(tr *Trainer, fed *Federated, rounds, devicesPerRound int, seed uint64) error {
	rng := newRoundRNG(seed)
	for r := 0; r < rounds; r++ {
		sel := rng.sample(fed, devicesPerRound)
		if _, err := tr.Round(sel); err != nil {
			return err
		}
	}
	return nil
}

// Simulate runs the discrete-event fleet simulation (Figs. 5–9, Table 1).
func Simulate(cfg SimConfig) (*SimResults, error) { return sim.Run(cfg) }

// NewServer builds the actor-based FL server for one population.
func NewServer(cfg ServerConfig) (*Server, error) { return flserver.New(cfg) }

// NewFleet builds the multi-population fleet gateway (Sec. 4.2): one
// device-facing process whose shared Selector layer serves every
// registered FL population, with one Coordinator per population under a
// shared locking service. Populations are added with Fleet.Register and
// removed with Fleet.Deregister at runtime.
func NewFleet(cfg FleetConfig) (*Fleet, error) { return fleet.New(cfg) }

// NewMemStorage returns in-memory checkpoint/metrics storage.
func NewMemStorage() storage.Store { return storage.NewMem() }

// NewFileStorage returns file-backed checkpoint storage rooted at dir.
func NewFileStorage(dir string) (storage.Store, error) { return storage.NewFile(dir) }

// NewMemNetwork returns an in-memory transport network for in-process
// deployments.
func NewMemNetwork() *transport.MemNetwork { return transport.NewMemNetwork() }

// ListenTCP / DialTCP expose the TCP transport for real deployments.
func ListenTCP(addr string) (transport.Listener, error) { return transport.ListenTCP(addr) }

// DialTCP connects a device to a TCP FL server.
func DialTCP(addr string) (transport.Conn, error) { return transport.DialTCP(addr) }

// NewDeviceRuntime builds an on-device FL runtime.
func NewDeviceRuntime(deviceID string, version int, seed uint64) *DeviceRuntime {
	return device.NewRuntime(deviceID, version, nil, seed)
}

// NewExampleStore returns the bounded, expiring example store applications
// register with the runtime.
func NewExampleStore(name string, maxEntries int, expiration time.Duration) (*device.MemStore, error) {
	return device.NewMemStore(name, maxEntries, expiration)
}

// NewPaceSteering returns pace steering tuned for the given round cadence.
func NewPaceSteering(roundPeriod time.Duration) *pacing.Steering { return pacing.New(roundPeriod) }

// NewAttestationVerifier returns the server-side attestation check for a
// platform master secret.
func NewAttestationVerifier(master []byte) *attest.Verifier { return attest.NewVerifier(master) }

// NewGenuineDevice returns device-side attestation state for a genuine
// device.
func NewGenuineDevice(master []byte, deviceID string) *attest.Device {
	return attest.NewGenuineDevice(master, deviceID)
}

// MarkovLM, Blobs and Ranking generate the synthetic federated datasets.
func MarkovLM(cfg data.LMConfig) (*Federated, error)     { return data.MarkovLM(cfg) }
func Blobs(cfg data.BlobsConfig) (*Federated, error)     { return data.Blobs(cfg) }
func Ranking(cfg data.RankingConfig) (*Federated, error) { return data.Ranking(cfg) }

// Dataset config aliases.
type (
	// LMConfig configures the next-word corpus.
	LMConfig = data.LMConfig
	// BlobsConfig configures the classification dataset.
	BlobsConfig = data.BlobsConfig
	// RankingConfig configures the item-ranking dataset.
	RankingConfig = data.RankingConfig
)

// AnalyticsQuery is a Federated Analytics histogram query (Sec. 11,
// Federated Computation).
type AnalyticsQuery = fedanalytics.Query

// TokenHistogram counts token occurrences across device corpora.
func TokenHistogram(vocab int) AnalyticsQuery { return fedanalytics.TokenHistogram(vocab) }

// LabelHistogram counts examples per class label across devices.
func LabelHistogram(classes int) AnalyticsQuery { return fedanalytics.LabelHistogram(classes) }

// AnalyticsVector computes one device's local contribution for a query.
func AnalyticsVector(q AnalyticsQuery, examples []Example) ([]float64, error) {
	return fedanalytics.DeviceVector(q, examples)
}

// AggregateAnalytics sums per-device vectors; with secure=true the sum is
// computed through Secure Aggregation groups of at least groupSize, so the
// server never sees an individual device's counts.
func AggregateAnalytics(vectors map[int][]float64, bins int, secure bool, groupSize int) ([]float64, error) {
	return fedanalytics.Aggregate(vectors, bins, secure, groupSize)
}
