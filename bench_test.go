// Benchmarks regenerating the paper's tables and figures (one benchmark per
// table/figure; see DESIGN.md §4 for the index) plus the ablations of
// DESIGN.md §6. Run:
//
//	go test -bench=. -benchmem
//
// Each figure benchmark reports figure-shape metrics via b.ReportMetric so
// the bench output doubles as a compact reproduction record.
package repro_test

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/fedavg"
	"repro/internal/fleet"
	"repro/internal/flserver"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/secagg"
	"repro/internal/shard"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tensor"
)

const (
	benchDays   = 1
	benchPop    = 8000
	benchTarget = 100
)

// --- Figure/table benchmarks ---

func BenchmarkFig6Diurnal(b *testing.B) {
	// The fleet-1M case is feasible because population.Sample walks a
	// partial Fisher–Yates: per-round selection cost is O(devices visited),
	// so a million-device fleet simulates a full day without timing out.
	for _, pop := range []int{benchPop, 1_000_000} {
		b.Run(fmt.Sprintf("fleet-%d", pop), func(b *testing.B) {
			var swing, corr float64
			for i := 0; i < b.N; i++ {
				r, err := experiments.Fig6(uint64(i+1), benchDays, pop, benchTarget)
				if err != nil {
					b.Fatal(err)
				}
				swing, corr = r.SwingRatio, r.Correlation
			}
			b.ReportMetric(swing, "peak/trough")
			b.ReportMetric(corr, "avail-corr")
		})
	}
}

func BenchmarkFig7Outcomes(b *testing.B) {
	var day, night float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(uint64(i+1), benchDays, benchPop, benchTarget)
		if err != nil {
			b.Fatal(err)
		}
		day, night = r.DayDropRate, r.NightDropRate
	}
	b.ReportMetric(100*day, "day-drop-%")
	b.ReportMetric(100*night, "night-drop-%")
}

func BenchmarkFig8Timing(b *testing.B) {
	var runP50, partP50 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(uint64(i+1), benchDays, benchPop, benchTarget)
		if err != nil {
			b.Fatal(err)
		}
		runP50, partP50 = r.RunTimeP50, r.ParticipationP50
	}
	b.ReportMetric(runP50, "round-P50-s")
	b.ReportMetric(partP50, "part-P50-s")
}

func BenchmarkFig9Traffic(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(uint64(i+1), benchDays, benchPop, benchTarget)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Ratio
	}
	b.ReportMetric(ratio, "down/up")
}

func BenchmarkTable1Sessions(b *testing.B) {
	var success float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(uint64(i+1), benchDays, benchPop, benchTarget)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) > 0 {
			success = r.Rows[0].Percent
		}
	}
	b.ReportMetric(success, "success-%")
}

func BenchmarkNextWordConvergence(b *testing.B) {
	var fed, central, bigram float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.NextWord(experiments.NextWordConfig{
			Users: 60, SentencesPer: 20, SentenceLen: 6, Vocab: 16,
			Rounds: 30, DevicesPer: 15, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		fed, central, bigram = r.FederatedRNN, r.CentralizedRNN, r.Bigram
	}
	b.ReportMetric(fed, "fed-recall")
	b.ReportMetric(central, "central-recall")
	b.ReportMetric(bigram, "bigram-recall")
}

func BenchmarkKSweep(b *testing.B) {
	var accLow, accMid, accHigh float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.KSweep([]int{1, 20, 200}, 5, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		accLow, accMid, accHigh = r.Accuracies[0], r.Accuracies[1], r.Accuracies[2]
	}
	b.ReportMetric(accLow, "acc-K1")
	b.ReportMetric(accMid, "acc-K20")
	b.ReportMetric(accHigh, "acc-K200")
}

func BenchmarkOverSelection(b *testing.B) {
	var at100, at130 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.OverSelect([]float64{1.0, 1.3}, []float64{0.10}, 100, 1000, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		at100, at130 = r.Completion[0][0], r.Completion[0][1]
	}
	b.ReportMetric(at100, "complete@100%")
	b.ReportMetric(at130, "complete@130%")
}

func BenchmarkSecAggQuadratic(b *testing.B) {
	cases := []struct {
		n, dim   int
		dropRate float64
	}{
		{4, 128, 0}, {8, 128, 0}, {16, 128, 0}, {32, 128, 0}, {64, 128, 0}, {128, 128, 0},
		// Large vectors stress the mask-expansion path: the streaming PRG
		// must hold per-mask transients at O(chunk), not O(dim).
		{32, 4096, 0}, {128, 4096, 0},
		// The dropout axis: each dropped device forces a Shamir
		// reconstruction of its pairwise masking key at unmask time, so
		// recovery cost scales with dropRate × n.
		{32, 128, 0.1}, {32, 128, 0.25},
		{64, 128, 0.1}, {64, 128, 0.25},
		{128, 128, 0.1}, {128, 128, 0.25},
	}
	for _, bc := range cases {
		bc := bc
		name := fmt.Sprintf("group-%d", bc.n)
		if bc.dim != 128 {
			name = fmt.Sprintf("group-%d-dim-%d", bc.n, bc.dim)
		}
		if bc.dropRate > 0 {
			name = fmt.Sprintf("%s-drop-%d%%", name, int(bc.dropRate*100))
		}
		b.Run(name, func(b *testing.B) {
			cfg := secagg.Config{N: bc.n, T: bc.n/2 + 1, VectorLen: bc.dim}
			inputs := make(map[int][]float64, bc.n)
			for id := 1; id <= bc.n; id++ {
				v := make([]float64, bc.dim)
				for j := range v {
					v[j] = float64(id + j)
				}
				inputs[id] = v
			}
			var sched secagg.Schedule
			switch {
			case bc.dropRate > 0:
				sched = sim.SecAggChurn(bc.n, cfg.T, sim.ChurnConfig{DropRate: bc.dropRate}, tensor.NewRNG(uint64(bc.n)))
			case bc.n >= 3:
				sched.DropAfterShare = []int{1}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := secagg.RunSchedule(cfg, inputs, sched); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRoundThroughput measures the round fan-out/ingest pipeline
// (Configuration sends + wire codec + Reporting decode-and-accumulate at
// the edge) for K devices reporting dim-sized updates, over both
// transports and both uplink encodings (the plan.Server.ReportEncoding
// knob: float64 ships 8 bytes/param, quant8 1 byte/param and is
// dequantized straight into the accumulator stripes). Run with -benchmem:
// B/op is dominated by the wire path. The plan-marshals/round metric
// asserts Configuration marshals the plan O(versions), not O(devices).
// The bare "<transport>/K-<k>/dim-<dim>" names (no encoding suffix) keep
// the float64 cells comparable against the earlier baselines in
// BENCH_roundtput.json.
func BenchmarkRoundThroughput(b *testing.B) {
	for _, tr := range []struct {
		name string
		tcp  bool
	}{{"mem", false}, {"tcp", true}} {
		for _, k := range []int{64, 256, 1024} {
			for _, dim := range []int{4096, 65536} {
				for _, enc := range []struct {
					name string
					e    checkpoint.Encoding
				}{{"", checkpoint.EncodingFloat64}, {"/quant8", checkpoint.EncodingQuant8}} {
					b.Run(fmt.Sprintf("%s/K-%d/dim-%d%s", tr.name, k, dim, enc.name), func(b *testing.B) {
						b.ReportAllocs()
						var st flserver.BenchRoundStats
						for i := 0; i < b.N; i++ {
							var err error
							st, err = flserver.RunBenchRound(flserver.BenchRoundConfig{
								Devices: k, Dim: dim, TCP: tr.tcp, Encoding: enc.e,
							})
							if err != nil {
								b.Fatal(err)
							}
							if st.Completed < k {
								b.Fatalf("completed %d/%d devices", st.Completed, k)
							}
						}
						b.ReportMetric(float64(st.PlanMarshals), "plan-marshals/round")
					})
				}
			}
		}
	}
}

// BenchmarkMultiPopulation drives ONE fleet gateway serving three FL
// populations concurrently — shared Selector layer, shared lock service,
// shared multi-tenant device fleet — through the real round pipeline
// (check-in, plan delivery, on-device training, report, aggregation,
// commit) until every population reaches its committed-round target, over
// both transports. The rounds/pop metric confirms every population made
// full progress through the shared layer.
func BenchmarkMultiPopulation(b *testing.B) {
	for _, tr := range []struct {
		name string
		tcp  bool
	}{{"mem", false}, {"tcp", true}} {
		b.Run(fmt.Sprintf("%s/pops-3", tr.name), func(b *testing.B) {
			b.ReportAllocs()
			var st fleet.BenchStats
			for i := 0; i < b.N; i++ {
				var err error
				st, err = fleet.RunBenchMultiPop(fleet.BenchConfig{
					Populations: 3, Devices: 9, TargetDevices: 3, Rounds: 2,
					TCP: tr.tcp, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				for pop, rounds := range st.Rounds {
					if rounds < 2 {
						b.Fatalf("population %s committed %d rounds", pop, rounds)
					}
				}
			}
			minRounds := 0
			for _, rounds := range st.Rounds {
				if minRounds == 0 || rounds < minRounds {
					minRounds = rounds
				}
			}
			b.ReportMetric(float64(minRounds), "rounds/pop")
		})
	}
}

// BenchmarkMultiTask drives ONE population whose TaskSet interleaves a
// train task with an eval task submitted through the live SubmitTask API
// (Sec. 7 model-engineer workflow): the train task reaches its round
// target while the eval task keeps its cadence, over both transports. The
// per-task rounds/sec metrics expose how much round throughput the eval
// traffic costs training.
func BenchmarkMultiTask(b *testing.B) {
	for _, tr := range []struct {
		name string
		tcp  bool
	}{{"mem", false}, {"tcp", true}} {
		b.Run(tr.name+"/train+eval", func(b *testing.B) {
			b.ReportAllocs()
			var st flserver.BenchMultiTaskStats
			for i := 0; i < b.N; i++ {
				var err error
				st, err = flserver.RunBenchMultiTask(flserver.BenchMultiTaskConfig{
					Devices: 9, TargetDevices: 3, TrainRounds: 4, EvalEvery: 2,
					TCP: tr.tcp, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			for id, rps := range st.RoundsPerSec {
				name := "train-rounds/sec"
				if strings.HasSuffix(id, "/eval") {
					name = "eval-rounds/sec"
				}
				b.ReportMetric(rps, name)
			}
		})
	}
}

// BenchmarkShardedRound drives the 3-selector × 1-coordinator sharded
// deployment (DESIGN.md process-topology section) to two committed rounds:
// every device terminates on a selector shard, each shard decodes and
// accumulates its reports at the edge, and ONE sealed stripe per shard per
// round crosses the selector→coordinator link. The K-4096 cell is the
// paper-scale round; bytes-up/round measures the aggregation traffic that
// actually crossed the process boundary (sealed partials, never raw
// updates). TCP runs the same topology over real loopback sockets.
func BenchmarkShardedRound(b *testing.B) {
	for _, tr := range []struct {
		name string
		tcp  bool
	}{{"mem", false}, {"tcp", true}} {
		for _, k := range []int{64, 512, 4096} {
			if tr.tcp && k > 64 {
				// The TCP cell is a wire-path smoke; paper-scale K runs
				// in-process where the swarm isn't fd-bound.
				continue
			}
			b.Run(fmt.Sprintf("%s/K-%d/shards-3", tr.name, k), func(b *testing.B) {
				b.ReportAllocs()
				var st shard.BenchShardedStats
				for i := 0; i < b.N; i++ {
					var err error
					st, err = shard.RunBenchSharded(shard.BenchShardedConfig{
						Shards: 3, TargetDevices: k, Devices: 2 * k, Rounds: 2,
						TCP: tr.tcp, Seed: uint64(i + 1),
					})
					if err != nil {
						b.Fatal(err)
					}
					if st.Rounds < 2 {
						b.Fatalf("committed %d rounds, want >= 2", st.Rounds)
					}
				}
				b.ReportMetric(float64(st.Rounds)/st.Elapsed.Seconds(), "rounds/sec")
				b.ReportMetric(float64(st.BytesUpstream)/float64(st.Rounds), "bytes-up/round")
				b.ReportMetric(float64(st.SealsReceived)/float64(st.Rounds), "seals/round")
			})
		}
	}
}

func BenchmarkPaceSteering(b *testing.B) {
	steer := pacing.New(2 * time.Minute)
	rng := tensor.NewRNG(1)
	now := time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)
	b.Run("small-population", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			steer.Suggest(100, 50, now, rng)
		}
	})
	b.Run("large-population", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			steer.Suggest(2_000_000, 300, now, rng)
		}
	})
}

// --- Ablation benchmarks (DESIGN.md §6) ---

// BenchmarkInMemoryVsPersisted contrasts the paper's ephemeral in-memory
// aggregation against a design that writes each device update to
// persistent storage before aggregating.
func BenchmarkInMemoryVsPersisted(b *testing.B) {
	const dim = 10000
	update := &fedavg.Update{Delta: make(tensor.Vector, dim), Weight: 10}
	b.Run("in-memory", func(b *testing.B) {
		acc := fedavg.NewAccumulator(dim)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := acc.Add(update); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("persist-each-update", func(b *testing.B) {
		store, err := storage.NewFile(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		acc := fedavg.NewAccumulator(dim)
		ck := &checkpoint.Checkpoint{TaskName: "t", Params: update.Delta, Weight: update.Weight}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ck.Round = int64(i)
			if err := store.PutCheckpoint(ck); err != nil {
				b.Fatal(err)
			}
			if err := acc.Add(update); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkOnlineAggregation contrasts folding updates in as they arrive
// (O(model) memory) against buffering all updates then reducing
// (O(devices × model) memory — the allocation column tells the story).
func BenchmarkOnlineAggregation(b *testing.B) {
	const dim, devices = 4000, 200
	mk := func(i int) *fedavg.Update {
		d := make(tensor.Vector, dim)
		d[i%dim] = 1
		return &fedavg.Update{Delta: d, Weight: 1}
	}
	b.Run("online", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			acc := fedavg.NewAccumulator(dim)
			for d := 0; d < devices; d++ {
				if err := acc.Add(mk(d)); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := acc.Average(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("buffer-then-reduce", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buf := make([]*fedavg.Update, 0, devices)
			for d := 0; d < devices; d++ {
				u := mk(d)
				// Buffering retains a private copy of every update, as a
				// log-based design would.
				cp := &fedavg.Update{Delta: u.Delta.Clone(), Weight: u.Weight}
				buf = append(buf, cp)
			}
			acc := fedavg.NewAccumulator(dim)
			for _, u := range buf {
				if err := acc.Add(u); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := acc.Average(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkUpdateCompression contrasts the wire encodings of Sec. 11
// (Bandwidth): full float64 vs 8-bit quantized updates.
func BenchmarkUpdateCompression(b *testing.B) {
	rng := tensor.NewRNG(1)
	params := make(tensor.Vector, 100000)
	rng.FillNormal(params, 0.01)
	ck := &checkpoint.Checkpoint{TaskName: "t", Params: params}
	for _, enc := range []struct {
		name string
		e    checkpoint.Encoding
	}{{"float64", checkpoint.EncodingFloat64}, {"quant8", checkpoint.EncodingQuant8}} {
		enc := enc
		b.Run(enc.name, func(b *testing.B) {
			var size int
			for i := 0; i < b.N; i++ {
				buf, err := ck.Marshal(enc.e)
				if err != nil {
					b.Fatal(err)
				}
				size = len(buf)
			}
			b.ReportMetric(float64(size), "wire-bytes")
		})
	}
}

// BenchmarkClientUpdate measures one device's local training step.
func BenchmarkClientUpdate(b *testing.B) {
	fed, err := data.Blobs(data.BlobsConfig{Users: 1, ExamplesPer: 100, Features: 16, Classes: 4, TestSize: 1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	spec := nn.Spec{Kind: nn.KindMLP, Features: 16, Hidden: 32, Classes: 4, Seed: 1}
	m, err := spec.Build()
	if err != nil {
		b.Fatal(err)
	}
	global := make(tensor.Vector, m.NumParams())
	m.ReadParams(global)
	cfg := fedavg.ClientConfig{BatchSize: 20, Epochs: 1, LR: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fedavg.ClientUpdate(m, global, fed.Users[0], cfg, nil); err != nil {
			b.Fatal(err)
		}
	}
}
