#!/usr/bin/env bash
# Chaos smoke: the real multi-process deployment — one flserver coordinator,
# three flselector shards, an fldevices swarm over loopback TCP — driven
# through a seeded fault schedule on every shard↔coordinator link (5% drop +
# 200ms jitter), a scripted mid-run partition of shard 1, and a scheduled
# connection reset of shard 2, must still commit every round. CI runs this;
# it also works locally:
#
#	./scripts/smoke_chaos.sh
#
# The fault schedule is deterministic: each shard logs "chaos: seed=N" plus
# its full fault plan, so a failure is reproduced by rerunning with the same
# -chaos / -chaos-seed flags.
set -eu

ROUNDS=12
SEED=42
COORD=127.0.0.1:8860
LOGS=$(mktemp -d)
BIN=$(mktemp -d)

go build -o "$BIN" ./cmd/flserver ./cmd/flselector ./cmd/fldevices

cleanup() {
	# shellcheck disable=SC2046
	kill $(jobs -p) 2>/dev/null || true
	wait 2>/dev/null || true
}
fail() {
	echo "SMOKE FAILED: $1"
	for f in "$LOGS"/*.log; do
		echo "---- $f ----"
		tail -n 30 "$f"
	done
	exit 1
}
trap cleanup EXIT

# Short seal grace + fast ticks keep partial rounds settling while a shard
# is partitioned away, instead of stalling the fleet on its missing seal.
"$BIN/flserver" -shard-listen "$COORD" -population gboard -rounds "$ROUNDS" \
	-target 16 -min-shards 3 -seal-grace 1s -tick-every 100ms \
	-report-timeout 5s >"$LOGS/coord.log" 2>&1 &
COORD_PID=$!
sleep 1

# Every shard link drops 5% of messages and jitters the rest by up to
# 200ms; shard 1 additionally loses its coordinator link to a 2s partition
# window, and shard 2 takes one scheduled connection reset. The peer tuning
# (100ms heartbeats, 5-miss budget) tolerates the jitter while still
# detecting the partition inside the window.
BASE="shard:drop=0.05,jitter=200ms"
for i in 0 1 2; do
	SPEC="$BASE"
	[ "$i" = 1 ] && SPEC="$BASE;shard:1:partition@3s+2s"
	[ "$i" = 2 ] && SPEC="$BASE;shard:2:reset@2s"
	"$BIN/flselector" -coordinator "$COORD" -addr 127.0.0.1:$((8851 + i)) \
		-shard "$i" -estimate 16 \
		-peer-heartbeat 100ms -peer-miss 5 -peer-backoff-min 10ms -peer-backoff-max 200ms \
		-chaos "$SPEC" -chaos-seed "$SEED" >"$LOGS/shard$i.log" 2>&1 &
done
sleep 1

"$BIN/fldevices" -addr 127.0.0.1:8851,127.0.0.1:8852,127.0.0.1:8853 \
	-population gboard -devices 48 -duration 3m >"$LOGS/devices.log" 2>&1 &

for _ in $(seq 180); do
	kill -0 "$COORD_PID" 2>/dev/null || break
	sleep 1
done
kill -0 "$COORD_PID" 2>/dev/null && fail "coordinator still running after 180s"
wait "$COORD_PID" || fail "coordinator exited non-zero"

grep -q "done: $ROUNDS rounds committed" "$LOGS/coord.log" ||
	fail "coordinator summary missing '$ROUNDS rounds committed'"

# The reproduction seed and the full fault plan must be in every shard log.
for i in 0 1 2; do
	grep -q "chaos: seed=$SEED" "$LOGS/shard$i.log" ||
		fail "shard $i log missing its chaos seed line"
done
# The schedule actually engaged: jitter/drop everywhere, the partition on
# shard 1, the reset on shard 2 (fault counters are logged every 2s).
grep -Eq "chaos faults:.*(delay|drop)=" "$LOGS/shard0.log" ||
	fail "shard 0 recorded no drop/delay faults"
grep -q "chaos faults:.*partition" "$LOGS/shard1.log" ||
	fail "shard 1 never hit its partition window"
grep -q "chaos faults:.*reset=" "$LOGS/shard2.log" ||
	fail "shard 2 never fired its scheduled reset"

echo "SMOKE OK (chaos seed $SEED):"
grep "done:" "$LOGS/coord.log"
grep -h "chaos faults:" "$LOGS"/shard*.log | tail -n 3
