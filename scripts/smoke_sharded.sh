#!/usr/bin/env bash
# Multi-process sharded smoke: one flserver coordinator, three flselector
# shards, and an fldevices swarm over real loopback TCP must commit at
# least two rounds end-to-end. CI runs this; it also works locally:
#
#	./scripts/smoke_sharded.sh
#
# The coordinator exits by itself once -rounds rounds commit, so "the
# coordinator process finished and printed the committed-round summary"
# IS the assertion; everything else is torn down afterwards.
set -eu

# 100 rounds (not 2) so the run outlives the selectors' telemetry cadence:
# rounds commit at roughly a dozen per second on a loaded CI box, while
# check-in-rate probes fire every 1s and TelemetrySnapshots every 2s. The
# /metrics poll below needs at least one of each to land before the
# coordinator commits its last round and exits, so the run must stay up
# for several seconds.
ROUNDS=100
COORD=127.0.0.1:8760
OBS_COORD=127.0.0.1:8770
OBS_SHARD0=127.0.0.1:8771
LOGS=$(mktemp -d)
BIN=$(mktemp -d)

go build -o "$BIN" ./cmd/flserver ./cmd/flselector ./cmd/fldevices

cleanup() {
	# shellcheck disable=SC2046
	kill $(jobs -p) 2>/dev/null || true
	wait 2>/dev/null || true
}
fail() {
	echo "SMOKE FAILED: $1"
	for f in "$LOGS"/*.log; do
		echo "---- $f ----"
		tail -n 30 "$f"
	done
	exit 1
}
trap cleanup EXIT

# -clip runs the task under the norm-bound robust policy end-to-end: the
# bound is tight enough that real training updates exceed it, so every
# shard clips at its edge and the seals carry the counts upstream.
"$BIN/flserver" -shard-listen "$COORD" -population gboard -rounds "$ROUNDS" \
	-target 16 -min-shards 3 -clip 0.001 -obs-listen "$OBS_COORD" >"$LOGS/coord.log" 2>&1 &
COORD_PID=$!
sleep 1

for i in 0 1 2; do
	OBS_FLAG=""
	[ "$i" = 0 ] && OBS_FLAG="-obs-listen $OBS_SHARD0"
	# shellcheck disable=SC2086
	"$BIN/flselector" -coordinator "$COORD" -addr 127.0.0.1:$((8751 + i)) \
		-shard "$i" -estimate 16 $OBS_FLAG >"$LOGS/shard$i.log" 2>&1 &
done
sleep 1

"$BIN/fldevices" -addr 127.0.0.1:8751,127.0.0.1:8752,127.0.0.1:8753 \
	-population gboard -devices 48 -duration 3m >"$LOGS/devices.log" 2>&1 &

# While the run is in flight, poll the coordinator's /metrics until it
# aggregates the whole deployment: its own round counters, its per-shard
# derived series, and series shipped in TelemetrySnapshots from the shards
# (recognizable by the injected shard="N" label).
COORD_METRICS_OK=0
for _ in $(seq 600); do
	if curl -sf "http://$OBS_COORD/metrics" >"$LOGS/coord-metrics.txt" 2>/dev/null &&
		grep -q '^fl_rounds_committed_total ' "$LOGS/coord-metrics.txt" &&
		grep -q '^fl_shard_seal_seconds{' "$LOGS/coord-metrics.txt" &&
		grep -q '^fl_shard_checkin_rate{' "$LOGS/coord-metrics.txt" &&
		grep -q 'fl_seals_shipped_total{shard="' "$LOGS/coord-metrics.txt" &&
		grep -q 'fl_robust_clipped_total{shard="' "$LOGS/coord-metrics.txt"; then
		COORD_METRICS_OK=1
		break
	fi
	kill -0 "$COORD_PID" 2>/dev/null || break
	sleep 0.2
done
[ "$COORD_METRICS_OK" = 1 ] ||
	fail "coordinator /metrics never aggregated round, per-shard seal, check-in-rate, shipped and robust-clip shard series"

curl -sf "http://$OBS_SHARD0/metrics" >"$LOGS/shard0-metrics.txt" ||
	fail "shard 0 /metrics unreachable"
grep -q '^fl_checkins_total ' "$LOGS/shard0-metrics.txt" ||
	fail "shard 0 /metrics missing fl_checkins_total"
grep -q '^fl_seals_shipped_total ' "$LOGS/shard0-metrics.txt" ||
	fail "shard 0 /metrics missing fl_seals_shipped_total"
grep -q 'fl_robust_clipped_total{task="gboard/train"}' "$LOGS/shard0-metrics.txt" ||
	fail "shard 0 /metrics missing per-task robust clip counter"

for _ in $(seq 120); do
	kill -0 "$COORD_PID" 2>/dev/null || break
	sleep 1
done
kill -0 "$COORD_PID" 2>/dev/null && fail "coordinator still running after 120s"
wait "$COORD_PID" || fail "coordinator exited non-zero"

grep -q "done: $ROUNDS rounds committed" "$LOGS/coord.log" ||
	fail "coordinator summary missing '$ROUNDS rounds committed'"
echo "SMOKE OK:"
grep "done:" "$LOGS/coord.log"
