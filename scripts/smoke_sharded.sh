#!/usr/bin/env bash
# Multi-process sharded smoke: one flserver coordinator, three flselector
# shards, and an fldevices swarm over real loopback TCP must commit at
# least two rounds end-to-end. CI runs this; it also works locally:
#
#	./scripts/smoke_sharded.sh
#
# The coordinator exits by itself once -rounds rounds commit, so "the
# coordinator process finished and printed the committed-round summary"
# IS the assertion; everything else is torn down afterwards.
set -eu

ROUNDS=2
COORD=127.0.0.1:8760
LOGS=$(mktemp -d)
BIN=$(mktemp -d)

go build -o "$BIN" ./cmd/flserver ./cmd/flselector ./cmd/fldevices

cleanup() {
	# shellcheck disable=SC2046
	kill $(jobs -p) 2>/dev/null || true
	wait 2>/dev/null || true
}
fail() {
	echo "SMOKE FAILED: $1"
	for f in "$LOGS"/*.log; do
		echo "---- $f ----"
		tail -n 30 "$f"
	done
	exit 1
}
trap cleanup EXIT

"$BIN/flserver" -shard-listen "$COORD" -population gboard -rounds "$ROUNDS" \
	-target 16 -min-shards 3 >"$LOGS/coord.log" 2>&1 &
COORD_PID=$!
sleep 1

for i in 0 1 2; do
	"$BIN/flselector" -coordinator "$COORD" -addr 127.0.0.1:$((8751 + i)) \
		-shard "$i" -estimate 16 >"$LOGS/shard$i.log" 2>&1 &
done
sleep 1

"$BIN/fldevices" -addr 127.0.0.1:8751,127.0.0.1:8752,127.0.0.1:8753 \
	-population gboard -devices 48 -duration 3m >"$LOGS/devices.log" 2>&1 &

for _ in $(seq 120); do
	kill -0 "$COORD_PID" 2>/dev/null || break
	sleep 1
done
kill -0 "$COORD_PID" 2>/dev/null && fail "coordinator still running after 120s"
wait "$COORD_PID" || fail "coordinator exited non-zero"

grep -q "done: $ROUNDS rounds committed" "$LOGS/coord.log" ||
	fail "coordinator summary missing '$ROUNDS rounds committed'"
echo "SMOKE OK:"
grep "done:" "$LOGS/coord.log"
