// On-device item ranking (Sec. 8): "a common use of machine learning in
// mobile applications is selecting and ranking items from an on-device
// inventory… each user interaction with the ranking feature can become a
// labeled data point."
//
// This example runs the *full protocol*, not just the algorithm: an
// actor-based FL server (Coordinator, Selectors, Master Aggregator,
// Aggregators) over an in-memory transport, with a fleet of device runtimes
// holding click data in their example stores.
//
//	go run ./examples/ranking
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	repro "repro"

	"repro/internal/flserver"
	"repro/internal/plan"
)

func main() {
	const (
		numDevices = 24
		items      = 6
		features   = 8
		rounds     = 8
	)

	// Click feedback: each user's taps on ranked items, non-IID because
	// every user has favourite items.
	fed, err := repro.Ranking(repro.RankingConfig{
		Users: numDevices, ExamplesPer: 50, Features: features, Items: items,
		TestSize: 500, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The model engineer's task: rank items from context features.
	p, err := repro.GeneratePlan(repro.TaskConfig{
		TaskID:           "ranker/train",
		Population:       "ranker",
		Model:            repro.ModelSpec{Kind: repro.KindLogistic, Features: features, Classes: items, Seed: 3},
		StoreName:        "clicks",
		BatchSize:        10,
		Epochs:           2,
		LearningRate:     0.05,
		TargetDevices:    8,
		SelectionTimeout: 3 * time.Second,
		ReportTimeout:    10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	store := repro.NewMemStorage()
	srv, err := repro.NewServer(flserver.Config{
		Population: "ranker",
		Plans:      []*plan.Plan{p},
		Store:      store,
		Steering:   repro.NewPaceSteering(2 * time.Second),
		MaxRounds:  rounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	net := repro.NewMemNetwork()
	l, err := net.Listen("fl")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	// The device fleet: each phone registers its click store and loops
	// through check-in / train / report.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < numDevices; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			clicks, err := repro.NewExampleStore("clicks", 1000, 0)
			if err != nil {
				log.Fatal(err)
			}
			now := time.Now()
			for _, ex := range fed.Users[i] {
				clicks.Add(ex, now)
			}
			rt := repro.NewDeviceRuntime(fmt.Sprintf("phone-%d", i), 3, uint64(i))
			if err := rt.RegisterStore(clicks); err != nil {
				log.Fatal(err)
			}
			client := &flserver.DeviceClient{ID: fmt.Sprintf("phone-%d", i), Population: "ranker", Runtime: rt}
			for {
				select {
				case <-stop:
					return
				default:
				}
				conn, err := net.Dial("fl")
				if err != nil {
					return
				}
				if _, err := client.RunOnce(conn); err != nil {
					time.Sleep(50 * time.Millisecond)
				}
				time.Sleep(10 * time.Millisecond)
			}
		}()
	}

	<-srv.Done()
	close(stop)
	wg.Wait()

	st, err := srv.Stats()
	if err != nil {
		log.Fatal(err)
	}
	ckpt, err := store.LatestCheckpoint(p.ID)
	if err != nil {
		log.Fatal(err)
	}
	m, err := p.Device.Model.Build()
	if err != nil {
		log.Fatal(err)
	}
	m.WriteParams(ckpt.Params)
	met := m.Evaluate(fed.Test)
	fmt.Printf("committed %d rounds (%d failed); global model round %d\n",
		st.RoundsCompleted, st.RoundsFailed, ckpt.Round)
	fmt.Printf("ranking accuracy (top-1 click prediction over %d items): %.3f (chance %.3f)\n",
		items, met.Accuracy, 1.0/float64(items))
}
