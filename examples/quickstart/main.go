// Quickstart: train a model with Federated Averaging in-process.
//
// This is the smallest useful program: build a non-IID federated dataset,
// pick a model spec, run rounds, evaluate. No servers, no transport — just
// the algorithm of Appendix B on a per-user data partition.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	repro "repro"
)

func main() {
	// 50 users, each holding a skewed slice of a 3-class problem: the data
	// never leaves a user's partition; only model updates are averaged.
	fed, err := repro.Blobs(repro.BlobsConfig{
		Users: 50, ExamplesPer: 40, Features: 8, Classes: 3,
		TestSize: 500, Skew: 0.7, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	spec := repro.ModelSpec{Kind: repro.KindLogistic, Features: 8, Classes: 3, Seed: 1}
	client := repro.ClientConfig{BatchSize: 10, Epochs: 2, LR: 0.05, Shuffle: true}

	// 30 rounds, 10 devices per round (the paper: "for most models
	// receiving updates from a few hundred devices per FL round is
	// sufficient" — scaled down here).
	tr, metrics, err := repro.Train(spec, fed, client, 30, 10, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after 30 federated rounds: accuracy %.3f, loss %.3f (over %d test examples)\n",
		metrics.Accuracy, metrics.Loss, metrics.Count)

	// The trainer holds the global model; keep training if you like.
	if err := repro.TrainWith(tr, fed, 10, 10, 8); err != nil {
		log.Fatal(err)
	}
	final := tr.Evaluate(fed.Test)
	fmt.Printf("after 10 more rounds:     accuracy %.3f, loss %.3f\n", final.Accuracy, final.Loss)
}
