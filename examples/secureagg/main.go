// Secure Aggregation (Sec. 6): the four-round protocol of Bonawitz et al.
// 2017, with devices dropping out mid-protocol.
//
// Ten devices hold private update vectors. Two vanish after distributing
// their key shares (their pairwise masks must be reconstructed); one
// commits its masked input but never answers the finalization round. The
// server learns ONLY the sum over the devices that committed — no
// individual vector is ever visible to it.
//
//	go run ./examples/secureagg
package main

import (
	"fmt"
	"log"

	"repro/internal/secagg"
)

func main() {
	const (
		n      = 10
		thresh = 6 // protocol survives any 4 dropouts; <6 colluders learn nothing
		dim    = 8
	)

	inputs := make(map[int][]float64, n)
	for id := 1; id <= n; id++ {
		v := make([]float64, dim)
		for j := range v {
			v[j] = float64(id) * 0.5
		}
		inputs[id] = v
	}

	cfg := secagg.Config{N: n, T: thresh, VectorLen: dim}
	// Devices 3 and 7 drop after sharing keys; device 5 drops after
	// committing its masked input.
	sum, survivors, err := secagg.Run(cfg, inputs, []int{3, 7}, []int{5})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("participants: %d, threshold: %d\n", n, thresh)
	fmt.Printf("dropped after key sharing: devices 3, 7 (excluded from the sum)\n")
	fmt.Printf("dropped after commit:      device 5 (still included)\n")
	fmt.Printf("survivors in aggregate:    %v\n", survivors)

	want := make([]float64, dim)
	for _, id := range survivors {
		for j, v := range inputs[id] {
			want[j] += v
		}
	}
	fmt.Printf("securely aggregated sum:   %.2f\n", sum)
	fmt.Printf("plaintext verification:    %.2f\n", want)
	fmt.Println("the server never saw an individual update — only masked vectors and this sum")
}
