// Federated Analytics (Sec. 11, Federated Computation): "monitor aggregate
// device statistics without logging raw device data to the cloud".
//
// Question: which words does the fleet type most often? No device reveals
// its text, and with Secure Aggregation the server never even sees a single
// device's word counts — only group sums.
//
//	go run ./examples/analytics
package main

import (
	"fmt"
	"log"
	"sort"

	repro "repro"
)

func main() {
	const vocab = 12

	// A fleet of 16 phones, each with its own (non-IID) typing history.
	corpus, err := repro.MarkovLM(repro.LMConfig{
		Users: 16, SentencesPer: 25, SentenceLen: 8,
		Vocab: vocab, TestSize: 1, Skew: 0.4, Seed: 9,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each device computes only its local histogram…
	query := repro.TokenHistogram(vocab)
	vectors := make(map[int][]float64)
	for u, examples := range corpus.Users {
		v, err := repro.AnalyticsVector(query, examples)
		if err != nil {
			log.Fatal(err)
		}
		vectors[u+1] = v
	}

	// …and the server aggregates through Secure Aggregation groups of 4:
	// it handles only masked vectors and group sums.
	totals, err := repro.AggregateAnalytics(vectors, vocab, true, 4)
	if err != nil {
		log.Fatal(err)
	}

	type row struct {
		Token int
		Count float64
	}
	rows := make([]row, vocab)
	var grand float64
	for tok, c := range totals {
		rows[tok] = row{Token: tok, Count: c}
		grand += c
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Count > rows[j].Count })

	fmt.Printf("fleet-wide word frequency (%.0f tokens, %d devices, secure groups of 4):\n", grand, len(vectors))
	for _, r := range rows {
		fmt.Printf("  word-%02d %6.0f  %5.1f%%\n", r.Token, r.Count, 100*r.Count/grand)
	}
	fmt.Println("no raw text or per-device histogram ever reached the server")
}
