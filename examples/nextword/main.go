// Next-word prediction (Sec. 8): the Gboard workload, scaled to a laptop.
//
// An RNN language model is trained federated over a non-IID synthetic
// keyboard corpus and compared against (a) a bigram count model and (b) the
// same RNN trained centrally on the pooled corpus. The paper's claims, in
// shape: the federated RNN beats the n-gram baseline and matches the
// server-trained RNN.
//
//	go run ./examples/nextword
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	fmt.Println("Training federated RNN LM (this takes ~a minute)...")
	res, err := experiments.NextWord(experiments.NextWordConfig{
		Users:        120,
		SentencesPer: 30,
		SentenceLen:  8,
		Vocab:        24,
		Rounds:       60,
		DevicesPer:   20,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())
}
