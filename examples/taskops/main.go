// Task operations on a live FL population (Sec. 7): the model engineer's
// workflow made first-class. A population starts with one training task;
// while training is running we SUBMIT an evaluation task onto the live
// server (it interleaves per its cadence, serving the training task's
// latest checkpoint read-only), PAUSE and RESUME it, watch per-task stats,
// and finally RETIRE it — all without restarting the server or disturbing
// the round in flight.
//
//	go run ./examples/taskops
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	repro "repro"
)

const (
	numDevices = 16
	features   = 8
	items      = 4
)

func main() {
	fed, err := repro.Ranking(repro.RankingConfig{
		Users: numDevices, ExamplesPer: 40, Features: features, Items: items,
		TestSize: 200, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	train, err := repro.GeneratePlan(repro.TaskConfig{
		TaskID:           "ranker/train",
		Population:       "ranker",
		Model:            repro.ModelSpec{Kind: repro.KindLogistic, Features: features, Classes: items, Seed: 3},
		StoreName:        "clicks",
		BatchSize:        10,
		Epochs:           1,
		LearningRate:     0.05,
		TargetDevices:    6,
		SelectionTimeout: 3 * time.Second,
		ReportTimeout:    10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	store := repro.NewMemStorage()
	srv, err := repro.NewServer(repro.ServerConfig{
		Population: "ranker",
		Plans:      []*repro.Plan{train}, // seeds the task set with one Active task
		Store:      store,
		Steering:   repro.NewPaceSteering(time.Second),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	net := repro.NewMemNetwork()
	l, err := net.Listen("fl")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)

	// The device fleet loops check-in / execute / report in the background.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < numDevices; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			clicks, err := repro.NewExampleStore("clicks", 1000, 0)
			if err != nil {
				log.Fatal(err)
			}
			now := time.Now()
			for _, ex := range fed.Users[i] {
				clicks.Add(ex, now)
			}
			rt := repro.NewDeviceRuntime(fmt.Sprintf("phone-%d", i), 3, uint64(i))
			if err := rt.RegisterStore(clicks); err != nil {
				log.Fatal(err)
			}
			client := &repro.DeviceClient{ID: fmt.Sprintf("phone-%d", i), Population: "ranker", Runtime: rt}
			for {
				select {
				case <-stop:
					return
				default:
				}
				conn, err := net.Dial("fl")
				if err != nil {
					return
				}
				if _, err := client.RunOnce(conn); err != nil {
					time.Sleep(20 * time.Millisecond)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	waitRounds := func(id string, n int) {
		for {
			for _, st := range mustStats(srv) {
				if st.ID == id && st.RoundsCommitted >= n {
					return
				}
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	fmt.Println("== training starts with one task ==")
	waitRounds(train.ID, 2)
	printStats(srv)

	fmt.Println("== submit an eval task onto the LIVE population ==")
	eval, err := repro.GeneratePlan(repro.TaskConfig{
		TaskID:           "ranker/eval",
		Population:       "ranker",
		Type:             repro.TaskEval,
		Model:            repro.ModelSpec{Kind: repro.KindLogistic, Features: features, Classes: items, Seed: 3},
		StoreName:        "clicks",
		TargetDevices:    4,
		SelectionTimeout: 3 * time.Second,
		ReportTimeout:    10 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Evaluate the train task's latest checkpoint after every committed
	// train round.
	if err := srv.SubmitTask(eval, repro.TaskPolicy{EvalEvery: 1, EvalOf: train.ID}); err != nil {
		log.Fatal(err)
	}
	waitRounds(eval.ID, 2)
	printStats(srv)

	fmt.Println("== pause the eval task, train on, resume it ==")
	if err := srv.PauseTask(eval.ID); err != nil {
		log.Fatal(err)
	}
	before := roundsOf(srv, train.ID)
	waitRounds(train.ID, before+2)
	if err := srv.ResumeTask(eval.ID); err != nil {
		log.Fatal(err)
	}
	waitRounds(eval.ID, roundsOf(srv, eval.ID)+1)
	printStats(srv)

	fmt.Println("== retire the eval task; training is undisturbed ==")
	if err := srv.RetireTask(eval.ID); err != nil {
		log.Fatal(err)
	}
	waitRounds(train.ID, roundsOf(srv, train.ID)+2)
	printStats(srv)

	// The eval rounds never advanced the model: the only committed lineage
	// is the train task's.
	ckpt, err := store.LatestCheckpoint(train.ID)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := store.LatestCheckpoint(eval.ID); err == nil {
		log.Fatal("eval task must not own a checkpoint lineage")
	}
	m, err := train.Device.Model.Build()
	if err != nil {
		log.Fatal(err)
	}
	m.WriteParams(ckpt.Params)
	met := m.Evaluate(fed.Test)
	fmt.Printf("final train checkpoint: round %d, accuracy %.3f (chance %.3f)\n",
		ckpt.Round, met.Accuracy, 1.0/float64(items))
}

func mustStats(srv *repro.Server) []repro.TaskStats {
	sts, err := srv.TaskStats()
	if err != nil {
		log.Fatal(err)
	}
	return sts
}

func roundsOf(srv *repro.Server, id string) int {
	for _, st := range mustStats(srv) {
		if st.ID == id {
			return st.RoundsCommitted
		}
	}
	return 0
}

func printStats(srv *repro.Server) {
	fmt.Println("  task            type   state    rounds  failed  devices")
	for _, st := range mustStats(srv) {
		fmt.Printf("  %-15s %-6s %-8s %6d %7d %8d\n",
			st.ID, st.Type, st.State, st.RoundsCommitted, st.RoundsFailed, st.Devices)
	}
}
