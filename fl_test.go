package repro

import (
	"testing"
	"time"
)

func TestTrainQuickstartPath(t *testing.T) {
	fed, err := Blobs(BlobsConfig{
		Users: 20, ExamplesPer: 30, Features: 4, Classes: 3,
		TestSize: 200, Skew: 0.5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := ModelSpec{Kind: KindLogistic, Features: 4, Classes: 3, Seed: 2}
	tr, met, err := Train(spec, fed, ClientConfig{BatchSize: 10, Epochs: 2, LR: 0.05, Shuffle: true}, 20, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if met.Accuracy < 0.85 {
		t.Fatalf("accuracy = %v", met.Accuracy)
	}
	// Continue training through the same trainer.
	if err := TrainWith(tr, fed, 5, 10, 4); err != nil {
		t.Fatal(err)
	}
}

func TestSimulateFacade(t *testing.T) {
	p, err := GeneratePlan(TaskConfig{
		TaskID: "pop/t", Population: "pop",
		Model:     ModelSpec{Kind: KindLogistic, Features: 4, Classes: 2, Seed: 1},
		StoreName: "s", BatchSize: 5, Epochs: 1, LearningRate: 0.1,
		TargetDevices: 20, SelectionTimeout: time.Minute, ReportTimeout: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimConfig{
		Population: PopulationConfig{Size: 500, Seed: 1},
		Plan:       p,
		Duration:   6 * time.Hour,
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.CompletedRounds() == 0 {
		t.Fatal("no rounds completed")
	}
}

func TestStorageFacade(t *testing.T) {
	s := NewMemStorage()
	if s == nil {
		t.Fatal("nil storage")
	}
	fs, err := NewFileStorage(t.TempDir())
	if err != nil || fs == nil {
		t.Fatalf("file storage: %v", err)
	}
}

func TestDeviceRuntimeFacade(t *testing.T) {
	rt := NewDeviceRuntime("d1", 3, 1)
	store, err := NewExampleStore("s", 10, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RegisterStore(store); err != nil {
		t.Fatal(err)
	}
}

func TestAttestationFacade(t *testing.T) {
	master := []byte("secret")
	v := NewAttestationVerifier(master)
	d := NewGenuineDevice(master, "d1")
	tok := d.Mint("pop", time.Now())
	if err := v.Verify("d1", "pop", tok, time.Now()); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyticsFacade(t *testing.T) {
	q := LabelHistogram(3)
	v, err := AnalyticsVector(q, []Example{{Y: 0}, {Y: 2}, {Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 1 || v[2] != 2 {
		t.Fatalf("vector = %v", v)
	}
	tq := TokenHistogram(4)
	tv, err := AnalyticsVector(tq, []Example{{Seq: []int{1, 1, 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if tv[1] != 2 || tv[3] != 1 {
		t.Fatalf("token vector = %v", tv)
	}
	total, err := AggregateAnalytics(map[int][]float64{1: v, 2: v}, 3, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if total[2] != 4 {
		t.Fatalf("total = %v", total)
	}
}

func TestTCPFacade(t *testing.T) {
	l, err := ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err == nil {
			_ = c.Send("pong")
			c.Close()
		}
	}()
	c, err := DialTCP(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg, err := c.Recv()
	if err != nil || msg != "pong" {
		t.Fatalf("recv: %v %v", msg, err)
	}
}

func TestGeneratePlanError(t *testing.T) {
	if _, err := GeneratePlan(TaskConfig{}); err == nil {
		t.Fatal("empty task config must fail")
	}
}

func TestTrainErrors(t *testing.T) {
	fed, _ := Blobs(BlobsConfig{Users: 2, ExamplesPer: 5, Features: 2, Classes: 2, TestSize: 5, Seed: 1})
	badSpec := ModelSpec{Kind: KindLogistic} // invalid dims
	if _, _, err := Train(badSpec, fed, ClientConfig{BatchSize: 1, Epochs: 1, LR: 0.1}, 1, 1, 1); err == nil {
		t.Fatal("bad spec must fail")
	}
	goodSpec := ModelSpec{Kind: KindLogistic, Features: 2, Classes: 2, Seed: 1}
	if _, _, err := Train(goodSpec, fed, ClientConfig{}, 1, 1, 1); err == nil {
		t.Fatal("bad client config must fail")
	}
	// devicesPerRound exceeding users falls back to all users.
	if _, _, err := Train(goodSpec, fed, ClientConfig{BatchSize: 2, Epochs: 1, LR: 0.1}, 1, 99, 1); err != nil {
		t.Fatal(err)
	}
}

func TestNewServerFacade(t *testing.T) {
	p, err := GeneratePlan(TaskConfig{
		TaskID: "pop/t", Population: "pop",
		Model:     ModelSpec{Kind: KindLogistic, Features: 2, Classes: 2, Seed: 1},
		StoreName: "s", BatchSize: 1, Epochs: 1, LearningRate: 0.1, TargetDevices: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{
		Population: "pop", Plans: []*Plan{p}, Store: NewMemStorage(), MaxRounds: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
}
