// Package core documents where the paper's primary contribution lives in
// this repository. The "core" of Bonawitz et al. 2019 is not one algorithm
// but a system: the synchronous FL protocol and the server/device
// architecture around it. It is implemented across:
//
//   - repro/internal/protocol  — the wire protocol of Sec. 2
//   - repro/internal/flserver  — the actor architecture of Sec. 4
//     (Coordinator, Selector, Master Aggregator, Aggregator)
//   - repro/internal/device    — the on-device runtime of Sec. 3
//   - repro/internal/fedavg    — Federated Averaging (Appendix B)
//   - repro/internal/secagg    — Secure Aggregation (Sec. 6)
//   - repro/internal/pacing    — pace steering (Sec. 2.3)
//
// The root package (repro) is the public facade over all of these.
package core
