package protocol

import (
	"encoding/gob"
	"time"
)

// Sharded-deployment wire messages (Sec. 4.2–4.3 scaled out across
// processes): a fleet of flselector processes terminates device
// connections and runs the edge decode-and-accumulate stripes; one
// coordinator process owns round state, task sets, pacing, and the lock
// service. The messages below flow on the selector↔coordinator peer links
// managed by internal/remote. Like the device messages, they ride the
// length-prefixed binary codec — see codec.go.

// ShardHello is the first message on a fresh selector→coordinator
// connection: it announces the shard's identity so the coordinator can
// (re)attach round state to the link.
type ShardHello struct {
	// Shard is the stable shard index (0-based).
	Shard uint32
	// Name is a human-readable shard label for logs and stats.
	Name string
}

// Heartbeat keeps a peer link's liveness fresh in both directions. The
// sender picks a sequence number; the receiver echoes it with Ack set.
// Missed echoes mark the peer dead (internal/remote).
type Heartbeat struct {
	Seq uint64
	Ack bool
}

// ActorEnvelope carries a message addressed to a named actor on the peer
// process — the wire form behind remote actor refs. The payload is a
// gob-encoded envelope (control-plane messages only; bulk payloads get
// their own binary-codec message types).
type ActorEnvelope struct {
	// Target names the destination actor in the peer's registry.
	Target  string
	Payload []byte
}

// Lock RPC opcodes.
const (
	// LockAcquire attempts to take the lease for Key on behalf of Owner.
	LockAcquire uint8 = iota
	// LockRelease frees the lease if Owner holds it.
	LockRelease
	// LockOwner queries the current live owner.
	LockOwner
)

// LockRequest is one lock-service RPC (the Sec. 4.2 lock service served
// over the wire). Seq correlates the response on a shared peer link.
type LockRequest struct {
	Seq   uint64
	Op    uint8
	Key   string
	Owner string
}

// LockResponse answers a LockRequest. OK reports acquire success (or, for
// LockOwner, whether a live owner exists); Owner echoes the current
// holder's name.
type LockResponse struct {
	Seq   uint64
	OK    bool
	Owner string
}

// RoundConfig opens a round on a selector shard (coordinator→shard): the
// shard should select Target devices for the task, serve them the plan and
// checkpoint, and fold their reports into its stripes. Plan and Checkpoint
// are multi-MB payloads marshaled once by the coordinator and fanned out to
// every shard via vectored writes (the segments are aliased, never copied
// into the frame).
type RoundConfig struct {
	Population string
	TaskID     string
	Round      int64
	// Target is the number of device reports this shard should collect.
	Target int
	// Admit is how many devices the shard should select (over-selection,
	// Sec. 2.2); 0 defaults to Target.
	Admit int
	// Estimate is the coordinator's live population estimate, used by the
	// shard's pace steering.
	Estimate int
	// EvalOnly marks an evaluation task: devices report metrics only.
	EvalOnly bool
	// ReportDeadline is forwarded to devices; ReportTimeout bounds the
	// shard's local reporting window.
	ReportDeadline time.Duration
	ReportTimeout  time.Duration
	// RobustKind mirrors plan.RobustPolicy.Kind for the task. Only the
	// norm-bound policy crosses shards — each shard clips reports at its
	// own edge before folding, which distributes because clipping is
	// per-update. Retention policies (trimmed mean, median, cosine) need
	// every individual update in one place and are refused for sharded
	// populations at task submission.
	RobustKind uint8
	// ClipNorm is the norm-bound policy's per-example-average L2 bound.
	ClipNorm   float64
	Plan       []byte
	Checkpoint []byte
}

// RoundFinalize tells a shard to seal its stripes NOW and ship whatever it
// holds (coordinator→shard, sent when the round's global report window
// closes before every shard met its local target).
type RoundFinalize struct {
	Population string
	TaskID     string
	Round      int64
}

// RoundAbort abandons a round. Coordinator→shard when the round failed
// globally; shard→coordinator when the shard cannot run it.
type RoundAbort struct {
	Population string
	TaskID     string
	Round      int64
	Reason     string
}

// StripeSeal ships a shard's sealed accumulator stripe upstream
// (shard→coordinator) at round finalize: the raw delta sum over every
// update the shard folded at the edge, plus the weight/count bookkeeping
// and metric samples. This is the aggregation tree crossing the process
// boundary — device updates never do. Sum is the fedavg.MarshalSum wire
// form and is aliased into the frame by the codec, so a multi-MB partial
// is written straight from the seal buffer.
type StripeSeal struct {
	Population string
	TaskID     string
	Round      int64
	Shard      uint32
	// Reports counts device updates folded into Sum; EvalReports counts
	// metrics-only reports; Lost counts devices that vanished mid-round.
	Reports     int64
	EvalReports int64
	Lost        int64
	// Clipped counts updates the round's norm-bound policy clipped at this
	// shard's edge before folding.
	Clipped int64
	Weight  float64
	// Sum is the marshaled raw delta sum (fedavg.MarshalSum); empty when
	// Reports is zero.
	Sum []byte
	// Metrics are the device-reported metric samples collected by the
	// shard's stripes.
	Metrics map[string][]float64
	// Phases carries the shard's per-phase durations (nanoseconds, keyed
	// by obs phase name) for this round's edge work, so the coordinator's
	// round trace covers the whole deployment, not just its own process.
	Phases map[string]int64
}

// TelemetrySnapshot ships one process's obs registry export upstream
// (shard→coordinator) on a periodic timer, so the coordinator's /metrics
// surface aggregates the fleet: selector check-in counters, per-shard seal
// latency summaries, secagg blame/dropout counts. Summaries are vectors in
// obs summaryFields order [count, mean, std, min, max, p50, p90, p99].
type TelemetrySnapshot struct {
	Shard uint32
	// Name is the shard's human-readable label (mirrors ShardHello.Name).
	Name      string
	Counters  map[string]int64
	Gauges    map[string]float64
	Summaries map[string][]float64
}

// CheckinRate reports a shard's observed device check-in rate
// (shard→coordinator), the raw material for cross-shard live population
// estimation (pacing.RateTracker aggregates one sample stream per shard).
type CheckinRate struct {
	Population string
	Shard      uint32
	// Source names the Selector actor within the shard that observed the
	// sample, so a shard running several Selectors contributes one
	// distinguishable sample stream per Selector.
	Source string
	// Count check-ins were observed over Elapsed.
	Count   int64
	Elapsed time.Duration
	// Demand is the shard's current selection demand, used to invert the
	// steering policy's mean wait.
	Demand int64
}

func init() {
	// Registered for the gob fallback path, though all of these normally
	// ride the binary codec.
	gob.Register(ShardHello{})
	gob.Register(Heartbeat{})
	gob.Register(ActorEnvelope{})
	gob.Register(LockRequest{})
	gob.Register(LockResponse{})
	gob.Register(RoundConfig{})
	gob.Register(RoundFinalize{})
	gob.Register(RoundAbort{})
	gob.Register(StripeSeal{})
	gob.Register(CheckinRate{})
	gob.Register(TelemetrySnapshot{})
}
