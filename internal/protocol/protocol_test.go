package protocol

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"
)

// The protocol types cross the TCP transport as gob interface values; each
// must round-trip through an interface-typed envelope exactly.

type envelope struct{ Msg interface{} }

func roundTrip(t *testing.T, msg interface{}) interface{} {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(envelope{Msg: msg}); err != nil {
		t.Fatalf("encode %T: %v", msg, err)
	}
	var e envelope
	if err := gob.NewDecoder(&buf).Decode(&e); err != nil {
		t.Fatalf("decode %T: %v", msg, err)
	}
	return e.Msg
}

func TestCheckinRequestRoundTrip(t *testing.T) {
	in := CheckinRequest{
		DeviceID: "d1", Population: "pop", RuntimeVersion: 3,
		AttestationToken: []byte{1, 2, 3},
	}
	out, ok := roundTrip(t, in).(CheckinRequest)
	if !ok || out.DeviceID != "d1" || out.RuntimeVersion != 3 || len(out.AttestationToken) != 3 {
		t.Fatalf("got %+v", out)
	}
}

func TestCheckinResponseRoundTrip(t *testing.T) {
	in := CheckinResponse{
		Accepted: true, TaskID: "t", Round: 9,
		Plan: []byte{4, 5}, Checkpoint: []byte{6},
		ReportDeadline: 2 * time.Minute,
	}
	out, ok := roundTrip(t, in).(CheckinResponse)
	if !ok || !out.Accepted || out.Round != 9 || out.ReportDeadline != 2*time.Minute {
		t.Fatalf("got %+v", out)
	}
	rej := CheckinResponse{Accepted: false, RetryAfter: time.Hour, Reason: "come back later"}
	outRej := roundTrip(t, rej).(CheckinResponse)
	if outRej.Accepted || outRej.RetryAfter != time.Hour || outRej.Reason == "" {
		t.Fatalf("got %+v", outRej)
	}
}

func TestReportRequestRoundTrip(t *testing.T) {
	in := ReportRequest{
		DeviceID: "d1", TaskID: "t", Round: 3,
		Update:  []byte{9, 9},
		Metrics: map[string]float64{"train_loss": 0.5},
	}
	out, ok := roundTrip(t, in).(ReportRequest)
	if !ok || out.Metrics["train_loss"] != 0.5 || len(out.Update) != 2 {
		t.Fatalf("got %+v", out)
	}
}

func TestReportResponseAndAbortRoundTrip(t *testing.T) {
	resp := roundTrip(t, ReportResponse{Accepted: true, RetryAfter: time.Minute}).(ReportResponse)
	if !resp.Accepted || resp.RetryAfter != time.Minute {
		t.Fatalf("got %+v", resp)
	}
	ab := roundTrip(t, Abort{TaskID: "t", Round: 2, Reason: "enough devices"}).(Abort)
	if ab.TaskID != "t" || ab.Round != 2 {
		t.Fatalf("got %+v", ab)
	}
}
