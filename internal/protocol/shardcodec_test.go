package protocol

import (
	"encoding/binary"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// shardMessages returns one populated and one zero-valued instance of every
// sharded-deployment wire message.
func shardMessages() []interface{} {
	return []interface{}{
		StripeSeal{Population: "pop", TaskID: "task", Round: 7, Shard: 2,
			Reports: 100, EvalReports: 3, Lost: 4, Clipped: 9, Weight: 41.5,
			Sum:     []byte{1, 2, 3, 4, 5, 6, 7, 8},
			Metrics: map[string][]float64{"train_loss": {0.5, 0.25}, "train_acc": {1}},
			Phases:  map[string]int64{"configure": 12_000_000, "edge_accumulate": 34_000_000}},
		StripeSeal{},
		RoundConfig{Population: "pop", TaskID: "task", Round: 9, Target: 100,
			Admit: 130, Estimate: 5000, EvalOnly: true,
			ReportDeadline: 2 * time.Minute, ReportTimeout: time.Minute,
			RobustKind: 1, ClipNorm: 1.5,
			Plan: []byte{9, 9}, Checkpoint: []byte{7}},
		RoundConfig{},
		RoundFinalize{Population: "pop", TaskID: "task", Round: 3},
		RoundFinalize{},
		RoundAbort{Population: "pop", TaskID: "task", Round: 3, Reason: "drained"},
		RoundAbort{},
		ShardHello{Shard: 4, Name: "shard-4"},
		ShardHello{},
		CheckinRate{Population: "pop", Shard: 1, Source: "shard-1/selector-0",
			Count: 42, Elapsed: time.Second, Demand: 7},
		CheckinRate{},
		ActorEnvelope{Target: "coordinator/gboard", Payload: []byte{1, 2, 3}},
		ActorEnvelope{},
		LockRequest{Seq: 11, Op: 2, Key: "coordinator/pop", Owner: "shard-0"},
		LockRequest{},
		LockResponse{Seq: 11, OK: true, Owner: "shard-0"},
		LockResponse{},
		Heartbeat{Seq: 99, Ack: true},
		Heartbeat{},
		TelemetrySnapshot{Shard: 3, Name: "shard-3",
			Counters:  map[string]int64{"fl_checkins_total": 512, "fl_reports_total": 40},
			Gauges:    map[string]float64{"fl_checkin_rate": 12.5},
			Summaries: map[string][]float64{"fl_seal_seconds": {4, 0.5, 0.1, 0.2, 0.9, 0.5, 0.8, 0.9}}},
		TelemetrySnapshot{},
	}
}

func TestShardCodecRoundTripsAllMessages(t *testing.T) {
	for _, in := range shardMessages() {
		out := binRoundTrip(t, in)
		if !reflect.DeepEqual(in, out) {
			t.Errorf("round trip changed %T:\n in  %+v\n out %+v", in, in, out)
		}
	}
}

// TestShardCodecTruncationSafe chops every prefix of every shard message's
// encoding: decode must error, never panic, and trailing garbage after a
// complete message must be rejected.
func TestShardCodecTruncationSafe(t *testing.T) {
	for _, in := range shardMessages() {
		code, payload, ok := MarshalBinary(in)
		if !ok {
			t.Fatalf("MarshalBinary rejected %T", in)
		}
		for n := 0; n < len(payload); n++ {
			if _, err := UnmarshalBinary(code, payload[:n]); err == nil {
				t.Errorf("%T truncated to %d/%d bytes decoded cleanly", in, n, len(payload))
			}
		}
		if _, err := UnmarshalBinary(code, append(append([]byte{}, payload...), 0xFF)); err == nil {
			t.Errorf("%T with trailing garbage decoded cleanly", in)
		}
	}
}

// u32 / u64 / str build hostile payloads field by field.
func hU32(buf []byte, v uint32) []byte { return binary.BigEndian.AppendUint32(buf, v) }
func hU64(buf []byte, v uint64) []byte { return binary.BigEndian.AppendUint64(buf, v) }
func hStr(buf []byte, s string) []byte { return append(hU32(buf, uint32(len(s))), s...) }

// hostileShardPayloads are hand-built frames whose length fields promise far
// more data than the payload holds — the claims range from 4 GiB strings to
// billion-entry metric maps. Every one must be rejected.
func hostileShardPayloads() map[string][2]interface{} {
	sealHead := func(sumLen uint32) []byte {
		b := hStr(nil, "")               // Population
		b = hStr(b, "")                  // TaskID
		b = hU64(b, 1)                   // Round
		b = hU32(b, 0)                   // Shard
		b = hU64(b, 0)                   // Reports
		b = hU64(b, 0)                   // EvalReports
		b = hU64(b, 0)                   // Lost
		b = hU64(b, 0)                   // Clipped
		b = hU64(b, math.Float64bits(1)) // Weight
		return hU32(b, sumLen)           // Sum length
	}
	rcHead := func() []byte {
		b := hStr(nil, "")
		b = hStr(b, "")
		b = hU64(b, 1) // Round
		b = hU64(b, 1) // Target
		b = hU64(b, 1) // Admit
		b = hU64(b, 1) // Estimate
		b = append(b, 0)
		b = hU64(b, 0)   // ReportDeadline
		b = hU64(b, 0)   // ReportTimeout
		b = append(b, 0) // RobustKind
		b = hU64(b, 0)   // ClipNorm
		return b
	}
	return map[string][2]interface{}{
		"stripe-seal sum 4GiB":          {CodeStripeSeal, sealHead(0xFFFFFFFF)},
		"stripe-seal 1B metric entries": {CodeStripeSeal, hU32(append(sealHead(0), []byte{}...), 0x40000000)},
		"stripe-seal 1B metric values": {CodeStripeSeal,
			hU32(hStr(hU32(sealHead(0), 1), "k"), 0x40000000)},
		"stripe-seal 1B phase entries": {CodeStripeSeal,
			hU32(hU32(sealHead(0), 0), 0x40000000)},
		"round-config plan 4GiB":       {CodeRoundConfig, hU32(rcHead(), 0xFFFFFFFF)},
		"round-config checkpoint 4GiB": {CodeRoundConfig, hU32(hU32(rcHead(), 0), 0xFFFFFFF0)},
		"round-abort reason 4GiB":      {CodeRoundAbort, hU32(hU64(hStr(hStr(nil, ""), ""), 1), 0xFFFFFFFF)},
		"shard-hello name 4GiB":        {CodeShardHello, hU32(hU32(nil, 1), 0xFFFFFFFF)},
		"checkin-rate source 4GiB":     {CodeCheckinRate, hU32(hU32(hStr(nil, "pop"), 0), 0xFFFFFFFF)},
		"actor-envelope payload 2GiB":  {CodeActorEnvelope, hU32(hStr(nil, "t"), 0x7FFFFFFF)},
		"lock-request key 4GiB":        {CodeLockRequest, hU32(append(hU64(nil, 1), 2), 0xFFFFFFFF)},
		"lock-response owner 4GiB":     {CodeLockResponse, hU32(append(hU64(nil, 1), 1), 0xFFFFFFFF)},
		"telemetry name 4GiB":          {CodeTelemetrySnapshot, hU32(hU32(nil, 1), 0xFFFFFFFF)},
		"telemetry 1B counters":        {CodeTelemetrySnapshot, hU32(hStr(hU32(nil, 1), "s"), 0x40000000)},
		"telemetry 1B gauges": {CodeTelemetrySnapshot,
			hU32(hU32(hStr(hU32(nil, 1), "s"), 0), 0x40000000)},
		"telemetry 1B summary values": {CodeTelemetrySnapshot,
			hU32(hStr(hU32(hU32(hU32(hStr(hU32(nil, 1), "s"), 0), 0), 1), "k"), 0x40000000)},
	}
}

func TestShardCodecHostileLengths(t *testing.T) {
	for name, h := range hostileShardPayloads() {
		if _, err := UnmarshalBinary(h[0].(byte), h[1].([]byte)); err == nil {
			t.Errorf("%s decoded cleanly", name)
		}
	}
}

// TestShardCodecUnknownTypeCodes walks every unassigned code: decode must
// reject it without touching the payload.
func TestShardCodecUnknownTypeCodes(t *testing.T) {
	known := map[byte]bool{
		CodeGob: true, CodeCheckinRequest: true, CodeCheckinResponse: true,
		CodeReportRequest: true, CodeReportResponse: true, CodeAbort: true,
		CodeStripeSeal: true, CodeRoundConfig: true, CodeRoundFinalize: true,
		CodeRoundAbort: true, CodeShardHello: true, CodeCheckinRate: true,
		CodeActorEnvelope: true, CodeLockRequest: true, CodeLockResponse: true,
		CodeHeartbeat: true, CodeTelemetrySnapshot: true,
	}
	payload := make([]byte, 64)
	for c := 0; c < 256; c++ {
		if known[byte(c)] {
			continue
		}
		if _, err := UnmarshalBinary(byte(c), payload); err == nil {
			t.Fatalf("unknown type code %d decoded cleanly", c)
		}
	}
}

// TestShardCodecHostileAllocationBounded decodes every hostile payload many
// times and asserts the heap growth stays far below the multi-GiB claims:
// rejection must happen before any claim-sized allocation.
func TestShardCodecHostileAllocationBounded(t *testing.T) {
	hostile := hostileShardPayloads()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const iters = 100
	for i := 0; i < iters; i++ {
		for _, h := range hostile {
			_, _ = UnmarshalBinary(h[0].(byte), h[1].([]byte))
		}
	}
	runtime.ReadMemStats(&after)
	grew := after.TotalAlloc - before.TotalAlloc
	// ~1100 rejected decodes of payloads claiming GiBs must stay under a
	// few MiB of cumulative allocation (error values and small headers).
	if grew > 8<<20 {
		t.Fatalf("hostile decodes allocated %d bytes total over %d iterations", grew, iters*len(hostile))
	}
}
