package protocol

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Binary wire codec for the five protocol messages. The gob envelope the
// TCP transport used previously walks every value through reflection and
// buffers it twice; with multi-MB plan/checkpoint/update payloads flowing
// once per device per round, the codec below writes each message into a
// single exact-size buffer instead. Layout is fixed-order big-endian
// fields; strings and byte slices are u32-length-prefixed; durations are
// i64 nanoseconds; metric maps are u32-count-prefixed (name, f64) pairs.
//
// The transport frames each payload with a wire-version byte and one of
// these type codes; unknown message types fall back to gob (CodeGob), so
// simulation-only or test-only messages keep working.

// Type codes carried in the transport frame header.
const (
	// CodeGob marks a gob-encoded fallback payload for message types
	// outside the five below.
	CodeGob byte = iota
	CodeCheckinRequest
	CodeCheckinResponse
	CodeReportRequest
	CodeReportResponse
	CodeAbort
	// Sharded-deployment messages (shard.go, codec in shardcodec.go).
	CodeStripeSeal
	CodeRoundConfig
	CodeRoundFinalize
	CodeRoundAbort
	CodeShardHello
	CodeCheckinRate
	CodeActorEnvelope
	CodeLockRequest
	CodeLockResponse
	CodeHeartbeat
	CodeTelemetrySnapshot
)

// MarshalBinaryParts encodes one of the five protocol messages as an
// ordered list of byte segments whose concatenation is the MarshalBinary
// payload. Large byte-slice fields — a ReportRequest's Update, a
// CheckinResponse's Plan and Checkpoint — are returned as their own
// segments, ALIASED from the message rather than copied, so a transport
// with vectored writes ships a multi-MB update without ever building a
// contiguous frame: the per-report O(dim) payload copy disappears from the
// uplink hot path. Callers must not mutate the message's byte fields until
// the parts have been written. ok is false for any other type, which the
// transport then routes through the gob fallback.
func MarshalBinaryParts(msg interface{}) (code byte, parts [][]byte, ok bool) {
	switch m := msg.(type) {
	case CheckinRequest:
		buf := make([]byte, 0, sizeStr(m.DeviceID)+sizeStr(m.Population)+8+sizeBytes(m.AttestationToken))
		buf = appendStr(buf, m.DeviceID)
		buf = appendStr(buf, m.Population)
		buf = binary.BigEndian.AppendUint64(buf, uint64(int64(m.RuntimeVersion)))
		buf = appendBytes(buf, m.AttestationToken)
		return CodeCheckinRequest, [][]byte{buf}, true
	case CheckinResponse:
		head := make([]byte, 0, 1+8+sizeStr(m.Reason)+sizeStr(m.TaskID)+8+4)
		head = appendBool(head, m.Accepted)
		head = binary.BigEndian.AppendUint64(head, uint64(int64(m.RetryAfter)))
		head = appendStr(head, m.Reason)
		head = appendStr(head, m.TaskID)
		head = binary.BigEndian.AppendUint64(head, uint64(m.Round))
		head = binary.BigEndian.AppendUint32(head, uint32(len(m.Plan)))
		mid := make([]byte, 0, 4)
		mid = binary.BigEndian.AppendUint32(mid, uint32(len(m.Checkpoint)))
		tail := make([]byte, 0, 8)
		tail = binary.BigEndian.AppendUint64(tail, uint64(int64(m.ReportDeadline)))
		return CodeCheckinResponse, [][]byte{head, m.Plan, mid, m.Checkpoint, tail}, true
	case ReportRequest:
		head := make([]byte, 0, sizeStr(m.DeviceID)+sizeStr(m.TaskID)+8+4)
		head = appendStr(head, m.DeviceID)
		head = appendStr(head, m.TaskID)
		head = binary.BigEndian.AppendUint64(head, uint64(m.Round))
		head = binary.BigEndian.AppendUint32(head, uint32(len(m.Update)))
		tail := make([]byte, 0, sizeMetrics(m.Metrics)+1)
		tail = appendMetrics(tail, m.Metrics)
		tail = appendBool(tail, m.Aborted)
		return CodeReportRequest, [][]byte{head, m.Update, tail}, true
	case ReportResponse:
		buf := make([]byte, 0, 1+sizeStr(m.Reason)+8)
		buf = appendBool(buf, m.Accepted)
		buf = appendStr(buf, m.Reason)
		buf = binary.BigEndian.AppendUint64(buf, uint64(int64(m.RetryAfter)))
		return CodeReportResponse, [][]byte{buf}, true
	case Abort:
		buf := make([]byte, 0, sizeStr(m.TaskID)+8+sizeStr(m.Reason))
		buf = appendStr(buf, m.TaskID)
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
		buf = appendStr(buf, m.Reason)
		return CodeAbort, [][]byte{buf}, true
	}
	return marshalShardParts(msg)
}

// MarshalBinary encodes one of the five protocol messages into a single
// contiguous buffer (the concatenation of MarshalBinaryParts). ok is false
// for any other type.
func MarshalBinary(msg interface{}) (code byte, payload []byte, ok bool) {
	code, parts, ok := MarshalBinaryParts(msg)
	if !ok {
		return 0, nil, false
	}
	if len(parts) == 1 {
		return code, parts[0], true
	}
	n := 0
	for _, p := range parts {
		n += len(p)
	}
	buf := make([]byte, 0, n)
	for _, p := range parts {
		buf = append(buf, p...)
	}
	return code, buf, true
}

// UnmarshalBinary decodes a payload produced by MarshalBinary. Byte-slice
// fields alias the payload buffer (each received frame owns its buffer, so
// decode is copy-free). A truncated or inconsistent payload returns an
// error, never panics.
func UnmarshalBinary(code byte, payload []byte) (interface{}, error) {
	r := &reader{b: payload}
	var msg interface{}
	switch code {
	case CodeCheckinRequest:
		m := CheckinRequest{}
		m.DeviceID = r.str()
		m.Population = r.str()
		m.RuntimeVersion = int(r.i64())
		m.AttestationToken = r.bytes()
		msg = m
	case CodeCheckinResponse:
		m := CheckinResponse{}
		m.Accepted = r.bool()
		m.RetryAfter = time.Duration(r.i64())
		m.Reason = r.str()
		m.TaskID = r.str()
		m.Round = r.i64()
		m.Plan = r.bytes()
		m.Checkpoint = r.bytes()
		m.ReportDeadline = time.Duration(r.i64())
		msg = m
	case CodeReportRequest:
		m := ReportRequest{}
		m.DeviceID = r.str()
		m.TaskID = r.str()
		m.Round = r.i64()
		m.Update = r.bytes()
		m.Metrics = r.metrics()
		m.Aborted = r.bool()
		msg = m
	case CodeReportResponse:
		m := ReportResponse{}
		m.Accepted = r.bool()
		m.Reason = r.str()
		m.RetryAfter = time.Duration(r.i64())
		msg = m
	case CodeAbort:
		m := Abort{}
		m.TaskID = r.str()
		m.Round = r.i64()
		m.Reason = r.str()
		msg = m
	default:
		m, handled := unmarshalShard(code, r)
		if !handled {
			return nil, fmt.Errorf("protocol: unknown type code %d", code)
		}
		msg = m
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("protocol: %d trailing bytes after type %d", len(r.b), code)
	}
	return msg, nil
}

// --- encoding helpers ---

func sizeStr(s string) int   { return 4 + len(s) }
func sizeBytes(b []byte) int { return 4 + len(b) }
func sizeMetrics(m map[string]float64) int {
	n := 4
	for k := range m {
		n += sizeStr(k) + 8
	}
	return n
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

func appendMetrics(buf []byte, m map[string]float64) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m)))
	for k, v := range m {
		buf = appendStr(buf, k)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// --- decoding helpers ---

// reader consumes a payload front to back, latching the first error.
type reader struct {
	b   []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("protocol: truncated %s (%d bytes left)", what, len(r.b))
	}
}

func (r *reader) take(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b) < n {
		r.fail(what)
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u32(what string) int {
	b := r.take(4, what)
	if b == nil {
		return 0
	}
	return int(binary.BigEndian.Uint32(b))
}

func (r *reader) i64() int64 {
	b := r.take(8, "int64")
	if b == nil {
		return 0
	}
	return int64(binary.BigEndian.Uint64(b))
}

func (r *reader) bool() bool {
	b := r.take(1, "bool")
	return b != nil && b[0] != 0
}

func (r *reader) str() string {
	n := r.u32("string length")
	return string(r.take(n, "string"))
}

// bytes returns the field aliased into the payload; nil-length fields decode
// as nil so round-trips preserve emptiness.
func (r *reader) bytes() []byte {
	n := r.u32("bytes length")
	if n == 0 {
		return nil
	}
	return r.take(n, "bytes")
}

func (r *reader) metrics() map[string]float64 {
	n := r.u32("metrics count")
	if r.err != nil || n == 0 {
		return nil
	}
	// Each entry is ≥ 12 bytes; reject counts the payload cannot hold
	// before allocating.
	if n > len(r.b)/12 {
		r.fail("metrics entries")
		return nil
	}
	m := make(map[string]float64, n)
	for i := 0; i < n; i++ {
		k := r.str()
		v := r.i64()
		if r.err != nil {
			return nil
		}
		m[k] = math.Float64frombits(uint64(v))
	}
	return m
}
