package protocol

import (
	"reflect"
	"testing"
	"time"
)

// binRoundTrip pushes a message through the binary codec and back.
func binRoundTrip(t *testing.T, msg interface{}) interface{} {
	t.Helper()
	code, payload, ok := MarshalBinary(msg)
	if !ok {
		t.Fatalf("MarshalBinary rejected %T", msg)
	}
	out, err := UnmarshalBinary(code, payload)
	if err != nil {
		t.Fatalf("UnmarshalBinary %T: %v", msg, err)
	}
	return out
}

func TestBinaryCodecRoundTripsAllMessages(t *testing.T) {
	msgs := []interface{}{
		CheckinRequest{DeviceID: "d1", Population: "pop", RuntimeVersion: 3,
			AttestationToken: []byte{1, 2, 3}},
		CheckinRequest{DeviceID: "", Population: "p"},
		CheckinResponse{Accepted: true, TaskID: "t", Round: 9,
			Plan: []byte{4, 5}, Checkpoint: []byte{6}, ReportDeadline: 2 * time.Minute},
		CheckinResponse{Accepted: false, RetryAfter: time.Hour, Reason: "come back later"},
		ReportRequest{DeviceID: "d1", TaskID: "t", Round: 3, Update: []byte{9, 9},
			Metrics: map[string]float64{"train_loss": 0.5, "train_acc": 0.25}},
		ReportRequest{DeviceID: "d2", TaskID: "t", Round: 4, Aborted: true},
		ReportResponse{Accepted: true, RetryAfter: time.Minute},
		ReportResponse{Accepted: false, Reason: "reporting window closed"},
		Abort{TaskID: "t", Round: 2, Reason: "enough devices"},
	}
	for _, in := range msgs {
		out := binRoundTrip(t, in)
		if !reflect.DeepEqual(in, out) {
			t.Errorf("round trip changed %T:\n in  %+v\n out %+v", in, in, out)
		}
	}
}

func TestBinaryCodecNegativeDurationsAndRounds(t *testing.T) {
	in := CheckinResponse{RetryAfter: -time.Second, Round: -7, ReportDeadline: -time.Minute}
	out := binRoundTrip(t, in).(CheckinResponse)
	if out.RetryAfter != -time.Second || out.Round != -7 || out.ReportDeadline != -time.Minute {
		t.Fatalf("got %+v", out)
	}
}

func TestBinaryCodecLargePayloads(t *testing.T) {
	big := make([]byte, 6<<20) // 6 MiB, a realistic full-model checkpoint
	for i := range big {
		big[i] = byte(i * 31)
	}
	resp := binRoundTrip(t, CheckinResponse{
		Accepted: true, TaskID: "t", Plan: big[:1<<20], Checkpoint: big,
	}).(CheckinResponse)
	if !reflect.DeepEqual(resp.Checkpoint, big) || len(resp.Plan) != 1<<20 {
		t.Fatal("large checkin payload corrupted")
	}
	rep := binRoundTrip(t, ReportRequest{DeviceID: "d", Update: big}).(ReportRequest)
	if !reflect.DeepEqual(rep.Update, big) {
		t.Fatal("large report payload corrupted")
	}
}

func TestBinaryCodecRejectsUnknownTypes(t *testing.T) {
	if _, _, ok := MarshalBinary("not a protocol message"); ok {
		t.Fatal("strings must fall through to the gob path")
	}
	if _, _, ok := MarshalBinary(&CheckinRequest{}); ok {
		t.Fatal("pointer forms are not wire messages")
	}
	if _, err := UnmarshalBinary(99, nil); err == nil {
		t.Fatal("unknown type code must error")
	}
	if _, err := UnmarshalBinary(CodeGob, nil); err == nil {
		t.Fatal("the gob code is the transport's, not the codec's")
	}
}

// TestBinaryCodecTruncationSafe chops every prefix of every message's
// encoding: decode must return an error (or an incomplete value), never
// panic, and trailing garbage must be rejected.
func TestBinaryCodecTruncationSafe(t *testing.T) {
	msgs := []interface{}{
		CheckinRequest{DeviceID: "d1", Population: "pop", RuntimeVersion: 3, AttestationToken: []byte{1}},
		CheckinResponse{Accepted: true, TaskID: "t", Round: 9, Plan: []byte{4, 5}, Checkpoint: []byte{6}},
		ReportRequest{DeviceID: "d1", TaskID: "t", Round: 3, Update: []byte{9}, Metrics: map[string]float64{"l": 1}},
		ReportResponse{Accepted: true, Reason: "r"},
		Abort{TaskID: "t", Round: 2, Reason: "r"},
	}
	for _, in := range msgs {
		code, payload, _ := MarshalBinary(in)
		for n := 0; n < len(payload); n++ {
			if _, err := UnmarshalBinary(code, payload[:n]); err == nil {
				t.Errorf("%T truncated to %d/%d bytes decoded cleanly", in, n, len(payload))
			}
		}
		if _, err := UnmarshalBinary(code, append(append([]byte{}, payload...), 0xFF)); err == nil {
			t.Errorf("%T with trailing garbage decoded cleanly", in)
		}
	}
}

// TestBinaryCodecHostileLengths feeds length fields that promise more data
// than the payload holds, including a metrics count that would allocate
// gigabytes if trusted.
func TestBinaryCodecHostileLengths(t *testing.T) {
	hostile := [][2]interface{}{
		{CodeCheckinRequest, []byte{0xFF, 0xFF, 0xFF, 0xFF, 'x'}},
		{CodeReportRequest, []byte{
			0, 0, 0, 0, // DeviceID ""
			0, 0, 0, 0, // TaskID ""
			0, 0, 0, 0, 0, 0, 0, 0, // Round
			0, 0, 0, 0, // Update empty
			0xFF, 0xFF, 0xFF, 0xFF, // metrics count 4 billion
		}},
	}
	for _, h := range hostile {
		if _, err := UnmarshalBinary(h[0].(byte), h[1].([]byte)); err == nil {
			t.Errorf("hostile payload for code %d decoded cleanly", h[0])
		}
	}
}
