package protocol

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// partsMessages covers every codec message with its large fields populated.
func partsMessages() []interface{} {
	big := make([]byte, 1<<16)
	for i := range big {
		big[i] = byte(i * 7)
	}
	return []interface{}{
		CheckinRequest{DeviceID: "d-1", Population: "pop", RuntimeVersion: 3, AttestationToken: []byte{1, 2, 3}},
		CheckinResponse{Accepted: true, TaskID: "t", Round: 9, Plan: big[:4096], Checkpoint: big,
			ReportDeadline: time.Minute},
		CheckinResponse{Accepted: false, Reason: "later", RetryAfter: time.Second},
		ReportRequest{DeviceID: "d-1", TaskID: "t", Round: 9, Update: big,
			Metrics: map[string]float64{"loss": 0.5}},
		ReportRequest{DeviceID: "d-2", TaskID: "t", Round: 9, Aborted: true},
		ReportResponse{Accepted: true, RetryAfter: time.Second},
		Abort{TaskID: "t", Round: 9, Reason: "done"},
	}
}

// TestMarshalBinaryPartsConcatenationMatches: the vectored segments must
// concatenate to exactly the contiguous MarshalBinary payload, and decode
// back to the original message.
func TestMarshalBinaryPartsConcatenationMatches(t *testing.T) {
	for _, msg := range partsMessages() {
		codeP, parts, ok := MarshalBinaryParts(msg)
		if !ok {
			t.Fatalf("%T not covered by parts codec", msg)
		}
		codeB, payload, ok := MarshalBinary(msg)
		if !ok || codeP != codeB {
			t.Fatalf("%T: code mismatch %d vs %d", msg, codeP, codeB)
		}
		var joined []byte
		for _, p := range parts {
			joined = append(joined, p...)
		}
		if !bytes.Equal(joined, payload) {
			t.Fatalf("%T: parts concatenation differs from contiguous payload (%d vs %d bytes)",
				msg, len(joined), len(payload))
		}
		got, err := UnmarshalBinary(codeP, joined)
		if err != nil {
			t.Fatalf("%T: decode: %v", msg, err)
		}
		if !reflect.DeepEqual(got, msg) {
			t.Fatalf("%T: round-trip mismatch:\n got %+v\nwant %+v", msg, got, msg)
		}
	}
}

// TestMarshalBinaryPartsAliasesLargeFields: the whole point of the parts
// codec is that the O(dim) payloads are NOT copied — the returned segments
// must share backing arrays with the message's byte fields.
func TestMarshalBinaryPartsAliasesLargeFields(t *testing.T) {
	upd := []byte{9, 8, 7, 6}
	_, parts, ok := MarshalBinaryParts(ReportRequest{DeviceID: "d", Update: upd})
	if !ok || len(parts) != 3 {
		t.Fatalf("unexpected parts shape: ok=%v len=%d", ok, len(parts))
	}
	if &parts[1][0] != &upd[0] {
		t.Fatal("ReportRequest.Update was copied, not aliased")
	}
	planB, ckpt := []byte{1, 2}, []byte{3, 4, 5}
	_, parts, ok = MarshalBinaryParts(CheckinResponse{Accepted: true, Plan: planB, Checkpoint: ckpt})
	if !ok || len(parts) != 5 {
		t.Fatalf("unexpected parts shape: ok=%v len=%d", ok, len(parts))
	}
	if &parts[1][0] != &planB[0] || &parts[3][0] != &ckpt[0] {
		t.Fatal("CheckinResponse.Plan/Checkpoint were copied, not aliased")
	}
}

// TestMarshalBinaryPartsUnknownType falls through to the gob path marker.
func TestMarshalBinaryPartsUnknownType(t *testing.T) {
	if _, _, ok := MarshalBinaryParts(struct{ X int }{1}); ok {
		t.Fatal("unknown type must not be claimed by the binary codec")
	}
}
