// Package protocol defines the wire messages of the FL protocol (Sec. 2):
// device check-in, plan/checkpoint delivery, update reporting, and the
// pace-steering hints that tell rejected devices when to come back. The
// same message types flow over the in-memory transport (simulation, tests)
// and the TCP transport (cmd/flserver).
package protocol

import (
	"encoding/gob"
	"time"
)

// CheckinRequest announces a device's readiness to run an FL task for a
// population (Sec. 2.2, Selection).
type CheckinRequest struct {
	DeviceID       string
	Population     string
	RuntimeVersion int
	// AttestationToken proves the device is genuine (Sec. 3, Attestation).
	AttestationToken []byte
}

// CheckinResponse either admits the device into a round (carrying the plan
// and global checkpoint) or rejects it with a reconnect hint.
type CheckinResponse struct {
	Accepted bool
	// RetryAfter is the pace-steering suggestion for rejected devices
	// ("come back later!").
	RetryAfter time.Duration
	// Reason is a human-readable rejection reason for analytics.
	Reason string

	// The fields below are set for accepted devices (Configuration phase).
	TaskID string
	Round  int64
	// Plan is the marshaled, version-matched FL plan.
	Plan []byte
	// Checkpoint is the marshaled global model checkpoint.
	Checkpoint []byte
	// ReportDeadline caps the device's participation time (Fig. 8).
	ReportDeadline time.Duration
}

// ReportRequest carries a device's update back to the server (Sec. 2.2,
// Reporting).
type ReportRequest struct {
	DeviceID string
	TaskID   string
	Round    int64
	// Update is the marshaled update checkpoint (weighted delta).
	Update []byte
	// Metrics are the device-computed metric values (loss etc.).
	Metrics map[string]float64
	// Aborted is set when the device gave up (eligibility change, error)
	// and reports only for accounting.
	Aborted bool
}

// ReportResponse acknowledges a report and tells the device when to
// reconnect next (pace steering also applies to completed devices).
type ReportResponse struct {
	Accepted   bool
	Reason     string
	RetryAfter time.Duration
}

// Abort is sent by the server when the round is over and the device's work
// is no longer needed (over-selected devices, Fig. 7 "aborted").
type Abort struct {
	TaskID string
	Round  int64
	Reason string
}

func init() {
	// Register every message for the gob-based TCP transport.
	gob.Register(CheckinRequest{})
	gob.Register(CheckinResponse{})
	gob.Register(ReportRequest{})
	gob.Register(ReportResponse{})
	gob.Register(Abort{})
}
