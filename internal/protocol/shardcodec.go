package protocol

import (
	"encoding/binary"
	"math"
	"time"
)

// Binary codec for the sharded-deployment messages of shard.go, following
// codec.go's conventions exactly: fixed-order big-endian fields, u32-length
// prefixes, i64-nanosecond durations, and count-vs-remaining-bytes
// validation before any count-sized allocation. The bulk fields — a
// StripeSeal's Sum, a RoundConfig's Plan and Checkpoint — are returned as
// their own ALIASED segments so the transport's vectored writes ship a
// multi-MB sealed partial without ever copying it into a contiguous frame.

// marshalShardParts extends MarshalBinaryParts with the shard messages.
func marshalShardParts(msg interface{}) (code byte, parts [][]byte, ok bool) {
	switch m := msg.(type) {
	case StripeSeal:
		head := make([]byte, 0, sizeStr(m.Population)+sizeStr(m.TaskID)+8+4+8+8+8+8+8+4)
		head = appendStr(head, m.Population)
		head = appendStr(head, m.TaskID)
		head = binary.BigEndian.AppendUint64(head, uint64(m.Round))
		head = binary.BigEndian.AppendUint32(head, m.Shard)
		head = binary.BigEndian.AppendUint64(head, uint64(m.Reports))
		head = binary.BigEndian.AppendUint64(head, uint64(m.EvalReports))
		head = binary.BigEndian.AppendUint64(head, uint64(m.Lost))
		head = binary.BigEndian.AppendUint64(head, uint64(m.Clipped))
		head = binary.BigEndian.AppendUint64(head, math.Float64bits(m.Weight))
		head = binary.BigEndian.AppendUint32(head, uint32(len(m.Sum)))
		tail := make([]byte, 0, sizeMetricSamples(m.Metrics)+sizeNamedI64s(m.Phases))
		tail = appendMetricSamples(tail, m.Metrics)
		tail = appendNamedI64s(tail, m.Phases)
		return CodeStripeSeal, [][]byte{head, m.Sum, tail}, true
	case RoundConfig:
		head := make([]byte, 0, sizeStr(m.Population)+sizeStr(m.TaskID)+8+8+8+8+1+8+8+1+8+4)
		head = appendStr(head, m.Population)
		head = appendStr(head, m.TaskID)
		head = binary.BigEndian.AppendUint64(head, uint64(m.Round))
		head = binary.BigEndian.AppendUint64(head, uint64(int64(m.Target)))
		head = binary.BigEndian.AppendUint64(head, uint64(int64(m.Admit)))
		head = binary.BigEndian.AppendUint64(head, uint64(int64(m.Estimate)))
		head = appendBool(head, m.EvalOnly)
		head = binary.BigEndian.AppendUint64(head, uint64(int64(m.ReportDeadline)))
		head = binary.BigEndian.AppendUint64(head, uint64(int64(m.ReportTimeout)))
		head = append(head, m.RobustKind)
		head = binary.BigEndian.AppendUint64(head, math.Float64bits(m.ClipNorm))
		head = binary.BigEndian.AppendUint32(head, uint32(len(m.Plan)))
		mid := make([]byte, 0, 4)
		mid = binary.BigEndian.AppendUint32(mid, uint32(len(m.Checkpoint)))
		return CodeRoundConfig, [][]byte{head, m.Plan, mid, m.Checkpoint}, true
	case RoundFinalize:
		buf := make([]byte, 0, sizeStr(m.Population)+sizeStr(m.TaskID)+8)
		buf = appendStr(buf, m.Population)
		buf = appendStr(buf, m.TaskID)
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
		return CodeRoundFinalize, [][]byte{buf}, true
	case RoundAbort:
		buf := make([]byte, 0, sizeStr(m.Population)+sizeStr(m.TaskID)+8+sizeStr(m.Reason))
		buf = appendStr(buf, m.Population)
		buf = appendStr(buf, m.TaskID)
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.Round))
		buf = appendStr(buf, m.Reason)
		return CodeRoundAbort, [][]byte{buf}, true
	case ShardHello:
		buf := make([]byte, 0, 4+sizeStr(m.Name))
		buf = binary.BigEndian.AppendUint32(buf, m.Shard)
		buf = appendStr(buf, m.Name)
		return CodeShardHello, [][]byte{buf}, true
	case CheckinRate:
		buf := make([]byte, 0, sizeStr(m.Population)+4+sizeStr(m.Source)+8+8+8)
		buf = appendStr(buf, m.Population)
		buf = binary.BigEndian.AppendUint32(buf, m.Shard)
		buf = appendStr(buf, m.Source)
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.Count))
		buf = binary.BigEndian.AppendUint64(buf, uint64(int64(m.Elapsed)))
		buf = binary.BigEndian.AppendUint64(buf, uint64(m.Demand))
		return CodeCheckinRate, [][]byte{buf}, true
	case ActorEnvelope:
		head := make([]byte, 0, sizeStr(m.Target)+4)
		head = appendStr(head, m.Target)
		head = binary.BigEndian.AppendUint32(head, uint32(len(m.Payload)))
		return CodeActorEnvelope, [][]byte{head, m.Payload}, true
	case LockRequest:
		buf := make([]byte, 0, 8+1+sizeStr(m.Key)+sizeStr(m.Owner))
		buf = binary.BigEndian.AppendUint64(buf, m.Seq)
		buf = append(buf, m.Op)
		buf = appendStr(buf, m.Key)
		buf = appendStr(buf, m.Owner)
		return CodeLockRequest, [][]byte{buf}, true
	case LockResponse:
		buf := make([]byte, 0, 8+1+sizeStr(m.Owner))
		buf = binary.BigEndian.AppendUint64(buf, m.Seq)
		buf = appendBool(buf, m.OK)
		buf = appendStr(buf, m.Owner)
		return CodeLockResponse, [][]byte{buf}, true
	case Heartbeat:
		buf := make([]byte, 0, 8+1)
		buf = binary.BigEndian.AppendUint64(buf, m.Seq)
		buf = appendBool(buf, m.Ack)
		return CodeHeartbeat, [][]byte{buf}, true
	case TelemetrySnapshot:
		buf := make([]byte, 0, 4+sizeStr(m.Name)+sizeNamedI64s(m.Counters)+
			sizeMetrics(m.Gauges)+sizeMetricSamples(m.Summaries))
		buf = binary.BigEndian.AppendUint32(buf, m.Shard)
		buf = appendStr(buf, m.Name)
		buf = appendNamedI64s(buf, m.Counters)
		buf = appendMetrics(buf, m.Gauges)
		buf = appendMetricSamples(buf, m.Summaries)
		return CodeTelemetrySnapshot, [][]byte{buf}, true
	}
	return 0, nil, false
}

// unmarshalShard extends UnmarshalBinary with the shard messages. handled
// is false for codes this file does not know; decode errors latch in r and
// are reported by the caller, which also enforces the trailing-bytes check.
func unmarshalShard(code byte, r *reader) (msg interface{}, handled bool) {
	switch code {
	case CodeStripeSeal:
		m := StripeSeal{}
		m.Population = r.str()
		m.TaskID = r.str()
		m.Round = r.i64()
		m.Shard = r.u32c("shard")
		m.Reports = r.i64()
		m.EvalReports = r.i64()
		m.Lost = r.i64()
		m.Clipped = r.i64()
		m.Weight = r.f64()
		m.Sum = r.bytes()
		m.Metrics = r.metricSamples()
		m.Phases = r.namedI64s("seal phases")
		return m, true
	case CodeRoundConfig:
		m := RoundConfig{}
		m.Population = r.str()
		m.TaskID = r.str()
		m.Round = r.i64()
		m.Target = int(r.i64())
		m.Admit = int(r.i64())
		m.Estimate = int(r.i64())
		m.EvalOnly = r.bool()
		m.ReportDeadline = time.Duration(r.i64())
		m.ReportTimeout = time.Duration(r.i64())
		m.RobustKind = r.u8("robust kind")
		m.ClipNorm = r.f64()
		m.Plan = r.bytes()
		m.Checkpoint = r.bytes()
		return m, true
	case CodeRoundFinalize:
		m := RoundFinalize{}
		m.Population = r.str()
		m.TaskID = r.str()
		m.Round = r.i64()
		return m, true
	case CodeRoundAbort:
		m := RoundAbort{}
		m.Population = r.str()
		m.TaskID = r.str()
		m.Round = r.i64()
		m.Reason = r.str()
		return m, true
	case CodeShardHello:
		m := ShardHello{}
		m.Shard = r.u32c("shard")
		m.Name = r.str()
		return m, true
	case CodeCheckinRate:
		m := CheckinRate{}
		m.Population = r.str()
		m.Shard = r.u32c("shard")
		m.Source = r.str()
		m.Count = r.i64()
		m.Elapsed = time.Duration(r.i64())
		m.Demand = r.i64()
		return m, true
	case CodeActorEnvelope:
		m := ActorEnvelope{}
		m.Target = r.str()
		m.Payload = r.bytes()
		return m, true
	case CodeLockRequest:
		m := LockRequest{}
		m.Seq = uint64(r.i64())
		m.Op = r.u8("lock op")
		m.Key = r.str()
		m.Owner = r.str()
		return m, true
	case CodeLockResponse:
		m := LockResponse{}
		m.Seq = uint64(r.i64())
		m.OK = r.bool()
		m.Owner = r.str()
		return m, true
	case CodeHeartbeat:
		m := Heartbeat{}
		m.Seq = uint64(r.i64())
		m.Ack = r.bool()
		return m, true
	case CodeTelemetrySnapshot:
		m := TelemetrySnapshot{}
		m.Shard = r.u32c("shard")
		m.Name = r.str()
		m.Counters = r.namedI64s("telemetry counters")
		m.Gauges = r.metrics()
		m.Summaries = r.metricSamples()
		return m, true
	}
	return nil, false
}

// --- codec helpers for the shard messages ---

func sizeMetricSamples(m map[string][]float64) int {
	n := 4
	for k, vs := range m {
		n += sizeStr(k) + 4 + 8*len(vs)
	}
	return n
}

func appendMetricSamples(buf []byte, m map[string][]float64) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m)))
	for k, vs := range m {
		buf = appendStr(buf, k)
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(vs)))
		for _, v := range vs {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	return buf
}

func sizeNamedI64s(m map[string]int64) int {
	n := 4
	for k := range m {
		n += sizeStr(k) + 8
	}
	return n
}

func appendNamedI64s(buf []byte, m map[string]int64) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m)))
	for k, v := range m {
		buf = appendStr(buf, k)
		buf = binary.BigEndian.AppendUint64(buf, uint64(v))
	}
	return buf
}

// namedI64s decodes a name→int64 map (telemetry counters, seal phase
// durations). The entry count is validated against the bytes actually
// remaining — each entry is ≥ 12 bytes (name length prefix + value) — so a
// hostile count cannot commit memory proportional to its claim.
func (r *reader) namedI64s(what string) map[string]int64 {
	n := r.u32(what + " count")
	if r.err != nil || n == 0 {
		return nil
	}
	if n > len(r.b)/12 {
		r.fail(what + " entries")
		return nil
	}
	m := make(map[string]int64, n)
	for i := 0; i < n; i++ {
		k := r.str()
		v := r.i64()
		if r.err != nil {
			return nil
		}
		m[k] = v
	}
	return m
}

func (r *reader) u32c(what string) uint32 {
	b := r.take(4, what)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u8(what string) uint8 {
	b := r.take(1, what)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) f64() float64 {
	return math.Float64frombits(uint64(r.i64()))
}

// metricSamples decodes a map of per-metric value slices. Both the entry
// count and every per-metric value count are validated against the bytes
// actually remaining before allocating, so a hostile count cannot commit
// memory proportional to its claim.
func (r *reader) metricSamples() map[string][]float64 {
	n := r.u32("metric sample count")
	if r.err != nil || n == 0 {
		return nil
	}
	// Each entry is ≥ 8 bytes (name length prefix + value count).
	if n > len(r.b)/8 {
		r.fail("metric sample entries")
		return nil
	}
	m := make(map[string][]float64, n)
	for i := 0; i < n; i++ {
		k := r.str()
		c := r.u32("metric value count")
		if r.err != nil {
			return nil
		}
		if c > len(r.b)/8 {
			r.fail("metric values")
			return nil
		}
		vs := make([]float64, c)
		for j := range vs {
			vs[j] = r.f64()
		}
		if r.err != nil {
			return nil
		}
		m[k] = vs
	}
	return m
}
