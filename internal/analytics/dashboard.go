package analytics

import (
	"fmt"
	"sort"
	"strings"
)

// Dashboard assembles the Sec. 5 operator view: counters, session-shape
// distribution, traffic totals, and monitored time series with their
// alerts, rendered as text ("aggregated and presented in dashboards to be
// analyzed").
type Dashboard struct {
	Title    string
	Counters *Counters
	Shapes   *ShapeCounter
	Traffic  *Traffic
	Series   []*TimeSeries
}

// Render returns the dashboard as a text block.
func (d *Dashboard) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", d.Title)

	if d.Counters != nil {
		snap := d.Counters.Snapshot()
		names := make([]string, 0, len(snap))
		for name := range snap {
			names = append(names, name)
		}
		sort.Strings(names)
		if len(names) > 0 {
			fmt.Fprintf(&b, "counters:\n")
			for _, name := range names {
				fmt.Fprintf(&b, "  %-32s %12d\n", name, snap[name])
			}
		}
	}

	if d.Traffic != nil {
		down, up := d.Traffic.Totals()
		fmt.Fprintf(&b, "traffic: %0.1f MB down / %0.1f MB up\n",
			float64(down)/1e6, float64(up)/1e6)
	}

	if d.Shapes != nil && d.Shapes.Total() > 0 {
		fmt.Fprintf(&b, "sessions (%d total):\n", d.Shapes.Total())
		for _, row := range d.Shapes.Distribution() {
			bar := strings.Repeat("#", int(row.Percent/2))
			fmt.Fprintf(&b, "  %-10s %6.1f%% %s\n", row.Shape, row.Percent, bar)
		}
	}

	for _, ts := range d.Series {
		pts := ts.Points()
		if len(pts) == 0 {
			continue
		}
		last := pts[len(pts)-1]
		fmt.Fprintf(&b, "series %s: %d points, last %.4g at %s",
			ts.name, len(pts), last.V, last.T.Format("15:04:05"))
		if alerts := ts.Alerts(); len(alerts) > 0 {
			fmt.Fprintf(&b, "  [%d ALERTS, last: %.4g vs mean %.4g]",
				len(alerts), alerts[len(alerts)-1].Value, alerts[len(alerts)-1].Mean)
		}
		fmt.Fprintf(&b, "\n")
	}
	return b.String()
}
