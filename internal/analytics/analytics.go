// Package analytics is the observability layer of Sec. 5: device and server
// event logs (free of PII), counters, time-series monitors with alerting,
// session-shape visualizations of on-device training rounds (Table 1), and
// the traffic accounting behind Fig. 9.
package analytics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// SessionState is one state in a device's training round, logged as an
// event and rendered as a single character in the session shape string
// (Table 1 legend).
type SessionState uint8

// Session states and their visualization characters.
const (
	StateCheckin        SessionState = iota + 1 // '-' FL server checkin
	StateDownloadedPlan                         // 'v' downloaded plan
	StateTrainStarted                           // '[' training started
	StateTrainCompleted                         // ']' training completed
	StateUploadStarted                          // '+' upload started
	StateUploadDone                             // '^' upload completed
	StateUploadRejected                         // '#' upload rejected
	StateError                                  // '*' error
	StateInterrupted                            // '!' interrupted
)

// Rune returns the visualization character.
func (s SessionState) Rune() rune {
	switch s {
	case StateCheckin:
		return '-'
	case StateDownloadedPlan:
		return 'v'
	case StateTrainStarted:
		return '['
	case StateTrainCompleted:
		return ']'
	case StateUploadStarted:
		return '+'
	case StateUploadDone:
		return '^'
	case StateUploadRejected:
		return '#'
	case StateError:
		return '*'
	case StateInterrupted:
		return '!'
	default:
		return '?'
	}
}

// Session accumulates one device round's state transitions.
type Session struct {
	states []SessionState
}

// Log appends a state.
func (s *Session) Log(state SessionState) { s.states = append(s.states, state) }

// Shape renders the visualization string, e.g. "-v[]+^".
func (s *Session) Shape() string {
	out := make([]rune, len(s.states))
	for i, st := range s.states {
		out[i] = st.Rune()
	}
	return string(out)
}

// ShapeCounter aggregates session shapes across devices, the data behind
// Table 1. Safe for concurrent use.
type ShapeCounter struct {
	mu     sync.Mutex
	counts map[string]int
	total  int
}

// NewShapeCounter returns an empty counter.
func NewShapeCounter() *ShapeCounter {
	return &ShapeCounter{counts: make(map[string]int)}
}

// Observe records one completed session.
func (c *ShapeCounter) Observe(shape string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counts[shape]++
	c.total++
}

// ShapeCount is one row of the Table 1 distribution.
type ShapeCount struct {
	Shape   string
	Count   int
	Percent float64
}

// Distribution returns rows sorted by descending count.
func (c *ShapeCounter) Distribution() []ShapeCount {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ShapeCount, 0, len(c.counts))
	for shape, n := range c.counts {
		pct := 0.0
		if c.total > 0 {
			pct = 100 * float64(n) / float64(c.total)
		}
		out = append(out, ShapeCount{Shape: shape, Count: n, Percent: pct})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Shape < out[j].Shape
	})
	return out
}

// Total returns the number of observed sessions.
func (c *ShapeCounter) Total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Counters is a registry of named monotonic counters ("how many devices
// were accepted and rejected per training round, … errors, and so on").
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters {
	return &Counters{m: make(map[string]int64)}
}

// Add increments a counter.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Get reads a counter (0 when absent).
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Snapshot returns a copy of every counter.
func (c *Counters) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Traffic tracks server network byte counts by direction (Fig. 9).
type Traffic struct {
	mu       sync.Mutex
	download int64 // server → device
	upload   int64 // device → server
}

// NewTraffic returns zeroed traffic accounting.
func NewTraffic() *Traffic { return &Traffic{} }

// AddDownload records server→device bytes.
func (t *Traffic) AddDownload(n int) {
	t.mu.Lock()
	t.download += int64(n)
	t.mu.Unlock()
}

// AddUpload records device→server bytes.
func (t *Traffic) AddUpload(n int) {
	t.mu.Lock()
	t.upload += int64(n)
	t.mu.Unlock()
}

// Totals returns (download, upload) byte counts.
func (t *Traffic) Totals() (download, upload int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.download, t.upload
}

// Point is one time-series observation.
type Point struct {
	T time.Time
	V float64
}

// TimeSeries is an append-only series with a deviation monitor: "automatic
// time-series monitors that trigger alerts on substantial deviations".
type TimeSeries struct {
	mu     sync.Mutex
	name   string
	points []Point
	// window and threshold configure the monitor: alert when a new value
	// deviates from the trailing-window mean by more than threshold×mean.
	window    int
	threshold float64
	alerts    []Alert
}

// Alert records one triggered deviation.
type Alert struct {
	Series string
	At     time.Time
	Value  float64
	Mean   float64
}

// NewTimeSeries creates a monitored series; window is the trailing sample
// count for the baseline, threshold the allowed relative deviation.
func NewTimeSeries(name string, window int, threshold float64) (*TimeSeries, error) {
	if window < 1 || threshold <= 0 {
		return nil, fmt.Errorf("analytics: bad monitor config window=%d threshold=%v", window, threshold)
	}
	return &TimeSeries{name: name, window: window, threshold: threshold}, nil
}

// Append records a point, returning a non-nil Alert if the monitor fired.
func (ts *TimeSeries) Append(t time.Time, v float64) *Alert {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	var alert *Alert
	n := len(ts.points)
	if n >= ts.window {
		var sum float64
		for _, p := range ts.points[n-ts.window:] {
			sum += p.V
		}
		mean := sum / float64(ts.window)
		dev := v - mean
		if dev < 0 {
			dev = -dev
		}
		base := mean
		if base < 0 {
			base = -base
		}
		if base > 0 && dev > ts.threshold*base {
			alert = &Alert{Series: ts.name, At: t, Value: v, Mean: mean}
			ts.alerts = append(ts.alerts, *alert)
		}
	}
	ts.points = append(ts.points, Point{T: t, V: v})
	return alert
}

// Points returns a copy of the series.
func (ts *TimeSeries) Points() []Point {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]Point(nil), ts.points...)
}

// Alerts returns every alert fired so far.
func (ts *TimeSeries) Alerts() []Alert {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]Alert(nil), ts.alerts...)
}
