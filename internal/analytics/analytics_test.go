package analytics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSessionShapes(t *testing.T) {
	// The two examples from Sec. 5.
	s1 := &Session{}
	for _, st := range []SessionState{StateCheckin, StateDownloadedPlan, StateTrainStarted, StateTrainCompleted, StateUploadStarted, StateError} {
		s1.Log(st)
	}
	if s1.Shape() != "-v[]+*" {
		t.Fatalf("shape = %q, want -v[]+*", s1.Shape())
	}
	s2 := &Session{}
	for _, st := range []SessionState{StateCheckin, StateDownloadedPlan, StateTrainStarted, StateError} {
		s2.Log(st)
	}
	if s2.Shape() != "-v[*" {
		t.Fatalf("shape = %q, want -v[*", s2.Shape())
	}
}

func TestTable1Shapes(t *testing.T) {
	// The three session shapes of Table 1.
	success := &Session{}
	for _, st := range []SessionState{StateCheckin, StateDownloadedPlan, StateTrainStarted, StateTrainCompleted, StateUploadStarted, StateUploadDone} {
		success.Log(st)
	}
	if success.Shape() != "-v[]+^" {
		t.Fatalf("success shape = %q", success.Shape())
	}
	rejected := &Session{}
	for _, st := range []SessionState{StateCheckin, StateDownloadedPlan, StateTrainStarted, StateTrainCompleted, StateUploadStarted, StateUploadRejected} {
		rejected.Log(st)
	}
	if rejected.Shape() != "-v[]+#" {
		t.Fatalf("rejected shape = %q", rejected.Shape())
	}
	interrupted := &Session{}
	for _, st := range []SessionState{StateCheckin, StateDownloadedPlan, StateTrainStarted, StateInterrupted} {
		interrupted.Log(st)
	}
	if interrupted.Shape() != "-v[!" {
		t.Fatalf("interrupted shape = %q", interrupted.Shape())
	}
}

func TestUnknownStateRune(t *testing.T) {
	if SessionState(99).Rune() != '?' {
		t.Fatal("unknown state should render '?'")
	}
}

func TestShapeCounterDistribution(t *testing.T) {
	c := NewShapeCounter()
	for i := 0; i < 75; i++ {
		c.Observe("-v[]+^")
	}
	for i := 0; i < 22; i++ {
		c.Observe("-v[]+#")
	}
	for i := 0; i < 3; i++ {
		c.Observe("-v[!")
	}
	dist := c.Distribution()
	if len(dist) != 3 {
		t.Fatalf("distribution rows = %d", len(dist))
	}
	if dist[0].Shape != "-v[]+^" || dist[0].Count != 75 || dist[0].Percent != 75 {
		t.Fatalf("top row: %+v", dist[0])
	}
	if dist[2].Shape != "-v[!" || dist[2].Percent != 3 {
		t.Fatalf("last row: %+v", dist[2])
	}
	if c.Total() != 100 {
		t.Fatalf("total = %d", c.Total())
	}
}

func TestShapeCounterConcurrent(t *testing.T) {
	c := NewShapeCounter()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Observe("-v[]+^")
			}
		}()
	}
	wg.Wait()
	if c.Total() != 4000 {
		t.Fatalf("total = %d", c.Total())
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("devices_accepted", 5)
	c.Add("devices_accepted", 3)
	c.Add("devices_rejected", 1)
	if c.Get("devices_accepted") != 8 || c.Get("devices_rejected") != 1 {
		t.Fatalf("counters: %+v", c.Snapshot())
	}
	if c.Get("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	snap := c.Snapshot()
	c.Add("devices_accepted", 100)
	if snap["devices_accepted"] != 8 {
		t.Fatal("snapshot must be a copy")
	}
}

func TestTraffic(t *testing.T) {
	tr := NewTraffic()
	tr.AddDownload(1000)
	tr.AddDownload(500)
	tr.AddUpload(300)
	down, up := tr.Totals()
	if down != 1500 || up != 300 {
		t.Fatalf("traffic: %d / %d", down, up)
	}
}

func TestTimeSeriesMonitorFires(t *testing.T) {
	ts, err := NewTimeSeries("dropout_rate", 5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		if a := ts.Append(t0.Add(time.Duration(i)*time.Minute), 0.08); a != nil {
			t.Fatalf("stable series alerted: %+v", a)
		}
	}
	// 0.30 deviates from the 0.08 baseline by far more than 50%.
	alert := ts.Append(t0.Add(time.Hour), 0.30)
	if alert == nil {
		t.Fatal("deviation did not alert")
	}
	if alert.Series != "dropout_rate" || alert.Value != 0.30 {
		t.Fatalf("alert: %+v", alert)
	}
	if len(ts.Alerts()) != 1 {
		t.Fatalf("alerts = %d", len(ts.Alerts()))
	}
}

func TestTimeSeriesNoAlertBeforeWindow(t *testing.T) {
	ts, _ := NewTimeSeries("x", 10, 0.1)
	t0 := time.Now()
	for i := 0; i < 9; i++ {
		if a := ts.Append(t0, float64(i*100)); a != nil {
			t.Fatal("must not alert before window fills")
		}
	}
}

func TestTimeSeriesBadConfig(t *testing.T) {
	if _, err := NewTimeSeries("x", 0, 0.5); err == nil {
		t.Fatal("window 0 must fail")
	}
	if _, err := NewTimeSeries("x", 5, 0); err == nil {
		t.Fatal("threshold 0 must fail")
	}
}

func TestTimeSeriesPointsCopied(t *testing.T) {
	ts, _ := NewTimeSeries("x", 2, 1)
	ts.Append(time.Now(), 1)
	pts := ts.Points()
	if len(pts) != 1 || pts[0].V != 1 {
		t.Fatalf("points: %+v", pts)
	}
}

func TestDashboardRender(t *testing.T) {
	counters := NewCounters()
	counters.Add("devices_accepted", 130)
	counters.Add("devices_rejected", 900)

	shapes := NewShapeCounter()
	for i := 0; i < 75; i++ {
		shapes.Observe("-v[]+^")
	}
	for i := 0; i < 25; i++ {
		shapes.Observe("-v[!")
	}

	traffic := NewTraffic()
	traffic.AddDownload(5_000_000)
	traffic.AddUpload(1_000_000)

	ts, _ := NewTimeSeries("dropout_rate", 3, 0.5)
	base := time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		ts.Append(base.Add(time.Duration(i)*time.Minute), 0.08)
	}
	ts.Append(base.Add(time.Hour), 0.4) // fires an alert

	d := &Dashboard{
		Title:    "gboard/next-word",
		Counters: counters,
		Shapes:   shapes,
		Traffic:  traffic,
		Series:   []*TimeSeries{ts},
	}
	out := d.Render()
	for _, want := range []string{
		"gboard/next-word",
		"devices_accepted",
		"130",
		"-v[]+^",
		"75.0%",
		"5.0 MB down / 1.0 MB up",
		"dropout_rate",
		"ALERTS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
}

func TestDashboardEmptySections(t *testing.T) {
	d := &Dashboard{Title: "empty"}
	out := d.Render()
	if !strings.Contains(out, "empty") {
		t.Fatal("title missing")
	}
}
