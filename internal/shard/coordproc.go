package shard

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/actor"
	"repro/internal/checkpoint"
	"repro/internal/fedavg"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/remote"
	"repro/internal/storage"
	"repro/internal/tasks"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// CoordinatorConfig configures the coordinator process of a sharded
// deployment: the single owner of one population's round state, task set,
// pacing, and lock service.
type CoordinatorConfig struct {
	Population string
	// Plans seeds the task set (sugar, like flserver.Config.Plans).
	Plans              []*plan.Plan
	Store              storage.Store
	Steering           *pacing.Steering
	PopulationEstimate int
	// MaxRounds stops after that many committed rounds (0 = forever).
	MaxRounds int
	// MinShards is how many connected shards a round needs to start
	// (default 1).
	MinShards int
	// SealGrace is the extra wait, past the round's ReportTimeout, for
	// straggler seals before the round settles with what arrived
	// (default 2s).
	SealGrace time.Duration
	// TickEvery paces the scheduling loop (default 250ms).
	TickEvery time.Duration
	Now       func() time.Time
}

// --- coordinator actor messages ---

type msgShardUp struct {
	Sess  *remote.Session
	Hello protocol.ShardHello
}
type msgShardDown struct{ Sess *remote.Session }
type msgSeal struct {
	Sess *remote.Session
	M    protocol.StripeSeal
}
type msgRate struct{ M protocol.CheckinRate }
type msgShardAbort struct {
	Sess *remote.Session
	M    protocol.RoundAbort
}
type msgCoordTick struct{}
type msgRoundDeadline struct{ Round int64 }
type msgRoundGrace struct{ Round int64 }
type msgCoordStats struct{ Reply chan CoordStats }
type msgPerShard struct {
	Reply chan map[uint32]ShardContribution
}

// CoordStats reports the sharded coordinator's progress.
type CoordStats struct {
	RoundsCompleted int
	RoundsFailed    int
	CurrentRound    int64
	// Shards is the number of currently connected selector shards.
	Shards int
	// SealsReceived / BytesUpstream count sealed stripes (and their wire
	// bytes) received from shards — the only aggregation traffic that
	// crosses the process boundary.
	SealsReceived int64
	BytesUpstream int64
	// Clipped totals norm-bound edge clips reported in seals across every
	// round so far.
	Clipped int64
}

// ShardContribution is one shard's cumulative contribution as seen by the
// coordinator. It survives reconnects (keyed by shard index, not link).
type ShardContribution struct {
	Name      string
	Connected bool
	Seals     int64
	Bytes     int64
	Reports   int64
	Lost      int64
}

// shardRound is the coordinator's state for the round in flight.
type shardRound struct {
	p        *plan.Plan
	task     tasks.Task
	global   *checkpoint.Checkpoint
	round    int64
	evalOnly bool
	acc      *fedavg.Accumulator
	metrics  map[string][]float64
	reports  int
	evalRep  int
	lost     int
	// clipped totals the shards' norm-bound edge clips for the round.
	clipped int64
	pending map[*remote.Session]bool
	// enc is the round's RoundConfig pre-framed once and fanned out to
	// every shard (and re-sent to reconnecting shards).
	enc    *transport.Encoded
	cfgMsg protocol.RoundConfig
	// finalizing is set once RoundFinalize went out to stragglers.
	finalizing bool
	// started anchors the round trace; phases max-merges the per-shard
	// lifecycle spans shipped inside the seals (the fleet-wide cost of a
	// phase is its slowest shard's).
	started time.Time
	phases  map[string]int64
}

// shardCoordinator is the coordinator actor: the analogue of
// flserver.Coordinator plus Master Aggregator for the sharded deployment —
// shards run the device-facing round at the edge, so what remains here is
// task scheduling, RoundConfig fan-out, seal merging, and the commit.
type shardCoordinator struct {
	cfg   CoordinatorConfig
	locks *actor.LockService
	tasks *tasks.TaskSet
	now   func() time.Time

	acquired bool
	shards   map[*remote.Session]protocol.ShardHello
	contrib  map[uint32]*ShardContribution
	global   map[string]*checkpoint.Checkpoint
	rates    *pacing.RateTracker

	cur       *shardRound
	completed int
	failed    int
	drained   bool
	onDone    chan struct{}

	sealsRecv  int64
	bytesUp    int64
	clippedTot int64
}

// Receive implements actor.Behavior.
func (sc *shardCoordinator) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case msgCoordTick:
		sc.onTick(ctx)
	case msgShardUp:
		sc.onShardUp(ctx, m)
	case msgShardDown:
		sc.onShardDown(ctx, m.Sess)
	case msgSeal:
		sc.onSeal(ctx, m)
	case msgRate:
		sc.onRate(m.M)
	case msgShardAbort:
		// A shard refused the round (e.g. undecodable checkpoint). Its seal
		// will never come; drop it from the round like a disconnect.
		if sc.cur != nil && m.M.TaskID == sc.cur.p.ID && m.M.Round == sc.cur.round && sc.cur.pending[m.Sess] {
			delete(sc.cur.pending, m.Sess)
			if len(sc.cur.pending) == 0 {
				sc.finish(ctx)
			}
		}
	case msgRoundDeadline:
		sc.onDeadline(ctx, m.Round)
	case msgRoundGrace:
		if sc.cur != nil && sc.cur.round == m.Round {
			sc.finish(ctx)
		}
	case msgCoordStats:
		round := int64(0)
		if sc.cur != nil {
			round = sc.cur.round
		} else if id, ok := sc.tasks.PrimaryID(); ok {
			if g, ok := sc.global[id]; ok {
				round = g.Round
			}
		}
		m.Reply <- CoordStats{
			RoundsCompleted: sc.completed,
			RoundsFailed:    sc.failed,
			CurrentRound:    round,
			Shards:          len(sc.shards),
			SealsReceived:   sc.sealsRecv,
			BytesUpstream:   sc.bytesUp,
			Clipped:         sc.clippedTot,
		}
	case msgPerShard:
		out := make(map[uint32]ShardContribution, len(sc.contrib))
		for id, c := range sc.contrib {
			cc := *c
			cc.Connected = sc.connected(id)
			out[id] = cc
		}
		m.Reply <- out
	}
}

func (sc *shardCoordinator) connected(id uint32) bool {
	for _, h := range sc.shards {
		if h.Shard == id {
			return true
		}
	}
	return false
}

func (sc *shardCoordinator) onShardUp(ctx *actor.Context, m msgShardUp) {
	_, known := sc.shards[m.Sess]
	sc.shards[m.Sess] = m.Hello
	if _, ok := sc.contrib[m.Hello.Shard]; !ok {
		sc.contrib[m.Hello.Shard] = &ShardContribution{Name: m.Hello.Name}
	} else {
		sc.contrib[m.Hello.Shard].Name = m.Hello.Name
	}
	if known {
		// A re-announced hello on an already-registered session (peers
		// re-send hellos periodically in case the first was lost): nothing
		// to resume.
		return
	}
	if sc.drained {
		// The population already finished its rounds; tell the newcomer to
		// steer its devices away rather than park them forever.
		_ = m.Sess.Send(protocol.RoundAbort{Population: sc.cfg.Population, Reason: "population drained"})
		return
	}
	if sc.cur != nil {
		// Reconnect mid-round: re-send the round's config so the shard
		// starts a fresh edge round for the same global round, and expect
		// its seal (reconnect-then-resume).
		if err := m.Sess.Send(sc.cur.enc); err == nil {
			sc.cur.pending[m.Sess] = true
		}
		return
	}
	sc.onTick(ctx)
}

func (sc *shardCoordinator) onShardDown(ctx *actor.Context, sess *remote.Session) {
	delete(sc.shards, sess)
	if sc.cur != nil && sc.cur.pending[sess] {
		// The shard's devices (and its seal) are lost to this round —
		// Sec. 4.4: "only the devices connected to that actor will be
		// lost". The round settles with the remaining shards.
		delete(sc.cur.pending, sess)
		if len(sc.cur.pending) == 0 {
			sc.finish(ctx)
		}
	}
}

func (sc *shardCoordinator) onRate(m protocol.CheckinRate) {
	if m.Elapsed > 0 {
		obs.Default.Gauge(obs.Label("fl_shard_checkin_rate", "shard", fmt.Sprint(m.Shard))).
			Set(float64(m.Count) / m.Elapsed.Seconds())
	}
	if sc.rates == nil {
		return
	}
	sc.tasks.SetPopulationEstimate(sc.rates.Fold(pacing.RateSample{
		Source:  fmt.Sprintf("shard-%d/%s", m.Shard, m.Source),
		Count:   m.Count,
		Elapsed: m.Elapsed,
		Demand:  int(m.Demand),
	}, sc.now()))
}

func (sc *shardCoordinator) onTick(ctx *actor.Context) {
	// Registration in the locking service: the coordinator process owns the
	// population. The same LockService is served to the shards over their
	// peer links (remote.Session), so cross-process owners coexist with
	// this local one.
	if !sc.acquired {
		if !sc.locks.Acquire(sc.cfg.Population, ctx.Self) {
			return // another live owner (e.g. mid-failover)
		}
		sc.acquired = true
	}
	if sc.cur != nil {
		return
	}
	if sc.cfg.MaxRounds > 0 && sc.completed >= sc.cfg.MaxRounds {
		if !sc.drained {
			sc.drained = true
			// No further round: shards steer their parked devices away.
			for sess := range sc.shards {
				_ = sess.Send(protocol.RoundAbort{Population: sc.cfg.Population, Reason: "population drained"})
			}
			if sc.onDone != nil {
				select {
				case <-sc.onDone:
				default:
					close(sc.onDone)
				}
			}
		}
		return
	}
	if len(sc.shards) < sc.cfg.MinShards {
		return
	}

	t, ok := sc.tasks.Next()
	if !ok {
		return
	}
	p := t.Plan
	if p.Server.Aggregation == plan.AggregationSecure {
		// Sharded mode limitation (documented in DESIGN.md): secure
		// aggregation needs the per-device vectors inside one process.
		// Auto-pause with an operator-visible reason rather than burning a
		// failed round every tick with no hint in the stats why.
		sc.failed++
		sc.tasks.NoteFailed(p.ID)
		_ = sc.tasks.AutoPause(p.ID,
			"secure aggregation is unavailable in sharded mode; run this task on a single-process coordinator or resume after removing the secure-aggregation requirement")
		return
	}
	if p.Server.Robust.PerUpdate() {
		// Same shape of limitation: retention policies (trimmed mean,
		// median, cosine outlier) need every individual update in one
		// process, but shards only ship merged sums upstream. Norm bounding
		// distributes (each shard clips at its own edge) and is allowed.
		sc.failed++
		sc.tasks.NoteFailed(p.ID)
		_ = sc.tasks.AutoPause(p.ID,
			"per-update robust policies are unavailable in sharded mode (shards ship merged sums, not individual updates); use the norm_bound policy or run this task on a single-process coordinator")
		return
	}
	global, err := sc.loadGlobal(t)
	if err != nil {
		sc.failed++
		sc.tasks.NoteFailed(p.ID)
		return
	}

	planBytes, err := p.Marshal()
	if err != nil {
		sc.failed++
		sc.tasks.NoteFailed(p.ID)
		return
	}
	ckptBytes, err := global.Marshal(checkpoint.EncodingFloat64)
	if err != nil {
		sc.failed++
		sc.tasks.NoteFailed(p.ID)
		return
	}

	// Per-shard targets: every shard gets the same ceil share, so the
	// whole RoundConfig — plan and checkpoint included — is marshaled and
	// framed ONCE (transport.Encoded) and fanned out to every shard link.
	n := len(sc.shards)
	perTarget := (p.Server.TargetDevices + n - 1) / n
	perAdmit := (p.Server.SelectTarget() + n - 1) / n
	cfgMsg := protocol.RoundConfig{
		Population:     sc.cfg.Population,
		TaskID:         p.ID,
		Round:          global.Round,
		Target:         perTarget,
		Admit:          perAdmit,
		Estimate:       sc.tasks.PopulationEstimate(),
		EvalOnly:       p.Type == plan.TaskEval,
		ReportDeadline: p.Server.ParticipationCap,
		ReportTimeout:  p.Server.ReportTimeout,
		Plan:           planBytes,
		Checkpoint:     ckptBytes,
	}
	if p.Server.Robust.Kind == plan.RobustNormBound {
		cfgMsg.RobustKind = uint8(plan.RobustNormBound)
		cfgMsg.ClipNorm = p.Server.Robust.ClipNorm
	}
	enc := transport.Encode(cfgMsg)
	cur := &shardRound{
		p:        p,
		task:     t,
		global:   global,
		round:    global.Round,
		evalOnly: p.Type == plan.TaskEval,
		acc:      fedavg.NewAccumulator(len(global.Params)),
		metrics:  make(map[string][]float64),
		pending:  make(map[*remote.Session]bool),
		enc:      enc,
		cfgMsg:   cfgMsg,
		started:  sc.now(),
		phases:   make(map[string]int64),
	}
	for sess := range sc.shards {
		if err := sess.Send(enc); err == nil {
			cur.pending[sess] = true
		}
	}
	if len(cur.pending) == 0 {
		// No shard took the round; retry on the next tick.
		sc.failed++
		sc.tasks.NoteFailed(p.ID)
		return
	}
	sc.cur = cur

	grace := sc.cfg.SealGrace
	round := cur.round
	self := ctx.Self
	time.AfterFunc(p.Server.ReportTimeout+grace, func() { _ = self.Send(msgRoundDeadline{Round: round}) })
}

// onDeadline fires when the round's report window (plus grace) has passed
// and stragglers still owe seals: order them to seal NOW, then settle after
// one more grace period regardless.
func (sc *shardCoordinator) onDeadline(ctx *actor.Context, round int64) {
	if sc.cur == nil || sc.cur.round != round || sc.cur.finalizing {
		return
	}
	if len(sc.cur.pending) == 0 {
		return
	}
	sc.cur.finalizing = true
	fin := protocol.RoundFinalize{Population: sc.cfg.Population, TaskID: sc.cur.p.ID, Round: round}
	for sess := range sc.cur.pending {
		if err := sess.Send(fin); err != nil {
			// The straggler's link is already dead (or its send queue is
			// wedged): it can never deliver a seal, so waiting the grace on
			// it would only stall the fleet. Settle without it.
			delete(sc.cur.pending, sess)
		}
	}
	if len(sc.cur.pending) == 0 {
		sc.finish(ctx)
		return
	}
	self := ctx.Self
	time.AfterFunc(sc.cfg.SealGrace, func() { _ = self.Send(msgRoundGrace{Round: round}) })
}

// onSeal folds one shard's sealed stripe into the round: the aggregation
// tree's top level, merging per-shard sums instead of per-device updates.
func (sc *shardCoordinator) onSeal(ctx *actor.Context, m msgSeal) {
	seal := m.M
	sc.sealsRecv++
	wire := sealWireBytes(seal)
	sc.bytesUp += wire
	obsSealsReceived.Inc()
	obsBytesUpstream.Add(wire)
	shardLabel := fmt.Sprint(seal.Shard)
	obs.Default.Counter(obs.Label("fl_shard_seals_total", "shard", shardLabel)).Inc()
	if c, ok := sc.contrib[seal.Shard]; ok {
		c.Seals++
		c.Bytes += wire
		c.Reports += seal.Reports + seal.EvalReports
		c.Lost += seal.Lost
	}
	cur := sc.cur
	if cur == nil || seal.TaskID != cur.p.ID || seal.Round != cur.round || !cur.pending[m.Sess] {
		return // late or duplicate seal: the round already settled it
	}
	delete(cur.pending, m.Sess)

	// Per-shard seal latency: round open → this shard's seal arriving.
	obs.Default.Summary(obs.Label("fl_shard_seal_seconds", "shard", shardLabel)).
		Observe(sc.now().Sub(cur.started).Seconds())
	for phase, ns := range seal.Phases {
		if ns > cur.phases[phase] {
			cur.phases[phase] = ns
		}
	}

	if seal.Clipped > 0 {
		// Per-shard defense visibility on the coordinator's aggregated
		// /metrics, mirroring the seal counters above.
		obs.Default.Counter(obs.Label("fl_robust_clipped_total", "shard", shardLabel)).Add(seal.Clipped)
		cur.clipped += seal.Clipped
		sc.clippedTot += seal.Clipped
	}
	cur.lost += int(seal.Lost)
	for name, vs := range seal.Metrics {
		cur.metrics[name] = append(cur.metrics[name], vs...)
	}
	sum, err := fedavg.UnmarshalSum(seal.Sum)
	if err == nil {
		s := fedavg.SealedStripe{Sum: sum, Weight: seal.Weight, Count: int(seal.Reports)}
		if cur.evalOnly || cur.acc.AddSealed(s) == nil {
			cur.reports += int(seal.Reports)
			cur.evalRep += int(seal.EvalReports)
		} else {
			cur.lost += int(seal.Reports)
		}
	} else {
		cur.lost += int(seal.Reports)
	}

	if len(cur.pending) == 0 {
		sc.finish(ctx)
	}
}

// finish settles the round in flight: commit when enough reports survived,
// fail otherwise. Mirrors the Master Aggregator's commit path with sealed
// shards in place of group partials.
func (sc *shardCoordinator) finish(ctx *actor.Context) {
	cur := sc.cur
	sc.cur = nil
	if cur == nil {
		return
	}
	fail := func(reason string) {
		sc.failed++
		sc.tasks.NoteFailed(cur.p.ID)
		sc.recordTrace(cur, false, cur.round, cur.reports+cur.evalRep, 0, reason)
	}
	reports := cur.reports + cur.evalRep
	if reports < cur.p.Server.MinReports() {
		fail(fmt.Sprintf("%d reports below minimum", reports))
		return
	}

	commitStart := sc.now()
	newGlobal := cur.global
	if !cur.evalOnly {
		avg, err := cur.acc.Average()
		if err != nil {
			fail(err.Error())
			return
		}
		newGlobal = cur.global.Clone()
		newGlobal.Round++
		newGlobal.Weight = cur.acc.Weight()
		if err := fedavg.Apply(newGlobal.Params, avg); err != nil {
			fail(err.Error())
			return
		}
		// The single write to persistent storage for this round.
		if err := sc.cfg.Store.PutCheckpoint(newGlobal); err != nil {
			fail(err.Error())
			return
		}
	}
	mat := &metrics.Materialized{TaskName: cur.p.ID, Round: newGlobal.Round, Stats: map[string]metrics.Snapshot{}}
	for name, vs := range cur.metrics {
		s := metrics.NewSummary()
		for _, v := range vs {
			s.Add(v)
		}
		mat.Stats[name] = s.Snapshot()
	}
	_ = sc.cfg.Store.PutMetrics(mat)

	// Only train rounds advance a checkpoint lineage (see
	// flserver.Coordinator.onRoundComplete).
	if !cur.evalOnly {
		sc.global[cur.p.ID] = newGlobal
	}
	sc.tasks.NoteCommitted(cur.p.ID, newGlobal.Round, reports, sc.now())
	sc.completed++
	sc.recordTrace(cur, true, newGlobal.Round, reports, sc.now().Sub(commitStart).Nanoseconds(), "")
	sc.onTick(ctx)
}

// recordTrace emits the round's trace record: the max-merged per-shard
// lifecycle spans plus the coordinator's own commit span, persisted as one
// JSONL line when the store supports it.
func (sc *shardCoordinator) recordTrace(cur *shardRound, committed bool, round int64, reports int, commitNanos int64, failReason string) {
	phases := make(map[string]int64, len(cur.phases)+1)
	for name, ns := range cur.phases {
		if ns > 0 {
			phases[name] = ns
		}
	}
	if commitNanos > 0 {
		phases[obs.PhaseCommit] = commitNanos
	}
	ts, _ := sc.cfg.Store.(obs.TraceStore)
	_ = obs.Default.RecordTrace(obs.RoundTrace{
		Population: sc.cfg.Population,
		TaskID:     cur.p.ID,
		Round:      round,
		Start:      cur.started,
		TotalNanos: sc.now().Sub(cur.started).Nanoseconds(),
		Phases:     phases,
		Committed:  committed,
		Reports:    reports,
		Lost:       cur.lost,
		FailReason: failReason,
	}, ts)
}

// loadGlobal fetches the checkpoint the task's next round serves — the
// same lineage rules as flserver.Coordinator.loadGlobal: eval tasks with a
// base serve (and cache under) the BASE task's lineage read-only.
func (sc *shardCoordinator) loadGlobal(t tasks.Task) (*checkpoint.Checkpoint, error) {
	p := t.Plan
	if p.Type == plan.TaskEval && t.Policy.EvalOf != "" {
		if g, ok := sc.global[t.Policy.EvalOf]; ok {
			return g, nil
		}
		g, err := sc.cfg.Store.LatestCheckpoint(t.Policy.EvalOf)
		if err != nil {
			return nil, fmt.Errorf("eval task %q: base task %q has no committed checkpoint: %w", p.ID, t.Policy.EvalOf, err)
		}
		sc.global[t.Policy.EvalOf] = g
		return g, nil
	}
	if g, ok := sc.global[p.ID]; ok {
		return g, nil
	}
	if g, err := sc.cfg.Store.LatestCheckpoint(p.ID); err == nil {
		sc.global[p.ID] = g
		return g, nil
	}
	m, err := p.Device.Model.Build()
	if err != nil {
		return nil, err
	}
	params := make(tensor.Vector, m.NumParams())
	m.ReadParams(params)
	g := &checkpoint.Checkpoint{TaskName: p.ID, Round: 0, Params: params}
	sc.global[p.ID] = g
	return g, nil
}

// CoordinatorProc is the coordinator process: it accepts shard links,
// serves the lock service and actor registry over them, and runs the
// shardCoordinator actor that owns all round state.
type CoordinatorProc struct {
	cfg      CoordinatorConfig
	sys      *actor.System
	locks    *actor.LockService
	tasks    *tasks.TaskSet
	registry *remote.Registry
	coord    actor.Ref
	done     chan struct{}
	stop     chan struct{}
	closed   atomic.Bool
}

// NewCoordinatorProc builds the coordinator process and starts its
// scheduling loop (rounds begin once MinShards shards connect).
func NewCoordinatorProc(cfg CoordinatorConfig) (*CoordinatorProc, error) {
	if cfg.Population == "" || cfg.Store == nil {
		return nil, fmt.Errorf("shard: Population and Store are required")
	}
	if cfg.MinShards <= 0 {
		cfg.MinShards = 1
	}
	if cfg.SealGrace <= 0 {
		cfg.SealGrace = 2 * time.Second
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 250 * time.Millisecond
	}
	if cfg.Steering == nil {
		cfg.Steering = pacing.New(time.Minute)
	}
	if cfg.PopulationEstimate <= 0 {
		cfg.PopulationEstimate = 1000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	ts, err := tasks.New(cfg.Population, cfg.Store, cfg.Now)
	if err != nil {
		return nil, err
	}
	if err := ts.Seed(cfg.Plans); err != nil {
		return nil, err
	}
	ts.SetPopulationEstimate(cfg.PopulationEstimate)

	cp := &CoordinatorProc{
		cfg:      cfg,
		sys:      actor.NewSystem(),
		locks:    actor.NewLockService(),
		tasks:    ts,
		registry: remote.NewRegistry(),
		done:     make(chan struct{}),
		stop:     make(chan struct{}),
	}
	sc := &shardCoordinator{
		cfg:     cfg,
		locks:   cp.locks,
		tasks:   ts,
		now:     cfg.Now,
		shards:  make(map[*remote.Session]protocol.ShardHello),
		contrib: make(map[uint32]*ShardContribution),
		global:  make(map[string]*checkpoint.Checkpoint),
		rates:   pacing.NewRateTracker(cfg.Steering, cfg.PopulationEstimate),
		onDone:  cp.done,
	}
	cp.coord = cp.sys.Spawn("coordinator/"+cfg.Population, sc)
	// Location transparency: the coordinator actor is addressable from
	// shard processes through ActorEnvelope frames as well.
	cp.registry.Register("coordinator/"+cfg.Population, cp.coord)

	go func() {
		tick := time.NewTicker(cfg.TickEvery)
		defer tick.Stop()
		for {
			select {
			case <-cp.stop:
				return
			case <-tick.C:
				_ = cp.coord.Send(msgCoordTick{})
			}
		}
	}()
	return cp, nil
}

// Locks exposes the population's lock service (served to shards over their
// links; local callers use it directly).
func (cp *CoordinatorProc) Locks() *actor.LockService { return cp.locks }

// Registry exposes the actor registry remote peers can address.
func (cp *CoordinatorProc) Registry() *remote.Registry { return cp.registry }

// Done is closed when MaxRounds rounds have committed.
func (cp *CoordinatorProc) Done() <-chan struct{} { return cp.done }

// TaskStats reports every task's lifecycle record, in submission order —
// the operator surface that carries auto-pause notes (e.g. a secure-
// aggregation task the sharded scheduler refused to run).
func (cp *CoordinatorProc) TaskStats() []tasks.Stats { return cp.tasks.Stats() }

// ResumeTask reactivates a paused task (clearing any auto-pause note).
func (cp *CoordinatorProc) ResumeTask(id string) error { return cp.tasks.Resume(id) }

// Serve accepts shard connections from l until l closes. Each connection
// becomes a remote.Session serving heartbeats, the lock service, and actor
// envelopes; shard control messages route to the coordinator actor.
func (cp *CoordinatorProc) Serve(l transport.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go cp.serveConn(conn)
	}
}

func (cp *CoordinatorProc) serveConn(conn transport.Conn) {
	var sess *remote.Session
	sess = remote.NewSession(conn, remote.SessionOptions{
		Registry: cp.registry,
		Locks:    cp.locks,
		Handle: func(msg interface{}) {
			switch m := msg.(type) {
			case protocol.ShardHello:
				_ = cp.coord.Send(msgShardUp{Sess: sess, Hello: m})
			case protocol.StripeSeal:
				_ = cp.coord.Send(msgSeal{Sess: sess, M: m})
			case protocol.CheckinRate:
				_ = cp.coord.Send(msgRate{M: m})
			case protocol.TelemetrySnapshot:
				// Fold the shard's registry export into the local one under
				// a shard label, so this process's /metrics aggregates the
				// whole deployment. No actor hop: SetExternal is a bounded
				// map store, safe on the session reader goroutine.
				obs.Default.SetExternal(fmt.Sprintf("shard=%q", fmt.Sprint(m.Shard)), obs.Export{
					Counters:  m.Counters,
					Gauges:    m.Gauges,
					Summaries: m.Summaries,
				})
			case protocol.RoundAbort:
				_ = cp.coord.Send(msgShardAbort{Sess: sess, M: m})
			}
		},
	})
	_ = sess.Run()
	_ = cp.coord.Send(msgShardDown{Sess: sess})
}

// Stats snapshots coordinator progress. The error is non-nil when the
// coordinator actor is dead or unresponsive.
func (cp *CoordinatorProc) Stats() (CoordStats, error) {
	reply := make(chan CoordStats, 1)
	if err := cp.coord.Send(msgCoordStats{Reply: reply}); err != nil {
		return CoordStats{}, fmt.Errorf("shard: coordinator stats: %w", err)
	}
	select {
	case st := <-reply:
		return st, nil
	case <-time.After(5 * time.Second):
		return CoordStats{}, fmt.Errorf("shard: coordinator did not answer stats")
	}
}

// PerShardStats breaks the upstream traffic down by shard index,
// cumulative across reconnects.
func (cp *CoordinatorProc) PerShardStats() (map[uint32]ShardContribution, error) {
	reply := make(chan map[uint32]ShardContribution, 1)
	if err := cp.coord.Send(msgPerShard{Reply: reply}); err != nil {
		return nil, fmt.Errorf("shard: per-shard stats: %w", err)
	}
	select {
	case st := <-reply:
		return st, nil
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("shard: coordinator did not answer per-shard stats")
	}
}

// ShardStats reports one shard's contribution. A shard that is not
// currently connected returns an explicit error — a dead peer must never
// read as zeros (the PR 3 stats contract, extended across the wire).
func (cp *CoordinatorProc) ShardStats(id uint32) (ShardContribution, error) {
	all, err := cp.PerShardStats()
	if err != nil {
		return ShardContribution{}, err
	}
	c, ok := all[id]
	if !ok {
		return ShardContribution{}, fmt.Errorf("shard: shard %d has never connected", id)
	}
	if !c.Connected {
		return ShardContribution{}, fmt.Errorf("shard: shard %d (%s) is not connected", id, c.Name)
	}
	return c, nil
}

// Close stops the coordinator process.
func (cp *CoordinatorProc) Close() {
	if cp.closed.Swap(true) {
		return
	}
	close(cp.stop)
	cp.sys.Shutdown(cp.coord)
}
