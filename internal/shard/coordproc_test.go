package shard

import (
	"strings"
	"testing"
	"time"

	"repro/internal/actor"
	"repro/internal/checkpoint"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/remote"
	"repro/internal/tasks"
)

// TestSecureTaskAutoPausedInShardedMode pins the scheduler's handling of a
// task the sharded deployment cannot run: secure aggregation needs the
// per-device vectors inside one process, so instead of burning a failed
// round every tick with no explanation (the old behaviour), the
// coordinator pauses the task once and records an operator-visible reason
// in its stats. Resuming without removing the requirement re-pauses on the
// next tick, again with the note.
func TestSecureTaskAutoPausedInShardedMode(t *testing.T) {
	p, err := plan.Generate(plan.Config{
		TaskID: "pop/secure", Population: "pop",
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName: "clicks", BatchSize: 5, Epochs: 1, LearningRate: 0.1,
		TargetDevices: 4, SecureAggregation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tasks.New("pop", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Seed([]*plan.Plan{p}); err != nil {
		t.Fatal(err)
	}

	sc := &shardCoordinator{
		cfg:     CoordinatorConfig{Population: "pop"},
		locks:   actor.NewLockService(),
		tasks:   ts,
		now:     time.Now,
		shards:  make(map[*remote.Session]protocol.ShardHello),
		contrib: make(map[uint32]*ShardContribution),
		global:  make(map[string]*checkpoint.Checkpoint),
		rates:   pacing.NewRateTracker(pacing.New(time.Minute), 100),
	}
	sys := actor.NewSystem()
	coord := sys.Spawn("coordinator/pop", sc)

	tick := func() tasks.Stats {
		t.Helper()
		if err := coord.Send(msgCoordTick{}); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			st, ok := ts.StatsFor("pop/secure")
			if !ok {
				t.Fatal("task vanished")
			}
			if st.State == tasks.Paused {
				return st
			}
			time.Sleep(time.Millisecond)
		}
		st, _ := ts.StatsFor("pop/secure")
		t.Fatalf("secure task not auto-paused after tick: %+v", st)
		return tasks.Stats{}
	}

	st := tick()
	if !strings.Contains(st.Note, "secure aggregation") || !strings.Contains(st.Note, "sharded") {
		t.Fatalf("auto-pause note not operator-readable: %q", st.Note)
	}
	if st.RoundsFailed != 1 {
		t.Fatalf("one failed round recorded, got %d", st.RoundsFailed)
	}

	// An operator resume without removing the requirement re-pauses with
	// the same note — one failed round per resume, not one per tick.
	if err := ts.Resume("pop/secure"); err != nil {
		t.Fatal(err)
	}
	st = tick()
	if st.Note == "" || st.RoundsFailed != 2 {
		t.Fatalf("re-pause after resume: %+v", st)
	}
}
