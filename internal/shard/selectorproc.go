// Package shard splits the FL server across processes (Sec. 4.1: actors
// "may be co-located on the same process or distributed across multiple
// data centers"): N selector processes (SelectorProc, the flselector
// binary) terminate device connections and run the edge
// decode-and-accumulate stripes, while one coordinator process
// (CoordinatorProc, flserver -shard-listen) owns round state, task sets,
// pacing, and the lock service. Per round, each shard ships exactly one
// sealed stripe upstream — device updates never cross the
// selector→coordinator wire, only their merged sum does.
package shard

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/actor"
	"repro/internal/checkpoint"
	"repro/internal/fedavg"
	"repro/internal/flserver"
	"repro/internal/obs"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/remote"
	"repro/internal/transport"
)

// SelectorConfig configures one selector process (shard).
type SelectorConfig struct {
	// Shard is this process's stable 0-based index.
	Shard uint32
	// Name labels the shard in stats and the coordinator's hello log
	// (default "shard-<N>").
	Name string
	// NumSelectors is how many Selector actors terminate device connections
	// in this process (default 1).
	NumSelectors int
	// SelectorCapacity bounds parked devices per Selector (0 = unbounded).
	SelectorCapacity int
	Steering         *pacing.Steering
	// PopulationEstimate seeds pace steering until RoundConfigs carry the
	// coordinator's live estimate.
	PopulationEstimate int
	Seed               uint64
	// Peer tunes the coordinator link (heartbeat cadence, backoff); its
	// Hello is overwritten with this shard's ShardHello.
	Peer remote.Options
	// RateProbeInterval paces check-in rate sampling toward the coordinator
	// (default 1s).
	RateProbeInterval time.Duration
	// TelemetryInterval paces TelemetrySnapshot shipping toward the
	// coordinator, which folds this shard's counters into its aggregated
	// /metrics under a shard="N" label (default 2s).
	TelemetryInterval time.Duration
	// EdgeLinger is how long a sealed edge round keeps answering late
	// device arrivals with explicit aborts before stopping (default 2s —
	// see flserver.EdgeRoundConfig.Linger).
	EdgeLinger time.Duration
	// SealRetryBudget is the total time ship() retries delivering a sealed
	// stripe across coordinator-link drops before counting the round lost
	// (default 3s). Re-shipping after a reconnect is safe: the coordinator
	// dedups seals per (shard session, round).
	SealRetryBudget time.Duration
	Now             func() time.Time
}

// edgeHandle tracks one population's in-flight edge round.
type edgeHandle struct {
	taskID string
	round  int64
	ref    actor.Ref
}

// SelectorProc is one selector process: a device-facing listener feeding
// Selector actors, a managed peer link to the coordinator, and one
// ephemeral EdgeRound actor per (population, round) the coordinator opens.
// Device connections live and die inside this process; what goes upstream
// is a single protocol.StripeSeal per round.
type SelectorProc struct {
	cfg       SelectorConfig
	sys       *actor.System
	selectors []actor.Ref
	router    *flserver.CheckinRouter
	peer      *remote.Peer
	rateFwd   actor.Ref

	mu     sync.Mutex
	pops   map[string]bool
	rounds map[string]*edgeHandle // population → in-flight round
	closed bool

	sealsShipped  atomic.Int64
	bytesShipped  atomic.Int64
	roundsDropped atomic.Int64
	roundsOpened  atomic.Int64
	stopRate      chan struct{}
}

// NewSelectorProc builds the shard and starts dialing the coordinator.
func NewSelectorProc(cfg SelectorConfig, dial remote.Dialer) *SelectorProc {
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("shard-%d", cfg.Shard)
	}
	if cfg.NumSelectors <= 0 {
		cfg.NumSelectors = 1
	}
	if cfg.Steering == nil {
		cfg.Steering = pacing.New(time.Minute)
	}
	if cfg.PopulationEstimate <= 0 {
		cfg.PopulationEstimate = 1000
	}
	if cfg.RateProbeInterval <= 0 {
		cfg.RateProbeInterval = time.Second
	}
	if cfg.TelemetryInterval <= 0 {
		cfg.TelemetryInterval = 2 * time.Second
	}
	if cfg.SealRetryBudget <= 0 {
		cfg.SealRetryBudget = 3 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	p := &SelectorProc{
		cfg:      cfg,
		sys:      actor.NewSystem(),
		pops:     make(map[string]bool),
		rounds:   make(map[string]*edgeHandle),
		stopRate: make(chan struct{}),
	}
	for i := 0; i < cfg.NumSelectors; i++ {
		sel := p.sys.Spawn(fmt.Sprintf("%s/selector-%d", cfg.Name, i),
			flserver.NewSelector(nil, cfg.Steering, cfg.SelectorCapacity, cfg.Seed+uint64(i), cfg.Now))
		p.selectors = append(p.selectors, sel)
	}
	p.router = flserver.NewCheckinRouter(p.selectors,
		flserver.NewHinter(cfg.Steering, cfg.PopulationEstimate, cfg.Seed+7919, cfg.Now))
	p.rateFwd = p.sys.Spawn(cfg.Name+"/rate-fwd", flserver.NewRateForwarder(p.relayRate))

	opts := cfg.Peer
	opts.Hello = protocol.ShardHello{Shard: cfg.Shard, Name: cfg.Name}
	userDown := opts.OnDown
	opts.OnDown = func(err error) {
		p.onCoordinatorDown()
		if userDown != nil {
			userDown(err)
		}
	}
	p.peer = remote.NewPeer("coordinator", dial, p.onPeerMsg, opts)
	go p.rateLoop()
	go p.telemetryLoop()
	return p
}

// Serve accepts device connections from l until l closes.
func (p *SelectorProc) Serve(l transport.Listener) { p.router.Serve(l) }

// CoordinatorAlive reports whether the coordinator link is up.
func (p *SelectorProc) CoordinatorAlive() bool { return p.peer.Alive() }

// onPeerMsg handles coordinator→shard control messages. It runs on the
// peer's reader goroutine; all work it does is non-blocking actor sends.
func (p *SelectorProc) onPeerMsg(msg interface{}) {
	switch m := msg.(type) {
	case protocol.RoundConfig:
		p.onRoundConfig(m)
	case protocol.RoundFinalize:
		if h := p.lookupRound(m.Population, m.TaskID, m.Round); h != nil {
			flserver.FinalizeEdgeRound(h.ref)
		}
	case protocol.RoundAbort:
		p.onRoundAbort(m)
	}
}

// onRoundConfig opens one edge round: register the population on the local
// Selectors on first sight, then spawn the ephemeral EdgeRound actor that
// selects devices, folds their reports into stripes, and ships the seal.
func (p *SelectorProc) onRoundConfig(m protocol.RoundConfig) {
	// Only the norm-bound robust policy reaches shards (the coordinator
	// refuses retention policies at scheduling); any other kind on the wire
	// is ignored rather than guessed at.
	var clipNorm float64
	if m.RobustKind == uint8(plan.RobustNormBound) {
		clipNorm = m.ClipNorm
	}
	meta, err := checkpoint.ParseMeta(m.Checkpoint)
	if err != nil {
		_ = p.peer.Send(protocol.RoundAbort{Population: m.Population, TaskID: m.TaskID,
			Round: m.Round, Reason: "bad checkpoint: " + err.Error()})
		return
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	if !p.pops[m.Population] {
		p.pops[m.Population] = true
		est := m.Estimate
		if est <= 0 {
			est = p.cfg.PopulationEstimate
		}
		for _, sel := range p.selectors {
			_ = flserver.RegisterSelectorPopulation(sel, flserver.SelectorPopulation{
				Name: m.Population, Steering: p.cfg.Steering, PopulationEstimate: est,
			})
		}
	}
	if h := p.rounds[m.Population]; h != nil {
		if h.taskID == m.TaskID && h.round == m.Round {
			// Duplicate (coordinator re-sent after a reconnect it noticed
			// before we noticed the drop): the round is already running.
			p.mu.Unlock()
			return
		}
		// A different round supersedes the old one.
		flserver.AbandonEdgeRound(h.ref, "superseded by a newer round")
	}
	ref := flserver.StartEdgeRound(p.sys,
		fmt.Sprintf("%s/edge/%s/r%d", p.cfg.Name, m.TaskID, m.Round),
		flserver.EdgeRoundConfig{
			Population:     m.Population,
			TaskID:         m.TaskID,
			Round:          m.Round,
			PlanBytes:      m.Plan,
			Checkpoint:     m.Checkpoint,
			Dim:            meta.NumParams,
			Target:         m.Target,
			Admit:          m.Admit,
			EvalOnly:       m.EvalOnly,
			ReportDeadline: m.ReportDeadline,
			ReportTimeout:  m.ReportTimeout,
			ClipNorm:       clipNorm,
			Linger:         p.cfg.EdgeLinger,
		}, p.selectors, p.ship)
	p.rounds[m.Population] = &edgeHandle{taskID: m.TaskID, round: m.Round, ref: ref}
	p.roundsOpened.Add(1)
	p.mu.Unlock()
}

// onRoundAbort abandons a matching in-flight round; an abort for no
// specific round (the coordinator drained the population) steers the
// population's parked devices away instead.
func (p *SelectorProc) onRoundAbort(m protocol.RoundAbort) {
	if h := p.lookupRound(m.Population, m.TaskID, m.Round); h != nil {
		flserver.AbandonEdgeRound(h.ref, m.Reason)
		p.clearRound(m.Population, m.Round)
		return
	}
	p.mu.Lock()
	known := p.pops[m.Population]
	p.mu.Unlock()
	if known {
		for _, sel := range p.selectors {
			_ = flserver.ReleaseParked(sel, m.Population)
		}
	}
}

// lookupRound returns the in-flight handle matching (population, task,
// round), or nil.
func (p *SelectorProc) lookupRound(population, taskID string, round int64) *edgeHandle {
	p.mu.Lock()
	defer p.mu.Unlock()
	h := p.rounds[population]
	if h == nil || h.taskID != taskID || h.round != round {
		return nil
	}
	return h
}

// clearRound forgets a finished round (only if it is still the current one).
func (p *SelectorProc) clearRound(population string, round int64) {
	p.mu.Lock()
	if h := p.rounds[population]; h != nil && h.round == round {
		delete(p.rounds, population)
	}
	p.mu.Unlock()
}

// ship sends one sealed stripe upstream. It is called on the EdgeRound's
// actor goroutine, so the marshal and the (possibly blocking) peer write
// run on their own goroutine. A transient link drop is retried with
// jittered backoff within SealRetryBudget — the peer redials in the
// background, and the coordinator dedups a seal that arrives twice. Only
// when the budget runs dry is the round counted dropped; the coordinator's
// straggler timeout then settles it without this shard, and its devices
// count as lost.
func (p *SelectorProc) ship(seal flserver.EdgeSeal) {
	p.clearRound(seal.Population, seal.Round)
	go func() {
		start := time.Now()
		msg := protocol.StripeSeal{
			Population:  seal.Population,
			TaskID:      seal.TaskID,
			Round:       seal.Round,
			Shard:       p.cfg.Shard,
			Reports:     int64(seal.Seal.Count),
			EvalReports: int64(seal.Seal.EvalCount),
			Lost:        int64(seal.Lost),
			Clipped:     seal.Clipped,
			Weight:      seal.Seal.Weight,
			Sum:         fedavg.MarshalSum(seal.Seal.Sum),
			Metrics:     seal.Seal.Metrics,
			Phases:      seal.Phases,
		}
		deadline := time.Now().Add(p.cfg.SealRetryBudget)
		backoff := 25 * time.Millisecond
		for {
			err := p.peer.Send(msg)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				p.roundsDropped.Add(1)
				obsSealsDropped.Inc()
				return
			}
			wait := backoff + time.Duration(rand.Int63n(int64(backoff)))
			select {
			case <-p.stopRate:
				p.roundsDropped.Add(1)
				obsSealsDropped.Inc()
				return
			case <-time.After(wait):
			}
			if backoff < 200*time.Millisecond {
				backoff *= 2
			}
		}
		p.sealsShipped.Add(1)
		p.bytesShipped.Add(sealWireBytes(msg))
		obsSealsShipped.Inc()
		obsSealSeconds.ObserveDuration(time.Since(start))
	}()
}

// sealWireBytes is the binary-codec frame size of one StripeSeal — the
// bytes this shard shipped upstream for a round.
func sealWireBytes(m protocol.StripeSeal) int64 {
	_, parts, ok := protocol.MarshalBinaryParts(m)
	if !ok {
		return 0
	}
	n := int64(6) // u32 length prefix + version + type code
	for _, part := range parts {
		n += int64(len(part))
	}
	return n
}

// onCoordinatorDown reacts to a lost coordinator link: every in-flight
// round is abandoned (its seal could not be delivered anyway) and every
// population's parked devices are steered away with a pace-steering retry
// hint — a device must never sit on a half-open connection waiting for a
// round the shard cannot start (the coordinator owns round state).
func (p *SelectorProc) onCoordinatorDown() {
	p.mu.Lock()
	for pop, h := range p.rounds {
		flserver.AbandonEdgeRound(h.ref, "coordinator link lost")
		delete(p.rounds, pop)
		p.roundsDropped.Add(1)
	}
	pops := make([]string, 0, len(p.pops))
	for pop := range p.pops {
		pops = append(pops, pop)
	}
	p.mu.Unlock()
	for _, pop := range pops {
		for _, sel := range p.selectors {
			_ = flserver.ReleaseParked(sel, pop)
		}
	}
}

// rateLoop probes the local Selectors for observed check-in rates; samples
// relay to the coordinator as protocol.CheckinRate for cross-shard live
// population estimation.
func (p *SelectorProc) rateLoop() {
	tick := time.NewTicker(p.cfg.RateProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.stopRate:
			return
		case <-tick.C:
		}
		p.mu.Lock()
		pops := make([]string, 0, len(p.pops))
		for pop := range p.pops {
			pops = append(pops, pop)
		}
		p.mu.Unlock()
		for _, pop := range pops {
			for _, sel := range p.selectors {
				_ = flserver.ProbeCheckinRate(sel, pop, p.rateFwd)
			}
		}
	}
}

// telemetryLoop periodically ships this process's whole obs registry to
// the coordinator as a protocol.TelemetrySnapshot. Snapshots are advisory
// like rate samples: a send on a down link is simply dropped, and the
// coordinator ages out shards that stop shipping.
func (p *SelectorProc) telemetryLoop() {
	tick := time.NewTicker(p.cfg.TelemetryInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.stopRate:
			return
		case <-tick.C:
		}
		if p.peer.Alive() {
			obsCoordinatorUp.Set(1)
		} else {
			obsCoordinatorUp.Set(0)
			continue
		}
		ex := obs.Default.Export()
		if err := p.peer.Send(protocol.TelemetrySnapshot{
			Shard:     p.cfg.Shard,
			Name:      p.cfg.Name,
			Counters:  ex.Counters,
			Gauges:    ex.Gauges,
			Summaries: ex.Summaries,
		}); err == nil {
			obsSnapshotsSent.Inc()
		}
	}
}

// relayRate forwards one Selector's rate sample upstream (dropped while
// the link is down — rate samples are advisory).
func (p *SelectorProc) relayRate(source, population string, count int64, elapsed time.Duration, demand int) {
	_ = p.peer.Send(protocol.CheckinRate{
		Population: population,
		Shard:      p.cfg.Shard,
		Source:     source,
		Count:      count,
		Elapsed:    elapsed,
		Demand:     int64(demand),
	})
}

// SelectorProcStats describes one shard's device-facing and upstream
// activity.
type SelectorProcStats struct {
	// Selector sums the local Selector actors' counters.
	Selector flserver.SelectorStats
	// PerSelector breaks them down by Selector actor name.
	PerSelector map[string]flserver.SelectorStats
	// SealsShipped / BytesShipped count sealed stripes (and their wire
	// bytes) delivered upstream; RoundsDropped counts rounds lost to a dead
	// coordinator link; RoundsOpened counts fresh EdgeRound spawns (a
	// re-sent RoundConfig after a reconnect does NOT re-open its round).
	SealsShipped  int64
	BytesShipped  int64
	RoundsDropped int64
	RoundsOpened  int64
	// CoordinatorUp is the link's current liveness.
	CoordinatorUp bool
}

// Stats snapshots the shard. The error is non-nil when a local Selector is
// dead or unresponsive — an explicit failure, never zeros.
func (p *SelectorProc) Stats() (SelectorProcStats, error) {
	st := SelectorProcStats{
		PerSelector:   make(map[string]flserver.SelectorStats, len(p.selectors)),
		SealsShipped:  p.sealsShipped.Load(),
		BytesShipped:  p.bytesShipped.Load(),
		RoundsDropped: p.roundsDropped.Load(),
		RoundsOpened:  p.roundsOpened.Load(),
		CoordinatorUp: p.peer.Alive(),
	}
	for _, sel := range p.selectors {
		s, err := flserver.QuerySelectorStats(sel, "")
		if err != nil {
			return SelectorProcStats{}, err
		}
		st.PerSelector[sel.Name()] = s
		st.Selector.Add(s)
	}
	return st, nil
}

// Close tears the shard down: in-flight rounds are abandoned, the
// coordinator link closed, and the actor system shut down.
func (p *SelectorProc) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for pop, h := range p.rounds {
		flserver.AbandonEdgeRound(h.ref, "shard shutting down")
		delete(p.rounds, pop)
	}
	p.mu.Unlock()
	close(p.stopRate)
	p.peer.Close()
	refs := append([]actor.Ref{p.rateFwd}, p.selectors...)
	p.sys.Shutdown(refs...)
	p.router.Wait()
}
