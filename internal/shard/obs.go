package shard

import "repro/internal/obs"

// Process-wide shard instruments. The selector-side ones travel to the
// coordinator inside TelemetrySnapshot frames, where they reappear on the
// aggregated /metrics with a shard="N" label; the coordinator-side ones
// are per-shard series the coordinator derives itself from seal and rate
// traffic.
var (
	// Selector side.
	obsSealsShipped  = obs.Default.Counter("fl_seals_shipped_total")
	obsSealsDropped  = obs.Default.Counter("fl_seals_dropped_total")
	obsSealSeconds   = obs.Default.Summary("fl_seal_seconds")
	obsSnapshotsSent = obs.Default.Counter("fl_telemetry_snapshots_total")
	obsCoordinatorUp = obs.Default.Gauge("fl_coordinator_link_up")
	// Coordinator side.
	obsSealsReceived = obs.Default.Counter("fl_seals_received_total")
	obsBytesUpstream = obs.Default.Counter("fl_seal_bytes_upstream_total")
)
