package shard

import (
	"strings"
	"testing"
	"time"

	"repro/internal/actor"
	"repro/internal/checkpoint"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/remote"
	"repro/internal/tasks"
)

// TestRetentionPolicyAutoPausedInShardedMode: per-update robust policies
// (trimmed mean, median, cosine) need every individual update in one
// process, but shards ship merged sums. Like secure aggregation, such a
// task must be paused once with an operator-readable note instead of
// burning a failed round every tick.
func TestRetentionPolicyAutoPausedInShardedMode(t *testing.T) {
	p, err := plan.Generate(plan.Config{
		TaskID: "pop/trimmed", Population: "pop",
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName: "clicks", BatchSize: 5, Epochs: 1, LearningRate: 0.1,
		TargetDevices: 4,
		Robust:        plan.RobustPolicy{Kind: plan.RobustTrimmedMean, TrimFraction: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts, err := tasks.New("pop", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Seed([]*plan.Plan{p}); err != nil {
		t.Fatal(err)
	}

	sc := &shardCoordinator{
		cfg:     CoordinatorConfig{Population: "pop"},
		locks:   actor.NewLockService(),
		tasks:   ts,
		now:     time.Now,
		shards:  make(map[*remote.Session]protocol.ShardHello),
		contrib: make(map[uint32]*ShardContribution),
		global:  make(map[string]*checkpoint.Checkpoint),
		rates:   pacing.NewRateTracker(pacing.New(time.Minute), 100),
	}
	sys := actor.NewSystem()
	defer sys.Shutdown()
	coord := sys.Spawn("coordinator/pop", sc)

	if err := coord.Send(msgCoordTick{}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, ok := ts.StatsFor("pop/trimmed")
		if !ok {
			t.Fatal("task vanished")
		}
		if st.State == tasks.Paused {
			if !strings.Contains(st.Note, "robust") || !strings.Contains(st.Note, "norm_bound") {
				t.Fatalf("auto-pause note not operator-readable: %q", st.Note)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("retention-policy task not auto-paused: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestShardedNormBoundRound drives the 3-shard deployment with a clip
// bound tight enough that real training updates exceed it: rounds must
// still commit, and the clip counts must survive the seal wire format to
// the coordinator's totals.
func TestShardedNormBoundRound(t *testing.T) {
	st, err := RunBenchSharded(BenchShardedConfig{
		Shards: 3, Devices: 12, TargetDevices: 6, Rounds: 2, Seed: 23,
		ClipNorm: 1e-4,
		Timeout:  time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds < 2 {
		t.Fatalf("committed %d rounds, want >= 2", st.Rounds)
	}
	// Every folded report was over the 1e-4 bound, so clips == folded
	// reports; each committed round folds at least MinReportFraction (0.5)
	// of the target's 6 reports.
	if st.Clipped < int64(2*3) {
		t.Fatalf("Clipped = %d, want >= 6 (every report over the bound)", st.Clipped)
	}
}
