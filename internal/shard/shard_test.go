package shard

import (
	"testing"
	"time"
)

// TestShardedRoundMem drives 3 selector processes + 1 coordinator over the
// in-memory transport to two committed rounds: sealed stripes — not raw
// device updates — cross the selector→coordinator boundary.
func TestShardedRoundMem(t *testing.T) {
	st, err := RunBenchSharded(BenchShardedConfig{
		Shards: 3, Devices: 12, TargetDevices: 6, Rounds: 2, Seed: 7,
		Timeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds < 2 {
		t.Fatalf("committed %d rounds, want >= 2", st.Rounds)
	}
	if st.SealsReceived < 2 {
		t.Fatalf("coordinator received %d seals, want >= 2", st.SealsReceived)
	}
	if st.BytesUpstream <= 0 {
		t.Fatalf("no upstream bytes tracked")
	}
	// Every shard that contributed must appear in the breakdown.
	if len(st.PerShard) == 0 {
		t.Fatalf("no per-shard breakdown")
	}
}

// TestShardedRoundTCP is the same topology over real loopback sockets: the
// 3-binary deployment's wire path, in-process.
func TestShardedRoundTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP sharded round in -short mode")
	}
	st, err := RunBenchSharded(BenchShardedConfig{
		Shards: 3, Devices: 12, TargetDevices: 6, Rounds: 2, TCP: true, Seed: 11,
		Timeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds < 2 {
		t.Fatalf("committed %d rounds, want >= 2", st.Rounds)
	}
	if st.BytesUpstream <= 0 {
		t.Fatalf("no upstream bytes tracked")
	}
}
