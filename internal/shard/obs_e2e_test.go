package shard

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/flserver"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/transport"
)

// TestObservabilityEndToEnd is the telemetry acceptance run: a sharded
// deployment (1 coordinator + 2 selector shards over real loopback TCP)
// must (a) serve an aggregated /metrics on the coordinator that includes
// per-shard seal-latency and check-in-rate series plus series shipped from
// the shards in TelemetrySnapshot frames, and (b) persist a JSONL round
// trace for a committed round whose lifecycle phases all have non-zero
// durations.
func TestObservabilityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP observability e2e in -short mode")
	}
	const (
		pop     = "pop-obs"
		shards  = 2
		devices = 8
		target  = 4
	)
	p, err := plan.Generate(plan.Config{
		TaskID: pop + "/train", Population: pop,
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName: pop + "-store", BatchSize: 5, Epochs: 1, LearningRate: 0.1,
		TargetDevices: target, MinReportFraction: 0.5,
		SelectionTimeout: 30 * time.Second, ReportTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	fed, err := data.Blobs(data.BlobsConfig{
		Users: devices, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}

	store := storage.NewMem()
	coord, err := NewCoordinatorProc(CoordinatorConfig{
		Population: pop,
		Plans:      []*plan.Plan{p},
		Store:      store,
		Steering:   pacing.New(time.Second),
		MaxRounds:  2,
		MinShards:  shards,
		SealGrace:  2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	coordL, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coordL.Close()
	go coord.Serve(coordL)
	coordAddr := coordL.Addr()

	// The coordinator's operator surface, on an ephemeral port.
	srv, err := obs.Default.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	shardDials := make([]func() (transport.Conn, error), shards)
	for i := 0; i < shards; i++ {
		sp := NewSelectorProc(SelectorConfig{
			Shard:              uint32(i),
			Steering:           pacing.New(time.Second),
			PopulationEstimate: devices,
			Seed:               uint64(23 + i*131),
			RateProbeInterval:  500 * time.Millisecond,
			TelemetryInterval:  300 * time.Millisecond,
		}, func() (transport.Conn, error) { return transport.DialTCP(coordAddr) })
		defer sp.Close()
		l, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		go sp.Serve(l)
		addr := l.Addr()
		shardDials[i] = func() (transport.Conn, error) { return transport.DialTCP(addr) }
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		id := fmt.Sprintf("obs-dev-%d", i)
		rt := device.NewRuntime(id, 3, nil, uint64(100+i))
		st, err := device.NewMemStore(pop+"-store", 1000, 0)
		if err != nil {
			t.Fatal(err)
		}
		now := time.Now()
		for _, ex := range fed.Users[i] {
			st.Add(ex, now)
		}
		if err := rt.RegisterStore(st); err != nil {
			t.Fatal(err)
		}
		client := &flserver.DeviceClient{ID: id, Population: pop, Runtime: rt}
		dial := shardDials[i%shards]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if conn, err := dial(); err == nil {
					_, _ = client.RunOnce(conn)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	defer func() { close(stop); wg.Wait() }()

	select {
	case <-coord.Done():
	case <-time.After(90 * time.Second):
		t.Fatal("rounds did not commit within 90s")
	}

	// (a) Aggregated /metrics: per-shard derived series plus shipped ones.
	metricsURL := fmt.Sprintf("http://%s/metrics", srv.Addr())
	want := []string{
		`fl_shard_seal_seconds{shard="0",quantile=`, // coordinator-derived seal latency
		`fl_shard_seal_seconds{shard="1",quantile=`,
		`fl_shard_checkin_rate{shard=`,          // coordinator-derived check-in rate
		`fl_seals_shipped_total{shard="0"}`,     // shipped in a TelemetrySnapshot
		`fl_checkins_total{shard=`,              // shard-local counter, shard-labeled
		"fl_rounds_committed_total",             // coordinator's own round counter
		`fl_round_phase_seconds{phase="commit"`, // tracer-fed phase summary
	}
	var body string
	deadline := time.Now().Add(15 * time.Second)
	for {
		body = httpGet(t, metricsURL)
		missing := ""
		for _, w := range want {
			if !strings.Contains(body, w) {
				missing = w
				break
			}
		}
		if missing == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics never aggregated %q; got:\n%s", missing, body)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// (b) A committed round's trace has every applicable lifecycle phase
	// with a non-zero duration.
	traces := store.RoundTraces()
	var committed *obs.RoundTrace
	for i := range traces {
		if traces[i].Committed {
			committed = &traces[i]
			break
		}
	}
	if committed == nil {
		t.Fatalf("no committed round trace persisted; traces: %+v", traces)
	}
	for _, phase := range []string{
		obs.PhaseCheckin, obs.PhaseConfigure, obs.PhaseReportWindow,
		obs.PhaseEdgeAccumulate, obs.PhaseCommit,
	} {
		if committed.Phases[phase] <= 0 {
			t.Errorf("committed trace phase %q has duration %d, want > 0 (phases: %v)",
				phase, committed.Phases[phase], committed.Phases)
		}
	}
	if committed.TotalNanos <= 0 || committed.Reports < target {
		t.Errorf("trace totals wrong: %+v", committed)
	}
	// And the same record round-trips through the JSONL encoding.
	line := committed.MarshalJSONL()
	if !strings.HasSuffix(string(line), "\n") || !strings.Contains(string(line), `"phases_ns"`) {
		t.Errorf("trace JSONL malformed: %s", line)
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return string(b)
}
