package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/flserver"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/remote"
	"repro/internal/storage"
	"repro/internal/transport"
)

const failoverPop = "pop-failover"

// failoverHarness wires one coordinator and one selector shard over the mem
// network with a severable shard→coordinator link and a controllable device
// swarm — the rig for the coordinator-loss, reconnect-then-resume, and
// crash-respawn tests.
type failoverHarness struct {
	t     *testing.T
	net   *transport.MemNetwork
	plan  *plan.Plan
	store storage.Store

	coord  *CoordinatorProc
	coordL transport.Listener
	shard  *SelectorProc
	shardL transport.Listener

	// linkUp gates the shard's dial; conns records live shard→coordinator
	// connections so a partition can sever them mid-flight.
	linkUp atomic.Bool
	mu     sync.Mutex
	conns  []transport.Conn

	stopDevices chan struct{}
	devices     sync.WaitGroup
}

func fastPeerOpts() remote.Options {
	return remote.Options{
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMiss:     3,
		BackoffMin:        5 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
	}
}

func newFailoverHarness(t *testing.T, k, maxRounds int) *failoverHarness {
	t.Helper()
	p, err := plan.Generate(plan.Config{
		TaskID: failoverPop + "/train", Population: failoverPop,
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName: failoverPop + "-store", BatchSize: 5, Epochs: 1, LearningRate: 0.1,
		TargetDevices: k, MinReportFraction: 0.5,
		SelectionTimeout: 30 * time.Second, ReportTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &failoverHarness{
		t: t, net: transport.NewMemNetwork(), plan: p,
		store:       storage.NewMem(),
		stopDevices: make(chan struct{}),
	}
	h.linkUp.Store(true)
	h.startCoordinator(maxRounds)

	h.shard = NewSelectorProc(SelectorConfig{
		Shard:              0,
		Steering:           pacing.New(time.Second),
		PopulationEstimate: 32,
		Seed:               17,
		Peer:               fastPeerOpts(),
		RateProbeInterval:  100 * time.Millisecond,
	}, h.dialCoordinator)
	t.Cleanup(h.shard.Close)
	l, err := h.net.Listen("shard-0")
	if err != nil {
		t.Fatal(err)
	}
	h.shardL = l
	t.Cleanup(func() { l.Close() })
	go h.shard.Serve(l)
	return h
}

// startCoordinator (re)spawns the coordinator process on the same mem
// address and backing store — also the respawn half of the crash test.
func (h *failoverHarness) startCoordinator(maxRounds int) {
	coord, err := NewCoordinatorProc(CoordinatorConfig{
		Population: failoverPop,
		Plans:      []*plan.Plan{h.plan},
		Store:      h.store,
		Steering:   pacing.New(time.Second),
		MaxRounds:  maxRounds,
		MinShards:  1,
		SealGrace:  500 * time.Millisecond,
		TickEvery:  50 * time.Millisecond,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.coord = coord
	h.t.Cleanup(coord.Close)
	l, err := h.net.Listen("coord")
	if err != nil {
		h.t.Fatal(err)
	}
	h.coordL = l
	h.t.Cleanup(func() { l.Close() })
	go coord.Serve(l)
}

func (h *failoverHarness) dialCoordinator() (transport.Conn, error) {
	if !h.linkUp.Load() {
		return nil, fmt.Errorf("failover test: link partitioned")
	}
	c, err := h.net.Dial("coord")
	if err != nil {
		return nil, err
	}
	h.mu.Lock()
	h.conns = append(h.conns, c)
	h.mu.Unlock()
	return c, nil
}

// partition severs the shard→coordinator link and keeps it down.
func (h *failoverHarness) partition() {
	h.linkUp.Store(false)
	h.mu.Lock()
	conns := h.conns
	h.conns = nil
	h.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

// heal lets the shard's redial loop through again.
func (h *failoverHarness) heal() { h.linkUp.Store(true) }

// crashCoordinator kills the coordinator process (listener included), as a
// process crash would.
func (h *failoverHarness) crashCoordinator() {
	h.coordL.Close()
	h.coord.Close()
	h.partition()
}

// runDevices starts n simulated devices continuously checking in against the
// shard until the harness stops them.
func (h *failoverHarness) runDevices(n int) {
	fed, err := data.Blobs(data.BlobsConfig{
		Users: n, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 5,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("failover-dev-%d", i)
		rt := device.NewRuntime(id, 3, nil, uint64(i)+900)
		st, err := device.NewMemStore(failoverPop+"-store", 1000, 0)
		if err != nil {
			h.t.Fatal(err)
		}
		now := time.Now()
		for _, ex := range fed.Users[i] {
			st.Add(ex, now)
		}
		if err := rt.RegisterStore(st); err != nil {
			h.t.Fatal(err)
		}
		client := &flserver.DeviceClient{ID: id, Population: failoverPop, Runtime: rt}
		h.devices.Add(1)
		go func() {
			defer h.devices.Done()
			for {
				select {
				case <-h.stopDevices:
					return
				default:
				}
				if conn, err := h.net.Dial("shard-0"); err == nil {
					_, _ = client.RunOnce(conn)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	h.t.Cleanup(func() {
		select {
		case <-h.stopDevices:
		default:
			close(h.stopDevices)
		}
		done := make(chan struct{})
		go func() { h.devices.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			h.t.Error("device goroutines leaked at harness teardown")
		}
	})
}

func (h *failoverHarness) waitRounds(want int, within time.Duration) {
	h.t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		st, err := h.coord.Stats()
		if err == nil && st.RoundsCompleted >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, _ := h.coord.Stats()
	h.t.Fatalf("coordinator committed %d rounds, want >= %d within %v", st.RoundsCompleted, want, within)
}

// rawCheckin opens a bare device connection and checks in, returning the
// conn and the response. retries until the shard accepts (a round must be
// open) or the deadline passes.
func (h *failoverHarness) rawAcceptedCheckin(id string, within time.Duration) transport.Conn {
	h.t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		conn, err := h.net.Dial("shard-0")
		if err != nil {
			h.t.Fatal(err)
		}
		if err := conn.Send(protocol.CheckinRequest{DeviceID: id, Population: failoverPop, RuntimeVersion: 3}); err != nil {
			conn.Close()
			continue
		}
		msg, err := conn.Recv()
		if err == nil {
			if resp, ok := msg.(protocol.CheckinResponse); ok && resp.Accepted {
				return conn
			}
		}
		conn.Close()
		time.Sleep(10 * time.Millisecond)
	}
	h.t.Fatalf("device %s was never admitted to a round", id)
	return nil
}

// TestCoordinatorLossFreesDevices severs the shard's coordinator link
// mid-round: a device already configured into the round must be answered
// (aborted) promptly, and fresh check-ins must be steered away with a
// retry-later hint — never parked on a half-open connection (ISSUE: the
// selector shard reuses pacing.Steering when the link drops).
func TestCoordinatorLossFreesDevices(t *testing.T) {
	h := newFailoverHarness(t, 8, 5)
	h.runDevices(3) // too few to seal K=8: the round stays open

	// A raw device gets admitted into the open round and then sits on its
	// configuration without reporting.
	conn := h.rawAcceptedCheckin("raw-straggler", 15*time.Second)
	defer conn.Close()

	h.partition()

	// The shard's heartbeat declares the coordinator dead; the edge round is
	// abandoned and must answer the straggler instead of stranding it.
	type recvResult struct {
		msg interface{}
		err error
	}
	got := make(chan recvResult, 1)
	go func() {
		msg, err := conn.Recv()
		got <- recvResult{msg, err}
	}()
	select {
	case r := <-got:
		if r.err == nil {
			if _, ok := r.msg.(protocol.Abort); !ok {
				t.Fatalf("straggler got %T, want Abort or closed conn", r.msg)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("device stranded: no abort after coordinator loss")
	}

	// Fresh check-ins are steered to retry later, not accepted into a round
	// the shard cannot run and not left unanswered.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("check-in after coordinator loss was never steered away")
		}
		c2, err := h.net.Dial("shard-0")
		if err != nil {
			t.Fatal(err)
		}
		_ = c2.Send(protocol.CheckinRequest{DeviceID: "post-loss", Population: failoverPop, RuntimeVersion: 3})
		msg, err := c2.Recv()
		c2.Close()
		if err != nil {
			continue // racing the abandon; try again
		}
		resp, ok := msg.(protocol.CheckinResponse)
		if !ok {
			t.Fatalf("check-in answered with %T", msg)
		}
		if resp.Accepted {
			continue // the in-flight round was still open; retry until abandoned
		}
		if resp.RetryAfter <= 0 {
			t.Fatalf("steered rejection carries no retry hint: %+v", resp)
		}
		return
	}
}

// TestDeadShardStatsReadAsError pins the PR 3 stats contract across the
// wire: a connected shard's contribution is readable; a disconnected one is
// an explicit error, never zeros.
func TestDeadShardStatsReadAsError(t *testing.T) {
	h := newFailoverHarness(t, 2, 1)
	h.runDevices(6)

	// While connected, the per-shard read works.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if _, err := h.coord.ShardStats(0); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shard 0 never became readable")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := h.coord.ShardStats(7); err == nil {
		t.Fatal("never-connected shard 7 read as data, want error")
	}

	h.partition()
	deadline = time.Now().Add(15 * time.Second)
	for {
		_, err := h.coord.ShardStats(0)
		if err != nil {
			break // dead peer is an explicit error
		}
		if time.Now().After(deadline) {
			t.Fatal("dead shard 0 still reads as live data, want error")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The cumulative breakdown survives the disconnect, flagged as such.
	all, err := h.coord.PerShardStats()
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := all[0]; !ok || c.Connected {
		t.Fatalf("per-shard map after disconnect: %+v", all)
	}
}

// TestReconnectThenResume is the regression test for the reconnect path: the
// link drops mid-task, comes back, and the next rounds must commit on the
// resumed link (coordinator re-sends the live round's config on hello).
func TestReconnectThenResume(t *testing.T) {
	h := newFailoverHarness(t, 2, 3)
	h.runDevices(6)

	h.waitRounds(1, 30*time.Second)
	h.partition()
	// Let the heartbeat declare the link dead before healing.
	time.Sleep(200 * time.Millisecond)
	h.heal()

	// All 3 rounds commit: the shard redialed, re-announced itself, got the
	// round config again, and resumed shipping seals.
	select {
	case <-h.coord.Done():
	case <-time.After(60 * time.Second):
		st, _ := h.coord.Stats()
		t.Fatalf("rounds did not resume after reconnect: %+v", st)
	}
	st, err := h.coord.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RoundsCompleted < 3 {
		t.Fatalf("completed %d rounds, want 3", st.RoundsCompleted)
	}
	if st.SealsReceived < 3 {
		t.Fatalf("received %d seals, want >= 3", st.SealsReceived)
	}
}

// TestCoordinatorCrashRespawn kills the coordinator process outright while
// the shard holds live device check-ins, then respawns it on the same
// address and backing store: the shard must reconnect and rounds must resume
// from the committed checkpoint lineage (satellite: lock service + round
// state over the wire under -race).
func TestCoordinatorCrashRespawn(t *testing.T) {
	h := newFailoverHarness(t, 2, 1)
	h.runDevices(6)

	// Round 1 commits, then the coordinator dies.
	select {
	case <-h.coord.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("first coordinator never committed its round")
	}
	first, err := h.store.LatestCheckpoint(h.plan.ID)
	if err != nil {
		t.Fatalf("no checkpoint after round 1: %v", err)
	}
	h.crashCoordinator()

	// Devices keep checking in against the shard throughout the outage; the
	// respawned coordinator picks the lineage up from the shared store.
	time.Sleep(200 * time.Millisecond)
	h.startCoordinator(1)
	h.heal()

	select {
	case <-h.coord.Done():
	case <-time.After(60 * time.Second):
		st, _ := h.coord.Stats()
		t.Fatalf("respawned coordinator never committed: %+v", st)
	}
	second, err := h.store.LatestCheckpoint(h.plan.ID)
	if err != nil {
		t.Fatal(err)
	}
	if second.Round <= first.Round {
		t.Fatalf("lineage did not advance across the crash: round %d -> %d", first.Round, second.Round)
	}
}
