package shard

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/flserver"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/transport"
)

// BenchShardedConfig parametrizes one sharded-round run for
// BenchmarkShardedRound and `flbench -exp shardtput`: N selector processes
// and one coordinator process, connected over the real peer links (mem or
// TCP), driving a device swarm spread across the shards to committed
// rounds at target K.
type BenchShardedConfig struct {
	// Shards is the number of selector processes (default 3).
	Shards int
	// Devices is the swarm size (default 3×K).
	Devices int
	// TargetDevices is K, the reports each round needs (default 64).
	TargetDevices int
	// Rounds is how many rounds must commit (default 2).
	Rounds int
	// Features sizes the model (default 4; raise it to make the sealed
	// stripes, and the upstream frames, big).
	Features int
	// TCP moves every link — device→shard and shard→coordinator — over
	// real loopback sockets.
	TCP bool
	// ClipNorm, when positive, runs the task under the norm-bound robust
	// policy: every shard clips reports at its own edge and the seals carry
	// the clip counts upstream.
	ClipNorm float64
	Seed     uint64
	// Timeout bounds the whole run (default 2 minutes).
	Timeout time.Duration
}

// BenchShardedStats describes one completed sharded run.
type BenchShardedStats struct {
	Rounds  int
	Elapsed time.Duration
	// SealsReceived / BytesUpstream is the selector→coordinator aggregation
	// traffic: one sealed stripe per shard per round, never raw updates.
	SealsReceived int64
	BytesUpstream int64
	// Accepted sums device check-ins accepted across every shard.
	Accepted int64
	// Clipped totals norm-bound edge clips across every shard and round.
	Clipped int64
	// PerShard is each shard's cumulative contribution.
	PerShard map[uint32]ShardContribution
}

// RunBenchSharded drives a cfg.Shards×1 sharded deployment to cfg.Rounds
// committed rounds. Used by BenchmarkShardedRound, `flbench -exp
// shardtput`, and the sharded integration tests (mem and TCP).
func RunBenchSharded(cfg BenchShardedConfig) (BenchShardedStats, error) {
	var stats BenchShardedStats
	if cfg.Shards <= 0 {
		cfg.Shards = 3
	}
	if cfg.TargetDevices <= 0 {
		cfg.TargetDevices = 64
	}
	if cfg.Devices <= 0 {
		cfg.Devices = 3 * cfg.TargetDevices
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 2
	}
	if cfg.Features <= 0 {
		cfg.Features = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if cfg.Devices < cfg.TargetDevices {
		return stats, fmt.Errorf("shard bench: %d devices cannot satisfy K=%d", cfg.Devices, cfg.TargetDevices)
	}

	const pop = "pop-sharded"
	p, err := plan.Generate(plan.Config{
		TaskID: pop + "/train", Population: pop,
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: cfg.Features, Classes: 3, Seed: 1},
		StoreName: pop + "-store", BatchSize: 5, Epochs: 1, LearningRate: 0.1,
		TargetDevices: cfg.TargetDevices, MinReportFraction: 0.5,
		SelectionTimeout: 30 * time.Second, ReportTimeout: 20 * time.Second,
		Robust: robustCfg(cfg.ClipNorm),
	})
	if err != nil {
		return stats, err
	}
	// Generate mirrors the norm bound into the device plan so honest
	// devices pre-clip; that would put every shipped norm exactly at
	// clip×weight and leave the edge's re-clip decision to float noise.
	// The bench measures the server-side enforcement path, so keep the
	// devices honest-but-unclipped: every over-bound report must then be
	// clipped at the edge, deterministically.
	p.Device.ClipNorm = 0
	fed, err := data.Blobs(data.BlobsConfig{
		Users: cfg.Devices, ExamplesPer: 20, Features: cfg.Features, Classes: 3,
		TestSize: 10, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return stats, err
	}

	store := storage.NewMem()
	coord, err := NewCoordinatorProc(CoordinatorConfig{
		Population: pop,
		Plans:      []*plan.Plan{p},
		Store:      store,
		Steering:   pacing.New(time.Second),
		MaxRounds:  cfg.Rounds,
		MinShards:  cfg.Shards,
		SealGrace:  2 * time.Second,
	})
	if err != nil {
		return stats, err
	}
	defer coord.Close()

	// Wire the topology: one coordinator listener the shards dial, one
	// device listener per shard the swarm dials.
	mem := transport.NewMemNetwork()
	listen := func(name string) (transport.Listener, error) {
		if cfg.TCP {
			return transport.ListenTCP("127.0.0.1:0")
		}
		return mem.Listen(name)
	}
	dialer := func(l transport.Listener, name string) func() (transport.Conn, error) {
		if cfg.TCP {
			addr := l.Addr()
			return func() (transport.Conn, error) { return transport.DialTCP(addr) }
		}
		return func() (transport.Conn, error) { return mem.Dial(name) }
	}

	coordL, err := listen("coord")
	if err != nil {
		return stats, err
	}
	defer coordL.Close()
	go coord.Serve(coordL)
	coordDial := dialer(coordL, "coord")

	shards := make([]*SelectorProc, cfg.Shards)
	shardDials := make([]func() (transport.Conn, error), cfg.Shards)
	for i := range shards {
		sp := NewSelectorProc(SelectorConfig{
			Shard:              uint32(i),
			Steering:           pacing.New(time.Second),
			PopulationEstimate: cfg.Devices,
			Seed:               cfg.Seed + uint64(i)*131,
			RateProbeInterval:  700 * time.Millisecond,
		}, coordDial)
		shards[i] = sp
		defer sp.Close()
		name := fmt.Sprintf("shard-%d", i)
		l, err := listen(name)
		if err != nil {
			return stats, err
		}
		defer l.Close()
		go sp.Serve(l)
		shardDials[i] = dialer(l, name)
	}

	// The device swarm, spread across shards: device i homes on shard
	// i%Shards (fldevices' shard-aware dialing does the same round-robin
	// spread over its -addrs list).
	stop := make(chan struct{})
	var devices sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Devices; i++ {
		id := fmt.Sprintf("shard-dev-%d", i)
		rt := device.NewRuntime(id, 3, nil, cfg.Seed+uint64(i)+100)
		st, err := device.NewMemStore(pop+"-store", 1000, 0)
		if err != nil {
			return stats, err
		}
		now := time.Now()
		for _, ex := range fed.Users[i] {
			st.Add(ex, now)
		}
		if err := rt.RegisterStore(st); err != nil {
			return stats, err
		}
		client := &flserver.DeviceClient{ID: id, Population: pop, Runtime: rt}
		dial := shardDials[i%cfg.Shards]
		devices.Add(1)
		go func() {
			defer devices.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if conn, err := dial(); err == nil {
					_, _ = client.RunOnce(conn)
				}
				// Check in again quickly: the shard's pace steering rejects
				// the surplus; the coordinator's rate tracker sees the flow.
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	select {
	case <-coord.Done():
	case <-time.After(cfg.Timeout):
		close(stop)
		devices.Wait()
		return stats, fmt.Errorf("shard bench: %d rounds did not commit within %v", cfg.Rounds, cfg.Timeout)
	}
	stats.Elapsed = time.Since(start)
	close(stop)
	// Watchdog: a device goroutine that never exits means a connection was
	// accepted but never answered — exactly the bug class the sealed-round
	// linger exists to prevent. Fail loudly instead of hanging the bench.
	waited := make(chan struct{})
	go func() { devices.Wait(); close(waited) }()
	select {
	case <-waited:
	case <-time.After(30 * time.Second):
		return stats, fmt.Errorf("shard bench: device goroutines leaked after rounds committed")
	}

	cs, err := coord.Stats()
	if err != nil {
		return stats, err
	}
	stats.Rounds = cs.RoundsCompleted
	stats.SealsReceived = cs.SealsReceived
	stats.BytesUpstream = cs.BytesUpstream
	stats.Clipped = cs.Clipped
	stats.PerShard, err = coord.PerShardStats()
	if err != nil {
		return stats, err
	}
	for _, sp := range shards {
		ss, err := sp.Stats()
		if err != nil {
			return stats, err
		}
		stats.Accepted += ss.Selector.Accepted
	}
	if _, err := store.LatestCheckpoint(p.ID); err != nil {
		return stats, fmt.Errorf("shard bench: no committed checkpoint: %w", err)
	}
	return stats, nil
}

// robustCfg builds the norm-bound policy for a positive clip, or none.
func robustCfg(clip float64) plan.RobustPolicy {
	if clip > 0 {
		return plan.RobustPolicy{Kind: plan.RobustNormBound, ClipNorm: clip}
	}
	return plan.RobustPolicy{}
}
