package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/flserver"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/transport"
)

const stormPop = "pop-storm"

// configRecorder tallies RoundConfig frames observed on each shard's
// coordinator link, keyed by (shard, round) — the exactly-once evidence for
// the reconnect-storm test.
type configRecorder struct {
	mu     sync.Mutex
	counts map[[2]int64]int
}

func newConfigRecorder() *configRecorder {
	return &configRecorder{counts: make(map[[2]int64]int)}
}

func (r *configRecorder) note(shard uint32, round int64) {
	r.mu.Lock()
	r.counts[[2]int64{int64(shard), round}]++
	r.mu.Unlock()
}

func (r *configRecorder) snapshot() map[[2]int64]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[[2]int64]int, len(r.counts))
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// countingConn wraps a shard's coordinator link and records every inbound
// RoundConfig.
type countingConn struct {
	transport.Conn
	shard uint32
	rec   *configRecorder
}

func (c *countingConn) Recv() (interface{}, error) {
	msg, err := c.Conn.Recv()
	if err == nil {
		if rc, ok := msg.(protocol.RoundConfig); ok {
			c.rec.note(c.shard, rc.Round)
		}
	}
	return msg, err
}

// TestReconnectStormResumesExactlyOnce is the reconnect-storm satellite: N
// shards lose the coordinator at once (process crash), the coordinator
// respawns on the same address and store, and every shard redials
// simultaneously. With MinShards=N the next round cannot start until the
// whole storm has re-announced, and each shard must resume the live round
// config exactly once — one RoundConfig frame per (shard, round) on the
// wire, one EdgeRound opened per round per shard, no duplicate fan-out from
// the reconnect races. Run under -race (CI does).
func TestReconnectStormResumesExactlyOnce(t *testing.T) {
	const numShards = 3
	p, err := plan.Generate(plan.Config{
		TaskID: stormPop + "/train", Population: stormPop,
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName: stormPop + "-store", BatchSize: 5, Epochs: 1, LearningRate: 0.1,
		TargetDevices: numShards, MinReportFraction: 0.34,
		SelectionTimeout: 30 * time.Second, ReportTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewMemNetwork()
	store := storage.NewMem()
	rec := newConfigRecorder()
	var linkUp atomic.Bool
	linkUp.Store(true)

	var connMu sync.Mutex
	var liveConns []transport.Conn

	startCoordinator := func(maxRounds int) (*CoordinatorProc, transport.Listener) {
		coord, err := NewCoordinatorProc(CoordinatorConfig{
			Population: stormPop,
			Plans:      []*plan.Plan{p},
			Store:      store,
			Steering:   pacing.New(time.Second),
			MaxRounds:  maxRounds,
			MinShards:  numShards,
			SealGrace:  500 * time.Millisecond,
			TickEvery:  50 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(coord.Close)
		l, err := net.Listen("coord")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go coord.Serve(l)
		return coord, l
	}

	coord, coordL := startCoordinator(1)

	// N shards, each with a counting, severable dialer.
	shards := make([]*SelectorProc, numShards)
	for i := 0; i < numShards; i++ {
		idx := uint32(i)
		dial := func() (transport.Conn, error) {
			if !linkUp.Load() {
				return nil, fmt.Errorf("storm test: coordinator down")
			}
			c, err := net.Dial("coord")
			if err != nil {
				return nil, err
			}
			wrapped := &countingConn{Conn: c, shard: idx, rec: rec}
			connMu.Lock()
			liveConns = append(liveConns, wrapped)
			connMu.Unlock()
			return wrapped, nil
		}
		proc := NewSelectorProc(SelectorConfig{
			Shard:              idx,
			Steering:           pacing.New(time.Second),
			PopulationEstimate: 32,
			Seed:               17 + uint64(i),
			Peer:               fastPeerOpts(),
			RateProbeInterval:  100 * time.Millisecond,
		}, dial)
		t.Cleanup(proc.Close)
		shards[i] = proc
		l, err := net.Listen(fmt.Sprintf("storm-shard-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go proc.Serve(l)
	}

	// A device swarm per shard keeps check-ins flowing across the crash.
	fed, err := data.Blobs(data.BlobsConfig{
		Users: numShards * 2, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	stopDevices := make(chan struct{})
	var devices sync.WaitGroup
	for i := 0; i < numShards*2; i++ {
		id := fmt.Sprintf("storm-dev-%d", i)
		rt := device.NewRuntime(id, 3, nil, uint64(i)+900)
		st, err := device.NewMemStore(stormPop+"-store", 1000, 0)
		if err != nil {
			t.Fatal(err)
		}
		now := time.Now()
		for _, ex := range fed.Users[i] {
			st.Add(ex, now)
		}
		if err := rt.RegisterStore(st); err != nil {
			t.Fatal(err)
		}
		client := &flserver.DeviceClient{ID: id, Population: stormPop, Runtime: rt}
		addr := fmt.Sprintf("storm-shard-%d", i%numShards)
		devices.Add(1)
		go func() {
			defer devices.Done()
			for {
				select {
				case <-stopDevices:
					return
				default:
				}
				if conn, err := net.Dial(addr); err == nil {
					_, _ = client.RunOnce(conn)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	t.Cleanup(func() {
		close(stopDevices)
		done := make(chan struct{})
		go func() { devices.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Error("device goroutines leaked at teardown")
		}
	})

	// Round 1 commits with all shards participating.
	select {
	case <-coord.Done():
	case <-time.After(60 * time.Second):
		st, _ := coord.Stats()
		t.Fatalf("first coordinator never committed: %+v", st)
	}
	first, err := store.LatestCheckpoint(p.ID)
	if err != nil {
		t.Fatal(err)
	}

	// Crash: listener gone, process gone, every live shard link severed at
	// once — the whole fleet starts redialing together.
	coordL.Close()
	coord.Close()
	linkUp.Store(false)
	connMu.Lock()
	severed := liveConns
	liveConns = nil
	connMu.Unlock()
	for _, c := range severed {
		c.Close()
	}

	time.Sleep(200 * time.Millisecond)
	coord, _ = startCoordinator(1)
	linkUp.Store(true) // the storm: all shards redial simultaneously

	select {
	case <-coord.Done():
	case <-time.After(60 * time.Second):
		st, _ := coord.Stats()
		t.Fatalf("respawned coordinator never committed through the storm: %+v", st)
	}
	second, err := store.LatestCheckpoint(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if second.Round <= first.Round {
		t.Fatalf("lineage did not advance across the storm: round %d -> %d", first.Round, second.Round)
	}

	// Exactly-once: every (shard, round) saw its RoundConfig exactly one
	// time on the wire — the respawned coordinator's fan-out did not double
	// up under the simultaneous re-announcements.
	counts := rec.snapshot()
	rounds := map[int64]bool{}
	for key, n := range counts {
		rounds[key[1]] = true
		if n != 1 {
			t.Errorf("shard %d received round %d's config %d times, want exactly 1", key[0], key[1], n)
		}
	}
	for s := 0; s < numShards; s++ {
		for r := range rounds {
			if counts[[2]int64{int64(s), r}] != 1 {
				t.Errorf("shard %d missing round %d's config: counts=%v", s, r, counts)
			}
		}
	}

	// And each shard opened exactly one EdgeRound per round — duplicate or
	// re-sent configs never re-open a round.
	for i, proc := range shards {
		st, err := proc.Stats()
		if err != nil {
			t.Fatalf("shard %d stats: %v", i, err)
		}
		if st.RoundsOpened != int64(len(rounds)) {
			t.Errorf("shard %d opened %d rounds, want %d (one per committed round)", i, st.RoundsOpened, len(rounds))
		}
	}
}
