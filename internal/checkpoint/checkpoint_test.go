package checkpoint

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func sample() *Checkpoint {
	return &Checkpoint{
		TaskName: "population/task-1",
		Round:    42,
		Weight:   128,
		Params:   tensor.Vector{-1.5, 0, 0.25, 3.125, -2.75},
	}
}

func TestFloat64RoundTrip(t *testing.T) {
	c := sample()
	b, err := c.Marshal(EncodingFloat64)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.TaskName != c.TaskName || got.Round != c.Round || got.Weight != c.Weight {
		t.Fatalf("metadata mismatch: %+v vs %+v", got, c)
	}
	for i := range c.Params {
		if got.Params[i] != c.Params[i] {
			t.Fatalf("param %d: %v != %v", i, got.Params[i], c.Params[i])
		}
	}
}

func TestQuant8RoundTripApproximate(t *testing.T) {
	c := sample()
	b, err := c.Marshal(EncodingQuant8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := paramRange(c.Params)
	tol := (hi - lo) / 255 // one quantization step
	for i := range c.Params {
		if math.Abs(got.Params[i]-c.Params[i]) > tol {
			t.Fatalf("param %d: %v vs %v exceeds quantization tolerance %v", i, got.Params[i], c.Params[i], tol)
		}
	}
}

func TestQuant8ConstantVector(t *testing.T) {
	c := &Checkpoint{TaskName: "t", Params: tensor.Vector{2, 2, 2}}
	b, err := c.Marshal(EncodingQuant8)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range got.Params {
		if p != 2 {
			t.Fatalf("constant vector decoded to %v", got.Params)
		}
	}
}

func TestQuant8IsSmaller(t *testing.T) {
	c := &Checkpoint{TaskName: "t", Params: make(tensor.Vector, 10000)}
	full, _ := c.Marshal(EncodingFloat64)
	q, _ := c.Marshal(EncodingQuant8)
	if len(q) >= len(full)/6 {
		t.Fatalf("quant8 size %d not ≪ float64 size %d", len(q), len(full))
	}
	if c.WireSize(EncodingFloat64) != len(full) || c.WireSize(EncodingQuant8) != len(q) {
		t.Fatalf("WireSize mismatch: %d/%d vs %d/%d",
			c.WireSize(EncodingFloat64), c.WireSize(EncodingQuant8), len(full), len(q))
	}
}

func TestEmptyParams(t *testing.T) {
	c := &Checkpoint{TaskName: "empty", Round: 1}
	for _, enc := range []Encoding{EncodingFloat64, EncodingQuant8} {
		b, err := c.Marshal(enc)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Params) != 0 || got.TaskName != "empty" {
			t.Fatalf("empty round-trip: %+v", got)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	c := sample()
	good, _ := c.Marshal(EncodingFloat64)

	cases := map[string][]byte{
		"empty":          {},
		"short":          good[:8],
		"bad magic":      append([]byte{0, 0, 0, 0}, good[4:]...),
		"bad version":    func() []byte { b := append([]byte(nil), good...); b[4] = 99; return b }(),
		"bad encoding":   func() []byte { b := append([]byte(nil), good...); b[5] = 99; return b }(),
		"truncated body": good[:len(good)-3],
	}
	for name, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestUnmarshalHostileParamCount(t *testing.T) {
	// Updates arrive from devices: a tiny buffer whose header claims 2³²−1
	// params must error before allocating O(claimed) memory. (If the count
	// were trusted, this test would OOM, not merely fail.)
	c := sample()
	for _, enc := range []Encoding{EncodingFloat64, EncodingQuant8} {
		good, err := c.Marshal(enc)
		if err != nil {
			t.Fatal(err)
		}
		// The param count sits 4 bytes before the params block; header is
		// magic(4) version(1) encoding(1) nameLen(2) name round(8) weight(8).
		countOff := 4 + 1 + 1 + 2 + len(c.TaskName) + 8 + 8
		hostile := append([]byte(nil), good...)
		for i := 0; i < 4; i++ {
			hostile[countOff+i] = 0xFF
		}
		if _, err := Unmarshal(hostile); err == nil {
			t.Errorf("encoding %d: hostile param count decoded cleanly", enc)
		}
	}
}

func TestMarshalBadEncoding(t *testing.T) {
	if _, err := sample().Marshal(Encoding(0)); err == nil {
		t.Fatal("expected error for unknown encoding")
	}
}

func TestClone(t *testing.T) {
	c := sample()
	d := c.Clone()
	d.Params[0] = 999
	if c.Params[0] == 999 {
		t.Fatal("Clone must deep-copy params")
	}
}

// Property: float64 encoding round-trips arbitrary finite parameter vectors.
func TestFloat64RoundTripProperty(t *testing.T) {
	f := func(name string, round int64, weight float64, params []float64) bool {
		if len(name) > 1000 {
			name = name[:1000]
		}
		if math.IsNaN(weight) {
			return true
		}
		for _, p := range params {
			if math.IsNaN(p) {
				return true
			}
		}
		c := &Checkpoint{TaskName: name, Round: round, Weight: weight, Params: params}
		b, err := c.Marshal(EncodingFloat64)
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		if got.TaskName != name || got.Round != round || got.Weight != weight || len(got.Params) != len(params) {
			return false
		}
		for i := range params {
			if got.Params[i] != params[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: quant8 error is bounded by one quantization step everywhere.
func TestQuant8ErrorBoundProperty(t *testing.T) {
	f := func(params []float64) bool {
		clean := make(tensor.Vector, 0, len(params))
		for _, p := range params {
			if !math.IsNaN(p) && !math.IsInf(p, 0) && math.Abs(p) < 1e9 {
				clean = append(clean, p)
			}
		}
		c := &Checkpoint{TaskName: "q", Params: clean}
		b, err := c.Marshal(EncodingQuant8)
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		lo, hi := paramRange(clean)
		tol := (hi-lo)/255 + 1e-12
		for i := range clean {
			if math.Abs(got.Params[i]-clean[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
