package checkpoint

import (
	"testing"

	"repro/internal/tensor"
)

func benchCheckpoint(n int) *Checkpoint {
	rng := tensor.NewRNG(1)
	params := make(tensor.Vector, n)
	rng.FillNormal(params, 0.05)
	return &Checkpoint{TaskName: "bench/task", Round: 10, Weight: 100, Params: params}
}

func BenchmarkMarshalFloat64(b *testing.B) {
	c := benchCheckpoint(100_000)
	b.SetBytes(int64(c.WireSize(EncodingFloat64)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Marshal(EncodingFloat64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMarshalQuant8(b *testing.B) {
	c := benchCheckpoint(100_000)
	b.SetBytes(int64(c.WireSize(EncodingQuant8)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Marshal(EncodingQuant8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalFloat64(b *testing.B) {
	c := benchCheckpoint(100_000)
	buf, err := c.Marshal(EncodingFloat64)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}
