package checkpoint

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// TestParseMetaMatchesUnmarshal: the zero-allocation header parse must see
// exactly what Unmarshal sees.
func TestParseMetaMatchesUnmarshal(t *testing.T) {
	c := sample()
	for _, enc := range []Encoding{EncodingFloat64, EncodingQuant8} {
		b, err := c.Marshal(enc)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ParseMeta(b)
		if err != nil {
			t.Fatal(err)
		}
		if m.TaskName(b) != c.TaskName || m.Round != c.Round || m.Weight != c.Weight ||
			m.NumParams != len(c.Params) || m.Encoding != enc {
			t.Fatalf("meta mismatch for encoding %d: %+v", enc, m)
		}
	}
}

// TestParseMetaRejectsWhatUnmarshalRejects: every hostile input the full
// decoder refuses, the header parse must refuse too — the Reporting path
// relies on ParseMeta alone for bounds safety.
func TestParseMetaRejectsWhatUnmarshalRejects(t *testing.T) {
	c := sample()
	good, _ := c.Marshal(EncodingFloat64)
	cases := map[string][]byte{
		"empty":          {},
		"short":          good[:8],
		"bad magic":      append([]byte{0, 0, 0, 0}, good[4:]...),
		"bad version":    func() []byte { b := append([]byte(nil), good...); b[4] = 99; return b }(),
		"bad encoding":   func() []byte { b := append([]byte(nil), good...); b[5] = 99; return b }(),
		"truncated body": good[:len(good)-3],
	}
	for name, b := range cases {
		if _, err := ParseMeta(b); err == nil {
			t.Errorf("%s: ParseMeta accepted what Unmarshal rejects", name)
		}
	}
	// Hostile param count: must error before anyone allocates O(claimed).
	countOff := 4 + 1 + 1 + 2 + len(c.TaskName) + 8 + 8
	hostile := append([]byte(nil), good...)
	for i := 0; i < 4; i++ {
		hostile[countOff+i] = 0xFF
	}
	if _, err := ParseMeta(hostile); err == nil {
		t.Error("hostile param count parsed cleanly")
	}
}

// TestAccumulateParamsMatchesUnmarshalAdd: the fused decode-and-accumulate
// must produce bit-identical sums to decode-then-Axpy, for both encodings.
func TestAccumulateParamsMatchesUnmarshalAdd(t *testing.T) {
	c := &Checkpoint{TaskName: "acc", Weight: 3,
		Params: tensor.Vector{-2.5, 0, 1.25, 7.75, -0.125, 3}}
	for _, enc := range []Encoding{EncodingFloat64, EncodingQuant8} {
		b, err := c.Marshal(enc)
		if err != nil {
			t.Fatal(err)
		}
		base := tensor.Vector{10, -1, 0.5, 2, 0, -4}

		want := base.Clone()
		decoded, err := Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		want.Axpy(1, decoded.Params)

		got := base.Clone()
		m, err := ParseMeta(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AccumulateParams(b, got); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("encoding %d param %d: fused %v != reference %v", enc, i, got[i], want[i])
			}
		}
	}
}

// TestAccumulateParamsDimMismatchLeavesSumUntouched: a stripe must never
// see a half-applied update.
func TestAccumulateParamsDimMismatchLeavesSumUntouched(t *testing.T) {
	c := sample()
	b, _ := c.Marshal(EncodingFloat64)
	m, err := ParseMeta(b)
	if err != nil {
		t.Fatal(err)
	}
	sum := tensor.Vector{1, 2, 3} // wrong dim
	if err := m.AccumulateParams(b, sum); err == nil {
		t.Fatal("dim mismatch must error")
	}
	if sum[0] != 1 || sum[1] != 2 || sum[2] != 3 {
		t.Fatalf("sum mutated on error: %v", sum)
	}
}

// TestDecodeParamsIntoOversizedBuffer: the pooled-buffer path decodes into
// a reslice of a larger recycled buffer.
func TestDecodeParamsIntoOversizedBuffer(t *testing.T) {
	c := sample()
	for _, enc := range []Encoding{EncodingFloat64, EncodingQuant8} {
		b, _ := c.Marshal(enc)
		m, err := ParseMeta(b)
		if err != nil {
			t.Fatal(err)
		}
		buf := make(tensor.Vector, len(c.Params)+10)
		for i := range buf {
			buf[i] = 99 // dirty pooled buffer
		}
		if err := m.DecodeParams(b, buf); err != nil {
			t.Fatal(err)
		}
		ref, _ := Unmarshal(b)
		for i := range ref.Params {
			if buf[i] != ref.Params[i] {
				t.Fatalf("encoding %d param %d: %v != %v", enc, i, buf[i], ref.Params[i])
			}
		}
		if err := m.DecodeParams(b, buf[:1]); err == nil {
			t.Fatal("undersized buffer must error")
		}
	}
}

// Property: the fused quant8 accumulate respects the same one-step error
// bound as the round-trip (it IS the round-trip, with the add fused in).
func TestQuant8AccumulateErrorBoundProperty(t *testing.T) {
	f := func(params []float64) bool {
		clean := make(tensor.Vector, 0, len(params))
		for _, p := range params {
			if !math.IsNaN(p) && !math.IsInf(p, 0) && math.Abs(p) < 1e9 {
				clean = append(clean, p)
			}
		}
		c := &Checkpoint{TaskName: "q", Weight: 1, Params: clean}
		b, err := c.Marshal(EncodingQuant8)
		if err != nil {
			return false
		}
		m, err := ParseMeta(b)
		if err != nil {
			return false
		}
		sum := make(tensor.Vector, len(clean))
		if err := m.AccumulateParams(b, sum); err != nil {
			return false
		}
		lo, hi := paramRange(clean)
		tol := (hi-lo)/255 + 1e-12
		for i := range clean {
			if math.Abs(sum[i]-clean[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
