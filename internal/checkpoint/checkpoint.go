// Package checkpoint implements the FL checkpoint: the serialized model
// state shipped between server and devices ("essentially the serialized
// state of a TensorFlow session", Sec. 2.1). The global model goes down as
// a checkpoint; the device's weighted update comes back as one.
//
// Two wire encodings are provided: full float64 and 8-bit quantized. The
// paper notes (Sec. 11, Bandwidth; Fig. 9) that updates are more
// compressible than the global model — the quantized codec is what makes
// the Fig. 9 traffic asymmetry reproducible.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Checkpoint carries model parameters plus protocol metadata.
type Checkpoint struct {
	TaskName string
	Round    int64
	// Weight is the aggregation weight n (the local example count for a
	// device update; the summed weight n̄ for an aggregate).
	Weight float64
	Params tensor.Vector
}

// Encoding selects the wire format for parameters.
type Encoding uint8

// Available encodings.
const (
	EncodingFloat64 Encoding = iota + 1 // 8 bytes/param, lossless
	EncodingQuant8                      // 1 byte/param, min/max linear quantization
)

const (
	magic         = 0x464C4350 // "FLCP"
	formatVersion = 1
)

// Clone returns a deep copy.
func (c *Checkpoint) Clone() *Checkpoint {
	return &Checkpoint{TaskName: c.TaskName, Round: c.Round, Weight: c.Weight, Params: c.Params.Clone()}
}

// Marshal serializes the checkpoint with the given encoding.
//
// Layout (big-endian):
//
//	u32 magic | u8 version | u8 encoding | u16 nameLen | name bytes
//	i64 round | f64 weight | u32 paramLen | params…
//
// Quant8 params are prefixed by f64 min, f64 max.
func (c *Checkpoint) Marshal(enc Encoding) ([]byte, error) {
	if len(c.TaskName) > math.MaxUint16 {
		return nil, fmt.Errorf("checkpoint: task name too long (%d bytes)", len(c.TaskName))
	}
	if uint64(len(c.Params)) > math.MaxUint32 {
		return nil, fmt.Errorf("checkpoint: too many params (%d)", len(c.Params))
	}
	header := 4 + 1 + 1 + 2 + len(c.TaskName) + 8 + 8 + 4
	var body int
	switch enc {
	case EncodingFloat64:
		body = 8 * len(c.Params)
	case EncodingQuant8:
		body = 16 + len(c.Params)
	default:
		return nil, fmt.Errorf("checkpoint: unknown encoding %d", enc)
	}
	buf := make([]byte, 0, header+body)

	buf = binary.BigEndian.AppendUint32(buf, magic)
	buf = append(buf, formatVersion, byte(enc))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(c.TaskName)))
	buf = append(buf, c.TaskName...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.Round))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.Weight))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.Params)))

	switch enc {
	case EncodingFloat64:
		for _, p := range c.Params {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p))
		}
	case EncodingQuant8:
		lo, hi := paramRange(c.Params)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(lo))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(hi))
		scale := 0.0
		if hi > lo {
			scale = 255 / (hi - lo)
		}
		for _, p := range c.Params {
			buf = append(buf, byte(math.Round((p-lo)*scale)))
		}
	}
	return buf, nil
}

// Unmarshal parses a checkpoint produced by Marshal.
func Unmarshal(b []byte) (*Checkpoint, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("checkpoint: truncated header (%d bytes)", len(b))
	}
	if binary.BigEndian.Uint32(b) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %#x", binary.BigEndian.Uint32(b))
	}
	if b[4] != formatVersion {
		return nil, fmt.Errorf("checkpoint: unsupported format version %d", b[4])
	}
	enc := Encoding(b[5])
	nameLen := int(binary.BigEndian.Uint16(b[6:]))
	off := 8
	if len(b) < off+nameLen+20 {
		return nil, fmt.Errorf("checkpoint: truncated body")
	}
	c := &Checkpoint{TaskName: string(b[off : off+nameLen])}
	off += nameLen
	c.Round = int64(binary.BigEndian.Uint64(b[off:]))
	off += 8
	c.Weight = math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
	off += 8
	// Validate the claimed parameter count against the remaining bytes
	// BEFORE allocating O(n): updates arrive from devices, and a hostile
	// few-byte header claiming 2³²−1 params must not commit gigabytes.
	// Sizes are computed in int64 so the count cannot overflow int on
	// 32-bit platforms and slip past the check into make.
	count := int64(binary.BigEndian.Uint32(b[off:]))
	off += 4
	var need int64
	switch enc {
	case EncodingFloat64:
		need = 8 * count
	case EncodingQuant8:
		need = 16 + count
	default:
		return nil, fmt.Errorf("checkpoint: unknown encoding %d", enc)
	}
	if int64(len(b)-off) < need {
		return nil, fmt.Errorf("checkpoint: truncated params (have %d, need %d)", len(b)-off, need)
	}
	n := int(count)
	c.Params = make(tensor.Vector, n)

	switch enc {
	case EncodingFloat64:
		for i := 0; i < n; i++ {
			c.Params[i] = math.Float64frombits(binary.BigEndian.Uint64(b[off+8*i:]))
		}
	case EncodingQuant8:
		lo := math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
		hi := math.Float64frombits(binary.BigEndian.Uint64(b[off+8:]))
		off += 16
		step := 0.0
		if hi > lo {
			step = (hi - lo) / 255
		}
		for i := 0; i < n; i++ {
			c.Params[i] = lo + float64(b[off+i])*step
		}
	}
	return c, nil
}

// WireSize returns the encoded size in bytes without allocating the buffer.
// The analytics layer uses it for the Fig. 9 traffic accounting.
func (c *Checkpoint) WireSize(enc Encoding) int {
	header := 4 + 1 + 1 + 2 + len(c.TaskName) + 8 + 8 + 4
	switch enc {
	case EncodingQuant8:
		return header + 16 + len(c.Params)
	default:
		return header + 8*len(c.Params)
	}
}

func paramRange(v tensor.Vector) (lo, hi float64) {
	if len(v) == 0 {
		return 0, 0
	}
	lo, hi = v[0], v[0]
	for _, p := range v[1:] {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return lo, hi
}
