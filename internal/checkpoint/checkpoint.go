// Package checkpoint implements the FL checkpoint: the serialized model
// state shipped between server and devices ("essentially the serialized
// state of a TensorFlow session", Sec. 2.1). The global model goes down as
// a checkpoint; the device's weighted update comes back as one.
//
// Two wire encodings are provided: full float64 and 8-bit quantized. The
// paper notes (Sec. 11, Bandwidth; Fig. 9) that updates are more
// compressible than the global model — the quantized codec is what makes
// the Fig. 9 traffic asymmetry reproducible.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Checkpoint carries model parameters plus protocol metadata.
type Checkpoint struct {
	TaskName string
	Round    int64
	// Weight is the aggregation weight n (the local example count for a
	// device update; the summed weight n̄ for an aggregate).
	Weight float64
	Params tensor.Vector
}

// Encoding selects the wire format for parameters.
type Encoding uint8

// Available encodings.
const (
	EncodingFloat64 Encoding = iota + 1 // 8 bytes/param, lossless
	EncodingQuant8                      // 1 byte/param, min/max linear quantization
)

const (
	magic         = 0x464C4350 // "FLCP"
	formatVersion = 1
)

// Clone returns a deep copy.
func (c *Checkpoint) Clone() *Checkpoint {
	return &Checkpoint{TaskName: c.TaskName, Round: c.Round, Weight: c.Weight, Params: c.Params.Clone()}
}

// Marshal serializes the checkpoint with the given encoding.
//
// Layout (big-endian):
//
//	u32 magic | u8 version | u8 encoding | u16 nameLen | name bytes
//	i64 round | f64 weight | u32 paramLen | params…
//
// Quant8 params are prefixed by f64 min, f64 max.
func (c *Checkpoint) Marshal(enc Encoding) ([]byte, error) {
	if len(c.TaskName) > math.MaxUint16 {
		return nil, fmt.Errorf("checkpoint: task name too long (%d bytes)", len(c.TaskName))
	}
	if uint64(len(c.Params)) > math.MaxUint32 {
		return nil, fmt.Errorf("checkpoint: too many params (%d)", len(c.Params))
	}
	header := 4 + 1 + 1 + 2 + len(c.TaskName) + 8 + 8 + 4
	var body int
	switch enc {
	case EncodingFloat64:
		body = 8 * len(c.Params)
	case EncodingQuant8:
		body = 16 + len(c.Params)
	default:
		return nil, fmt.Errorf("checkpoint: unknown encoding %d", enc)
	}
	buf := make([]byte, 0, header+body)

	buf = binary.BigEndian.AppendUint32(buf, magic)
	buf = append(buf, formatVersion, byte(enc))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(c.TaskName)))
	buf = append(buf, c.TaskName...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(c.Round))
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(c.Weight))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(c.Params)))

	switch enc {
	case EncodingFloat64:
		for _, p := range c.Params {
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(p))
		}
	case EncodingQuant8:
		lo, hi := paramRange(c.Params)
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(lo))
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(hi))
		scale := 0.0
		if hi > lo {
			scale = 255 / (hi - lo)
		}
		for _, p := range c.Params {
			buf = append(buf, byte(math.Round((p-lo)*scale)))
		}
	}
	return buf, nil
}

// Meta is a checkpoint's header, parsed without materializing the O(dim)
// parameter vector. The Reporting hot path uses it to validate an incoming
// update (dimension, weight) before deciding where — and whether — to
// decode the parameters (DecodeParams into a pooled buffer, or
// AccumulateParams straight into an accumulator stripe).
type Meta struct {
	Round     int64
	Weight    float64
	NumParams int
	Encoding  Encoding
	// nameOff/nameLen locate the task name inside the buffer; paramsOff is
	// where the parameter section (including the Quant8 min/max prefix)
	// starts. Kept as offsets so ParseMeta allocates nothing.
	nameOff, nameLen, paramsOff int
}

// TaskName extracts the task name from the buffer the Meta was parsed from.
func (m Meta) TaskName(b []byte) string { return string(b[m.nameOff : m.nameOff+m.nameLen]) }

// ParseMeta validates and parses a checkpoint header. It performs every
// bounds check Unmarshal would — a buffer that passes ParseMeta cannot make
// DecodeParams or AccumulateParams read out of range — while allocating
// nothing, so the per-device Reporting path can inspect updates for free.
func ParseMeta(b []byte) (Meta, error) {
	var m Meta
	if len(b) < 12 {
		return m, fmt.Errorf("checkpoint: truncated header (%d bytes)", len(b))
	}
	if binary.BigEndian.Uint32(b) != magic {
		return m, fmt.Errorf("checkpoint: bad magic %#x", binary.BigEndian.Uint32(b))
	}
	if b[4] != formatVersion {
		return m, fmt.Errorf("checkpoint: unsupported format version %d", b[4])
	}
	m.Encoding = Encoding(b[5])
	m.nameLen = int(binary.BigEndian.Uint16(b[6:]))
	m.nameOff = 8
	off := 8
	if len(b) < off+m.nameLen+20 {
		return m, fmt.Errorf("checkpoint: truncated body")
	}
	off += m.nameLen
	m.Round = int64(binary.BigEndian.Uint64(b[off:]))
	off += 8
	m.Weight = math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
	off += 8
	// Validate the claimed parameter count against the remaining bytes
	// BEFORE anyone allocates O(n): updates arrive from devices, and a
	// hostile few-byte header claiming 2³²−1 params must not commit
	// gigabytes. Sizes are computed in int64 so the count cannot overflow
	// int on 32-bit platforms and slip past the check into make.
	count := int64(binary.BigEndian.Uint32(b[off:]))
	off += 4
	var need int64
	switch m.Encoding {
	case EncodingFloat64:
		need = 8 * count
	case EncodingQuant8:
		need = 16 + count
	default:
		return m, fmt.Errorf("checkpoint: unknown encoding %d", m.Encoding)
	}
	if int64(len(b)-off) < need {
		return m, fmt.Errorf("checkpoint: truncated params (have %d, need %d)", len(b)-off, need)
	}
	m.NumParams = int(count)
	m.paramsOff = off
	return m, nil
}

// DecodeParams decodes the parameter section of the buffer m was parsed
// from into dst[:m.NumParams], overwriting it. dst must hold at least
// NumParams elements; it is typically a pooled buffer, so steady-state
// rounds decode without allocating.
func (m Meta) DecodeParams(b []byte, dst tensor.Vector) error {
	if len(dst) < m.NumParams {
		return fmt.Errorf("checkpoint: decode buffer holds %d params, need %d", len(dst), m.NumParams)
	}
	m.apply(b, dst, false)
	return nil
}

// AccumulateParams folds the parameter section of the buffer m was parsed
// from into sum: sum[i] += params[i], dequantizing on the fly for Quant8 —
// no intermediate O(dim) vector is ever materialized. sum must hold exactly
// NumParams elements. The fold either applies fully or (on the length
// mismatch error) leaves sum untouched, so a guarded accumulator stripe
// never sees a half-applied update.
//
// Quant8 error bound: dequantization reconstructs lo + byte·step with
// step = (hi−lo)/255, so each folded coordinate differs from the device's
// true value by at most step/2 = (hi−lo)/510 (Marshal rounds to the
// nearest level). Anything consuming decoded Quant8 updates — including
// per-update robust reduces, which sort or compare these reconstructed
// values — inherits that per-coordinate ±step/2 bound; plan.Validate
// therefore requires per-update robust policies over Quant8 uplinks to
// declare themselves QuantSafe.
func (m Meta) AccumulateParams(b []byte, sum tensor.Vector) error {
	if len(sum) != m.NumParams {
		return fmt.Errorf("checkpoint: accumulate dim %d, update has %d", len(sum), m.NumParams)
	}
	m.apply(b, sum, true)
	return nil
}

// apply decodes params into dst, either overwriting (add=false) or
// accumulating (add=true). Bounds were established by ParseMeta.
func (m Meta) apply(b []byte, dst tensor.Vector, add bool) {
	off := m.paramsOff
	n := m.NumParams
	switch m.Encoding {
	case EncodingFloat64:
		if add {
			for i := 0; i < n; i++ {
				dst[i] += math.Float64frombits(binary.BigEndian.Uint64(b[off+8*i:]))
			}
		} else {
			for i := 0; i < n; i++ {
				dst[i] = math.Float64frombits(binary.BigEndian.Uint64(b[off+8*i:]))
			}
		}
	case EncodingQuant8:
		lo := math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
		hi := math.Float64frombits(binary.BigEndian.Uint64(b[off+8:]))
		off += 16
		step := 0.0
		if hi > lo {
			step = (hi - lo) / 255
		}
		if add {
			for i := 0; i < n; i++ {
				dst[i] += lo + float64(b[off+i])*step
			}
		} else {
			for i := 0; i < n; i++ {
				dst[i] = lo + float64(b[off+i])*step
			}
		}
	}
}

// ParamNorm returns the L2 norm of the parameter section of the buffer m
// was parsed from, dequantizing on the fly for Quant8. Like
// AccumulateParams it materializes nothing, so the Reporting edge can
// decide whether an update needs norm clipping — and by how much — before
// touching an accumulator stripe.
func (m Meta) ParamNorm(b []byte) float64 {
	off := m.paramsOff
	n := m.NumParams
	var ss float64
	switch m.Encoding {
	case EncodingFloat64:
		for i := 0; i < n; i++ {
			v := math.Float64frombits(binary.BigEndian.Uint64(b[off+8*i:]))
			ss += v * v
		}
	case EncodingQuant8:
		lo := math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
		hi := math.Float64frombits(binary.BigEndian.Uint64(b[off+8:]))
		off += 16
		step := 0.0
		if hi > lo {
			step = (hi - lo) / 255
		}
		for i := 0; i < n; i++ {
			v := lo + float64(b[off+i])*step
			ss += v * v
		}
	}
	return math.Sqrt(ss)
}

// AccumulateParamsScaled folds scale × params into sum:
// sum[i] += scale·params[i], with the same guarantees as AccumulateParams.
// Paired with ParamNorm it lets the Reporting edge clip an over-norm
// update into a stripe in two streaming passes over the wire bytes,
// allocating nothing.
func (m Meta) AccumulateParamsScaled(b []byte, sum tensor.Vector, scale float64) error {
	if len(sum) != m.NumParams {
		return fmt.Errorf("checkpoint: accumulate dim %d, update has %d", len(sum), m.NumParams)
	}
	off := m.paramsOff
	n := m.NumParams
	switch m.Encoding {
	case EncodingFloat64:
		for i := 0; i < n; i++ {
			sum[i] += scale * math.Float64frombits(binary.BigEndian.Uint64(b[off+8*i:]))
		}
	case EncodingQuant8:
		lo := math.Float64frombits(binary.BigEndian.Uint64(b[off:]))
		hi := math.Float64frombits(binary.BigEndian.Uint64(b[off+8:]))
		off += 16
		step := 0.0
		if hi > lo {
			step = (hi - lo) / 255
		}
		for i := 0; i < n; i++ {
			sum[i] += scale * (lo + float64(b[off+i])*step)
		}
	}
	return nil
}

// Unmarshal parses a checkpoint produced by Marshal.
func Unmarshal(b []byte) (*Checkpoint, error) {
	m, err := ParseMeta(b)
	if err != nil {
		return nil, err
	}
	c := &Checkpoint{TaskName: m.TaskName(b), Round: m.Round, Weight: m.Weight,
		Params: make(tensor.Vector, m.NumParams)}
	m.apply(b, c.Params, false)
	return c, nil
}

// WireSize returns the encoded size in bytes without allocating the buffer.
// The analytics layer uses it for the Fig. 9 traffic accounting.
func (c *Checkpoint) WireSize(enc Encoding) int {
	header := 4 + 1 + 1 + 2 + len(c.TaskName) + 8 + 8 + 4
	switch enc {
	case EncodingQuant8:
		return header + 16 + len(c.Params)
	default:
		return header + 8*len(c.Params)
	}
}

func paramRange(v tensor.Vector) (lo, hi float64) {
	if len(v) == 0 {
		return 0, 0
	}
	lo, hi = v[0], v[0]
	for _, p := range v[1:] {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return lo, hi
}
