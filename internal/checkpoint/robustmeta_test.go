package checkpoint

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

// TestParamNormMatchesDecodedNorm: the streaming norm must equal the norm
// of the decoded vector for both encodings (bit-identical: same
// dequantization arithmetic, same summation order).
func TestParamNormMatchesDecodedNorm(t *testing.T) {
	c := &Checkpoint{TaskName: "norm", Weight: 2,
		Params: tensor.Vector{-3, 0.5, 1.25, -0.125, 8, 0}}
	for _, enc := range []Encoding{EncodingFloat64, EncodingQuant8} {
		b, err := c.Marshal(enc)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ParseMeta(b)
		if err != nil {
			t.Fatal(err)
		}
		ref, _ := Unmarshal(b)
		want := ref.Params.Norm2()
		if got := m.ParamNorm(b); got != want {
			t.Fatalf("encoding %d: ParamNorm = %v, decoded norm = %v", enc, got, want)
		}
	}
}

// TestAccumulateParamsScaledMatchesDecodeAxpy: the fused scaled fold must
// match decode-then-Axpy(scale) for both encodings.
func TestAccumulateParamsScaledMatchesDecodeAxpy(t *testing.T) {
	c := &Checkpoint{TaskName: "scaled", Weight: 3,
		Params: tensor.Vector{-2.5, 0, 1.25, 7.75, -0.125, 3}}
	for _, enc := range []Encoding{EncodingFloat64, EncodingQuant8} {
		b, err := c.Marshal(enc)
		if err != nil {
			t.Fatal(err)
		}
		m, err := ParseMeta(b)
		if err != nil {
			t.Fatal(err)
		}
		base := tensor.Vector{10, -1, 0.5, 2, 0, -4}
		scale := 0.375 // exactly representable: scaled fold is bit-identical

		want := base.Clone()
		decoded, _ := Unmarshal(b)
		want.Axpy(scale, decoded.Params)

		got := base.Clone()
		if err := m.AccumulateParamsScaled(b, got, scale); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("encoding %d param %d: fused %v != reference %v", enc, i, got[i], want[i])
			}
		}
	}
}

// TestAccumulateParamsScaledDimMismatch: like AccumulateParams, a
// dimension mismatch must error before touching the sum.
func TestAccumulateParamsScaledDimMismatch(t *testing.T) {
	c := sample()
	b, _ := c.Marshal(EncodingFloat64)
	m, err := ParseMeta(b)
	if err != nil {
		t.Fatal(err)
	}
	sum := tensor.Vector{1, 2, 3}
	if err := m.AccumulateParamsScaled(b, sum, 0.5); err == nil {
		t.Fatal("dim mismatch must error")
	}
	if sum[0] != 1 || sum[1] != 2 || sum[2] != 3 {
		t.Fatalf("sum mutated on error: %v", sum)
	}
}

// Property: every coordinate a per-update robust reduce sees after Quant8
// decode is within half a quantization step of the device's true value —
// the error bound documented on AccumulateParams that QuantSafe policies
// opt into.
func TestQuant8HalfStepErrorBoundProperty(t *testing.T) {
	f := func(params []float64) bool {
		clean := make(tensor.Vector, 0, len(params))
		for _, p := range params {
			if !math.IsNaN(p) && !math.IsInf(p, 0) && math.Abs(p) < 1e9 {
				clean = append(clean, p)
			}
		}
		c := &Checkpoint{TaskName: "q", Weight: 1, Params: clean}
		b, err := c.Marshal(EncodingQuant8)
		if err != nil {
			return false
		}
		m, err := ParseMeta(b)
		if err != nil {
			return false
		}
		dst := make(tensor.Vector, len(clean))
		if err := m.DecodeParams(b, dst); err != nil {
			return false
		}
		lo, hi := paramRange(clean)
		halfStep := (hi-lo)/510 + 1e-12 // step/2 plus float slack
		for i := range clean {
			if math.Abs(dst[i]-clean[i]) > halfStep {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
