package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/flserver"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/transport"
)

func makePlan(t *testing.T, pop string, target int) *plan.Plan {
	t.Helper()
	p, err := plan.Generate(plan.Config{
		TaskID: pop + "/train", Population: pop,
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName: pop + "-store", BatchSize: 5, Epochs: 1, LearningRate: 0.1,
		TargetDevices: target, MinReportFraction: 0.7,
		SelectionTimeout: 10 * time.Second, ReportTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestFleetThreePopulationsMem is the tentpole end-to-end: ONE fleet
// process, three populations, one shared multi-tenant device fleet over
// the in-memory transport; every population reaches its committed-round
// target concurrently, with per-population stats.
func TestFleetThreePopulationsMem(t *testing.T) {
	st, err := RunBenchMultiPop(BenchConfig{
		Populations: 3, Devices: 9, TargetDevices: 3, Rounds: 2, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Rounds) != 3 {
		t.Fatalf("per-population stats missing: %+v", st.Rounds)
	}
	for pop, rounds := range st.Rounds {
		if rounds < 2 {
			t.Fatalf("population %s committed %d rounds, want ≥ 2", pop, rounds)
		}
	}
	if st.Accepted == 0 {
		t.Fatal("shared selector layer accepted no devices")
	}
}

// TestFleetThreePopulationsTCP drives the same three-population fleet over
// real loopback sockets.
func TestFleetThreePopulationsTCP(t *testing.T) {
	st, err := RunBenchMultiPop(BenchConfig{
		Populations: 3, Devices: 6, TargetDevices: 2, Rounds: 1, TCP: true, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for pop, rounds := range st.Rounds {
		if rounds < 1 {
			t.Fatalf("population %s committed %d rounds over TCP, want ≥ 1", pop, rounds)
		}
	}
}

// runPopDevices starts a device loop fleet for one population and returns
// a stop function.
func runPopDevices(t *testing.T, pop string, n int, fed *data.Federated, dial func() (transport.Conn, error)) func() {
	t.Helper()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s-dev-%d", pop, i)
		st, err := device.NewMemStore(pop+"-store", 1000, 0)
		if err != nil {
			t.Fatal(err)
		}
		now := time.Now()
		for _, ex := range fed.Users[i] {
			st.Add(ex, now)
		}
		rt := device.NewRuntime(id, 3, nil, uint64(i)+500)
		if err := rt.RegisterStore(st); err != nil {
			t.Fatal(err)
		}
		client := &flserver.DeviceClient{ID: id, Population: pop, Runtime: rt}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if conn, err := dial(); err == nil {
					_, _ = client.RunOnce(conn)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	return func() { close(stop); wg.Wait() }
}

// TestFleetRegisterDeregisterAtRuntime covers the registry: an unknown
// population's check-in gets a steering-backed "retry later" (not a
// dropped connection); registering it mid-flight makes it train to
// completion over the already-running listener; deregistering removes the
// lock owner and returns its check-ins to the unknown rejection.
func TestFleetRegisterDeregisterAtRuntime(t *testing.T) {
	f, err := New(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	net := transport.NewMemNetwork()
	l, err := net.Listen("fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go f.Serve(l)
	dial := func() (transport.Conn, error) { return net.Dial("fleet") }

	checkin := func(pop string) protocol.CheckinResponse {
		t.Helper()
		conn, err := dial()
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := conn.Send(protocol.CheckinRequest{DeviceID: "probe", Population: pop}); err != nil {
			t.Fatal(err)
		}
		msg, err := conn.Recv()
		if err != nil {
			t.Fatalf("check-in for %q must be answered, not dropped: %v", pop, err)
		}
		resp, ok := msg.(protocol.CheckinResponse)
		if !ok {
			t.Fatalf("unexpected reply %T", msg)
		}
		return resp
	}

	// pop-b is not registered: its devices must be steered away.
	if resp := checkin("pop-b"); resp.Accepted || resp.RetryAfter <= 0 {
		t.Fatalf("unknown population must get a steering-backed rejection: %+v", resp)
	}
	if _, err := f.PopulationStats("pop-b"); err == nil {
		t.Fatal("stats for an unregistered population must error")
	}

	// Register two populations at runtime, against the live listener.
	storeA, storeB := storage.NewMem(), storage.NewMem()
	planA, planB := makePlan(t, "pop-a", 3), makePlan(t, "pop-b", 3)
	fedA, _ := data.Blobs(data.BlobsConfig{Users: 8, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 41})
	fedB, _ := data.Blobs(data.BlobsConfig{Users: 8, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 42})
	for _, reg := range []struct {
		pop   string
		p     *plan.Plan
		store storage.Store
	}{{"pop-a", planA, storeA}, {"pop-b", planB, storeB}} {
		if err := f.Register(PopulationSpec{
			Population: reg.pop, Plans: []*plan.Plan{reg.p}, Store: reg.store,
			Steering: pacing.New(time.Second), MaxRounds: 2,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Register(PopulationSpec{Population: "pop-a", Plans: []*plan.Plan{planA}, Store: storeA}); err == nil {
		t.Fatal("duplicate registration must fail")
	}

	stopA := runPopDevices(t, "pop-a", 8, fedA, dial)
	stopB := runPopDevices(t, "pop-b", 8, fedB, dial)
	for _, pop := range []string{"pop-a", "pop-b"} {
		done, ok := f.Done(pop)
		if !ok {
			t.Fatalf("population %s not registered", pop)
		}
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatalf("population %s never finished", pop)
		}
	}
	stopA()
	stopB()

	for _, c := range []struct {
		pop   string
		p     *plan.Plan
		store storage.Store
	}{{"pop-a", planA, storeA}, {"pop-b", planB, storeB}} {
		if _, err := c.store.LatestCheckpoint(c.p.ID); err != nil {
			t.Fatalf("%s never committed: %v", c.pop, err)
		}
		st, err := f.PopulationStats(c.pop)
		if err != nil {
			t.Fatal(err)
		}
		if st.Coordinator.RoundsCompleted < 2 {
			t.Fatalf("%s completed %d rounds", c.pop, st.Coordinator.RoundsCompleted)
		}
	}

	// Deregister pop-a: the lock is released, stats error, and its devices
	// are steered away again.
	if err := f.Deregister("pop-a"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.LockOwner("pop-a") != nil {
		if time.Now().After(deadline) {
			t.Fatal("pop-a lock never released after deregistration")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := f.PopulationStats("pop-a"); err == nil {
		t.Fatal("stats for a deregistered population must error")
	}
	if resp := checkin("pop-a"); resp.Accepted || resp.RetryAfter <= 0 {
		t.Fatalf("deregistered population must get a steering-backed rejection: %+v", resp)
	}
	// pop-b is untouched.
	if _, err := f.PopulationStats("pop-b"); err != nil {
		t.Fatalf("pop-b must survive pop-a deregistration: %v", err)
	}
	if got := f.Populations(); len(got) != 1 || got[0] != "pop-b" {
		t.Fatalf("registry after deregistration: %v", got)
	}
}

// TestFleetDeregisterThenReregisterSameName is the plan-redeploy flow:
// Deregister returns only after the outgoing Coordinator stopped, so an
// immediate Register of the same population must acquire the lock and run
// — never be stranded Coordinator-less by losing the lock race to the old
// owner.
func TestFleetDeregisterThenReregisterSameName(t *testing.T) {
	f, err := New(Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	spec := PopulationSpec{
		Population: "pop-r", Plans: []*plan.Plan{makePlan(t, "pop-r", 2)}, Store: storage.NewMem(),
	}
	for cycle := 0; cycle < 10; cycle++ {
		if err := f.Register(spec); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		// The fresh Coordinator must own the lock (give its first tick a
		// moment to land).
		deadline := time.Now().Add(10 * time.Second)
		for {
			coord, ok := f.Coordinator("pop-r")
			if ok && f.LockOwner("pop-r") == coord && !coord.Stopped() {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("cycle %d: re-registered population never acquired its lock (owner=%v)", cycle, f.LockOwner("pop-r"))
			}
			time.Sleep(time.Millisecond)
		}
		if _, err := f.PopulationStats("pop-r"); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := f.Deregister("pop-r"); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
	}
}

// TestFleetCloseDuringRegistrationChurn must terminate: Close races actor
// spawns (watchers, coordinators, per-round children) and the actor
// system's shutdown must stop them all.
func TestFleetCloseDuringRegistrationChurn(t *testing.T) {
	f, err := New(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		pop := fmt.Sprintf("churn-%d", i%5)
		_ = f.Register(PopulationSpec{
			Population: pop, Plans: []*plan.Plan{makePlan(t, pop, 2)}, Store: storage.NewMem(),
		})
		if i%2 == 1 {
			_ = f.Deregister(pop)
		}
	}
	done := make(chan struct{})
	go func() {
		f.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Fleet.Close hung")
	}
}

// TestFleetStatsPerPopulation asserts the fleet-level stats API keys every
// registered population and errors once the fleet is closed.
func TestFleetStatsPerPopulation(t *testing.T) {
	f, err := New(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, pop := range []string{"x", "y"} {
		if err := f.Register(PopulationSpec{
			Population: pop, Plans: []*plan.Plan{makePlan(t, pop, 2)}, Store: storage.NewMem(),
		}); err != nil {
			t.Fatal(err)
		}
	}
	all, err := f.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("fleet stats = %v", all)
	}
	for _, pop := range []string{"x", "y"} {
		if all[pop].Population != pop {
			t.Fatalf("missing stats for %s: %+v", pop, all)
		}
	}
	f.Close()
	if _, err := f.Stats(); err == nil {
		t.Fatal("stats on a closed fleet must error, not read as zero progress")
	}
}
