// Package fleet implements the multi-population device-facing gateway of
// Sec. 4.2: ONE process whose shared Selector layer accepts connections
// for many FL populations at once. Check-ins are routed by
// CheckinRequest.Population; each population gets exactly one Coordinator,
// registered in one shared locking service so that respawns after a crash
// can never yield two live Coordinators for the same population; and
// populations are registered and deregistered at runtime, so plans can be
// added to a running fleet without restarting it.
//
// The Fleet composes the same actors as internal/flserver — Selector,
// Coordinator, Master Aggregator — through that package's exported entry
// points. flserver.Server remains the single-population special case;
// Fleet is the shared layer the paper describes ("Selectors accept
// connections for many FL populations, while Coordinators are one per
// population").
package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/actor"
	"repro/internal/attest"
	"repro/internal/flserver"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/tasks"
	"repro/internal/transport"
)

// Config configures the shared, population-independent part of a Fleet:
// the Selector layer and the connection edge.
type Config struct {
	// NumSelectors sizes the shared Selector layer (default 2).
	NumSelectors int
	// SelectorCapacity bounds the parked devices per Selector across ALL
	// populations; under load the pool is fair-shared, weighted by each
	// Coordinator's quota demand. 0 picks the default of 1024; a negative
	// value makes the pool unbounded.
	SelectorCapacity int
	// Verifier enables attestation checks when non-nil (shared by every
	// population — attestation is a property of the device platform).
	Verifier *attest.Verifier
	// DefaultSteering answers check-ins for unknown populations and
	// malformed first messages (default: one-minute cadence).
	DefaultSteering *pacing.Steering
	// DefaultPopulationEstimate feeds steering when a population spec does
	// not provide its own estimate (default 1000).
	DefaultPopulationEstimate int
	Seed                      uint64
	// Now overrides the wall clock (tests).
	Now func() time.Time
}

// PopulationSpec configures one FL population served by a Fleet.
type PopulationSpec struct {
	// Population is the globally unique FL population name.
	Population string
	// Plans seeds the population's task set with default-policy tasks —
	// sugar for Fleet.SubmitTask after Register. May be empty when every
	// task arrives via SubmitTask or is restored from a previously
	// persisted task set in Store.
	Plans []*plan.Plan
	Store storage.Store
	// Steering paces this population's devices (default: the fleet's
	// DefaultSteering).
	Steering *pacing.Steering
	// PopulationEstimate feeds pace steering.
	PopulationEstimate int
	// MaxRounds stops the population after that many committed rounds
	// (0 = forever).
	MaxRounds int
}

// PopulationStats bundles one population's coordinator and selector-layer
// progress.
type PopulationStats struct {
	Population  string
	Coordinator flserver.CoordinatorStats
	Selector    flserver.SelectorStats
}

// popEntry is the registry record for one registered population.
type popEntry struct {
	spec PopulationSpec
	// tasks is the population's task registry; it outlives any one
	// Coordinator (crash respawns reuse it).
	tasks *tasks.TaskSet
	coord actor.Ref
	done  chan struct{}
}

// Fleet is one device-facing process serving N FL populations over a
// shared Selector layer, one shared lock service, and one supervision
// scheme.
type Fleet struct {
	cfg       Config
	sys       *actor.System
	lock      *actor.LockService
	selectors []actor.Ref
	router    *flserver.CheckinRouter

	// regMu serializes Register/Deregister end to end (including the
	// selector installs and the coordinator stop-wait): without it, a
	// Deregister's teardown tail could wipe the selector state a
	// concurrent re-Register of the same name just installed.
	regMu sync.Mutex
	mu    sync.Mutex
	pops  map[string]*popEntry

	closed atomic.Bool
}

// New builds a Fleet with an empty population registry and spawns its
// shared Selector layer. Populations are added with Register.
func New(cfg Config) (*Fleet, error) {
	if cfg.NumSelectors <= 0 {
		cfg.NumSelectors = 2
	}
	switch {
	case cfg.SelectorCapacity == 0:
		cfg.SelectorCapacity = 1024
	case cfg.SelectorCapacity < 0:
		cfg.SelectorCapacity = 0 // unbounded
	}
	if cfg.DefaultSteering == nil {
		cfg.DefaultSteering = pacing.New(time.Minute)
	}
	if cfg.DefaultPopulationEstimate <= 0 {
		cfg.DefaultPopulationEstimate = 1000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	f := &Fleet{
		cfg:  cfg,
		sys:  actor.NewSystem(),
		lock: actor.NewLockService(),
		pops: make(map[string]*popEntry),
	}
	for i := 0; i < cfg.NumSelectors; i++ {
		sel := f.sys.Spawn(fmt.Sprintf("selector-%d", i),
			flserver.NewSelector(cfg.Verifier, cfg.DefaultSteering, cfg.SelectorCapacity, cfg.Seed+uint64(i), cfg.Now))
		f.selectors = append(f.selectors, sel)
	}
	f.router = flserver.NewCheckinRouter(f.selectors,
		flserver.NewHinter(cfg.DefaultSteering, cfg.DefaultPopulationEstimate, cfg.Seed+7919, cfg.Now))
	return f, nil
}

// Register adds a population to the running fleet: its steering is
// installed on every Selector and its Coordinator spawned under the shared
// lock service. Safe to call while Serve is accepting connections — plans
// can be deployed without restarting the fleet.
func (f *Fleet) Register(spec PopulationSpec) error {
	f.regMu.Lock()
	defer f.regMu.Unlock()
	if spec.Population == "" || spec.Store == nil {
		return fmt.Errorf("fleet: Population and Store are required")
	}
	ts, err := tasks.New(spec.Population, spec.Store, f.cfg.Now)
	if err != nil {
		return err
	}
	// Seed validates every plan, checks the population match, and rejects
	// duplicate task IDs (they would silently share a checkpoint lineage).
	if err := ts.Seed(spec.Plans); err != nil {
		return err
	}
	if spec.Steering == nil {
		spec.Steering = f.cfg.DefaultSteering
	}
	if spec.PopulationEstimate <= 0 {
		spec.PopulationEstimate = f.cfg.DefaultPopulationEstimate
	}
	ts.SetPopulationEstimate(spec.PopulationEstimate)

	entry := &popEntry{spec: spec, tasks: ts, done: make(chan struct{})}
	f.mu.Lock()
	if f.closed.Load() {
		f.mu.Unlock()
		return fmt.Errorf("fleet: closed")
	}
	if _, dup := f.pops[spec.Population]; dup {
		f.mu.Unlock()
		return fmt.Errorf("fleet: population %q already registered", spec.Population)
	}
	f.pops[spec.Population] = entry
	f.mu.Unlock()

	for i, sel := range f.selectors {
		if err := flserver.RegisterSelectorPopulation(sel, flserver.SelectorPopulation{
			Name:               spec.Population,
			Steering:           spec.Steering,
			PopulationEstimate: spec.PopulationEstimate,
		}); err != nil {
			// Roll the registration back everywhere it already landed, so
			// no Selector keeps ghost state for a population the registry
			// does not know.
			for _, prev := range f.selectors[:i] {
				_ = flserver.DeregisterSelectorPopulation(prev, spec.Population)
			}
			f.mu.Lock()
			delete(f.pops, spec.Population)
			f.mu.Unlock()
			return fmt.Errorf("fleet: register %q on selector: %w", spec.Population, err)
		}
	}
	f.spawnCoordinator(entry)
	return nil
}

// deregisterStopTimeout bounds how long Deregister waits for a
// Coordinator's clean stop before forcing it.
const deregisterStopTimeout = 5 * time.Second

// Deregister removes a population from the running fleet: its Coordinator
// abandons any in-flight round, releases the population lock and stops;
// parked devices are steered away; later check-ins get the
// unknown-population rejection. Deregister returns only after the
// Coordinator has actually stopped, so a Register of the same name right
// after cannot lose the lock race against the outgoing owner and strand
// the re-registered population without a Coordinator.
func (f *Fleet) Deregister(population string) error {
	f.regMu.Lock()
	defer f.regMu.Unlock()
	f.mu.Lock()
	entry, ok := f.pops[population]
	if !ok {
		f.mu.Unlock()
		return fmt.Errorf("fleet: population %q not registered", population)
	}
	delete(f.pops, population)
	coord := entry.coord
	f.mu.Unlock()

	if coord != nil {
		_ = flserver.StopCoordinator(coord)
		deadline := time.Now().Add(deregisterStopTimeout)
		for !coord.Stopped() {
			if time.Now().After(deadline) {
				// A wedged mailbox must not hold the population name
				// hostage: hard-stop. The lock still frees — Acquire treats
				// a stopped owner as absent.
				coord.Stop()
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	for _, sel := range f.selectors {
		_ = flserver.DeregisterSelectorPopulation(sel, population)
	}
	return nil
}

// spawnCoordinator starts entry's Coordinator plus a watcher that respawns
// it on failure — unless the population has since been deregistered or the
// fleet closed. All watchers share the one lock service, so racing
// respawns can never yield two live Coordinators for one population: the
// loser's first tick fails to acquire the lock and it stops itself.
func (f *Fleet) spawnCoordinator(entry *popEntry) {
	name := entry.spec.Population
	f.mu.Lock()
	if f.closed.Load() || f.pops[name] != entry {
		f.mu.Unlock()
		return
	}
	coord := f.sys.Spawn("coordinator/"+name,
		flserver.NewCoordinator(name, f.lock, entry.spec.Store, entry.tasks, f.selectors,
			entry.spec.MaxRounds, entry.done, f.cfg.Now).
			WithPacing(entry.spec.Steering, entry.spec.PopulationEstimate))
	entry.coord = coord
	f.mu.Unlock()

	// Watch before the first tick so even an instant crash is supervised.
	watcher := f.sys.Spawn("coordinator-watcher/"+name, actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		if t, ok := msg.(actor.Terminated); ok && t.Ref == coord {
			if t.Failure && !f.closed.Load() {
				f.spawnCoordinator(entry)
			}
			ctx.Stop()
		}
	}))
	f.sys.Watch(coord, watcher)
	_ = flserver.StartCoordinator(coord)
}

// liveCoordinator resolves a population's current Coordinator for a task
// lifecycle call.
func (f *Fleet) liveCoordinator(population string) (actor.Ref, error) {
	coord, ok := f.Coordinator(population)
	if !ok {
		return nil, fmt.Errorf("fleet: population %q not registered (or still starting)", population)
	}
	return coord, nil
}

// SubmitTask deploys a new FL task (plan + scheduling policy) onto a live
// registered population — no restart, no effect on the round in flight.
// The mutation is routed through the population Coordinator's mailbox so
// it serializes with round scheduling.
func (f *Fleet) SubmitTask(population string, p *plan.Plan, pol tasks.Policy) error {
	coord, err := f.liveCoordinator(population)
	if err != nil {
		return err
	}
	return flserver.SubmitTask(coord, p, pol)
}

// PauseTask stops scheduling a population's task; an in-flight round
// completes normally and the task keeps its stats and checkpoints.
func (f *Fleet) PauseTask(population, id string) error {
	coord, err := f.liveCoordinator(population)
	if err != nil {
		return err
	}
	return flserver.PauseTask(coord, id)
}

// ResumeTask reactivates a population's paused task.
func (f *Fleet) ResumeTask(population, id string) error {
	coord, err := f.liveCoordinator(population)
	if err != nil {
		return err
	}
	return flserver.ResumeTask(coord, id)
}

// RetireTask permanently stops scheduling a population's task. A round
// already in flight completes (and is recorded) rather than being aborted.
func (f *Fleet) RetireTask(population, id string) error {
	coord, err := f.liveCoordinator(population)
	if err != nil {
		return err
	}
	return flserver.RetireTask(coord, id)
}

// TaskStats reports every task of a population — state, policy, rounds
// committed/failed, cumulative devices, last round time — in submission
// order.
func (f *Fleet) TaskStats(population string) ([]tasks.Stats, error) {
	coord, err := f.liveCoordinator(population)
	if err != nil {
		return nil, err
	}
	return flserver.QueryTaskStats(coord)
}

// Populations lists the registered population names, sorted.
func (f *Fleet) Populations() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.pops))
	for name := range f.pops {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Coordinator returns the current Coordinator ref for a population
// (tests and supervision checks). ok is false while the population is
// unknown or its Coordinator not yet spawned.
func (f *Fleet) Coordinator(population string) (actor.Ref, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	entry, ok := f.pops[population]
	if !ok || entry.coord == nil {
		return nil, false
	}
	return entry.coord, true
}

// LockOwner returns the live owner of a population's lock, or nil — the
// shared locking service's view of who coordinates the population.
func (f *Fleet) LockOwner(population string) actor.Ref {
	return f.lock.Owner(population)
}

// Done returns the channel closed when a population reaches its MaxRounds.
func (f *Fleet) Done(population string) (<-chan struct{}, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	entry, ok := f.pops[population]
	if !ok {
		return nil, false
	}
	return entry.done, true
}

// PopulationStats reports one population's coordinator progress and its
// slice of the selector layer. The error is non-nil when the population is
// unknown or its Coordinator dead/unresponsive — callers cannot mistake a
// dead population for zero progress.
func (f *Fleet) PopulationStats(population string) (PopulationStats, error) {
	f.mu.Lock()
	entry, ok := f.pops[population]
	var ref actor.Ref
	if ok {
		ref = entry.coord
	}
	f.mu.Unlock()
	if !ok {
		return PopulationStats{}, fmt.Errorf("fleet: population %q not registered", population)
	}
	if ref == nil {
		// Register published the entry but its Coordinator has not spawned
		// yet (racing stats poller).
		return PopulationStats{}, fmt.Errorf("fleet: population %q still starting", population)
	}
	st := PopulationStats{Population: population}
	coord, err := flserver.QueryCoordinatorStats(ref)
	if err != nil {
		return PopulationStats{}, err
	}
	st.Coordinator = coord
	for _, sel := range f.selectors {
		s, err := flserver.QuerySelectorStats(sel, population)
		if err != nil {
			return PopulationStats{}, err
		}
		st.Selector.Add(s)
	}
	return st, nil
}

// Stats reports every registered population (keyed by name). A population
// whose Coordinator is dead or unresponsive surfaces as an error.
func (f *Fleet) Stats() (map[string]PopulationStats, error) {
	out := make(map[string]PopulationStats)
	for _, name := range f.Populations() {
		st, err := f.PopulationStats(name)
		if err != nil {
			return nil, err
		}
		out[name] = st
	}
	return out, nil
}

// SelectorTotals sums the selector layer's counters across every
// population, including unknown-population rejections.
func (f *Fleet) SelectorTotals() (flserver.SelectorStats, error) {
	var total flserver.SelectorStats
	for _, sel := range f.selectors {
		st, err := flserver.QuerySelectorStats(sel, "")
		if err != nil {
			return flserver.SelectorStats{}, err
		}
		total.Add(st)
	}
	return total, nil
}

// PerSelectorStats breaks the shared selector layer down by Selector actor
// name, all populations summed per Selector — the per-shard view behind
// SelectorTotals. The error is non-nil when any Selector is dead or
// unresponsive: a dead selector is an explicit failure, never zeros.
func (f *Fleet) PerSelectorStats() (map[string]flserver.SelectorStats, error) {
	out := make(map[string]flserver.SelectorStats, len(f.selectors))
	for _, sel := range f.selectors {
		st, err := flserver.QuerySelectorStats(sel, "")
		if err != nil {
			return nil, err
		}
		out[sel.Name()] = st
	}
	return out, nil
}

// Serve accepts device connections from l until l closes, routing each
// connection's first message through the shared CheckinRouter accept path
// (Selectors route check-ins by population; malformed first messages get a
// protocol-level rejection with a pace-steering hint).
func (f *Fleet) Serve(l transport.Listener) { f.router.Serve(l) }

// Close stops every population's Coordinator, the Selector layer, and the
// actor system, then waits for in-flight connection handlers.
func (f *Fleet) Close() {
	f.closed.Store(true)
	f.mu.Lock()
	refs := append([]actor.Ref{}, f.selectors...)
	for _, entry := range f.pops {
		if entry.coord != nil {
			refs = append(refs, entry.coord)
		}
	}
	f.mu.Unlock()
	f.sys.Shutdown(refs...)
	f.router.Wait()
}
