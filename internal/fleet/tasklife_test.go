package fleet

import (
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/tasks"
	"repro/internal/transport"
)

func makeEvalPlan(t *testing.T, pop string, target int) *plan.Plan {
	t.Helper()
	p, err := plan.Generate(plan.Config{
		TaskID: pop + "/eval", Population: pop, Type: plan.TaskEval,
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName: pop + "-store", TargetDevices: target, MinReportFraction: 0.7,
		SelectionTimeout: 10 * time.Second, ReportTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fleetTaskStats fetches one population's task stats keyed by ID.
func fleetTaskStats(t *testing.T, f *Fleet, pop string) map[string]tasks.Stats {
	t.Helper()
	sts, err := f.TaskStats(pop)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]tasks.Stats, len(sts))
	for _, st := range sts {
		out[st.ID] = st
	}
	return out
}

// TestFleetTaskLifecycle drives the population-keyed task API end to end:
// an eval task is submitted onto a live fleet population mid-training,
// interleaves per its cadence, reports via TaskStats, and is retired
// without disturbing training.
func TestFleetTaskLifecycle(t *testing.T) {
	f, err := New(Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	net := transport.NewMemNetwork()
	l, err := net.Listen("fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go f.Serve(l)
	dial := func() (transport.Conn, error) { return net.Dial("fleet") }

	const pop = "gamma"
	train := makePlan(t, pop, 3)
	fed, err := data.Blobs(data.BlobsConfig{Users: 9, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Register(PopulationSpec{
		Population: pop, Plans: []*plan.Plan{train},
		Store: storage.NewMem(), Steering: pacing.New(500 * time.Millisecond),
	}); err != nil {
		t.Fatal(err)
	}
	stopDevices := runPopDevices(t, pop, 9, fed, dial)
	defer stopDevices()

	// Lifecycle calls against unknown populations fail loudly.
	if err := f.SubmitTask("nope", makeEvalPlan(t, pop, 2), tasks.Policy{}); err == nil {
		t.Fatal("SubmitTask on an unknown population must fail")
	}
	if _, err := f.TaskStats("nope"); err == nil {
		t.Fatal("TaskStats on an unknown population must fail")
	}

	waitRounds := func(id string, n int) tasks.Stats {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for {
			st, ok := fleetTaskStats(t, f, pop)[id]
			if ok && st.RoundsCommitted >= n {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("task %s did not reach %d committed rounds: %+v", id, n, st)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	waitRounds(train.ID, 1)
	eval := makeEvalPlan(t, pop, 2)
	if err := f.SubmitTask(pop, eval, tasks.Policy{EvalEvery: 1, EvalOf: train.ID}); err != nil {
		t.Fatal(err)
	}
	waitRounds(eval.ID, 2)

	if err := f.PauseTask(pop, eval.ID); err != nil {
		t.Fatal(err)
	}
	if st := fleetTaskStats(t, f, pop)[eval.ID]; st.State != tasks.Paused {
		t.Fatalf("eval state after pause = %v", st.State)
	}
	if err := f.ResumeTask(pop, eval.ID); err != nil {
		t.Fatal(err)
	}
	if err := f.RetireTask(pop, eval.ID); err != nil {
		t.Fatal(err)
	}
	retired := fleetTaskStats(t, f, pop)[eval.ID]
	if retired.State != tasks.Retired {
		t.Fatalf("eval state after retire = %v", retired.State)
	}

	// Training keeps going after the eval task is gone.
	trainSt := fleetTaskStats(t, f, pop)[train.ID]
	waitRounds(train.ID, trainSt.RoundsCommitted+2)
	final := fleetTaskStats(t, f, pop)[eval.ID]
	if final.RoundsCommitted > retired.RoundsCommitted+1 {
		t.Fatalf("retired eval task kept scheduling: %d -> %d", retired.RoundsCommitted, final.RoundsCommitted)
	}
}

// TestFleetRegisterRejectsDuplicatePlanIDs is the fleet-side regression
// for silently colliding task IDs.
func TestFleetRegisterRejectsDuplicatePlanIDs(t *testing.T) {
	f, err := New(Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	p := makePlan(t, "dup", 3)
	q := makePlan(t, "dup", 5) // same ID, different config
	if err := f.Register(PopulationSpec{
		Population: "dup", Plans: []*plan.Plan{p, q}, Store: storage.NewMem(),
	}); err == nil {
		t.Fatal("duplicate plan IDs must be rejected at Register")
	}
	// The failed registration must not leave a ghost population behind.
	if _, ok := f.Coordinator("dup"); ok {
		t.Fatal("failed Register left a coordinator behind")
	}
	if err := f.Register(PopulationSpec{
		Population: "dup", Plans: []*plan.Plan{p}, Store: storage.NewMem(),
	}); err != nil {
		t.Fatalf("re-register after rejected duplicate: %v", err)
	}
}
