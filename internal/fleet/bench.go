package fleet

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/flserver"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/transport"
)

// BenchConfig parametrizes one multi-population run for
// BenchmarkMultiPopulation and `flbench -exp multipop`: N populations
// registered on ONE fleet, driven to committed rounds by a shared
// multi-tenant device fleet (every device runs every population behind its
// on-device Scheduler) through the real round pipeline — check-in, plan
// delivery, on-device training, report, aggregation, commit.
type BenchConfig struct {
	// Populations is N, the number of FL populations sharing the fleet
	// (default 3).
	Populations int
	// Devices is the shared device fleet size (default 9).
	Devices int
	// TargetDevices is K, the reports each round needs (default 3).
	TargetDevices int
	// Rounds is the committed rounds each population must reach
	// (default 2).
	Rounds int
	// TCP moves every message over real loopback sockets instead of the
	// in-memory transport.
	TCP bool
	// NumSelectors sizes the shared Selector layer (default 2).
	NumSelectors int
	Seed         uint64
	// Timeout bounds the whole run (default 2 minutes).
	Timeout time.Duration
}

// BenchStats describes one completed multi-population run.
type BenchStats struct {
	// Rounds maps population name to its committed round count.
	Rounds map[string]int
	// Accepted/Rejected sum the shared selector layer's decisions across
	// all populations.
	Accepted int64
	Rejected int64
	Elapsed  time.Duration
}

// benchPopName names the i-th synthetic population.
func benchPopName(i int) string { return fmt.Sprintf("pop-%c", 'a'+i) }

// RunBenchMultiPop drives cfg.Populations populations to cfg.Rounds
// committed rounds each, concurrently, over one Fleet and one shared
// device fleet. Used by BenchmarkMultiPopulation, `flbench -exp multipop`,
// and the fleet integration tests (mem and TCP).
func RunBenchMultiPop(cfg BenchConfig) (BenchStats, error) {
	var stats BenchStats
	if cfg.Populations <= 0 {
		cfg.Populations = 3
	}
	if cfg.Devices <= 0 {
		cfg.Devices = 9
	}
	if cfg.TargetDevices <= 0 {
		cfg.TargetDevices = 3
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 2
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if cfg.Devices < cfg.TargetDevices {
		return stats, fmt.Errorf("fleet bench: %d devices cannot satisfy K=%d", cfg.Devices, cfg.TargetDevices)
	}

	f, err := New(Config{NumSelectors: cfg.NumSelectors, Seed: cfg.Seed})
	if err != nil {
		return stats, err
	}
	defer f.Close()

	// One plan + dataset + store per population; all share the fleet.
	type popSetup struct {
		name  string
		plan  *plan.Plan
		fed   *data.Federated
		store storage.Store
	}
	pops := make([]popSetup, cfg.Populations)
	for i := range pops {
		name := benchPopName(i)
		p, err := plan.Generate(plan.Config{
			TaskID: name + "/train", Population: name,
			Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
			StoreName: name + "-store", BatchSize: 5, Epochs: 1, LearningRate: 0.1,
			TargetDevices: cfg.TargetDevices, MinReportFraction: 0.7,
			SelectionTimeout: 30 * time.Second, ReportTimeout: time.Minute,
		})
		if err != nil {
			return stats, err
		}
		fed, err := data.Blobs(data.BlobsConfig{
			Users: cfg.Devices, ExamplesPer: 20, Features: 4, Classes: 3,
			TestSize: 10, Seed: cfg.Seed + uint64(i)*31 + 1,
		})
		if err != nil {
			return stats, err
		}
		pops[i] = popSetup{name: name, plan: p, fed: fed, store: storage.NewMem()}
		if err := f.Register(PopulationSpec{
			Population: name,
			Plans:      []*plan.Plan{p},
			Store:      pops[i].store,
			Steering:   pacing.New(time.Second),
			MaxRounds:  cfg.Rounds,
		}); err != nil {
			return stats, err
		}
	}

	// One listener, one address, every population behind it.
	var l transport.Listener
	var dial func() (transport.Conn, error)
	if cfg.TCP {
		tl, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			return stats, err
		}
		l = tl
		addr := tl.Addr()
		dial = func() (transport.Conn, error) { return transport.DialTCP(addr) }
	} else {
		net := transport.NewMemNetwork()
		ml, err := net.Listen("fleet")
		if err != nil {
			return stats, err
		}
		l = ml
		dial = func() (transport.Conn, error) { return net.Dial("fleet") }
	}
	defer l.Close()
	go f.Serve(l)

	// Shared device fleet: each device hosts EVERY population (one example
	// store per population, one runtime, one on-device Scheduler that runs
	// sessions strictly sequentially) and checks in for all of them over
	// one connection loop.
	stop := make(chan struct{})
	var devices sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Devices; i++ {
		id := fmt.Sprintf("flt-dev-%d", i)
		rt := device.NewRuntime(id, 3, nil, cfg.Seed+uint64(i)+100)
		clients := make([]*flserver.DeviceClient, len(pops))
		for pi, ps := range pops {
			st, err := device.NewMemStore(ps.name+"-store", 1000, 0)
			if err != nil {
				return stats, err
			}
			now := time.Now()
			for _, ex := range ps.fed.Users[i] {
				st.Add(ex, now)
			}
			if err := rt.RegisterStore(st); err != nil {
				return stats, err
			}
			clients[pi] = &flserver.DeviceClient{ID: id, Population: ps.name, Runtime: rt}
		}
		sched := device.NewScheduler()
		devices.Add(1)
		go func() {
			defer devices.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, c := range clients {
					c := c
					_ = sched.Enqueue(&device.Job{Population: c.Population, Run: func() {
						if conn, err := dial(); err == nil {
							_, _ = c.RunOnce(conn)
						}
					}})
				}
				if _, err := sched.DrainAll(); err != nil {
					return
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}

	// Every population must reach its committed-round target.
	deadline := time.After(cfg.Timeout)
	for _, ps := range pops {
		done, ok := f.Done(ps.name)
		if !ok {
			close(stop)
			devices.Wait()
			return stats, fmt.Errorf("fleet bench: population %s vanished", ps.name)
		}
		select {
		case <-done:
		case <-deadline:
			close(stop)
			devices.Wait()
			return stats, fmt.Errorf("fleet bench: population %s did not finish within %v", ps.name, cfg.Timeout)
		}
	}
	stats.Elapsed = time.Since(start)
	close(stop)
	devices.Wait()

	stats.Rounds = make(map[string]int, len(pops))
	for _, ps := range pops {
		st, err := f.PopulationStats(ps.name)
		if err != nil {
			return stats, err
		}
		stats.Rounds[ps.name] = st.Coordinator.RoundsCompleted
		stats.Accepted += st.Selector.Accepted
		stats.Rejected += st.Selector.Rejected
		if _, err := ps.store.LatestCheckpoint(ps.plan.ID); err != nil {
			return stats, fmt.Errorf("fleet bench: population %s committed no checkpoint: %w", ps.name, err)
		}
	}
	return stats, nil
}
