package fleet

import (
	"sync"
	"testing"
	"time"

	"repro/internal/actor"
	"repro/internal/flserver"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/storage"
)

// TestCoordinatorRespawnRaceSharedLock is the supervision invariant under
// a SHARED lock service (Sec. 4.4): several populations' watchers respawn
// their crashed Coordinators concurrently, and extra contenders race every
// respawn — yet no population ever ends up with two live Coordinators,
// because only the lock owner survives its first tick. Run under -race
// (CI covers internal/fleet with -race).
func TestCoordinatorRespawnRaceSharedLock(t *testing.T) {
	longPlan := func(pop string) *plan.Plan {
		p, err := plan.Generate(plan.Config{
			TaskID: pop + "/train", Population: pop,
			Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
			StoreName: pop + "-store", BatchSize: 5, Epochs: 1, LearningRate: 0.1,
			TargetDevices: 2, MinReportFraction: 0.7,
			// Long windows: no round churn while coordinators crash/respawn.
			SelectionTimeout: 5 * time.Minute, ReportTimeout: 5 * time.Minute,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	f, err := New(Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	pops := []string{"pop-a", "pop-b"}
	for _, pop := range pops {
		if err := f.Register(PopulationSpec{
			Population: pop, Plans: []*plan.Plan{longPlan(pop)}, Store: storage.NewMem(),
		}); err != nil {
			t.Fatal(err)
		}
	}

	// waitOwned blocks until pop's registry coordinator is live and owns
	// the population lock.
	waitOwned := func(pop string, not actor.Ref) actor.Ref {
		deadline := time.Now().Add(15 * time.Second)
		for {
			coord, ok := f.Coordinator(pop)
			if ok && coord != nil && coord != not && !coord.Stopped() && f.LockOwner(pop) == coord {
				return coord
			}
			if time.Now().After(deadline) {
				t.Fatalf("population %s never re-acquired its lock (owner=%v)", pop, f.LockOwner(pop))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for _, pop := range pops {
		waitOwned(pop, nil)
	}

	for round := 0; round < 5; round++ {
		// Crash both populations' Coordinators concurrently: their watchers
		// race respawns against each other on the one shared lock service.
		var wg sync.WaitGroup
		for _, pop := range pops {
			coord, _ := f.Coordinator(pop)
			wg.Add(1)
			go func(pop string, old actor.Ref) {
				defer wg.Done()
				_ = flserver.InjectCoordinatorCrash(old)
				waitOwned(pop, old)
			}(pop, coord)
		}
		wg.Wait()

		// Now race a rival "second respawn" per population against the live
		// owner: a duplicated watcher decision must lose the lock Acquire on
		// its first tick and stop itself — never a second live Coordinator.
		rivals := make(map[string]actor.Ref, len(pops))
		for _, pop := range pops {
			f.mu.Lock()
			spec := f.pops[pop].spec
			popTasks := f.pops[pop].tasks
			f.mu.Unlock()
			rival := f.sys.Spawn("rival-coordinator/"+pop,
				flserver.NewCoordinator(pop, f.lock, spec.Store, popTasks, f.selectors, 0, nil, nil))
			rivals[pop] = rival
			if err := flserver.StartCoordinator(rival); err != nil {
				t.Fatal(err)
			}
		}
		for _, pop := range pops {
			rival := rivals[pop]
			deadline := time.Now().Add(15 * time.Second)
			for !rival.Stopped() {
				if time.Now().After(deadline) {
					t.Fatalf("round %d: rival coordinator for %s is still alive — two live Coordinators for one population", round, pop)
				}
				time.Sleep(5 * time.Millisecond)
			}
			coord, _ := f.Coordinator(pop)
			if owner := f.LockOwner(pop); owner != coord {
				t.Fatalf("round %d: lock owner for %s is %v, want the registry coordinator", round, pop, owner)
			}
			if coord.Stopped() {
				t.Fatalf("round %d: registry coordinator for %s died", round, pop)
			}
		}
	}

	// The surviving Coordinators still answer stats — they are the single
	// live owners, not zombies.
	for _, pop := range pops {
		if _, err := f.PopulationStats(pop); err != nil {
			t.Fatalf("population %s unresponsive after respawn storm: %v", pop, err)
		}
	}
}
