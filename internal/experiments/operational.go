// Package experiments reproduces every table and figure in the paper's
// evaluation. Each experiment returns a result struct with a Format method
// printing rows in the spirit of the original figure; cmd/flbench and the
// root benchmarks call these entry points. Absolute values differ from the
// paper (simulated fleet vs. Google's production fleet); the shapes —
// oscillations, ratios, who wins — are the reproduction target.
package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/population"
	"repro/internal/sim"
)

// stdPlan is the FL task used by the operational experiments: a
// keyboard-sized MLP trained by a few hundred devices per round.
func stdPlan(target int) (*plan.Plan, error) {
	return plan.Generate(plan.Config{
		TaskID:            "gboard/next-word",
		Population:        "gboard",
		Model:             nn.Spec{Kind: nn.KindMLP, Features: 64, Hidden: 128, Classes: 32, Seed: 1},
		StoreName:         "typed",
		BatchSize:         20,
		Epochs:            1,
		LearningRate:      0.1,
		TargetDevices:     target,
		SelectionTimeout:  time.Minute,
		ReportTimeout:     2 * time.Minute,
		MinReportFraction: 0.7,
	})
}

// stdSim runs the canonical three-day simulation behind Figs. 5–9/Table 1.
func stdSim(seed uint64, days int, popSize, target int) (*sim.Results, error) {
	p, err := stdPlan(target)
	if err != nil {
		return nil, err
	}
	return sim.Run(sim.Config{
		Population:        population.Config{Size: popSize, Seed: seed},
		Plan:              p,
		Duration:          time.Duration(days) * 24 * time.Hour,
		PerExampleCost:    200 * time.Millisecond,
		ExamplesPerDevice: 100,
		Pipelining:        true,
		Seed:              seed + 1,
	})
}

// HourPoint is one hour-of-day average for the diurnal figures.
type HourPoint struct {
	Hour                   int
	Participating, Waiting float64
	Completions, Failures  float64
}

// Fig6Result reproduces Fig. 5/6: devices in "participating" and "waiting"
// states across the day, and the round completion rate oscillating in sync.
type Fig6Result struct {
	Hours []HourPoint
	// SwingRatio is peak/trough of connected devices (paper: ≈ 4×).
	SwingRatio float64
	// Correlation of completion rate with availability.
	Correlation float64
}

// Fig6 runs the diurnal experiment.
func Fig6(seed uint64, days, popSize, target int) (*Fig6Result, error) {
	res, err := stdSim(seed, days, popSize, target)
	if err != nil {
		return nil, err
	}
	var sums [24]HourPoint
	var counts [24]int
	var avail, compl []float64
	for _, s := range res.Samples {
		h := s.T.Hour()
		sums[h].Participating += float64(s.Participating)
		sums[h].Waiting += float64(s.Waiting)
		sums[h].Completions += float64(s.CompletionRate)
		sums[h].Failures += float64(s.FailureRate)
		counts[h]++
		avail = append(avail, s.Available)
		compl = append(compl, float64(s.CompletionRate))
	}
	out := &Fig6Result{}
	minC, maxC := -1.0, 0.0
	for h := 0; h < 24; h++ {
		if counts[h] == 0 {
			continue
		}
		n := float64(counts[h])
		hp := HourPoint{
			Hour:          h,
			Participating: sums[h].Participating / n,
			Waiting:       sums[h].Waiting / n,
			Completions:   sums[h].Completions / n,
			Failures:      sums[h].Failures / n,
		}
		out.Hours = append(out.Hours, hp)
		conn := hp.Participating + hp.Waiting
		if conn > maxC {
			maxC = conn
		}
		if minC < 0 || conn < minC {
			minC = conn
		}
	}
	if minC > 0 {
		out.SwingRatio = maxC / minC
	}
	out.Correlation = pearson(avail, compl)
	return out, nil
}

// Format renders the figure as an hourly table with spark bars.
func (r *Fig6Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5/6 — Diurnal device participation and round completion rate\n")
	fmt.Fprintf(&b, "%-5s %14s %10s %12s %9s  connected\n", "hour", "participating", "waiting", "rounds/hour", "failures")
	maxConn := 0.0
	for _, h := range r.Hours {
		if c := h.Participating + h.Waiting; c > maxConn {
			maxConn = c
		}
	}
	for _, h := range r.Hours {
		conn := h.Participating + h.Waiting
		bar := ""
		if maxConn > 0 {
			bar = strings.Repeat("#", int(30*conn/maxConn))
		}
		fmt.Fprintf(&b, "%02d:00 %14.0f %10.0f %12.1f %9.1f  %s\n",
			h.Hour, h.Participating, h.Waiting, h.Completions, h.Failures, bar)
	}
	fmt.Fprintf(&b, "peak/trough swing: %.1fx (paper: ~4x)\n", r.SwingRatio)
	fmt.Fprintf(&b, "corr(availability, completion rate): %.2f (paper: oscillate in sync)\n", r.Correlation)
	return b.String()
}

// Fig7Result reproduces Fig. 7: average devices completed / aborted /
// dropped per round, by hour of day.
type Fig7Result struct {
	Hours []Fig7Hour
	// DayDropRate and NightDropRate bound the paper's 6–10% band.
	DayDropRate, NightDropRate float64
}

// Fig7Hour is one hour-of-day row.
type Fig7Hour struct {
	Hour                        int
	Completed, Aborted, Dropped float64
}

// Fig7 runs the round-outcome experiment.
func Fig7(seed uint64, days, popSize, target int) (*Fig7Result, error) {
	res, err := stdSim(seed, days, popSize, target)
	if err != nil {
		return nil, err
	}
	var comp, abrt, drop, cnt [24]float64
	var dayDrop, daySel, nightDrop, nightSel float64
	for _, r := range res.Rounds {
		if !r.Succeeded {
			continue
		}
		h := r.Start.Hour()
		comp[h] += float64(r.Completed)
		abrt[h] += float64(r.Aborted + r.Late)
		drop[h] += float64(r.Dropped)
		cnt[h]++
		switch {
		case h >= 11 && h < 17:
			dayDrop += float64(r.Dropped)
			daySel += float64(r.Selected)
		case h < 5:
			nightDrop += float64(r.Dropped)
			nightSel += float64(r.Selected)
		}
	}
	out := &Fig7Result{}
	for h := 0; h < 24; h++ {
		if cnt[h] == 0 {
			continue
		}
		out.Hours = append(out.Hours, Fig7Hour{
			Hour: h, Completed: comp[h] / cnt[h], Aborted: abrt[h] / cnt[h], Dropped: drop[h] / cnt[h],
		})
	}
	if daySel > 0 {
		out.DayDropRate = dayDrop / daySel
	}
	if nightSel > 0 {
		out.NightDropRate = nightDrop / nightSel
	}
	return out, nil
}

// Format renders the Fig. 7 rows.
func (r *Fig7Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7 — Average devices completed, aborted, dropped per round\n")
	fmt.Fprintf(&b, "%-5s %10s %9s %9s\n", "hour", "completed", "aborted", "dropped")
	for _, h := range r.Hours {
		fmt.Fprintf(&b, "%02d:00 %10.1f %9.1f %9.1f\n", h.Hour, h.Completed, h.Aborted, h.Dropped)
	}
	fmt.Fprintf(&b, "drop-out rate: night %.1f%%, day %.1f%% (paper: 6%%–10%%, higher by day)\n",
		100*r.NightDropRate, 100*r.DayDropRate)
	return b.String()
}

// Fig8Result reproduces Fig. 8: distributions of round run time and device
// participation time, with the server-imposed straggler cap visible.
type Fig8Result struct {
	RunTimeP50, RunTimeP90, RunTimeP99                   float64
	ParticipationP50, ParticipationP90, ParticipationMax float64
	CapSeconds                                           float64
}

// Fig8 runs the timing experiment.
func Fig8(seed uint64, days, popSize, target int) (*Fig8Result, error) {
	res, err := stdSim(seed, days, popSize, target)
	if err != nil {
		return nil, err
	}
	p, err := stdPlan(target)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{
		RunTimeP50:       res.RunTimeSummary.P50,
		RunTimeP90:       res.RunTimeSummary.P90,
		RunTimeP99:       res.RunTimeSummary.P99,
		ParticipationP50: res.ParticipationSummary.P50,
		ParticipationP90: res.ParticipationSummary.P90,
		ParticipationMax: res.ParticipationSummary.Max,
		CapSeconds:       p.Server.ParticipationCap.Seconds(),
	}, nil
}

// Format renders the Fig. 8 distribution summary.
func (r *Fig8Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — Round execution and device participation time (seconds)\n")
	fmt.Fprintf(&b, "%-22s %8s %8s %8s\n", "", "P50", "P90", "P99/max")
	fmt.Fprintf(&b, "%-22s %8.0f %8.0f %8.0f\n", "round run time", r.RunTimeP50, r.RunTimeP90, r.RunTimeP99)
	fmt.Fprintf(&b, "%-22s %8.0f %8.0f %8.0f\n", "device participation", r.ParticipationP50, r.ParticipationP90, r.ParticipationMax)
	fmt.Fprintf(&b, "participation capped at %.0fs by the server (paper: participation time is capped)\n", r.CapSeconds)
	return b.String()
}

// Fig9Result reproduces Fig. 9: server traffic asymmetry.
type Fig9Result struct {
	DownloadBytes, UploadBytes int64
	Ratio                      float64
	Days                       int
}

// Fig9 runs the traffic experiment.
func Fig9(seed uint64, days, popSize, target int) (*Fig9Result, error) {
	res, err := stdSim(seed, days, popSize, target)
	if err != nil {
		return nil, err
	}
	down, up := res.Traffic.Totals()
	out := &Fig9Result{DownloadBytes: down, UploadBytes: up, Days: days}
	if up > 0 {
		out.Ratio = float64(down) / float64(up)
	}
	return out, nil
}

// Format renders the Fig. 9 totals.
func (r *Fig9Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9 — Server network traffic over %d days\n", r.Days)
	fmt.Fprintf(&b, "download (server→device): %8.1f MB   (plan + global model)\n", float64(r.DownloadBytes)/1e6)
	fmt.Fprintf(&b, "upload   (device→server): %8.1f MB   (compressed updates)\n", float64(r.UploadBytes)/1e6)
	fmt.Fprintf(&b, "download/upload ratio: %.1fx (paper: download dominates)\n", r.Ratio)
	return b.String()
}

// Table1Result reproduces Table 1: the distribution of on-device training
// session shapes.
type Table1Result struct {
	Rows  []Table1Row
	Total int
}

// Table1Row is one session-shape row.
type Table1Row struct {
	Shape   string
	Count   int
	Percent float64
}

// Table1 runs the session-shape experiment.
func Table1(seed uint64, days, popSize, target int) (*Table1Result, error) {
	res, err := stdSim(seed, days, popSize, target)
	if err != nil {
		return nil, err
	}
	out := &Table1Result{Total: res.Shapes.Total()}
	for _, row := range res.Shapes.Distribution() {
		out.Rows = append(out.Rows, Table1Row{Shape: row.Shape, Count: row.Count, Percent: row.Percent})
	}
	return out, nil
}

// Format renders the table with the paper's legend.
func (r *Table1Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 — Distribution of on-device training round sessions\n")
	fmt.Fprintf(&b, "%-12s %10s %8s\n", "shape", "count", "percent")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %10d %7.0f%%\n", row.Shape, row.Count, row.Percent)
	}
	fmt.Fprintf(&b, "(paper: -v[]+^ 75%%, -v[]+# 22%%, -v[! 2%%)\n")
	fmt.Fprintf(&b, "legend: - checkin, v plan, [ train start, ] train done, + upload, ^ done, # rejected, ! interrupted\n")
	return b.String()
}

func pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	n := float64(len(a))
	var sa, sb, saa, sbb, sab float64
	for i := range a {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	num := sab - sa*sb/n
	den := (saa - sa*sa/n) * (sbb - sb*sb/n)
	if den <= 0 {
		return 0
	}
	return num / math.Sqrt(den)
}
