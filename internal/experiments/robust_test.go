package experiments

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestRobustDefenseConvergence is the robust-aggregation acceptance run:
// with 20% scaled-update attackers on the convergence task, the undefended
// weighted mean visibly diverges while norm bounding and trimmed mean stay
// within 5% of the attack-free loss (with a small absolute floor, since
// the attack-free run converges to near-zero loss).
func TestRobustDefenseConvergence(t *testing.T) {
	r, err := RobustCost(RobustCostConfig{Seed: 11, Fractions: []float64{0, 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Policies) != 5 || r.Policies[0] != "none" || r.Policies[1] != "norm_bound" ||
		r.Policies[2] != "trimmed_mean" || r.Policies[3] != "median" || r.Policies[4] != "cosine_outlier" {
		t.Fatalf("policy axis = %v", r.Policies)
	}
	if len(r.Loss) != 2 || len(r.Loss[0]) != 5 {
		t.Fatalf("grid shape: %v", r.Loss)
	}

	free := r.Loss[0][0] // attack-free, undefended: the reference loss
	budget := free * 1.05
	if floor := free + 0.05; budget < floor {
		budget = floor
	}

	// Attack-free: every policy (including the order statistics, which
	// change the estimator) still learns the task.
	for pi, p := range r.Policies {
		if r.Accuracy[0][pi] < 0.95 {
			t.Fatalf("attack-free %s accuracy %v, want >= 0.95", p, r.Accuracy[0][pi])
		}
	}

	// 20% attackers, undefended: visible divergence, accuracy at chance.
	if r.Loss[1][0] < 10*free+1 {
		t.Fatalf("undefended loss %v under attack should visibly diverge (attack-free %v)", r.Loss[1][0], free)
	}
	if chance := 2.0 / 8; r.Accuracy[1][0] > chance {
		t.Fatalf("undefended accuracy %v under attack, want near-chance", r.Accuracy[1][0])
	}

	// The acceptance pair: norm bounding and trimmed mean hold the line.
	for _, pi := range []int{1, 2} {
		if r.Loss[1][pi] > budget {
			t.Fatalf("%s loss %v under 20%% attack, want <= %v (attack-free %v)",
				r.Policies[pi], r.Loss[1][pi], budget, free)
		}
		if r.Accuracy[1][pi] < 0.95 {
			t.Fatalf("%s accuracy %v under attack, want >= 0.95", r.Policies[pi], r.Accuracy[1][pi])
		}
	}
	// Median and cosine rejection are defenses too, just with looser bands.
	for _, pi := range []int{3, 4} {
		if r.Loss[1][pi] > free+0.1 {
			t.Fatalf("%s loss %v under attack, want <= %v", r.Policies[pi], r.Loss[1][pi], free+0.1)
		}
	}

	// The defenses must have actually fired, and only against the attack:
	// clips on the norm-bound column, rejections on the cosine column.
	if r.Clipped[1][1] == 0 {
		t.Fatal("norm_bound clipped nothing under attack")
	}
	if r.Rejected[1][4] == 0 {
		t.Fatal("cosine_outlier rejected nothing under attack")
	}
	if r.Rejected[0][4] != 0 {
		t.Fatalf("cosine_outlier rejected %d honest updates attack-free", r.Rejected[0][4])
	}
	if r.Trimmed[1][2] == 0 {
		t.Fatal("trimmed_mean trimmed nothing")
	}
	for fi := range r.Fractions {
		for pi := range r.Policies {
			if r.ReduceMicros[fi][pi] <= 0 {
				t.Fatalf("ReduceMicros[%d][%d] = %v", fi, pi, r.ReduceMicros[fi][pi])
			}
		}
	}
	if !strings.Contains(r.Format(), "scaled_update") {
		t.Fatal("Format missing attack name")
	}
}

// TestRobustGridOtherAttacks runs the label-flip and byzantine rows at
// reduced scale: label flipping is bounded-norm poison (norm bounding
// cannot remove it, but the defenses must not make it worse), byzantine
// collusion is exactly what the order statistics resist.
func TestRobustGridOtherAttacks(t *testing.T) {
	byz, err := RobustCost(RobustCostConfig{
		Seed: 12, Attack: sim.AttackByzantine, Rounds: 20, Fractions: []float64{0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Colluders all push the same |Scale|-norm direction: the undefended
	// mean is dragged, the trimmed mean holds.
	if byz.Accuracy[0][0] > byz.Accuracy[0][2] {
		t.Fatalf("undefended %v should not beat trimmed mean %v under byzantine collusion",
			byz.Accuracy[0][0], byz.Accuracy[0][2])
	}
	if byz.Accuracy[0][2] < 0.9 {
		t.Fatalf("trimmed mean accuracy %v under byzantine collusion, want >= 0.9", byz.Accuracy[0][2])
	}

	flip, err := RobustCost(RobustCostConfig{
		Seed: 13, Attack: sim.AttackLabelFlip, Rounds: 20, Fractions: []float64{0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Label flipping at 20% is a dilution attack: every aggregate stays
	// usable, no defense collapses the model.
	for pi, p := range flip.Policies {
		if flip.Accuracy[0][pi] < 0.7 {
			t.Fatalf("%s accuracy %v under 20%% label flipping, want >= 0.7", p, flip.Accuracy[0][pi])
		}
	}

	if _, err := RobustCost(RobustCostConfig{Fractions: []float64{1.5}}); err == nil {
		t.Fatal("fraction >= 1 must fail")
	}
}
