package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/remote"
)

// ChaosRow is one scenario of the chaos grid: a fault schedule run against
// the full sharded deployment, with the committed-round count, the fault
// totals, and the chaos.Verify verdict.
type ChaosRow struct {
	Scenario string
	Seed     uint64
	Rounds   int
	// ElapsedMS is wall time to the last committed round.
	ElapsedMS int64
	// Faults is the total recorded fault count; FaultCounts breaks it down
	// per kind ("drop=12", sorted).
	Faults      int64
	FaultCounts []string
	// Invariants is "ok" when every Verify probe held, else the failures.
	Invariants    string
	SealsReceived int64
	Accepted      int64
}

// ChaosResult is the grid output for `flbench -exp chaos`.
type ChaosResult struct {
	Shards        int
	TargetDevices int
	Rows          []ChaosRow
}

// Format implements the flbench formatter.
func (r *ChaosResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos grid: %d shards, K=%d, invariant-checked recovery per schedule\n", r.Shards, r.TargetDevices)
	fmt.Fprintf(&b, "%-24s %8s %8s %10s %8s %8s  %s\n", "scenario", "seed", "rounds", "elapsed", "faults", "seals", "invariants")
	for _, row := range r.Rows {
		faults := "-"
		if len(row.FaultCounts) > 0 {
			faults = strings.Join(row.FaultCounts, " ")
		}
		fmt.Fprintf(&b, "%-24s %8d %8d %9dms %8d %8d  %s\n",
			row.Scenario, row.Seed, row.Rounds, row.ElapsedMS, row.Faults, row.SealsReceived, row.Invariants)
		if faults != "-" {
			fmt.Fprintf(&b, "%-24s %s\n", "", faults)
		}
	}
	return strings.TrimRight(b.String(), "\n")
}

// chaosPeer tolerates the grid's 200ms jitter on the heartbeat path while
// still detecting partitions inside a scenario's timescale.
func chaosPeer() remote.Options {
	return remote.Options{
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatMiss:     5,
		BackoffMin:        5 * time.Millisecond,
		BackoffMax:        50 * time.Millisecond,
	}
}

// ChaosGrid runs the deterministic chaos scenarios against the sharded
// deployment: a fault-free baseline (which doubles as the aggregate-sum
// reference), link-level noise, and the full partition + connection-reset
// schedule from the acceptance scenario. Every row's fault schedule is
// reproducible from its seed.
func ChaosGrid(seed uint64) (*ChaosResult, error) {
	base := chaos.ScenarioConfig{
		Seed:             seed,
		Shards:           3,
		TargetDevices:    8,
		Rounds:           5,
		IdenticalDevices: true,
		Peer:             chaosPeer(),
	}
	out := &ChaosResult{Shards: base.Shards, TargetDevices: base.TargetDevices}

	scenarios := []struct {
		name string
		spec chaos.Spec
	}{
		{name: "baseline", spec: chaos.Spec{}},
		{name: "drop5+jitter200ms", spec: chaos.Spec{
			Rules: []chaos.Rule{{Role: chaos.RoleShard, Drop: 0.05, Jitter: 200 * time.Millisecond}},
		}},
		{name: "partition+reset", spec: chaos.Spec{
			Rules:      []chaos.Rule{{Role: chaos.RoleShard, Drop: 0.05, Jitter: 200 * time.Millisecond}},
			Partitions: []chaos.Window{{Role: "shard:1", Round: 3, Dur: 2 * time.Second}},
			Resets:     []chaos.Reset{{Role: "shard:2", Round: 4}},
		}},
	}

	var reference = base.Reference
	for _, sc := range scenarios {
		cfg := base
		cfg.Spec = sc.spec
		cfg.Reference = reference
		res, err := chaos.RunScenario(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos scenario %q: %w", sc.name, err)
		}
		invariants := "ok"
		if rerr := res.Report.Err(); rerr != nil {
			invariants = rerr.Error()
		}
		out.Rows = append(out.Rows, ChaosRow{
			Scenario:      sc.name,
			Seed:          res.Seed,
			Rounds:        res.Rounds,
			ElapsedMS:     res.Elapsed.Milliseconds(),
			Faults:        res.FaultTotal,
			FaultCounts:   res.FaultCounts,
			Invariants:    invariants,
			SealsReceived: res.SealsReceived,
			Accepted:      res.Accepted,
		})
		if sc.name == "baseline" {
			// The fault-free lineage is the sum-correctness ground truth for
			// every subsequent scenario.
			reference = res.Lineage
		}
	}
	return out, nil
}
