package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// TelemetryRow is one instrument's measured hot-path cost.
type TelemetryRow struct {
	Instrument string
	Ops        int
	NsPerOp    float64
}

// TelemetryResult is the telemetry-overhead experiment (DESIGN.md §4): the
// per-event cost of every obs instrument class on the paths the round hot
// loop touches, measured on a private registry so the numbers are not
// polluted by (and do not pollute) the process-wide Default registry. The
// companion macro check is the A/B of BenchmarkRoundThroughput against the
// pre-telemetry baseline: B/op on the report hot loop must be unchanged,
// since the loop only ever executes atomic counter increments.
type TelemetryResult struct {
	Rows []TelemetryRow
}

// Format implements the flbench formatter.
func (r *TelemetryResult) Format() string {
	var b strings.Builder
	b.WriteString("Telemetry overhead (per-event instrument cost, private registry)\n")
	b.WriteString("  instrument                     ops      ns/op\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-28s %8d %10.1f\n", row.Instrument, row.Ops, row.NsPerOp)
	}
	return b.String()
}

// timeOp measures fn over ops iterations and returns ns/op.
func timeOp(ops int, fn func(i int)) float64 {
	start := time.Now()
	for i := 0; i < ops; i++ {
		fn(i)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops)
}

// TelemetryOverhead measures the obs instruments' per-event costs.
func TelemetryOverhead() (*TelemetryResult, error) {
	reg := obs.NewRegistry()
	out := &TelemetryResult{}
	add := func(name string, ops int, ns float64) {
		out.Rows = append(out.Rows, TelemetryRow{Instrument: name, Ops: ops, NsPerOp: ns})
	}

	// The three hot-loop-eligible operations: cached-pointer atomic ops.
	c := reg.Counter("exp_counter")
	add("counter.Inc (cached)", 10_000_000, timeOp(10_000_000, func(int) { c.Inc() }))
	g := reg.Gauge("exp_gauge")
	add("gauge.Set (cached)", 10_000_000, timeOp(10_000_000, func(i int) { g.Set(float64(i)) }))
	s := reg.Summary("exp_summary")
	add("summary.Observe (P2)", 1_000_000, timeOp(1_000_000, func(i int) { s.Observe(float64(i % 1000)) }))

	// Registry-mediated lookup: what a call site pays when it does NOT
	// cache the instrument pointer (mutex + map hit). Never on hot loops.
	add("registry Counter lookup", 1_000_000, timeOp(1_000_000, func(int) { reg.Counter("exp_counter").Inc() }))

	// Control-plane operations, paid once per round or per scrape.
	for i := 0; i < 64; i++ {
		reg.Counter(obs.Label("exp_fan", "i", fmt.Sprint(i))).Add(int64(i))
		reg.Summary(obs.Label("exp_fan_s", "i", fmt.Sprint(i))).Observe(float64(i))
	}
	add("registry.Export (128 series)", 10_000, timeOp(10_000, func(int) { reg.Export() }))
	add("WritePrometheus (128 series)", 10_000, timeOp(10_000, func(int) {
		var b strings.Builder
		reg.WritePrometheus(&b)
	}))
	trace := obs.RoundTrace{
		TaskID: "exp/train", Round: 1, TotalNanos: int64(time.Second),
		Phases: map[string]int64{
			obs.PhaseCheckin: 1e6, obs.PhaseConfigure: 2e6, obs.PhaseReportWindow: 3e6,
			obs.PhaseEdgeAccumulate: 4e6, obs.PhaseCommit: 5e6,
		},
		Committed: true, Reports: 100,
	}
	add("RecordTrace (5 phases)", 100_000, timeOp(100_000, func(int) { _ = reg.RecordTrace(trace, nil) }))
	add("RoundTrace JSONL marshal", 100_000, timeOp(100_000, func(int) { _ = trace.MarshalJSONL() }))
	return out, nil
}
