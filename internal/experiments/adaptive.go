package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/population"
	"repro/internal/sim"
)

// AdaptiveResult is the Sec. 11 ablation: statically configured report
// windows vs windows tuned to the observed reporting-time distribution
// ("It should be dynamically adjusted to reduce the drop out rate and
// increase round frequency").
type AdaptiveResult struct {
	StaticRounds, AdaptiveRounds   int
	StaticSuccess, AdaptiveSuccess float64 // fraction of attempted rounds committed
	Speedup                        float64
}

// Adaptive runs one day of simulation twice: a generous 10-minute static
// window under heavy drop-out, then the same fleet with adaptive windows.
func Adaptive(seed uint64) (*AdaptiveResult, error) {
	p, err := plan.Generate(plan.Config{
		TaskID: "pop/train", Population: "pop",
		Model:     nn.Spec{Kind: nn.KindMLP, Features: 32, Hidden: 64, Classes: 8, Seed: 1},
		StoreName: "s", BatchSize: 10, Epochs: 1, LearningRate: 0.1,
		TargetDevices: 100, SelectionTimeout: time.Minute,
		ReportTimeout: 10 * time.Minute, MinReportFraction: 0.6,
	})
	if err != nil {
		return nil, err
	}
	base := sim.Config{
		Population: population.Config{
			Size: 5000, SpeedSigma: 0.5, Seed: seed,
			NightDropout: 0.30, DayDropout: 0.35,
		},
		Plan:              p,
		Duration:          24 * time.Hour,
		PerExampleCost:    800 * time.Millisecond,
		ExamplesPerDevice: 120,
		Seed:              seed + 1,
	}
	static, err := sim.Run(base)
	if err != nil {
		return nil, err
	}
	adCfg := base
	adCfg.AdaptiveWindow = true
	adaptive, err := sim.Run(adCfg)
	if err != nil {
		return nil, err
	}
	out := &AdaptiveResult{
		StaticRounds:   static.CompletedRounds(),
		AdaptiveRounds: adaptive.CompletedRounds(),
	}
	if n := len(static.Rounds); n > 0 {
		out.StaticSuccess = float64(static.CompletedRounds()) / float64(n)
	}
	if n := len(adaptive.Rounds); n > 0 {
		out.AdaptiveSuccess = float64(adaptive.CompletedRounds()) / float64(n)
	}
	if out.StaticRounds > 0 {
		out.Speedup = float64(out.AdaptiveRounds) / float64(out.StaticRounds)
	}
	return out, nil
}

// Format renders the ablation.
func (r *AdaptiveResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec. 11 — Static vs adaptive report windows (24h, heavy drop-out)\n")
	fmt.Fprintf(&b, "%-18s %14s %14s\n", "", "rounds/day", "success rate")
	fmt.Fprintf(&b, "%-18s %14d %13.0f%%\n", "static 10m window", r.StaticRounds, 100*r.StaticSuccess)
	fmt.Fprintf(&b, "%-18s %14d %13.0f%%\n", "adaptive window", r.AdaptiveRounds, 100*r.AdaptiveSuccess)
	fmt.Fprintf(&b, "round-frequency speedup: %.2fx (paper: windows \"should be dynamically adjusted\")\n", r.Speedup)
	return b.String()
}
