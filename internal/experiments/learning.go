package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/data"
	"repro/internal/fedavg"
	"repro/internal/nn"
	"repro/internal/secagg"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// NextWordConfig sizes the Sec. 8 next-word-prediction reproduction. Zero
// fields take laptop-scale defaults (the paper's run: 1.4M-parameter RNN,
// 3000 rounds, 1.5e6 users — ours is a scaled-down shape reproduction).
type NextWordConfig struct {
	Users        int
	SentencesPer int
	SentenceLen  int
	Vocab        int
	Rounds       int
	DevicesPer   int // devices per round (paper: a few hundred)
	Seed         uint64
}

func (c *NextWordConfig) defaults() {
	if c.Users == 0 {
		c.Users = 120
	}
	if c.SentencesPer == 0 {
		c.SentencesPer = 30
	}
	if c.SentenceLen == 0 {
		c.SentenceLen = 8
	}
	if c.Vocab == 0 {
		c.Vocab = 24
	}
	if c.Rounds == 0 {
		c.Rounds = 60
	}
	if c.DevicesPer == 0 {
		c.DevicesPer = 20
	}
}

// NextWordResult reproduces the Sec. 8 comparison: federated RNN vs. the
// n-gram baseline vs. a centrally trained RNN of the same architecture.
type NextWordResult struct {
	Rounds         int
	FederatedRNN   float64 // top-1 recall
	CentralizedRNN float64
	Bigram         float64
	// RecallCurve is federated top-1 recall sampled every few rounds.
	RecallCurve []float64
}

// NextWord runs the next-word-prediction experiment.
func NextWord(cfg NextWordConfig) (*NextWordResult, error) {
	cfg.defaults()
	corpus, err := data.MarkovLM(data.LMConfig{
		Users: cfg.Users, SentencesPer: cfg.SentencesPer, SentenceLen: cfg.SentenceLen,
		Vocab: cfg.Vocab, TestSize: 300, Skew: 0.3, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	spec := nn.Spec{Kind: nn.KindRNNLM, Vocab: cfg.Vocab, Embed: 16, Hidden: 32, Seed: cfg.Seed + 1}

	// Baseline 1: bigram counts over the pooled corpus (what a server-side
	// count model could do with centrally collected data).
	bigram := nn.NewBigram(cfg.Vocab)
	var pooled []nn.Example
	for _, u := range corpus.Users {
		for _, ex := range u {
			bigram.Observe(ex.Seq)
		}
		pooled = append(pooled, u...)
	}

	// Baseline 2: the same RNN trained centrally on the pooled corpus.
	epochs := cfg.Rounds / 10
	if epochs < 3 {
		epochs = 3
	}
	central, err := fedavg.TrainCentralized(spec, pooled, epochs, 16, 0.5, cfg.Seed+2)
	if err != nil {
		return nil, err
	}

	// Federated training: DevicesPer users per round.
	tr, err := fedavg.NewTrainer(spec, fedavg.ClientConfig{BatchSize: 8, Epochs: 1, LR: 0.5, Shuffle: true}, cfg.Seed+3)
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(cfg.Seed + 4)
	res := &NextWordResult{Rounds: cfg.Rounds}
	for round := 0; round < cfg.Rounds; round++ {
		perm := rng.Perm(len(corpus.Users))
		k := cfg.DevicesPer
		if k > len(perm) {
			k = len(perm)
		}
		sel := make([][]nn.Example, k)
		for i := 0; i < k; i++ {
			sel[i] = corpus.Users[perm[i]]
		}
		if _, err := tr.Round(sel); err != nil {
			return nil, err
		}
		if (round+1)%(cfg.Rounds/10+1) == 0 || round == cfg.Rounds-1 {
			res.RecallCurve = append(res.RecallCurve, tr.Evaluate(corpus.Test).Accuracy)
		}
	}
	res.FederatedRNN = tr.Evaluate(corpus.Test).Accuracy
	res.CentralizedRNN = central.Evaluate(corpus.Test).Accuracy
	res.Bigram = bigram.Evaluate(corpus.Test).Accuracy
	return res, nil
}

// Format renders the Sec. 8 comparison.
func (r *NextWordResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec. 8 — Next-word prediction, top-1 recall after %d FL rounds\n", r.Rounds)
	fmt.Fprintf(&b, "%-24s %8.3f\n", "federated RNN", r.FederatedRNN)
	fmt.Fprintf(&b, "%-24s %8.3f   (paper: FL matches server-trained RNN)\n", "centralized RNN", r.CentralizedRNN)
	fmt.Fprintf(&b, "%-24s %8.3f   (paper: FL beats the n-gram baseline)\n", "bigram baseline", r.Bigram)
	fmt.Fprintf(&b, "recall curve:")
	for _, v := range r.RecallCurve {
		fmt.Fprintf(&b, " %.3f", v)
	}
	fmt.Fprintf(&b, "\n")
	return b.String()
}

// KSweepResult reproduces the Sec. 9 observation: diminishing convergence
// improvements beyond a few hundred devices per round.
type KSweepResult struct {
	Ks         []int
	Accuracies []float64
	Rounds     int
}

// KSweep trains the same task with varying devices-per-round.
func KSweep(ks []int, rounds int, seed uint64) (*KSweepResult, error) {
	if len(ks) == 0 {
		return nil, fmt.Errorf("experiments: empty K list")
	}
	maxK := 0
	for _, k := range ks {
		if k > maxK {
			maxK = k
		}
	}
	// Pathologically non-IID (each user holds a single class, as in McMahan
	// et al. 2017): with one device per round the average update seesaws
	// between classes; more devices per round smooth it, with diminishing
	// returns.
	fed, err := data.Blobs(data.BlobsConfig{
		Users: maxK * 2, ExamplesPer: 20, Features: 16, Classes: 8,
		TestSize: 800, Skew: 1.0, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	spec := nn.Spec{Kind: nn.KindLogistic, Features: 16, Classes: 8, Seed: seed + 1}
	out := &KSweepResult{Ks: ks, Rounds: rounds}
	for _, k := range ks {
		tr, err := fedavg.NewTrainer(spec, fedavg.ClientConfig{BatchSize: 10, Epochs: 5, LR: 0.2, Shuffle: true}, seed+2)
		if err != nil {
			return nil, err
		}
		rng := tensor.NewRNG(seed + 3)
		for round := 0; round < rounds; round++ {
			perm := rng.Perm(len(fed.Users))
			sel := make([][]nn.Example, k)
			for i := 0; i < k; i++ {
				sel[i] = fed.Users[perm[i]]
			}
			if _, err := tr.Round(sel); err != nil {
				return nil, err
			}
		}
		out.Accuracies = append(out.Accuracies, tr.Evaluate(fed.Test).Accuracy)
	}
	return out, nil
}

// Format renders the sweep with per-step gains.
func (r *KSweepResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec. 9 — Devices per round vs. accuracy after %d rounds\n", r.Rounds)
	fmt.Fprintf(&b, "%8s %10s %8s\n", "K", "accuracy", "gain")
	for i, k := range r.Ks {
		gain := 0.0
		if i > 0 {
			gain = r.Accuracies[i] - r.Accuracies[i-1]
		}
		fmt.Fprintf(&b, "%8d %10.3f %+8.3f\n", k, r.Accuracies[i], gain)
	}
	fmt.Fprintf(&b, "(paper: diminishing improvements beyond a few hundred devices)\n")
	return b.String()
}

// OverSelectResult reproduces the Sec. 9 over-selection analysis: round
// completion probability as a function of the over-selection factor at
// various drop-out rates.
type OverSelectResult struct {
	Factors      []float64
	DropRates    []float64
	Completion   [][]float64 // [drop][factor] fraction of rounds reaching K
	TargetK      int
	RoundsPerTry int
}

// OverSelect Monte-Carlo simulates round completion.
func OverSelect(factors, dropRates []float64, targetK, trials int, seed uint64) (*OverSelectResult, error) {
	if targetK <= 0 || trials <= 0 {
		return nil, fmt.Errorf("experiments: bad over-select params")
	}
	rng := tensor.NewRNG(seed)
	out := &OverSelectResult{Factors: factors, DropRates: dropRates, TargetK: targetK, RoundsPerTry: trials}
	for _, d := range dropRates {
		row := make([]float64, len(factors))
		for fi, f := range factors {
			selected := int(float64(targetK)*f + 0.5)
			succ := 0
			for t := 0; t < trials; t++ {
				completed := 0
				for i := 0; i < selected; i++ {
					if rng.Float64() >= d {
						completed++
					}
				}
				if completed >= targetK {
					succ++
				}
			}
			row[fi] = float64(succ) / float64(trials)
		}
		out.Completion = append(out.Completion, row)
	}
	return out, nil
}

// Format renders the completion matrix.
func (r *OverSelectResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec. 9 — Round completion probability (target K=%d, %d trials)\n", r.TargetK, r.RoundsPerTry)
	fmt.Fprintf(&b, "%10s", "dropout\\f")
	for _, f := range r.Factors {
		fmt.Fprintf(&b, " %7.0f%%", 100*(f-1))
	}
	fmt.Fprintf(&b, "\n")
	for di, d := range r.DropRates {
		fmt.Fprintf(&b, "%9.0f%%", 100*d)
		for fi := range r.Factors {
			fmt.Fprintf(&b, " %8.3f", r.Completion[di][fi])
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "(paper: 130%% over-selection compensates for 6–10%% drop-out)\n")
	return b.String()
}

// SecAggCostResult reproduces the Sec. 6 cost analysis: the server-side
// cost of Secure Aggregation grows quadratically with group size, which is
// why updates are aggregated in groups of size ≥ k per Aggregator — plus
// the robustness axis: what recovering from fleet churn costs, per dropout
// rate, as dropped devices force t-of-n reconstruction of their masking
// keys.
type SecAggCostResult struct {
	GroupSizes []int
	ServerTime []time.Duration // churn-free full-protocol time per group size
	// GroupedTime is the time to aggregate TotalDevices devices as
	// ceil(N/k) groups of size k — near-linear in N.
	TotalDevices int
	GroupedTime  []time.Duration
	// DropRates is the injected churn axis; RecoveryTime[si][ri] is the
	// full-protocol time for GroupSizes[si] under DropRates[ri], with
	// dropouts drawn across every phase boundary (sim.SecAggChurn). The
	// difference against ServerTime[si] is the recovery cost of that much
	// churn.
	DropRates    []float64
	RecoveryTime [][]time.Duration
}

// SecAggCost measures protocol cost vs. group size and dropout rate.
func SecAggCost(groupSizes []int, vectorLen, totalDevices int, dropRates []float64) (*SecAggCostResult, error) {
	out := &SecAggCostResult{GroupSizes: groupSizes, TotalDevices: totalDevices, DropRates: dropRates}
	for si, n := range groupSizes {
		cfg := secagg.Config{N: n, T: n/2 + 1, VectorLen: vectorLen}
		inputs := make(map[int][]float64, n)
		for id := 1; id <= n; id++ {
			v := make([]float64, vectorLen)
			for j := range v {
				v[j] = float64(id + j)
			}
			inputs[id] = v
		}
		start := time.Now()
		if _, err := secagg.RunSchedule(cfg, inputs, secagg.Schedule{}); err != nil {
			return nil, err
		}
		out.ServerTime = append(out.ServerTime, time.Since(start))

		// Aggregating totalDevices devices in groups of size n.
		groups := (totalDevices + n - 1) / n
		out.GroupedTime = append(out.GroupedTime, time.Duration(groups)*out.ServerTime[len(out.ServerTime)-1])

		// The churn axis: same group, dropouts injected at every phase
		// boundary at the given rate (deterministic draw per cell).
		out.RecoveryTime = append(out.RecoveryTime, make([]time.Duration, len(dropRates)))
		for ri, rate := range dropRates {
			rng := tensor.NewRNG(uint64(1000*si + ri + 1))
			sched := sim.SecAggChurn(n, cfg.T, sim.ChurnConfig{DropRate: rate}, rng)
			start := time.Now()
			if _, err := secagg.RunSchedule(cfg, inputs, sched); err != nil {
				return nil, err
			}
			out.RecoveryTime[si][ri] = time.Since(start)
		}
	}
	return out, nil
}

// Format renders the cost table.
func (r *SecAggCostResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec. 6 — Secure Aggregation cost vs. group size and dropout rate\n")
	fmt.Fprintf(&b, "%8s %14s %12s %22s", "group n", "protocol time", "time/device", fmt.Sprintf("%d dev in n-groups", r.TotalDevices))
	for _, rate := range r.DropRates {
		fmt.Fprintf(&b, " %11s", fmt.Sprintf("drop %.0f%%", 100*rate))
	}
	fmt.Fprintf(&b, "\n")
	for i, n := range r.GroupSizes {
		per := time.Duration(int64(r.ServerTime[i]) / int64(n))
		fmt.Fprintf(&b, "%8d %14v %12v %22v", n, r.ServerTime[i].Round(time.Millisecond), per.Round(time.Microsecond), r.GroupedTime[i].Round(time.Millisecond))
		for ri := range r.DropRates {
			fmt.Fprintf(&b, " %11v", r.RecoveryTime[i][ri].Round(time.Millisecond))
		}
		fmt.Fprintf(&b, "\n")
	}
	fmt.Fprintf(&b, "(paper: quadratic cost limits groups to hundreds of users; per-Aggregator groups bound it;\n")
	fmt.Fprintf(&b, " dropout columns show t-of-n recovery cost under churn at every phase boundary)\n")
	return b.String()
}
