package experiments

import (
	"strings"
	"testing"
)

// The experiment tests assert the *shape* claims of each figure — the same
// checks EXPERIMENTS.md documents — at reduced scale so the suite stays
// fast.

func TestFig6Shape(t *testing.T) {
	r, err := Fig6(1, 2, 2000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hours) != 24 {
		t.Fatalf("hours = %d", len(r.Hours))
	}
	if r.SwingRatio < 2 {
		t.Fatalf("diurnal swing %v, want > 2 (paper ~4x)", r.SwingRatio)
	}
	if r.Correlation < 0.3 {
		t.Fatalf("completion/availability correlation %v, want positive sync", r.Correlation)
	}
	if !strings.Contains(r.Format(), "swing") {
		t.Fatal("Format missing swing line")
	}
}

func TestFig7Shape(t *testing.T) {
	r, err := Fig7(2, 2, 4000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.DayDropRate <= r.NightDropRate {
		t.Fatalf("day drop %v should exceed night %v", r.DayDropRate, r.NightDropRate)
	}
	if r.NightDropRate < 0.02 || r.DayDropRate > 0.2 {
		t.Fatalf("drop rates outside plausible band: %v / %v", r.NightDropRate, r.DayDropRate)
	}
	// Completed should dominate aborted and dropped in every hour.
	for _, h := range r.Hours {
		if h.Completed < h.Dropped || h.Completed < h.Aborted {
			t.Fatalf("hour %d: completed %v should dominate (aborted %v dropped %v)",
				h.Hour, h.Completed, h.Aborted, h.Dropped)
		}
	}
	if !strings.Contains(r.Format(), "drop-out rate") {
		t.Fatal("Format missing dropout line")
	}
}

func TestFig8Shape(t *testing.T) {
	r, err := Fig8(3, 2, 4000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.ParticipationMax > r.CapSeconds+1e-9 {
		t.Fatalf("participation max %v exceeds cap %v", r.ParticipationMax, r.CapSeconds)
	}
	if r.RunTimeP50 <= 0 || r.ParticipationP50 <= 0 {
		t.Fatalf("degenerate distributions: %+v", r)
	}
	// "round run time is roughly equal to the majority of the device
	// participation time".
	if r.RunTimeP50 < r.ParticipationP50/3 {
		t.Fatalf("round P50 %v vs participation P50 %v", r.RunTimeP50, r.ParticipationP50)
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(4, 2, 4000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Ratio < 2 {
		t.Fatalf("download/upload ratio %v, want ≥ 2", r.Ratio)
	}
	if !strings.Contains(r.Format(), "download") {
		t.Fatal("Format missing traffic lines")
	}
}

func TestTable1Shape(t *testing.T) {
	r, err := Table1(5, 2, 4000, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Rows[0].Shape != "-v[]+^" || r.Rows[0].Percent < 60 {
		t.Fatalf("top shape %q at %v%%, want -v[]+^ as large majority", r.Rows[0].Shape, r.Rows[0].Percent)
	}
	if !strings.Contains(r.Format(), "legend") {
		t.Fatal("Format missing legend")
	}
}

func TestNextWordShape(t *testing.T) {
	r, err := NextWord(NextWordConfig{
		Users: 60, SentencesPer: 20, SentenceLen: 6, Vocab: 16,
		Rounds: 40, DevicesPer: 15, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	chance := 1.0 / 16
	if r.FederatedRNN < 2*chance {
		t.Fatalf("federated recall %v barely above chance %v", r.FederatedRNN, chance)
	}
	// Paper: FL RNN beats the n-gram baseline... at this tiny scale we
	// require it to be at least competitive (within 15%) and clearly
	// matching the centralized RNN.
	if r.FederatedRNN < r.Bigram*0.85 {
		t.Fatalf("federated %v much worse than bigram %v", r.FederatedRNN, r.Bigram)
	}
	if r.FederatedRNN < r.CentralizedRNN-0.1 {
		t.Fatalf("federated %v should approach centralized %v", r.FederatedRNN, r.CentralizedRNN)
	}
	if len(r.RecallCurve) < 2 || r.RecallCurve[len(r.RecallCurve)-1] <= r.RecallCurve[0]*0.9 {
		t.Fatalf("recall should improve over rounds: %v", r.RecallCurve)
	}
}

func TestKSweepDiminishingReturns(t *testing.T) {
	r, err := KSweep([]int{1, 5, 20, 60}, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Accuracies) != 4 {
		t.Fatalf("accuracies = %v", r.Accuracies)
	}
	gainSmall := r.Accuracies[1] - r.Accuracies[0] // 1 -> 5
	gainLarge := r.Accuracies[3] - r.Accuracies[2] // 20 -> 60
	if gainLarge > gainSmall {
		t.Fatalf("returns should diminish: small-K gain %v, large-K gain %v (acc %v)",
			gainSmall, gainLarge, r.Accuracies)
	}
	if r.Accuracies[3] < 0.8 {
		t.Fatalf("final accuracy %v too low", r.Accuracies[3])
	}
}

func TestOverSelectMatrix(t *testing.T) {
	r, err := OverSelect([]float64{1.0, 1.1, 1.3, 1.5}, []float64{0.06, 0.10}, 100, 400, 8)
	if err != nil {
		t.Fatal(err)
	}
	// At 130% over-selection both paper drop-out rates give near-certain
	// completion; at 100% they give near-zero.
	for di := range r.DropRates {
		if r.Completion[di][2] < 0.99 {
			t.Fatalf("130%% over-selection should complete reliably: %v", r.Completion[di])
		}
		if r.Completion[di][0] > 0.1 {
			t.Fatalf("no over-selection should rarely complete: %v", r.Completion[di])
		}
		// Monotone in the factor.
		for fi := 1; fi < len(r.Factors); fi++ {
			if r.Completion[di][fi] < r.Completion[di][fi-1]-0.02 {
				t.Fatalf("completion not monotone in factor: %v", r.Completion[di])
			}
		}
	}
	if _, err := OverSelect(nil, nil, 0, 0, 1); err == nil {
		t.Fatal("bad params must fail")
	}
}

func TestSecAggCostSuperlinear(t *testing.T) {
	r, err := SecAggCost([]int{4, 8, 16, 32}, 64, 128, []float64{0, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.RecoveryTime) != 4 || len(r.RecoveryTime[0]) != 2 {
		t.Fatalf("recovery axis shape: %+v", r.RecoveryTime)
	}
	for si := range r.RecoveryTime {
		for ri, d := range r.RecoveryTime[si] {
			if d <= 0 {
				t.Fatalf("RecoveryTime[%d][%d] = %v, want > 0", si, ri, d)
			}
		}
	}
	// Quadratic server cost: time per device grows with group size.
	perDeviceFirst := float64(r.ServerTime[0]) / 4
	perDeviceLast := float64(r.ServerTime[3]) / 32
	if perDeviceLast <= perDeviceFirst {
		t.Fatalf("per-device cost should grow with group size: %v vs %v",
			perDeviceFirst, perDeviceLast)
	}
	// Grouping keeps the total for 128 devices far below one 128-group.
	if !strings.Contains(r.Format(), "group") {
		t.Fatal("Format missing")
	}
}

func TestPacingRegimes(t *testing.T) {
	r, err := Pacing(3000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if r.SmallConcentration < 0.9 {
		t.Fatalf("small-population concentration %v, want ≥ 0.9", r.SmallConcentration)
	}
	if r.LargePeakToMean > 3 {
		t.Fatalf("large-population peak/mean %v indicates a herd spike", r.LargePeakToMean)
	}
	if _, err := Pacing(0, 1); err == nil {
		t.Fatal("bad params must fail")
	}
}

func TestWallClockConvergence(t *testing.T) {
	r, err := WallClock(3)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalRounds < 50 {
		t.Fatalf("one simulated day should give many rounds, got %d", r.TotalRounds)
	}
	if r.RoundsToTarget == 0 {
		t.Fatalf("never reached %.0f%% accuracy (final %.3f after %d rounds)",
			100*r.TargetAccuracy, r.FinalAccuracy, r.TotalRounds)
	}
	if r.SimTimeToTarget <= 0 || r.MinutesPerRound <= 0 {
		t.Fatalf("degenerate timing: %+v", r)
	}
	// The paper's "2–3 minutes per round" shape: rounds take on the order
	// of minutes, not milliseconds or hours.
	if r.MinutesPerRound < 0.1 || r.MinutesPerRound > 30 {
		t.Fatalf("minutes/round = %v, want order-of-minutes", r.MinutesPerRound)
	}
}

func TestAdaptiveExperiment(t *testing.T) {
	r, err := Adaptive(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Speedup <= 1 {
		t.Fatalf("adaptive windows should speed rounds up: %+v", r)
	}
	if r.AdaptiveSuccess < r.StaticSuccess*0.9 {
		t.Fatalf("adaptive success collapsed: %+v", r)
	}
}
