package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/data"
	"repro/internal/fedavg"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/robust"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// RobustCostConfig sizes the robust-aggregation grid: attack fraction ×
// defense policy → converged model quality + per-round reduce overhead, on
// the same non-IID logistic task the K-sweep uses. Zero fields take
// defaults tuned so the undefended run visibly diverges under attack while
// every defense stays within a few percent of the attack-free loss.
type RobustCostConfig struct {
	Users       int
	ExamplesPer int
	Features    int
	Classes     int
	Rounds      int
	// DevicesPer is the cohort per round (default: every user, so the
	// compromised fraction in each round equals the population fraction).
	DevicesPer int
	// Attack is the adversary model (default sim.AttackScaledUpdate).
	Attack sim.AttackKind
	// Fractions is the compromised-population axis (default 0, 0.2).
	Fractions []float64
	// Scale is the attack's update multiplier (default −50: a sign-flipped,
	// massively amplified push away from the honest average).
	Scale float64
	// ClipNorm / TrimFraction / MaxCosineDistance parametrize the defenses
	// (defaults 0.5 / 0.25 / 1.0).
	ClipNorm          float64
	TrimFraction      float64
	MaxCosineDistance float64
	Seed              uint64
}

func (c *RobustCostConfig) defaults() {
	if c.Users == 0 {
		c.Users = 20
	}
	if c.ExamplesPer == 0 {
		c.ExamplesPer = 20
	}
	if c.Features == 0 {
		c.Features = 16
	}
	if c.Classes == 0 {
		c.Classes = 8
	}
	if c.Rounds == 0 {
		c.Rounds = 30
	}
	if c.DevicesPer == 0 {
		c.DevicesPer = c.Users
	}
	if c.Attack == sim.AttackNone {
		c.Attack = sim.AttackScaledUpdate
	}
	if len(c.Fractions) == 0 {
		c.Fractions = []float64{0, 0.2}
	}
	if c.Scale == 0 {
		c.Scale = -50
	}
	if c.ClipNorm == 0 {
		c.ClipNorm = 0.5
	}
	if c.TrimFraction == 0 {
		c.TrimFraction = 0.25
	}
	if c.MaxCosineDistance == 0 {
		c.MaxCosineDistance = 1.0
	}
}

// RobustCostResult is the grid: for each attack fraction (row) and policy
// (column), the converged test loss/accuracy plus the robust reduce's
// per-round cost and defense counters.
type RobustCostResult struct {
	Attack    string
	Scale     float64
	Rounds    int
	Fractions []float64
	Policies  []string
	// Loss[f][p] / Accuracy[f][p] score the final global model on the held
	// out test set.
	Loss     [][]float64
	Accuracy [][]float64
	// ReduceMicros[f][p] is the mean per-round wall time of the aggregation
	// reduce — the defense's server-side overhead against the column-0
	// weighted-mean baseline.
	ReduceMicros [][]float64
	// Clipped / Rejected / Trimmed total the defense counters over the run
	// (robust.Result semantics: clipped updates, whole-update rejections +
	// order-stat attributions, per-coordinate trimmed values).
	Clipped  [][]int
	Rejected [][]int
	Trimmed  [][]int64
}

// robustPolicies is the fixed policy axis of the grid.
func robustPolicies(cfg RobustCostConfig) []plan.RobustPolicy {
	return []plan.RobustPolicy{
		{Kind: plan.RobustNone},
		{Kind: plan.RobustNormBound, ClipNorm: cfg.ClipNorm},
		{Kind: plan.RobustTrimmedMean, TrimFraction: cfg.TrimFraction},
		{Kind: plan.RobustMedian},
		{Kind: plan.RobustCosineOutlier, MaxCosineDistance: cfg.MaxCosineDistance},
	}
}

// RobustCost runs the poisoning grid. Every cell trains the same model
// from the same seed on the same federated split; only the compromised
// fraction and the aggregation policy vary, so column differences are the
// defense's doing and row differences are the attack's.
func RobustCost(cfg RobustCostConfig) (*RobustCostResult, error) {
	cfg.defaults()
	for _, f := range cfg.Fractions {
		if f < 0 || f >= 1 {
			return nil, fmt.Errorf("experiments: attack fraction %v outside [0, 1)", f)
		}
	}
	fed, err := data.Blobs(data.BlobsConfig{
		Users: cfg.Users, ExamplesPer: cfg.ExamplesPer, Features: cfg.Features,
		Classes: cfg.Classes, TestSize: 800, Skew: 0.5, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	spec := nn.Spec{Kind: nn.KindLogistic, Features: cfg.Features, Classes: cfg.Classes, Seed: cfg.Seed + 1}
	policies := robustPolicies(cfg)
	out := &RobustCostResult{
		Attack: cfg.Attack.String(), Scale: cfg.Scale, Rounds: cfg.Rounds,
		Fractions: cfg.Fractions,
	}
	for _, p := range policies {
		out.Policies = append(out.Policies, p.Kind.String())
	}
	for _, frac := range cfg.Fractions {
		adv := sim.NewAdversary(sim.AdversaryConfig{
			Kind: cfg.Attack, Fraction: frac, Scale: cfg.Scale, Seed: cfg.Seed + 2,
		}, cfg.Users)
		loss := make([]float64, len(policies))
		acc := make([]float64, len(policies))
		reduceus := make([]float64, len(policies))
		clipped := make([]int, len(policies))
		rejected := make([]int, len(policies))
		trimmed := make([]int64, len(policies))
		for pi, pol := range policies {
			cell, err := robustCell(cfg, spec, fed, pol, adv)
			if err != nil {
				return nil, fmt.Errorf("experiments: robust cell frac=%v policy=%s: %w", frac, pol.Kind, err)
			}
			loss[pi], acc[pi] = cell.loss, cell.accuracy
			reduceus[pi] = cell.reduceMicros
			clipped[pi], rejected[pi], trimmed[pi] = cell.clipped, cell.rejected, cell.trimmed
		}
		out.Loss = append(out.Loss, loss)
		out.Accuracy = append(out.Accuracy, acc)
		out.ReduceMicros = append(out.ReduceMicros, reduceus)
		out.Clipped = append(out.Clipped, clipped)
		out.Rejected = append(out.Rejected, rejected)
		out.Trimmed = append(out.Trimmed, trimmed)
	}
	return out, nil
}

type robustCellResult struct {
	loss, accuracy float64
	reduceMicros   float64
	clipped        int
	rejected       int
	trimmed        int64
}

// robustCell trains one (fraction, policy) cell: the fedavg loop with the
// adversary corrupting its devices' data and updates, and robust.Reduce —
// the same reduce the server's Aggregator runs — replacing the plain
// weighted mean.
func robustCell(cfg RobustCostConfig, spec nn.Spec, fed *data.Federated, pol plan.RobustPolicy, adv *sim.Adversary) (robustCellResult, error) {
	var cell robustCellResult
	model, err := spec.Build()
	if err != nil {
		return cell, err
	}
	global := make(tensor.Vector, model.NumParams())
	model.ReadParams(global)
	client := fedavg.ClientConfig{BatchSize: 10, Epochs: 5, LR: 0.2, Shuffle: true}
	rng := tensor.NewRNG(cfg.Seed + 3)
	var reduceTime time.Duration
	for round := 0; round < cfg.Rounds; round++ {
		perm := rng.Perm(cfg.Users)
		k := cfg.DevicesPer
		if k > len(perm) {
			k = len(perm)
		}
		updates := make([]robust.Update, 0, k)
		for i := 0; i < k; i++ {
			dev := perm[i]
			examples := adv.CorruptExamples(dev, fed.Users[dev], cfg.Classes)
			u, err := fedavg.ClientUpdate(model, global, examples, client, rng.Derive(uint64(round)<<20|uint64(dev)))
			if err != nil {
				return cell, err
			}
			adv.CorruptUpdate(dev, u)
			updates = append(updates, robust.Update{
				Device: fmt.Sprintf("dev-%d", dev), Weight: u.Weight, Delta: u.Delta,
			})
		}
		start := time.Now()
		res := robust.Reduce(pol, len(global), updates)
		reduceTime += time.Since(start)
		cell.clipped += res.Clipped
		cell.rejected += len(res.Rejected)
		cell.trimmed += res.Trimmed
		if res.Weight <= 0 {
			continue // every update rejected: the round commits nothing
		}
		avg := res.Sum
		avg.Scale(1 / res.Weight)
		if err := fedavg.Apply(global, avg); err != nil {
			return cell, err
		}
	}
	model.WriteParams(global)
	met := model.Evaluate(fed.Test)
	cell.loss, cell.accuracy = met.Loss, met.Accuracy
	cell.reduceMicros = float64(reduceTime.Microseconds()) / float64(cfg.Rounds)
	return cell, nil
}

// Format renders the grid.
func (r *RobustCostResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Robust aggregation under %s attack (scale %g, %d rounds)\n", r.Attack, r.Scale, r.Rounds)
	fmt.Fprintf(&b, "%9s %-14s", "attack%", "policy")
	fmt.Fprintf(&b, " %9s %9s %12s %8s %8s %9s\n", "loss", "accuracy", "reduce-us/rd", "clipped", "rejected", "trimmed")
	for fi, frac := range r.Fractions {
		for pi, p := range r.Policies {
			fmt.Fprintf(&b, "%8.0f%% %-14s %9.3f %9.3f %12.1f %8d %8d %9d\n",
				100*frac, p, r.Loss[fi][pi], r.Accuracy[fi][pi], r.ReduceMicros[fi][pi],
				r.Clipped[fi][pi], r.Rejected[fi][pi], r.Trimmed[fi][pi])
		}
	}
	b.WriteString("(defenses should hold the attacked rows near the attack-free loss; the undefended column diverges)\n")
	return b.String()
}
