package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/data"
	"repro/internal/fedavg"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/population"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// WallClockResult reproduces the Sec. 8 wall-clock analysis: the Gboard
// model "converges in 3000 FL rounds … over 5 days of training (so each
// round takes about 2–3 minutes)". We couple the protocol simulation's
// round timeline with real federated training and report the analogous
// numbers at laptop scale.
type WallClockResult struct {
	TargetAccuracy  float64
	RoundsToTarget  int
	SimTimeToTarget time.Duration
	MinutesPerRound float64
	FinalAccuracy   float64
	TotalRounds     int
	SimDuration     time.Duration
}

// WallClock runs a one-day protocol simulation, then trains a real model
// through the simulated round timeline: round i of training completes at
// the simulated time round i committed.
func WallClock(seed uint64) (*WallClockResult, error) {
	const target = 20
	p, err := plan.Generate(plan.Config{
		TaskID: "pop/train", Population: "pop",
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: 16, Classes: 8, Seed: 1},
		StoreName: "s", BatchSize: 10, Epochs: 2, LearningRate: 0.1,
		TargetDevices: target, SelectionTimeout: time.Minute,
		ReportTimeout: 2 * time.Minute, MinReportFraction: 0.7,
	})
	if err != nil {
		return nil, err
	}
	duration := 24 * time.Hour
	res, err := sim.Run(sim.Config{
		Population:        population.Config{Size: 3000, Seed: seed},
		Plan:              p,
		Duration:          duration,
		PerExampleCost:    200 * time.Millisecond,
		ExamplesPerDevice: 60,
		Pipelining:        true,
		Seed:              seed + 1,
	})
	if err != nil {
		return nil, err
	}

	fed, err := data.Blobs(data.BlobsConfig{
		Users: 200, ExamplesPer: 20, Features: 16, Classes: 8,
		TestSize: 600, Skew: 1.0, Seed: seed + 2,
	})
	if err != nil {
		return nil, err
	}
	tr, err := fedavg.NewTrainer(p.Device.Model, fedavg.ClientConfig{
		BatchSize: 10, Epochs: 2, LR: 0.1, Shuffle: true,
	}, seed+3)
	if err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed + 4)

	out := &WallClockResult{TargetAccuracy: 0.9, SimDuration: duration}
	start := time.Time{}
	for _, round := range res.Rounds {
		if !round.Succeeded {
			continue
		}
		if start.IsZero() {
			start = round.Start
		}
		k := round.Completed
		if k > len(fed.Users) {
			k = len(fed.Users)
		}
		perm := rng.Perm(len(fed.Users))
		sel := make([][]nn.Example, k)
		for i := 0; i < k; i++ {
			sel[i] = fed.Users[perm[i]]
		}
		if _, err := tr.Round(sel); err != nil {
			return nil, err
		}
		out.TotalRounds++
		// Evaluate sparsely: accuracy checks are the expensive part.
		if out.RoundsToTarget == 0 && out.TotalRounds%5 == 0 {
			if tr.Evaluate(fed.Test).Accuracy >= out.TargetAccuracy {
				out.RoundsToTarget = out.TotalRounds
				out.SimTimeToTarget = round.End.Sub(start)
			}
		}
	}
	out.FinalAccuracy = tr.Evaluate(fed.Test).Accuracy
	if out.TotalRounds > 0 {
		last := res.Rounds[len(res.Rounds)-1]
		out.MinutesPerRound = last.End.Sub(start).Minutes() / float64(out.TotalRounds)
	}
	return out, nil
}

// Format renders the wall-clock summary.
func (r *WallClockResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec. 8 — Wall-clock convergence (protocol timeline × real training)\n")
	if r.RoundsToTarget > 0 {
		fmt.Fprintf(&b, "reached %.0f%% accuracy after %d rounds = %.1f simulated hours\n",
			100*r.TargetAccuracy, r.RoundsToTarget, r.SimTimeToTarget.Hours())
	} else {
		fmt.Fprintf(&b, "target %.0f%% accuracy not reached in %d rounds\n", 100*r.TargetAccuracy, r.TotalRounds)
	}
	fmt.Fprintf(&b, "%d rounds over %.0f simulated hours ≈ %.1f minutes/round (paper: ~2–3 min/round, 3000 rounds over 5 days)\n",
		r.TotalRounds, r.SimDuration.Hours(), r.MinutesPerRound)
	fmt.Fprintf(&b, "final accuracy: %.3f\n", r.FinalAccuracy)
	return b.String()
}
