package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/pacing"
	"repro/internal/tensor"
)

// PacingResult reproduces the Sec. 2.3 behaviour: for small populations
// pace steering concentrates reconnects so rounds can form; for large
// populations it spreads them to avoid the thundering herd.
type PacingResult struct {
	SmallPopulation, LargePopulation int
	// SmallConcentration is the fraction of small-population reconnects
	// landing within the first 10% of a round period (want: high).
	SmallConcentration float64
	// LargeSpreadCV is the coefficient of variation of per-minute arrival
	// counts for the large population (want: low — no herd spikes).
	LargeSpreadCV float64
	// LargePeakToMean is max/mean arrivals per minute (a herd shows as a
	// large peak).
	LargePeakToMean float64
}

// Pacing runs the steering experiment with devicesPerCase simulated
// rejected devices per regime.
func Pacing(devicesPerCase int, seed uint64) (*PacingResult, error) {
	if devicesPerCase <= 0 {
		return nil, fmt.Errorf("experiments: need positive device count")
	}
	rng := tensor.NewRNG(seed)
	period := 2 * time.Minute
	steer := pacing.New(period)
	steer.MinWait = time.Second
	epoch := steer.Epoch

	out := &PacingResult{SmallPopulation: 100, LargePopulation: 2_000_000}

	// Small population: devices rejected at uniformly random times; where
	// do their reconnects land relative to the shared round grid?
	aligned := 0
	for i := 0; i < devicesPerCase; i++ {
		now := epoch.Add(time.Duration(rng.Float64() * float64(24*time.Hour)))
		delay := steer.Suggest(out.SmallPopulation, 50, now, rng)
		offset := now.Add(delay).Sub(epoch) % period
		if offset < period/10+period/50 { // 10% window + jitter slack
			aligned++
		}
	}
	out.SmallConcentration = float64(aligned) / float64(devicesPerCase)

	// Large population: all devices rejected at the same instant (the herd
	// trigger); count arrivals per minute over the suggestion horizon.
	now := epoch
	steer.MaxWait = 1000 * time.Hour
	arrivals := make([]time.Duration, devicesPerCase)
	for i := range arrivals {
		arrivals[i] = steer.Suggest(out.LargePopulation, 300, now, rng)
	}
	sort.Slice(arrivals, func(i, j int) bool { return arrivals[i] < arrivals[j] })
	horizon := arrivals[len(arrivals)-1] + 1
	// 60 equal bins over the horizon: a herd concentrates in one bin
	// (peak/mean ≈ 60); the uniform spread gives peak/mean ≈ 1.5 (the
	// window is [0.5W, 1.5W], i.e. the top two thirds of the horizon).
	const buckets = 60
	counts := make([]float64, buckets)
	for _, a := range arrivals {
		counts[int(int64(a)*buckets/int64(horizon))]++
	}
	var sum, sumSq, max float64
	for _, c := range counts {
		sum += c
		sumSq += c * c
		if c > max {
			max = c
		}
	}
	mean := sum / float64(buckets)
	variance := sumSq/float64(buckets) - mean*mean
	if variance < 0 {
		variance = 0
	}
	if mean > 0 {
		out.LargeSpreadCV = math.Sqrt(variance) / mean
		out.LargePeakToMean = max / mean
	}
	return out, nil
}

// Format renders the two regimes.
func (r *PacingResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sec. 2.3 — Pace steering\n")
	fmt.Fprintf(&b, "small population (%d devices): %.0f%% of reconnects land in the round-start window\n",
		r.SmallPopulation, 100*r.SmallConcentration)
	fmt.Fprintf(&b, "large population (%d devices): arrivals/minute peak-to-mean %.2f, CV %.2f\n",
		r.LargePopulation, r.LargePeakToMean, r.LargeSpreadCV)
	fmt.Fprintf(&b, "(paper: small populations synchronize check-ins; large ones spread to avoid the thundering herd)\n")
	return b.String()
}
