package population

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/tensor"
)

// BenchmarkPopulationSample measures per-round device selection across
// fleet sizes. With the partial Fisher–Yates walk, cost tracks devices
// visited (≈ k / availability), not fleet size: the 10⁶ row should be no
// slower than the 10⁴ row, and B/op stays O(k) after the first call.
func BenchmarkPopulationSample(b *testing.B) {
	for _, size := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("fleet-%d", size), func(b *testing.B) {
			m, err := New(Config{Size: size, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			rng := tensor.NewRNG(2)
			at := time.Date(2019, 3, 1, 2, 0, 0, 0, time.UTC)
			// Warm the persistent index so its one-time O(fleet)
			// allocation stays out of the per-call numbers.
			m.Sample(1, at, rng)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Sample(130, at, rng)
			}
		})
	}
}

func BenchmarkAvailableProb(b *testing.B) {
	m, _ := New(Config{Size: 10, Seed: 1})
	d := &m.Devices[0]
	at := time.Date(2019, 3, 1, 14, 0, 0, 0, time.UTC)
	for i := 0; i < b.N; i++ {
		m.AvailableProb(d, at)
	}
}
