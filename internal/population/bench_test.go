package population

import (
	"testing"
	"time"

	"repro/internal/tensor"
)

func BenchmarkSample(b *testing.B) {
	m, err := New(Config{Size: 100_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	at := time.Date(2019, 3, 1, 2, 0, 0, 0, time.UTC)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Sample(130, at, rng)
	}
}

func BenchmarkAvailableProb(b *testing.B) {
	m, _ := New(Config{Size: 10, Seed: 1})
	d := &m.Devices[0]
	at := time.Date(2019, 3, 1, 14, 0, 0, 0, time.UTC)
	for i := 0; i < b.N; i++ {
		m.AvailableProb(d, at)
	}
}
