// Package population models the simulated device fleet: diurnal
// availability (devices are "more likely idle and charging at night", with
// a 4× swing between low and high participation, Sec. 9), eligibility
// churn, drop-out rates that are higher by day than by night (Fig. 7), and
// lognormal device speed heterogeneity (the stragglers of Fig. 8).
//
// Every paper figure we reproduce is driven by this model, so its
// parameters default to the paper's reported values.
package population

import (
	"fmt"
	"math"
	"time"

	"repro/internal/tensor"
)

// Device is one simulated phone.
type Device struct {
	ID int
	// Speed is a relative compute-speed multiplier (1 = median); training
	// time divides by it. Lognormal across the fleet.
	Speed float64
	// TZOffset shifts the device's local diurnal phase, modelling
	// populations that are not perfectly single-time-zone.
	TZOffset time.Duration
	// Genuine is false for the small fraction of devices that fail
	// attestation (Sec. 3, Attestation).
	Genuine bool
	// RuntimeVersion is the device's FL runtime version; old versions need
	// versioned plans (Sec. 7.3).
	RuntimeVersion int
}

// Config parametrizes the fleet. Zero values take paper-calibrated
// defaults via New.
type Config struct {
	Size int
	// PeakAvailability is the fraction of the fleet available at the
	// nightly peak.
	PeakAvailability float64
	// DiurnalRatio is the peak/trough availability ratio (paper: 4×).
	DiurnalRatio float64
	// PeakHour is the local hour of maximum availability (devices idle and
	// charging — night).
	PeakHour float64
	// NightDropout and DayDropout are per-round drop-out probabilities at
	// the trough and peak of user activity (paper: 6%–10%).
	NightDropout, DayDropout float64
	// SpeedSigma is the sigma of the lognormal speed distribution.
	SpeedSigma float64
	// TZSpread is the standard deviation of device timezone offsets
	// ("primarily comes from the same time zone", Appendix A).
	TZSpread time.Duration
	// NonGenuineFraction of devices fail attestation.
	NonGenuineFraction float64
	// OldRuntimeFraction of devices run runtime version 1 (needing
	// versioned plans); the rest run version 3.
	OldRuntimeFraction float64
	Seed               uint64
}

// Model is an instantiated fleet.
type Model struct {
	cfg     Config
	Devices []Device
	// amplitude is derived from DiurnalRatio: ratio = (1+a)/(1−a).
	amplitude float64
	// sampleIdx is Sample's persistent index permutation, allocated once:
	// per-call partial shuffles leave it a permutation, so no O(fleet)
	// allocation or re-initialization happens per round.
	sampleIdx []int
}

// New builds a fleet, applying paper defaults for zero config fields.
func New(cfg Config) (*Model, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("population: Size must be positive, got %d", cfg.Size)
	}
	if cfg.PeakAvailability == 0 {
		cfg.PeakAvailability = 0.12
	}
	if cfg.DiurnalRatio == 0 {
		cfg.DiurnalRatio = 4
	}
	if cfg.DiurnalRatio < 1 {
		return nil, fmt.Errorf("population: DiurnalRatio must be ≥ 1, got %v", cfg.DiurnalRatio)
	}
	if cfg.PeakHour == 0 {
		cfg.PeakHour = 2 // 2am local
	}
	if cfg.NightDropout == 0 {
		cfg.NightDropout = 0.06
	}
	if cfg.DayDropout == 0 {
		cfg.DayDropout = 0.10
	}
	if cfg.SpeedSigma == 0 {
		cfg.SpeedSigma = 0.35
	}
	if cfg.PeakAvailability < 0 || cfg.PeakAvailability > 1 {
		return nil, fmt.Errorf("population: PeakAvailability %v outside [0,1]", cfg.PeakAvailability)
	}

	m := &Model{cfg: cfg}
	m.amplitude = (cfg.DiurnalRatio - 1) / (cfg.DiurnalRatio + 1)

	rng := tensor.NewRNG(cfg.Seed)
	m.Devices = make([]Device, cfg.Size)
	for i := range m.Devices {
		drng := rng.Derive(uint64(i) + 17)
		version := 3
		if drng.Float64() < cfg.OldRuntimeFraction {
			version = 1
		}
		m.Devices[i] = Device{
			ID:             i,
			Speed:          drng.LogNormal(0, cfg.SpeedSigma),
			TZOffset:       time.Duration(drng.NormFloat64() * float64(cfg.TZSpread)),
			Genuine:        drng.Float64() >= cfg.NonGenuineFraction,
			RuntimeVersion: version,
		}
	}
	return m, nil
}

// Config returns the (defaulted) configuration.
func (m *Model) Config() Config { return m.cfg }

// hourOfDay returns the fractional local hour for a device at time t.
func (m *Model) hourOfDay(d *Device, t time.Time) float64 {
	local := t.Add(d.TZOffset)
	return float64(local.Hour()) + float64(local.Minute())/60 + float64(local.Second())/3600
}

// phase returns cos distance from the availability peak in [−1, 1]:
// 1 at the peak hour, −1 twelve hours away.
func (m *Model) phase(hour float64) float64 {
	return math.Cos(2 * math.Pi * (hour - m.cfg.PeakHour) / 24)
}

// AvailableProb returns the probability that the device meets the
// eligibility criteria (idle + charging + unmetered network) at time t.
func (m *Model) AvailableProb(d *Device, t time.Time) float64 {
	mean := m.cfg.PeakAvailability / (1 + m.amplitude)
	return mean * (1 + m.amplitude*m.phase(m.hourOfDay(d, t)))
}

// Availability returns the expected fraction of the fleet available at t
// (evaluated at zero timezone offset; per-device offsets average out).
func (m *Model) Availability(t time.Time) float64 {
	d := Device{}
	return m.AvailableProb(&d, t)
}

// DropoutProb returns the probability a participating device drops out of a
// round starting at t: computation errors, network failures, or eligibility
// changes. Daytime user interaction raises it (Fig. 7).
func (m *Model) DropoutProb(d *Device, t time.Time) float64 {
	// daytimeness: 0 at the availability peak (night), 1 at the trough.
	daytimeness := (1 - m.phase(m.hourOfDay(d, t))) / 2
	return m.cfg.NightDropout + (m.cfg.DayDropout-m.cfg.NightDropout)*daytimeness
}

// TrainDuration returns how long the device takes to run a training plan
// over n examples with the given per-example cost at median speed.
func (m *Model) TrainDuration(d *Device, n int, perExample time.Duration) time.Duration {
	if d.Speed <= 0 {
		return time.Duration(math.MaxInt64 / 2)
	}
	return time.Duration(float64(n) * float64(perExample) / d.Speed)
}

// Sample draws k distinct available devices at time t using per-device
// availability probabilities; it returns fewer than k when not enough
// devices are available. The rng drives both availability draws and
// selection order.
//
// The walk is a lazy partial Fisher–Yates over a persistent index slice:
// position i swaps with a uniform j ∈ [i, n), which visits devices in
// exactly the order a full rng.Perm would, but stops as soon as k available
// devices are drawn. Cost is O(devices visited), not O(fleet) — with a 10⁶
// device fleet and k ≈ 100, a round touches a few thousand entries. The
// partial shuffle leaves sampleIdx a permutation, so the next call is
// equally uniform without re-initialization. Not safe for concurrent use
// (the rng isn't either).
func (m *Model) Sample(k int, t time.Time, rng *tensor.RNG) []*Device {
	n := len(m.Devices)
	if k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	if m.sampleIdx == nil {
		m.sampleIdx = make([]int, n)
		for i := range m.sampleIdx {
			m.sampleIdx[i] = i
		}
	}
	idx := m.sampleIdx
	out := make([]*Device, 0, k)
	for i := 0; i < n && len(out) < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		d := &m.Devices[idx[i]]
		if rng.Float64() < m.AvailableProb(d, t) {
			out = append(out, d)
		}
	}
	return out
}
