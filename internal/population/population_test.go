package population

import (
	"math"
	"testing"
	"time"

	"repro/internal/tensor"
)

var noon = time.Date(2019, 3, 1, 14, 0, 0, 0, time.UTC) // 2pm: trough
var night = time.Date(2019, 3, 1, 2, 0, 0, 0, time.UTC) // 2am: peak

func fleet(t *testing.T, size int) *Model {
	t.Helper()
	m, err := New(Config{Size: size, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewDefaults(t *testing.T) {
	m := fleet(t, 100)
	cfg := m.Config()
	if cfg.DiurnalRatio != 4 || cfg.NightDropout != 0.06 || cfg.DayDropout != 0.10 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if len(m.Devices) != 100 {
		t.Fatalf("fleet size %d", len(m.Devices))
	}
}

func TestNewInvalid(t *testing.T) {
	if _, err := New(Config{Size: 0}); err == nil {
		t.Fatal("zero size must fail")
	}
	if _, err := New(Config{Size: 1, DiurnalRatio: 0.5}); err == nil {
		t.Fatal("ratio < 1 must fail")
	}
	if _, err := New(Config{Size: 1, PeakAvailability: 2}); err == nil {
		t.Fatal("availability > 1 must fail")
	}
}

func TestDiurnalSwingIs4x(t *testing.T) {
	m := fleet(t, 10)
	peak := m.Availability(night)
	trough := m.Availability(noon)
	ratio := peak / trough
	if math.Abs(ratio-4) > 0.2 {
		t.Fatalf("peak/trough = %v, want ≈ 4", ratio)
	}
	if peak <= 0 || peak > 1 || trough <= 0 {
		t.Fatalf("availabilities out of range: %v / %v", peak, trough)
	}
}

func TestAvailabilityContinuous(t *testing.T) {
	m := fleet(t, 10)
	prev := m.Availability(night)
	for h := 1; h <= 48; h++ {
		cur := m.Availability(night.Add(time.Duration(h) * time.Hour))
		if math.Abs(cur-prev) > 0.05 {
			t.Fatalf("availability jumped %v -> %v at hour %d", prev, cur, h)
		}
		prev = cur
	}
}

func TestDropoutHigherByDay(t *testing.T) {
	m := fleet(t, 10)
	d := &m.Devices[0]
	d.TZOffset = 0
	day := m.DropoutProb(d, noon)
	nite := m.DropoutProb(d, night)
	if day <= nite {
		t.Fatalf("day dropout %v should exceed night %v", day, nite)
	}
	if nite < 0.05 || day > 0.12 {
		t.Fatalf("dropout outside paper band [6%%,10%%]: night=%v day=%v", nite, day)
	}
}

func TestSpeedLognormal(t *testing.T) {
	m := fleet(t, 5000)
	var logSum, logSq float64
	for _, d := range m.Devices {
		if d.Speed <= 0 {
			t.Fatal("non-positive speed")
		}
		l := math.Log(d.Speed)
		logSum += l
		logSq += l * l
	}
	n := float64(len(m.Devices))
	mean := logSum / n
	sd := math.Sqrt(logSq/n - mean*mean)
	if math.Abs(mean) > 0.05 {
		t.Fatalf("log-speed mean %v, want ≈ 0", mean)
	}
	if math.Abs(sd-0.35) > 0.05 {
		t.Fatalf("log-speed sd %v, want ≈ 0.35", sd)
	}
}

func TestTrainDuration(t *testing.T) {
	m := fleet(t, 1)
	d := &Device{Speed: 2}
	got := m.TrainDuration(d, 100, time.Millisecond)
	if got != 50*time.Millisecond {
		t.Fatalf("TrainDuration = %v, want 50ms", got)
	}
	slow := &Device{Speed: 0}
	if m.TrainDuration(slow, 1, time.Millisecond) < time.Hour {
		t.Fatal("zero-speed device should effectively never finish")
	}
}

func TestSampleRespectsAvailability(t *testing.T) {
	m := fleet(t, 2000)
	rng := tensor.NewRNG(42)
	atNight := len(m.Sample(2000, night, rng))
	atNoon := len(m.Sample(2000, noon, rng))
	if atNight <= atNoon {
		t.Fatalf("night sample %d should exceed noon sample %d", atNight, atNoon)
	}
	// Unlimited k: counts should be near Size × availability.
	want := float64(2000) * m.Availability(night)
	if math.Abs(float64(atNight)-want) > 0.25*want {
		t.Fatalf("night sample %d, want ≈ %v", atNight, want)
	}
}

func TestSampleBoundedByK(t *testing.T) {
	m := fleet(t, 2000)
	rng := tensor.NewRNG(7)
	got := m.Sample(10, night, rng)
	if len(got) > 10 {
		t.Fatalf("sample returned %d > k", len(got))
	}
	seen := map[int]bool{}
	for _, d := range got {
		if seen[d.ID] {
			t.Fatal("duplicate device in sample")
		}
		seen[d.ID] = true
	}
}

func TestSampleScratchStaysPermutation(t *testing.T) {
	// Sample's partial shuffle mutates a persistent index in place; it must
	// remain a permutation across calls or later samples would repeat or
	// skip devices.
	m := fleet(t, 500)
	rng := tensor.NewRNG(11)
	for round := 0; round < 50; round++ {
		got := m.Sample(20, night, rng)
		seen := map[int]bool{}
		for _, d := range got {
			if seen[d.ID] {
				t.Fatalf("round %d: duplicate device %d", round, d.ID)
			}
			seen[d.ID] = true
		}
	}
	present := map[int]bool{}
	for _, v := range m.sampleIdx {
		if v < 0 || v >= 500 || present[v] {
			t.Fatalf("sampleIdx corrupted: %v at len %d", v, len(m.sampleIdx))
		}
		present[v] = true
	}
	if len(present) != 500 {
		t.Fatalf("sampleIdx lost entries: %d/500", len(present))
	}
}

func TestSampleCoversWholeFleetOverTime(t *testing.T) {
	// Selection must stay uniform call over call: across many rounds on a
	// highly available fleet, (almost) every device should be picked.
	m, err := New(Config{Size: 200, PeakAvailability: 0.9, DiurnalRatio: 1.001, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(13)
	picked := map[int]bool{}
	for round := 0; round < 200; round++ {
		for _, d := range m.Sample(20, night, rng) {
			picked[d.ID] = true
		}
	}
	if len(picked) < 190 {
		t.Fatalf("only %d/200 devices ever sampled; selection is not uniform", len(picked))
	}
}

func TestNonGenuineFraction(t *testing.T) {
	m, err := New(Config{Size: 5000, NonGenuineFraction: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bad := 0
	for _, d := range m.Devices {
		if !d.Genuine {
			bad++
		}
	}
	frac := float64(bad) / 5000
	if math.Abs(frac-0.1) > 0.02 {
		t.Fatalf("non-genuine fraction %v, want ≈ 0.1", frac)
	}
}

func TestOldRuntimeFraction(t *testing.T) {
	m, err := New(Config{Size: 5000, OldRuntimeFraction: 0.3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	old := 0
	for _, d := range m.Devices {
		switch d.RuntimeVersion {
		case 1:
			old++
		case 3:
		default:
			t.Fatalf("unexpected runtime version %d", d.RuntimeVersion)
		}
	}
	frac := float64(old) / 5000
	if math.Abs(frac-0.3) > 0.03 {
		t.Fatalf("old-runtime fraction %v, want ≈ 0.3", frac)
	}
}

func TestTZOffsetShiftsPhase(t *testing.T) {
	m := fleet(t, 1)
	d := &Device{TZOffset: 12 * time.Hour}
	// With a 12h offset, the device's peak is at our trough.
	if m.AvailableProb(d, noon) <= m.AvailableProb(d, night) {
		t.Fatal("12h-offset device should peak at our noon")
	}
}

func TestDeterministicFleet(t *testing.T) {
	a, _ := New(Config{Size: 50, Seed: 9})
	b, _ := New(Config{Size: 50, Seed: 9})
	for i := range a.Devices {
		if a.Devices[i].Speed != b.Devices[i].Speed {
			t.Fatal("same seed must give same fleet")
		}
	}
}
