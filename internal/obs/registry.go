// Package obs is the process-wide telemetry layer: a registry of atomic
// counters, gauges, and metrics.Summary-backed latency summaries, plus the
// round tracer that materializes one structured trace record per round.
//
// Instruments are cached by the call sites that sit on hot paths (the
// report loop holds *Counter pointers and does nothing but atomic adds);
// the registry lock is only taken at registration and export time. Exports
// feed three renderings of the same data: Prometheus text exposition,
// expvar-style JSON, and the live /dashboard.
//
// A registry can also hold "external" snapshots — telemetry shipped from
// other processes (shard selectors) over TelemetrySnapshot wire frames.
// Externals are merged into rendered output with an injected label
// (e.g. shard="1") but are excluded from Export, so a selector's own
// export never echoes data back and forth.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Counter is a monotonically increasing int64. All methods are lock-free.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 value that can move in either direction, stored as
// math.Float64bits in an atomic word.
type Gauge struct{ v atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(x float64) { g.v.Store(math.Float64bits(x)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.v.Load()) }

// Summary records a stream of observations (typically latencies in
// seconds) into moments plus P50/P90/P99 via the P² estimators.
type Summary struct{ s *metrics.Summary }

// Observe feeds one observation.
func (s *Summary) Observe(x float64) { s.s.Add(x) }

// ObserveDuration feeds a duration, converted to seconds.
func (s *Summary) ObserveDuration(d time.Duration) { s.s.Add(d.Seconds()) }

// Snapshot returns the current summary state.
func (s *Summary) Snapshot() metrics.Snapshot { return s.s.Snapshot() }

// summaryFields is the fixed order of Export's summary series:
// [count, mean, std, min, max, p50, p90, p99]. TelemetrySnapshot frames
// carry summaries in this order, so it is part of the wire contract.
var summaryFields = []string{"count", "mean", "std", "min", "max", "p50", "p90", "p99"}

func summaryValues(snap metrics.Snapshot) []float64 {
	return []float64{
		float64(snap.Count), snap.Mean, snap.Std,
		snap.Min, snap.Max, snap.P50, snap.P90, snap.P99,
	}
}

// Export is one process's local telemetry at a point in time, the payload
// of a TelemetrySnapshot wire frame. Summaries use summaryFields order.
type Export struct {
	Counters  map[string]int64
	Gauges    map[string]float64
	Summaries map[string][]float64
}

// Registry holds named instruments. The zero value is unusable; use
// NewRegistry or the package-level Default.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	summaries map[string]*Summary
	// externals maps an injected label (`shard="1"`) to the most recent
	// Export shipped by that peer, plus its arrival time for staleness.
	externals map[string]external
}

type external struct {
	export Export
	at     time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:  make(map[string]*Counter),
		gauges:    make(map[string]*Gauge),
		summaries: make(map[string]*Summary),
		externals: make(map[string]external),
	}
}

// Default is the process-wide registry. Library code registers against it
// so a binary gets fleet instrumentation by linking the packages, without
// plumbing a registry handle through every constructor.
var Default = NewRegistry()

// Label renders a metric name with label pairs in Prometheus form:
// Label("fl_seals_total", "shard", "1") → `fl_seals_total{shard="1"}`.
// Call it once at registration time, not per observation.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Counter returns the counter registered under name, creating it on first
// use. Hot paths should call this once and cache the pointer.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Summary returns the summary registered under name, creating it on first
// use.
func (r *Registry) Summary(name string) *Summary {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.summaries[name]
	if !ok {
		s = &Summary{s: metrics.NewSummary()}
		r.summaries[name] = s
	}
	return s
}

// Export snapshots the registry's LOCAL instruments (externals excluded —
// re-exporting a peer's data would loop it through the fleet twice).
func (r *Registry) Export() Export {
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	sums := make(map[string]*Summary, len(r.summaries))
	for name, s := range r.summaries {
		sums[name] = s
	}
	r.mu.Unlock()

	// Summary snapshots take each summary's own lock; do it outside ours.
	summaries := make(map[string][]float64, len(sums))
	for name, s := range sums {
		summaries[name] = summaryValues(s.Snapshot())
	}
	return Export{Counters: counters, Gauges: gauges, Summaries: summaries}
}

// SetExternal installs (or replaces) a peer's exported telemetry under the
// given label, e.g. SetExternal(`shard="1"`, export). Rendered series gain
// the label; Export ignores externals.
func (r *Registry) SetExternal(label string, export Export) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.externals[label] = external{export: export, at: time.Now()}
}

// injectLabel appends label to a metric name, merging with any label set
// the name already carries: ("a", `shard="1"`) → `a{shard="1"}`;
// (`a{op="x"}`, `shard="1"`) → `a{op="x",shard="1"}`.
func injectLabel(name, label string) string {
	if label == "" {
		return name
	}
	if i := strings.LastIndexByte(name, '}'); i >= 0 && strings.Contains(name, "{") {
		return name[:i] + "," + label + "}"
	}
	return name + "{" + label + "}"
}

// series is one flattened export row used by the renderers.
type series struct {
	name string
	kind byte // 'c' counter, 'g' gauge, 's' summary
	val  float64
	sum  []float64 // summary values, summaryFields order
}

// collect flattens local instruments plus all externals into sorted rows.
func (r *Registry) collect() []series {
	local := r.Export()
	r.mu.Lock()
	ext := make(map[string]Export, len(r.externals))
	for label, e := range r.externals {
		ext[label] = e.export
	}
	r.mu.Unlock()

	var rows []series
	add := func(label string, e Export) {
		for name, v := range e.Counters {
			rows = append(rows, series{name: injectLabel(name, label), kind: 'c', val: float64(v)})
		}
		for name, v := range e.Gauges {
			rows = append(rows, series{name: injectLabel(name, label), kind: 'g', val: v})
		}
		for name, v := range e.Summaries {
			if len(v) != len(summaryFields) {
				continue // malformed peer frame; drop rather than misrender
			}
			rows = append(rows, series{name: injectLabel(name, label), kind: 's', sum: v})
		}
	}
	add("", local)
	labels := make([]string, 0, len(ext))
	for label := range ext {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		add(label, ext[label])
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	return rows
}

// baseName strips a label set: `a{shard="1"}` → `a`.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// labelSet returns the braced label body, without braces: `a{x="1"}` → `x="1"`.
func labelSet(name string) string {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return ""
	}
	return strings.TrimSuffix(name[i+1:], "}")
}

// WritePrometheus renders every series (local + external) in Prometheus
// text exposition format. Summaries become quantile series plus _sum-less
// count/mean/min/max gauge series (the P² summary has no running sum of
// observations exposed per quantile window, so mean stands in).
func (r *Registry) WritePrometheus(w *strings.Builder) {
	rows := r.collect()
	typed := make(map[string]bool)
	writeType := func(family, kind string) {
		if !typed[family] {
			typed[family] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
		}
	}
	for _, row := range rows {
		family := baseName(row.name)
		switch row.kind {
		case 'c':
			writeType(family, "counter")
			fmt.Fprintf(w, "%s %v\n", row.name, row.val)
		case 'g':
			writeType(family, "gauge")
			fmt.Fprintf(w, "%s %v\n", row.name, row.val)
		case 's':
			writeType(family, "summary")
			labels := labelSet(row.name)
			quant := func(q string, v float64) {
				if labels == "" {
					fmt.Fprintf(w, "%s{quantile=%q} %v\n", family, q, v)
				} else {
					fmt.Fprintf(w, "%s{%s,quantile=%q} %v\n", family, labels, q, v)
				}
			}
			// summaryFields order: count mean std min max p50 p90 p99.
			quant("0.5", row.sum[5])
			quant("0.9", row.sum[6])
			quant("0.99", row.sum[7])
			fmt.Fprintf(w, "%s %v\n", injectLabel(family+"_count", labels), row.sum[0])
			fmt.Fprintf(w, "%s %v\n", injectLabel(family+"_sum", labels), row.sum[0]*row.sum[1])
		}
	}
}

// WriteJSON renders every series as a flat expvar-style JSON object:
// counters and gauges as numbers, summaries as field→value objects.
// Hand-rolled so NaN/Inf (possible in gauges fed from estimates) render
// as null instead of making the document unparseable.
func (r *Registry) WriteJSON(w *strings.Builder) {
	rows := r.collect()
	w.WriteByte('{')
	for i, row := range rows {
		if i > 0 {
			w.WriteByte(',')
		}
		fmt.Fprintf(w, "%q:", row.name)
		switch row.kind {
		case 'c', 'g':
			writeJSONNumber(w, row.val)
		case 's':
			w.WriteByte('{')
			for j, f := range summaryFields {
				if j > 0 {
					w.WriteByte(',')
				}
				fmt.Fprintf(w, "%q:", f)
				writeJSONNumber(w, row.sum[j])
			}
			w.WriteByte('}')
		}
	}
	w.WriteString("}\n")
}

func writeJSONNumber(w *strings.Builder, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		w.WriteString("null")
		return
	}
	fmt.Fprintf(w, "%v", v)
}
