package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

type memTraceStore struct{ traces []RoundTrace }

func (m *memTraceStore) PutRoundTrace(t RoundTrace) error {
	m.traces = append(m.traces, t)
	return nil
}

func sampleTrace() RoundTrace {
	return RoundTrace{
		Population: "gboard",
		TaskID:     "gboard/train",
		Round:      3,
		Start:      time.Unix(1700000000, 0).UTC(),
		TotalNanos: int64(2 * time.Second),
		Phases: map[string]int64{
			PhaseCheckin:      int64(100 * time.Millisecond),
			PhaseConfigure:    int64(50 * time.Millisecond),
			PhaseReportWindow: int64(1500 * time.Millisecond),
			PhaseCommit:       int64(20 * time.Millisecond),
		},
		Committed: true,
		Reports:   20,
	}
}

func TestTraceJSONLRoundTrip(t *testing.T) {
	line := sampleTrace().MarshalJSONL()
	if line[len(line)-1] != '\n' {
		t.Fatal("JSONL line must be newline-terminated")
	}
	var got RoundTrace
	if err := json.Unmarshal(line, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.TaskID != "gboard/train" || got.Round != 3 || !got.Committed {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Phases[PhaseReportWindow] != int64(1500*time.Millisecond) {
		t.Fatalf("phases lost: %+v", got.Phases)
	}
}

func TestRecordTrace(t *testing.T) {
	r := NewRegistry()
	store := &memTraceStore{}
	if err := r.RecordTrace(sampleTrace(), store); err != nil {
		t.Fatal(err)
	}
	fail := sampleTrace()
	fail.Committed = false
	fail.FailReason = "too few reports"
	if err := r.RecordTrace(fail, nil); err != nil {
		t.Fatal(err)
	}

	if len(store.traces) != 1 {
		t.Fatalf("stored %d traces, want 1 (nil store must not persist)", len(store.traces))
	}
	if got := r.Counter("fl_rounds_committed_total").Value(); got != 1 {
		t.Fatalf("committed counter = %d", got)
	}
	if got := r.Counter("fl_rounds_failed_total").Value(); got != 1 {
		t.Fatalf("failed counter = %d", got)
	}
	if got := r.Counter("fl_round_reports_total").Value(); got != 40 {
		t.Fatalf("reports counter = %d", got)
	}
	snap := r.Summary(Label("fl_round_phase_seconds", "phase", PhaseReportWindow)).Snapshot()
	if snap.Count != 2 || snap.Mean != 1.5 {
		t.Fatalf("phase summary: %+v", snap)
	}
	if snap := r.Summary("fl_round_total_seconds").Snapshot(); snap.Count != 2 {
		t.Fatalf("total summary: %+v", snap)
	}

	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `fl_round_phase_seconds{phase="report_window",quantile="0.5"}`) {
		t.Fatalf("phase series missing from /metrics:\n%s", b.String())
	}
}

func TestPhasesListCoversConstants(t *testing.T) {
	want := map[string]bool{
		PhaseCheckin: true, PhaseConfigure: true, PhaseReportWindow: true,
		PhaseEdgeAccumulate: true, PhaseSecaggAdvert: true, PhaseSecaggShare: true,
		PhaseSecaggCommit: true, PhaseSecaggUnmask: true, PhaseCommit: true,
	}
	if len(Phases) != len(want) {
		t.Fatalf("Phases has %d entries, want %d", len(Phases), len(want))
	}
	for _, p := range Phases {
		if !want[p] {
			t.Fatalf("unknown phase %q", p)
		}
	}
}
