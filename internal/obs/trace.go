package obs

import (
	"encoding/json"
	"sort"
	"time"
)

// Round lifecycle phase names, in lifecycle order. Every committed round's
// trace record carries a duration for each phase that ran; secagg phases
// appear only on secure-aggregation rounds.
const (
	PhaseCheckin        = "checkin"         // round start → device fanout complete
	PhaseConfigure      = "configure"       // plan/config push to selected devices
	PhaseReportWindow   = "report_window"   // report window open → close
	PhaseEdgeAccumulate = "edge_accumulate" // decode-and-accumulate of arriving reports
	PhaseSecaggAdvert   = "secagg_advertise"
	PhaseSecaggShare    = "secagg_share"
	PhaseSecaggCommit   = "secagg_commit"
	PhaseSecaggUnmask   = "secagg_unmask"
	PhaseCommit         = "commit" // aggregate apply + checkpoint/metrics write
)

// Phases lists every phase name in lifecycle order, for renderers and
// tests that want a stable iteration order over a trace's phase map.
var Phases = []string{
	PhaseCheckin, PhaseConfigure, PhaseReportWindow, PhaseEdgeAccumulate,
	PhaseSecaggAdvert, PhaseSecaggShare, PhaseSecaggCommit, PhaseSecaggUnmask,
	PhaseCommit,
}

// RoundTrace is the structured per-round trace record, one JSONL line per
// round, written to storage alongside checkpoints (Sec. 7.4: round-level
// summaries, never per-device logs). Durations are nanoseconds.
type RoundTrace struct {
	Population string           `json:"population,omitempty"`
	TaskID     string           `json:"task_id"`
	TaskName   string           `json:"task_name,omitempty"`
	Round      int64            `json:"round"`
	Start      time.Time        `json:"start"`
	TotalNanos int64            `json:"total_ns"`
	Phases     map[string]int64 `json:"phases_ns"`
	Committed  bool             `json:"committed"`
	Reports    int              `json:"reports"`
	Lost       int              `json:"lost,omitempty"`
	Aborted    int              `json:"aborted,omitempty"`
	Blamed     int              `json:"blamed,omitempty"`
	FailReason string           `json:"fail_reason,omitempty"`
}

// MarshalJSONL renders the trace as one newline-terminated JSON line.
func (t RoundTrace) MarshalJSONL() []byte {
	b, err := json.Marshal(t)
	if err != nil {
		// Every field is a JSON-safe scalar or map; Marshal cannot fail
		// unless the schema regresses, which the round-trip test catches.
		return []byte("{}\n")
	}
	return append(b, '\n')
}

// TraceStore is implemented by storage backends that can persist round
// traces. It is deliberately NOT part of storage.Store: trace persistence
// is optional, and test doubles that embed the Store interface keep
// compiling. Callers type-assert: `if ts, ok := store.(obs.TraceStore); ok`.
type TraceStore interface {
	PutRoundTrace(t RoundTrace) error
}

// RecordTrace folds one round's trace into the registry — per-phase
// latency summaries (fl_round_phase_seconds{phase=...}), round totals, and
// commit/fail counters — and persists it if store is non-nil. This is the
// single choke point all round completions go through, so /metrics phase
// latencies and the JSONL trace stream can never disagree.
func (r *Registry) RecordTrace(t RoundTrace, store TraceStore) error {
	phases := make([]string, 0, len(t.Phases))
	for phase := range t.Phases {
		phases = append(phases, phase)
	}
	sort.Strings(phases)
	for _, phase := range phases {
		r.Summary(Label("fl_round_phase_seconds", "phase", phase)).
			Observe(time.Duration(t.Phases[phase]).Seconds())
	}
	r.Summary("fl_round_total_seconds").Observe(time.Duration(t.TotalNanos).Seconds())
	if t.Committed {
		r.Counter("fl_rounds_committed_total").Inc()
	} else {
		r.Counter("fl_rounds_failed_total").Inc()
	}
	r.Counter("fl_round_reports_total").Add(int64(t.Reports))
	if store == nil {
		return nil
	}
	return store.PutRoundTrace(t)
}
