package obs

import (
	"fmt"
	"strings"
)

// TaskProgress is one task's lifecycle line in the operator progress view.
// It is a plain value struct so cmd binaries can fill it from either the
// fleet's tasks.Stats or the shard coordinator's view without obs
// importing those packages.
type TaskProgress struct {
	ID, Type, State               string
	RoundsCommitted, RoundsFailed int
	Devices                       int
	Note                          string
}

// PopulationProgress is one population's progress snapshot, the unit both
// flserver modes and the /dashboard route render. Exactly one of the two
// tails is shown: Sharded selects the coordinator-mode tail (shard links,
// seals, upstream bytes); otherwise the in-process selector tail
// (accepted/rejected/held) is used.
type PopulationProgress struct {
	Name              string
	Round             int64
	Completed, Failed int

	// Selector tail (single-process fleet mode).
	Accepted, Rejected, Held int64

	// Coordinator tail (sharded mode).
	Sharded       bool
	Shards        int
	Seals         int64
	BytesUpstream int64

	Tasks []TaskProgress
}

// String renders the population as the shared multi-line progress block:
// one summary line plus one indented line per task.
func (p PopulationProgress) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: round %d, %d completed, %d failed; ",
		p.Name, p.Round, p.Completed, p.Failed)
	if p.Sharded {
		fmt.Fprintf(&b, "%d shard(s) connected, %d seals / %d bytes upstream",
			p.Shards, p.Seals, p.BytesUpstream)
	} else {
		fmt.Fprintf(&b, "selector accepted=%d rejected=%d held=%d",
			p.Accepted, p.Rejected, p.Held)
	}
	for _, t := range p.Tasks {
		note := ""
		if t.Note != "" {
			note = " — " + t.Note
		}
		fmt.Fprintf(&b, "\n  task %s [%s %s]: %d committed, %d failed, %d devices%s",
			t.ID, t.Type, t.State, t.RoundsCommitted, t.RoundsFailed, t.Devices, note)
	}
	return b.String()
}

// FormatProgress renders a set of populations, one block per line group.
func FormatProgress(pops []PopulationProgress) string {
	lines := make([]string, len(pops))
	for i, p := range pops {
		lines[i] = p.String()
	}
	return strings.Join(lines, "\n")
}
