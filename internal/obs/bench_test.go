package obs

import (
	"testing"
	"time"
)

// BenchmarkTelemetryOverhead prices the instrumentation primitives the
// report hot loop and round tracer use. The contract for the hot loop is
// counter/inc only — 0 allocs/op and single-digit nanoseconds — while
// summary observation (mutex + three P² updates) is reserved for per-round
// and per-seal events. Committed as BENCH_obs.json.
func BenchmarkTelemetryOverhead(b *testing.B) {
	b.Run("counter-inc", func(b *testing.B) {
		c := Default.Counter("bench_counter_total")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter-inc-parallel", func(b *testing.B) {
		c := Default.Counter("bench_counter_par_total")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("gauge-set", func(b *testing.B) {
		g := Default.Gauge("bench_gauge")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(float64(i))
		}
	})
	b.Run("summary-observe", func(b *testing.B) {
		s := Default.Summary("bench_summary_seconds")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.Observe(float64(i&1023) / 1024)
		}
	})
	b.Run("summary-observe-duration", func(b *testing.B) {
		s := Default.Summary("bench_summary_dur_seconds")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ObserveDuration(time.Duration(i&1023) * time.Microsecond)
		}
	})
	b.Run("registry-lookup", func(b *testing.B) {
		// Priced so reviewers can see why hot paths cache the pointer
		// instead of calling Counter(name) per event.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Default.Counter("bench_lookup_total").Inc()
		}
	})
}
