package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"

	"repro/internal/analytics"
)

// HandlerOption configures the HTTP surface.
type HandlerOption func(*httpState)

type httpState struct {
	title    string
	progress func() []PopulationProgress
}

// WithTitle sets the /dashboard title.
func WithTitle(title string) HandlerOption {
	return func(h *httpState) { h.title = title }
}

// WithProgress supplies the live per-population progress snapshot rendered
// on /dashboard below the counter block.
func WithProgress(fn func() []PopulationProgress) HandlerOption {
	return func(h *httpState) { h.progress = fn }
}

// Handler returns the observability HTTP surface:
//
//	/metrics      Prometheus text exposition (local + shipped externals)
//	/debug/vars   the same series as a flat expvar-style JSON object
//	/debug/pprof  the standard net/http/pprof handlers
//	/dashboard    the analytics.Dashboard operator view from live data
func (r *Registry) Handler(opts ...HandlerOption) http.Handler {
	st := &httpState{title: "fl operator dashboard"}
	for _, opt := range opts {
		opt(st)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		r.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		r.WriteJSON(&b)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprint(w, b.String())
	})
	mux.HandleFunc("/dashboard", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, r.renderDashboard(st))
	})
	// pprof is registered explicitly on this mux (not the global
	// DefaultServeMux) so the profile surface exists only behind
	// -obs-listen, never on device- or shard-facing listeners.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// renderDashboard adapts live registry data onto the existing sim-era
// analytics.Dashboard renderer: every counter series feeds the counter
// block, fl_net_{tx,rx}_bytes_total feed the traffic line, and the
// progress callback appends per-population round state.
func (r *Registry) renderDashboard(st *httpState) string {
	counters := analytics.NewCounters()
	traffic := analytics.NewTraffic()
	for _, row := range r.collect() {
		if row.kind != 'c' {
			continue
		}
		counters.Add(row.name, int64(row.val))
		switch baseName(row.name) {
		case "fl_net_tx_bytes_total":
			traffic.AddDownload(int(row.val))
		case "fl_net_rx_bytes_total":
			traffic.AddUpload(int(row.val))
		}
	}
	d := analytics.Dashboard{Title: st.title, Counters: counters, Traffic: traffic}
	out := d.Render()
	if st.progress != nil {
		if pops := st.progress(); len(pops) > 0 {
			out += FormatProgress(pops) + "\n"
		}
	}
	return out
}

// Server is a running observability HTTP listener.
type Server struct {
	l   net.Listener
	srv *http.Server
}

// Addr returns the bound address (useful with ":0" listeners in tests).
func (s *Server) Addr() net.Addr { return s.l.Addr() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve binds addr and serves the Handler in a background goroutine. An
// empty addr is a no-op returning (nil, nil), so call sites can pass the
// -obs-listen flag value through unconditionally.
func (r *Registry) Serve(addr string, opts ...HandlerOption) (*Server, error) {
	if addr == "" {
		return nil, nil
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: r.Handler(opts...)}
	go srv.Serve(l)
	return &Server{l: l, srv: srv}, nil
}
