package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("fl_x_total")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d", c.Value())
	}
	if r.Counter("fl_x_total") != c {
		t.Fatal("Counter not idempotent per name")
	}
	g := r.Gauge("fl_rate")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	s := r.Summary("fl_lat_seconds")
	s.Observe(1)
	s.Observe(3)
	if snap := s.Snapshot(); snap.Count != 2 || snap.Mean != 2 {
		t.Fatalf("summary snapshot: %+v", snap)
	}
}

func TestLabel(t *testing.T) {
	if got := Label("fl_seals_total"); got != "fl_seals_total" {
		t.Fatalf("no-label: %q", got)
	}
	if got := Label("fl_seals_total", "shard", "1"); got != `fl_seals_total{shard="1"}` {
		t.Fatalf("one label: %q", got)
	}
	if got := Label("a", "x", "1", "y", "z"); got != `a{x="1",y="z"}` {
		t.Fatalf("two labels: %q", got)
	}
}

func TestInjectLabel(t *testing.T) {
	if got := injectLabel("a", `shard="1"`); got != `a{shard="1"}` {
		t.Fatalf("plain: %q", got)
	}
	if got := injectLabel(`a{op="x"}`, `shard="1"`); got != `a{op="x",shard="1"}` {
		t.Fatalf("pre-labeled: %q", got)
	}
	if got := injectLabel("a", ""); got != "a" {
		t.Fatalf("empty label: %q", got)
	}
}

func TestExportExcludesExternals(t *testing.T) {
	r := NewRegistry()
	r.Counter("fl_local_total").Add(7)
	r.SetExternal(`shard="1"`, Export{Counters: map[string]int64{"fl_remote_total": 9}})
	e := r.Export()
	if e.Counters["fl_local_total"] != 7 {
		t.Fatalf("local counter missing: %+v", e.Counters)
	}
	for name := range e.Counters {
		if strings.Contains(name, "remote") || strings.Contains(name, "shard") {
			t.Fatalf("external leaked into export: %q", name)
		}
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("fl_reports_total").Add(3)
	r.Gauge("fl_checkin_rate").Set(12.5)
	sum := r.Summary("fl_seal_seconds")
	for i := 1; i <= 100; i++ {
		sum.Observe(float64(i) / 100)
	}
	r.SetExternal(`shard="2"`, Export{
		Counters:  map[string]int64{"fl_reports_total": 11},
		Summaries: map[string][]float64{"fl_seal_seconds": {4, 0.5, 0.1, 0.2, 0.9, 0.5, 0.8, 0.9}},
	})

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE fl_reports_total counter",
		"fl_reports_total 3",
		`fl_reports_total{shard="2"} 11`,
		"# TYPE fl_checkin_rate gauge",
		"fl_checkin_rate 12.5",
		"# TYPE fl_seal_seconds summary",
		`fl_seal_seconds{quantile="0.5"}`,
		`fl_seal_seconds{quantile="0.99"}`,
		`fl_seal_seconds{shard="2",quantile="0.9"} 0.8`,
		"fl_seal_seconds_count 100",
		`fl_seal_seconds_count{shard="2"} 4`,
		`fl_seal_seconds_sum{shard="2"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// A # TYPE line must appear once per family even with external series.
	if n := strings.Count(out, "# TYPE fl_reports_total counter"); n != 1 {
		t.Errorf("TYPE line repeated %d times", n)
	}
}

func TestJSONRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("fl_a_total").Add(2)
	r.Gauge("fl_nan").Set(math.NaN())
	r.Summary("fl_lat").Observe(1.5)

	var b strings.Builder
	r.WriteJSON(&b)
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("output not valid JSON: %v\n%s", err, b.String())
	}
	if doc["fl_a_total"] != 2.0 {
		t.Fatalf("counter: %v", doc["fl_a_total"])
	}
	if doc["fl_nan"] != nil {
		t.Fatalf("NaN gauge should render null, got %v", doc["fl_nan"])
	}
	lat, ok := doc["fl_lat"].(map[string]any)
	if !ok || lat["count"] != 1.0 || lat["mean"] != 1.5 {
		t.Fatalf("summary object: %v", doc["fl_lat"])
	}
}

func TestMalformedExternalSummaryDropped(t *testing.T) {
	r := NewRegistry()
	r.SetExternal(`shard="9"`, Export{Summaries: map[string][]float64{"fl_bad": {1, 2}}})
	var b strings.Builder
	r.WritePrometheus(&b)
	if strings.Contains(b.String(), "fl_bad") {
		t.Fatalf("short summary vector should be dropped:\n%s", b.String())
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("fl_hot_total")
			s := r.Summary("fl_hot_seconds")
			for i := 0; i < 500; i++ {
				c.Inc()
				r.Gauge("fl_hot_gauge").Set(float64(i))
				s.Observe(float64(i))
				if i%100 == 0 {
					r.Export()
				}
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("fl_hot_total").Value(); got != 4000 {
		t.Fatalf("counter = %d, want 4000", got)
	}
}
