package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHTTPSurface(t *testing.T) {
	r := NewRegistry()
	r.Counter("fl_reports_total").Add(5)
	r.Counter("fl_net_tx_bytes_total").Add(1 << 20)
	r.Counter("fl_net_rx_bytes_total").Add(2 << 20)
	progress := []PopulationProgress{{
		Name: "gboard", Round: 4, Completed: 3, Failed: 1,
		Sharded: true, Shards: 2, Seals: 6, BytesUpstream: 123,
		Tasks: []TaskProgress{{ID: "gboard/train", Type: "train", State: "live", RoundsCommitted: 3}},
	}}
	srv := httptest.NewServer(r.Handler(
		WithTitle("test fleet"),
		WithProgress(func() []PopulationProgress { return progress }),
	))
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != 200 || !strings.Contains(body, "fl_reports_total 5") {
		t.Fatalf("/metrics: %d\n%s", code, body)
	}

	code, body = get(t, srv, "/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars: %d", code)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if doc["fl_reports_total"] != 5.0 {
		t.Fatalf("/debug/vars: %v", doc)
	}

	code, body = get(t, srv, "/dashboard")
	if code != 200 {
		t.Fatalf("/dashboard: %d", code)
	}
	for _, want := range []string{
		"=== test fleet ===",
		"fl_reports_total",
		"traffic: 1.0 MB down / 2.1 MB up",
		"gboard: round 4, 3 completed, 1 failed; 2 shard(s) connected, 6 seals / 123 bytes upstream",
		"task gboard/train [train live]: 3 committed, 0 failed, 0 devices",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/dashboard missing %q\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d\n%s", code, body)
	}
}

func TestServeEmptyAddrNoop(t *testing.T) {
	r := NewRegistry()
	srv, err := r.Serve("")
	if srv != nil || err != nil {
		t.Fatalf("empty addr: %v %v", srv, err)
	}
}

func TestServeAndClose(t *testing.T) {
	r := NewRegistry()
	r.Counter("fl_up").Inc()
	srv, err := r.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "fl_up 1") {
		t.Fatalf("served metrics: %s", body)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
