package tools

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/plan"
)

func baseConfig() plan.Config {
	return plan.Config{
		TaskID:        "pop/task",
		Population:    "pop",
		Model:         nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName:     "proxy",
		BatchSize:     10,
		Epochs:        2,
		LearningRate:  0.1,
		TargetDevices: 100,
	}
}

func proxyData(t *testing.T) []nn.Example {
	t.Helper()
	f, err := data.Blobs(data.BlobsConfig{Users: 1, ExamplesPer: 200, Features: 4, Classes: 3, TestSize: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return f.Users[0]
}

func lossBelow(threshold float64) Predicate {
	return Predicate{
		Name: fmt.Sprintf("train_loss<%v", threshold),
		Check: func(m map[string]float64) error {
			if loss, ok := m["train_loss"]; !ok || loss >= threshold {
				return fmt.Errorf("train_loss %v not below %v", m["train_loss"], threshold)
			}
			return nil
		},
	}
}

func TestNewTask(t *testing.T) {
	task, err := NewTask(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if task.Plan.ID != "pop/task" || len(task.SupportedVersions) != 1 {
		t.Fatalf("task: %+v", task)
	}
	bad := baseConfig()
	bad.TargetDevices = 0
	if _, err := NewTask(bad); err == nil {
		t.Fatal("invalid config must fail")
	}
}

func TestGridSearch(t *testing.T) {
	tasks, err := GridSearch(baseConfig(), []float64{0.01, 0.1, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("grid size = %d", len(tasks))
	}
	seen := map[string]bool{}
	for _, task := range tasks {
		if seen[task.Plan.ID] {
			t.Fatalf("duplicate task id %q", task.Plan.ID)
		}
		seen[task.Plan.ID] = true
	}
	if tasks[1].Plan.Device.LearningRate != 0.1 {
		t.Fatalf("lr not applied: %v", tasks[1].Plan.Device.LearningRate)
	}
	if _, err := GridSearch(baseConfig(), nil); err == nil {
		t.Fatal("empty grid must fail")
	}
}

func TestSimulateProducesMetrics(t *testing.T) {
	task, _ := NewTask(baseConfig())
	report, err := Simulate(task, proxyData(t), task.Plan.Device.MinRuntimeVersion)
	if err != nil {
		t.Fatal(err)
	}
	if report.Metrics["num_examples"] != 200 {
		t.Fatalf("metrics: %+v", report.Metrics)
	}
	if report.NumParams <= 0 {
		t.Fatal("missing param count")
	}
}

func TestValidateRequiresPredicates(t *testing.T) {
	task, _ := NewTask(baseConfig())
	if _, err := Validate(task, proxyData(t), DefaultPolicy); err == nil {
		t.Fatal("task without predicates must not validate")
	}
}

func TestValidatePredicatePassAndFail(t *testing.T) {
	task, _ := NewTask(baseConfig())
	task.Predicates = []Predicate{lossBelow(10)}
	if _, err := Validate(task, proxyData(t), DefaultPolicy); err != nil {
		t.Fatalf("reasonable predicate should pass: %v", err)
	}
	task.Predicates = []Predicate{lossBelow(0.0000001)}
	if _, err := Validate(task, proxyData(t), DefaultPolicy); err == nil {
		t.Fatal("impossible predicate must fail")
	}
}

func TestValidateResourcePolicy(t *testing.T) {
	task, _ := NewTask(baseConfig())
	task.Predicates = []Predicate{lossBelow(10)}
	tight := Policy{MaxModelParams: 3}
	if _, err := Validate(task, proxyData(t), tight); err == nil {
		t.Fatal("param policy must reject the model")
	}
	slow := Policy{MaxTrainTime: time.Nanosecond}
	if _, err := Validate(task, proxyData(t), slow); err == nil {
		t.Fatal("time policy must reject the run")
	}
}

func TestDeployGates(t *testing.T) {
	proxy := proxyData(t)
	d := NewDeployment(DefaultPolicy)

	task, _ := NewTask(baseConfig())
	task.Predicates = []Predicate{lossBelow(10)}

	// Gate 1: review.
	if err := d.Deploy(task, proxy); err == nil {
		t.Fatal("unreviewed task must not deploy")
	}
	task.Reviewed = true
	if err := d.Deploy(task, proxy); err != nil {
		t.Fatal(err)
	}
	if len(d.Tasks("pop")) != 1 {
		t.Fatal("task not registered")
	}
}

func TestDeployVersionMatrix(t *testing.T) {
	// A fused-ops task claiming to support version 1 must pass through the
	// plan rewrite during release testing.
	proxy := proxyData(t)
	cfg := baseConfig()
	cfg.UseFusedOps = true
	task, err := NewTask(cfg)
	if err != nil {
		t.Fatal(err)
	}
	task.Reviewed = true
	task.Predicates = []Predicate{lossBelow(10)}
	task.SupportedVersions = []int{1, 3}

	d := NewDeployment(DefaultPolicy)
	if err := d.Deploy(task, proxy); err != nil {
		t.Fatalf("versioned release testing failed: %v", err)
	}

	// Devices on both runtime versions get a servable plan.
	for _, v := range []int{1, 3} {
		p, err := d.PlanFor("pop", v)
		if err != nil {
			t.Fatalf("PlanFor(%d): %v", v, err)
		}
		if p.Device.MinRuntimeVersion > v {
			t.Fatalf("served plan requires %d > device %d", p.Device.MinRuntimeVersion, v)
		}
	}
}

func TestPlanForUnknownPopulation(t *testing.T) {
	d := NewDeployment(DefaultPolicy)
	if _, err := d.PlanFor("ghost", 3); err == nil {
		t.Fatal("unknown population must fail")
	}
}

func TestDeployVersionImpossible(t *testing.T) {
	proxy := proxyData(t)
	cfg := baseConfig()
	cfg.UseFusedOps = true
	task, _ := NewTask(cfg)
	task.Reviewed = true
	task.Predicates = []Predicate{lossBelow(10)}
	task.SupportedVersions = []int{0} // nothing runs at version 0

	d := NewDeployment(DefaultPolicy)
	if err := d.Deploy(task, proxy); err == nil {
		t.Fatal("unservable version claim must fail deployment")
	}
}
