// Package tools implements the model engineer workflow of Sec. 7: defining
// FL tasks from a model plus configuration, validating them against proxy
// data with test predicates (the "unit tests" every task needs before
// deployment), grid-search task groups, and the versioning/testing/release
// gates of Sec. 7.3 — a task is deployable only if it is code-reviewed, its
// predicates pass in simulation, its resource usage is within policy, and
// its plan passes on every supported runtime version.
package tools

import (
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/device"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// Predicate is an engineer-provided test expectation evaluated against the
// metrics of a simulated run ("FL tasks are validated against
// engineer-provided test data and expectations, similar in nature to unit
// tests").
type Predicate struct {
	Name  string
	Check func(metrics map[string]float64) error
}

// Task is an FL task as the engineer sees it: a plan plus its tests and
// review status.
type Task struct {
	Plan       *plan.Plan
	Predicates []Predicate
	// Reviewed records that the task "has been built from auditable, peer
	// reviewed code".
	Reviewed bool
	// SupportedVersions lists every runtime version the task claims to
	// support; release testing runs the plan on each.
	SupportedVersions []int
}

// NewTask generates a task from engineer configuration.
func NewTask(cfg plan.Config) (*Task, error) {
	p, err := plan.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Task{Plan: p, SupportedVersions: []int{p.Device.MinRuntimeVersion}}, nil
}

// GridSearch builds a task group sweeping the learning rate ("FL tasks may
// be defined in groups: for example, to evaluate a grid search over
// learning rates").
func GridSearch(base plan.Config, lrs []float64) ([]*Task, error) {
	if len(lrs) == 0 {
		return nil, fmt.Errorf("tools: empty grid")
	}
	out := make([]*Task, 0, len(lrs))
	for _, lr := range lrs {
		cfg := base
		cfg.LearningRate = lr
		cfg.TaskID = fmt.Sprintf("%s/lr=%g", base.TaskID, lr)
		t, err := NewTask(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Policy bounds the resources a task may consume ("the resources consumed
// during testing must be within a safe range of expected resources for the
// target population").
type Policy struct {
	MaxModelParams int
	MaxTrainTime   time.Duration
}

// DefaultPolicy matches a low-end phone budget.
var DefaultPolicy = Policy{MaxModelParams: 5_000_000, MaxTrainTime: 30 * time.Second}

// SimReport is the outcome of one simulated execution.
type SimReport struct {
	Metrics   map[string]float64
	TrainTime time.Duration
	NumParams int
}

// Simulate executes the task's plan on a simulated device loaded with proxy
// data (Sec. 7.1), for the given runtime version, and returns the report.
func Simulate(task *Task, proxy []nn.Example, runtimeVersion int) (*SimReport, error) {
	vp, err := task.Plan.ForVersion(runtimeVersion)
	if err != nil {
		return nil, err
	}
	store, err := device.NewMemStore(vp.Device.Selection.StoreName, len(proxy)+1, 0)
	if err != nil {
		return nil, err
	}
	now := time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, ex := range proxy {
		store.Add(ex, now)
	}
	rt := device.NewRuntime("sim-device", runtimeVersion, nil, 42)
	if err := rt.RegisterStore(store); err != nil {
		return nil, err
	}

	m, err := vp.Device.Model.Build()
	if err != nil {
		return nil, err
	}
	params := make(tensor.Vector, m.NumParams())
	m.ReadParams(params)
	global := &checkpoint.Checkpoint{TaskName: vp.ID, Round: 0, Params: params}

	start := time.Now()
	res, err := rt.Execute(vp, global, now)
	elapsed := time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("tools: simulated execution: %w", err)
	}
	if res.Interrupted {
		return nil, fmt.Errorf("tools: simulated execution interrupted")
	}
	return &SimReport{Metrics: res.Metrics, TrainTime: elapsed, NumParams: m.NumParams()}, nil
}

// Validate runs the task's predicates against a simulated execution on
// proxy data and checks the resource policy.
func Validate(task *Task, proxy []nn.Example, policy Policy) (*SimReport, error) {
	if len(task.Predicates) == 0 {
		return nil, fmt.Errorf("tools: task %q has no test predicates (required for deployment)", task.Plan.ID)
	}
	report, err := Simulate(task, proxy, task.Plan.Device.MinRuntimeVersion)
	if err != nil {
		return nil, err
	}
	for _, p := range task.Predicates {
		if err := p.Check(report.Metrics); err != nil {
			return report, fmt.Errorf("tools: predicate %q failed: %w", p.Name, err)
		}
	}
	if policy.MaxModelParams > 0 && report.NumParams > policy.MaxModelParams {
		return report, fmt.Errorf("tools: model has %d params, policy allows %d", report.NumParams, policy.MaxModelParams)
	}
	if policy.MaxTrainTime > 0 && report.TrainTime > policy.MaxTrainTime {
		return report, fmt.Errorf("tools: training took %v, policy allows %v", report.TrainTime, policy.MaxTrainTime)
	}
	return report, nil
}

// Deployment is the release registry: deployed tasks per population, served
// to devices as versioned plans.
type Deployment struct {
	policy Policy
	tasks  map[string][]*Task // population -> tasks
}

// NewDeployment returns an empty registry with the given policy.
func NewDeployment(policy Policy) *Deployment {
	return &Deployment{policy: policy, tasks: make(map[string][]*Task)}
}

// Deploy applies the Sec. 7.3 gates and registers the task on success:
// peer review, passing predicates on proxy data, resource policy, and the
// plan passing on every supported runtime version.
func (d *Deployment) Deploy(task *Task, proxy []nn.Example) error {
	if !task.Reviewed {
		return fmt.Errorf("tools: task %q is not peer reviewed", task.Plan.ID)
	}
	if _, err := Validate(task, proxy, d.policy); err != nil {
		return err
	}
	for _, v := range task.SupportedVersions {
		report, err := Simulate(task, proxy, v)
		if err != nil {
			return fmt.Errorf("tools: task %q fails on runtime version %d: %w", task.Plan.ID, v, err)
		}
		// Versioned and unversioned plans must be semantically equivalent:
		// the same predicates must pass.
		for _, p := range task.Predicates {
			if err := p.Check(report.Metrics); err != nil {
				return fmt.Errorf("tools: predicate %q fails on version %d: %w", p.Name, v, err)
			}
		}
	}
	d.tasks[task.Plan.Population] = append(d.tasks[task.Plan.Population], task)
	return nil
}

// Tasks returns the deployed tasks for a population.
func (d *Deployment) Tasks(population string) []*Task {
	return append([]*Task(nil), d.tasks[population]...)
}

// PlanFor serves the appropriate versioned plan to a checking-in device
// ("devices checking in may be served the appropriate (versioned) plan").
func (d *Deployment) PlanFor(population string, runtimeVersion int) (*plan.Plan, error) {
	for _, t := range d.tasks[population] {
		if vp, err := t.Plan.ForVersion(runtimeVersion); err == nil {
			return vp, nil
		}
	}
	return nil, fmt.Errorf("tools: no deployed task for population %q runnable at version %d", population, runtimeVersion)
}
