package sim

import (
	"fmt"

	"repro/internal/fedavg"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// AttackKind enumerates the adversary models the robust-aggregation
// experiments inject, following the poisoning taxonomy of the FL security
// literature (arXiv 1912.04977 §5, arXiv 2012.06810):
//
//   - label flipping: data poisoning — the compromised device trains
//     honestly but on examples whose labels were rewritten, so its update
//     is plausible in scale yet steers the model toward misclassification.
//   - scaled update: model poisoning — the device trains honestly and then
//     multiplies its update, out-shouting the cohort in the weighted mean
//     (the attack norm bounding neutralizes).
//   - byzantine collusion: every compromised device abandons its data and
//     submits the SAME seeded malicious direction, so the colluders form a
//     coherent bloc per coordinate (the attack order statistics resist
//     only while the colluding fraction stays below the trim).
type AttackKind int

const (
	AttackNone AttackKind = iota
	AttackLabelFlip
	AttackScaledUpdate
	AttackByzantine
)

// String names the attack for experiment tables.
func (k AttackKind) String() string {
	switch k {
	case AttackNone:
		return "none"
	case AttackLabelFlip:
		return "label_flip"
	case AttackScaledUpdate:
		return "scaled_update"
	case AttackByzantine:
		return "byzantine"
	default:
		return fmt.Sprintf("attack(%d)", int(k))
	}
}

// AdversaryConfig sizes an attack on a device population.
type AdversaryConfig struct {
	Kind AttackKind
	// Fraction of the population that is compromised, in [0, 1). Which
	// devices are compromised is a stable seeded draw: the same devices
	// attack every round, as a real compromise would.
	Fraction float64
	// Scale multiplies the scaled-update attack's delta, and sets the
	// per-example-average norm of the byzantine direction. Defaults to -10
	// (a sign-flipped, amplified push away from the honest gradient).
	Scale float64
	Seed  uint64
}

// Adversary is a stable assignment of compromised devices plus the
// corruption each applies. The zero Adversary (or Kind AttackNone)
// compromises nobody, so honest baselines run through the same code path.
type Adversary struct {
	cfg         AdversaryConfig
	compromised map[int]bool
	rng         *tensor.RNG
	// direction is the colluders' shared unit vector, built lazily at the
	// first byzantine corruption (the model dimension is not known sooner).
	direction tensor.Vector
}

// NewAdversary draws the compromised set: a seeded permutation of the
// population with the first ⌊Fraction·population⌋ indices compromised.
func NewAdversary(cfg AdversaryConfig, population int) *Adversary {
	if cfg.Scale == 0 {
		cfg.Scale = -10
	}
	a := &Adversary{cfg: cfg, compromised: make(map[int]bool), rng: tensor.NewRNG(cfg.Seed ^ 0xADBE)}
	if cfg.Kind == AttackNone || cfg.Fraction <= 0 || population <= 0 {
		return a
	}
	k := int(cfg.Fraction * float64(population))
	for _, i := range a.rng.Perm(population)[:k] {
		a.compromised[i] = true
	}
	return a
}

// Compromised reports whether device index i is under the adversary's
// control.
func (a *Adversary) Compromised(i int) bool { return a.compromised[i] }

// Count is the number of compromised devices in the population.
func (a *Adversary) Count() int { return len(a.compromised) }

// CorruptExamples applies the data-poisoning half of the attack: for a
// compromised device under label flipping it returns a copy of the
// examples with every class label rotated to the next class (mod classes);
// otherwise it returns the input untouched. The rotation (rather than a
// random flip) makes the poison coherent across colluding devices.
func (a *Adversary) CorruptExamples(device int, examples []nn.Example, classes int) []nn.Example {
	if a.cfg.Kind != AttackLabelFlip || !a.compromised[device] || classes < 2 {
		return examples
	}
	out := make([]nn.Example, len(examples))
	for i, ex := range examples {
		ex.Y = (ex.Y + 1) % classes
		out[i] = ex
	}
	return out
}

// CorruptUpdate applies the model-poisoning half of the attack in place,
// after local training and before the update is reported:
//
//   - scaled update: Delta ← Scale·Delta.
//   - byzantine: Delta ← |Scale|·Weight·d for the shared unit direction d,
//     so every colluder reports a per-example average of norm |Scale|
//     pointing the same way.
//
// Returns true when the update was corrupted.
func (a *Adversary) CorruptUpdate(device int, u *fedavg.Update) bool {
	if !a.compromised[device] {
		return false
	}
	switch a.cfg.Kind {
	case AttackScaledUpdate:
		u.Delta.Scale(a.cfg.Scale)
		return true
	case AttackByzantine:
		dir := a.sharedDirection(len(u.Delta))
		scale := a.cfg.Scale
		if scale < 0 {
			scale = -scale
		}
		for j := range u.Delta {
			u.Delta[j] = scale * u.Weight * dir[j]
		}
		return true
	default:
		return false
	}
}

func (a *Adversary) sharedDirection(dim int) tensor.Vector {
	if len(a.direction) == dim {
		return a.direction
	}
	d := make(tensor.Vector, dim)
	rng := tensor.NewRNG(a.cfg.Seed ^ 0xB12A)
	rng.FillNormal(d, 1)
	if n := d.Norm2(); n > 0 {
		d.Scale(1 / n)
	}
	a.direction = d
	return a.direction
}
