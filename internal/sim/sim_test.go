package sim

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/population"
)

func simPlan(t *testing.T, target int) *plan.Plan {
	t.Helper()
	p, err := plan.Generate(plan.Config{
		TaskID:            "pop/train",
		Population:        "pop",
		Model:             nn.Spec{Kind: nn.KindMLP, Features: 20, Hidden: 32, Classes: 5, Seed: 1},
		StoreName:         "s",
		BatchSize:         10,
		Epochs:            1,
		LearningRate:      0.1,
		TargetDevices:     target,
		SelectionTimeout:  time.Minute,
		ReportTimeout:     2 * time.Minute,
		MinReportFraction: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run3Days(t *testing.T, popSize, target int) *Results {
	t.Helper()
	res, err := Run(Config{
		Population:        population.Config{Size: popSize, Seed: 3},
		Plan:              simPlan(t, target),
		Duration:          72 * time.Hour,
		PerExampleCost:    200 * time.Millisecond,
		ExamplesPerDevice: 100,
		Seed:              7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("nil plan must fail")
	}
	if _, err := Run(Config{Plan: simPlan(t, 10)}); err == nil {
		t.Fatal("zero duration must fail")
	}
}

func TestSimulationProducesRounds(t *testing.T) {
	res := run3Days(t, 5000, 100)
	if res.CompletedRounds() < 100 {
		t.Fatalf("3 days should give many rounds, got %d", res.CompletedRounds())
	}
	if res.FinalRound != int64(res.CompletedRounds()) {
		t.Fatalf("round counter %d != completed %d", res.FinalRound, res.CompletedRounds())
	}
	if len(res.Samples) < 70 {
		t.Fatalf("expected ~72 hourly samples, got %d", len(res.Samples))
	}
}

func TestDiurnalParticipationOscillates(t *testing.T) {
	// Fig. 6: participation and completion rate oscillate with the day.
	res := run3Days(t, 3000, 200)
	// Aggregate by hour-of-day.
	byHour := map[int][]float64{}
	for _, s := range res.Samples {
		h := s.T.Hour()
		byHour[h] = append(byHour[h], float64(s.Participating+s.Waiting))
	}
	mean := func(xs []float64) float64 {
		var sum float64
		for _, x := range xs {
			sum += x
		}
		return sum / float64(len(xs))
	}
	night := mean(append(byHour[1], byHour[2]...)) // availability peak
	day := mean(append(byHour[13], byHour[14]...)) // trough
	if night <= day {
		t.Fatalf("connected devices at night (%v) should exceed day (%v)", night, day)
	}
	if night/day < 2 {
		t.Fatalf("diurnal swing %vx, want clearly > 2x (paper: 4x)", night/day)
	}
}

func TestDropoutHigherByDay(t *testing.T) {
	// Fig. 7: per-round drop-out is higher during daytime.
	res := run3Days(t, 5000, 100)
	dayDrop, dayN := 0, 0
	nightDrop, nightN := 0, 0
	for _, r := range res.Rounds {
		if !r.Succeeded || r.Selected == 0 {
			continue
		}
		h := r.Start.Hour()
		switch {
		case h >= 12 && h < 18:
			dayDrop += r.Dropped
			dayN += r.Selected
		case h < 6:
			nightDrop += r.Dropped
			nightN += r.Selected
		}
	}
	if dayN == 0 || nightN == 0 {
		t.Fatal("no rounds in one of the windows")
	}
	dayRate := float64(dayDrop) / float64(dayN)
	nightRate := float64(nightDrop) / float64(nightN)
	if dayRate <= nightRate {
		t.Fatalf("day drop rate %v should exceed night %v", dayRate, nightRate)
	}
	// Paper band: 6%–10%.
	if nightRate < 0.03 || dayRate > 0.15 {
		t.Fatalf("drop rates outside plausible band: night %v day %v", nightRate, dayRate)
	}
}

func TestOverSelectionAbsorbsDropout(t *testing.T) {
	// With 130% over-selection and 6–10% drop-out, rounds overwhelmingly
	// succeed with the full target count (Sec. 9).
	res := run3Days(t, 5000, 100)
	full := 0
	succeeded := 0
	for _, r := range res.Rounds {
		if r.Succeeded {
			succeeded++
			if r.Completed >= 100 {
				full++
			}
		}
	}
	if succeeded == 0 {
		t.Fatal("no successful rounds")
	}
	if frac := float64(full) / float64(succeeded); frac < 0.9 {
		t.Fatalf("only %v of rounds reached the full target", frac)
	}
}

func TestParticipationCapped(t *testing.T) {
	// Fig. 8: device participation time is capped by the server.
	res := run3Days(t, 5000, 100)
	cap := simPlan(t, 100).Server.ParticipationCap.Seconds()
	if res.ParticipationSummary.Max > cap+1e-9 {
		t.Fatalf("participation %vs exceeds cap %vs", res.ParticipationSummary.Max, cap)
	}
	// Round run time ≈ the long tail of participation time (the round
	// commits when the K-th device reports).
	if res.RunTimeSummary.P50 <= res.ParticipationSummary.P50/4 {
		t.Fatalf("round time P50 %v implausibly small vs participation P50 %v",
			res.RunTimeSummary.P50, res.ParticipationSummary.P50)
	}
}

func TestTrafficAsymmetry(t *testing.T) {
	// Fig. 9: download from server dominates upload.
	res := run3Days(t, 5000, 100)
	down, up := res.Traffic.Totals()
	if down <= up {
		t.Fatalf("download %d should exceed upload %d", down, up)
	}
	ratio := float64(down) / float64(up)
	if ratio < 2 {
		t.Fatalf("download/upload ratio %v, want ≥ 2 (plan+model down, compressed update up)", ratio)
	}
}

func TestSessionShapeDistribution(t *testing.T) {
	// Table 1: successful sessions dominate, then rejected uploads, then
	// interruptions.
	res := run3Days(t, 5000, 100)
	dist := res.Shapes.Distribution()
	if len(dist) == 0 {
		t.Fatal("no sessions observed")
	}
	if dist[0].Shape != "-v[]+^" {
		t.Fatalf("most common shape = %q, want -v[]+^ (dist %+v)", dist[0].Shape, dist)
	}
	if dist[0].Percent < 60 {
		t.Fatalf("success rate %v%%, want the large majority (paper: 75%%)", dist[0].Percent)
	}
	var rejected, interrupted float64
	for _, d := range dist {
		if strings.HasSuffix(d.Shape, "#") {
			rejected += d.Percent
		}
		if strings.HasSuffix(d.Shape, "!") {
			interrupted += d.Percent
		}
	}
	if rejected <= 0 || interrupted <= 0 {
		t.Fatalf("expected both rejected and interrupted sessions: %+v", dist)
	}
	if interrupted >= dist[0].Percent {
		t.Fatal("interruption should be a minority outcome")
	}
}

func TestSmallPopulationRoundsFailSometimes(t *testing.T) {
	// A tiny population cannot always assemble 100 devices.
	res, err := Run(Config{
		Population: population.Config{Size: 150, Seed: 3},
		Plan:       simPlan(t, 100),
		Duration:   24 * time.Hour,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	failed := len(res.Rounds) - res.CompletedRounds()
	if failed == 0 {
		t.Fatal("a 150-device population should fail some 100-device rounds")
	}
}

func TestPipeliningIncreasesRoundRate(t *testing.T) {
	// Sec. 4.3 ablation: overlapping selection with reporting increases
	// rounds per hour.
	base := Config{
		Population:        population.Config{Size: 5000, Seed: 3},
		Plan:              simPlan(t, 100),
		Duration:          24 * time.Hour,
		PerExampleCost:    500 * time.Millisecond,
		ExamplesPerDevice: 200,
		Seed:              7,
	}
	seq, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	piped := base
	piped.Pipelining = true
	pip, err := Run(piped)
	if err != nil {
		t.Fatal(err)
	}
	if pip.CompletedRounds() <= seq.CompletedRounds() {
		t.Fatalf("pipelining should increase rounds: %d vs %d",
			pip.CompletedRounds(), seq.CompletedRounds())
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	a := run3Days(t, 1000, 50)
	b := run3Days(t, 1000, 50)
	if a.CompletedRounds() != b.CompletedRounds() || len(a.Rounds) != len(b.Rounds) {
		t.Fatal("same seed must reproduce the simulation")
	}
	da, _ := a.Traffic.Totals()
	db, _ := b.Traffic.Totals()
	if da != db {
		t.Fatal("traffic must be deterministic")
	}
}

func TestCompletionRateTracksAvailability(t *testing.T) {
	// Fig. 6 bottom: round completion rate oscillates in sync with device
	// availability. Correlate the hourly series.
	res := run3Days(t, 2500, 150)
	var av, cr []float64
	for _, s := range res.Samples {
		av = append(av, s.Available)
		cr = append(cr, float64(s.CompletionRate))
	}
	if corr := pearson(av, cr); corr < 0.3 {
		t.Fatalf("completion rate should correlate with availability, r=%v", corr)
	}
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb, saa, sbb, sab float64
	for i := range a {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	num := sab - sa*sb/n
	den := math.Sqrt((saa - sa*sa/n) * (sbb - sb*sb/n))
	if den == 0 {
		return 0
	}
	return num / den
}

func TestAdaptiveWindowIncreasesRoundRate(t *testing.T) {
	// Sec. 11 extension: a statically configured report window wastes time
	// whenever a round cannot reach its goal count — the server waits out
	// the whole window before committing a partial round. Tuning the window
	// to the observed reporting-time distribution cuts that wait. Scenario:
	// a generous 10-minute static window plus drop-out heavy enough that
	// rounds routinely miss the goal count.
	p, err := plan.Generate(plan.Config{
		TaskID: "pop/train", Population: "pop",
		Model:     nn.Spec{Kind: nn.KindMLP, Features: 20, Hidden: 32, Classes: 5, Seed: 1},
		StoreName: "s", BatchSize: 10, Epochs: 1, LearningRate: 0.1,
		TargetDevices: 100, SelectionTimeout: time.Minute,
		ReportTimeout: 10 * time.Minute, MinReportFraction: 0.6,
	})
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Population: population.Config{
			Size: 5000, SpeedSigma: 0.5, Seed: 3,
			NightDropout: 0.30, DayDropout: 0.35,
		},
		Plan:              p,
		Duration:          24 * time.Hour,
		PerExampleCost:    800 * time.Millisecond,
		ExamplesPerDevice: 120,
		Seed:              7,
	}
	static, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	adaptiveCfg := base
	adaptiveCfg.AdaptiveWindow = true
	adaptive, err := Run(adaptiveCfg)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.CompletedRounds() <= static.CompletedRounds() {
		t.Fatalf("adaptive window should increase rounds: %d vs %d",
			adaptive.CompletedRounds(), static.CompletedRounds())
	}
	staticRate := float64(static.CompletedRounds()) / float64(len(static.Rounds))
	adaptiveRate := float64(adaptive.CompletedRounds()) / float64(len(adaptive.Rounds))
	if adaptiveRate < staticRate*0.9 {
		t.Fatalf("adaptive window collapsed success rate: %v vs %v", adaptiveRate, staticRate)
	}
}
