package sim

import (
	"testing"

	"repro/internal/secagg"
	"repro/internal/tensor"
)

func TestSecAggChurnRespectsSurvivalBudget(t *testing.T) {
	rng := tensor.NewRNG(7)
	for _, tc := range []struct{ n, t int }{{8, 5}, {16, 9}, {64, 33}} {
		for _, rate := range []float64{0, 0.1, 0.5, 1.0} {
			s := SecAggChurn(tc.n, tc.t, ChurnConfig{DropRate: rate, PoisonRate: rate / 4}, rng)
			if c := Casualties(s); c > tc.n-tc.t {
				t.Fatalf("n=%d t=%d rate=%v: %d casualties exceed budget %d", tc.n, tc.t, rate, c, tc.n-tc.t)
			}
		}
	}
}

func TestSecAggChurnDeterministicPerSeed(t *testing.T) {
	draw := func() secagg.Schedule {
		return SecAggChurn(32, 17, ChurnConfig{DropRate: 0.3, PoisonRate: 0.05, ForgeRate: 0.05}, tensor.NewRNG(42))
	}
	a, b := draw(), draw()
	if Casualties(a) != Casualties(b) || len(a.PoisonShare) != len(b.PoisonShare) {
		t.Fatalf("same seed must draw the same schedule: %+v vs %+v", a, b)
	}
	if Casualties(a) == 0 {
		t.Fatal("30% churn over 32 devices should hit someone")
	}
}

// TestSecAggChurnScheduleIsSurvivable closes the loop: any drawn schedule
// runs through the real protocol and commits.
func TestSecAggChurnScheduleIsSurvivable(t *testing.T) {
	rng := tensor.NewRNG(11)
	cfg := secagg.Config{N: 16, T: 9, VectorLen: 4}
	inputs := make(map[int][]float64, cfg.N)
	for id := 1; id <= cfg.N; id++ {
		inputs[id] = []float64{float64(id), 1, 2, 3}
	}
	for trial := 0; trial < 5; trial++ {
		sched := SecAggChurn(cfg.N, cfg.T, ChurnConfig{DropRate: 0.4, PoisonRate: 0.1, ForgeRate: 0.1}, rng)
		res, err := secagg.RunSchedule(cfg, inputs, sched)
		if err != nil {
			t.Fatalf("trial %d schedule %+v must commit: %v", trial, sched, err)
		}
		if len(res.Survivors) < cfg.T {
			t.Fatalf("trial %d: %d survivors < T", trial, len(res.Survivors))
		}
	}
}
