// Package sim is the discrete-event simulation harness behind the paper's
// operational figures (Figs. 5–9, Table 1). It wires the population model
// (diurnal availability, drop-out, device speed), the FL plan's round
// parameters (goal counts, over-selection, timeouts, straggler cap), pace
// steering, and the analytics layer, then runs simulated days in
// milliseconds. Model training is optional: the operational figures depend
// on protocol dynamics, not on gradient values, so by default rounds move
// synthetic checkpoints; the convergence experiments use fedavg.Trainer
// directly instead.
package sim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/analytics"
	"repro/internal/checkpoint"
	"repro/internal/metrics"
	"repro/internal/plan"
	"repro/internal/population"
	"repro/internal/simclock"
	"repro/internal/tensor"
)

// Config configures one simulation run.
type Config struct {
	Population population.Config
	Plan       *plan.Plan
	// Duration is the simulated wall-clock span (e.g. 72h for Fig. 6).
	Duration time.Duration
	// Start is the simulated start time.
	Start time.Time
	// PerExampleCost is the median device's training cost per example.
	PerExampleCost time.Duration
	// ExamplesPerDevice is the local dataset size used for timing and
	// update weights.
	ExamplesPerDevice int
	// RoundPause separates a round's commit from the next selection phase
	// (0 = back-to-back; the Selector pipelining of Sec. 4.3 is modelled by
	// starting selection in parallel with reporting when Pipelining is on).
	RoundPause time.Duration
	// Pipelining runs the next round's selection during the current round's
	// reporting phase (Sec. 4.3).
	Pipelining bool
	// AdaptiveWindow implements the Sec. 11 future-work item: instead of a
	// statically configured reporting window, the server tunes the window
	// to the observed distribution of device reporting times (1.1 × P90,
	// clamped to [SelectionTimeout, ReportTimeout]), cutting the time spent
	// waiting for stragglers and increasing round frequency.
	AdaptiveWindow bool
	// SampleEvery is the cadence of the availability/participation sampler
	// (default 1h).
	SampleEvery time.Duration
	Seed        uint64
}

// RoundStats records one attempted round.
type RoundStats struct {
	Round     int64
	Start     time.Time
	End       time.Time
	Succeeded bool
	Selected  int
	Completed int
	Aborted   int
	Dropped   int // lost to drop-out / eligibility change
	Late      int // reported after the window closed ('#')
	// RunTime is the selection-to-commit duration.
	RunTime time.Duration
	// ParticipationTimes are per-device times from acceptance to the end of
	// their involvement (capped by the server, Fig. 8).
	ParticipationTimes []time.Duration
}

// Sample is one sampler observation (Fig. 6 top panel).
type Sample struct {
	T time.Time
	// Available is the expected fraction of the fleet that is eligible.
	Available float64
	// Participating is the number of devices inside an active round.
	Participating int
	// Waiting approximates devices connected but not selected.
	Waiting int
	// CompletionRate is rounds committed in the last sample window.
	CompletionRate int
	// FailureRate is rounds abandoned in the last sample window.
	FailureRate int
}

// Results aggregates everything the experiments need.
type Results struct {
	Rounds  []RoundStats
	Samples []Sample
	Shapes  *analytics.ShapeCounter
	Traffic *analytics.Traffic
	// RunTimeSummary and ParticipationSummary are the Fig. 8 distributions.
	RunTimeSummary       metrics.Snapshot
	ParticipationSummary metrics.Snapshot
	// FinalRound is the last committed round number.
	FinalRound int64
}

// CompletedRounds counts successful rounds.
func (r *Results) CompletedRounds() int {
	n := 0
	for _, rs := range r.Rounds {
		if rs.Succeeded {
			n++
		}
	}
	return n
}

// sim is the running state.
type sim struct {
	cfg   Config
	clock *simclock.Clock
	pop   *population.Model
	rng   *tensor.RNG

	shapes  *analytics.ShapeCounter
	traffic *analytics.Traffic
	runSum  *metrics.Summary
	partSum *metrics.Summary
	rounds  []RoundStats
	samples []Sample
	round   int64

	participating       int
	completedThisSample int
	failedThisSample    int

	// finishP90 tracks the distribution of device reporting times for the
	// adaptive window.
	finishP90 *metrics.Quantile

	planWire int
	ckptWire int
	updWire  int
}

// Run executes the simulation and returns its results.
func Run(cfg Config) (*Results, error) {
	if cfg.Plan == nil {
		return nil, fmt.Errorf("sim: Plan is required")
	}
	if err := cfg.Plan.Validate(); err != nil {
		return nil, err
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("sim: non-positive duration")
	}
	if cfg.Start.IsZero() {
		cfg.Start = time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC)
	}
	if cfg.PerExampleCost == 0 {
		cfg.PerExampleCost = 200 * time.Millisecond
	}
	if cfg.ExamplesPerDevice == 0 {
		cfg.ExamplesPerDevice = 100
	}
	if cfg.SampleEvery == 0 {
		cfg.SampleEvery = time.Hour
	}
	pop, err := population.New(cfg.Population)
	if err != nil {
		return nil, err
	}

	// Wire sizes for the Fig. 9 traffic asymmetry: plan + full checkpoint
	// go down; a (compressible) update comes up.
	m, err := cfg.Plan.Device.Model.Build()
	if err != nil {
		return nil, err
	}
	dim := m.NumParams()
	ck := &checkpoint.Checkpoint{TaskName: cfg.Plan.ID, Params: make(tensor.Vector, dim)}

	p90, err := metrics.NewQuantile(0.9)
	if err != nil {
		return nil, err
	}
	s := &sim{
		cfg:       cfg,
		clock:     simclock.New(cfg.Start),
		pop:       pop,
		rng:       tensor.NewRNG(cfg.Seed),
		shapes:    analytics.NewShapeCounter(),
		traffic:   analytics.NewTraffic(),
		runSum:    metrics.NewSummary(),
		partSum:   metrics.NewSummary(),
		finishP90: p90,
		planWire:  cfg.Plan.WireSize(),
		ckptWire:  ck.WireSize(checkpoint.EncodingFloat64),
		updWire:   ck.WireSize(cfg.Plan.UplinkEncoding()),
	}

	end := cfg.Start.Add(cfg.Duration)
	s.clock.Schedule(0, func() { s.startRound(end) })
	s.clock.Schedule(cfg.SampleEvery, func() { s.sample(end) })
	s.clock.RunUntil(end)

	return &Results{
		Rounds:               s.rounds,
		Samples:              s.samples,
		Shapes:               s.shapes,
		Traffic:              s.traffic,
		RunTimeSummary:       s.runSum.Snapshot(),
		ParticipationSummary: s.partSum.Snapshot(),
		FinalRound:           s.round,
	}, nil
}

// sample records the Fig. 6 style observation and reschedules itself.
func (s *sim) sample(end time.Time) {
	now := s.clock.Now()
	avail := s.pop.Availability(now)
	// Waiting devices: the connected-but-not-selected pool. Pace steering
	// keeps the connected pool proportional to availability.
	connected := int(0.25 * avail * float64(len(s.pop.Devices)))
	waiting := connected - s.participating
	if waiting < 0 {
		waiting = 0
	}
	s.samples = append(s.samples, Sample{
		T:              now,
		Available:      avail,
		Participating:  s.participating,
		Waiting:        waiting,
		CompletionRate: s.completedThisSample,
		FailureRate:    s.failedThisSample,
	})
	s.completedThisSample, s.failedThisSample = 0, 0
	if now.Add(s.cfg.SampleEvery).Before(end) {
		s.clock.Schedule(s.cfg.SampleEvery, func() { s.sample(end) })
	}
}

// deviceRun is one selected device's simulated fate.
type deviceRun struct {
	dev      *population.Device
	dropped  bool
	dropAt   time.Duration // offset from round start when it dropped
	finishAt time.Duration // offset when its report would arrive
}

// startRound simulates one complete round attempt, then schedules the next.
func (s *sim) startRound(end time.Time) {
	now := s.clock.Now()
	if !now.Before(end) {
		return
	}
	sp := s.cfg.Plan.Server
	target := sp.SelectTarget()

	// Selection phase: sample available devices. The selection window
	// bounds how long we wait for the goal count; with a large fleet the
	// pool fills instantly, with a small one availability limits it.
	selected := s.pop.Sample(target, now, s.rng)
	selDur := time.Duration(float64(sp.SelectionTimeout) * 0.1)
	if len(selected) < target {
		selDur = sp.SelectionTimeout
	}

	if len(selected) < sp.MinReports() {
		// Abandoned round: not enough devices checked in.
		s.failedThisSample++
		s.rounds = append(s.rounds, RoundStats{
			Round: s.round, Start: now, End: now.Add(selDur),
			Succeeded: false, Selected: len(selected),
		})
		s.clock.Schedule(selDur+s.retryPause(), func() { s.startRound(end) })
		return
	}

	// Configuration + Reporting: compute each device's fate.
	runs := make([]deviceRun, len(selected))
	for i, dev := range selected {
		r := deviceRun{dev: dev}
		trainTime := s.pop.TrainDuration(dev, s.cfg.ExamplesPerDevice, s.cfg.PerExampleCost)
		// Network overhead: download + upload latencies folded into a small
		// constant plus jitter.
		netTime := time.Duration((1 + s.rng.Float64()) * float64(5*time.Second))
		r.finishAt = trainTime + netTime
		if s.rng.Float64() < s.pop.DropoutProb(dev, now) {
			r.dropped = true
			// Drop-out happens somewhere inside the device's run.
			r.dropAt = time.Duration(s.rng.Float64() * float64(r.finishAt))
		}
		runs[i] = r
	}

	// The round commits when the K-th successful report arrives (or the
	// window closes). Sort successful finishers by finish time.
	finish := make([]time.Duration, 0, len(runs))
	for _, r := range runs {
		if !r.dropped {
			finish = append(finish, r.finishAt)
			s.finishP90.Add(r.finishAt.Seconds())
		}
	}
	sort.Slice(finish, func(i, j int) bool { return finish[i] < finish[j] })

	window := sp.ReportTimeout
	if s.cfg.AdaptiveWindow && s.finishP90.Count() >= 50 {
		adaptive := time.Duration(1.1 * s.finishP90.Value() * float64(time.Second))
		if adaptive < sp.SelectionTimeout {
			adaptive = sp.SelectionTimeout
		}
		if adaptive < window {
			window = adaptive
		}
	}
	var commitAt time.Duration
	completed := 0
	switch {
	case len(finish) >= sp.TargetDevices && finish[sp.TargetDevices-1] <= window:
		commitAt = finish[sp.TargetDevices-1]
		completed = sp.TargetDevices
	default:
		// Window closes; count reports that made it.
		for _, f := range finish {
			if f <= window {
				completed++
			}
		}
		commitAt = window
	}

	succeeded := completed >= sp.MinReports()
	stats := RoundStats{
		Round: s.round, Start: now, Succeeded: succeeded,
		Selected: len(runs), Completed: 0,
	}

	// Classify every selected device and log its session shape.
	reported := 0
	for _, r := range runs {
		s.traffic.AddDownload(s.planWire + s.ckptWire)
		session := &analytics.Session{}
		session.Log(analytics.StateCheckin)
		session.Log(analytics.StateDownloadedPlan)
		session.Log(analytics.StateTrainStarted)
		part := r.finishAt
		switch {
		case r.dropped:
			session.Log(analytics.StateInterrupted)
			stats.Dropped++
			part = r.dropAt
		case r.finishAt <= commitAt && reported < completed:
			session.Log(analytics.StateTrainCompleted)
			session.Log(analytics.StateUploadStarted)
			session.Log(analytics.StateUploadDone)
			s.traffic.AddUpload(s.updWire)
			stats.Completed++
			reported++
		case r.finishAt <= window:
			// Finished inside the window but after the round committed:
			// over-selected, upload rejected.
			session.Log(analytics.StateTrainCompleted)
			session.Log(analytics.StateUploadStarted)
			session.Log(analytics.StateUploadRejected)
			s.traffic.AddUpload(s.updWire)
			stats.Aborted++
			part = commitAt
		default:
			// Straggler past the cap: server cut it off ('#' after the
			// window; participation capped, Fig. 8).
			session.Log(analytics.StateTrainCompleted)
			session.Log(analytics.StateUploadStarted)
			session.Log(analytics.StateUploadRejected)
			stats.Late++
			part = window
		}
		if part > sp.ParticipationCap {
			part = sp.ParticipationCap
		}
		s.shapes.Observe(session.Shape())
		s.partSum.Add(part.Seconds())
		stats.ParticipationTimes = append(stats.ParticipationTimes, part)
	}

	roundTime := selDur + commitAt
	stats.RunTime = roundTime
	stats.End = now.Add(roundTime)
	if succeeded {
		s.round++
		s.completedThisSample++
		s.runSum.Add(roundTime.Seconds())
	} else {
		s.failedThisSample++
	}
	s.rounds = append(s.rounds, stats)

	// Track participation for the sampler while the round is in flight.
	s.participating += len(runs)
	s.clock.Schedule(roundTime, func() { s.participating -= len(runs) })

	next := roundTime + s.retryPause()
	if s.cfg.Pipelining {
		// Selection for round i+1 overlaps Configuration/Reporting of round
		// i (Sec. 4.3): the effective cadence is max(selection, reporting)
		// instead of their sum.
		next = roundTime - selDur
		if next < selDur {
			next = selDur
		}
		next += s.retryPause()
	}
	s.clock.Schedule(next, func() { s.startRound(end) })
}

func (s *sim) retryPause() time.Duration {
	if s.cfg.RoundPause > 0 {
		return s.cfg.RoundPause
	}
	return time.Second
}
