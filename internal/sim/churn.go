package sim

import (
	"repro/internal/secagg"
	"repro/internal/tensor"
)

// ChurnConfig parameterizes fleet churn and adversarial behaviour for one
// Secure Aggregation group. Rates are per-device probabilities.
type ChurnConfig struct {
	// DropRate is the probability a device vanishes mid-protocol; the
	// phase boundary at which it drops is drawn uniformly over the four
	// protocol boundaries (before advertising, during share keys, before
	// its masked input, before its unmask response).
	DropRate float64
	// PoisonRate is the probability a device deals share bundles
	// inconsistent with its broadcast commitments (a poisoned-share
	// cohort): holders complain and the device is excluded before masking.
	PoisonRate float64
	// ForgeRate is the probability a surviving device answers the unmask
	// round with forged shares: the server rejects and blames it.
	ForgeRate float64
}

// SecAggChurn draws a dropout/adversary schedule for a group of n devices
// (ids 1..n) with Shamir threshold t. Every drop, poisoned dealer, and
// forged responder removes at most one contribution from the final unmask
// round, so the draw caps their total at n − t: the schedule is always
// survivable and the group commits. Rates high enough to exceed the cap
// are truncated, device order randomized by the draw itself (earlier ids
// are not favoured: each device rolls independently until the budget is
// spent).
func SecAggChurn(n, t int, cfg ChurnConfig, rng *tensor.RNG) secagg.Schedule {
	var sched secagg.Schedule
	budget := n - t
	phases := []*[]int{
		&sched.DropAdvertise,
		&sched.DropShareKeys,
		&sched.DropAfterShare,
		&sched.DropAfterMask,
	}
	for id := 1; id <= n && budget > 0; id++ {
		switch r := rng.Float64(); {
		case r < cfg.DropRate:
			p := phases[rng.Intn(len(phases))]
			*p = append(*p, id)
			budget--
		case r < cfg.DropRate+cfg.PoisonRate:
			sched.PoisonShare = append(sched.PoisonShare, id)
			budget--
		case r < cfg.DropRate+cfg.PoisonRate+cfg.ForgeRate:
			sched.ForgeUnmask = append(sched.ForgeUnmask, id)
			budget--
		}
	}
	return sched
}

// Casualties returns how many devices the schedule removes from the final
// unmask round.
func Casualties(s secagg.Schedule) int {
	return len(s.DropAdvertise) + len(s.DropShareKeys) + len(s.DropAfterShare) +
		len(s.DropAfterMask) + len(s.PoisonShare) + len(s.ForgeUnmask)
}
