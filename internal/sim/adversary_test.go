package sim

import (
	"math"
	"testing"

	"repro/internal/fedavg"
	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestAdversaryStableAssignment(t *testing.T) {
	cfg := AdversaryConfig{Kind: AttackScaledUpdate, Fraction: 0.25, Seed: 7}
	a := NewAdversary(cfg, 40)
	b := NewAdversary(cfg, 40)
	if a.Count() != 10 {
		t.Fatalf("Count = %d, want 10 (25%% of 40)", a.Count())
	}
	for i := 0; i < 40; i++ {
		if a.Compromised(i) != b.Compromised(i) {
			t.Fatalf("assignment not stable at device %d", i)
		}
	}
	honest := NewAdversary(AdversaryConfig{Kind: AttackNone, Fraction: 0.5, Seed: 7}, 40)
	if honest.Count() != 0 {
		t.Fatalf("AttackNone compromised %d devices", honest.Count())
	}
}

func TestCorruptExamplesLabelFlip(t *testing.T) {
	a := NewAdversary(AdversaryConfig{Kind: AttackLabelFlip, Fraction: 1, Seed: 3}, 4)
	in := []nn.Example{{X: []float64{1}, Y: 0}, {X: []float64{2}, Y: 2}}
	out := a.CorruptExamples(1, in, 3)
	if in[0].Y != 0 || in[1].Y != 2 {
		t.Fatal("CorruptExamples mutated its input")
	}
	if out[0].Y != 1 || out[1].Y != 0 {
		t.Fatalf("labels not rotated mod classes: got %d, %d", out[0].Y, out[1].Y)
	}
	// A scaled-update adversary leaves data alone.
	s := NewAdversary(AdversaryConfig{Kind: AttackScaledUpdate, Fraction: 1, Seed: 3}, 4)
	if got := s.CorruptExamples(1, in, 3); &got[0] != &in[0] {
		t.Fatal("non-label-flip attack should pass examples through")
	}
}

func TestCorruptUpdateScaled(t *testing.T) {
	a := NewAdversary(AdversaryConfig{Kind: AttackScaledUpdate, Fraction: 1, Scale: -5, Seed: 1}, 2)
	u := &fedavg.Update{Delta: tensor.Vector{1, -2, 3}, Weight: 4}
	if !a.CorruptUpdate(0, u) {
		t.Fatal("compromised device not corrupted")
	}
	want := tensor.Vector{-5, 10, -15}
	for j := range want {
		if u.Delta[j] != want[j] {
			t.Fatalf("Delta[%d] = %v, want %v", j, u.Delta[j], want[j])
		}
	}
	if u.Weight != 4 {
		t.Fatalf("Weight changed to %v", u.Weight)
	}
	none := NewAdversary(AdversaryConfig{Kind: AttackScaledUpdate, Fraction: 0, Scale: -5, Seed: 1}, 2)
	v := &fedavg.Update{Delta: tensor.Vector{1, 1}, Weight: 1}
	if none.CorruptUpdate(0, v) || v.Delta[0] != 1 {
		t.Fatal("honest device corrupted")
	}
}

func TestCorruptUpdateByzantineColludes(t *testing.T) {
	a := NewAdversary(AdversaryConfig{Kind: AttackByzantine, Fraction: 1, Scale: -3, Seed: 9}, 2)
	u0 := &fedavg.Update{Delta: tensor.Vector{1, 2, 3, 4}, Weight: 2}
	u1 := &fedavg.Update{Delta: tensor.Vector{-9, 0, 1, 7}, Weight: 5}
	if !a.CorruptUpdate(0, u0) || !a.CorruptUpdate(1, u1) {
		t.Fatal("colluders not corrupted")
	}
	// Both colluders report the same per-example-average direction with
	// norm |Scale|, regardless of weight or honest training outcome.
	for j := range u0.Delta {
		avg0 := u0.Delta[j] / u0.Weight
		avg1 := u1.Delta[j] / u1.Weight
		if math.Abs(avg0-avg1) > 1e-12 {
			t.Fatalf("colluders disagree at coordinate %d: %v vs %v", j, avg0, avg1)
		}
	}
	norm := 0.0
	for j := range u0.Delta {
		v := u0.Delta[j] / u0.Weight
		norm += v * v
	}
	if norm = math.Sqrt(norm); math.Abs(norm-3) > 1e-9 {
		t.Fatalf("byzantine per-example-average norm = %v, want 3", norm)
	}
}
