package pacing

import (
	"time"

	"repro/internal/obs"
)

// obsEstimate mirrors the live population estimate on /metrics.
var obsEstimate = obs.Default.Gauge("fl_population_estimate")

// RateSample is one source's observed check-in arrivals since its previous
// sample. A source is one Selector actor in the single-process deployment,
// or one selector shard process in the sharded deployment — the tracker
// does not care, it just needs a stable key per sample stream.
type RateSample struct {
	// Source identifies the sample stream (selector name or shard id).
	Source string
	// Count arrivals were observed over Elapsed.
	Count   int64
	Elapsed time.Duration
	// Demand is the selection demand the source most recently steered
	// devices with.
	Demand int
}

// RateTracker aggregates check-in rate samples across many sources into a
// live population estimate: devices reconnect about once per steering
// MeanWait (evaluated at the static estimate they were steered with), so a
// fleet-wide arrival rate λ implies a population of roughly λ × MeanWait;
// an EWMA smooths sampling noise. Only the LATEST sample per source is
// folded — rates sum across the layer, and the demand is the max of the
// current samples (a historical maximum would bias MeanWait low forever
// after one high-demand task).
//
// The tracker is not goroutine-safe: it is owned by a single coordinator
// actor (or the shard coordinator's loop) and fed from its mailbox.
type RateTracker struct {
	steering *Steering
	static   int
	estimate float64
	samples  map[string]RateSample
}

// NewRateTracker returns a tracker seeded at the static configuration
// estimate, which also anchors every MeanWait evaluation (the sources steer
// devices with the static estimate, so inverting their observed rates must
// use the same value).
func NewRateTracker(st *Steering, staticEstimate int) *RateTracker {
	if staticEstimate <= 0 {
		staticEstimate = 1
	}
	return &RateTracker{
		steering: st,
		static:   staticEstimate,
		estimate: float64(staticEstimate),
		samples:  make(map[string]RateSample),
	}
}

// Fold records one source's latest sample and returns the refreshed
// estimate. Samples with non-positive Elapsed are ignored.
func (t *RateTracker) Fold(s RateSample, now time.Time) int {
	if t.steering == nil || s.Elapsed <= 0 {
		return t.Estimate()
	}
	t.samples[s.Source] = s
	var rate float64
	demand := 0
	for _, cur := range t.samples {
		rate += float64(cur.Count) / cur.Elapsed.Seconds()
		if cur.Demand > demand {
			demand = cur.Demand
		}
	}
	mean := t.steering.MeanWait(t.static, demand, now)
	raw := rate * mean.Seconds()
	if raw > 1e9 {
		raw = 1e9
	}
	t.estimate = 0.5*t.estimate + 0.5*raw
	est := t.Estimate()
	obsEstimate.Set(float64(est))
	return est
}

// Forget drops a source's sample (a shard that disconnected stops counting
// toward the fleet-wide rate at the next fold).
func (t *RateTracker) Forget(source string) {
	delete(t.samples, source)
}

// Estimate returns the current live population estimate, clamped to ≥ 1.
func (t *RateTracker) Estimate() int {
	est := int(t.estimate)
	if est < 1 {
		est = 1
	}
	return est
}

// Sources returns how many sample streams are currently folded in.
func (t *RateTracker) Sources() int { return len(t.samples) }
