// Package pacing implements pace steering (Sec. 2.3): the flow-control
// mechanism by which the server suggests to each device the optimum time
// window to reconnect. It is stateless and probabilistic — the server keeps
// no per-device state and needs no extra communication.
//
// Two regimes:
//
//   - Small FL populations: reconnect suggestions are aligned to a shared
//     round cadence so that "subsequent checkins are likely to arrive
//     contemporaneously" — otherwise a population of 50 devices trickling
//     in at random times would never assemble a round (and Secure
//     Aggregation would never reach its threshold).
//
//   - Large FL populations: suggestions are spread uniformly over a window
//     sized so the expected check-in rate just covers task demand, avoiding
//     the thundering herd and telling devices to connect "as frequently as
//     needed to run all scheduled FL tasks, but not more".
//
// A diurnal load factor adjusts window lengths through the day (Sec. 2.3,
// last paragraph).
package pacing

import (
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// obsSuggestions counts pace-steering reconnect hints handed to devices —
// one per rejected or steered check-in across the whole process.
var obsSuggestions = obs.Default.Counter("fl_pace_suggestions_total")

// Steering computes reconnect windows. The zero value is not usable; use
// New for defaults.
type Steering struct {
	// RoundPeriod is the target cadence of rounds for this population.
	RoundPeriod time.Duration
	// SmallThreshold is the population size below which the synchronizing
	// regime is used.
	SmallThreshold int
	// MinWait and MaxWait clamp every suggestion.
	MinWait, MaxWait time.Duration
	// Overprovision is the factor by which expected check-ins exceed
	// demand, to cover dropout and rejection (≥ 1).
	Overprovision float64
	// LoadFactor, if non-nil, returns the relative desirability of load at
	// a given time in (0, ∞): > 1 lengthens windows (push work away from
	// this time), < 1 shortens them. Used for diurnal shaping.
	LoadFactor func(time.Time) float64
	// Epoch anchors the shared round grid for the synchronizing regime.
	Epoch time.Time
}

// New returns a Steering with the defaults used throughout the experiments.
func New(roundPeriod time.Duration) *Steering {
	return &Steering{
		RoundPeriod:    roundPeriod,
		SmallThreshold: 1000,
		MinWait:        roundPeriod / 4,
		MaxWait:        6 * time.Hour,
		Overprovision:  2,
		Epoch:          time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC),
	}
}

// Suggest returns the delay after which a device should reconnect.
// population is the estimated number of active devices; demand is the
// number of participants needed per round.
func (s *Steering) Suggest(population, demand int, now time.Time, rng *tensor.RNG) time.Duration {
	if population < 1 {
		population = 1
	}
	if demand < 1 {
		demand = 1
	}
	obsSuggestions.Inc()
	var d time.Duration
	if population <= s.SmallThreshold {
		d = s.suggestSync(now, rng)
	} else {
		d = s.suggestSpread(population, demand, now, rng)
	}
	return s.clamp(d, now)
}

// MeanWait returns the expected value of the delay Suggest would draw for
// the given population estimate and demand, after the same clamping (the
// diurnal LoadFactor applies too, since devices were steered under it).
// The live population estimator inverts it: devices reconnect about once
// per MeanWait, so an observed check-in rate λ implies a population of
// roughly λ × MeanWait.
func (s *Steering) MeanWait(population, demand int, now time.Time) time.Duration {
	if population < 1 {
		population = 1
	}
	if demand < 1 {
		demand = 1
	}
	var d time.Duration
	if population <= s.SmallThreshold {
		// untilNext is uniform over (0, period] (mean period/2) and the
		// jitter uniform over the first 10% of the round (mean 5%).
		d = time.Duration(0.55 * float64(s.RoundPeriod))
	} else {
		// suggestSpread draws uniformly from [0.5·W, 1.5·W]: mean W.
		d = time.Duration(float64(population) * float64(s.RoundPeriod) / (s.Overprovision * float64(demand)))
	}
	return s.clamp(d, now)
}

// suggestSync aligns reconnects to the next shared round boundary plus a
// small jitter, so rejected devices come back together.
func (s *Steering) suggestSync(now time.Time, rng *tensor.RNG) time.Duration {
	period := s.RoundPeriod
	elapsed := now.Sub(s.Epoch) % period
	if elapsed < 0 {
		elapsed += period
	}
	untilNext := period - elapsed
	// Jitter within the first 10% of the round keeps check-ins
	// contemporaneous without being simultaneous.
	jitter := time.Duration(rng.Float64() * 0.1 * float64(period))
	return untilNext + jitter
}

// suggestSpread draws uniformly from a window sized so that expected
// arrivals per round period ≈ Overprovision × demand.
func (s *Steering) suggestSpread(population, demand int, _ time.Time, rng *tensor.RNG) time.Duration {
	// Devices reconnecting once per window W give an arrival rate of
	// population/W; solve population/W = Overprovision·demand/RoundPeriod.
	w := float64(population) * float64(s.RoundPeriod) / (s.Overprovision * float64(demand))
	window := time.Duration(w)
	// Uniform over [0.5·W, 1.5·W]: mean W, fully spread.
	return time.Duration((0.5 + rng.Float64()) * float64(window))
}

func (s *Steering) clamp(d time.Duration, now time.Time) time.Duration {
	if s.LoadFactor != nil {
		// Applied before clamping so MaxWait still bounds the result.
		if f := s.LoadFactor(now); f > 0 {
			d = time.Duration(float64(d) * f)
		}
	}
	if d < s.MinWait {
		d = s.MinWait
	}
	if s.MaxWait > 0 && d > s.MaxWait {
		d = s.MaxWait
	}
	return d
}
