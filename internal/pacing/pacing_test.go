package pacing

import (
	"math"
	"testing"
	"time"

	"repro/internal/tensor"
)

var epoch = time.Date(2019, 1, 1, 0, 0, 0, 0, time.UTC)

func steering() *Steering {
	s := New(2 * time.Minute)
	s.Epoch = epoch
	s.MinWait = time.Second
	return s
}

func TestSmallPopulationSynchronizes(t *testing.T) {
	// Devices rejected at random moments within a round must all be told to
	// come back inside the first 10% of the *same* upcoming round.
	s := steering()
	rng := tensor.NewRNG(1)
	period := s.RoundPeriod

	var arrivals []time.Duration // arrival offset within the round grid
	for i := 0; i < 200; i++ {
		now := epoch.Add(time.Duration(rng.Float64() * float64(period)))
		d := s.Suggest(50, 10, now, rng)
		arrival := now.Add(d).Sub(epoch) % period
		arrivals = append(arrivals, arrival)
	}
	for _, a := range arrivals {
		if a > period/5 {
			t.Fatalf("arrival offset %v not contemporaneous (period %v)", a, period)
		}
	}
}

func TestSmallPopulationArrivesInFuture(t *testing.T) {
	s := steering()
	rng := tensor.NewRNG(2)
	now := epoch.Add(90 * time.Second)
	for i := 0; i < 100; i++ {
		d := s.Suggest(10, 5, now, rng)
		if d <= 0 {
			t.Fatalf("suggestion %v not in the future", d)
		}
	}
}

func TestLargePopulationSpreads(t *testing.T) {
	// 1M devices, demand 100/round: suggestions must be spread over a wide
	// window, not clustered (thundering-herd avoidance).
	s := steering()
	s.MaxWait = 1000 * time.Hour
	rng := tensor.NewRNG(3)
	now := epoch

	var ds []float64
	for i := 0; i < 2000; i++ {
		ds = append(ds, float64(s.Suggest(1_000_000, 100, now, rng)))
	}
	mean := 0.0
	for _, d := range ds {
		mean += d
	}
	mean /= float64(len(ds))
	// Expected window W = pop·period/(over·demand) = 1e6·120s/(2·100).
	wantW := 1e6 * float64(2*time.Minute) / (2 * 100)
	if math.Abs(mean-wantW)/wantW > 0.1 {
		t.Fatalf("mean suggestion %v, want ≈ %v", time.Duration(mean), time.Duration(wantW))
	}
	// Spread: standard deviation of U[0.5W,1.5W] is W/√12.
	var sd float64
	for _, d := range ds {
		sd += (d - mean) * (d - mean)
	}
	sd = math.Sqrt(sd / float64(len(ds)))
	if sd < wantW/6 {
		t.Fatalf("suggestions not spread: sd=%v, window=%v", time.Duration(sd), time.Duration(wantW))
	}
}

func TestLargePopulationRateMatchesDemand(t *testing.T) {
	// Arrival rate implied by the mean window ≈ Overprovision × demand per
	// round period.
	s := steering()
	s.MaxWait = 1000 * time.Hour
	rng := tensor.NewRNG(4)
	pop, demand := 500_000, 200
	var sum float64
	n := 2000
	for i := 0; i < n; i++ {
		sum += float64(s.Suggest(pop, demand, epoch, rng))
	}
	meanWindow := sum / float64(n)
	arrivalsPerPeriod := float64(pop) * float64(s.RoundPeriod) / meanWindow
	want := s.Overprovision * float64(demand)
	if math.Abs(arrivalsPerPeriod-want)/want > 0.15 {
		t.Fatalf("arrivals/period = %v, want ≈ %v", arrivalsPerPeriod, want)
	}
}

func TestClampBounds(t *testing.T) {
	s := steering()
	s.MinWait = time.Minute
	s.MaxWait = 2 * time.Minute
	rng := tensor.NewRNG(5)
	for i := 0; i < 100; i++ {
		d := s.Suggest(10_000_000, 1, epoch, rng) // enormous window pre-clamp
		if d < s.MinWait || d > s.MaxWait {
			t.Fatalf("suggestion %v outside [%v, %v]", d, s.MinWait, s.MaxWait)
		}
	}
}

func TestLoadFactorLengthensWindows(t *testing.T) {
	s := steering()
	s.MaxWait = 1000 * time.Hour
	rng1, rng2 := tensor.NewRNG(6), tensor.NewRNG(6)
	base := s.Suggest(1_000_000, 100, epoch, rng1)
	s.LoadFactor = func(time.Time) float64 { return 3 }
	shaped := s.Suggest(1_000_000, 100, epoch, rng2)
	if shaped < base*2 {
		t.Fatalf("load factor 3 should lengthen window: %v vs %v", shaped, base)
	}
	// Non-positive factors are ignored rather than producing zero waits.
	s.LoadFactor = func(time.Time) float64 { return -1 }
	d := s.Suggest(1_000_000, 100, epoch, tensor.NewRNG(6))
	if d <= 0 {
		t.Fatalf("negative load factor mishandled: %v", d)
	}
}

func TestDegenerateInputs(t *testing.T) {
	s := steering()
	rng := tensor.NewRNG(7)
	// Zero population / demand must not panic or divide by zero.
	d := s.Suggest(0, 0, epoch, rng)
	if d < s.MinWait {
		t.Fatalf("degenerate suggestion %v below MinWait", d)
	}
}

func TestStatelessness(t *testing.T) {
	// Same inputs and RNG state → same suggestion; the server keeps no
	// per-device state.
	s := steering()
	d1 := s.Suggest(100, 10, epoch.Add(13*time.Second), tensor.NewRNG(9))
	d2 := s.Suggest(100, 10, epoch.Add(13*time.Second), tensor.NewRNG(9))
	if d1 != d2 {
		t.Fatalf("steering is not stateless: %v vs %v", d1, d2)
	}
}

func TestMeanWaitTracksSuggestMean(t *testing.T) {
	// MeanWait must sit near the empirical mean of Suggest's draws in both
	// regimes — the live population estimator inverts it, so a biased mean
	// biases every estimate.
	s := steering()
	rng := tensor.NewRNG(11)
	for _, tc := range []struct{ pop, demand int }{
		{100, 10},        // small-population (synchronizing) regime
		{2_000_000, 300}, // large-population (spread) regime
	} {
		var sum time.Duration
		const draws = 4000
		for i := 0; i < draws; i++ {
			// Spread now over a full round period so the sync regime's
			// until-next-boundary term averages out.
			now := epoch.Add(time.Duration(i) * s.RoundPeriod / draws)
			sum += s.Suggest(tc.pop, tc.demand, now, rng)
		}
		empirical := sum / draws
		mean := s.MeanWait(tc.pop, tc.demand, epoch)
		ratio := float64(empirical) / float64(mean)
		if ratio < 0.7 || ratio > 1.4 {
			t.Fatalf("pop=%d demand=%d: MeanWait %v vs empirical mean %v (ratio %.2f)",
				tc.pop, tc.demand, mean, empirical, ratio)
		}
	}
}

func TestMeanWaitClamped(t *testing.T) {
	s := steering()
	// A tiny demand in a huge population would suggest days; MaxWait must
	// bound MeanWait exactly like it bounds Suggest.
	if got := s.MeanWait(100_000_000, 1, epoch); got > s.MaxWait {
		t.Fatalf("MeanWait %v above MaxWait %v", got, s.MaxWait)
	}
	if got := s.MeanWait(0, 0, epoch); got < s.MinWait {
		t.Fatalf("degenerate MeanWait %v below MinWait", got)
	}
}
