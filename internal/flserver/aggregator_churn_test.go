package flserver

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/actor"
	"repro/internal/checkpoint"
	"repro/internal/secagg"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// feedSecureGroup sends count updates with distinct device names prefixed
// by prefix, each Params {1,2} Weight 1.
func feedSecureGroup(t *testing.T, agg actor.Ref, sig chan struct{}, prefix string, count int) {
	t.Helper()
	for i := 0; i < count; i++ {
		_ = agg.Send(msgAddUpdate{DeviceID: fmt.Sprintf("%s%d", prefix, i),
			Update: &checkpoint.Checkpoint{Params: tensor.Vector{1, 2}, Weight: 1}})
	}
	waitSignals(t, sig, count)
}

// assignedNames builds an Assigned list: the prefix-numbered devices that
// delivered plus extra lost-device names.
func assignedNames(prefix string, delivered int, lost ...string) []string {
	out := make([]string, 0, delivered+len(lost))
	for i := 0; i < delivered; i++ {
		out = append(out, fmt.Sprintf("%s%d", prefix, i))
	}
	return append(out, lost...)
}

func lastGroupResults(t *testing.T, got func() []actor.Message, want int) []msgGroupResult {
	t.Helper()
	var out []msgGroupResult
	for _, m := range got() {
		if res, ok := m.(msgGroupResult); ok {
			out = append(out, res)
		}
	}
	if len(out) != want {
		t.Fatalf("got %d group results, want %d", len(out), want)
	}
	return out
}

// TestTwoSecureGroupsFinalizeConcurrentlyUnderChurn extends the plain
// concurrent-finalization test with live churn: both groups carry a
// configured-but-lost device, one group's dealer poisons its shares, the
// other's responder forges its unmask reveal — all while the two secagg
// runs execute concurrently off the actor goroutines. Run under -race (CI
// does). Both groups must still commit, with the misbehaving devices
// blamed by name.
func TestTwoSecureGroupsFinalizeConcurrentlyUnderChurn(t *testing.T) {
	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)

	aggA := NewAggregator(2, true, master)
	// Participant 2 (device a1) deals poisoned shares: excluded before
	// masking, blamed via holder complaints.
	aggA.churn = func(n, tt int) secagg.Schedule { return secagg.Schedule{PoisonShare: []int{2}} }
	aggB := NewAggregator(2, true, master)
	// Participant 1 (device b0) forges its unmask response: rejected at
	// the commitment check, blamed, sum reconstructed from the rest.
	aggB.churn = func(n, tt int) secagg.Schedule { return secagg.Schedule{ForgeUnmask: []int{1}} }
	refA := sys.Spawn("agg-a", aggA)
	refB := sys.Spawn("agg-b", aggB)
	defer sys.Shutdown(master, refA, refB)

	feedSecureGroup(t, refA, sig, "a", 5)
	feedSecureGroup(t, refB, sig, "b", 5)
	// Each group was configured with 6 devices; the 6th never delivered
	// and enters the protocol as a real share-keys dropout.
	_ = refA.Send(msgFinalizeGroup{Assigned: assignedNames("a", 5, "a-lost")})
	_ = refB.Send(msgFinalizeGroup{Assigned: assignedNames("b", 5, "b-lost")})
	waitSignals(t, sig, 2)

	byBlame := map[string]msgGroupResult{}
	for _, res := range lastGroupResults(t, got, 2) {
		if res.Err != "" {
			t.Fatalf("group must commit under churn: %+v", res)
		}
		if len(res.Blamed) != 1 {
			t.Fatalf("want exactly one blamed device: %+v", res)
		}
		byBlame[res.Blamed[0][:2]] = res
	}
	resA, ok := byBlame["a1"]
	if !ok || !strings.Contains(resA.Blamed[0], "complaint") {
		t.Fatalf("poisoned dealer a1 not blamed via complaint: %+v", byBlame)
	}
	// Group A: 6 assigned, 1 lost, 1 poisoned-and-excluded → 4 survivors.
	if resA.Count != 4 || resA.Sum[0] != 4 || resA.Sum[1] != 8 {
		t.Fatalf("group A result: %+v", resA)
	}
	resB, ok := byBlame["b0"]
	if !ok || !strings.Contains(resB.Blamed[0], "forged") {
		t.Fatalf("forging responder b0 not blamed: %+v", byBlame)
	}
	// Group B: the forger's masked input was already in the online sum —
	// it survives as data even though its response was rejected.
	if resB.Count != 5 || resB.Sum[0] != 5 || resB.Sum[1] != 10 {
		t.Fatalf("group B result: %+v", resB)
	}
}

// TestSecureGroupLostDevicesBecomeDropouts: a configured device that never
// delivered shrinks the survivor set through the real dropout path (t-of-n
// reconstruction), not by silently resizing the instance.
func TestSecureGroupLostDevicesBecomeDropouts(t *testing.T) {
	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)
	agg := sys.Spawn("agg", NewAggregator(2, true, master))
	defer sys.Shutdown(master, agg)

	feedSecureGroup(t, agg, sig, "d", 4)
	_ = agg.Send(msgFinalizeGroup{Assigned: assignedNames("d", 4, "d-lost")})
	waitSignals(t, sig, 1)

	res := lastGroupResults(t, got, 1)[0]
	if res.Err != "" {
		t.Fatalf("group must commit: %+v", res)
	}
	if res.Count != 4 || res.Weight != 4 || res.Sum[0] != 4 || res.Sum[1] != 8 {
		t.Fatalf("result: %+v", res)
	}
	if len(res.Blamed) != 0 {
		t.Fatalf("an honest dropout is lost, not blamed: %+v", res.Blamed)
	}
}

// TestSecureGroupBelowThresholdAbortsWithMetrics: when too few assigned
// devices deliver, the group degrades to a clean abort that names the lost
// devices and still carries the delivered reports' metrics.
func TestSecureGroupBelowThresholdAbortsWithMetrics(t *testing.T) {
	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)
	agg := sys.Spawn("agg", NewAggregator(2, true, master))
	defer sys.Shutdown(master, agg)

	for i := 0; i < 3; i++ {
		_ = agg.Send(msgAddUpdate{DeviceID: fmt.Sprintf("d%d", i),
			Update:  &checkpoint.Checkpoint{Params: tensor.Vector{1, 2}, Weight: 1},
			Metrics: map[string]float64{"train_loss": 0.5}})
	}
	waitSignals(t, sig, 3)
	// 8 assigned, 3 delivered: below the majority threshold 5.
	_ = agg.Send(msgFinalizeGroup{Assigned: assignedNames("d", 3, "l1", "l2", "l3", "l4", "l5")})
	waitSignals(t, sig, 1)

	res := lastGroupResults(t, got, 1)[0]
	if res.Err == "" || !strings.Contains(res.Err, "3 of 8") || !strings.Contains(res.Err, "l5") {
		t.Fatalf("abort must attribute the lost devices: %+v", res)
	}
	if res.Sum != nil || res.Count != 0 {
		t.Fatalf("aborted group must not report a sum: %+v", res)
	}
	if len(res.Metrics["train_loss"]) != 3 {
		t.Fatalf("metrics swallowed on abort: %+v", res.Metrics)
	}
}

// TestSecureThresholdFractionOverride: the plan's SecAggThresholdFraction
// reaches the group through the injected threshold hook.
func TestSecureThresholdFractionOverride(t *testing.T) {
	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)
	agg := NewAggregator(2, true, master)
	// Tolerate up to half the group: t = ⌈0.5 n⌉.
	agg.threshold = func(n int) int { return (n + 1) / 2 }
	ref := sys.Spawn("agg", agg)
	defer sys.Shutdown(master, ref)

	feedSecureGroup(t, ref, sig, "d", 4)
	// 8 assigned, 4 delivered: the majority default (5) would abort, the
	// relaxed threshold (4) commits through 4-of-8 reconstruction.
	_ = ref.Send(msgFinalizeGroup{Assigned: assignedNames("d", 4, "l1", "l2", "l3", "l4")})
	waitSignals(t, sig, 1)

	res := lastGroupResults(t, got, 1)[0]
	if res.Err != "" {
		t.Fatalf("relaxed threshold must commit: %+v", res)
	}
	if res.Count != 4 || res.Sum[0] != 4 {
		t.Fatalf("result: %+v", res)
	}
}

// TestSecureFinalizeWatchdogUnstallsGroup: a secagg run that cannot make
// progress (here: wedged behind a saturated finalization gate) is
// abandoned by the per-group watchdog with an attributed error — the
// round gets its group result instead of hanging forever.
func TestSecureFinalizeWatchdogUnstallsGroup(t *testing.T) {
	slots := cap(secaggGate)
	for i := 0; i < slots; i++ {
		secaggGate <- struct{}{}
	}
	released := false
	release := func() {
		if !released {
			released = true
			for i := 0; i < slots; i++ {
				<-secaggGate
			}
		}
	}
	defer release()

	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)
	agg := NewAggregator(2, true, master)
	agg.finalizeTimeout = 100 * time.Millisecond
	ref := sys.Spawn("agg", agg)
	defer sys.Shutdown(master, ref)

	feedSecureGroup(t, ref, sig, "d", 3)
	_ = ref.Send(msgFinalizeGroup{Assigned: assignedNames("d", 3)})
	waitSignals(t, sig, 1)

	res := lastGroupResults(t, got, 1)[0]
	if res.Err == "" || !strings.Contains(res.Err, "exceeded") {
		t.Fatalf("stalled finalization must time out with attribution: %+v", res)
	}
	if res.Sum != nil {
		t.Fatalf("timed-out group must not report a sum: %+v", res)
	}
	// Unblock the wedged run; its late result lands on a stopped actor and
	// is dropped — the double-report guard is exercised every run under
	// -race via the done flag.
	release()
	runtime.Gosched()
}

// TestRoundCompleteCarriesBlamedDevices: per-group blame survives the
// master merge into the round completion record.
func TestRoundCompleteCarriesBlamedDevices(t *testing.T) {
	sys := actor.NewSystem()
	coord, got, sig := collectMaster(sys)
	store := storage.NewMem()
	p := testPlan(t, 4, true)
	m, err := p.Device.Model.Build()
	if err != nil {
		t.Fatal(err)
	}
	dim := m.NumParams()
	global := &checkpoint.Checkpoint{TaskName: p.ID, Params: make(tensor.Vector, dim)}
	ma := NewMasterAggregator(p, global, store, coord, nil, 0, nil)
	ma.state = "collecting"
	ma.aggs = make([]actor.Ref, 2)
	ref := sys.Spawn("ma", ma)
	defer sys.Shutdown(coord, ref)

	_ = ref.Send(msgGroupResult{Sum: make(tensor.Vector, dim), Weight: 4, Count: 4,
		Blamed: []string{"dev-7: forged share"}})
	_ = ref.Send(msgGroupResult{Sum: make(tensor.Vector, dim), Weight: 4, Count: 4,
		Blamed: []string{"dev-9: complaint from holder"}})
	waitSignals(t, sig, 1)

	msgs := got()
	done, ok := msgs[len(msgs)-1].(msgRoundComplete)
	if !ok {
		t.Fatalf("coordinator got %T", msgs[len(msgs)-1])
	}
	if len(done.BlamedDevices) != 2 {
		t.Fatalf("blamed devices not merged: %+v", done.BlamedDevices)
	}
}
