package flserver

import (
	"time"

	"repro/internal/actor"
	"repro/internal/attest"
	"repro/internal/pacing"
	"repro/internal/protocol"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// SelectorPopulation configures one population served by a Selector:
// its pace steering and the population-size estimate that feeds it.
type SelectorPopulation struct {
	Name               string
	Steering           *pacing.Steering
	PopulationEstimate int
}

// selPop is one population's slice of a Selector: its quota, parked
// devices, reservoir state, pace steering, and streaming forward target.
type selPop struct {
	name               string
	steering           *pacing.Steering
	populationEstimate int
	demand             int

	quota    int
	held     []heldDevice
	accepted int64
	rejected int64
	// Quota ledger: every slot granted is consumed by an accepted device,
	// revoked at seal/abandon/release, or still outstanding in quota —
	// granted == consumed + revoked + quota always (chaos.Verify asserts it
	// across fault scenarios).
	granted  int64
	consumed int64
	revoked  int64
	// seen counts eligible check-ins since the last quota grant; it drives
	// reservoir sampling (footnote 1 of the paper: "selection is done by
	// simple reservoir sampling"), so a device checking in late in the
	// window has the same selection probability as an early one.
	seen int64

	// pendingTo/pendingN track an outstanding forward request from a
	// Master Aggregator, so devices checking in after the request still
	// flow to the round as they arrive.
	pendingTo actor.Ref
	pendingN  int

	// arrivals counts this population's check-ins since rateStart; the
	// Coordinator drains the window via msgRateProbe to maintain a live
	// population estimate from observed check-in rates.
	arrivals  int64
	rateStart time.Time
}

// minRateWindow is the shortest sampling window a Selector will answer a
// rate probe from: ticks arrive in bursts around round boundaries, and a
// near-empty millisecond window would read as "nobody is checking in".
const minRateWindow = 500 * time.Millisecond

// Selector accepts and forwards device connections (Sec. 4.2) for every
// population registered with it: the paper's Selectors are a shared,
// device-facing layer that takes connections for many FL populations and
// routes each check-in by its CheckinRequest.Population. Per population it
// receives quota from that population's Coordinator, makes local
// accept/reject decisions, and parks accepted devices until told to
// forward them to an Aggregator; rejected devices — including devices of
// populations this Selector does not (or no longer) serve — get a
// pace-steering reconnect hint rather than a dropped connection.
//
// When a capacity is set, the parked pool is shared across populations
// under weighted fair sharing: each population's share of the capacity is
// proportional to its Coordinator's current quota demand, and a population
// below its share may displace a parked device of a population above its
// share.
type Selector struct {
	verifier *attest.Verifier
	// defaultSteering answers check-ins for unregistered populations.
	defaultSteering *pacing.Steering
	// defaultEstimate sizes steering hints when no population state exists.
	defaultEstimate int
	// capacity bounds the total parked devices across all populations
	// (0 = unbounded).
	capacity int

	pops map[string]*selPop
	rng  *tensor.RNG
	now  func() time.Time

	// unknownRejected counts check-ins for populations this Selector does
	// not serve.
	unknownRejected int64
	// retiredAccepted/retiredRejected retain deregistered populations'
	// counters so the all-population totals stay monotonic across
	// deregistrations.
	retiredAccepted int64
	retiredRejected int64
	// retired quota ledger (keeps the conservation invariant across
	// deregistrations).
	retiredGranted  int64
	retiredConsumed int64
	retiredRevoked  int64
}

// NewSelector returns the behavior for a Selector actor serving the given
// initial populations; more can be registered and deregistered at runtime
// via RegisterSelectorPopulation / DeregisterSelectorPopulation.
func NewSelector(verifier *attest.Verifier, defaultSteering *pacing.Steering, capacity int, seed uint64, now func() time.Time, pops ...SelectorPopulation) *Selector {
	if now == nil {
		now = time.Now
	}
	if defaultSteering == nil {
		defaultSteering = pacing.New(time.Minute)
	}
	s := &Selector{
		verifier:        verifier,
		defaultSteering: defaultSteering,
		defaultEstimate: 1000,
		capacity:        capacity,
		pops:            make(map[string]*selPop),
		rng:             tensor.NewRNG(seed),
		now:             now,
	}
	for _, p := range pops {
		s.register(p)
	}
	return s
}

// Receive implements actor.Behavior.
func (s *Selector) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case msgCheckin:
		s.onCheckin(m)
	case msgRegisterPopulation:
		s.register(m.Pop)
	case msgDeregisterPopulation:
		s.deregister(m.Name)
	case msgSetQuota:
		if p, ok := s.pops[m.Population]; ok {
			// A grant replaces whatever quota remained: the old slots are
			// revoked, the new ones granted.
			p.revoked += int64(p.quota)
			p.granted += int64(m.Accept)
			p.quota = m.Accept
			p.seen = 0
			if m.Accept > 0 {
				p.demand = m.Accept
			} else {
				// Revocation (the round sealed or was abandoned): cancel the
				// forward stream too, so a stale destination can never receive
				// devices accepted under a later round's quota.
				p.pendingTo, p.pendingN = nil, 0
			}
		}
	case msgForwardDevices:
		s.onForward(m)
	case msgQuotaTopUp:
		s.onTopUp(m)
	case msgRateProbe:
		s.onRateProbe(ctx, m)
	case msgReleaseParked:
		s.releaseParked(m.Population)
	case msgSelectorStats:
		m.Reply <- s.stats(m.Population)
	case actor.Terminated:
		// A watched Coordinator died; respawn is handled by the owning
		// Server or Fleet watcher.
	}
}

// register adds (or reconfigures) a population on this Selector.
func (s *Selector) register(cfg SelectorPopulation) {
	if cfg.Name == "" {
		return
	}
	if cfg.Steering == nil {
		cfg.Steering = s.defaultSteering
	}
	if cfg.PopulationEstimate <= 0 {
		cfg.PopulationEstimate = s.defaultEstimate
	}
	if p, ok := s.pops[cfg.Name]; ok {
		p.steering = cfg.Steering
		p.populationEstimate = cfg.PopulationEstimate
		return
	}
	s.pops[cfg.Name] = &selPop{
		name:               cfg.Name,
		steering:           cfg.Steering,
		populationEstimate: cfg.PopulationEstimate,
		demand:             1,
		rateStart:          s.now(),
	}
}

// onRateProbe answers a Coordinator's check-in rate probe with the
// population's arrivals since the previous sample, then resets the window.
// Windows shorter than minRateWindow are left accumulating — a burst of
// probes around a round boundary must not manufacture zero-rate samples.
func (s *Selector) onRateProbe(ctx *actor.Context, m msgRateProbe) {
	p, ok := s.pops[m.Population]
	if !ok || m.To == nil {
		return
	}
	now := s.now()
	elapsed := now.Sub(p.rateStart)
	if elapsed < minRateWindow {
		return
	}
	_ = m.To.Send(msgCheckinRate{
		From:       ctx.Self,
		Population: p.name,
		Count:      p.arrivals,
		Elapsed:    elapsed,
		Demand:     p.demand,
	})
	p.arrivals, p.rateStart = 0, now
}

// deregister removes a population: parked devices are steered away and the
// population's state dropped. Later check-ins hit the unknown-population
// rejection.
func (s *Selector) deregister(name string) {
	p, ok := s.pops[name]
	if !ok {
		return
	}
	now := s.now()
	for _, d := range p.held {
		p.rejected++
		s.rejectConn(d.Conn, "population deregistered", p.steering, p.populationEstimate, p.demand, now)
	}
	// Deregistration revokes the remaining quota and retires the ledger so
	// the all-population ledger stays conserved.
	p.revoked += int64(p.quota)
	p.quota = 0
	s.retiredAccepted += p.accepted
	s.retiredRejected += p.rejected
	s.retiredGranted += p.granted
	s.retiredConsumed += p.consumed
	s.retiredRevoked += p.revoked
	delete(s.pops, name)
}

// releaseParked steers a population's parked devices away and zeroes its
// quota, keeping the population registered: its Coordinator finished its
// rounds, so holding devices (and their connections) would strand them.
func (s *Selector) releaseParked(name string) {
	p, ok := s.pops[name]
	if !ok {
		return
	}
	now := s.now()
	for _, d := range p.held {
		p.rejected++
		s.rejectConn(d.Conn, "population idle", p.steering, p.populationEstimate, p.demand, now)
	}
	p.held = p.held[:0]
	p.revoked += int64(p.quota)
	p.quota = 0
	p.pendingTo, p.pendingN = nil, 0
}

// rejectConn answers a check-in with a steering-backed rejection and closes
// the connection.
func (s *Selector) rejectConn(conn transport.Conn, reason string, st *pacing.Steering, estimate, demand int, now time.Time) {
	obsCheckinRejected.Inc()
	_ = conn.Send(protocol.CheckinResponse{
		Accepted:   false,
		Reason:     reason,
		RetryAfter: st.Suggest(estimate, demand, now, s.rng),
	})
	_ = conn.Close()
}

func (s *Selector) onCheckin(m msgCheckin) {
	obsCheckins.Inc()
	now := s.now()
	p, ok := s.pops[m.Req.Population]
	if !ok {
		// Unknown population: the device is misconfigured or the population
		// is not (or no longer) registered. Steer it away with a reconnect
		// hint instead of dropping the connection, so misrouted fleets back
		// off rather than hammer the accept loop.
		s.unknownRejected++
		s.rejectConn(m.Conn, "unknown population "+m.Req.Population, s.defaultSteering, s.defaultEstimate, 1, now)
		return
	}
	p.arrivals++
	reject := func(reason string) {
		p.rejected++
		s.rejectConn(m.Conn, reason, p.steering, p.populationEstimate, p.demand, now)
	}

	if s.verifier != nil {
		if err := s.verifier.Verify(m.Req.DeviceID, m.Req.Population, m.Req.AttestationToken, now); err != nil {
			reject("attestation failed")
			return
		}
	}
	p.seen++
	if p.quota <= 0 {
		// Reservoir sampling over the parked pool: a late check-in replaces
		// a random held device with probability held/seen, so selection
		// within the window is uniform rather than first-come-first-served.
		// Devices already forwarded to an Aggregator are committed and not
		// recalled.
		if n := len(p.held); n > 0 && s.rng.Float64() < float64(n)/float64(p.seen) {
			i := s.rng.Intn(n)
			victim := p.held[i]
			p.held[i] = heldDevice{
				ID:             m.Req.DeviceID,
				RuntimeVersion: m.Req.RuntimeVersion,
				Conn:           m.Conn,
				AcceptedAt:     now,
			}
			p.rejected++
			s.rejectConn(victim.Conn, "displaced by reservoir sampling", p.steering, p.populationEstimate, p.demand, now)
			return
		}
		reject("come back later")
		return
	}
	// Quota available; enforce the selector-wide parked-device capacity with
	// demand-weighted fair sharing across populations.
	if s.capacity > 0 && s.totalHeld() >= s.capacity {
		if len(p.held) >= s.fairShare(p) || !s.displaceOverShare(now) {
			reject("selector at capacity")
			return
		}
	}
	p.quota--
	p.accepted++
	p.consumed++
	obsCheckinAccepted.Inc()
	d := heldDevice{
		ID:             m.Req.DeviceID,
		RuntimeVersion: m.Req.RuntimeVersion,
		Conn:           m.Conn,
		AcceptedAt:     now,
	}
	if p.pendingN > 0 && p.pendingTo != nil {
		if err := p.pendingTo.Send(msgDevices{Devices: []heldDevice{d}}); err != nil {
			p.pendingTo, p.pendingN = nil, 0
			_ = d.Conn.Close()
			return
		}
		p.pendingN--
		if p.pendingN == 0 {
			p.pendingTo = nil
		}
		return
	}
	p.held = append(p.held, d)
}

// totalHeld is the parked-device count across all populations.
func (s *Selector) totalHeld() int {
	n := 0
	for _, p := range s.pops {
		n += len(p.held)
	}
	return n
}

// fairShare returns p's share of the selector capacity, weighted by each
// population's current quota demand (only populations actively asking for
// devices count toward the denominator).
func (s *Selector) fairShare(p *selPop) int {
	total := 0
	for _, sp := range s.pops {
		if sp.quota > 0 {
			total += sp.demand
		}
	}
	demand := p.demand
	if p.quota <= 0 {
		demand = 0
	}
	if total <= 0 {
		return s.capacity
	}
	share := s.capacity * demand / total
	if share < 1 && demand > 0 {
		share = 1
	}
	return share
}

// displaceOverShare evicts one parked device from the population furthest
// above its fair share, steering it away. Reports whether a slot was freed.
func (s *Selector) displaceOverShare(now time.Time) bool {
	var victim *selPop
	excess := 0
	for _, q := range s.pops {
		if e := len(q.held) - s.fairShare(q); e > excess {
			victim, excess = q, e
		}
	}
	if victim == nil {
		return false
	}
	d := victim.held[0]
	victim.held = append(victim.held[:0], victim.held[1:]...)
	victim.rejected++
	// The displaced device keeps its claim on the round: hand its quota
	// back so a later check-in of its population can take the slot.
	victim.quota++
	victim.accepted--
	victim.consumed--
	s.rejectConn(d.Conn, "displaced by cross-population fair sharing", victim.steering, victim.populationEstimate, victim.demand, now)
	return true
}

func (s *Selector) onForward(m msgForwardDevices) {
	p, ok := s.pops[m.Population]
	if !ok {
		return
	}
	n := m.N
	if n > len(p.held) {
		n = len(p.held)
	}
	if n > 0 {
		batch := make([]heldDevice, n)
		copy(batch, p.held[:n])
		p.held = append(p.held[:0], p.held[n:]...)
		if err := m.To.Send(msgDevices{Devices: batch}); err != nil {
			// Master Aggregator already gone; the devices are lost, mirroring
			// "if an Aggregator or Selector crashes, only the devices
			// connected to that actor will be lost".
			for _, d := range batch {
				_ = d.Conn.Close()
			}
			return
		}
	}
	// Remember the remainder so later check-ins stream to the round.
	p.pendingTo = m.To
	p.pendingN = m.N - n
	if p.pendingN <= 0 {
		p.pendingTo, p.pendingN = nil, 0
	}
}

// onTopUp re-opens quota a round handed back (duplicate or lost device)
// and extends — or re-establishes — the streaming forward toward the
// round, so a replacement device flows to it as soon as one checks in.
func (s *Selector) onTopUp(m msgQuotaTopUp) {
	p, ok := s.pops[m.Population]
	if !ok || m.N <= 0 {
		return
	}
	p.quota += m.N
	p.granted += int64(m.N)
	if p.pendingTo == m.To {
		p.pendingN += m.N
		return
	}
	// The round's original forward request has drained (or belonged to an
	// earlier, finished round): start a fresh stream to the requester.
	s.onForward(msgForwardDevices{Population: m.Population, N: m.N, To: m.To})
}

// stats reports one population's counters, or — for population "" — the
// totals across every registered population plus unknown-population
// rejections.
func (s *Selector) stats(population string) SelectorStats {
	if population != "" {
		p, ok := s.pops[population]
		if !ok {
			return SelectorStats{}
		}
		return SelectorStats{
			Held: len(p.held), Accepted: p.accepted, Rejected: p.rejected,
			QuotaGranted: p.granted, QuotaConsumed: p.consumed,
			QuotaRevoked: p.revoked, QuotaOutstanding: int64(p.quota),
		}
	}
	total := SelectorStats{
		UnknownPopulation: s.unknownRejected,
		Accepted:          s.retiredAccepted,
		Rejected:          s.unknownRejected + s.retiredRejected,
		QuotaGranted:      s.retiredGranted,
		QuotaConsumed:     s.retiredConsumed,
		QuotaRevoked:      s.retiredRevoked,
	}
	for _, p := range s.pops {
		total.Held += len(p.held)
		total.Accepted += p.accepted
		total.Rejected += p.rejected
		total.QuotaGranted += p.granted
		total.QuotaConsumed += p.consumed
		total.QuotaRevoked += p.revoked
		total.QuotaOutstanding += int64(p.quota)
	}
	return total
}
