package flserver

import (
	"time"

	"repro/internal/actor"
	"repro/internal/attest"
	"repro/internal/pacing"
	"repro/internal/protocol"
	"repro/internal/tensor"
)

// Selector accepts and forwards device connections (Sec. 4.2). It
// periodically receives quota from the Coordinator and makes local
// accept/reject decisions; rejected devices get a pace-steering reconnect
// hint. Accepted devices are parked until the Coordinator instructs the
// Selector to forward them to an Aggregator, which keeps selection running
// continuously and gives the pipelining of Sec. 4.3 for free.
type Selector struct {
	population string
	verifier   *attest.Verifier
	steering   *pacing.Steering
	// PopulationEstimate and Demand feed pace steering.
	populationEstimate int
	demand             int

	quota    int
	held     []heldDevice
	accepted int64
	rejected int64
	// seen counts eligible check-ins since the last quota grant; it drives
	// reservoir sampling (footnote 1 of the paper: "selection is done by
	// simple reservoir sampling"), so a device checking in late in the
	// window has the same selection probability as an early one.
	seen int64
	rng  *tensor.RNG
	now  func() time.Time

	// pendingTo/pendingN track an outstanding forward request from a
	// Master Aggregator, so devices checking in after the request still
	// flow to the round as they arrive.
	pendingTo *actor.Ref
	pendingN  int
}

// NewSelector returns the behavior for a Selector actor.
func NewSelector(population string, verifier *attest.Verifier, steering *pacing.Steering, populationEstimate int, seed uint64, now func() time.Time) *Selector {
	if now == nil {
		now = time.Now
	}
	return &Selector{
		population:         population,
		verifier:           verifier,
		steering:           steering,
		populationEstimate: populationEstimate,
		demand:             1,
		rng:                tensor.NewRNG(seed),
		now:                now,
	}
}

// Receive implements actor.Behavior.
func (s *Selector) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case msgCheckin:
		s.onCheckin(m)
	case msgSetQuota:
		if m.Population == s.population {
			s.quota = m.Accept
			s.seen = 0
			if m.Accept > 0 {
				s.demand = m.Accept
			}
		}
	case msgForwardDevices:
		s.onForward(m)
	case msgSelectorStats:
		m.Reply <- SelectorStats{Held: len(s.held), Accepted: s.accepted, Rejected: s.rejected}
	case actor.Terminated:
		// A watched Coordinator died; respawn is handled by the frontend
		// (see Frontend.superviseCoordinator).
	}
}

func (s *Selector) onCheckin(m msgCheckin) {
	now := s.now()
	reject := func(reason string) {
		s.rejected++
		_ = m.Conn.Send(protocol.CheckinResponse{
			Accepted:   false,
			Reason:     reason,
			RetryAfter: s.steering.Suggest(s.populationEstimate, s.demand, now, s.rng),
		})
		_ = m.Conn.Close()
	}

	if m.Req.Population != s.population {
		reject("wrong population")
		return
	}
	if s.verifier != nil {
		if err := s.verifier.Verify(m.Req.DeviceID, m.Req.Population, m.Req.AttestationToken, now); err != nil {
			reject("attestation failed")
			return
		}
	}
	s.seen++
	if s.quota <= 0 {
		// Reservoir sampling over the parked pool: a late check-in replaces
		// a random held device with probability held/seen, so selection
		// within the window is uniform rather than first-come-first-served.
		// Devices already forwarded to an Aggregator are committed and not
		// recalled.
		if n := len(s.held); n > 0 && s.rng.Float64() < float64(n)/float64(s.seen) {
			i := s.rng.Intn(n)
			victim := s.held[i]
			s.held[i] = heldDevice{
				ID:             m.Req.DeviceID,
				RuntimeVersion: m.Req.RuntimeVersion,
				Conn:           m.Conn,
				AcceptedAt:     now,
			}
			s.rejected++
			_ = victim.Conn.Send(protocol.CheckinResponse{
				Accepted:   false,
				Reason:     "displaced by reservoir sampling",
				RetryAfter: s.steering.Suggest(s.populationEstimate, s.demand, now, s.rng),
			})
			_ = victim.Conn.Close()
			return
		}
		reject("come back later")
		return
	}
	s.quota--
	s.accepted++
	d := heldDevice{
		ID:             m.Req.DeviceID,
		RuntimeVersion: m.Req.RuntimeVersion,
		Conn:           m.Conn,
		AcceptedAt:     now,
	}
	if s.pendingN > 0 && s.pendingTo != nil {
		if err := s.pendingTo.Send(msgDevices{Devices: []heldDevice{d}}); err != nil {
			s.pendingTo, s.pendingN = nil, 0
			_ = d.Conn.Close()
			return
		}
		s.pendingN--
		if s.pendingN == 0 {
			s.pendingTo = nil
		}
		return
	}
	s.held = append(s.held, d)
}

func (s *Selector) onForward(m msgForwardDevices) {
	n := m.N
	if n > len(s.held) {
		n = len(s.held)
	}
	if n > 0 {
		batch := make([]heldDevice, n)
		copy(batch, s.held[:n])
		s.held = append(s.held[:0], s.held[n:]...)
		if err := m.To.Send(msgDevices{Devices: batch}); err != nil {
			// Master Aggregator already gone; the devices are lost, mirroring
			// "if an Aggregator or Selector crashes, only the devices
			// connected to that actor will be lost".
			for _, d := range batch {
				_ = d.Conn.Close()
			}
			return
		}
	}
	// Remember the remainder so later check-ins stream to the round.
	s.pendingTo = m.To
	s.pendingN = m.N - n
	if s.pendingN <= 0 {
		s.pendingTo, s.pendingN = nil, 0
	}
}
