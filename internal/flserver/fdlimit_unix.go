//go:build unix

package flserver

import (
	"fmt"
	"syscall"
)

// ensureFDLimit makes sure the process may hold at least n file
// descriptors, raising the soft RLIMIT_NOFILE toward the hard limit if
// needed (unprivileged on every Unix). The TCP round benchmark holds both
// ends of K connections in one process, which overruns common default soft
// limits (256 on macOS, 1024 in many Linux shells); failing here with a
// clear message beats an EMFILE mid-round.
func ensureFDLimit(n uint64) error {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return nil // can't inspect; let the dial report any exhaustion
	}
	if lim.Cur >= n {
		return nil
	}
	raised := lim
	raised.Cur = n
	if raised.Cur > lim.Max {
		raised.Cur = lim.Max
	}
	_ = syscall.Setrlimit(syscall.RLIMIT_NOFILE, &raised)
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err == nil && lim.Cur < n {
		return fmt.Errorf("needs %d file descriptors but the limit is %d; raise it (ulimit -n) or use the in-memory transport", n, lim.Cur)
	}
	return nil
}
