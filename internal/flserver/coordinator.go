package flserver

import (
	"fmt"
	"time"

	"repro/internal/actor"
	"repro/internal/checkpoint"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// Coordinator is the top-level actor for one FL population (Sec. 4.2): it
// holds the population's lock, schedules FL tasks, instructs Selectors how
// many devices to accept, spawns a Master Aggregator per round, and
// restarts rounds whose Master Aggregator fails (Sec. 4.4).
type Coordinator struct {
	population string
	lock       *actor.LockService
	store      storage.Store
	plans      []*plan.Plan
	selectors  []*actor.Ref
	// MaxRounds stops the coordinator after that many successful rounds
	// (0 = run forever). Tests and benchmarks set it.
	maxRounds int
	now       func() time.Time

	acquired  bool
	planIdx   int
	global    map[string]*checkpoint.Checkpoint // per task
	currentMA *actor.Ref
	completed int
	failed    int
	// onDone, if non-nil, is signalled when maxRounds is reached.
	onDone chan struct{}
}

// NewCoordinator returns the behavior for a population coordinator.
func NewCoordinator(population string, lock *actor.LockService, store storage.Store, plans []*plan.Plan, selectors []*actor.Ref, maxRounds int, onDone chan struct{}, now func() time.Time) *Coordinator {
	if now == nil {
		now = time.Now
	}
	return &Coordinator{
		population: population,
		lock:       lock,
		store:      store,
		plans:      plans,
		selectors:  selectors,
		maxRounds:  maxRounds,
		now:        now,
		global:     make(map[string]*checkpoint.Checkpoint),
		onDone:     onDone,
	}
}

// Receive implements actor.Behavior.
func (c *Coordinator) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case msgTick:
		c.onTick(ctx)
	case msgRoundComplete:
		c.onRoundComplete(ctx, m)
	case msgRoundFailed:
		c.failed++
		c.currentMA = nil
		// Restart: the next tick spawns a fresh Master Aggregator for the
		// same task ("the current round... will fail, but will then be
		// restarted by the Coordinator").
		_ = ctx.Self.Send(msgTick{})
	case actor.Terminated:
		if m.Ref == c.currentMA && m.Failure {
			c.failed++
			c.currentMA = nil
			_ = ctx.Self.Send(msgTick{})
		}
	case msgStopCoordinator:
		// Clean shutdown (population deregistered): abandon the in-flight
		// round, hand the population lock back so a future registration can
		// acquire it immediately, and stop without a failure so watchers do
		// not respawn us.
		if c.currentMA != nil {
			_ = c.currentMA.Send(msgAbandonRound{Reason: "population deregistered"})
			c.currentMA = nil
		}
		if c.acquired {
			c.lock.Release(c.population, ctx.Self)
			c.acquired = false
		}
		ctx.Stop()
	case msgCoordinatorStats:
		round := int64(0)
		if len(c.plans) > 0 {
			if g, ok := c.global[c.plans[0].ID]; ok {
				round = g.Round
			}
		}
		m.Reply <- CoordinatorStats{RoundsCompleted: c.completed, RoundsFailed: c.failed, CurrentRound: round}
	case msgCrash:
		panic("coordinator crash injected")
	}
}

func (c *Coordinator) onTick(ctx *actor.Context) {
	// Registration in the shared locking service: only the single owner of
	// the population proceeds.
	if !c.acquired {
		if !c.lock.Acquire(c.population, ctx.Self) {
			ctx.Stop() // someone else owns this population
			return
		}
		c.acquired = true
	}
	if c.currentMA != nil {
		return // round in flight
	}
	if c.maxRounds > 0 && c.completed >= c.maxRounds {
		if c.onDone != nil {
			select {
			case <-c.onDone:
			default:
				close(c.onDone)
			}
		}
		return
	}
	if len(c.plans) == 0 {
		return
	}

	// Dynamic task choice (Sec. 7.1: the service "chooses among them using
	// a dynamic strategy"): round-robin over the deployed tasks.
	p := c.plans[c.planIdx%len(c.plans)]
	c.planIdx++

	global, err := c.loadGlobal(p)
	if err != nil {
		c.failed++
		return
	}

	// Tell selectors how many devices to admit for this round.
	target := p.Server.SelectTarget()
	per := target / len(c.selectors)
	extra := target % len(c.selectors)
	for i, sel := range c.selectors {
		n := per
		if i < extra {
			n++
		}
		_ = sel.Send(msgSetQuota{Population: c.population, Accept: n})
	}

	ma := ctx.Spawn(fmt.Sprintf("ma/%s/r%d", p.ID, global.Round), NewMasterAggregator(p, global, c.store, ctx.Self, c.selectors, c.now))
	ctx.Watch(ma)
	c.currentMA = ma
	_ = ma.Send(msgStartRound{})
}

// loadGlobal fetches the latest committed checkpoint for the task, or
// initializes round 0 from the model spec.
func (c *Coordinator) loadGlobal(p *plan.Plan) (*checkpoint.Checkpoint, error) {
	if g, ok := c.global[p.ID]; ok {
		return g, nil
	}
	if g, err := c.store.LatestCheckpoint(p.ID); err == nil {
		c.global[p.ID] = g
		return g, nil
	}
	m, err := p.Device.Model.Build()
	if err != nil {
		return nil, err
	}
	params := make(tensor.Vector, m.NumParams())
	m.ReadParams(params)
	g := &checkpoint.Checkpoint{TaskName: p.ID, Round: 0, Params: params}
	c.global[p.ID] = g
	return g, nil
}

func (c *Coordinator) onRoundComplete(ctx *actor.Context, m msgRoundComplete) {
	c.global[m.TaskID] = m.Committed
	c.completed++
	c.currentMA = nil
	_ = ctx.Self.Send(msgTick{})
}
