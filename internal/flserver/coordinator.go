package flserver

import (
	"fmt"
	"time"

	"repro/internal/actor"
	"repro/internal/checkpoint"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/tasks"
	"repro/internal/tensor"
)

// Coordinator is the top-level actor for one FL population (Sec. 4.2): it
// holds the population's lock, schedules FL tasks, instructs Selectors how
// many devices to accept, spawns a Master Aggregator per round, and
// restarts rounds whose Master Aggregator fails (Sec. 4.4).
//
// Task scheduling is pulled from the population's TaskSet every tick
// (Sec. 7.1: the service "chooses among them using a dynamic strategy"):
// due eval tasks first, then weighted round-robin over active train tasks.
// Lifecycle mutations (submit / pause / resume / retire) arrive as mailbox
// messages, so they serialize with scheduling — a retired task's in-flight
// round completes and is recorded, but the task never reschedules. The
// TaskSet itself is owned by the Server/Fleet entry and survives this
// actor's crash and respawn.
type Coordinator struct {
	population string
	lock       *actor.LockService
	store      storage.Store
	tasks      *tasks.TaskSet
	selectors  []actor.Ref
	// MaxRounds stops the coordinator after that many successful rounds
	// (0 = run forever). Tests and benchmarks set it.
	maxRounds int
	now       func() time.Time

	acquired    bool
	global      map[string]*checkpoint.Checkpoint // per task lineage
	currentMA   actor.Ref
	currentTask string
	completed   int
	failed      int
	// drained records that maxRounds was reached and the Selectors told to
	// release this population's parked devices.
	drained bool
	// onDone, if non-nil, is signalled when maxRounds is reached.
	onDone chan struct{}

	// Live population estimation (WithPacing): every tick probes the
	// Selectors for observed check-in rates; each msgCheckinRate sample
	// refreshes the TaskSet's population estimate, so MinDevices gates
	// track the reachable population instead of the static config value.
	// The folding itself lives in pacing.RateTracker, shared with the
	// sharded coordinator (which folds one sample stream per shard).
	steering  *pacing.Steering
	rates     *pacing.RateTracker
	gateRetry bool
}

// WithPacing attaches the population's pace steering and the static
// estimate it was configured with, enabling live population estimation
// from the Selector layer's observed check-in rates. Returns c for
// chaining at the spawn site.
func (c *Coordinator) WithPacing(st *pacing.Steering, staticEstimate int) *Coordinator {
	c.steering = st
	c.rates = pacing.NewRateTracker(st, staticEstimate)
	return c
}

// loadRetryDelay is the backoff before retrying a tick whose task failed
// to load its checkpoint (e.g. an eval task whose base has not committed
// yet, or a transient storage read error).
const loadRetryDelay = time.Second

// NewCoordinator returns the behavior for a population coordinator driving
// rounds for the tasks registered in ts.
func NewCoordinator(population string, lock *actor.LockService, store storage.Store, ts *tasks.TaskSet, selectors []actor.Ref, maxRounds int, onDone chan struct{}, now func() time.Time) *Coordinator {
	if now == nil {
		now = time.Now
	}
	return &Coordinator{
		population: population,
		lock:       lock,
		store:      store,
		tasks:      ts,
		selectors:  selectors,
		maxRounds:  maxRounds,
		now:        now,
		global:     make(map[string]*checkpoint.Checkpoint),
		onDone:     onDone,
	}
}

// Receive implements actor.Behavior.
func (c *Coordinator) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case msgTick:
		c.onTick(ctx)
	case msgRoundComplete:
		c.onRoundComplete(ctx, m)
	case msgRoundFailed:
		c.failed++
		c.tasks.NoteFailed(m.TaskID)
		c.currentMA = nil
		c.currentTask = ""
		// Restart: the next tick asks the TaskSet again ("the current
		// round... will fail, but will then be restarted by the
		// Coordinator"). A failed eval round re-arms its cadence, so it is
		// retried rather than waiting out another EvalEvery train rounds.
		_ = ctx.Self.Send(msgTick{})
	case actor.Terminated:
		if m.Ref == c.currentMA && m.Failure {
			c.failed++
			c.tasks.NoteFailed(c.currentTask)
			c.currentMA = nil
			c.currentTask = ""
			_ = ctx.Self.Send(msgTick{})
		}
	case msgCheckinRate:
		c.onCheckinRate(m)
	case msgTaskOp:
		c.onTaskOp(ctx, m)
	case msgTaskStats:
		m.Reply <- c.tasks.Stats()
	case msgStopCoordinator:
		// Clean shutdown (population deregistered): abandon the in-flight
		// round, hand the population lock back so a future registration can
		// acquire it immediately, and stop without a failure so watchers do
		// not respawn us.
		if c.currentMA != nil {
			_ = c.currentMA.Send(msgAbandonRound{Reason: "population deregistered"})
			c.currentMA = nil
			c.currentTask = ""
		}
		if c.acquired {
			c.lock.Release(c.population, ctx.Self)
			c.acquired = false
		}
		ctx.Stop()
	case msgCoordinatorStats:
		round := int64(0)
		if id, ok := c.tasks.PrimaryID(); ok {
			if g, ok := c.global[id]; ok {
				round = g.Round
			} else if st, ok := c.tasks.StatsFor(id); ok {
				round = st.LastRound
			}
		}
		m.Reply <- CoordinatorStats{RoundsCompleted: c.completed, RoundsFailed: c.failed, CurrentRound: round}
	case msgCrash:
		panic("coordinator crash injected")
	}
}

// onTaskOp applies one lifecycle mutation. Running on the actor goroutine
// means the mutation can never interleave with a scheduling tick; a
// successful mutation is followed by a tick so a task submitted or resumed
// on an idle population schedules immediately instead of waiting for the
// next round to complete.
func (c *Coordinator) onTaskOp(ctx *actor.Context, m msgTaskOp) {
	var err error
	switch m.Op {
	case taskOpSubmit:
		err = c.tasks.Submit(m.Plan, m.Policy)
	case taskOpPause:
		err = c.tasks.Pause(m.ID)
	case taskOpResume:
		err = c.tasks.Resume(m.ID)
	case taskOpRetire:
		err = c.tasks.Retire(m.ID)
	default:
		err = fmt.Errorf("flserver: unknown task op %d", m.Op)
	}
	m.Reply <- err
	if err == nil {
		_ = ctx.Self.Send(msgTick{})
	}
}

func (c *Coordinator) onTick(ctx *actor.Context) {
	// Registration in the shared locking service: only the single owner of
	// the population proceeds.
	if !c.acquired {
		if !c.lock.Acquire(c.population, ctx.Self) {
			ctx.Stop() // someone else owns this population
			return
		}
		c.acquired = true
	}
	// Any tick satisfies a pending gate-retry; a new one is armed below if
	// the gate still holds.
	c.gateRetry = false
	c.probeRates(ctx)
	if c.currentMA != nil {
		return // round in flight
	}
	if c.maxRounds > 0 && c.completed >= c.maxRounds {
		if !c.drained {
			// No further round will start: release the parked devices (and
			// their half-open connections) the Selectors are holding for
			// us, instead of stranding them until process teardown.
			c.drained = true
			for _, sel := range c.selectors {
				_ = sel.Send(msgReleaseParked{Population: c.population})
			}
		}
		if c.onDone != nil {
			select {
			case <-c.onDone:
			default:
				close(c.onDone)
			}
		}
		return
	}

	t, ok := c.tasks.Next()
	if !ok {
		// Nothing schedulable: all tasks paused/retired/gated, or none yet.
		// A task gated only by MinDevices may become schedulable as fresh
		// check-in rate samples move the live estimate, and an idle
		// Coordinator has no other tick source — re-check on a backoff.
		if c.steering != nil && !c.gateRetry && c.tasks.GatedByEstimate() {
			c.gateRetry = true
			self := ctx.Self
			time.AfterFunc(loadRetryDelay, func() { _ = self.Send(msgTick{}) })
		}
		return
	}
	p := t.Plan

	global, err := c.loadGlobal(t)
	if err != nil {
		c.failed++
		c.tasks.NoteFailed(p.ID)
		// A failed load must not stall the population: nothing else is
		// guaranteed to tick an idle Coordinator (ticks come only from
		// round outcomes and task ops), so retry after a short backoff.
		// The TaskSet rotates its weighted round-robin on every pick, so a
		// permanently broken task costs one failed pick per rotation — it
		// cannot starve the healthy tasks.
		self := ctx.Self
		time.AfterFunc(loadRetryDelay, func() { _ = self.Send(msgTick{}) })
		return
	}

	// Tell selectors how many devices to admit for this round.
	target := p.Server.SelectTarget()
	per := target / len(c.selectors)
	extra := target % len(c.selectors)
	for i, sel := range c.selectors {
		n := per
		if i < extra {
			n++
		}
		_ = sel.Send(msgSetQuota{Population: c.population, Accept: n})
	}

	ma := ctx.Spawn(fmt.Sprintf("ma/%s/r%d", p.ID, global.Round), NewMasterAggregator(p, global, c.store, ctx.Self, c.selectors, t.Policy.MinRuntimeVersion, c.now))
	ctx.Watch(ma)
	c.currentMA = ma
	c.currentTask = p.ID
	_ = ma.Send(msgStartRound{})
}

// loadGlobal fetches the checkpoint the task's next round serves. Train
// tasks (and standalone eval tasks) own a lineage keyed by their own ID:
// the latest committed checkpoint, or a fresh round-0 initialization from
// the model spec. An eval task with a base task (Policy.EvalOf) serves the
// BASE task's latest committed checkpoint read-only — it is cached under
// the base ID, never the eval ID, so eval rounds cannot perturb or fork
// the training lineage.
func (c *Coordinator) loadGlobal(t tasks.Task) (*checkpoint.Checkpoint, error) {
	p := t.Plan
	if p.Type == plan.TaskEval && t.Policy.EvalOf != "" {
		if g, ok := c.global[t.Policy.EvalOf]; ok {
			return g, nil
		}
		g, err := c.store.LatestCheckpoint(t.Policy.EvalOf)
		if err != nil {
			return nil, fmt.Errorf("eval task %q: base task %q has no committed checkpoint: %w", p.ID, t.Policy.EvalOf, err)
		}
		c.global[t.Policy.EvalOf] = g
		return g, nil
	}
	if g, ok := c.global[p.ID]; ok {
		return g, nil
	}
	if g, err := c.store.LatestCheckpoint(p.ID); err == nil {
		c.global[p.ID] = g
		return g, nil
	}
	m, err := p.Device.Model.Build()
	if err != nil {
		return nil, err
	}
	params := make(tensor.Vector, m.NumParams())
	m.ReadParams(params)
	g := &checkpoint.Checkpoint{TaskName: p.ID, Round: 0, Params: params}
	c.global[p.ID] = g
	return g, nil
}

// probeRates asks every Selector for its check-in arrivals since the last
// sample. Fire-and-forget: the samples return as msgCheckinRate messages,
// so the actor never blocks on a Selector.
func (c *Coordinator) probeRates(ctx *actor.Context) {
	if c.steering == nil {
		return
	}
	for _, sel := range c.selectors {
		_ = sel.Send(msgRateProbe{Population: c.population, To: ctx.Self})
	}
}

// onCheckinRate folds one Selector's arrival sample into the live
// population estimate (pacing.RateTracker: population ≈ λ × MeanWait,
// EWMA-smoothed, latest sample per selector). The result feeds
// TaskSet.SetPopulationEstimate, which the MinDevices deployment gates
// check.
func (c *Coordinator) onCheckinRate(m msgCheckinRate) {
	if c.rates == nil {
		return
	}
	c.tasks.SetPopulationEstimate(c.rates.Fold(pacing.RateSample{
		Source:  m.From.Name(),
		Count:   int64(m.Count),
		Elapsed: m.Elapsed,
		Demand:  m.Demand,
	}, c.now()))
}

func (c *Coordinator) onRoundComplete(ctx *actor.Context, m msgRoundComplete) {
	// Only train rounds advance a checkpoint lineage. A committed eval
	// round's m.Committed is the base task's unchanged checkpoint; caching
	// it under the eval task's ID would fork the lineage and freeze later
	// eval rounds on a stale model.
	if t, ok := c.tasks.Get(m.TaskID); !ok || t.Plan.Type != plan.TaskEval {
		c.global[m.TaskID] = m.Committed
	}
	c.tasks.NoteCommitted(m.TaskID, m.Round, m.Completed, c.now())
	c.completed++
	c.currentMA = nil
	c.currentTask = ""
	_ = ctx.Self.Send(msgTick{})
}
