package flserver

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fedavg"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// roundIngest is the striped edge-accumulation state of one non-secure
// round: GOMAXPROCS mutex-striped partial accumulators that the per-device
// connection readers fold decoded updates into directly. The per-device hot
// loop performs zero O(dim) allocations and zero O(dim) actor-mailbox hops;
// at finalization the stripes are sealed and distributed across the round's
// group Aggregators for merging (the Sec. 4.3 aggregation tree).
type roundIngest struct {
	stripes []*fedavg.PartialAccumulator
	next    atomic.Uint64
}

// newRoundIngest builds one stripe per processor for dim-sized updates.
func newRoundIngest(dim int) *roundIngest {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	ri := &roundIngest{stripes: make([]*fedavg.PartialAccumulator, n)}
	for i := range ri.stripes {
		ri.stripes[i] = fedavg.NewPartial(dim)
	}
	return ri
}

// stripe hands out stripes round-robin, spreading concurrent readers across
// the stripe locks.
func (ri *roundIngest) stripe() *fedavg.PartialAccumulator {
	return ri.stripes[ri.next.Add(1)%uint64(len(ri.stripes))]
}

// close seals every stripe: folds that lost the race against finalization
// get fedavg.ErrPartialClosed instead of silently landing in a merged (or
// abandoned) round.
func (ri *roundIngest) close() {
	for _, s := range ri.stripes {
		s.Close()
	}
}

// reports counts the device reports already folded into the stripes
// (updates plus metrics-only). The Master Aggregator's accounting lags the
// folds by one mailbox hop, so window-close decisions consult this ground
// truth rather than fail a round whose reports physically arrived.
func (ri *roundIngest) reports() int {
	n := 0
	for _, s := range ri.stripes {
		n += s.Reports()
	}
	return n
}

// updateBufPool recycles O(dim) parameter buffers across devices and across
// rounds: the secure Reporting path decodes each device's delta‖weight into
// a pooled buffer that the group Aggregator returns after the secagg run
// consumes it, so steady-state rounds reuse the same K buffers instead of
// generating O(K×dim) garbage per round.
var updateBufPool sync.Pool

// getParamBuf returns a length-n buffer, reusing a pooled one when its
// capacity suffices (a pooled buffer of the wrong size is simply dropped).
func getParamBuf(n int) tensor.Vector {
	if v, ok := updateBufPool.Get().(tensor.Vector); ok && cap(v) >= n {
		return v[:n]
	}
	return make(tensor.Vector, n)
}

// putParamBuf returns a buffer to the pool. The caller must not touch the
// slice afterwards — the next getParamBuf may hand it to another device's
// reader.
func putParamBuf(v tensor.Vector) {
	if cap(v) > 0 {
		updateBufPool.Put(v[:cap(v)])
	}
}

// respGate bounds concurrent off-goroutine response sends process-wide, so
// a flood of rejections cannot hold unbounded frame buffers in flight.
var respGate = make(chan struct{}, 256)

// sendThenClose delivers msg to conn on its own goroutine and then closes
// the connection. Every path that answers a device from an actor goroutine
// (Master Aggregator rejections and aborts, group Aggregator report
// responses) routes through here: a stalled socket blocks one pooled
// goroutine for at most abortGrace — never an actor, never the round.
func sendThenClose(conn transport.Conn, msg interface{}) {
	go func() {
		respGate <- struct{}{}
		defer func() { <-respGate }()
		sendWithGrace(conn, msg)
	}()
}

// sendWithGrace attempts one send, bounded by abortGrace, then closes the
// conn regardless — the Close also unblocks the inner Send if the peer
// checked in and then never drained its socket (Conn has no write
// deadline).
func sendWithGrace(conn transport.Conn, msg interface{}) {
	sent := make(chan struct{})
	go func() {
		_ = conn.Send(msg)
		close(sent)
	}()
	// This runs once per report on the hot path: stop the timer as soon as
	// the (typical, microsecond) send completes, rather than leaving K live
	// timers per round to expire on their own.
	grace := time.NewTimer(abortGrace)
	select {
	case <-sent:
		grace.Stop()
	case <-grace.C:
	}
	_ = conn.Close()
}
