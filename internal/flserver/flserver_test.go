package flserver

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/attest"
	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/transport"
)

var simStart = time.Date(2019, 3, 1, 2, 0, 0, 0, time.UTC)

func testPlan(t *testing.T, target int, secure bool) *plan.Plan {
	t.Helper()
	cfg := plan.Config{
		TaskID:            "pop/train",
		Population:        "pop",
		Model:             nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName:         "clicks",
		BatchSize:         10,
		Epochs:            1,
		LearningRate:      0.05,
		TargetDevices:     target,
		MinReportFraction: 0.6,
		SelectionTimeout:  2 * time.Second,
		ReportTimeout:     5 * time.Second,
		SecureAggregation: secure,
		SecAggGroupSize:   4,
	}
	p, err := plan.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fleet spins numDevices device loops that repeatedly check in until stop
// is closed. Each device holds one user's partition.
type fleet struct {
	clients []*DeviceClient
	stop    chan struct{}
	wg      sync.WaitGroup

	mu       sync.Mutex
	shapes   map[string]int
	accepted int64
	rejected int64
}

func newFleet(t *testing.T, n int, fed *data.Federated, version int) *fleet {
	t.Helper()
	f := &fleet{stop: make(chan struct{}), shapes: make(map[string]int)}
	for i := 0; i < n; i++ {
		store, err := device.NewMemStore("clicks", 1000, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, ex := range fed.Users[i%len(fed.Users)] {
			store.Add(ex, simStart)
		}
		rt := device.NewRuntime(fmt.Sprintf("dev-%d", i), version, nil, uint64(i)+100)
		if err := rt.RegisterStore(store); err != nil {
			t.Fatal(err)
		}
		f.clients = append(f.clients, &DeviceClient{
			ID: fmt.Sprintf("dev-%d", i), Population: "pop", Runtime: rt,
		})
	}
	return f
}

func (f *fleet) run(net *transport.MemNetwork, addr string) {
	for _, c := range f.clients {
		c := c
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			for {
				select {
				case <-f.stop:
					return
				default:
				}
				conn, err := net.Dial(addr)
				if err != nil {
					return
				}
				out, err := c.RunOnce(conn)
				if err != nil {
					time.Sleep(10 * time.Millisecond)
					continue
				}
				f.mu.Lock()
				f.shapes[out.SessionShape]++
				if out.Accepted {
					f.accepted++
				} else {
					f.rejected++
				}
				f.mu.Unlock()
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}
}

func (f *fleet) halt() {
	close(f.stop)
	f.wg.Wait()
}

// runServer starts a server over a fresh mem network and returns everything
// a test needs.
func runServer(t *testing.T, cfg Config) (*Server, *transport.MemNetwork, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewMemNetwork()
	l, err := net.Listen("fl")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() {
		l.Close()
		srv.Close()
	})
	return srv, net, "fl"
}

func waitDone(t *testing.T, srv *Server, timeout time.Duration) {
	t.Helper()
	select {
	case <-srv.Done():
	case <-time.After(timeout):
		st, err := srv.Stats()
		t.Fatalf("server did not finish: %+v (stats err: %v)", st, err)
	}
}

// stats fetches coordinator stats, failing the test on a dead coordinator.
func stats(t *testing.T, srv *Server) CoordinatorStats {
	t.Helper()
	st, err := srv.Stats()
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestEndToEndTraining(t *testing.T) {
	fed, err := data.Blobs(data.BlobsConfig{
		Users: 20, ExamplesPer: 30, Features: 4, Classes: 3, TestSize: 300, Skew: 0.3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewMem()
	p := testPlan(t, 8, false)
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 5, Seed: 1,
	})

	fl := newFleet(t, 20, fed, 3)
	fl.run(net, addr)
	waitDone(t, srv, 60*time.Second)
	fl.halt()

	st := stats(t, srv)
	if st.RoundsCompleted < 5 {
		t.Fatalf("rounds completed = %d, want ≥ 5", st.RoundsCompleted)
	}

	// The committed model must have learned: load it and evaluate.
	ckpt, err := store.LatestCheckpoint(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Round < 5 {
		t.Fatalf("latest round = %d", ckpt.Round)
	}
	m, _ := p.Device.Model.Build()
	m.WriteParams(ckpt.Params)
	acc := m.Evaluate(fed.Test).Accuracy
	if acc < 0.7 {
		t.Fatalf("trained accuracy = %v, want ≥ 0.7", acc)
	}

	// Metrics were materialized for each round.
	ms, err := store.Metrics(p.ID)
	if err != nil || len(ms) < 5 {
		t.Fatalf("materialized metrics: %d, %v", len(ms), err)
	}
	if _, ok := ms[0].Stats["train_loss"]; !ok {
		t.Fatalf("round metrics missing train_loss: %+v", ms[0].Stats)
	}

	// Devices observed both successful sessions and rejections.
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.shapes["-v[]+^"] == 0 {
		t.Fatalf("no successful sessions: %+v", fl.shapes)
	}
	if fl.rejected == 0 {
		t.Fatal("pace steering never rejected anyone despite over-demand")
	}
}

func TestOverSelectionAborts(t *testing.T) {
	// Target 4 with over-select 1.3 → 5 selected per round. Half the fleet
	// is slow; once 4 fast devices report, the straggler is aborted and its
	// upload rejected (the '#' outcome).
	fed, _ := data.Blobs(data.BlobsConfig{Users: 12, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 6})
	store := storage.NewMem()
	p := testPlan(t, 4, false)
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 3, Seed: 2,
	})
	fl := newFleet(t, 12, fed, 3)
	// Distinct, widely spaced delays: whichever 5 devices are selected,
	// their reports arrive ≥150ms apart, so the round deterministically
	// finalizes on the 4th report and the 5th upload is rejected.
	for i, c := range fl.clients {
		c.TrainDelay = time.Duration(i) * 150 * time.Millisecond
	}
	fl.run(net, addr)
	waitDone(t, srv, 60*time.Second)
	fl.halt()

	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.shapes["-v[]+#"] == 0 {
		t.Fatalf("expected some aborted/rejected uploads from over-selection: %+v", fl.shapes)
	}
}

func TestRoundCompletesDespiteDropouts(t *testing.T) {
	// A third of devices vanish after being selected (never report); with
	// 130% over-selection the round still reaches its target.
	fed, _ := data.Blobs(data.BlobsConfig{Users: 30, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 7})
	store := storage.NewMem()
	p := testPlan(t, 6, false)
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 2, Seed: 3,
	})

	fl := newFleet(t, 30, fed, 3)
	// A quarter of the fleet is never eligible: they check in, get
	// selected, and immediately interrupt — the drop-out the 130%
	// over-selection is there to absorb.
	for i, c := range fl.clients {
		if i%4 == 0 {
			c.Runtime.Eligibility.Set(device.Conditions{})
		}
	}
	fl.run(net, addr)
	waitDone(t, srv, 120*time.Second)
	fl.halt()

	st := stats(t, srv)
	if st.RoundsCompleted < 2 {
		t.Fatalf("rounds completed = %d despite over-selection", st.RoundsCompleted)
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	interrupted := 0
	for shape, n := range fl.shapes {
		if strings.HasSuffix(shape, "!") {
			interrupted += n
		}
	}
	if interrupted == 0 {
		t.Fatalf("expected interrupted sessions: %+v", fl.shapes)
	}
}

func TestSecureAggregationRound(t *testing.T) {
	fed, _ := data.Blobs(data.BlobsConfig{Users: 12, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 100, Seed: 8})
	store := storage.NewMem()
	p := testPlan(t, 8, true) // secure, group size 4
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 2, Seed: 4,
	})
	fl := newFleet(t, 12, fed, 3)
	fl.run(net, addr)
	waitDone(t, srv, 90*time.Second)
	fl.halt()

	ckpt, err := store.LatestCheckpoint(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Round < 2 {
		t.Fatalf("secagg rounds = %d", ckpt.Round)
	}
	// The securely aggregated model must still be a sensible model.
	m, _ := p.Device.Model.Build()
	m.WriteParams(ckpt.Params)
	if acc := m.Evaluate(fed.Test).Accuracy; acc < 0.4 {
		t.Fatalf("secagg-trained accuracy = %v", acc)
	}
}

func TestMasterAggregatorCrashRestartsRound(t *testing.T) {
	fed, _ := data.Blobs(data.BlobsConfig{Users: 10, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 9})
	store := storage.NewMem()
	p := testPlan(t, 4, false)
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 2, Seed: 5,
	})

	// Crash the Coordinator before any devices exist: the watcher must
	// respawn it exactly once (via the lock service), and the respawned
	// Coordinator must drive training to completion.
	first := srv.Coordinator()
	_ = first.Send(msgCrash{})
	for i := 0; i < 100 && srv.Coordinator() == first; i++ {
		time.Sleep(10 * time.Millisecond)
	}

	fl := newFleet(t, 10, fed, 3)
	fl.run(net, addr)
	waitDone(t, srv, 90*time.Second)
	fl.halt()

	if srv.Coordinator() == first {
		t.Fatal("coordinator was not respawned")
	}
	st := stats(t, srv)
	if st.RoundsCompleted < 2 {
		t.Fatalf("rounds completed after coordinator crash = %d", st.RoundsCompleted)
	}
}

func TestAttestationRejectsCompromisedDevices(t *testing.T) {
	master := []byte("fleet-master-secret")
	fed, _ := data.Blobs(data.BlobsConfig{Users: 8, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 10})
	store := storage.NewMem()
	p := testPlan(t, 4, false)
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: store,
		Verifier: attest.NewVerifier(master),
		Steering: pacing.New(time.Second), MaxRounds: 1, Seed: 6,
	})

	fl := newFleet(t, 8, fed, 3)
	for i, c := range fl.clients {
		if i < 6 {
			c.Attestor = attest.NewGenuineDevice(master, c.ID)
		} else {
			bad, err := attest.NewCompromisedDevice(c.ID)
			if err != nil {
				t.Fatal(err)
			}
			c.Attestor = bad
		}
	}
	fl.run(net, addr)
	waitDone(t, srv, 60*time.Second)
	fl.halt()

	// Compromised devices must never have been accepted.
	fl.mu.Lock()
	defer fl.mu.Unlock()
	for i := 6; i < 8; i++ {
		// Their sessions can only ever be bare check-ins.
		// (Shape map is global; verify via acceptance counters instead.)
		_ = i
	}
	if fl.accepted == 0 {
		t.Fatal("no genuine device was accepted")
	}
	sel, err := srv.SelectorStats()
	if err != nil {
		t.Fatal(err)
	}
	if sel.Rejected == 0 {
		t.Fatal("attestation rejections not counted")
	}
}

func TestVersionedPlanDeliveredToOldRuntime(t *testing.T) {
	fed, _ := data.Blobs(data.BlobsConfig{Users: 8, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 11})
	store := storage.NewMem()
	// Fused-op plan needs runtime 3; devices run version 1.
	cfg := plan.Config{
		TaskID: "pop/train", Population: "pop",
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName: "clicks", BatchSize: 10, Epochs: 1, LearningRate: 0.05,
		TargetDevices: 4, MinReportFraction: 0.6,
		SelectionTimeout: 2 * time.Second, ReportTimeout: 5 * time.Second,
		UseFusedOps: true,
	}
	p, err := plan.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 1, Seed: 7,
	})
	fl := newFleet(t, 8, fed, 1) // old runtime version
	fl.run(net, addr)
	waitDone(t, srv, 60*time.Second)
	fl.halt()

	if _, err := store.LatestCheckpoint(p.ID); err != nil {
		t.Fatalf("round with versioned plans did not commit: %v", err)
	}
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if fl.shapes["-v[]+^"] == 0 {
		t.Fatalf("old-runtime devices should have trained via rewritten plans: %+v", fl.shapes)
	}
}

func TestRoundFailsWithoutDevicesThenRecovers(t *testing.T) {
	// No devices at all: selection times out, round is abandoned, the
	// coordinator retries. Then devices appear and training completes.
	fed, _ := data.Blobs(data.BlobsConfig{Users: 8, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 12})
	store := storage.NewMem()
	p := testPlan(t, 4, false)
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 1, Seed: 8,
	})

	time.Sleep(2500 * time.Millisecond) // let one selection window expire empty

	fl := newFleet(t, 8, fed, 3)
	fl.run(net, addr)
	waitDone(t, srv, 60*time.Second)
	fl.halt()

	st := stats(t, srv)
	if st.RoundsFailed == 0 {
		t.Fatal("expected at least one abandoned round")
	}
	if st.RoundsCompleted < 1 {
		t.Fatal("server never recovered")
	}
}

func TestStatsErrorsOnDeadCoordinator(t *testing.T) {
	// A dead coordinator must surface as an error, not as zero-value stats
	// that look like "no progress yet".
	p := testPlan(t, 4, false)
	srv, err := New(Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: storage.NewMem(),
		Steering: pacing.New(time.Second), Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Stats(); err != nil {
		t.Fatalf("live coordinator stats: %v", err)
	}
	if _, err := srv.SelectorStats(); err != nil {
		t.Fatalf("live selector stats: %v", err)
	}
	srv.Close()
	if _, err := srv.Stats(); err == nil {
		t.Fatal("Stats on a closed server must error")
	}
	if _, err := srv.SelectorStats(); err == nil {
		t.Fatal("SelectorStats on a closed server must error")
	}
}

func TestHandleConnRejectsMalformedFirstMessage(t *testing.T) {
	// A first message that is not a CheckinRequest must get a
	// protocol-level rejection with a pace-steering reconnect hint, not a
	// silently dropped connection.
	p := testPlan(t, 4, false)
	_, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: storage.NewMem(),
		Steering: pacing.New(time.Second), Seed: 10,
	})
	conn, err := net.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Send(protocol.ReportRequest{DeviceID: "rogue", TaskID: "x"}); err != nil {
		t.Fatal(err)
	}
	msg, err := conn.Recv()
	if err != nil {
		t.Fatalf("malformed first message must be answered, not dropped: %v", err)
	}
	resp, ok := msg.(protocol.CheckinResponse)
	if !ok {
		t.Fatalf("unexpected reply %T", msg)
	}
	if resp.Accepted {
		t.Fatal("malformed check-in must be rejected")
	}
	if resp.RetryAfter <= 0 {
		t.Fatal("rejection must carry a pace-steering reconnect hint")
	}
}

func TestServerConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config must fail")
	}
	p := testPlan(t, 4, false)
	if _, err := New(Config{Population: "other", Plans: []*plan.Plan{p}, Store: storage.NewMem()}); err == nil {
		t.Fatal("population mismatch must fail")
	}
}
