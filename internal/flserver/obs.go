package flserver

import "repro/internal/obs"

// Process-wide flserver instruments, registered once and cached as package
// vars so the report hot loop and the check-in path pay exactly one atomic
// add per event — no map lookups, no locks, no allocation.
var (
	obsCheckins        = obs.Default.Counter("fl_checkins_total")
	obsCheckinAccepted = obs.Default.Counter("fl_checkin_accepted_total")
	obsCheckinRejected = obs.Default.Counter("fl_checkin_rejected_total")
	obsReportsOK       = obs.Default.Counter("fl_reports_total")
	obsReportsRejected = obs.Default.Counter("fl_reports_rejected_total")
	obsReportsLate     = obs.Default.Counter("fl_reports_late_total")
	obsDevicesLost     = obs.Default.Counter("fl_devices_lost_total")
	obsEdgeFolds       = obs.Default.Counter("fl_edge_stripe_folds_total")
	obsPlanMarshals    = obs.Default.Counter("fl_plan_marshals_total")

	// Robust-aggregation defense activity, process-wide; the per-task
	// breakdowns below ride task-labeled series resolved once per round.
	obsRobustClipped  = obs.Default.Counter("fl_robust_clipped_total")
	obsRobustRejected = obs.Default.Counter("fl_robust_rejected_total")
	obsRobustTrimmed  = obs.Default.Counter("fl_robust_trimmed_total")
)

// robustTaskCounters resolves the task-labeled defense counters for one
// round (one registry lookup per round, not per report), so operators can
// see on /metrics which task's policy is clipping, rejecting, or trimming.
func robustTaskCounters(taskID string) (clipped, rejected, trimmed *obs.Counter) {
	return obs.Default.Counter(obs.Label("fl_robust_clipped_total", "task", taskID)),
		obs.Default.Counter(obs.Label("fl_robust_rejected_total", "task", taskID)),
		obs.Default.Counter(obs.Label("fl_robust_trimmed_total", "task", taskID))
}
