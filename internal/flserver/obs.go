package flserver

import "repro/internal/obs"

// Process-wide flserver instruments, registered once and cached as package
// vars so the report hot loop and the check-in path pay exactly one atomic
// add per event — no map lookups, no locks, no allocation.
var (
	obsCheckins        = obs.Default.Counter("fl_checkins_total")
	obsCheckinAccepted = obs.Default.Counter("fl_checkin_accepted_total")
	obsCheckinRejected = obs.Default.Counter("fl_checkin_rejected_total")
	obsReportsOK       = obs.Default.Counter("fl_reports_total")
	obsReportsRejected = obs.Default.Counter("fl_reports_rejected_total")
	obsReportsLate     = obs.Default.Counter("fl_reports_late_total")
	obsDevicesLost     = obs.Default.Counter("fl_devices_lost_total")
	obsEdgeFolds       = obs.Default.Counter("fl_edge_stripe_folds_total")
	obsPlanMarshals    = obs.Default.Counter("fl_plan_marshals_total")
)
