package flserver

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/tasks"
	"repro/internal/transport"
)

// BenchMultiTaskConfig parametrizes one multi-task run for
// BenchmarkMultiTask and `flbench -exp multitask`: ONE population whose
// TaskSet interleaves a train task with an eval task submitted onto the
// live server (Sec. 7 model-engineer workflow), driven by a shared device
// fleet through the real round pipeline.
type BenchMultiTaskConfig struct {
	// Devices is the device fleet size (default 9).
	Devices int
	// TargetDevices is K per round for both tasks (default 3).
	TargetDevices int
	// TrainRounds is the committed train rounds the run must reach
	// (default 4).
	TrainRounds int
	// EvalEvery is the eval task's cadence in committed train rounds
	// (default 2).
	EvalEvery int
	// TCP moves every message over real loopback sockets instead of the
	// in-memory transport.
	TCP  bool
	Seed uint64
	// Timeout bounds the whole run (default 2 minutes).
	Timeout time.Duration
}

// BenchMultiTaskStats describes one completed multi-task run.
type BenchMultiTaskStats struct {
	// PerTask is every task's lifecycle record at the end of the run.
	PerTask []tasks.Stats
	// RoundsPerSec maps task ID to committed rounds per wall-clock second.
	RoundsPerSec map[string]float64
	Elapsed      time.Duration
}

// RunBenchMultiTask drives one population running an interleaved train +
// eval task set to cfg.TrainRounds committed train rounds. The eval task
// is submitted through the live SubmitTask API after training starts, so
// the harness exercises the full lifecycle path, not just the scheduler.
func RunBenchMultiTask(cfg BenchMultiTaskConfig) (BenchMultiTaskStats, error) {
	var stats BenchMultiTaskStats
	if cfg.Devices <= 0 {
		cfg.Devices = 9
	}
	if cfg.TargetDevices <= 0 {
		cfg.TargetDevices = 3
	}
	if cfg.TrainRounds <= 0 {
		cfg.TrainRounds = 4
	}
	if cfg.EvalEvery <= 0 {
		cfg.EvalEvery = 2
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if cfg.Devices < cfg.TargetDevices {
		return stats, fmt.Errorf("multitask bench: %d devices cannot satisfy K=%d", cfg.Devices, cfg.TargetDevices)
	}

	const pop = "bench-mt"
	base := plan.Config{
		Population: pop,
		Model:      nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName:  pop + "-store", BatchSize: 5, Epochs: 1, LearningRate: 0.1,
		TargetDevices: cfg.TargetDevices, MinReportFraction: 0.7,
		SelectionTimeout: 30 * time.Second, ReportTimeout: time.Minute,
	}
	trainCfg := base
	trainCfg.TaskID = pop + "/train"
	trainPlan, err := plan.Generate(trainCfg)
	if err != nil {
		return stats, err
	}
	evalCfg := base
	evalCfg.TaskID = pop + "/eval"
	evalCfg.Type = plan.TaskEval
	evalCfg.BatchSize, evalCfg.Epochs, evalCfg.LearningRate = 0, 0, 0
	evalPlan, err := plan.Generate(evalCfg)
	if err != nil {
		return stats, err
	}

	srv, err := New(Config{
		Population: pop, Plans: []*plan.Plan{trainPlan}, Store: storage.NewMem(),
		Steering: pacing.New(time.Second), Seed: cfg.Seed,
	})
	if err != nil {
		return stats, err
	}
	defer srv.Close()

	var l transport.Listener
	var dial func() (transport.Conn, error)
	if cfg.TCP {
		tl, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			return stats, err
		}
		l = tl
		addr := tl.Addr()
		dial = func() (transport.Conn, error) { return transport.DialTCP(addr) }
	} else {
		net := transport.NewMemNetwork()
		ml, err := net.Listen(pop)
		if err != nil {
			return stats, err
		}
		l = ml
		dial = func() (transport.Conn, error) { return net.Dial(pop) }
	}
	defer l.Close()
	go srv.Serve(l)

	fed, err := data.Blobs(data.BlobsConfig{
		Users: cfg.Devices, ExamplesPer: 20, Features: 4, Classes: 3,
		TestSize: 10, Seed: cfg.Seed + 1,
	})
	if err != nil {
		return stats, err
	}
	stop := make(chan struct{})
	var devices sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.Devices; i++ {
		id := fmt.Sprintf("mt-dev-%d", i)
		st, err := device.NewMemStore(pop+"-store", 1000, 0)
		if err != nil {
			return stats, err
		}
		now := time.Now()
		for _, ex := range fed.Users[i] {
			st.Add(ex, now)
		}
		rt := device.NewRuntime(id, 3, nil, cfg.Seed+uint64(i)+100)
		if err := rt.RegisterStore(st); err != nil {
			return stats, err
		}
		client := &DeviceClient{ID: id, Population: pop, Runtime: rt}
		devices.Add(1)
		go func() {
			defer devices.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if conn, err := dial(); err == nil {
					_, _ = client.RunOnce(conn)
				}
				time.Sleep(2 * time.Millisecond)
			}
		}()
	}
	defer func() {
		close(stop)
		devices.Wait()
	}()

	// Deploy the eval task onto the live server once training is in
	// flight, then wait for TrainRounds MORE committed train rounds — the
	// cadence window the eval task paces against.
	deadline := time.Now().Add(cfg.Timeout)
	trainRounds := func() (int, error) {
		sts, err := srv.TaskStats()
		if err != nil {
			return 0, err
		}
		for _, st := range sts {
			if st.ID == trainPlan.ID {
				return st.RoundsCommitted, nil
			}
		}
		return 0, fmt.Errorf("multitask bench: train task missing from TaskStats")
	}
	trainAtSubmit := 0
	for {
		if time.Now().After(deadline) {
			return stats, fmt.Errorf("multitask bench: training never started within %v", cfg.Timeout)
		}
		n, err := trainRounds()
		if err != nil {
			return stats, err
		}
		if n >= 1 {
			trainAtSubmit = n
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := srv.SubmitTask(evalPlan, tasks.Policy{EvalEvery: cfg.EvalEvery, EvalOf: trainPlan.ID}); err != nil {
		return stats, err
	}
	for {
		if time.Now().After(deadline) {
			return stats, fmt.Errorf("multitask bench: train task did not commit %d more rounds within %v", cfg.TrainRounds, cfg.Timeout)
		}
		n, err := trainRounds()
		if err != nil {
			return stats, err
		}
		if n >= trainAtSubmit+cfg.TrainRounds {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stats.Elapsed = time.Since(start)

	sts, err := srv.TaskStats()
	if err != nil {
		return stats, err
	}
	stats.PerTask = sts
	stats.RoundsPerSec = make(map[string]float64, len(sts))
	for _, st := range sts {
		stats.RoundsPerSec[st.ID] = float64(st.RoundsCommitted) / stats.Elapsed.Seconds()
	}
	var evalSt tasks.Stats
	for _, st := range sts {
		if st.ID == evalPlan.ID {
			evalSt = st
		}
	}
	// The cadence owes roughly TrainRounds/EvalEvery eval rounds; the last
	// one may still be in flight when the train target lands.
	minEval := cfg.TrainRounds/cfg.EvalEvery - 1
	if minEval < 1 {
		minEval = 1
	}
	if evalSt.RoundsCommitted < minEval {
		return stats, fmt.Errorf("multitask bench: eval committed %d rounds, want ≥ %d (train %d, every %d)",
			evalSt.RoundsCommitted, minEval, cfg.TrainRounds, cfg.EvalEvery)
	}
	return stats, nil
}
