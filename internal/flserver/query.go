package flserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/actor"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/tasks"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Exported entry points for driving Selector and Coordinator actors from
// outside the package. The fleet gateway (internal/fleet) composes these
// same actors across many populations: it spawns Selectors and
// Coordinators itself and talks to them through the functions here, so the
// actor message types stay private to this package.

// statsTimeout bounds how long a stats query waits for an actor before
// declaring it unresponsive.
const statsTimeout = 5 * time.Second

// StartCoordinator kicks a freshly spawned Coordinator's scheduling loop.
func StartCoordinator(coord actor.Ref) error { return coord.Send(msgTick{}) }

// StopCoordinator cleanly shuts a Coordinator down: the in-flight round is
// abandoned, the population lock released, and watchers see a non-failure
// termination (no respawn).
func StopCoordinator(coord actor.Ref) error { return coord.Send(msgStopCoordinator{}) }

// InjectCoordinatorCrash makes a Coordinator panic on its next message.
// Failure-injection hook for supervision tests only.
func InjectCoordinatorCrash(coord actor.Ref) error { return coord.Send(msgCrash{}) }

// ForwardCheckin hands a device's first message to a Selector, which owns
// the accept/reject decision for the request's population.
func ForwardCheckin(sel actor.Ref, req protocol.CheckinRequest, conn transport.Conn) error {
	return sel.Send(msgCheckin{Req: req, Conn: conn})
}

// RegisterSelectorPopulation adds a population to a running Selector.
func RegisterSelectorPopulation(sel actor.Ref, pop SelectorPopulation) error {
	return sel.Send(msgRegisterPopulation{Pop: pop})
}

// DeregisterSelectorPopulation removes a population from a running
// Selector: parked devices are steered away, later check-ins rejected.
func DeregisterSelectorPopulation(sel actor.Ref, name string) error {
	return sel.Send(msgDeregisterPopulation{Name: name})
}

// ReleaseParked steers one population's parked devices away with a
// reconnect hint and zeroes its quota, keeping the population registered.
// The sharded tier uses this when a selector process loses its coordinator
// link: parked devices must be told "retry later", not stranded on open
// connections waiting for a round that cannot start.
func ReleaseParked(sel actor.Ref, population string) error {
	return sel.Send(msgReleaseParked{Population: population})
}

// ProbeCheckinRate asks a Selector for one population's check-in arrivals
// since the last probe; the sample is delivered to `to` (spawn one with
// NewRateForwarder to receive it outside this package).
func ProbeCheckinRate(sel actor.Ref, population string, to actor.Ref) error {
	return sel.Send(msgRateProbe{Population: population, To: to})
}

// rateForwarder converts Selector rate samples into a callback, so code
// outside this package (the sharded selector process, which relays samples
// to its coordinator over the wire) can consume them without seeing the
// private message types.
type rateForwarder struct {
	fn func(source, population string, count int64, elapsed time.Duration, demand int)
}

// NewRateForwarder returns a behavior that invokes fn (on the actor
// goroutine) for every check-in rate sample sent to it; source names the
// Selector that observed the sample.
func NewRateForwarder(fn func(source, population string, count int64, elapsed time.Duration, demand int)) actor.Behavior {
	return &rateForwarder{fn: fn}
}

// Receive implements actor.Behavior.
func (rf *rateForwarder) Receive(ctx *actor.Context, msg actor.Message) {
	if m, ok := msg.(msgCheckinRate); ok {
		rf.fn(m.From.Name(), m.Population, m.Count, m.Elapsed, m.Demand)
	}
}

// SubmitTask deploys a new FL task (plan + scheduling policy) onto a live
// Coordinator. The mutation is a mailbox message, so it serializes with
// round scheduling; the round in flight is unaffected.
func SubmitTask(coord actor.Ref, p *plan.Plan, pol tasks.Policy) error {
	return taskOpRequest(coord, msgTaskOp{Op: taskOpSubmit, Plan: p, Policy: pol})
}

// PauseTask stops scheduling a task on a live Coordinator; an in-flight
// round completes normally.
func PauseTask(coord actor.Ref, id string) error {
	return taskOpRequest(coord, msgTaskOp{Op: taskOpPause, ID: id})
}

// ResumeTask reactivates a paused task on a live Coordinator.
func ResumeTask(coord actor.Ref, id string) error {
	return taskOpRequest(coord, msgTaskOp{Op: taskOpResume, ID: id})
}

// RetireTask permanently stops scheduling a task on a live Coordinator. A
// round already in flight completes rather than being aborted.
func RetireTask(coord actor.Ref, id string) error {
	return taskOpRequest(coord, msgTaskOp{Op: taskOpRetire, ID: id})
}

// taskOpRequest routes one lifecycle mutation through the Coordinator's
// mailbox and waits for its verdict. The error is the mutation's own
// (unknown task, duplicate ID, bad transition) or a transport-level one
// when the Coordinator is stopped or unresponsive.
func taskOpRequest(coord actor.Ref, m msgTaskOp) error {
	m.Reply = make(chan error, 1)
	if err := coord.Send(m); err != nil {
		return fmt.Errorf("flserver: task op: %w", err)
	}
	select {
	case err := <-m.Reply:
		return err
	case <-time.After(statsTimeout):
		return fmt.Errorf("flserver: coordinator %s did not answer task op within %v", coord.Name(), statsTimeout)
	}
}

// QueryTaskStats asks a Coordinator for every task's lifecycle record, in
// submission order. Routed through the mailbox so the snapshot can never
// interleave with a mid-commit round.
func QueryTaskStats(coord actor.Ref) ([]tasks.Stats, error) {
	reply := make(chan []tasks.Stats, 1)
	if err := coord.Send(msgTaskStats{Reply: reply}); err != nil {
		return nil, fmt.Errorf("flserver: task stats: %w", err)
	}
	select {
	case st := <-reply:
		return st, nil
	case <-time.After(statsTimeout):
		return nil, fmt.Errorf("flserver: coordinator %s did not answer task stats within %v", coord.Name(), statsTimeout)
	}
}

// QueryCoordinatorStats asks a Coordinator for its round progress. The
// error is non-nil when the Coordinator is stopped or unresponsive —
// callers must not mistake a dead Coordinator for zero progress.
func QueryCoordinatorStats(coord actor.Ref) (CoordinatorStats, error) {
	reply := make(chan CoordinatorStats, 1)
	if err := coord.Send(msgCoordinatorStats{Reply: reply}); err != nil {
		return CoordinatorStats{}, fmt.Errorf("flserver: coordinator stats: %w", err)
	}
	select {
	case st := <-reply:
		return st, nil
	case <-time.After(statsTimeout):
		return CoordinatorStats{}, fmt.Errorf("flserver: coordinator %s did not answer stats within %v", coord.Name(), statsTimeout)
	}
}

// QuerySelectorStats asks one Selector for its counts; population "" sums
// across every population the Selector serves. The error is non-nil when
// the Selector is stopped or unresponsive.
func QuerySelectorStats(sel actor.Ref, population string) (SelectorStats, error) {
	reply := make(chan SelectorStats, 1)
	if err := sel.Send(msgSelectorStats{Population: population, Reply: reply}); err != nil {
		return SelectorStats{}, fmt.Errorf("flserver: selector stats: %w", err)
	}
	select {
	case st := <-reply:
		return st, nil
	case <-time.After(statsTimeout):
		return SelectorStats{}, fmt.Errorf("flserver: selector %s did not answer stats within %v", sel.Name(), statsTimeout)
	}
}

// Hinter produces pace-steering reconnect hints outside any actor — on the
// connection accept path, where malformed or unroutable first messages are
// answered with a protocol-level rejection rather than a bare close. It
// guards its RNG so concurrent connection handlers can share one instance.
type Hinter struct {
	steering *pacing.Steering
	estimate int
	now      func() time.Time

	mu  sync.Mutex
	rng *tensor.RNG
}

// NewHinter builds a Hinter over the given steering (nil = one-minute
// cadence defaults) and population estimate.
func NewHinter(steering *pacing.Steering, populationEstimate int, seed uint64, now func() time.Time) *Hinter {
	if steering == nil {
		steering = pacing.New(time.Minute)
	}
	if populationEstimate <= 0 {
		populationEstimate = 1000
	}
	if now == nil {
		now = time.Now
	}
	return &Hinter{steering: steering, estimate: populationEstimate, now: now, rng: tensor.NewRNG(seed)}
}

// Hint suggests a reconnect delay for one rejected connection.
func (h *Hinter) Hint(demand int) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.steering.Suggest(h.estimate, demand, h.now(), h.rng)
}

// RejectConn answers a misbehaving or unroutable connection with a
// steering-backed protocol rejection, then closes it, so misconfigured
// devices back off instead of hammering the accept loop.
func (h *Hinter) RejectConn(conn transport.Conn, reason string) {
	_ = conn.Send(protocol.CheckinResponse{Accepted: false, Reason: reason, RetryAfter: h.Hint(1)})
	_ = conn.Close()
}

// CheckinRouter is the device-facing accept path shared by Server and the
// fleet gateway: each connection's first message must be a CheckinRequest,
// dispatched to a Selector round-robin (Selectors are "globally
// distributed, close to devices" in the paper; round-robin stands in for
// geographic affinity). Malformed first messages get a protocol-level
// rejection with a pace-steering hint instead of a dropped connection.
type CheckinRouter struct {
	selectors []actor.Ref
	hinter    *Hinter
	nextSel   uint64
	handlers  sync.WaitGroup
}

// NewCheckinRouter builds the accept path over a Selector layer.
func NewCheckinRouter(selectors []actor.Ref, hinter *Hinter) *CheckinRouter {
	return &CheckinRouter{selectors: selectors, hinter: hinter}
}

// Serve accepts device connections from l until l closes.
func (r *CheckinRouter) Serve(l transport.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		r.handlers.Add(1)
		go func() {
			defer r.handlers.Done()
			r.handleConn(conn)
		}()
	}
}

func (r *CheckinRouter) handleConn(conn transport.Conn) {
	msg, err := conn.Recv()
	if err != nil {
		// Nothing decodable arrived; there is no peer to steer.
		_ = conn.Close()
		return
	}
	req, ok := msg.(protocol.CheckinRequest)
	if !ok {
		r.hinter.RejectConn(conn, fmt.Sprintf("protocol error: expected CheckinRequest, got %T", msg))
		return
	}
	idx := atomic.AddUint64(&r.nextSel, 1) % uint64(len(r.selectors))
	if err := ForwardCheckin(r.selectors[idx], req, conn); err != nil {
		r.hinter.RejectConn(conn, "selector unavailable")
	}
}

// Wait blocks until in-flight connection handlers finish (teardown, after
// the listener closed).
func (r *CheckinRouter) Wait() { r.handlers.Wait() }
