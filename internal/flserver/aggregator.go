package flserver

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/actor"
	"repro/internal/checkpoint"
	"repro/internal/fedavg"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/robust"
	"repro/internal/secagg"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Aggregator is the ephemeral per-group aggregation actor (Sec. 4.2). With
// simple aggregation it folds updates into a running sum as they arrive
// (online, in-memory — no per-device log ever exists). With Secure
// Aggregation it buffers the group's inputs and runs the secagg protocol at
// finalization, so the group sum is produced without the aggregate code
// path ever handling an unmasked individual update.
type Aggregator struct {
	dim    int
	secure bool
	master actor.Ref

	// threshold maps group size n to the secagg Shamir threshold t; nil
	// defaults to the majority n/2 + 1. Set by the Master Aggregator from
	// the plan before spawn (same-package field injection).
	threshold func(n int) int
	// finalizeTimeout bounds the async secagg run; 0 defaults to
	// plan.ServerPlan's 2-minute fallback. A run that exceeds it is
	// abandoned with an attributed group error instead of stalling the
	// round.
	finalizeTimeout time.Duration
	// churn, when set (tests, simulation), injects additional mid-protocol
	// churn into the group's secagg schedule on top of the real losses.
	churn func(n, t int) secagg.Schedule
	// robustPolicy is the task's robust aggregation policy; the group that
	// receives the round's retention buffer (msgFinalizeGroup.Robust) runs
	// its reduce at finalization. Injected by the Master Aggregator before
	// spawn, like threshold, along with the task-labeled defense counters.
	robustPolicy                    plan.RobustPolicy
	obsRejectedTask, obsTrimmedTask *obs.Counter

	acc     *fedavg.Accumulator
	metrics map[string][]float64
	// evalCount counts metrics-only reports (evaluation tasks).
	evalCount int

	// secure-mode buffer: device inputs awaiting the secagg run, keyed by
	// 1-based secagg participant id; secDevice maps those ids back to
	// device identity for blame attribution.
	secInputs map[int][]float64
	secDevice map[int]string
	secNext   int
	// secBlamed carries the secagg run's attributed exclusions into the
	// group result.
	secBlamed []string
	// robustRejected carries the robust reduce's defense attributions
	// ("deviceID: reason") into the group result.
	robustRejected []string
	// secPhases carries the secagg run's per-phase wall times into the
	// group result for the round tracer.
	secPhases map[string]time.Duration
	// finalizing is set once msgFinalizeGroup arrives; the actor may stay
	// alive awaiting msgSecAggDone and must reject any late adds. done is
	// set once the group result has been reported, so a late secagg result
	// racing the finalization watchdog cannot double-report.
	finalizing bool
	done       bool
}

// NewAggregator returns the behavior for a group aggregator.
func NewAggregator(dim int, secure bool, master actor.Ref) *Aggregator {
	return &Aggregator{
		dim:       dim,
		secure:    secure,
		master:    master,
		acc:       fedavg.NewAccumulator(dim),
		metrics:   make(map[string][]float64),
		secInputs: make(map[int][]float64),
		secDevice: make(map[int]string),
		secNext:   1,
	}
}

// msgAddUpdate delivers one device's update to its group Aggregator. On
// the wire path it comes straight from the device's connection reader
// (secure rounds buffer per-device vectors — secagg needs them — but the
// master hop is skipped); tests and the legacy path may still route a
// decoded Checkpoint.
type msgAddUpdate struct {
	DeviceID string
	Update   *checkpoint.Checkpoint
	// Input, when set, is a pre-validated pooled delta‖weight buffer of
	// length dim+1 decoded at the edge; the Aggregator owns it from here
	// and returns it to the pool once the secagg run has consumed it.
	Input   tensor.Vector
	Metrics map[string]float64
	// Conn, when set, is the device's connection awaiting the
	// ReportResponse; the Aggregator answers it off the actor goroutine.
	Conn transport.Conn
}

// msgAddResult tells the Master Aggregator whether the add was accepted.
type msgAddResult struct {
	DeviceID string
	OK       bool
	Err      string
}

// msgSecAggDone posts the result of an async secagg run back to the group
// Aggregator that launched it.
type msgSecAggDone struct {
	Sum       []float64
	Survivors int
	// Blamed lists devices the run excluded with attribution
	// ("deviceID: reason"); populated on success and on abort.
	Blamed []string
	// Phases is the run's per-phase wall time (secagg.Result.Phases).
	Phases map[string]time.Duration
	Err    error
}

// msgSecAggTimeout fires when a group's secagg finalization exceeds its
// deadline; the group reports an attributed failure instead of stalling
// the round.
type msgSecAggTimeout struct{}

// planMarshals counts plan.Marshal calls made during Configuration,
// process-wide. Tests and BenchmarkRoundThroughput read the delta across a
// round to assert marshals stay O(distinct runtime versions), not O(devices).
var planMarshals atomic.Int64

// secaggGate bounds concurrent secagg finalizations process-wide: each run
// saturates the cores with its own worker pools, so admitting more than
// GOMAXPROCS at once only multiplies transient partial-vector memory
// (O(workers × dim) per run) without adding throughput.
var secaggGate = make(chan struct{}, runtime.GOMAXPROCS(0))

// Receive implements actor.Behavior.
func (a *Aggregator) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case msgAddUpdate:
		a.onAdd(m)
	case msgFinalizeGroup:
		a.onFinalize(ctx, m)
	case msgSecAggDone:
		a.onSecAggDone(ctx, m)
	case msgSecAggTimeout:
		a.onSecAggTimeout(ctx)
	}
}

func (a *Aggregator) onAdd(m msgAddUpdate) {
	// resolve reports the verdict: to the device (off the actor goroutine —
	// a stalled socket must never block the group) and to the Master
	// Aggregator for round accounting.
	resolve := func(ok bool, reason string) {
		if ok {
			obsReportsOK.Inc()
		} else {
			obsReportsRejected.Inc()
		}
		if m.Conn != nil {
			sendThenClose(m.Conn, protocol.ReportResponse{Accepted: ok, Reason: reason})
		}
		_ = a.master.Send(msgAddResult{DeviceID: m.DeviceID, OK: ok, Err: reason})
	}
	if a.finalizing {
		if m.Input != nil {
			putParamBuf(m.Input)
		}
		resolve(false, "reporting window closed")
		return
	}
	if m.Input != nil {
		// Pre-validated pooled delta‖weight from the device's reader: the
		// appended weight element rides through the secure sum so the
		// server learns Σn without individual n's.
		if len(m.Input) != a.dim+1 {
			putParamBuf(m.Input)
			resolve(false, fmt.Sprintf("update dim %d, want %d", len(m.Input)-1, a.dim))
			return
		}
		a.secInputs[a.secNext] = m.Input
		a.secDevice[a.secNext] = m.DeviceID
		a.secNext++
		for name, v := range m.Metrics {
			a.metrics[name] = append(a.metrics[name], v)
		}
		resolve(true, "")
		return
	}
	if m.Update == nil {
		// Metrics-only report (evaluation task).
		a.evalCount++
		for name, v := range m.Metrics {
			a.metrics[name] = append(a.metrics[name], v)
		}
		resolve(true, "")
		return
	}
	if len(m.Update.Params) != a.dim {
		resolve(false, fmt.Sprintf("update dim %d, want %d", len(m.Update.Params), a.dim))
		return
	}
	if m.Update.Weight <= 0 {
		resolve(false, "non-positive weight")
		return
	}
	if a.secure {
		// Buffer delta‖weight (legacy/test path: the update arrived as a
		// decoded Checkpoint rather than a pooled buffer).
		input := make(tensor.Vector, a.dim+1)
		copy(input, m.Update.Params)
		input[a.dim] = m.Update.Weight
		a.secInputs[a.secNext] = input
		a.secDevice[a.secNext] = m.DeviceID
		a.secNext++
	} else {
		if err := a.acc.Add(&fedavg.Update{Delta: m.Update.Params, Weight: m.Update.Weight}); err != nil {
			resolve(false, err.Error())
			return
		}
	}
	for name, v := range m.Metrics {
		a.metrics[name] = append(a.metrics[name], v)
	}
	resolve(true, "")
}

func (a *Aggregator) onFinalize(ctx *actor.Context, m msgFinalizeGroup) {
	a.finalizing = true
	// Run the round's robust reduce (per-update retention policies): the
	// buffer holds every decoded update of the round, and the policy's
	// order statistic or outlier filter replaces the plain stripe merge.
	// Result vectors never alias the pooled update buffers, so they are
	// released immediately.
	if m.Robust != nil {
		updates, evalCount, metrics := m.Robust.Drain()
		start := time.Now()
		res := robust.Reduce(a.robustPolicy, a.dim, updates)
		reduceTime := time.Since(start)
		robust.Release(updates)
		a.evalCount += evalCount
		for name, vs := range metrics {
			a.metrics[name] = append(a.metrics[name], vs...)
		}
		for _, rej := range res.Rejected {
			a.robustRejected = append(a.robustRejected, rej.Device+": "+rej.Reason)
		}
		sort.Strings(a.robustRejected)
		if a.secPhases == nil {
			a.secPhases = make(map[string]time.Duration, 1)
		}
		a.secPhases["robust_reduce"] = reduceTime
		obsRobustRejected.Add(int64(len(res.Rejected)))
		obsRobustTrimmed.Add(res.Trimmed)
		if a.obsRejectedTask != nil {
			a.obsRejectedTask.Add(int64(len(res.Rejected)))
			a.obsTrimmedTask.Add(res.Trimmed)
		}
		if res.Count > 0 {
			if err := a.acc.AddRaw(res.Sum, res.Weight, res.Count); err != nil {
				a.finish(ctx, "robust reduce: "+err.Error())
				return
			}
		}
	}
	// Merge this group's share of the round's edge-accumulation stripes
	// (non-secure rounds; empty otherwise). Drain seals each stripe, so a
	// reader racing the window close gets ErrPartialClosed instead of
	// folding into a merged stripe.
	for _, st := range m.Stripes {
		sum, weight, count, evalCount, metrics := st.Drain()
		if count > 0 {
			if err := a.acc.AddRaw(sum, weight, count); err != nil {
				a.finish(ctx, "merge stripe: "+err.Error())
				return
			}
		}
		a.evalCount += evalCount
		for name, vs := range metrics {
			a.metrics[name] = append(a.metrics[name], vs...)
		}
	}
	if a.secure && len(a.secInputs) > 0 {
		delivered := len(a.secInputs)
		if delivered < 2 {
			// A singleton "group sum" IS the individual update, so a
			// direct-sum fallback would hand the server exactly what Secure
			// Aggregation exists to hide. Refuse and drop the update; the
			// Master Aggregator partitions groups so this cannot happen
			// short of a bug or an adversarial configuration.
			a.finish(ctx, fmt.Sprintf("secagg: group of %d below minimum 2; update dropped", delivered))
			return
		}
		// The instance is sized by the devices assigned to the group, not
		// by what happened to arrive: a configured device whose connection
		// died or timed out is a real protocol dropout, entered into the
		// churn schedule at the share-keys boundary (it checked in —
		// advertised — but never dealt shares, so it is excluded from the
		// mask set and its loss costs nothing at unmask time).
		n := delivered
		var lostNames []string
		if len(m.Assigned) > 0 && len(m.Assigned) > delivered {
			n = len(m.Assigned)
			deliveredNames := make(map[string]bool, delivered)
			for _, name := range a.secDevice {
				deliveredNames[name] = true
			}
			for _, name := range m.Assigned {
				if !deliveredNames[name] {
					lostNames = append(lostNames, name)
				}
			}
		}
		t := n/2 + 1
		if a.threshold != nil {
			t = a.threshold(n)
		}
		if delivered < t {
			// Below-threshold churn: a clean, attributed abort that still
			// carries the group's metrics — never a stall, and never a
			// degraded run that would weaken the privacy threshold.
			a.finish(ctx, fmt.Sprintf("secagg: only %d of %d group devices delivered (< threshold %d); lost: %s",
				delivered, n, t, strings.Join(lostNames, ", ")))
			return
		}
		sched := secagg.Schedule{}
		if a.churn != nil {
			sched = a.churn(n, t)
		}
		inputs := a.secInputs
		for id := delivered + 1; id <= n; id++ {
			// Lost devices participate up to the phase where their loss
			// signal places them: present at check-in, gone before dealing
			// shares. Their nil input is never read.
			inputs[id] = nil
			sched.DropShareKeys = append(sched.DropShareKeys, id)
		}
		cfg := secagg.Config{N: n, T: t, VectorLen: a.dim + 1}
		secDevice := a.secDevice
		a.secInputs = nil
		self := ctx.Self
		if a.finalizeTimeout > 0 {
			time.AfterFunc(a.finalizeTimeout, func() { _ = self.Send(msgSecAggTimeout{}) })
		}
		// Run the protocol off the actor goroutine so multiple group
		// Aggregators finalize concurrently; the result comes back as a
		// message and the actor stays alive until it lands.
		go func() {
			// Receive's panic isolation does not cover this goroutine;
			// convert a protocol panic into a failed finalization so it
			// costs the group, not the process.
			defer func() {
				if r := recover(); r != nil {
					_ = self.Send(msgSecAggDone{Err: fmt.Errorf("secagg panic: %v", r)})
				}
			}()
			secaggGate <- struct{}{}
			defer func() { <-secaggGate }()
			res, err := secagg.RunSchedule(cfg, inputs, sched)
			// The protocol consumed the inputs (Encode copies them into
			// field elements); hand the buffers back so the next round's
			// readers reuse them instead of allocating O(group × dim).
			for _, in := range inputs {
				if in != nil {
					putParamBuf(in)
				}
			}
			done := msgSecAggDone{Err: err}
			if res != nil {
				done.Sum = res.Sum
				done.Survivors = len(res.Survivors)
				done.Phases = res.Phases
				for id, why := range res.Blamed {
					name := secDevice[id]
					if name == "" {
						name = fmt.Sprintf("participant-%d", id)
					}
					done.Blamed = append(done.Blamed, name+": "+why)
				}
				sort.Strings(done.Blamed)
			}
			_ = self.Send(done)
		}()
		return
	}
	a.finish(ctx, "")
}

func (a *Aggregator) onSecAggDone(ctx *actor.Context, m msgSecAggDone) {
	if a.done {
		return
	}
	a.secBlamed = m.Blamed
	a.secPhases = m.Phases
	if m.Err != nil {
		a.finish(ctx, m.Err.Error())
		return
	}
	if err := a.acc.AddRaw(tensor.Vector(m.Sum[:a.dim]), m.Sum[a.dim], m.Survivors); err != nil {
		a.finish(ctx, err.Error())
		return
	}
	a.finish(ctx, "")
}

func (a *Aggregator) onSecAggTimeout(ctx *actor.Context) {
	if a.done || !a.finalizing {
		return
	}
	a.finish(ctx, fmt.Sprintf("secagg: finalization exceeded %v; group abandoned", a.finalizeTimeout))
}

// finish reports the group partial and stops the actor. On a finalization
// error the model updates are gone, but eval-only counts and metrics never
// went through the secure path — report them rather than swallowing, and
// surface the error to the Master Aggregator.
func (a *Aggregator) finish(ctx *actor.Context, errStr string) {
	defer ctx.Stop()
	a.done = true
	res := msgGroupResult{From: ctx.Self, Count: a.acc.Count() + a.evalCount, Metrics: a.metrics, Err: errStr,
		Blamed: a.secBlamed, Phases: a.secPhases, RobustRejected: a.robustRejected}
	if a.acc.Count() > 0 {
		res.Weight = a.acc.Weight()
		sum := make(tensor.Vector, a.dim)
		avg, err := a.acc.Average()
		if err == nil {
			// Reconstruct the raw sum: avg × weight.
			copy(sum, avg)
			sum.Scale(a.acc.Weight())
			res.Sum = sum
		}
	}
	_ = a.master.Send(res)
}

// deviceState tracks one selected device through a round.
type deviceState struct {
	held     heldDevice
	group    actor.Ref
	reported bool
	lost     bool
	aborted  bool
	// configured is set once the device has been sent (or queued) its
	// Configuration payload: from then on it counts toward its secure
	// group's instance size, and not delivering makes it a protocol
	// dropout rather than a no-show.
	configured bool
}

// MasterAggregator manages one round of one FL task (Sec. 4.2): selection
// window, configuration, reporting window with goal count / timeout /
// minimum fraction (Sec. 2.2), per-group Aggregator delegation, and the
// single commit to persistent storage at the end.
type MasterAggregator struct {
	plan      *plan.Plan
	global    *checkpoint.Checkpoint
	store     storage.Store
	coord     actor.Ref
	selectors []actor.Ref
	groupSize int
	// minRuntime, when positive, is the task policy's floor on device
	// runtime versions: older devices are rejected outright instead of
	// being served a version-lowered plan.
	minRuntime int
	now        func() time.Time

	state   string // "selecting", "reporting", "done"
	devices map[string]*deviceState
	order   []string // device ids in arrival order
	aggs    []actor.Ref
	// ingest is the round's striped edge accumulator (non-secure rounds):
	// reader goroutines fold decoded updates straight into its stripes and
	// only fixed-size accounting messages reach this actor.
	ingest *roundIngest
	// robustBuf replaces ingest for per-update robust policies: readers
	// decode each update into a pooled vector and retain it here for the
	// finalize reduce (trimmed mean, median, cosine outlier).
	robustBuf *robust.Buffer
	// clipped counts updates the norm-bound policy clipped at the edge;
	// written by reader goroutines, hence atomic.
	clipped    atomic.Int64
	completed  int
	lost       int
	partials   []msgGroupResult
	startedAt  time.Time
	reportOpen time.Time

	// Round tracer state (obs): per-phase durations recorded at the phase
	// boundaries and materialized as one RoundTrace on commit or failure.
	// configNanos is written by the fan-out completion goroutine, hence
	// atomic; everything else is actor-goroutine-only.
	checkinNanos int64
	configNanos  atomic.Int64
	windowNanos  int64
	finalizeAt   time.Time
	secPhases    map[string]time.Duration
}

// msgStartRound kicks the Master Aggregator off.
type msgStartRound struct{}

// msgCrash exists for failure-injection tests.
type msgCrash struct{}

// NewMasterAggregator returns the behavior for one round. minRuntime > 0
// forbids serving devices whose runtime is older, even via plan lowering
// (the task policy's MinRuntimeVersion).
func NewMasterAggregator(p *plan.Plan, global *checkpoint.Checkpoint, store storage.Store, coord actor.Ref, selectors []actor.Ref, minRuntime int, now func() time.Time) *MasterAggregator {
	if now == nil {
		now = time.Now
	}
	groupSize := 64
	if p.Server.Aggregation == plan.AggregationSecure && p.Server.SecAggGroupSize > 0 {
		groupSize = p.Server.SecAggGroupSize
	}
	return &MasterAggregator{
		plan:       p,
		global:     global,
		store:      store,
		coord:      coord,
		selectors:  selectors,
		groupSize:  groupSize,
		minRuntime: minRuntime,
		now:        now,
		state:      "selecting",
		devices:    make(map[string]*deviceState),
		secPhases:  make(map[string]time.Duration),
	}
}

// Receive implements actor.Behavior.
func (ma *MasterAggregator) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case msgStartRound:
		ma.onStart(ctx)
	case msgDevices:
		ma.onDevices(ctx, m)
	case msgSelectionTimeout:
		ma.onSelectionTimeout(ctx)
	case msgReportDone:
		ma.noteReportOutcome(ctx, m.DeviceID, m.OK)
	case msgDeviceLost:
		ma.onDeviceLost(m)
	case msgAddResult:
		ma.noteReportOutcome(ctx, m.DeviceID, m.OK)
	case msgReportTimeout:
		ma.onReportTimeout(ctx)
	case msgGroupResult:
		ma.onGroupResult(ctx, m)
	case msgAbandonRound:
		if ma.state != "done" {
			ma.fail(ctx, m.Reason)
		}
	case msgCrash:
		panic("master aggregator crash injected")
	}
}

func (ma *MasterAggregator) onStart(ctx *actor.Context) {
	ma.startedAt = ma.now()
	target := ma.plan.Server.SelectTarget()
	per := target / len(ma.selectors)
	extra := target % len(ma.selectors)
	for i, sel := range ma.selectors {
		n := per
		if i < extra {
			n++
		}
		_ = sel.Send(msgForwardDevices{Population: ma.plan.Population, N: n, To: ctx.Self})
	}
	self := ctx.Self
	time.AfterFunc(ma.plan.Server.SelectionTimeout, func() { _ = self.Send(msgSelectionTimeout{}) })
}

func (ma *MasterAggregator) onDevices(ctx *actor.Context, m msgDevices) {
	if ma.state != "selecting" {
		for _, d := range m.Devices {
			ma.abortDevice(d, "round already configured")
		}
		return
	}
	for _, d := range m.Devices {
		if _, dup := ma.devices[d.ID]; dup {
			ma.abortDevice(d, "duplicate device")
			continue
		}
		ma.devices[d.ID] = &deviceState{held: d}
		ma.order = append(ma.order, d.ID)
	}
	if len(ma.devices) >= ma.plan.Server.SelectTarget() {
		ma.beginReporting(ctx)
	}
}

func (ma *MasterAggregator) onSelectionTimeout(ctx *actor.Context) {
	if ma.state != "selecting" {
		return
	}
	if len(ma.devices) >= ma.plan.Server.MinReports() {
		ma.beginReporting(ctx)
		return
	}
	ma.fail(ctx, fmt.Sprintf("selection timeout with %d devices (< min %d)",
		len(ma.devices), ma.plan.Server.MinReports()))
}

// versionResp is the memoized Configuration payload for one effective
// runtime version: either a CheckinResponse pre-framed for the wire, or
// the reason devices of that version cannot run the plan.
type versionResp struct {
	enc *transport.Encoded
	err string
}

// configJob is one device's Configuration send, executed on the fan-out
// worker pool; resp is the device's version's shared pre-framed response,
// group the device's assigned group Aggregator (secure rounds report to it
// directly, skipping the master hop).
type configJob struct {
	deviceID string
	conn     transport.Conn
	resp     *transport.Encoded
	group    actor.Ref
}

// reportReader is what a per-device connection reader needs to consume one
// report at the edge: the non-secure path decodes-and-accumulates into the
// round's stripes, the secure path decodes into a pooled buffer delivered
// straight to the device's group Aggregator.
type reportReader struct {
	self     actor.Ref
	dim      int
	secure   bool
	evalOnly bool
	ingest   *roundIngest
	// clip, when positive, is the norm-bound policy's L2 bound on each
	// update's per-example average: over-norm updates are folded through
	// checkpoint.Meta.AccumulateParamsScaled instead of AccumulateParams —
	// still two streaming passes over the wire bytes, still zero O(dim)
	// allocation.
	clip float64
	// buf, when set, is the round's per-update retention buffer: the
	// policy needs individual updates at finalize, so readers decode into
	// pooled vectors instead of folding into stripes.
	buf *robust.Buffer
	// clipped counts edge clips for the round (the Master Aggregator's
	// counter); obsClipped is the task-labeled series, resolved once per
	// round.
	clipped    *atomic.Int64
	obsClipped *obs.Counter
}

// fanoutWorkers sizes the Configuration send pool. Sends block on socket
// I/O more than on CPU, so oversubscribe GOMAXPROCS — but keep the pool
// bounded: each in-flight send holds one frame buffer (O(plan+checkpoint)),
// so the pool size caps transient memory no matter how large the round is.
func fanoutWorkers(jobs int) int {
	w := 4 * runtime.GOMAXPROCS(0)
	if w > 64 {
		w = 64
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// beginReporting is the Configuration phase: spawn group Aggregators, send
// each device its (version-matched) plan and the global checkpoint, and
// start the report window. The per-device sends run on a worker pool off
// the actor goroutine, so one slow or dead socket never stalls the round;
// all bookkeeping stays on the actor, with send failures returning as
// msgDeviceLost.
func (ma *MasterAggregator) beginReporting(ctx *actor.Context) {
	ma.state = "reporting"
	ma.reportOpen = ma.now()
	ma.checkinNanos = ma.reportOpen.Sub(ma.startedAt).Nanoseconds()

	ckptBytes, err := ma.global.Marshal(checkpoint.EncodingFloat64)
	if err != nil {
		ma.fail(ctx, "marshal global checkpoint: "+err.Error())
		return
	}
	dim := len(ma.global.Params)
	secure := ma.plan.Server.Aggregation == plan.AggregationSecure

	// Spawn one Aggregator per group of groupSize devices. Rounding the
	// group count up would strand a remainder group of < groupSize devices
	// — in secure mode a trailing group of 1 would previously reach the
	// direct-sum fallback and expose that device's raw update.
	// secagg.GroupSpans folds the remainder into the last full group so no
	// secure group falls below 2 (the Aggregator's singleton refusal
	// backstops the edge where the whole round has one device).
	numGroups := len(secagg.GroupSpans(len(ma.order), ma.groupSize))
	ma.aggs = make([]actor.Ref, numGroups)
	for g := range ma.aggs {
		agg := NewAggregator(dim, secure, ctx.Self)
		agg.threshold = ma.plan.Server.SecAggThreshold
		agg.finalizeTimeout = ma.plan.Server.FinalizeTimeout()
		agg.robustPolicy = ma.plan.Server.Robust
		if ma.plan.Server.Robust.PerUpdate() {
			_, agg.obsRejectedTask, agg.obsTrimmedTask = robustTaskCounters(ma.plan.ID)
		}
		ma.aggs[g] = ctx.Spawn(fmt.Sprintf("%s/agg-%d", ctx.Self.Name(), g), agg)
	}
	if !secure {
		// Per-update robust policies retain decoded updates instead of
		// folding into stripes; plan.Validate guarantees they never pair
		// with secure aggregation.
		if ma.plan.Server.Robust.PerUpdate() {
			ma.robustBuf = robust.NewBuffer(dim)
		} else {
			ma.ingest = newRoundIngest(dim)
		}
	}

	// Build every device's send on the actor goroutine, marshaling the plan
	// and building + pre-framing the CheckinResponse once per distinct
	// *effective* runtime version: every runtime at or above the plan's
	// MinRuntimeVersion executes the plan unchanged and shares one
	// marshaled copy; each older version gets one lowered plan. Pre-framing
	// (transport.Encode) means the multi-MB plan+checkpoint wire frame is
	// built O(versions) per round and the pool workers push the same
	// immutable bytes to every device of a version.
	minV := ma.plan.Device.MinRuntimeVersion
	byVersion := make(map[int]*versionResp)
	deadline := ma.plan.Server.ParticipationCap
	jobs := make([]configJob, 0, len(ma.order))
	for i, id := range ma.order {
		ds := ma.devices[id]
		g := i / ma.groupSize
		if g >= numGroups {
			g = numGroups - 1
		}
		ds.group = ma.aggs[g]

		if ma.minRuntime > 0 && ds.held.RuntimeVersion < ma.minRuntime {
			// The task's policy pins a runtime floor: reject instead of
			// serving a lowered plan the engineer asked us not to serve. The
			// rejection goes out on the bounded response pool — a stalled
			// socket must never block the actor goroutine.
			sendThenClose(ds.held.Conn, protocol.CheckinResponse{Accepted: false,
				Reason: fmt.Sprintf("task %s requires device runtime ≥ %d", ma.plan.ID, ma.minRuntime)})
			ds.lost = true
			ma.lost++
			continue
		}
		v := ds.held.RuntimeVersion
		if v > minV {
			v = minV
		}
		vr, ok := byVersion[v]
		if !ok {
			vr = &versionResp{}
			vp, err := ma.plan.ForVersion(ds.held.RuntimeVersion)
			if err != nil {
				// Devices of this version cannot execute any form of the
				// plan; every one of them is rejected below.
				vr.err = err.Error()
			} else {
				planBytes, err := vp.Marshal()
				planMarshals.Add(1)
				obsPlanMarshals.Inc()
				if err != nil {
					ma.fail(ctx, "marshal plan: "+err.Error())
					return
				}
				vr.enc = transport.Encode(protocol.CheckinResponse{
					Accepted:       true,
					TaskID:         ma.plan.ID,
					Round:          ma.global.Round,
					Plan:           planBytes,
					Checkpoint:     ckptBytes,
					ReportDeadline: deadline,
				})
			}
			byVersion[v] = vr
		}
		if vr.err != "" {
			// Device cannot execute any version of this plan; the rejection
			// rides the bounded response pool, which owns the close — the
			// connection cannot leak even if ma.fail runs first (ds.lost is
			// already set, so fail skips it).
			sendThenClose(ds.held.Conn, protocol.CheckinResponse{Accepted: false, Reason: vr.err})
			ds.lost = true
			ma.lost++
			continue
		}
		ds.configured = true
		jobs = append(jobs, configJob{deviceID: id, conn: ds.held.Conn, resp: vr.enc, group: ds.group})
	}

	self := ctx.Self
	rr := reportReader{
		self:     self,
		dim:      dim,
		secure:   secure,
		evalOnly: ma.plan.Type == plan.TaskEval,
		ingest:   ma.ingest,
		buf:      ma.robustBuf,
	}
	if !secure && ma.plan.Server.Robust.Kind == plan.RobustNormBound {
		rr.clip = ma.plan.Server.Robust.ClipNorm
		rr.clipped = &ma.clipped
		rr.obsClipped, _, _ = robustTaskCounters(ma.plan.ID)
	}
	jobCh := make(chan configJob, len(jobs))
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	var sends sync.WaitGroup
	sends.Add(len(jobs))
	for w := fanoutWorkers(len(jobs)); w > 0; w-- {
		go func() {
			for j := range jobCh {
				if err := j.conn.Send(j.resp); err != nil {
					// A failed Configuration send means a dead peer:
					// release the fd here, then account the loss on the
					// actor.
					_ = j.conn.Close()
					_ = self.Send(msgDeviceLost{DeviceID: j.deviceID})
				} else {
					// One reader goroutine per configured device: the
					// O(dim) decode-and-accumulate happens there, and only
					// fixed-size accounting reaches the actor.
					go rr.read(j.deviceID, j.conn, j.group)
				}
				sends.Done()
			}
		}()
	}

	// The reporting window opens once every device has been sent its
	// configuration (as it did when the sends were serial): a slow fan-out
	// must not eat into the devices' time to report. The wait itself is
	// capped at one ReportTimeout — a peer that checks in and then never
	// drains its socket can block a worker's Send indefinitely (no write
	// deadline), and the round must still time out rather than hang; the
	// eventual fail()/finalize() closes that conn, unblocking the worker.
	reportTimeout := ma.plan.Server.ReportTimeout
	cfgStart := time.Now()
	go func() {
		sent := make(chan struct{})
		go func() {
			sends.Wait()
			close(sent)
		}()
		select {
		case <-sent:
		case <-time.After(reportTimeout):
		}
		// Configure span: fan-out start → every device's plan/checkpoint
		// send done (or the wait cap). Wall clock, not ma.now — the span
		// measures real socket time and is read only by the tracer.
		ma.configNanos.Store(time.Since(cfgStart).Nanoseconds())
		time.AfterFunc(reportTimeout, func() { _ = self.Send(msgReportTimeout{}) })
	}()
}

// read blocks for one device's ReportRequest and consumes it at the edge:
// the O(devices × dim) decode work runs on the per-device reader goroutines
// concurrently, non-secure updates are dequantized straight into one of the
// round's accumulator stripes (zero O(dim) allocation, zero O(dim) mailbox
// hop), and secure updates are decoded into a pooled buffer delivered
// straight to the device's group Aggregator — the Master Aggregator only
// ever sees fixed-size accounting messages.
func (r reportReader) read(deviceID string, conn transport.Conn, group actor.Ref) {
	msg, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		obsDevicesLost.Inc()
		_ = r.self.Send(msgDeviceLost{DeviceID: deviceID})
		return
	}
	req, ok := msg.(protocol.ReportRequest)
	if !ok {
		_ = conn.Close()
		obsDevicesLost.Inc()
		_ = r.self.Send(msgDeviceLost{DeviceID: deviceID})
		return
	}
	// reject accounts the loss first (fixed-size message to the actor),
	// then answers the device from this goroutine — a stalled peer stalls
	// only its own reader, for at most abortGrace.
	reject := func(reason string) {
		obsReportsRejected.Inc()
		_ = r.self.Send(msgReportDone{DeviceID: deviceID})
		sendWithGrace(conn, protocol.ReportResponse{Accepted: false, Reason: reason})
	}
	// late answers a report that lost the race against the closing of the
	// reporting window (the '#' outcome of Table 1) — no accounting: the
	// round already settled this device's fate.
	late := func() {
		obsReportsLate.Inc()
		sendWithGrace(conn, protocol.ReportResponse{Accepted: false, Reason: "reporting window closed"})
	}
	if req.Aborted {
		reject("device aborted")
		return
	}
	if len(req.Update) == 0 {
		if !r.evalOnly {
			// A training task must carry an update.
			reject("missing update")
			return
		}
		// Metrics-only report (evaluation task).
		if r.secure {
			_ = group.Send(msgAddUpdate{DeviceID: deviceID, Metrics: req.Metrics, Conn: conn})
			return
		}
		if err := r.ingest.stripe().AddEval(req.Metrics); err != nil {
			late()
			return
		}
		obsReportsOK.Inc()
		_ = r.self.Send(msgReportDone{DeviceID: deviceID, OK: true})
		sendWithGrace(conn, protocol.ReportResponse{Accepted: true})
		return
	}
	meta, err := checkpoint.ParseMeta(req.Update)
	if err != nil {
		reject("bad update: " + err.Error())
		return
	}
	if meta.NumParams != r.dim {
		reject(fmt.Sprintf("update dim %d, want %d", meta.NumParams, r.dim))
		return
	}
	if meta.Weight <= 0 {
		reject("non-positive weight")
		return
	}
	if r.secure {
		// Decode delta‖weight into a pooled buffer; the group Aggregator
		// (which must keep per-device vectors for the secagg run) owns it
		// from here and recycles it after the protocol consumes it.
		buf := getParamBuf(r.dim + 1)
		if err := meta.DecodeParams(req.Update, buf[:r.dim]); err != nil {
			putParamBuf(buf)
			reject("bad update: " + err.Error())
			return
		}
		buf[r.dim] = meta.Weight
		_ = group.Send(msgAddUpdate{DeviceID: deviceID, Input: buf, Metrics: req.Metrics, Conn: conn})
		return
	}
	if r.buf != nil {
		// Per-update retention (trimmed mean / median / cosine): decode
		// into a pooled vector the robust reduce consumes at finalize.
		// Acceptance means "buffered" — a later defensive trim or rejection
		// is the server's business, attributed in msgRoundComplete.
		err = r.buf.Add(deviceID, meta.Weight, req.Metrics, func(dst tensor.Vector) error {
			return meta.DecodeParams(req.Update, dst)
		})
		switch {
		case errors.Is(err, robust.ErrBufferClosed):
			late()
		case err != nil:
			reject(err.Error())
		default:
			obsReportsOK.Inc()
			_ = r.self.Send(msgReportDone{DeviceID: deviceID, OK: true})
			sendWithGrace(conn, protocol.ReportResponse{Accepted: true})
		}
		return
	}
	// Decode-and-accumulate at the edge: the wire bytes are folded
	// (dequantized, for Quant8) straight into a stripe of the round
	// accumulator, under that stripe's lock — no intermediate vector.
	// A norm-bound policy first measures the update's streaming norm; an
	// over-norm update is folded pre-scaled (two passes over the wire
	// bytes, still no intermediate vector).
	fold := func(sum tensor.Vector) error {
		return meta.AccumulateParams(req.Update, sum)
	}
	if r.clip > 0 {
		if scale := robust.ClipScale(meta.ParamNorm(req.Update), meta.Weight, r.clip); scale < 1 {
			fold = func(sum tensor.Vector) error {
				if err := meta.AccumulateParamsScaled(req.Update, sum, scale); err != nil {
					return err
				}
				// Counted inside the fold, under the stripe lock: a seal
				// drains the stripes under the same locks, so its Clipped
				// snapshot can never miss a clip whose fold is already in
				// the sum (clips == clipped folds, exactly).
				r.clipped.Add(1)
				obsRobustClipped.Inc()
				r.obsClipped.Inc()
				return nil
			}
		}
	}
	err = r.ingest.stripe().Accumulate(meta.Weight, req.Metrics, fold)
	switch {
	case errors.Is(err, fedavg.ErrPartialClosed):
		late()
	case err != nil:
		reject(err.Error())
	default:
		obsReportsOK.Inc()
		obsEdgeFolds.Inc()
		_ = r.self.Send(msgReportDone{DeviceID: deviceID, OK: true})
		sendWithGrace(conn, protocol.ReportResponse{Accepted: true})
	}
}

func (ma *MasterAggregator) noteReportOutcome(ctx *actor.Context, deviceID string, ok bool) {
	ds, exists := ma.devices[deviceID]
	if !exists || ds.reported || ds.lost || ds.aborted {
		return
	}
	if !ok {
		ds.lost = true
		ma.lost++
		return
	}
	ds.reported = true
	ma.completed++
	if ma.state == "reporting" && ma.completed >= ma.plan.Server.TargetDevices {
		ma.finalize(ctx)
	}
}

func (ma *MasterAggregator) onDeviceLost(m msgDeviceLost) {
	ds, ok := ma.devices[m.DeviceID]
	if !ok || ds.reported || ds.lost || ds.aborted {
		return
	}
	ds.lost = true
	ma.lost++
}

func (ma *MasterAggregator) onReportTimeout(ctx *actor.Context) {
	if ma.state != "reporting" {
		return
	}
	// ma.completed lags the edge folds by one mailbox hop (the reader folds
	// into a stripe, then posts msgReportDone); a report that already
	// landed in a stripe must count toward the minimum even if its
	// accounting message is still queued — failing the round here would
	// discard updates whose devices were told "accepted".
	reports := ma.completed
	if ma.ingest != nil {
		if n := ma.ingest.reports(); n > reports {
			reports = n
		}
	}
	if ma.robustBuf != nil {
		if n := ma.robustBuf.Reports(); n > reports {
			reports = n
		}
	}
	if reports >= ma.plan.Server.MinReports() {
		ma.finalize(ctx)
		return
	}
	ma.fail(ctx, fmt.Sprintf("report timeout with %d reports (< min %d)",
		reports, ma.plan.Server.MinReports()))
}

// abortGrace bounds how long an over-selected device gets to take delivery
// of its Abort message before its connection is torn down regardless.
const abortGrace = 5 * time.Second

// finalize closes the reporting window, seals the edge-accumulation
// stripes and deals them out to the group Aggregators for merging, and
// aborts devices that are no longer needed.
func (ma *MasterAggregator) finalize(ctx *actor.Context) {
	ma.state = "collecting"
	ma.finalizeAt = ma.now()
	ma.windowNanos = ma.finalizeAt.Sub(ma.reportOpen).Nanoseconds()
	// Seal the stripes BEFORE handing them to the Aggregators: a reader
	// racing the window close gets ErrPartialClosed and answers its device
	// "window closed" instead of folding into a stripe mid-merge.
	var stripes []*fedavg.PartialAccumulator
	if ma.ingest != nil {
		ma.ingest.close()
		stripes = ma.ingest.stripes
	}
	// Seal the retention buffer the same way: a reader racing the close
	// gets ErrBufferClosed and answers "window closed" instead of slipping
	// an update past the robust reduce.
	if ma.robustBuf != nil {
		ma.robustBuf.Close()
	}
	// Hand every group its configured-device list: secure groups size their
	// secagg instance by assignment, so devices that never delivered —
	// dead connections, stragglers about to be aborted below — enter the
	// protocol as real dropouts instead of silently shrinking the group.
	assigned := make([][]string, len(ma.aggs))
	for i, id := range ma.order {
		if !ma.devices[id].configured {
			continue
		}
		g := i / ma.groupSize
		if g >= len(ma.aggs) {
			g = len(ma.aggs) - 1
		}
		assigned[g] = append(assigned[g], id)
	}
	for i, agg := range ma.aggs {
		fin := msgFinalizeGroup{Assigned: assigned[i]}
		if i == 0 {
			// The robust reduce is an order statistic over the whole
			// cohort — it cannot be striped — so the single retention
			// buffer goes to one group.
			fin.Robust = ma.robustBuf
		}
		for j := i; j < len(stripes); j += len(ma.aggs) {
			fin.Stripes = append(fin.Stripes, stripes[j])
		}
		_ = agg.Send(fin)
	}
	// Abort devices that have not reported: the round no longer needs them
	// (Fig. 7 "aborted"). The sends ride the bounded response pool: an
	// unreported device may still have a configuration send in flight on a
	// stuck socket, and its conn's send lock would block the actor forever.
	// Close always happens — after the Abort is delivered, or after the
	// grace period — which also unblocks any fan-out worker wedged on the
	// same connection.
	abort := protocol.Abort{TaskID: ma.plan.ID, Round: ma.global.Round, Reason: "enough devices completed"}
	for _, id := range ma.order {
		ds := ma.devices[id]
		if !ds.reported && !ds.lost {
			ds.aborted = true
			sendThenClose(ds.held.Conn, abort)
		}
	}
}

func (ma *MasterAggregator) onGroupResult(ctx *actor.Context, m msgGroupResult) {
	if ma.state != "collecting" {
		return
	}
	ma.partials = append(ma.partials, m)
	if len(ma.partials) < len(ma.aggs) {
		return
	}
	// Edge-accumulate span: window close → last group partial collected
	// (stripe drain + merge + any secagg runs; the secagg sub-spans below
	// break the secure part out).
	edgeNanos := ma.now().Sub(ma.finalizeAt).Nanoseconds()

	// All partials in: merge (the Master Aggregator's final, non-secure
	// combination of intermediate sums, Sec. 6).
	dim := len(ma.global.Params)
	acc := fedavg.NewAccumulator(dim)
	metricVals := make(map[string][]float64)
	evalOnly := ma.plan.Type == plan.TaskEval
	reports := 0
	var groupErrs, blamed, robustRejected []string
	for _, p := range ma.partials {
		if p.Err != "" {
			groupErrs = append(groupErrs, p.Err)
		}
		blamed = append(blamed, p.Blamed...)
		robustRejected = append(robustRejected, p.RobustRejected...)
		// Groups finalize concurrently, so the round's secagg phase cost is
		// the slowest group's — max-merge, don't sum.
		for name, d := range p.Phases {
			if d > ma.secPhases[name] {
				ma.secPhases[name] = d
			}
		}
		// Metrics flow regardless of finalization errors: they never went
		// through the secure path and describe reports that did complete.
		for name, vs := range p.Metrics {
			metricVals[name] = append(metricVals[name], vs...)
		}
		if p.Count == 0 {
			continue
		}
		reports += p.Count
		if !evalOnly && len(p.Sum) > 0 {
			if err := acc.AddRaw(p.Sum, p.Weight, p.Count); err != nil {
				ma.fail(ctx, "merge: "+err.Error())
				return
			}
		}
	}
	if reports < ma.plan.Server.MinReports() {
		reason := fmt.Sprintf("only %d reports survived aggregation (< min %d)",
			reports, ma.plan.Server.MinReports())
		if len(groupErrs) > 0 {
			reason += "; group errors: " + strings.Join(groupErrs, "; ")
		}
		ma.fail(ctx, reason)
		return
	}
	commitStart := ma.now()
	newGlobal := ma.global
	if !evalOnly {
		avg, err := acc.Average()
		if err != nil {
			ma.fail(ctx, "average: "+err.Error())
			return
		}
		newGlobal = ma.global.Clone()
		newGlobal.Round++
		newGlobal.Weight = acc.Weight()
		if err := fedavg.Apply(newGlobal.Params, avg); err != nil {
			ma.fail(ctx, "apply: "+err.Error())
			return
		}
		// The single write to persistent storage for this round.
		if err := ma.store.PutCheckpoint(newGlobal); err != nil {
			ma.fail(ctx, "commit: "+err.Error())
			return
		}
	}
	mat := &metrics.Materialized{TaskName: ma.plan.ID, Round: newGlobal.Round, Stats: map[string]metrics.Snapshot{}}
	for name, vs := range metricVals {
		s := metrics.NewSummary()
		for _, v := range vs {
			s.Add(v)
		}
		mat.Stats[name] = s.Snapshot()
	}
	_ = ma.store.PutMetrics(mat)
	commitNanos := ma.now().Sub(commitStart).Nanoseconds()

	aborted := 0
	for _, ds := range ma.devices {
		if !ds.reported && !ds.lost {
			aborted++
		}
	}
	ma.state = "done"
	ma.recordTrace(true, newGlobal.Round, reports, aborted, len(blamed), edgeNanos, commitNanos, "")
	_ = ma.coord.Send(msgRoundComplete{
		TaskID:         ma.plan.ID,
		Round:          newGlobal.Round,
		Committed:      newGlobal,
		Completed:      reports,
		Aborted:        aborted,
		Lost:           ma.lost,
		GroupErrors:    groupErrs,
		BlamedDevices:  blamed,
		RobustRejected: robustRejected,
		Clipped:        int(ma.clipped.Load()),
	})
	ctx.Stop()
}

// recordTrace materializes this round's phase trace through the process
// registry (fl_round_phase_seconds series, committed/failed counters) and
// persists one JSONL record when the store supports obs.TraceStore.
func (ma *MasterAggregator) recordTrace(committed bool, round int64, reports, aborted, blamed int, edgeNanos, commitNanos int64, failReason string) {
	phases := make(map[string]int64, 8)
	put := func(name string, ns int64) {
		if ns > 0 {
			phases[name] = ns
		}
	}
	put(obs.PhaseCheckin, ma.checkinNanos)
	put(obs.PhaseConfigure, ma.configNanos.Load())
	put(obs.PhaseReportWindow, ma.windowNanos)
	put(obs.PhaseEdgeAccumulate, edgeNanos)
	for name, d := range ma.secPhases {
		key := "secagg_" + name
		if strings.HasPrefix(name, "robust_") {
			// The robust reduce reports through the same per-group phase
			// channel but is not a secagg phase.
			key = name
		}
		put(key, d.Nanoseconds())
	}
	put(obs.PhaseCommit, commitNanos)
	ts, _ := ma.store.(obs.TraceStore)
	_ = obs.Default.RecordTrace(obs.RoundTrace{
		Population: ma.plan.Population,
		TaskID:     ma.plan.ID,
		Round:      round,
		Start:      ma.startedAt,
		TotalNanos: ma.now().Sub(ma.startedAt).Nanoseconds(),
		Phases:     phases,
		Committed:  committed,
		Reports:    reports,
		Lost:       ma.lost,
		Aborted:    aborted,
		Blamed:     blamed,
		FailReason: failReason,
	}, ts)
}

func (ma *MasterAggregator) fail(ctx *actor.Context, reason string) {
	ma.state = "done"
	ma.recordTrace(false, ma.global.Round, ma.completed, 0, 0, 0, 0, reason)
	if ma.ingest != nil {
		// Seal the stripes: readers still in flight get ErrPartialClosed
		// rather than folding into an abandoned round.
		ma.ingest.close()
	}
	if ma.robustBuf != nil {
		ma.robustBuf.Close()
	}
	for _, ds := range ma.devices {
		if !ds.reported && !ds.lost {
			_ = ds.held.Conn.Close()
		}
	}
	for _, agg := range ma.aggs {
		agg.Stop()
	}
	_ = ma.coord.Send(msgRoundFailed{TaskID: ma.plan.ID, Round: ma.global.Round, Reason: reason})
	ctx.Stop()
}

func (ma *MasterAggregator) abortDevice(d heldDevice, reason string) {
	sendThenClose(d.Conn, protocol.CheckinResponse{Accepted: false, Reason: reason})
}
