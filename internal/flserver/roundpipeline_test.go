package flserver

import (
	"testing"
)

// TestPlanMarshaledOncePerVersion asserts the Configuration phase marshals
// the plan O(distinct runtime versions) per round, not O(devices): half the
// fleet runs runtime 1 (needing a lowered plan), half runs 3, so exactly
// two marshals must happen for 64 devices.
func TestPlanMarshaledOncePerVersion(t *testing.T) {
	st, err := RunBenchRound(BenchRoundConfig{Devices: 64, Dim: 128, MixedVersions: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 64 {
		t.Fatalf("completed %d/64 devices", st.Completed)
	}
	if st.PlanMarshals != 2 {
		t.Fatalf("plan marshals = %d, want 2 (one per distinct version)", st.PlanMarshals)
	}
}

// TestSingleVersionRoundMarshalsOnce is the degenerate case the
// per-device marshal bug lived in: a uniform fleet must marshal exactly
// once however many devices configure.
func TestSingleVersionRoundMarshalsOnce(t *testing.T) {
	st, err := RunBenchRound(BenchRoundConfig{Devices: 96, Dim: 64})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 96 {
		t.Fatalf("completed %d/96 devices", st.Completed)
	}
	if st.PlanMarshals != 1 {
		t.Fatalf("plan marshals = %d, want 1", st.PlanMarshals)
	}
}

// TestConcurrentFanoutAndDecode drives full rounds over both transports
// with the fan-out pool sending configurations while reader goroutines
// decode reports concurrently. Its real teeth are under -race (CI runs
// this package with -race): any unsynchronized access between the worker
// pool, the readers, and the actor trips the detector.
func TestConcurrentFanoutAndDecode(t *testing.T) {
	for _, tc := range []struct {
		name string
		tcp  bool
	}{{"mem", false}, {"tcp", true}} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := RunBenchRound(BenchRoundConfig{Devices: 48, Dim: 512, TCP: tc.tcp})
			if err != nil {
				t.Fatal(err)
			}
			if st.Completed != 48 {
				t.Fatalf("completed %d/48 devices", st.Completed)
			}
			if st.Lost != 0 {
				t.Fatalf("lost %d devices on a healthy fleet", st.Lost)
			}
		})
	}
}
