package flserver

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/fedavg"
	"repro/internal/pacing"
	"repro/internal/storage"
	"repro/internal/tasks"
	"repro/internal/tensor"
)

// serialReference recomputes a bench round's committed checkpoint the old
// way: decode every device update (through the same wire encoding, so
// quantization matches) and fold serially into one Accumulator.
func serialReference(t *testing.T, devices, dim int, enc checkpoint.Encoding) *fedavg.Accumulator {
	t.Helper()
	acc := fedavg.NewAccumulator(dim)
	for i := 0; i < devices; i++ {
		u := &checkpoint.Checkpoint{TaskName: "bench/roundtput", Weight: float64(1 + i%3),
			Params: make(tensor.Vector, dim)}
		for j := range u.Params {
			u.Params[j] = float64(i+1) * (float64(j%7)*0.25 - 0.5)
		}
		b, err := u.Marshal(enc)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := checkpoint.Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if err := acc.Add(&fedavg.Update{Delta: decoded.Params, Weight: decoded.Weight}); err != nil {
			t.Fatal(err)
		}
	}
	return acc
}

// TestEdgeAccumulationMatchesSerial: the striped decode-and-accumulate
// ingest must commit the same checkpoint as the old serial per-device fold,
// within floating-point summation-order tolerance, over both transports and
// both uplink encodings.
func TestEdgeAccumulationMatchesSerial(t *testing.T) {
	const devices, dim = 48, 256
	for _, tc := range []struct {
		name string
		tcp  bool
		enc  checkpoint.Encoding
	}{
		{"mem/float64", false, checkpoint.EncodingFloat64},
		{"mem/quant8", false, checkpoint.EncodingQuant8},
		{"tcp/float64", true, checkpoint.EncodingFloat64},
		{"tcp/quant8", true, checkpoint.EncodingQuant8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := RunBenchRound(BenchRoundConfig{
				Devices: devices, Dim: dim, TCP: tc.tcp, Encoding: tc.enc, DistinctUpdates: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if st.Completed != devices || st.Committed == nil {
				t.Fatalf("completed %d/%d, committed %v", st.Completed, devices, st.Committed)
			}
			ref := serialReference(t, devices, dim, tc.enc)
			if math.Abs(st.Committed.Weight-ref.Weight()) > 1e-9 {
				t.Fatalf("committed weight %v, want %v", st.Committed.Weight, ref.Weight())
			}
			avg, err := ref.Average()
			if err != nil {
				t.Fatal(err)
			}
			// The round applies avg onto a zero global, so committed params
			// must equal the reference average — stripes only change the
			// summation ORDER, which shows up at the few-ulp level.
			for i := range avg {
				if math.Abs(st.Committed.Params[i]-avg[i]) > 1e-9 {
					t.Fatalf("param %d: committed %v, serial %v", i, st.Committed.Params[i], avg[i])
				}
			}
		})
	}
}

// TestSecureRoundsReusePooledInputsWithoutAliasing: two sequential Secure
// Aggregation rounds share the update-buffer pool; the second round's
// reuse of the first round's released buffers must neither corrupt the
// first round's committed checkpoint (which would betray an alias from the
// secagg path into a pooled buffer) nor perturb the second's sum. The
// secure sum carries fixed-point quantization, hence the looser tolerance.
// CI runs this package under -race, which additionally catches any
// unsynchronized reuse.
func TestSecureRoundsReusePooledInputsWithoutAliasing(t *testing.T) {
	const devices, dim = 16, 64
	ref := serialReference(t, devices, dim, checkpoint.EncodingFloat64)
	refAvg, err := ref.Average()
	if err != nil {
		t.Fatal(err)
	}
	check := func(st BenchRoundStats, what string) {
		t.Helper()
		if st.Completed != devices || st.Committed == nil {
			t.Fatalf("%s: completed %d/%d", what, st.Completed, devices)
		}
		if math.Abs(st.Committed.Weight-ref.Weight()) > 1e-3 {
			t.Fatalf("%s: weight %v, want %v", what, st.Committed.Weight, ref.Weight())
		}
		for i := range refAvg {
			if math.Abs(st.Committed.Params[i]-refAvg[i]) > 1e-3 {
				t.Fatalf("%s: param %d = %v, want %v", what, i, st.Committed.Params[i], refAvg[i])
			}
		}
	}
	first, err := RunBenchRound(BenchRoundConfig{
		Devices: devices, Dim: dim, Secure: true, DistinctUpdates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	check(first, "first round")
	snapshot := first.Committed.Params.Clone()

	second, err := RunBenchRound(BenchRoundConfig{
		Devices: devices, Dim: dim, Secure: true, DistinctUpdates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	check(second, "second round (pooled buffers reused)")
	for i := range snapshot {
		if first.Committed.Params[i] != snapshot[i] {
			t.Fatalf("first round's committed checkpoint mutated by buffer reuse at %d", i)
		}
	}
}

// TestParamBufPoolConcurrentReuse: concurrent get/fill/verify/put cycles on
// the shared pool — under -race this proves a released buffer is never
// still referenced by its previous holder.
func TestParamBufPoolConcurrentReuse(t *testing.T) {
	const workers, rounds, size = 8, 200, 513
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tag float64) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				buf := getParamBuf(size)
				if len(buf) != size {
					t.Errorf("got len %d, want %d", len(buf), size)
					return
				}
				for i := range buf {
					buf[i] = tag
				}
				for i := range buf {
					if buf[i] != tag {
						t.Errorf("buffer shared while held: [%d]=%v, want %v", i, buf[i], tag)
						return
					}
				}
				putParamBuf(buf)
			}
		}(float64(w + 1))
	}
	wg.Wait()
}

// TestLiveEstimateOpensMinDevicesGate: a task gated by MinDevices far above
// the static PopulationEstimate must still run once the Selector layer's
// observed check-in rates push the live estimate past the gate — the
// static config value alone would gate it forever.
func TestLiveEstimateOpensMinDevicesGate(t *testing.T) {
	fed, err := data.Blobs(data.BlobsConfig{
		Users: 16, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewMem()
	p := testPlan(t, 4, false)
	// Static estimate 10 ≪ MinDevices 100: under static estimation this
	// task would never schedule. RoundPeriod 10 minutes makes MeanWait
	// large, so even a modest observed check-in rate implies a population
	// of thousands.
	srv, net, addr := runServer(t, Config{
		Population: "pop", Store: store,
		Steering:           pacing.New(10 * time.Minute),
		PopulationEstimate: 10,
		MaxRounds:          1, Seed: 31,
	})
	if err := srv.SubmitTask(p, tasks.Policy{MinDevices: 100}); err != nil {
		t.Fatal(err)
	}
	fl := newFleet(t, 16, fed, 3)
	fl.run(net, addr)
	waitDone(t, srv, 60*time.Second)
	fl.halt()

	st := stats(t, srv)
	if st.RoundsCompleted < 1 {
		t.Fatalf("gated task never ran: %+v", st)
	}
}
