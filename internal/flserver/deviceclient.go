package flserver

import (
	"fmt"
	"time"

	"repro/internal/analytics"
	"repro/internal/attest"
	"repro/internal/checkpoint"
	"repro/internal/device"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// DeviceClient drives one device through the protocol: check in, and if
// selected download the plan and checkpoint, execute, and report. It is the
// client counterpart of Server, shared by the integration tests, the
// fldevices binary, and the examples.
type DeviceClient struct {
	ID         string
	Population string
	Runtime    *device.Runtime
	// Attestor mints attestation tokens; nil sends no token (fails when the
	// server verifies).
	Attestor *attest.Device
	// TrainDelay artificially slows this device down (straggler modelling
	// in tests; real devices are slow because of hardware).
	TrainDelay time.Duration
	// Now overrides the wall clock (tests).
	Now func() time.Time
}

// Outcome describes one protocol interaction.
type Outcome struct {
	// Accepted is true when the device was selected into a round.
	Accepted bool
	// RetryAfter is the pace-steering hint on rejection.
	RetryAfter time.Duration
	RejectedBy string
	// ReportAccepted is true when the device's update was taken.
	ReportAccepted bool
	// Aborted is true when the server aborted the device (over-selection).
	Aborted bool
	// Result is the plan execution result when the device was selected.
	Result *device.Result
	// SessionShape is the analytics shape string of this session.
	SessionShape string
}

// RunOnce performs one full check-in/train/report interaction over conn.
// The connection is closed before returning.
func (d *DeviceClient) RunOnce(conn transport.Conn) (*Outcome, error) {
	defer conn.Close()
	now := time.Now
	if d.Now != nil {
		now = d.Now
	}

	req := protocol.CheckinRequest{
		DeviceID:       d.ID,
		Population:     d.Population,
		RuntimeVersion: d.Runtime.Version,
	}
	if d.Attestor != nil {
		req.AttestationToken = d.Attestor.Mint(d.Population, now())
	}
	if err := conn.Send(req); err != nil {
		return nil, fmt.Errorf("device %s: checkin send: %w", d.ID, err)
	}
	msg, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("device %s: checkin recv: %w", d.ID, err)
	}
	resp, ok := msg.(protocol.CheckinResponse)
	if !ok {
		return nil, fmt.Errorf("device %s: unexpected %T", d.ID, msg)
	}
	if !resp.Accepted {
		session := &analytics.Session{}
		session.Log(analytics.StateCheckin)
		return &Outcome{RetryAfter: resp.RetryAfter, RejectedBy: resp.Reason, SessionShape: session.Shape()}, nil
	}

	p, err := plan.Unmarshal(resp.Plan)
	if err != nil {
		return nil, fmt.Errorf("device %s: plan: %w", d.ID, err)
	}
	global, err := checkpoint.Unmarshal(resp.Checkpoint)
	if err != nil {
		return nil, fmt.Errorf("device %s: checkpoint: %w", d.ID, err)
	}

	res, execErr := d.Runtime.Execute(p, global, now())
	out := &Outcome{Accepted: true, Result: res}
	session := res.Session

	switch {
	case execErr != nil:
		// Execution error: report the abort for accounting, shape ends '*'.
		_ = conn.Send(protocol.ReportRequest{DeviceID: d.ID, TaskID: p.ID, Round: global.Round, Aborted: true})
		out.SessionShape = session.Shape()
		return out, nil
	case res.Interrupted:
		// Eligibility lapsed: silently drop (the server sees a lost
		// device); shape ends '!'.
		out.SessionShape = session.Shape()
		return out, nil
	}

	if res.Update != nil {
		if d.TrainDelay > 0 {
			time.Sleep(d.TrainDelay)
		}
		updBytes, err := res.Update.Marshal(p.UplinkEncoding())
		if err != nil {
			return nil, fmt.Errorf("device %s: marshal update: %w", d.ID, err)
		}
		session.Log(analytics.StateUploadStarted)
		report := protocol.ReportRequest{
			DeviceID: d.ID, TaskID: p.ID, Round: global.Round,
			Update: updBytes, Metrics: res.Metrics,
		}
		if err := conn.Send(report); err != nil {
			// The server may have aborted us (over-selection) and closed
			// the stream; a buffered Abort may still be readable.
			if msg, rerr := conn.Recv(); rerr == nil {
				if _, isAbort := msg.(protocol.Abort); isAbort {
					session.Log(analytics.StateUploadRejected)
					out.Aborted = true
					out.SessionShape = session.Shape()
					return out, nil
				}
			}
			session.Log(analytics.StateError)
			out.SessionShape = session.Shape()
			return out, nil
		}
		msg, err := conn.Recv()
		if err != nil {
			session.Log(analytics.StateError)
			out.SessionShape = session.Shape()
			return out, nil
		}
		switch r := msg.(type) {
		case protocol.ReportResponse:
			if r.Accepted {
				session.Log(analytics.StateUploadDone)
				out.ReportAccepted = true
			} else {
				session.Log(analytics.StateUploadRejected)
			}
		case protocol.Abort:
			session.Log(analytics.StateUploadRejected)
			out.Aborted = true
		default:
			session.Log(analytics.StateError)
		}
	} else {
		// Eval plan: report metrics only (Sec. 3: plans "can also encode
		// evaluation tasks").
		session.Log(analytics.StateUploadStarted)
		if err := conn.Send(protocol.ReportRequest{
			DeviceID: d.ID, TaskID: p.ID, Round: global.Round, Metrics: res.Metrics,
		}); err != nil {
			session.Log(analytics.StateError)
			out.SessionShape = session.Shape()
			return out, nil
		}
		if msg, err := conn.Recv(); err == nil {
			if r, ok := msg.(protocol.ReportResponse); ok && r.Accepted {
				session.Log(analytics.StateUploadDone)
				out.ReportAccepted = true
			} else {
				session.Log(analytics.StateUploadRejected)
			}
		} else {
			session.Log(analytics.StateError)
		}
	}
	out.SessionShape = session.Shape()
	return out, nil
}
