package flserver

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/actor"
	"repro/internal/fedavg"
	"repro/internal/obs"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// EdgeRoundConfig configures one shard-local round: a selector process runs
// the whole device-facing protocol at the edge — configuration fan-out,
// decode-and-accumulate into stripes — and ships exactly one sealed stripe
// upstream when the round closes. Device connections never cross the
// process boundary; only the seal does.
type EdgeRoundConfig struct {
	Population string
	TaskID     string
	Round      int64
	// PlanBytes / Checkpoint are served to devices verbatim: in sharded
	// mode the coordinator marshals them once and every shard fans out the
	// same bytes (single plan version — per-version lowering is a
	// single-process feature, documented in DESIGN.md).
	PlanBytes  []byte
	Checkpoint []byte
	// Dim is the model parameter count (sizes the accumulator stripes).
	Dim int
	// Target is this shard's share of the round's device target; reaching
	// it seals the stripe early.
	Target int
	// Admit is how many devices to request from the Selectors
	// (over-selection, Sec. 2.2); 0 defaults to Target.
	Admit    int
	EvalOnly bool
	// ReportDeadline is echoed to devices in their CheckinResponse.
	ReportDeadline time.Duration
	// ReportTimeout bounds the reporting window; at expiry the round seals
	// with whatever reports it holds (the coordinator enforces the global
	// minimum across shards).
	ReportTimeout time.Duration
	// ClipNorm, when positive, applies the norm-bound robust policy at this
	// shard's edge: each report's per-example-average L2 norm is bounded
	// before it folds into a stripe. Clipping is per-update, so it
	// distributes across shards; the seal carries the clip count upstream.
	ClipNorm float64
	// Linger is how long the sealed (or abandoned) round stays alive to
	// answer stragglers with explicit aborts before stopping itself
	// (default defaultEdgeRoundLinger). Devices arriving inside the window
	// get a protocol.Abort; after it, the Selectors' quota revocation has
	// drained and check-ins fall back to clean steering rejections.
	Linger time.Duration
}

// EdgeSeal is an edge round's result: the shard's merged stripe plus the
// loss accounting the coordinator folds into round totals. It is what
// crosses the selector→coordinator wire (as a protocol.StripeSeal).
type EdgeSeal struct {
	Population string
	TaskID     string
	Round      int64
	Seal       fedavg.SealedStripe
	Lost       int
	Aborted    int
	// Clipped counts reports the norm-bound policy clipped at this shard.
	Clipped int64
	// Phases maps round-lifecycle phase name (obs.PhaseConfigure etc.) to
	// wall nanoseconds this shard spent in it. The coordinator max-merges
	// the per-shard maps into the round trace: the fleet-wide cost of a
	// phase is its slowest shard.
	Phases map[string]int64
}

// msgEdgeStart kicks off a spawned edge round.
type msgEdgeStart struct{}

// defaultEdgeRoundLinger is how long a sealed (or abandoned) edge round
// stays alive to answer stragglers before stopping itself, when the config
// leaves Linger zero. A Selector that accepted a device just before
// processing the seal's quota revocation has already enqueued it here;
// stopping immediately would drop that message — and with it the device's
// connection, never answered and never closed. The linger only needs to
// outlast the Selectors' mailbox backlog at seal time, so a couple of
// seconds is far beyond safe.
const defaultEdgeRoundLinger = 2 * time.Second

// msgEdgeFinalize is the coordinator-forced window close (it saw enough
// reports across all shards, or the round deadline passed): seal and ship
// whatever this shard holds.
type msgEdgeFinalize struct{}

// edgeDev is one configured device's accounting on an edge round.
type edgeDev struct {
	conn     transport.Conn
	reported bool
	lost     bool
}

// EdgeRound runs one round's device-facing half on a selector shard: it
// requests devices from the shard's local Selectors, streams each arrival
// its configuration (the pre-framed plan+checkpoint response, built once),
// lets per-connection readers decode-and-accumulate reports into this
// round's stripes, and — on target, timeout, or coordinator order — merges
// the stripes into a single fedavg.SealedStripe handed to ship. It reuses
// the single-process round machinery (reportReader, roundIngest,
// sendThenClose) so the edge path is identical in both deployments; only
// who merges the seal differs.
type EdgeRound struct {
	cfg       EdgeRoundConfig
	selectors []actor.Ref
	ship      func(EdgeSeal)

	ingest    *roundIngest
	resp      *transport.Encoded
	devices   map[string]*edgeDev
	completed int
	lost      int
	sealed    bool
	// topUpAt round-robins replacement-quota requests across Selectors.
	topUpAt int

	// startAt anchors the report-window span; checkinNanos is the wait for
	// the first device batch (round start → the Selectors delivering);
	// configNanos accumulates the configuration fan-out wall time across
	// device batches (written by the fan-out completion goroutines, read at
	// seal time).
	startAt      time.Time
	checkinNanos int64
	configNanos  atomic.Int64

	// clipped counts norm-bound edge clips (written by reader goroutines);
	// obsClipped is the task-labeled series, resolved once at start.
	clipped    atomic.Int64
	obsClipped *obs.Counter
}

// NewEdgeRound returns the behavior for one shard-local round. ship runs on
// the actor goroutine and must not block (hand the seal to a peer link or a
// channel).
func NewEdgeRound(cfg EdgeRoundConfig, selectors []actor.Ref, ship func(EdgeSeal)) *EdgeRound {
	if cfg.Target < 1 {
		cfg.Target = 1
	}
	if cfg.Admit < cfg.Target {
		cfg.Admit = cfg.Target
	}
	if cfg.ReportTimeout <= 0 {
		cfg.ReportTimeout = 30 * time.Second
	}
	if cfg.Linger <= 0 {
		cfg.Linger = defaultEdgeRoundLinger
	}
	return &EdgeRound{
		cfg:       cfg,
		selectors: selectors,
		ship:      ship,
		devices:   make(map[string]*edgeDev),
	}
}

// Receive implements actor.Behavior.
func (er *EdgeRound) Receive(ctx *actor.Context, msg actor.Message) {
	switch m := msg.(type) {
	case msgEdgeStart:
		er.start(ctx)
	case msgDevices:
		er.onDevices(ctx, m)
	case msgReportDone:
		er.noteOutcome(ctx, m.DeviceID, m.OK)
	case msgDeviceLost:
		er.onLost(ctx, m.DeviceID)
	case msgReportTimeout:
		er.seal(ctx)
	case msgEdgeFinalize:
		er.seal(ctx)
	case msgAbandonRound:
		er.abandon(ctx, m.Reason)
	}
}

// start asks the local Selectors for devices and opens the reporting
// window. The device-facing response frame is encoded once here and shared
// by every configuration send.
func (er *EdgeRound) start(ctx *actor.Context) {
	er.startAt = time.Now()
	er.ingest = newRoundIngest(er.cfg.Dim)
	if er.cfg.ClipNorm > 0 {
		er.obsClipped, _, _ = robustTaskCounters(er.cfg.TaskID)
	}
	er.resp = transport.Encode(protocol.CheckinResponse{
		Accepted:       true,
		TaskID:         er.cfg.TaskID,
		Round:          er.cfg.Round,
		Plan:           er.cfg.PlanBytes,
		Checkpoint:     er.cfg.Checkpoint,
		ReportDeadline: er.cfg.ReportDeadline,
	})

	// Split the admit count across local Selectors, remainder to the
	// first. Quota and forward go out together so devices stream to this
	// round as they check in.
	n := len(er.selectors)
	if n == 0 {
		n = 1
	}
	share := er.cfg.Admit / n
	extra := er.cfg.Admit - share*n
	for i, sel := range er.selectors {
		want := share
		if i == 0 {
			want += extra
		}
		if want <= 0 {
			continue
		}
		_ = sel.Send(msgSetQuota{Population: er.cfg.Population, Accept: want})
		_ = sel.Send(msgForwardDevices{Population: er.cfg.Population, N: want, To: ctx.Self})
	}

	self := ctx.Self
	time.AfterFunc(er.cfg.ReportTimeout, func() { _ = self.Send(msgReportTimeout{}) })
}

// onDevices configures a batch of forwarded devices: the shared pre-framed
// response goes out on a bounded worker pool (a dead socket must never
// stall the actor), and each successful send hands the connection to a
// reportReader goroutine that consumes the report at the edge.
func (er *EdgeRound) onDevices(ctx *actor.Context, m msgDevices) {
	if er.sealed {
		for _, d := range m.Devices {
			sendThenClose(d.Conn, protocol.Abort{TaskID: er.cfg.TaskID, Round: er.cfg.Round, Reason: "round sealed"})
		}
		return
	}
	if er.checkinNanos == 0 && len(m.Devices) > 0 {
		er.checkinNanos = time.Since(er.startAt).Nanoseconds()
	}
	jobs := make([]configJob, 0, len(m.Devices))
	dups := 0
	for _, d := range m.Devices {
		if _, dup := er.devices[d.ID]; dup {
			// A device this round already configured checked in again (it
			// completed — or lost its connection — and redialed while the
			// window is still open). Reject it and hand the quota slot back,
			// or completed devices would burn the admit budget below the
			// seal target and stall the round to its timeout.
			dups++
			sendThenClose(d.Conn, protocol.CheckinResponse{
				Accepted: false, Reason: "already participating in this round",
			})
			continue
		}
		er.devices[d.ID] = &edgeDev{conn: d.Conn}
		jobs = append(jobs, configJob{deviceID: d.ID, conn: d.Conn, resp: er.resp})
	}
	er.topUp(ctx, dups)
	if len(jobs) == 0 {
		return
	}

	self := ctx.Self
	rr := reportReader{
		self:     self,
		dim:      er.cfg.Dim,
		evalOnly: er.cfg.EvalOnly,
		ingest:   er.ingest,
	}
	if er.cfg.ClipNorm > 0 {
		rr.clip = er.cfg.ClipNorm
		rr.clipped = &er.clipped
		rr.obsClipped = er.obsClipped
	}
	jobCh := make(chan configJob, len(jobs))
	for _, j := range jobs {
		jobCh <- j
	}
	close(jobCh)
	var sends sync.WaitGroup
	sends.Add(len(jobs))
	for w := fanoutWorkers(len(jobs)); w > 0; w-- {
		go func() {
			for j := range jobCh {
				if err := j.conn.Send(j.resp); err != nil {
					_ = j.conn.Close()
					_ = self.Send(msgDeviceLost{DeviceID: j.deviceID})
				} else {
					go rr.read(j.deviceID, j.conn, nil)
				}
				sends.Done()
			}
		}()
	}
	batchStart := time.Now()
	go func() {
		sends.Wait()
		er.configNanos.Add(time.Since(batchStart).Nanoseconds())
	}()
}

func (er *EdgeRound) noteOutcome(ctx *actor.Context, deviceID string, ok bool) {
	d, exists := er.devices[deviceID]
	if !exists || d.reported || d.lost {
		return
	}
	if !ok {
		d.lost = true
		er.lost++
		er.topUp(ctx, 1)
		return
	}
	d.reported = true
	er.completed++
	if !er.sealed && er.completed >= er.cfg.Target {
		er.seal(ctx)
	}
}

func (er *EdgeRound) onLost(ctx *actor.Context, deviceID string) {
	d, ok := er.devices[deviceID]
	if !ok || d.reported || d.lost {
		return
	}
	d.lost = true
	er.lost++
	er.topUp(ctx, 1)
}

// topUp asks a Selector (round-robin) for n replacement devices after
// admitted ones dropped out of the round, keeping the number of devices
// that can still complete at the admit target.
func (er *EdgeRound) topUp(ctx *actor.Context, n int) {
	if n <= 0 || er.sealed || len(er.selectors) == 0 {
		return
	}
	sel := er.selectors[er.topUpAt%len(er.selectors)]
	er.topUpAt++
	_ = sel.Send(msgQuotaTopUp{Population: er.cfg.Population, N: n, To: ctx.Self})
}

// seal closes the window: stripes are sealed (a reader racing the close
// gets ErrPartialClosed and answers its device "window closed"), merged
// into one SealedStripe, unreported devices are aborted, quota is revoked,
// and the seal ships upstream. The actor lingers briefly to abort devices a
// Selector streamed concurrently with the seal, then stops — an edge round,
// like a Master Aggregator, is per-round ephemeral.
func (er *EdgeRound) seal(ctx *actor.Context) {
	if er.sealed {
		return
	}
	er.sealed = true
	windowNanos := time.Since(er.startAt).Nanoseconds()
	mergeStart := time.Now()
	er.ingest.close()
	sealed, err := fedavg.SealStripes(er.ingest.stripes)
	if err != nil {
		// Dimension mismatch across stripes cannot happen (one dim per
		// round); ship an empty seal so the coordinator still hears from
		// this shard rather than waiting out its straggler timeout.
		sealed = fedavg.SealedStripe{}
	}

	abort := protocol.Abort{TaskID: er.cfg.TaskID, Round: er.cfg.Round, Reason: "enough devices completed"}
	aborted := 0
	for _, d := range er.devices {
		if !d.reported && !d.lost {
			aborted++
			sendThenClose(d.conn, abort)
		}
	}
	for _, sel := range er.selectors {
		_ = sel.Send(msgSetQuota{Population: er.cfg.Population, Accept: 0})
	}
	if er.ship != nil {
		phases := map[string]int64{
			obs.PhaseReportWindow:   windowNanos,
			obs.PhaseEdgeAccumulate: time.Since(mergeStart).Nanoseconds(),
		}
		if er.checkinNanos > 0 {
			phases[obs.PhaseCheckin] = er.checkinNanos
		}
		if cfgNs := er.configNanos.Load(); cfgNs > 0 {
			phases[obs.PhaseConfigure] = cfgNs
		}
		er.ship(EdgeSeal{
			Population: er.cfg.Population,
			TaskID:     er.cfg.TaskID,
			Round:      er.cfg.Round,
			Seal:       sealed,
			Lost:       er.lost,
			Aborted:    aborted,
			Clipped:    er.clipped.Load(),
			Phases:     phases,
		})
	}
	er.lingerThenStop(ctx)
}

// abandon fails the round without shipping: close every held connection
// with an abort, then linger (like seal) so concurrently streamed devices
// are answered rather than dropped with the mailbox.
func (er *EdgeRound) abandon(ctx *actor.Context, reason string) {
	if er.sealed {
		// Already sealed or abandoned; the linger timer armed then will
		// stop the actor.
		return
	}
	er.sealed = true
	if er.ingest != nil {
		er.ingest.close()
	}
	abort := protocol.Abort{TaskID: er.cfg.TaskID, Round: er.cfg.Round, Reason: reason}
	for _, d := range er.devices {
		if !d.reported && !d.lost {
			sendThenClose(d.conn, abort)
		}
	}
	for _, sel := range er.selectors {
		_ = sel.Send(msgSetQuota{Population: er.cfg.Population, Accept: 0})
	}
	er.lingerThenStop(ctx)
}

// lingerThenStop schedules the round's actual stop cfg.Linger after it
// sealed. In between, late msgDevices are answered with an abort by
// onDevices' sealed branch — a device connection must never be dropped
// unanswered with the mailbox.
func (er *EdgeRound) lingerThenStop(ctx *actor.Context) {
	self := ctx.Self
	time.AfterFunc(er.cfg.Linger, self.Stop)
}

// StartEdgeRound spawns an edge round on sys under the given actor name and
// kicks it off. The returned ref accepts FinalizeEdgeRound /
// AbandonEdgeRound; the actor stops itself once sealed or abandoned.
func StartEdgeRound(sys *actor.System, name string, cfg EdgeRoundConfig, selectors []actor.Ref, ship func(EdgeSeal)) actor.Ref {
	ref := sys.Spawn(name, NewEdgeRound(cfg, selectors, ship))
	_ = ref.Send(msgEdgeStart{})
	return ref
}

// FinalizeEdgeRound forces an edge round to seal and ship now (coordinator
// decision: the global round is closing).
func FinalizeEdgeRound(ref actor.Ref) { _ = ref.Send(msgEdgeFinalize{}) }

// AbandonEdgeRound fails an edge round without shipping (coordinator
// aborted the round, or the shard lost its coordinator link mid-round).
func AbandonEdgeRound(ref actor.Ref, reason string) { _ = ref.Send(msgAbandonRound{Reason: reason}) }
