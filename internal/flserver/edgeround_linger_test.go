package flserver

import (
	"testing"
	"time"

	"repro/internal/actor"
	"repro/internal/pacing"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// TestEdgeRoundLingerWindow is the regression test for the configurable
// post-seal linger: a device arriving INSIDE the window gets an explicit
// protocol.Abort (its connection answered, then closed), while a device
// checking in AFTER the window gets a clean steering rejection from the
// Selector (the quota revocation has drained; the round actor is gone).
func TestEdgeRoundLingerWindow(t *testing.T) {
	sys := actor.NewSystem()
	defer sys.Shutdown()

	sel := sys.Spawn("sel", NewSelector(nil, pacing.New(time.Minute), 0, 1, nil,
		SelectorPopulation{Name: "pop"}))

	seals := make(chan EdgeSeal, 1)
	const linger = 400 * time.Millisecond
	ref := StartEdgeRound(sys, "edge-linger-test", EdgeRoundConfig{
		Population:    "pop",
		TaskID:        "task",
		Round:         7,
		Dim:           4,
		Target:        1,
		ReportTimeout: 50 * time.Millisecond,
		Linger:        linger,
	}, []actor.Ref{sel}, func(s EdgeSeal) { seals <- s })

	// No device reports; the window times out and the round seals empty.
	select {
	case <-seals:
	case <-time.After(5 * time.Second):
		t.Fatal("round never sealed")
	}
	sealedAt := time.Now()

	// INSIDE the linger window: a late forward reaches the still-lingering
	// round actor and must be answered with an explicit abort.
	srvEnd, devEnd := transport.Pipe()
	if err := ref.Send(msgDevices{Devices: []heldDevice{{ID: "late-inside", Conn: srvEnd}}}); err != nil {
		t.Fatalf("send inside linger window: %v", err)
	}
	got := make(chan interface{}, 1)
	go func() {
		msg, err := devEnd.Recv()
		if err != nil {
			got <- err
			return
		}
		got <- msg
	}()
	select {
	case msg := <-got:
		ab, ok := msg.(protocol.Abort)
		if !ok {
			t.Fatalf("late device inside window got %T (%v), want protocol.Abort", msg, msg)
		}
		if ab.Reason != "round sealed" || ab.TaskID != "task" || ab.Round != 7 {
			t.Fatalf("abort = %+v", ab)
		}
	case <-time.After(linger):
		t.Fatal("late device inside window never answered")
	}
	// The connection is closed after the abort, not left half-open.
	if _, err := devEnd.Recv(); err == nil {
		t.Fatal("late device connection left open after abort")
	}

	// OUTSIDE the window: the round actor has stopped itself.
	deadline := sealedAt.Add(linger + 2*time.Second)
	for !ref.Stopped() {
		if time.Now().After(deadline) {
			t.Fatal("round actor still alive well past its linger window")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A fresh check-in now gets a clean steering rejection from the
	// Selector — quota was revoked at seal, so there is no round to join
	// and nothing to abort.
	srvEnd2, devEnd2 := transport.Pipe()
	if err := sel.Send(msgCheckin{
		Req:  protocol.CheckinRequest{Population: "pop", DeviceID: "late-outside"},
		Conn: srvEnd2,
	}); err != nil {
		t.Fatalf("post-linger checkin: %v", err)
	}
	msg, err := devEnd2.Recv()
	if err != nil {
		t.Fatalf("post-linger device recv: %v", err)
	}
	resp, ok := msg.(protocol.CheckinResponse)
	if !ok {
		t.Fatalf("post-linger device got %T, want clean CheckinResponse rejection", msg)
	}
	if resp.Accepted {
		t.Fatal("post-linger checkin accepted with no round open")
	}
	if resp.RetryAfter <= 0 {
		t.Fatalf("clean rejection carries no steering hint: %+v", resp)
	}
}

// TestEdgeRoundLingerDefault pins the default window so the knob's zero
// value stays backward compatible.
func TestEdgeRoundLingerDefault(t *testing.T) {
	er := NewEdgeRound(EdgeRoundConfig{Population: "p", TaskID: "t", Dim: 1}, nil, func(EdgeSeal) {})
	if er.cfg.Linger != defaultEdgeRoundLinger {
		t.Fatalf("default linger = %v, want %v", er.cfg.Linger, defaultEdgeRoundLinger)
	}
	er = NewEdgeRound(EdgeRoundConfig{Population: "p", TaskID: "t", Dim: 1, Linger: time.Second}, nil, func(EdgeSeal) {})
	if er.cfg.Linger != time.Second {
		t.Fatalf("explicit linger = %v, want 1s", er.cfg.Linger)
	}
}
