package flserver

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
)

// failingStore rejects the first N checkpoint commits, then delegates.
// It simulates a persistent-storage outage at commit time. The embedded
// Store serves every other method (metrics, task-set persistence).
type failingStore struct {
	storage.Store
	failures int
	seen     int
}

func (f *failingStore) PutCheckpoint(c *checkpoint.Checkpoint) error {
	f.seen++
	if f.seen <= f.failures {
		return fmt.Errorf("injected storage failure %d", f.seen)
	}
	return f.Store.PutCheckpoint(c)
}

func TestCommitFailureAbandonsRoundThenRecovers(t *testing.T) {
	// The storage commit is the round's only persistent write (Sec. 4.2).
	// If it fails, the round must be abandoned — never half-committed — and
	// the Coordinator must retry until storage recovers.
	fed, _ := data.Blobs(data.BlobsConfig{Users: 10, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 31})
	store := &failingStore{Store: storage.NewMem(), failures: 2}
	p := testPlan(t, 4, false)
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 2, Seed: 32,
	})
	fl := newFleet(t, 10, fed, 3)
	fl.run(net, addr)
	waitDone(t, srv, 90*time.Second)
	fl.halt()

	st := stats(t, srv)
	if st.RoundsFailed < 2 {
		t.Fatalf("expected ≥2 abandoned rounds from storage failures, got %d", st.RoundsFailed)
	}
	if st.RoundsCompleted < 2 {
		t.Fatalf("server did not recover: %d completed", st.RoundsCompleted)
	}
	ckpt, err := store.LatestCheckpoint(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Rounds that failed at commit must not have advanced the model: the
	// committed round counter equals the number of successful commits.
	if ckpt.Round != int64(st.RoundsCompleted) {
		t.Fatalf("checkpoint round %d != completed rounds %d", ckpt.Round, st.RoundsCompleted)
	}
}

func TestSelectorForwardsToDeadMasterLosesOnlyThoseDevices(t *testing.T) {
	// Sec. 4.4: if an actor holding devices dies, only those devices are
	// lost. Simulate by forwarding to an already-stopped Master Aggregator
	// ref: the Selector must close the connections and carry on.
	fed, _ := data.Blobs(data.BlobsConfig{Users: 6, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 33})
	store := storage.NewMem()
	p := testPlan(t, 3, false)
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 2, Seed: 34,
	})
	fl := newFleet(t, 6, fed, 3)
	fl.run(net, addr)
	waitDone(t, srv, 60*time.Second)
	fl.halt()
	// The real assertion is end-to-end: rounds complete despite the
	// forward-to-dead-ref path being exercised in Selector.onForward
	// whenever a Master Aggregator stops while devices stream in.
	if stats(t, srv).RoundsCompleted < 2 {
		t.Fatal("training did not complete")
	}
}
