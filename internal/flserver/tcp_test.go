package flserver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/transport"
)

// TestEndToEndOverTCP runs the full protocol over real TCP sockets: the
// same server and device code the cmd/flserver and cmd/fldevices binaries
// use.
func TestEndToEndOverTCP(t *testing.T) {
	fed, err := data.Blobs(data.BlobsConfig{
		Users: 12, ExamplesPer: 25, Features: 4, Classes: 3, TestSize: 200, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := storage.NewMem()
	p := testPlan(t, 6, false)
	srv, err := New(Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 3, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	l, err := transport.ListenTCP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	addr := l.Addr()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := device.NewMemStore("clicks", 1000, 0)
			if err != nil {
				t.Error(err)
				return
			}
			now := time.Now()
			for _, ex := range fed.Users[i] {
				s.Add(ex, now)
			}
			rt := device.NewRuntime(fmt.Sprintf("tcp-dev-%d", i), 3, nil, uint64(i))
			if err := rt.RegisterStore(s); err != nil {
				t.Error(err)
				return
			}
			client := &DeviceClient{ID: fmt.Sprintf("tcp-dev-%d", i), Population: "pop", Runtime: rt}
			for {
				select {
				case <-stop:
					return
				default:
				}
				conn, err := transport.DialTCP(addr)
				if err != nil {
					return // listener closed
				}
				if _, err := client.RunOnce(conn); err != nil {
					time.Sleep(20 * time.Millisecond)
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	waitDone(t, srv, 90*time.Second)
	close(stop)
	wg.Wait()

	ckpt, err := store.LatestCheckpoint(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.Round < 3 {
		t.Fatalf("TCP rounds committed = %d", ckpt.Round)
	}
	m, _ := p.Device.Model.Build()
	m.WriteParams(ckpt.Params)
	if acc := m.Evaluate(fed.Test).Accuracy; acc < 0.6 {
		t.Fatalf("TCP-trained accuracy = %v", acc)
	}
}
