// Package flserver implements the FL server of Sec. 4: an actor-based
// architecture with Coordinators (one per FL population, registered in a
// shared locking service), Selectors (accept and forward device
// connections), and per-round Master Aggregators that delegate to
// ephemeral Aggregator actors. All round state lives in actor memory; only
// the fully aggregated result is committed to storage.
//
// The actors exchange the message types in this file. Device connections
// are transport.Conn streams; a goroutine per connection turns wire
// messages into actor messages.
package flserver

import (
	"time"

	"repro/internal/actor"
	"repro/internal/checkpoint"
	"repro/internal/fedavg"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/robust"
	"repro/internal/tasks"
	"repro/internal/transport"
)

// heldDevice is an accepted device connection parked in a Selector, ready
// to be forwarded to an Aggregator.
type heldDevice struct {
	ID             string
	RuntimeVersion int
	Conn           transport.Conn
	// AcceptedAt is when the device checked in (for participation timing).
	AcceptedAt time.Time
}

// --- Selector messages ---

// msgCheckin is posted by a connection handler when a device checks in.
type msgCheckin struct {
	Req  protocol.CheckinRequest
	Conn transport.Conn
}

// msgSetQuota is the Coordinator's periodic instruction telling a Selector
// how many devices to accept for a population (Sec. 4.2).
type msgSetQuota struct {
	Population string
	// Accept is the number of additional devices the Selector may hold.
	Accept int
}

// msgForwardDevices instructs a Selector to send up to N of a population's
// held devices to the given Master Aggregator.
type msgForwardDevices struct {
	Population string
	N          int
	To         actor.Ref
}

// msgQuotaTopUp replenishes a Selector's quota after an admitted device
// turned out not to count toward the round — a duplicate check-in of a
// device already configured, or a connection lost before its report. The
// round's effective admit count stays constant, so quota cannot be burned
// down below the seal target by completed devices checking in again while
// the window is still open.
type msgQuotaTopUp struct {
	Population string
	N          int
	// To streams the replacement devices (same contract as
	// msgForwardDevices.To).
	To actor.Ref
}

// msgRegisterPopulation adds a population to a Selector at runtime.
type msgRegisterPopulation struct {
	Pop SelectorPopulation
}

// msgDeregisterPopulation removes a population from a Selector: parked
// devices are steered away and later check-ins rejected as unknown.
type msgDeregisterPopulation struct {
	Name string
}

// msgReleaseParked tells a Selector to steer one population's parked
// devices away (with a reconnect hint) and stop accepting more. Sent by a
// Coordinator that has reached its round target: a device parked for a
// round that will never start must not sit on a half-open connection.
type msgReleaseParked struct {
	Population string
}

// msgRateProbe asks a Selector for one population's check-in arrivals since
// the last probe; the sample returns to To as msgCheckinRate. The
// Coordinator probes every scheduling tick and feeds the observed rates
// into the TaskSet's live population estimate (DESIGN.md §2a).
type msgRateProbe struct {
	Population string
	To         actor.Ref
}

// msgCheckinRate is one Selector's arrival sample for a population: Count
// check-ins observed over Elapsed, while steering hints were computed for
// per-selector demand Demand. A Selector only emits a sample once its
// window is long enough to carry signal.
type msgCheckinRate struct {
	From       actor.Ref
	Population string
	Count      int64
	Elapsed    time.Duration
	Demand     int
}

// msgSelectorStats asks a Selector for its current counts; Population ""
// sums across every population the Selector serves.
type msgSelectorStats struct {
	Population string
	Reply      chan SelectorStats
}

// SelectorStats reports a Selector's connection counts and its quota
// ledger. The ledger is conserved: every quota slot a Coordinator grants is
// eventually consumed by an accepted device, revoked at seal/abandon/release,
// or still outstanding — QuotaGranted == QuotaConsumed + QuotaRevoked +
// QuotaOutstanding at every quiescent point. chaos.Verify asserts this after
// every fault scenario: a violation means a revoke/top-up cycle under churn
// double-counted or leaked a slot.
type SelectorStats struct {
	Held     int
	Accepted int64
	Rejected int64
	// UnknownPopulation counts check-ins rejected because no registered
	// population matched (only reported on the all-population totals).
	UnknownPopulation int64
	// Quota ledger (slots, cumulative).
	QuotaGranted     int64
	QuotaConsumed    int64
	QuotaRevoked     int64
	QuotaOutstanding int64
}

// Add folds another stats sample into s (summing across Selectors).
func (s *SelectorStats) Add(o SelectorStats) {
	s.Held += o.Held
	s.Accepted += o.Accepted
	s.Rejected += o.Rejected
	s.UnknownPopulation += o.UnknownPopulation
	s.QuotaGranted += o.QuotaGranted
	s.QuotaConsumed += o.QuotaConsumed
	s.QuotaRevoked += o.QuotaRevoked
	s.QuotaOutstanding += o.QuotaOutstanding
}

// QuotaConserved reports whether the quota ledger balances.
func (s SelectorStats) QuotaConserved() bool {
	return s.QuotaGranted == s.QuotaConsumed+s.QuotaRevoked+s.QuotaOutstanding
}

// --- Master Aggregator messages ---

// msgDevices delivers forwarded devices to a Master Aggregator.
type msgDevices struct {
	Devices []heldDevice
}

// msgSelectionTimeout fires when the selection window closes.
type msgSelectionTimeout struct{}

// msgReportTimeout fires when the reporting window closes.
type msgReportTimeout struct{}

// msgReportDone is the fixed-size outcome of one device's report, posted by
// its connection reader after the O(dim) work already happened at the edge
// (decode-and-accumulate into a stripe for non-secure rounds, decode into a
// pooled group-Aggregator input for secure ones). Only round accounting
// crosses the Master Aggregator's mailbox — never a parameter vector.
type msgReportDone struct {
	DeviceID string
	// OK is true when the report was folded in; false records a rejected
	// report (device abort, malformed or dimension-mismatched update).
	OK bool
}

// msgDeviceLost is posted when a device connection dies before reporting.
type msgDeviceLost struct {
	DeviceID string
}

// msgFinalizeGroup tells an Aggregator to deliver its partial aggregate.
// For non-secure rounds it carries the Aggregator's share of the round's
// edge-accumulation stripes to merge first — the aggregation tree of
// Sec. 4.3: readers fold into stripes, group Aggregators merge stripes,
// the Master Aggregator merges group partials.
type msgFinalizeGroup struct {
	Stripes []*fedavg.PartialAccumulator
	// Assigned lists the device ids configured into this group, in
	// assignment order. Secure groups derive their secagg instance size
	// from it: devices that were configured but never delivered an update
	// (connection died, timed out, aborted) become real dropouts in the
	// protocol's churn schedule rather than silently shrinking the group.
	// Empty means "size the instance by what was delivered" (legacy/test
	// paths).
	Assigned []string
	// Robust is the round's per-update retention buffer (trimmed mean /
	// median / cosine policies); the receiving Aggregator drains it and
	// runs the robust reduce in place of a stripe merge. Handed to exactly
	// one group per round, already sealed by the Master Aggregator.
	Robust *robust.Buffer
}

// msgGroupResult is an Aggregator's partial aggregate for the round.
type msgGroupResult struct {
	From    actor.Ref
	Sum     []float64
	Weight  float64
	Count   int
	Metrics map[string][]float64 // metric name -> per-device values
	// Err reports a finalization failure (e.g. the secagg run aborted).
	// The group's model updates are lost, but Count and Metrics still
	// describe the reports that never depended on the secure path.
	Err string
	// Blamed lists devices the secagg run excluded or rejected with an
	// attributed reason ("deviceID: reason") — poisoned share dealers,
	// forged unmask responders. Populated on success and on abort.
	Blamed []string
	// Phases maps secagg phase name (advertise, share, commit, unmask) to
	// the wall time this group spent in it, for the round tracer. Nil for
	// insecure groups (a robust reduce reports its cost under
	// "robust_reduce").
	Phases map[string]time.Duration
	// RobustRejected lists devices the round's robust policy rejected or
	// attributed, each as "deviceID: reason" — the defense-hit counterpart
	// of Blamed.
	RobustRejected []string
}

// --- Coordinator messages ---

// msgRoundComplete reports a committed round to the Coordinator.
type msgRoundComplete struct {
	TaskID    string
	Round     int64
	Committed *checkpoint.Checkpoint
	Completed int
	Aborted   int
	Lost      int
	// GroupErrors lists per-group finalization failures in an otherwise
	// successful round (the failed groups' updates are simply absent).
	GroupErrors []string
	// BlamedDevices lists devices blamed by Secure Aggregation across the
	// round's groups, each as "deviceID: reason" — operator-visible
	// attribution for misbehaving (not merely lost) devices.
	BlamedDevices []string
	// RobustRejected lists devices the task's robust aggregation policy
	// rejected (cosine outliers, non-finite updates) or attributed as
	// dominating the trimmed tails, each as "deviceID: reason" — so
	// operators can tell defense hits from churn (BlamedDevices covers
	// secagg misbehavior, Lost covers churn).
	RobustRejected []string
	// Clipped counts updates whose norm the round's norm-bound policy
	// clipped at the edge.
	Clipped int
}

// msgRoundFailed reports an abandoned round.
type msgRoundFailed struct {
	TaskID string
	Round  int64
	Reason string
}

// msgTick drives the Coordinator's periodic scheduling.
type msgTick struct{}

// msgStopCoordinator tells a Coordinator to shut down cleanly: abandon any
// in-flight round, release the population lock, and stop without a failure
// (so watchers do not respawn it). Sent on population deregistration.
type msgStopCoordinator struct{}

// msgAbandonRound tells a Master Aggregator to fail its round immediately
// (e.g. the population was deregistered mid-round): device connections are
// closed and group Aggregators stopped.
type msgAbandonRound struct {
	Reason string
}

// taskOp enumerates task lifecycle mutations.
type taskOp uint8

// Task lifecycle operations.
const (
	taskOpSubmit taskOp = iota + 1
	taskOpPause
	taskOpResume
	taskOpRetire
)

// msgTaskOp is one task lifecycle mutation (Sec. 7 model-engineer
// workflow), routed through the Coordinator's mailbox so it serializes
// with round scheduling: a task can never change state in the middle of a
// scheduling tick, and a retired task's in-flight round completes but is
// never rescheduled.
type msgTaskOp struct {
	Op     taskOp
	Plan   *plan.Plan   // submit
	Policy tasks.Policy // submit
	ID     string       // pause / resume / retire
	Reply  chan error
}

// msgTaskStats asks the Coordinator for its per-task lifecycle records.
type msgTaskStats struct {
	Reply chan []tasks.Stats
}

// msgCoordinatorStats asks for coordinator progress.
type msgCoordinatorStats struct {
	Reply chan CoordinatorStats
}

// CoordinatorStats reports rounds progress for a population.
type CoordinatorStats struct {
	RoundsCompleted int
	RoundsFailed    int
	CurrentRound    int64
}
