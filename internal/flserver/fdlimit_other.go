//go:build !unix

package flserver

// ensureFDLimit is a no-op where RLIMIT_NOFILE does not exist; descriptor
// exhaustion surfaces as a dial/accept error instead.
func ensureFDLimit(n uint64) error { return nil }
