package flserver

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/actor"
	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// collectMaster spawns an actor standing in for the Master Aggregator,
// recording everything the Aggregator sends.
func collectMaster(s *actor.System) (*actor.Ref, func() []actor.Message, chan struct{}) {
	var mu sync.Mutex
	var got []actor.Message
	sig := make(chan struct{}, 256)
	ref := s.Spawn("fake-master", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		mu.Lock()
		got = append(got, msg)
		mu.Unlock()
		sig <- struct{}{}
	}))
	return ref, func() []actor.Message {
		mu.Lock()
		defer mu.Unlock()
		return append([]actor.Message(nil), got...)
	}, sig
}

func waitSignals(t *testing.T, sig chan struct{}, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-sig:
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %d/%d messages", i+1, n)
		}
	}
}

func TestAggregatorSimpleSum(t *testing.T) {
	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)
	agg := sys.Spawn("agg", NewAggregator(2, false, master))
	defer sys.Shutdown(master, agg)

	_ = agg.Send(msgAddUpdate{DeviceID: "a", Update: &checkpoint.Checkpoint{Params: tensor.Vector{2, 4}, Weight: 2}, Metrics: map[string]float64{"loss": 1}})
	_ = agg.Send(msgAddUpdate{DeviceID: "b", Update: &checkpoint.Checkpoint{Params: tensor.Vector{1, 1}, Weight: 1}, Metrics: map[string]float64{"loss": 3}})
	waitSignals(t, sig, 2)
	_ = agg.Send(msgFinalizeGroup{})
	waitSignals(t, sig, 1)

	msgs := got()
	res, ok := msgs[len(msgs)-1].(msgGroupResult)
	if !ok {
		t.Fatalf("last message %T", msgs[len(msgs)-1])
	}
	if res.Count != 2 || res.Weight != 3 {
		t.Fatalf("result: %+v", res)
	}
	if res.Sum[0] != 3 || res.Sum[1] != 5 {
		t.Fatalf("sum = %v", res.Sum)
	}
	if len(res.Metrics["loss"]) != 2 {
		t.Fatalf("metrics: %+v", res.Metrics)
	}
}

func TestAggregatorRejectsBadUpdates(t *testing.T) {
	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)
	agg := sys.Spawn("agg", NewAggregator(2, false, master))
	defer sys.Shutdown(master, agg)

	_ = agg.Send(msgAddUpdate{DeviceID: "a", Update: &checkpoint.Checkpoint{Params: tensor.Vector{1}, Weight: 1}})
	_ = agg.Send(msgAddUpdate{DeviceID: "b", Update: &checkpoint.Checkpoint{Params: tensor.Vector{1, 2}, Weight: 0}})
	waitSignals(t, sig, 2)
	for _, m := range got() {
		if r, ok := m.(msgAddResult); ok && r.OK {
			t.Fatalf("bad update accepted: %+v", r)
		}
	}
}

func TestAggregatorSecureMatchesSimple(t *testing.T) {
	sys := actor.NewSystem()
	updates := []*checkpoint.Checkpoint{
		{Params: tensor.Vector{1, -2, 0.5}, Weight: 3},
		{Params: tensor.Vector{0.25, 1, 1}, Weight: 1},
		{Params: tensor.Vector{-1, -1, -1}, Weight: 2},
	}
	run := func(secure bool) msgGroupResult {
		master, got, sig := collectMaster(sys)
		agg := sys.Spawn("agg", NewAggregator(3, secure, master))
		defer func() { master.Stop(); agg.Stop() }()
		for i, u := range updates {
			_ = agg.Send(msgAddUpdate{DeviceID: string(rune('a' + i)), Update: u})
		}
		waitSignals(t, sig, len(updates))
		_ = agg.Send(msgFinalizeGroup{})
		waitSignals(t, sig, 1)
		msgs := got()
		return msgs[len(msgs)-1].(msgGroupResult)
	}
	plainRes := run(false)
	secureRes := run(true)
	if plainRes.Count != secureRes.Count {
		t.Fatalf("counts differ: %d vs %d", plainRes.Count, secureRes.Count)
	}
	if math.Abs(plainRes.Weight-secureRes.Weight) > 1e-3 {
		t.Fatalf("weights differ: %v vs %v", plainRes.Weight, secureRes.Weight)
	}
	for i := range plainRes.Sum {
		if math.Abs(plainRes.Sum[i]-secureRes.Sum[i]) > 1e-3 {
			t.Fatalf("secure sum %v != plain %v", secureRes.Sum, plainRes.Sum)
		}
	}
}

func TestAggregatorEvalMetricsOnly(t *testing.T) {
	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)
	agg := sys.Spawn("agg", NewAggregator(2, false, master))
	defer sys.Shutdown(master, agg)

	_ = agg.Send(msgAddUpdate{DeviceID: "a", Metrics: map[string]float64{"eval_accuracy": 0.8}})
	_ = agg.Send(msgAddUpdate{DeviceID: "b", Metrics: map[string]float64{"eval_accuracy": 0.9}})
	waitSignals(t, sig, 2)
	_ = agg.Send(msgFinalizeGroup{})
	waitSignals(t, sig, 1)
	msgs := got()
	res := msgs[len(msgs)-1].(msgGroupResult)
	if res.Count != 2 || res.Weight != 0 {
		t.Fatalf("eval result: %+v", res)
	}
	if len(res.Metrics["eval_accuracy"]) != 2 {
		t.Fatalf("metrics: %+v", res.Metrics)
	}
}

func TestEvalTaskThroughServer(t *testing.T) {
	fed, _ := data.Blobs(data.BlobsConfig{Users: 8, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 13})
	store := storage.NewMem()
	evalPlan, err := plan.Generate(plan.Config{
		TaskID: "pop/eval", Population: "pop", Type: plan.TaskEval,
		Model:     testPlan(t, 4, false).Device.Model,
		StoreName: "clicks", TargetDevices: 4, MinReportFraction: 0.6,
		SelectionTimeout: 2 * time.Second, ReportTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{evalPlan}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 2, Seed: 14,
	})
	fl := newFleet(t, 8, fed, 3)
	fl.run(net, addr)
	waitDone(t, srv, 60*time.Second)
	fl.halt()

	// Eval rounds commit metrics, never checkpoints.
	if _, err := store.LatestCheckpoint(evalPlan.ID); err == nil {
		t.Fatal("eval task must not commit model checkpoints")
	}
	ms, err := store.Metrics(evalPlan.ID)
	if err != nil || len(ms) < 2 {
		t.Fatalf("eval metrics: %d, %v", len(ms), err)
	}
	if _, ok := ms[0].Stats["eval_accuracy"]; !ok {
		t.Fatalf("missing eval_accuracy: %+v", ms[0].Stats)
	}
}

func TestMultiTaskRoundRobin(t *testing.T) {
	// Sec. 7.1: "the FL service chooses among them using a dynamic strategy
	// that allows alternating between training and evaluation of a single
	// model". Deploy a train task and an eval task; both make progress.
	fed, _ := data.Blobs(data.BlobsConfig{Users: 10, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 15})
	store := storage.NewMem()
	train := testPlan(t, 4, false)
	eval, err := plan.Generate(plan.Config{
		TaskID: "pop/eval", Population: "pop", Type: plan.TaskEval,
		Model: train.Device.Model, StoreName: "clicks",
		TargetDevices: 4, MinReportFraction: 0.6,
		SelectionTimeout: 2 * time.Second, ReportTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{train, eval}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 4, Seed: 16,
	})
	fl := newFleet(t, 10, fed, 3)
	fl.run(net, addr)
	waitDone(t, srv, 90*time.Second)
	fl.halt()

	if _, err := store.LatestCheckpoint(train.ID); err != nil {
		t.Fatalf("train task never committed: %v", err)
	}
	evalMetrics, _ := store.Metrics(eval.ID)
	if len(evalMetrics) == 0 {
		t.Fatal("eval task never ran")
	}
}
