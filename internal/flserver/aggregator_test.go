package flserver

import (
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/actor"
	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/tensor"
)

// collectMaster spawns an actor standing in for the Master Aggregator,
// recording everything the Aggregator sends.
func collectMaster(s *actor.System) (actor.Ref, func() []actor.Message, chan struct{}) {
	var mu sync.Mutex
	var got []actor.Message
	sig := make(chan struct{}, 256)
	ref := s.Spawn("fake-master", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		mu.Lock()
		got = append(got, msg)
		mu.Unlock()
		sig <- struct{}{}
	}))
	return ref, func() []actor.Message {
		mu.Lock()
		defer mu.Unlock()
		return append([]actor.Message(nil), got...)
	}, sig
}

func waitSignals(t *testing.T, sig chan struct{}, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-sig:
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out waiting for %d/%d messages", i+1, n)
		}
	}
}

func TestAggregatorSimpleSum(t *testing.T) {
	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)
	agg := sys.Spawn("agg", NewAggregator(2, false, master))
	defer sys.Shutdown(master, agg)

	_ = agg.Send(msgAddUpdate{DeviceID: "a", Update: &checkpoint.Checkpoint{Params: tensor.Vector{2, 4}, Weight: 2}, Metrics: map[string]float64{"loss": 1}})
	_ = agg.Send(msgAddUpdate{DeviceID: "b", Update: &checkpoint.Checkpoint{Params: tensor.Vector{1, 1}, Weight: 1}, Metrics: map[string]float64{"loss": 3}})
	waitSignals(t, sig, 2)
	_ = agg.Send(msgFinalizeGroup{})
	waitSignals(t, sig, 1)

	msgs := got()
	res, ok := msgs[len(msgs)-1].(msgGroupResult)
	if !ok {
		t.Fatalf("last message %T", msgs[len(msgs)-1])
	}
	if res.Count != 2 || res.Weight != 3 {
		t.Fatalf("result: %+v", res)
	}
	if res.Sum[0] != 3 || res.Sum[1] != 5 {
		t.Fatalf("sum = %v", res.Sum)
	}
	if len(res.Metrics["loss"]) != 2 {
		t.Fatalf("metrics: %+v", res.Metrics)
	}
}

func TestAggregatorRejectsBadUpdates(t *testing.T) {
	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)
	agg := sys.Spawn("agg", NewAggregator(2, false, master))
	defer sys.Shutdown(master, agg)

	_ = agg.Send(msgAddUpdate{DeviceID: "a", Update: &checkpoint.Checkpoint{Params: tensor.Vector{1}, Weight: 1}})
	_ = agg.Send(msgAddUpdate{DeviceID: "b", Update: &checkpoint.Checkpoint{Params: tensor.Vector{1, 2}, Weight: 0}})
	waitSignals(t, sig, 2)
	for _, m := range got() {
		if r, ok := m.(msgAddResult); ok && r.OK {
			t.Fatalf("bad update accepted: %+v", r)
		}
	}
}

func TestAggregatorSecureMatchesSimple(t *testing.T) {
	sys := actor.NewSystem()
	updates := []*checkpoint.Checkpoint{
		{Params: tensor.Vector{1, -2, 0.5}, Weight: 3},
		{Params: tensor.Vector{0.25, 1, 1}, Weight: 1},
		{Params: tensor.Vector{-1, -1, -1}, Weight: 2},
	}
	run := func(secure bool) msgGroupResult {
		master, got, sig := collectMaster(sys)
		agg := sys.Spawn("agg", NewAggregator(3, secure, master))
		defer func() { master.Stop(); agg.Stop() }()
		for i, u := range updates {
			_ = agg.Send(msgAddUpdate{DeviceID: string(rune('a' + i)), Update: u})
		}
		waitSignals(t, sig, len(updates))
		_ = agg.Send(msgFinalizeGroup{})
		waitSignals(t, sig, 1)
		msgs := got()
		return msgs[len(msgs)-1].(msgGroupResult)
	}
	plainRes := run(false)
	secureRes := run(true)
	if plainRes.Count != secureRes.Count {
		t.Fatalf("counts differ: %d vs %d", plainRes.Count, secureRes.Count)
	}
	if math.Abs(plainRes.Weight-secureRes.Weight) > 1e-3 {
		t.Fatalf("weights differ: %v vs %v", plainRes.Weight, secureRes.Weight)
	}
	for i := range plainRes.Sum {
		if math.Abs(plainRes.Sum[i]-secureRes.Sum[i]) > 1e-3 {
			t.Fatalf("secure sum %v != plain %v", secureRes.Sum, plainRes.Sum)
		}
	}
}

func TestSecureSingletonRefusesDirectSum(t *testing.T) {
	// Regression: a secure group of 1 used to fall back to a direct sum,
	// handing the server the device's raw update. It must refuse instead,
	// while still reporting the metrics that never went through the secure
	// path.
	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)
	agg := sys.Spawn("agg", NewAggregator(2, true, master))
	defer sys.Shutdown(master, agg)

	_ = agg.Send(msgAddUpdate{DeviceID: "solo",
		Update:  &checkpoint.Checkpoint{Params: tensor.Vector{1, 2}, Weight: 1},
		Metrics: map[string]float64{"train_loss": 0.5}})
	waitSignals(t, sig, 1)
	_ = agg.Send(msgFinalizeGroup{})
	waitSignals(t, sig, 1)

	msgs := got()
	res, ok := msgs[len(msgs)-1].(msgGroupResult)
	if !ok {
		t.Fatalf("last message %T", msgs[len(msgs)-1])
	}
	if res.Err == "" {
		t.Fatal("singleton secure group must refuse to aggregate")
	}
	if res.Sum != nil || res.Count != 0 || res.Weight != 0 {
		t.Fatalf("raw update leaked into group result: %+v", res)
	}
	if len(res.Metrics["train_loss"]) != 1 {
		t.Fatalf("metrics must still propagate: %+v", res.Metrics)
	}
}

func TestSecAggFailureStillReportsMetrics(t *testing.T) {
	// Regression: a secagg failure used to produce an empty msgGroupResult,
	// silently dropping the group's metrics and hiding the error.
	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)
	agg := sys.Spawn("agg", NewAggregator(2, true, master))
	defer sys.Shutdown(master, agg)

	for i, loss := range []float64{0.5, 0.7} {
		_ = agg.Send(msgAddUpdate{DeviceID: string(rune('a' + i)),
			Update:  &checkpoint.Checkpoint{Params: tensor.Vector{1, 2}, Weight: 1},
			Metrics: map[string]float64{"train_loss": loss}})
	}
	waitSignals(t, sig, 2)
	// Inject the protocol outcome directly: the async finalization path
	// delivers failures as msgSecAggDone.
	_ = agg.Send(msgSecAggDone{Err: errors.New("secagg: injected failure")})
	waitSignals(t, sig, 1)

	msgs := got()
	res, ok := msgs[len(msgs)-1].(msgGroupResult)
	if !ok {
		t.Fatalf("last message %T", msgs[len(msgs)-1])
	}
	if !strings.Contains(res.Err, "injected failure") {
		t.Fatalf("error not surfaced: %+v", res)
	}
	if res.Sum != nil || res.Count != 0 {
		t.Fatalf("failed group must not report a sum: %+v", res)
	}
	if len(res.Metrics["train_loss"]) != 2 {
		t.Fatalf("metrics swallowed on secagg failure: %+v", res.Metrics)
	}
}

func TestMasterAggregatorSurfacesGroupErrors(t *testing.T) {
	// A failed group's metrics still reach storage, its error reaches the
	// Coordinator, and the round completes on the healthy groups.
	sys := actor.NewSystem()
	coord, got, sig := collectMaster(sys)
	store := storage.NewMem()
	p := testPlan(t, 4, true)
	m, err := p.Device.Model.Build()
	if err != nil {
		t.Fatal(err)
	}
	dim := m.NumParams()
	global := &checkpoint.Checkpoint{TaskName: p.ID, Params: make(tensor.Vector, dim)}
	ma := NewMasterAggregator(p, global, store, coord, nil, 0, nil)
	ma.state = "collecting"
	ma.aggs = make([]actor.Ref, 2)
	ref := sys.Spawn("ma", ma)
	defer sys.Shutdown(coord, ref)

	_ = ref.Send(msgGroupResult{Sum: make(tensor.Vector, dim), Weight: 4, Count: 4,
		Metrics: map[string][]float64{"train_loss": {1, 2, 3, 4}}})
	_ = ref.Send(msgGroupResult{Err: "secagg: injected failure",
		Metrics: map[string][]float64{"train_loss": {9, 9}}})
	waitSignals(t, sig, 1)

	msgs := got()
	done, ok := msgs[len(msgs)-1].(msgRoundComplete)
	if !ok {
		t.Fatalf("coordinator got %T: %+v", msgs[len(msgs)-1], msgs[len(msgs)-1])
	}
	if len(done.GroupErrors) != 1 || !strings.Contains(done.GroupErrors[0], "injected failure") {
		t.Fatalf("group errors not surfaced: %+v", done.GroupErrors)
	}
	if done.Completed != 4 {
		t.Fatalf("completed = %d, want 4 (the failed group's updates are lost)", done.Completed)
	}
	ms, err := store.Metrics(p.ID)
	if err != nil || len(ms) == 0 {
		t.Fatalf("metrics never materialized: %v", err)
	}
	if n := ms[0].Stats["train_loss"].Count; n != 6 {
		t.Fatalf("train_loss count = %d, want 6 (failed group's metrics must not be dropped)", n)
	}
}

func TestTwoSecureGroupsFinalizeConcurrently(t *testing.T) {
	// Two group Aggregators receive msgFinalizeGroup back to back; the
	// secagg runs execute off the actor goroutines, concurrently. Run under
	// -race (CI does) to check the parallel finalization pipeline.
	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)
	aggA := sys.Spawn("agg-a", NewAggregator(2, true, master))
	aggB := sys.Spawn("agg-b", NewAggregator(2, true, master))
	defer sys.Shutdown(master, aggA, aggB)

	for i := 0; i < 3; i++ {
		_ = aggA.Send(msgAddUpdate{DeviceID: string(rune('a' + i)),
			Update: &checkpoint.Checkpoint{Params: tensor.Vector{1, 2}, Weight: 1}})
		_ = aggB.Send(msgAddUpdate{DeviceID: string(rune('x' + i)),
			Update: &checkpoint.Checkpoint{Params: tensor.Vector{3, 4}, Weight: 2}})
	}
	waitSignals(t, sig, 6)
	_ = aggA.Send(msgFinalizeGroup{})
	_ = aggB.Send(msgFinalizeGroup{})
	waitSignals(t, sig, 2)

	results := 0
	for _, m := range got() {
		res, ok := m.(msgGroupResult)
		if !ok {
			continue
		}
		results++
		if res.Err != "" || res.Count != 3 || len(res.Sum) != 2 {
			t.Fatalf("group result: %+v", res)
		}
	}
	if results != 2 {
		t.Fatalf("got %d group results, want 2", results)
	}
}

func TestSecureRemainderFoldedIntoLastGroup(t *testing.T) {
	// Regression: 5 devices at secure group size 4 used to yield a trailing
	// group of 1, whose "group sum" is the raw individual update. The
	// remainder must fold into the full group, so all 5 updates land in one
	// secagg instance and the committed weight covers every device.
	fed, _ := data.Blobs(data.BlobsConfig{Users: 5, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 21})
	store := storage.NewMem()
	p := testPlan(t, 5, true) // secure, group size 4
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{p}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 1, Seed: 22,
	})
	fl := newFleet(t, 5, fed, 3)
	fl.run(net, addr)
	waitDone(t, srv, 90*time.Second)
	fl.halt()

	ckpt, err := store.LatestCheckpoint(p.ID)
	if err != nil {
		t.Fatal(err)
	}
	// Every device holds 20 examples, so a round that kept all 5 updates
	// commits total weight 100. A stranded singleton (refused by the
	// aggregator) would leave only 80.
	if math.Abs(ckpt.Weight-100) > 1e-3 {
		t.Fatalf("committed weight = %v, want 100 (remainder update lost?)", ckpt.Weight)
	}
	ms, err := store.Metrics(p.ID)
	if err != nil || len(ms) == 0 {
		t.Fatalf("metrics: %v", err)
	}
	if n := ms[0].Stats["train_loss"].Count; n != 5 {
		t.Fatalf("train_loss count = %d, want 5", n)
	}
}

func TestAggregatorEvalMetricsOnly(t *testing.T) {
	sys := actor.NewSystem()
	master, got, sig := collectMaster(sys)
	agg := sys.Spawn("agg", NewAggregator(2, false, master))
	defer sys.Shutdown(master, agg)

	_ = agg.Send(msgAddUpdate{DeviceID: "a", Metrics: map[string]float64{"eval_accuracy": 0.8}})
	_ = agg.Send(msgAddUpdate{DeviceID: "b", Metrics: map[string]float64{"eval_accuracy": 0.9}})
	waitSignals(t, sig, 2)
	_ = agg.Send(msgFinalizeGroup{})
	waitSignals(t, sig, 1)
	msgs := got()
	res := msgs[len(msgs)-1].(msgGroupResult)
	if res.Count != 2 || res.Weight != 0 {
		t.Fatalf("eval result: %+v", res)
	}
	if len(res.Metrics["eval_accuracy"]) != 2 {
		t.Fatalf("metrics: %+v", res.Metrics)
	}
}

func TestEvalTaskThroughServer(t *testing.T) {
	fed, _ := data.Blobs(data.BlobsConfig{Users: 8, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 13})
	store := storage.NewMem()
	evalPlan, err := plan.Generate(plan.Config{
		TaskID: "pop/eval", Population: "pop", Type: plan.TaskEval,
		Model:     testPlan(t, 4, false).Device.Model,
		StoreName: "clicks", TargetDevices: 4, MinReportFraction: 0.6,
		SelectionTimeout: 2 * time.Second, ReportTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{evalPlan}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 2, Seed: 14,
	})
	fl := newFleet(t, 8, fed, 3)
	fl.run(net, addr)
	waitDone(t, srv, 60*time.Second)
	fl.halt()

	// Eval rounds commit metrics, never checkpoints.
	if _, err := store.LatestCheckpoint(evalPlan.ID); err == nil {
		t.Fatal("eval task must not commit model checkpoints")
	}
	ms, err := store.Metrics(evalPlan.ID)
	if err != nil || len(ms) < 2 {
		t.Fatalf("eval metrics: %d, %v", len(ms), err)
	}
	if _, ok := ms[0].Stats["eval_accuracy"]; !ok {
		t.Fatalf("missing eval_accuracy: %+v", ms[0].Stats)
	}
}

func TestMultiTaskRoundRobin(t *testing.T) {
	// Sec. 7.1: "the FL service chooses among them using a dynamic strategy
	// that allows alternating between training and evaluation of a single
	// model". Deploy a train task and an eval task; both make progress.
	fed, _ := data.Blobs(data.BlobsConfig{Users: 10, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 15})
	store := storage.NewMem()
	train := testPlan(t, 4, false)
	eval, err := plan.Generate(plan.Config{
		TaskID: "pop/eval", Population: "pop", Type: plan.TaskEval,
		Model: train.Device.Model, StoreName: "clicks",
		TargetDevices: 4, MinReportFraction: 0.6,
		SelectionTimeout: 2 * time.Second, ReportTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{train, eval}, Store: store,
		Steering: pacing.New(time.Second), MaxRounds: 4, Seed: 16,
	})
	fl := newFleet(t, 10, fed, 3)
	fl.run(net, addr)
	waitDone(t, srv, 90*time.Second)
	fl.halt()

	if _, err := store.LatestCheckpoint(train.ID); err != nil {
		t.Fatalf("train task never committed: %v", err)
	}
	evalMetrics, _ := store.Metrics(eval.ID)
	if len(evalMetrics) == 0 {
		t.Fatal("eval task never ran")
	}
}
