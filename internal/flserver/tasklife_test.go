package flserver

import (
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/data"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/tasks"
)

// testEvalPlan builds an evaluation task for the shared "pop" population.
func testEvalPlan(t *testing.T, target int) *plan.Plan {
	t.Helper()
	p, err := plan.Generate(plan.Config{
		TaskID: "pop/eval", Population: "pop", Type: plan.TaskEval,
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName: "clicks", TargetDevices: target, MinReportFraction: 0.6,
		SelectionTimeout: 2 * time.Second, ReportTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// taskStatsByID fetches TaskStats keyed by task ID.
func taskStatsByID(t *testing.T, srv *Server) map[string]tasks.Stats {
	t.Helper()
	sts, err := srv.TaskStats()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]tasks.Stats, len(sts))
	for _, st := range sts {
		out[st.ID] = st
	}
	return out
}

// waitTaskRounds polls until the task has committed at least n rounds.
func waitTaskRounds(t *testing.T, srv *Server, id string, n int, timeout time.Duration) tasks.Stats {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, ok := taskStatsByID(t, srv)[id]
		if ok && st.RoundsCommitted >= n {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("task %s did not reach %d committed rounds: %+v", id, n, st)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// checkpointCountingStore records PutCheckpoint calls per task, so a test
// can prove eval rounds never write a checkpoint.
type checkpointCountingStore struct {
	storage.Store
	mu      sync.Mutex
	puts    map[string]int
	lastPut map[string]int64
}

func newCountingStore() *checkpointCountingStore {
	return &checkpointCountingStore{
		Store: storage.NewMem(), puts: map[string]int{}, lastPut: map[string]int64{},
	}
}

func (s *checkpointCountingStore) PutCheckpoint(c *checkpoint.Checkpoint) error {
	s.mu.Lock()
	s.puts[c.TaskName]++
	s.lastPut[c.TaskName] = c.Round
	s.mu.Unlock()
	return s.Store.PutCheckpoint(c)
}

func (s *checkpointCountingStore) counts() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.puts))
	for k, v := range s.puts {
		out[k] = v
	}
	return out
}

// TestSubmitEvalTaskOnLiveServer is the acceptance test for the task
// lifecycle API: a live Server accepts SubmitTask of an eval task while
// training rounds are in flight, interleaves it per its cadence within 2
// committed rounds, reports both via TaskStats, never advances the train
// checkpoint from an eval round, and RetireTask stops scheduling the eval
// task without aborting the round in progress.
func TestSubmitEvalTaskOnLiveServer(t *testing.T) {
	fed, err := data.Blobs(data.BlobsConfig{
		Users: 20, ExamplesPer: 30, Features: 4, Classes: 3, TestSize: 50, Seed: 51,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := newCountingStore()
	train := testPlan(t, 6, false)
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{train}, Store: store,
		Steering: pacing.New(500 * time.Millisecond), Seed: 61,
	})
	fl := newFleet(t, 20, fed, 3)
	fl.run(net, addr)
	defer fl.halt()

	// Let training get in flight, then deploy the eval task onto the live
	// population: evaluate the train task's checkpoint after every
	// committed train round.
	waitTaskRounds(t, srv, train.ID, 1, 30*time.Second)
	eval := testEvalPlan(t, 4)
	if err := srv.SubmitTask(eval, tasks.Policy{EvalEvery: 1, EvalOf: train.ID}); err != nil {
		t.Fatal(err)
	}

	// Resubmitting the same task ID onto the live server must fail.
	if err := srv.SubmitTask(testEvalPlan(t, 4), tasks.Policy{}); err == nil {
		t.Fatal("duplicate live SubmitTask must be rejected")
	}

	// The eval task must interleave within 2 committed rounds of submission
	// and keep pace with the cadence thereafter.
	evalSt := waitTaskRounds(t, srv, eval.ID, 2, 60*time.Second)
	trainSt := taskStatsByID(t, srv)[train.ID]
	if trainSt.RoundsCommitted < 2 {
		t.Fatalf("training stalled while eval ran: %+v", trainSt)
	}
	if evalSt.State != tasks.Active || evalSt.Type != plan.TaskEval {
		t.Fatalf("eval task stats = %+v", evalSt)
	}
	if evalSt.Devices == 0 || evalSt.LastRoundAt.IsZero() {
		t.Fatalf("eval task stats missing devices/last-round time: %+v", evalSt)
	}

	// Eval rounds serve the train checkpoint read-only: no checkpoint was
	// ever committed under the eval task's ID, and eval metrics were
	// materialized under the eval task.
	if n := store.counts()[eval.ID]; n != 0 {
		t.Fatalf("eval task committed %d checkpoints; eval must never advance model state", n)
	}
	if ms, err := store.Metrics(eval.ID); err != nil || len(ms) == 0 {
		t.Fatalf("eval rounds materialized no metrics: %d, %v", len(ms), err)
	}

	// Retire the eval task mid-flight: whatever round is in progress (train
	// or eval) completes — total committed rounds keep growing — and the
	// eval task never reschedules.
	if err := srv.RetireTask(eval.ID); err != nil {
		t.Fatal(err)
	}
	retiredAt := taskStatsByID(t, srv)[eval.ID]
	if retiredAt.State != tasks.Retired {
		t.Fatalf("retired task state = %v", retiredAt.State)
	}
	waitTaskRounds(t, srv, train.ID, trainSt.RoundsCommitted+2, 60*time.Second)
	finalEval := taskStatsByID(t, srv)[eval.ID]
	if finalEval.RoundsCommitted > retiredAt.RoundsCommitted+1 {
		t.Fatalf("retired eval task kept scheduling: %d -> %d committed rounds",
			retiredAt.RoundsCommitted, finalEval.RoundsCommitted)
	}
	if err := srv.ResumeTask(eval.ID); err == nil {
		t.Fatal("resume of a retired task must fail")
	}

	// The train lineage advanced only through train commits.
	ckpt, err := store.LatestCheckpoint(train.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt.TaskName != train.ID || ckpt.Round < 4 {
		t.Fatalf("train checkpoint = %+v", ckpt)
	}
}

func TestPauseAndResumeTaskOnLiveServer(t *testing.T) {
	fed, _ := data.Blobs(data.BlobsConfig{Users: 12, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 52})
	store := storage.NewMem()
	train := testPlan(t, 4, false)
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{train}, Store: store,
		Steering: pacing.New(500 * time.Millisecond), Seed: 62,
	})
	fl := newFleet(t, 12, fed, 3)
	fl.run(net, addr)
	defer fl.halt()

	waitTaskRounds(t, srv, train.ID, 1, 30*time.Second)
	if err := srv.PauseTask(train.ID); err != nil {
		t.Fatal(err)
	}
	// The in-flight round may still commit; after it settles, no further
	// rounds are scheduled.
	time.Sleep(300 * time.Millisecond)
	settled := taskStatsByID(t, srv)[train.ID]
	if settled.State != tasks.Paused {
		t.Fatalf("state after pause = %v", settled.State)
	}
	time.Sleep(700 * time.Millisecond)
	after := taskStatsByID(t, srv)[train.ID]
	if after.RoundsCommitted > settled.RoundsCommitted+1 {
		t.Fatalf("paused task kept committing: %d -> %d", settled.RoundsCommitted, after.RoundsCommitted)
	}

	// Resume schedules again without any external kick (the lifecycle op
	// itself ticks the Coordinator).
	if err := srv.ResumeTask(train.ID); err != nil {
		t.Fatal(err)
	}
	waitTaskRounds(t, srv, train.ID, after.RoundsCommitted+2, 60*time.Second)
}

func TestTaskSetSurvivesCoordinatorCrash(t *testing.T) {
	fed, _ := data.Blobs(data.BlobsConfig{Users: 12, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 53})
	store := storage.NewMem()
	train := testPlan(t, 4, false)
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{train}, Store: store,
		Steering: pacing.New(500 * time.Millisecond), Seed: 63,
	})
	fl := newFleet(t, 12, fed, 3)
	fl.run(net, addr)
	defer fl.halt()

	waitTaskRounds(t, srv, train.ID, 1, 30*time.Second)
	eval := testEvalPlan(t, 4)
	if err := srv.SubmitTask(eval, tasks.Policy{EvalEvery: 1, EvalOf: train.ID}); err != nil {
		t.Fatal(err)
	}
	before := taskStatsByID(t, srv)[train.ID]

	// Crash the Coordinator: the respawned one must drive the SAME task
	// set — the submitted eval task keeps running, stats keep accumulating.
	first := srv.Coordinator()
	_ = InjectCoordinatorCrash(first)
	for i := 0; i < 200 && srv.Coordinator() == first; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.Coordinator() == first {
		t.Fatal("coordinator was not respawned")
	}
	waitTaskRounds(t, srv, eval.ID, 1, 60*time.Second)
	after := taskStatsByID(t, srv)
	if after[train.ID].RoundsCommitted < before.RoundsCommitted {
		t.Fatalf("train stats regressed across respawn: %+v -> %+v", before, after[train.ID])
	}
	if len(after) != 2 {
		t.Fatalf("task registry lost tasks across respawn: %v", after)
	}
}

func TestEvalWithUncommittedBaseDoesNotStallPopulation(t *testing.T) {
	// An eval task whose base train task has never committed a checkpoint
	// fails to load its round state. That failure must not stall the
	// Coordinator: the tick is retried on a backoff, and because a failed
	// eval is not immediately due again, the healthy train task keeps
	// committing rounds.
	fed, _ := data.Blobs(data.BlobsConfig{Users: 12, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 56})
	store := storage.NewMem()
	trainA := testPlan(t, 4, false)
	srv, net, addr := runServer(t, Config{
		Population: "pop", Plans: []*plan.Plan{trainA}, Store: store,
		Steering: pacing.New(500 * time.Millisecond), Seed: 66,
	})
	fl := newFleet(t, 12, fed, 3)
	fl.run(net, addr)
	defer fl.halt()

	// A second train task gated off by MinDevices: it exists (so EvalOf
	// validates) but never schedules, so it never commits a checkpoint.
	gatedCfg := plan.Config{
		TaskID: "pop/gated", Population: "pop",
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName: "clicks", BatchSize: 10, Epochs: 1, LearningRate: 0.05,
		TargetDevices: 4, MinReportFraction: 0.6,
		SelectionTimeout: 2 * time.Second, ReportTimeout: 5 * time.Second,
	}
	gated, err := plan.Generate(gatedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SubmitTask(gated, tasks.Policy{MinDevices: 1 << 30}); err != nil {
		t.Fatal(err)
	}
	eval := testEvalPlan(t, 4)
	if err := srv.SubmitTask(eval, tasks.Policy{EvalEvery: 1, EvalOf: gated.ID}); err != nil {
		t.Fatal(err)
	}

	// Training must keep committing across repeated eval load failures.
	waitTaskRounds(t, srv, trainA.ID, 4, 60*time.Second)
	sts := taskStatsByID(t, srv)
	if sts[eval.ID].RoundsCommitted != 0 {
		t.Fatalf("eval with uncommitted base committed a round: %+v", sts[eval.ID])
	}
	if sts[eval.ID].RoundsFailed == 0 {
		t.Fatalf("eval load failures were not recorded: %+v", sts[eval.ID])
	}
}

func TestServerRejectsDuplicatePlanIDs(t *testing.T) {
	// Regression: duplicate plan IDs in Config.Plans used to be accepted
	// silently and collide in the Coordinator's per-task checkpoint map.
	p := testPlan(t, 4, false)
	q := testPlan(t, 8, false) // same ID, different config
	if _, err := New(Config{
		Population: "pop", Plans: []*plan.Plan{p, q}, Store: storage.NewMem(),
		Steering: pacing.New(time.Second),
	}); err == nil {
		t.Fatal("duplicate plan IDs must be rejected at construction")
	}
}

func TestServerWithNoPlansIdlesUntilSubmit(t *testing.T) {
	// Plans is now sugar: a server may start empty and receive its first
	// task at runtime.
	fed, _ := data.Blobs(data.BlobsConfig{Users: 12, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 54})
	srv, net, addr := runServer(t, Config{
		Population: "pop", Store: storage.NewMem(),
		Steering: pacing.New(500 * time.Millisecond), Seed: 64,
	})
	if sts, err := srv.TaskStats(); err != nil || len(sts) != 0 {
		t.Fatalf("empty server task stats = %v, %v", sts, err)
	}
	fl := newFleet(t, 12, fed, 3)
	fl.run(net, addr)
	defer fl.halt()

	train := testPlan(t, 4, false)
	if err := srv.SubmitTask(train, tasks.Policy{}); err != nil {
		t.Fatal(err)
	}
	waitTaskRounds(t, srv, train.ID, 2, 60*time.Second)
}

func TestTaskPolicyMinRuntimeVersionRejectsOldDevices(t *testing.T) {
	// A policy runtime floor must reject old devices outright — even though
	// plan versioning COULD lower the plan for them — so rounds complete
	// only when enough new-runtime devices exist.
	fed, _ := data.Blobs(data.BlobsConfig{Users: 12, ExamplesPer: 20, Features: 4, Classes: 3, TestSize: 10, Seed: 55})
	store := storage.NewMem()
	train := testPlan(t, 4, false)
	srv, net, addr := runServer(t, Config{
		Population: "pop", Store: store,
		Steering: pacing.New(500 * time.Millisecond), Seed: 65,
	})
	if err := srv.SubmitTask(train, tasks.Policy{MinRuntimeVersion: 3}); err != nil {
		t.Fatal(err)
	}
	// Version-1 devices only: every configured device is rejected, no
	// round can commit.
	oldFleet := newFleet(t, 12, fed, 1)
	oldFleet.run(net, addr)
	time.Sleep(1500 * time.Millisecond)
	oldFleet.halt()
	if st := taskStatsByID(t, srv)[train.ID]; st.RoundsCommitted != 0 {
		t.Fatalf("old-runtime fleet committed %d rounds under a version floor", st.RoundsCommitted)
	}

	// A version-3 fleet clears the floor.
	newRt := newFleet(t, 12, fed, 3)
	newRt.run(net, addr)
	defer newRt.halt()
	waitTaskRounds(t, srv, train.ID, 1, 60*time.Second)
}
