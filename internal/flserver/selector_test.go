package flserver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/actor"
	"repro/internal/pacing"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// driveSelector sends n device check-ins into a Selector with quota 1 and
// returns the ID of the device that survives the reservoir.
func driveSelector(t *testing.T, sys *actor.System, seed uint64, n int) string {
	t.Helper()
	sel := sys.Spawn(fmt.Sprintf("sel-%d", seed),
		NewSelector("pop", nil, pacing.New(time.Second), 100, seed, nil))
	defer sel.Stop()

	_ = sel.Send(msgSetQuota{Population: "pop", Accept: 1})
	for i := 0; i < n; i++ {
		client, server := transport.Pipe()
		// Drain the device side so rejected responses don't block.
		go func(c transport.Conn) {
			for {
				if _, err := c.Recv(); err != nil {
					return
				}
			}
		}(client)
		_ = sel.Send(msgCheckin{
			Req:  protocol.CheckinRequest{DeviceID: fmt.Sprintf("dev-%d", i), Population: "pop"},
			Conn: server,
		})
	}

	// Collect the survivor.
	var mu sync.Mutex
	var survivor string
	got := make(chan struct{}, 1)
	collector := sys.Spawn(fmt.Sprintf("collector-%d", seed), actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		if m, ok := msg.(msgDevices); ok && len(m.Devices) > 0 {
			mu.Lock()
			survivor = m.Devices[0].ID
			mu.Unlock()
			got <- struct{}{}
		}
	}))
	defer collector.Stop()
	_ = sel.Send(msgForwardDevices{N: 1, To: collector})
	select {
	case <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("no device forwarded")
	}
	mu.Lock()
	defer mu.Unlock()
	return survivor
}

func TestReservoirSamplingIsNotFCFS(t *testing.T) {
	// With quota 1 and 5 sequential check-ins, first-come-first-served
	// would always keep dev-0. Reservoir sampling keeps each with
	// probability 1/5; across 40 trials several distinct devices must win,
	// and dev-0 must not win them all.
	sys := actor.NewSystem()
	winners := map[string]int{}
	for trial := 0; trial < 40; trial++ {
		w := driveSelector(t, sys, uint64(trial)+1, 5)
		winners[w]++
	}
	if len(winners) < 3 {
		t.Fatalf("reservoir should spread selection, got winners %v", winners)
	}
	if winners["dev-0"] == 40 {
		t.Fatal("selection is first-come-first-served")
	}
	// dev-0 should win roughly 1/5 of the time, certainly not never and
	// not a majority.
	if winners["dev-0"] > 25 {
		t.Fatalf("dev-0 won %d/40, reservoir not uniform-ish: %v", winners["dev-0"], winners)
	}
}

func TestSelectorRejectsWrongPopulation(t *testing.T) {
	sys := actor.NewSystem()
	sel := sys.Spawn("sel", NewSelector("pop", nil, pacing.New(time.Second), 100, 1, nil))
	defer sel.Stop()
	_ = sel.Send(msgSetQuota{Population: "pop", Accept: 5})

	client, server := transport.Pipe()
	_ = sel.Send(msgCheckin{
		Req:  protocol.CheckinRequest{DeviceID: "d", Population: "other"},
		Conn: server,
	})
	msg, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp := msg.(protocol.CheckinResponse)
	if resp.Accepted {
		t.Fatal("wrong population must be rejected")
	}
	if resp.RetryAfter <= 0 {
		t.Fatal("rejection must carry a pace-steering hint")
	}
}

func TestSelectorQuotaForOtherPopulationIgnored(t *testing.T) {
	sys := actor.NewSystem()
	sel := sys.Spawn("sel", NewSelector("pop", nil, pacing.New(time.Second), 100, 1, nil))
	defer sel.Stop()
	_ = sel.Send(msgSetQuota{Population: "other", Accept: 5})

	client, server := transport.Pipe()
	_ = sel.Send(msgCheckin{
		Req:  protocol.CheckinRequest{DeviceID: "d", Population: "pop"},
		Conn: server,
	})
	msg, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.(protocol.CheckinResponse).Accepted {
		t.Fatal("quota for another population must not admit devices")
	}
}
