package flserver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/actor"
	"repro/internal/pacing"
	"repro/internal/protocol"
	"repro/internal/transport"
)

// spawnSelector spawns a Selector serving the named populations with the
// given parked-pool capacity.
func spawnSelector(sys *actor.System, name string, capacity int, seed uint64, pops ...string) actor.Ref {
	var sp []SelectorPopulation
	for _, p := range pops {
		sp = append(sp, SelectorPopulation{Name: p, Steering: pacing.New(time.Second), PopulationEstimate: 100})
	}
	return sys.Spawn(name, NewSelector(nil, pacing.New(time.Second), capacity, seed, nil, sp...))
}

// checkin sends one device check-in; the device side is drained so
// rejection responses never block, and the last response is recorded.
func checkin(sel actor.Ref, pop, id string, responses func(protocol.CheckinResponse)) {
	client, server := transport.Pipe()
	go func() {
		for {
			msg, err := client.Recv()
			if err != nil {
				return
			}
			if r, ok := msg.(protocol.CheckinResponse); ok && responses != nil {
				responses(r)
			}
		}
	}()
	_ = sel.Send(msgCheckin{
		Req:  protocol.CheckinRequest{DeviceID: id, Population: pop},
		Conn: server,
	})
}

// popStats queries one population's counters synchronously.
func popStats(t *testing.T, sel actor.Ref, pop string) SelectorStats {
	t.Helper()
	st, err := QuerySelectorStats(sel, pop)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// driveSelector sends n device check-ins into a Selector with quota 1 and
// returns the ID of the device that survives the reservoir.
func driveSelector(t *testing.T, sys *actor.System, seed uint64, n int) string {
	t.Helper()
	sel := spawnSelector(sys, fmt.Sprintf("sel-%d", seed), 0, seed, "pop")
	defer sel.Stop()

	_ = sel.Send(msgSetQuota{Population: "pop", Accept: 1})
	for i := 0; i < n; i++ {
		checkin(sel, "pop", fmt.Sprintf("dev-%d", i), nil)
	}

	// Collect the survivor.
	var mu sync.Mutex
	var survivor string
	got := make(chan struct{}, 1)
	collector := sys.Spawn(fmt.Sprintf("collector-%d", seed), actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		if m, ok := msg.(msgDevices); ok && len(m.Devices) > 0 {
			mu.Lock()
			survivor = m.Devices[0].ID
			mu.Unlock()
			got <- struct{}{}
		}
	}))
	defer collector.Stop()
	_ = sel.Send(msgForwardDevices{Population: "pop", N: 1, To: collector})
	select {
	case <-got:
	case <-time.After(10 * time.Second):
		t.Fatal("no device forwarded")
	}
	mu.Lock()
	defer mu.Unlock()
	return survivor
}

func TestReservoirSamplingIsNotFCFS(t *testing.T) {
	// With quota 1 and 5 sequential check-ins, first-come-first-served
	// would always keep dev-0. Reservoir sampling keeps each with
	// probability 1/5; across 40 trials several distinct devices must win,
	// and dev-0 must not win them all.
	sys := actor.NewSystem()
	winners := map[string]int{}
	for trial := 0; trial < 40; trial++ {
		w := driveSelector(t, sys, uint64(trial)+1, 5)
		winners[w]++
	}
	if len(winners) < 3 {
		t.Fatalf("reservoir should spread selection, got winners %v", winners)
	}
	if winners["dev-0"] == 40 {
		t.Fatal("selection is first-come-first-served")
	}
	// dev-0 should win roughly 1/5 of the time, certainly not never and
	// not a majority.
	if winners["dev-0"] > 25 {
		t.Fatalf("dev-0 won %d/40, reservoir not uniform-ish: %v", winners["dev-0"], winners)
	}
}

func TestSelectorRejectsUnknownPopulation(t *testing.T) {
	sys := actor.NewSystem()
	sel := spawnSelector(sys, "sel", 0, 1, "pop")
	defer sel.Stop()
	_ = sel.Send(msgSetQuota{Population: "pop", Accept: 5})

	client, server := transport.Pipe()
	_ = sel.Send(msgCheckin{
		Req:  protocol.CheckinRequest{DeviceID: "d", Population: "other"},
		Conn: server,
	})
	msg, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	resp := msg.(protocol.CheckinResponse)
	if resp.Accepted {
		t.Fatal("unknown population must be rejected")
	}
	if resp.RetryAfter <= 0 {
		t.Fatal("rejection must carry a pace-steering hint")
	}
	st, err := QuerySelectorStats(sel, "")
	if err != nil {
		t.Fatal(err)
	}
	if st.UnknownPopulation != 1 {
		t.Fatalf("unknown-population rejections = %d, want 1", st.UnknownPopulation)
	}
}

func TestSelectorQuotaForOtherPopulationIgnored(t *testing.T) {
	sys := actor.NewSystem()
	sel := spawnSelector(sys, "sel", 0, 1, "pop")
	defer sel.Stop()
	_ = sel.Send(msgSetQuota{Population: "other", Accept: 5})

	client, server := transport.Pipe()
	_ = sel.Send(msgCheckin{
		Req:  protocol.CheckinRequest{DeviceID: "d", Population: "pop"},
		Conn: server,
	})
	msg, err := client.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.(protocol.CheckinResponse).Accepted {
		t.Fatal("quota for another population must not admit devices")
	}
}

func TestSelectorFairSharesCapacityAcrossPopulations(t *testing.T) {
	// Capacity 4, pop-a demanding 6 vs pop-b demanding 2: shares are 3 and
	// 1. pop-a may fill the whole pool while alone, but a pop-b check-in
	// must displace a parked pop-a device rather than be starved; a second
	// pop-b check-in is over pop-b's share and bounces.
	sys := actor.NewSystem()
	sel := spawnSelector(sys, "sel", 4, 1, "pop-a", "pop-b")
	defer sel.Stop()
	_ = sel.Send(msgSetQuota{Population: "pop-a", Accept: 6})
	_ = sel.Send(msgSetQuota{Population: "pop-b", Accept: 2})

	for i := 0; i < 6; i++ {
		checkin(sel, "pop-a", fmt.Sprintf("a-%d", i), nil)
	}
	if st := popStats(t, sel, "pop-a"); st.Held != 4 {
		t.Fatalf("pop-a alone should fill the pool: held=%d", st.Held)
	}

	checkin(sel, "pop-b", "b-0", nil)
	if st := popStats(t, sel, "pop-b"); st.Held != 1 {
		t.Fatalf("pop-b below its share must displace into the pool: held=%d", st.Held)
	}
	if st := popStats(t, sel, "pop-a"); st.Held != 3 {
		t.Fatalf("pop-a must give back its over-share slot: held=%d", st.Held)
	}

	checkin(sel, "pop-b", "b-1", nil)
	if st := popStats(t, sel, "pop-b"); st.Held != 1 {
		t.Fatalf("pop-b at its share must not grow: held=%d", st.Held)
	}

	total, err := QuerySelectorStats(sel, "")
	if err != nil {
		t.Fatal(err)
	}
	if total.Held != 4 {
		t.Fatalf("capacity must bound the pool: held=%d", total.Held)
	}
}

func TestSelectorDeregisterSteersParkedDevices(t *testing.T) {
	sys := actor.NewSystem()
	sel := spawnSelector(sys, "sel", 0, 1, "pop")
	defer sel.Stop()
	_ = sel.Send(msgSetQuota{Population: "pop", Accept: 2})

	responses := make(chan protocol.CheckinResponse, 4)
	record := func(r protocol.CheckinResponse) { responses <- r }
	checkin(sel, "pop", "d-0", record)
	checkin(sel, "pop", "d-1", record)
	if st := popStats(t, sel, "pop"); st.Held != 2 {
		t.Fatalf("held=%d, want 2", st.Held)
	}

	_ = sel.Send(msgDeregisterPopulation{Name: "pop"})
	for i := 0; i < 2; i++ {
		select {
		case r := <-responses:
			if r.Accepted || r.RetryAfter <= 0 {
				t.Fatalf("parked device must get a steering-backed rejection: %+v", r)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("parked device never got a deregistration rejection")
		}
	}

	// Later check-ins are unknown-population rejections.
	checkin(sel, "pop", "d-2", nil)
	st, err := QuerySelectorStats(sel, "")
	if err != nil {
		t.Fatal(err)
	}
	if st.UnknownPopulation == 0 {
		t.Fatal("check-in after deregistration must count as unknown population")
	}
	// The deregistered population's history stays in the totals: counters
	// are monotonic across deregistrations.
	if st.Accepted != 2 {
		t.Fatalf("accepted history lost on deregistration: %+v", st)
	}
	if st.Rejected < 2 {
		t.Fatalf("deregistration rejections lost: %+v", st)
	}
}

// TestSelectorRateProbeSamplesAndResets: a rate probe returns the arrivals
// observed since the previous sample and resets the window; windows shorter
// than minRateWindow stay accumulating (no zero-rate noise from tick
// bursts). Time is injected, so the window arithmetic is deterministic.
func TestSelectorRateProbeSamplesAndResets(t *testing.T) {
	sys := actor.NewSystem()
	defer sys.Shutdown()
	now := time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	sel := sys.Spawn("sel-rate", NewSelector(nil, pacing.New(time.Second), 0, 1, clock,
		SelectorPopulation{Name: "pop", Steering: pacing.New(time.Second), PopulationEstimate: 100}))

	var got []msgCheckinRate
	sig := make(chan struct{}, 16)
	sink := sys.Spawn("rate-sink", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		if m, ok := msg.(msgCheckinRate); ok {
			mu.Lock()
			got = append(got, m)
			mu.Unlock()
			sig <- struct{}{}
		}
	}))

	for i := 0; i < 6; i++ {
		checkin(sel, "pop", fmt.Sprintf("d-%d", i), nil)
	}
	// Probe inside the minimum window: no sample may be produced.
	_ = sel.Send(msgRateProbe{Population: "pop", To: sink})
	advance(2 * time.Second)
	_ = sel.Send(msgRateProbe{Population: "pop", To: sink})
	select {
	case <-sig:
	case <-time.After(5 * time.Second):
		t.Fatal("no rate sample after a full window")
	}
	mu.Lock()
	first := got[0]
	mu.Unlock()
	if first.Count != 6 || first.Elapsed != 2*time.Second {
		t.Fatalf("first sample: %+v, want 6 arrivals over 2s", first)
	}
	// The window reset: two more arrivals over one more second.
	checkin(sel, "pop", "d-6", nil)
	checkin(sel, "pop", "d-7", nil)
	advance(time.Second)
	_ = sel.Send(msgRateProbe{Population: "pop", To: sink})
	select {
	case <-sig:
	case <-time.After(5 * time.Second):
		t.Fatal("no second sample")
	}
	mu.Lock()
	second := got[1]
	mu.Unlock()
	if second.Count != 2 || second.Elapsed != time.Second {
		t.Fatalf("second sample: %+v, want 2 arrivals over 1s", second)
	}
}

// TestSelectorReleaseParkedFreesConnections: a finished Coordinator's
// release must steer every parked device away (closing its connection)
// and zero the quota so no device is parked for a round that will never
// start.
func TestSelectorReleaseParkedFreesConnections(t *testing.T) {
	sys := actor.NewSystem()
	defer sys.Shutdown()
	sel := spawnSelector(sys, "sel-release", 0, 3, "pop")
	_ = sel.Send(msgSetQuota{Population: "pop", Accept: 4})

	var mu sync.Mutex
	released := 0
	for i := 0; i < 4; i++ {
		checkin(sel, "pop", fmt.Sprintf("d-%d", i), func(r protocol.CheckinResponse) {
			if !r.Accepted && r.RetryAfter > 0 {
				mu.Lock()
				released++
				mu.Unlock()
			}
		})
	}
	waitFor(t, func() bool { return popStats(t, sel, "pop").Held == 4 })
	_ = sel.Send(msgReleaseParked{Population: "pop"})
	waitFor(t, func() bool { return popStats(t, sel, "pop").Held == 0 })
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return released == 4 })
	// Quota is gone: the next check-in is rejected, not parked.
	checkin(sel, "pop", "late", nil)
	waitFor(t, func() bool { st := popStats(t, sel, "pop"); return st.Held == 0 && st.Rejected >= 5 })
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition never held")
}
