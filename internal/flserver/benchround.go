package flserver

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/actor"
	"repro/internal/checkpoint"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// BenchRoundConfig parametrizes one synthetic round for the
// round-throughput benchmark (DESIGN.md §4): K devices check in, receive
// the plan plus a dim-sized global checkpoint, and report a dim-sized
// update, exercising the full Configuration fan-out → wire → Reporting
// ingest pipeline without any on-device training.
type BenchRoundConfig struct {
	// Devices is K, the number of reports the round needs to commit.
	Devices int
	// Dim is the parameter count of the global checkpoint and of every
	// device update.
	Dim int
	// TCP moves every message over real loopback sockets instead of the
	// in-memory transport.
	TCP bool
	// MixedVersions makes half the fleet run runtime version 1, forcing the
	// server to derive and marshal a lowered plan alongside the current one.
	MixedVersions bool
	// Encoding is the uplink encoding devices report with (the
	// plan.Server.ReportEncoding knob); 0 means full float64, the PR 2
	// baseline. EncodingQuant8 ships 1 byte/param — the ~8× uplink lever.
	Encoding checkpoint.Encoding
	// Secure runs the round under Secure Aggregation (group size
	// min(Devices, 8)), exercising the pooled per-device input path.
	Secure bool
	// DistinctUpdates gives every device its own update (scaled by device
	// index) and weight instead of one shared payload, so the committed
	// checkpoint discriminates mis-aggregation; used by the
	// edge-accumulation equivalence tests.
	DistinctUpdates bool
	// Robust selects the task's robust aggregation policy (the
	// plan.Server.Robust knob). Per-update policies need a float64 or
	// QuantSafe Encoding, exactly as a real plan would.
	Robust plan.RobustPolicy
	// Attackers marks the first N devices as scaled-update adversaries:
	// their reported update is AttackScale × their honest payload. Implies
	// DistinctUpdates so defenses have per-device signal to act on.
	Attackers   int
	AttackScale float64
}

// BenchRoundStats describes one completed synthetic round.
type BenchRoundStats struct {
	Completed int
	Lost      int
	// PlanMarshals is how many times the Master Aggregator marshaled a plan
	// during Configuration (O(distinct versions), not O(devices)).
	PlanMarshals int64
	Elapsed      time.Duration
	// Committed is the checkpoint the round committed (nil if the plan's
	// apply step failed before storage); equivalence tests compare it
	// against a serial reference fold.
	Committed *checkpoint.Checkpoint
	// Clipped counts updates the norm-bound policy clipped at the edge;
	// RobustRejected carries the round's defense attributions
	// ("deviceID: reason").
	Clipped        int
	RobustRejected []string
}

// RunBenchRound drives one round through a real Master Aggregator and real
// transport connections: it injects K held devices (as a Selector would),
// and a goroutine per device answers the CheckinResponse with a
// pre-marshaled update. Used by BenchmarkRoundThroughput, `flbench -exp
// roundtput`, and the -race fan-out/ingest tests.
func RunBenchRound(cfg BenchRoundConfig) (BenchRoundStats, error) {
	var stats BenchRoundStats
	if cfg.Devices <= 0 || cfg.Dim <= 0 {
		return stats, fmt.Errorf("benchround: Devices and Dim must be positive")
	}
	enc := cfg.Encoding
	if enc == 0 {
		enc = checkpoint.EncodingFloat64
	}
	groupSize := 0
	if cfg.Secure {
		groupSize = 8
		if cfg.Devices < groupSize {
			groupSize = cfg.Devices
		}
		if groupSize < 2 {
			return stats, fmt.Errorf("benchround: secure round needs ≥ 2 devices")
		}
	}
	p, err := plan.Generate(plan.Config{
		TaskID:     "bench/roundtput",
		Population: "bench",
		Model:      nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName:  "bench", BatchSize: 10, Epochs: 1, LearningRate: 0.1,
		TargetDevices:     cfg.Devices,
		OverSelectFactor:  1.0,
		MinReportFraction: 0.8,
		SelectionTimeout:  time.Minute,
		ReportTimeout:     5 * time.Minute,
		ReportEncoding:    enc,
		SecureAggregation: cfg.Secure,
		SecAggGroupSize:   groupSize,
		Robust:            cfg.Robust,
		// Fused ops force version-1 devices onto a distinct lowered plan.
		UseFusedOps: cfg.MixedVersions,
	})
	if err != nil {
		return stats, err
	}
	// The Master Aggregator takes its dimension from the global checkpoint,
	// so the model spec above stays tiny while the wire payloads scale.
	global := &checkpoint.Checkpoint{TaskName: p.ID, Round: 0, Params: make(tensor.Vector, cfg.Dim)}
	upd := &checkpoint.Checkpoint{TaskName: p.ID, Round: 0, Weight: 1, Params: make(tensor.Vector, cfg.Dim)}
	for i := range upd.Params {
		upd.Params[i] = float64(i%7) * 0.25
	}
	// One shared payload by default (the throughput benchmark measures the
	// pipeline, not K marshals); distinct per-device payloads on request.
	updBytes := make([][]byte, cfg.Devices)
	shared, err := upd.Marshal(enc)
	if err != nil {
		return stats, err
	}
	distinct := cfg.DistinctUpdates || cfg.Attackers > 0
	for i := range updBytes {
		if !distinct {
			updBytes[i] = shared
			continue
		}
		u := &checkpoint.Checkpoint{TaskName: p.ID, Round: 0, Weight: float64(1 + i%3),
			Params: make(tensor.Vector, cfg.Dim)}
		for j := range u.Params {
			u.Params[j] = float64(i+1) * (float64(j%7)*0.25 - 0.5)
		}
		if i < cfg.Attackers {
			u.Params.Scale(cfg.AttackScale)
		}
		if updBytes[i], err = u.Marshal(enc); err != nil {
			return stats, err
		}
	}

	// Connect K device endpoints to K server-held connections.
	serverConns := make([]transport.Conn, cfg.Devices)
	clientConns := make([]transport.Conn, cfg.Devices)
	if cfg.TCP {
		// Both ends of every connection live in this process: 2K sockets
		// plus headroom for the listener, test harness, and runtime.
		if err := ensureFDLimit(2*uint64(cfg.Devices) + 64); err != nil {
			return stats, fmt.Errorf("benchround: %w", err)
		}
		l, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			return stats, err
		}
		defer l.Close()
		acceptErr := make(chan error, 1)
		go func() {
			for i := range serverConns {
				c, err := l.Accept()
				if err != nil {
					acceptErr <- err
					return
				}
				serverConns[i] = c
			}
			acceptErr <- nil
		}()
		for i := range clientConns {
			c, err := transport.DialTCP(l.Addr())
			if err != nil {
				return stats, err
			}
			clientConns[i] = c
		}
		if err := <-acceptErr; err != nil {
			return stats, err
		}
	} else {
		for i := range serverConns {
			serverConns[i], clientConns[i] = transport.Pipe()
		}
	}

	// One goroutine per device: await the CheckinResponse, report the
	// pre-marshaled update, read the ack.
	var devices sync.WaitGroup
	for i, conn := range clientConns {
		devices.Add(1)
		go func(i int, conn transport.Conn) {
			defer devices.Done()
			defer conn.Close()
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			resp, ok := msg.(protocol.CheckinResponse)
			if !ok || !resp.Accepted {
				return
			}
			_ = conn.Send(protocol.ReportRequest{
				DeviceID: fmt.Sprintf("bench-%d", i),
				TaskID:   resp.TaskID,
				Round:    resp.Round,
				Update:   updBytes[i],
				Metrics:  map[string]float64{"train_loss": 0.5},
			})
			_, _ = conn.Recv()
		}(i, conn)
	}

	sys := actor.NewSystem()
	defer sys.Shutdown()
	type roundOutcome struct {
		complete msgRoundComplete
		failed   msgRoundFailed
		ok       bool
	}
	done := make(chan roundOutcome, 1)
	coord := sys.Spawn("bench-coord", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		switch m := msg.(type) {
		case msgRoundComplete:
			done <- roundOutcome{complete: m, ok: true}
		case msgRoundFailed:
			done <- roundOutcome{failed: m}
		}
	}))
	ma := sys.Spawn("bench-ma", NewMasterAggregator(p, global, storage.NewMem(), coord, nil, 0, nil))

	held := make([]heldDevice, cfg.Devices)
	now := time.Now()
	for i := range held {
		version := 3
		if cfg.MixedVersions && i%2 == 1 {
			version = 1
		}
		held[i] = heldDevice{
			ID:             fmt.Sprintf("bench-%d", i),
			RuntimeVersion: version,
			Conn:           serverConns[i],
			AcceptedAt:     now,
		}
	}

	marshalsBefore := planMarshals.Load()
	start := time.Now()
	// Injecting exactly SelectTarget devices triggers Configuration, as a
	// Selector's msgDevices would; msgStartRound is skipped because no
	// selection phase is being measured.
	if err := ma.Send(msgDevices{Devices: held}); err != nil {
		return stats, err
	}
	select {
	case out := <-done:
		stats.Elapsed = time.Since(start)
		stats.PlanMarshals = planMarshals.Load() - marshalsBefore
		if !out.ok {
			return stats, fmt.Errorf("benchround: round failed: %s", out.failed.Reason)
		}
		stats.Completed = out.complete.Completed
		stats.Lost = out.complete.Lost
		stats.Committed = out.complete.Committed
		stats.Clipped = out.complete.Clipped
		stats.RobustRejected = out.complete.RobustRejected
	case <-time.After(5 * time.Minute):
		return stats, fmt.Errorf("benchround: round timed out")
	}
	devices.Wait()
	return stats, nil
}
