package flserver

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/actor"
	"repro/internal/checkpoint"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// BenchRoundConfig parametrizes one synthetic round for the
// round-throughput benchmark (DESIGN.md §4): K devices check in, receive
// the plan plus a dim-sized global checkpoint, and report a dim-sized
// update, exercising the full Configuration fan-out → wire → Reporting
// ingest pipeline without any on-device training.
type BenchRoundConfig struct {
	// Devices is K, the number of reports the round needs to commit.
	Devices int
	// Dim is the parameter count of the global checkpoint and of every
	// device update.
	Dim int
	// TCP moves every message over real loopback sockets instead of the
	// in-memory transport.
	TCP bool
	// MixedVersions makes half the fleet run runtime version 1, forcing the
	// server to derive and marshal a lowered plan alongside the current one.
	MixedVersions bool
}

// BenchRoundStats describes one completed synthetic round.
type BenchRoundStats struct {
	Completed int
	Lost      int
	// PlanMarshals is how many times the Master Aggregator marshaled a plan
	// during Configuration (O(distinct versions), not O(devices)).
	PlanMarshals int64
	Elapsed      time.Duration
}

// RunBenchRound drives one round through a real Master Aggregator and real
// transport connections: it injects K held devices (as a Selector would),
// and a goroutine per device answers the CheckinResponse with a
// pre-marshaled update. Used by BenchmarkRoundThroughput, `flbench -exp
// roundtput`, and the -race fan-out/ingest tests.
func RunBenchRound(cfg BenchRoundConfig) (BenchRoundStats, error) {
	var stats BenchRoundStats
	if cfg.Devices <= 0 || cfg.Dim <= 0 {
		return stats, fmt.Errorf("benchround: Devices and Dim must be positive")
	}
	p, err := plan.Generate(plan.Config{
		TaskID:     "bench/roundtput",
		Population: "bench",
		Model:      nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName:  "bench", BatchSize: 10, Epochs: 1, LearningRate: 0.1,
		TargetDevices:     cfg.Devices,
		OverSelectFactor:  1.0,
		MinReportFraction: 0.8,
		SelectionTimeout:  time.Minute,
		ReportTimeout:     5 * time.Minute,
		ReportEncoding:    checkpoint.EncodingFloat64,
		// Fused ops force version-1 devices onto a distinct lowered plan.
		UseFusedOps: cfg.MixedVersions,
	})
	if err != nil {
		return stats, err
	}
	// The Master Aggregator takes its dimension from the global checkpoint,
	// so the model spec above stays tiny while the wire payloads scale.
	global := &checkpoint.Checkpoint{TaskName: p.ID, Round: 0, Params: make(tensor.Vector, cfg.Dim)}
	upd := &checkpoint.Checkpoint{TaskName: p.ID, Round: 0, Weight: 1, Params: make(tensor.Vector, cfg.Dim)}
	for i := range upd.Params {
		upd.Params[i] = float64(i%7) * 0.25
	}
	updBytes, err := upd.Marshal(checkpoint.EncodingFloat64)
	if err != nil {
		return stats, err
	}

	// Connect K device endpoints to K server-held connections.
	serverConns := make([]transport.Conn, cfg.Devices)
	clientConns := make([]transport.Conn, cfg.Devices)
	if cfg.TCP {
		// Both ends of every connection live in this process: 2K sockets
		// plus headroom for the listener, test harness, and runtime.
		if err := ensureFDLimit(2*uint64(cfg.Devices) + 64); err != nil {
			return stats, fmt.Errorf("benchround: %w", err)
		}
		l, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			return stats, err
		}
		defer l.Close()
		acceptErr := make(chan error, 1)
		go func() {
			for i := range serverConns {
				c, err := l.Accept()
				if err != nil {
					acceptErr <- err
					return
				}
				serverConns[i] = c
			}
			acceptErr <- nil
		}()
		for i := range clientConns {
			c, err := transport.DialTCP(l.Addr())
			if err != nil {
				return stats, err
			}
			clientConns[i] = c
		}
		if err := <-acceptErr; err != nil {
			return stats, err
		}
	} else {
		for i := range serverConns {
			serverConns[i], clientConns[i] = transport.Pipe()
		}
	}

	// One goroutine per device: await the CheckinResponse, report the
	// pre-marshaled update, read the ack.
	var devices sync.WaitGroup
	for i, conn := range clientConns {
		devices.Add(1)
		go func(i int, conn transport.Conn) {
			defer devices.Done()
			defer conn.Close()
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			resp, ok := msg.(protocol.CheckinResponse)
			if !ok || !resp.Accepted {
				return
			}
			_ = conn.Send(protocol.ReportRequest{
				DeviceID: fmt.Sprintf("bench-%d", i),
				TaskID:   resp.TaskID,
				Round:    resp.Round,
				Update:   updBytes,
				Metrics:  map[string]float64{"train_loss": 0.5},
			})
			_, _ = conn.Recv()
		}(i, conn)
	}

	sys := actor.NewSystem()
	defer sys.Shutdown()
	type roundOutcome struct {
		complete msgRoundComplete
		failed   msgRoundFailed
		ok       bool
	}
	done := make(chan roundOutcome, 1)
	coord := sys.Spawn("bench-coord", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		switch m := msg.(type) {
		case msgRoundComplete:
			done <- roundOutcome{complete: m, ok: true}
		case msgRoundFailed:
			done <- roundOutcome{failed: m}
		}
	}))
	ma := sys.Spawn("bench-ma", NewMasterAggregator(p, global, storage.NewMem(), coord, nil, 0, nil))

	held := make([]heldDevice, cfg.Devices)
	now := time.Now()
	for i := range held {
		version := 3
		if cfg.MixedVersions && i%2 == 1 {
			version = 1
		}
		held[i] = heldDevice{
			ID:             fmt.Sprintf("bench-%d", i),
			RuntimeVersion: version,
			Conn:           serverConns[i],
			AcceptedAt:     now,
		}
	}

	marshalsBefore := planMarshals.Load()
	start := time.Now()
	// Injecting exactly SelectTarget devices triggers Configuration, as a
	// Selector's msgDevices would; msgStartRound is skipped because no
	// selection phase is being measured.
	if err := ma.Send(msgDevices{Devices: held}); err != nil {
		return stats, err
	}
	select {
	case out := <-done:
		stats.Elapsed = time.Since(start)
		stats.PlanMarshals = planMarshals.Load() - marshalsBefore
		if !out.ok {
			return stats, fmt.Errorf("benchround: round failed: %s", out.failed.Reason)
		}
		stats.Completed = out.complete.Completed
		stats.Lost = out.complete.Lost
	case <-time.After(5 * time.Minute):
		return stats, fmt.Errorf("benchround: round timed out")
	}
	devices.Wait()
	return stats, nil
}
