package flserver

import (
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/device"
	"repro/internal/nn"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/transport"
)

// TestMultiTenantDevice exercises Sec. 3 Multi-Tenancy: one device hosts
// two FL populations (two apps with separate example stores) behind the
// on-device scheduler, which never runs two training sessions at once. Both
// populations' servers make progress using the shared fleet.
func TestMultiTenantDevice(t *testing.T) {
	makePlan := func(pop string, features int) *plan.Plan {
		p, err := plan.Generate(plan.Config{
			TaskID: pop + "/train", Population: pop,
			Model:     nn.Spec{Kind: nn.KindLogistic, Features: features, Classes: 2, Seed: 1},
			StoreName: pop + "-store", BatchSize: 5, Epochs: 1, LearningRate: 0.1,
			TargetDevices: 3, MinReportFraction: 0.7,
			SelectionTimeout: 2 * time.Second, ReportTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	fedA, _ := data.Blobs(data.BlobsConfig{Users: 8, ExamplesPer: 20, Features: 3, Classes: 2, TestSize: 10, Seed: 41})
	fedB, _ := data.Blobs(data.BlobsConfig{Users: 8, ExamplesPer: 20, Features: 5, Classes: 2, TestSize: 10, Seed: 42})

	net := transport.NewMemNetwork()
	storeA, storeB := storage.NewMem(), storage.NewMem()
	planA, planB := makePlan("pop-a", 3), makePlan("pop-b", 5)

	startServer := func(pop string, p *plan.Plan, st storage.Store) *Server {
		srv, err := New(Config{
			Population: pop, Plans: []*plan.Plan{p}, Store: st,
			Steering: pacing.New(time.Second), MaxRounds: 2, Seed: 43,
		})
		if err != nil {
			t.Fatal(err)
		}
		l, err := net.Listen(pop)
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(l)
		t.Cleanup(func() { l.Close(); srv.Close() })
		return srv
	}
	srvA := startServer("pop-a", planA, storeA)
	srvB := startServer("pop-b", planB, storeB)

	// 8 devices, each registered with BOTH populations via one runtime and
	// one scheduler.
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		i := i
		rt := device.NewRuntime(deviceName(i), 3, nil, uint64(i)+7)
		sa, _ := device.NewMemStore("pop-a-store", 100, 0)
		sb, _ := device.NewMemStore("pop-b-store", 100, 0)
		now := time.Now()
		for _, ex := range fedA.Users[i] {
			sa.Add(ex, now)
		}
		for _, ex := range fedB.Users[i] {
			sb.Add(ex, now)
		}
		if err := rt.RegisterStore(sa); err != nil {
			t.Fatal(err)
		}
		if err := rt.RegisterStore(sb); err != nil {
			t.Fatal(err)
		}
		sched := device.NewScheduler()
		clientA := &DeviceClient{ID: deviceName(i), Population: "pop-a", Runtime: rt}
		clientB := &DeviceClient{ID: deviceName(i), Population: "pop-b", Runtime: rt}

		go func() {
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The periodic job wakes up and enqueues one session per
				// configured population; the scheduler runs them strictly
				// sequentially.
				_ = sched.Enqueue(&device.Job{Population: "pop-a", Run: func() {
					if conn, err := net.Dial("pop-a"); err == nil {
						_, _ = clientA.RunOnce(conn)
					}
				}})
				_ = sched.Enqueue(&device.Job{Population: "pop-b", Run: func() {
					if conn, err := net.Dial("pop-b"); err == nil {
						_, _ = clientB.RunOnce(conn)
					}
				}})
				if _, err := sched.DrainAll(); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}()
	}

	waitDone(t, srvA, 60*time.Second)
	waitDone(t, srvB, 60*time.Second)
	close(stop)

	if _, err := storeA.LatestCheckpoint(planA.ID); err != nil {
		t.Fatalf("pop-a never committed: %v", err)
	}
	if _, err := storeB.LatestCheckpoint(planB.ID); err != nil {
		t.Fatalf("pop-b never committed: %v", err)
	}
}

func deviceName(i int) string {
	return "mt-dev-" + string(rune('a'+i))
}
