package flserver

import (
	"math"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/fedavg"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// clippedSerialReference recomputes a norm-bounded bench round the slow
// way: decode every device update through the wire encoding, clip it with
// fedavg.ClipUpdate (the materialize-then-scale arithmetic the streaming
// edge path must reproduce), and fold serially.
func clippedSerialReference(t *testing.T, devices, dim, attackers int, scale, clip float64, enc checkpoint.Encoding) (*fedavg.Accumulator, int) {
	t.Helper()
	acc := fedavg.NewAccumulator(dim)
	clipped := 0
	for i := 0; i < devices; i++ {
		u := &checkpoint.Checkpoint{TaskName: "bench/roundtput", Weight: float64(1 + i%3),
			Params: make(tensor.Vector, dim)}
		for j := range u.Params {
			u.Params[j] = float64(i+1) * (float64(j%7)*0.25 - 0.5)
		}
		if i < attackers {
			u.Params.Scale(scale)
		}
		b, err := u.Marshal(enc)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := checkpoint.Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		upd := &fedavg.Update{Delta: decoded.Params, Weight: decoded.Weight}
		if fedavg.ClipUpdate(upd, clip) {
			clipped++
		}
		if err := acc.Add(upd); err != nil {
			t.Fatal(err)
		}
	}
	return acc, clipped
}

// TestEdgeClippingMatchesSerial: the streaming norm-bound path (one
// ParamNorm pass + one scaled accumulate pass per report, folded
// concurrently into stripes) must commit the same checkpoint as clipping
// each materialized update serially, over both transports and both uplink
// encodings. CI runs this under -race, so the concurrent clipped folds are
// also checked for unsynchronized access.
func TestEdgeClippingMatchesSerial(t *testing.T) {
	const devices, dim, attackers = 48, 256, 9
	const attackScale, clip = -40.0, 1.5
	for _, tc := range []struct {
		name string
		tcp  bool
		enc  checkpoint.Encoding
	}{
		{"mem/float64", false, checkpoint.EncodingFloat64},
		{"mem/quant8", false, checkpoint.EncodingQuant8},
		{"tcp/float64", true, checkpoint.EncodingFloat64},
		{"tcp/quant8", true, checkpoint.EncodingQuant8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			st, err := RunBenchRound(BenchRoundConfig{
				Devices: devices, Dim: dim, TCP: tc.tcp, Encoding: tc.enc,
				Robust:    plan.RobustPolicy{Kind: plan.RobustNormBound, ClipNorm: clip, QuantSafe: true},
				Attackers: attackers, AttackScale: attackScale,
			})
			if err != nil {
				t.Fatal(err)
			}
			if st.Completed != devices || st.Committed == nil {
				t.Fatalf("completed %d/%d, committed %v", st.Completed, devices, st.Committed)
			}
			ref, refClipped := clippedSerialReference(t, devices, dim, attackers, attackScale, clip, tc.enc)
			if refClipped < attackers {
				t.Fatalf("test setup: only %d/%d attackers exceed the clip bound", refClipped, attackers)
			}
			if st.Clipped != refClipped {
				t.Fatalf("Clipped = %d, serial reference clipped %d", st.Clipped, refClipped)
			}
			if math.Abs(st.Committed.Weight-ref.Weight()) > 1e-9 {
				t.Fatalf("committed weight %v, want %v", st.Committed.Weight, ref.Weight())
			}
			avg, err := ref.Average()
			if err != nil {
				t.Fatal(err)
			}
			for i := range avg {
				if math.Abs(st.Committed.Params[i]-avg[i]) > 1e-9*(1+math.Abs(avg[i])) {
					t.Fatalf("param %d: committed %v, serial %v", i, st.Committed.Params[i], avg[i])
				}
			}
		})
	}
}

// TestNormBoundLeavesHonestRoundUntouched: with every update inside the
// clip bound, the norm-bounded round must commit exactly what the
// undefended round commits, with zero clips.
func TestNormBoundLeavesHonestRoundUntouched(t *testing.T) {
	const devices, dim = 16, 64
	base, err := RunBenchRound(BenchRoundConfig{
		Devices: devices, Dim: dim, DistinctUpdates: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Honest per-example-average norms peak well below this bound.
	bounded, err := RunBenchRound(BenchRoundConfig{
		Devices: devices, Dim: dim, DistinctUpdates: true,
		Robust: plan.RobustPolicy{Kind: plan.RobustNormBound, ClipNorm: 1e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Clipped != 0 {
		t.Fatalf("Clipped = %d, want 0", bounded.Clipped)
	}
	for i := range base.Committed.Params {
		if base.Committed.Params[i] != bounded.Committed.Params[i] {
			t.Fatalf("param %d diverged: %v vs %v", i, base.Committed.Params[i], bounded.Committed.Params[i])
		}
	}
}

// retentionReference folds the bench round's per-device payloads through
// the sorted-sample order statistic (per coordinate, on per-example
// averages) — the reference a retention-policy round must commit.
func retentionReference(t *testing.T, devices, dim, attackers int, scale float64, kind plan.RobustKind, trim float64) tensor.Vector {
	t.Helper()
	vals := make([]float64, devices)
	out := make(tensor.Vector, dim)
	for j := 0; j < dim; j++ {
		for i := 0; i < devices; i++ {
			v := float64(i+1) * (float64(j%7)*0.25 - 0.5)
			if i < attackers {
				v *= scale
			}
			vals[i] = v / float64(1+i%3) // per-example average Delta[j]/Weight
		}
		ref := make([]float64, devices)
		copy(ref, vals)
		insertionSort(ref)
		if kind == plan.RobustMedian {
			if devices%2 == 1 {
				out[j] = ref[devices/2]
			} else {
				out[j] = (ref[devices/2-1] + ref[devices/2]) / 2
			}
			continue
		}
		cut := int(trim * float64(devices))
		var s float64
		for _, v := range ref[cut : devices-cut] {
			s += v
		}
		out[j] = s / float64(devices-2*cut)
	}
	return out
}

func insertionSort(v []float64) {
	for i := 1; i < len(v); i++ {
		for k := i; k > 0 && v[k] < v[k-1]; k-- {
			v[k], v[k-1] = v[k-1], v[k]
		}
	}
}

// TestRetentionRoundCommitsRobustMeanAndAttributes: an end-to-end
// trimmed-mean round over mem and tcp with 2/12 devices reporting updates
// scaled by 1e6. The committed checkpoint must equal the sorted-sample
// reference (immune to the attackers), and msgRoundComplete must attribute
// the attackers by name in RobustRejected.
func TestRetentionRoundCommitsRobustMeanAndAttributes(t *testing.T) {
	const devices, dim, attackers = 12, 32, 2
	for _, tcp := range []bool{false, true} {
		name := "mem"
		if tcp {
			name = "tcp"
		}
		t.Run(name, func(t *testing.T) {
			st, err := RunBenchRound(BenchRoundConfig{
				Devices: devices, Dim: dim, TCP: tcp,
				Robust:    plan.RobustPolicy{Kind: plan.RobustTrimmedMean, TrimFraction: 0.25},
				Attackers: attackers, AttackScale: 1e6,
			})
			if err != nil {
				t.Fatal(err)
			}
			if st.Completed != devices || st.Committed == nil {
				t.Fatalf("completed %d/%d, committed %v", st.Completed, devices, st.Committed)
			}
			want := retentionReference(t, devices, dim, attackers, 1e6, plan.RobustTrimmedMean, 0.25)
			for j := range want {
				if math.Abs(st.Committed.Params[j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
					t.Fatalf("param %d: committed %v, reference %v", j, st.Committed.Params[j], want[j])
				}
			}
			// bench-0 and bench-1 dominate the trimmed tails in every
			// coordinate and must be named in the round's attribution.
			attributed := map[string]bool{}
			for _, r := range st.RobustRejected {
				dev, _, ok := strings.Cut(r, ":")
				if !ok {
					t.Fatalf("attribution %q not in deviceID: reason form", r)
				}
				attributed[dev] = true
			}
			if !attributed["bench-0"] || !attributed["bench-1"] {
				t.Fatalf("attackers not attributed: %v", st.RobustRejected)
			}
		})
	}
}

// TestMedianRoundCommitsCoordinateMedian: the median retention policy
// end-to-end — committed params equal the per-coordinate median of the
// per-example-average updates.
func TestMedianRoundCommitsCoordinateMedian(t *testing.T) {
	const devices, dim = 9, 16
	st, err := RunBenchRound(BenchRoundConfig{
		Devices: devices, Dim: dim,
		Robust:    plan.RobustPolicy{Kind: plan.RobustMedian},
		Attackers: 1, AttackScale: -1e8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != devices || st.Committed == nil {
		t.Fatalf("completed %d/%d", st.Completed, devices)
	}
	want := retentionReference(t, devices, dim, 1, -1e8, plan.RobustMedian, 0)
	for j := range want {
		if math.Abs(st.Committed.Params[j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
			t.Fatalf("param %d: committed %v, median reference %v", j, st.Committed.Params[j], want[j])
		}
	}
}

// TestCosineRoundRejectsAndCommitsHonestMean: the cosine-outlier policy
// drops the inverted attackers entirely — the committed checkpoint equals
// the plain weighted mean of the honest cohort, and the attackers are
// attributed with their cosine distance.
func TestCosineRoundRejectsAndCommitsHonestMean(t *testing.T) {
	const devices, dim, attackers = 10, 24, 2
	st, err := RunBenchRound(BenchRoundConfig{
		Devices: devices, Dim: dim,
		Robust:    plan.RobustPolicy{Kind: plan.RobustCosineOutlier, MaxCosineDistance: 0.5},
		Attackers: attackers, AttackScale: -3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rejected updates do not count toward the aggregate (mirroring how
	// secagg-blamed devices are excluded), so Completed is the honest count.
	if st.Completed != devices-attackers || st.Committed == nil {
		t.Fatalf("completed %d, want %d honest", st.Completed, devices-attackers)
	}
	// Honest-cohort weighted mean: Sum Δ_i / Sum w_i over devices ≥ attackers.
	acc := fedavg.NewAccumulator(dim)
	for i := attackers; i < devices; i++ {
		u := make(tensor.Vector, dim)
		w := float64(1 + i%3)
		for j := range u {
			u[j] = float64(i+1) * (float64(j%7)*0.25 - 0.5)
		}
		if err := acc.Add(&fedavg.Update{Delta: u, Weight: w}); err != nil {
			t.Fatal(err)
		}
	}
	avg, err := acc.Average()
	if err != nil {
		t.Fatal(err)
	}
	for j := range avg {
		if math.Abs(st.Committed.Params[j]-avg[j]) > 1e-9*(1+math.Abs(avg[j])) {
			t.Fatalf("param %d: committed %v, honest mean %v", j, st.Committed.Params[j], avg[j])
		}
	}
	attributed := map[string]bool{}
	for _, r := range st.RobustRejected {
		dev, reason, _ := strings.Cut(r, ": ")
		attributed[dev] = true
		if !strings.Contains(reason, "cosine distance") {
			t.Fatalf("unexpected rejection reason %q", r)
		}
	}
	if !attributed["bench-0"] || !attributed["bench-1"] || len(attributed) != attackers {
		t.Fatalf("cosine attribution wrong: %v", st.RobustRejected)
	}
}
