package flserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/actor"
	"repro/internal/attest"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Config configures a Server for one FL population.
type Config struct {
	Population string
	Plans      []*plan.Plan
	Store      storage.Store
	// Verifier enables attestation checks when non-nil.
	Verifier *attest.Verifier
	Steering *pacing.Steering
	// PopulationEstimate feeds pace steering.
	PopulationEstimate int
	NumSelectors       int
	// SelectorCapacity bounds the parked devices per Selector (0 =
	// unbounded). Multi-population deployments (internal/fleet) set it to
	// get demand-weighted fair sharing of the parked pool.
	SelectorCapacity int
	// MaxRounds stops after that many committed rounds (0 = forever).
	MaxRounds int
	Seed      uint64
	// Now overrides the wall clock (tests).
	Now func() time.Time
}

// Server wires the actor architecture to a transport listener for a single
// FL population: it spawns the Selector layer and the Coordinator,
// dispatches device check-ins to Selectors, and supervises the Coordinator
// via the lock service (a dead Coordinator is detected and respawned
// exactly once, Sec. 4.4). The multi-population equivalent — one shared
// Selector layer serving many populations — is internal/fleet, built from
// the same actors.
type Server struct {
	cfg    Config
	sys    *actor.System
	lock   *actor.LockService
	router *CheckinRouter

	selectors []*actor.Ref
	mu        sync.Mutex
	coord     *actor.Ref
	done      chan struct{}

	closed atomic.Bool
}

// New builds the server and spawns its actors.
func New(cfg Config) (*Server, error) {
	if cfg.Population == "" || len(cfg.Plans) == 0 || cfg.Store == nil {
		return nil, fmt.Errorf("flserver: Population, Plans and Store are required")
	}
	for _, p := range cfg.Plans {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if p.Population != cfg.Population {
			return nil, fmt.Errorf("flserver: plan %q is for population %q, server is %q", p.ID, p.Population, cfg.Population)
		}
	}
	if cfg.NumSelectors <= 0 {
		cfg.NumSelectors = 2
	}
	if cfg.Steering == nil {
		cfg.Steering = pacing.New(time.Minute)
	}
	if cfg.PopulationEstimate <= 0 {
		cfg.PopulationEstimate = 1000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}

	s := &Server{
		cfg:  cfg,
		sys:  actor.NewSystem(),
		lock: actor.NewLockService(),
		done: make(chan struct{}),
	}
	pop := SelectorPopulation{
		Name:               cfg.Population,
		Steering:           cfg.Steering,
		PopulationEstimate: cfg.PopulationEstimate,
	}
	for i := 0; i < cfg.NumSelectors; i++ {
		sel := s.sys.Spawn(fmt.Sprintf("selector-%d", i),
			NewSelector(cfg.Verifier, cfg.Steering, cfg.SelectorCapacity, cfg.Seed+uint64(i), cfg.Now, pop))
		s.selectors = append(s.selectors, sel)
	}
	s.router = NewCheckinRouter(s.selectors, NewHinter(cfg.Steering, cfg.PopulationEstimate, cfg.Seed+7919, cfg.Now))
	s.spawnCoordinator()
	return s, nil
}

// spawnCoordinator starts a Coordinator and a watcher that respawns it on
// failure. The lock service guarantees a single live owner even if several
// watchers race.
func (s *Server) spawnCoordinator() {
	s.mu.Lock()
	defer s.mu.Unlock()
	coord := s.sys.Spawn("coordinator/"+s.cfg.Population,
		NewCoordinator(s.cfg.Population, s.lock, s.cfg.Store, s.cfg.Plans, s.selectors, s.cfg.MaxRounds, s.done, s.cfg.Now))
	s.coord = coord

	// The Selector layer's supervision duty (Sec. 4.4: "if the Coordinator
	// dies, the Selector layer will detect this and respawn it"). Watch
	// before the first tick so even an instant crash is supervised.
	watcher := s.sys.Spawn("coordinator-watcher", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		if t, ok := msg.(actor.Terminated); ok && t.Ref == coord {
			if !s.closed.Load() && t.Failure {
				s.spawnCoordinator()
			}
			ctx.Stop()
		}
	}))
	s.sys.Watch(coord, watcher)
	_ = StartCoordinator(coord)
}

// Coordinator returns the current coordinator ref (tests).
func (s *Server) Coordinator() *actor.Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coord
}

// Done is closed when MaxRounds rounds have committed.
func (s *Server) Done() <-chan struct{} { return s.done }

// Stats queries coordinator progress. The error is non-nil when the
// Coordinator is dead or unresponsive, so callers cannot mistake a dead
// coordinator for zero progress.
func (s *Server) Stats() (CoordinatorStats, error) {
	return QueryCoordinatorStats(s.Coordinator())
}

// SelectorStats sums stats across the selector layer. The error is non-nil
// when any Selector is dead or unresponsive.
func (s *Server) SelectorStats() (SelectorStats, error) {
	var total SelectorStats
	for _, sel := range s.selectors {
		st, err := QuerySelectorStats(sel, "")
		if err != nil {
			return SelectorStats{}, err
		}
		total.Add(st)
	}
	return total, nil
}

// Serve accepts device connections from l until l closes, routing each
// connection's first message through the shared CheckinRouter accept path.
func (s *Server) Serve(l transport.Listener) { s.router.Serve(l) }

// Close stops the actor system.
func (s *Server) Close() {
	s.closed.Store(true)
	refs := append([]*actor.Ref{}, s.selectors...)
	refs = append(refs, s.Coordinator())
	s.sys.Shutdown(refs...)
	s.router.Wait()
}
