package flserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/actor"
	"repro/internal/attest"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/protocol"
	"repro/internal/storage"
	"repro/internal/transport"
)

// Config configures a Server for one FL population.
type Config struct {
	Population string
	Plans      []*plan.Plan
	Store      storage.Store
	// Verifier enables attestation checks when non-nil.
	Verifier *attest.Verifier
	Steering *pacing.Steering
	// PopulationEstimate feeds pace steering.
	PopulationEstimate int
	NumSelectors       int
	// MaxRounds stops after that many committed rounds (0 = forever).
	MaxRounds int
	Seed      uint64
	// Now overrides the wall clock (tests).
	Now func() time.Time
}

// Server wires the actor architecture to a transport listener: it spawns
// the Selector layer and the Coordinator, dispatches device check-ins to
// Selectors, and supervises the Coordinator via the lock service (a dead
// Coordinator is detected and respawned exactly once, Sec. 4.4).
type Server struct {
	cfg  Config
	sys  *actor.System
	lock *actor.LockService

	selectors []*actor.Ref
	mu        sync.Mutex
	coord     *actor.Ref
	done      chan struct{}

	nextSel  uint64
	closed   atomic.Bool
	handlers sync.WaitGroup
}

// New builds the server and spawns its actors.
func New(cfg Config) (*Server, error) {
	if cfg.Population == "" || len(cfg.Plans) == 0 || cfg.Store == nil {
		return nil, fmt.Errorf("flserver: Population, Plans and Store are required")
	}
	for _, p := range cfg.Plans {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if p.Population != cfg.Population {
			return nil, fmt.Errorf("flserver: plan %q is for population %q, server is %q", p.ID, p.Population, cfg.Population)
		}
	}
	if cfg.NumSelectors <= 0 {
		cfg.NumSelectors = 2
	}
	if cfg.Steering == nil {
		cfg.Steering = pacing.New(time.Minute)
	}
	if cfg.PopulationEstimate <= 0 {
		cfg.PopulationEstimate = 1000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}

	s := &Server{
		cfg:  cfg,
		sys:  actor.NewSystem(),
		lock: actor.NewLockService(),
		done: make(chan struct{}),
	}
	for i := 0; i < cfg.NumSelectors; i++ {
		sel := s.sys.Spawn(fmt.Sprintf("selector-%d", i),
			NewSelector(cfg.Population, cfg.Verifier, cfg.Steering, cfg.PopulationEstimate, cfg.Seed+uint64(i), cfg.Now))
		s.selectors = append(s.selectors, sel)
	}
	s.spawnCoordinator()
	return s, nil
}

// spawnCoordinator starts a Coordinator and a watcher that respawns it on
// failure. The lock service guarantees a single live owner even if several
// watchers race.
func (s *Server) spawnCoordinator() {
	s.mu.Lock()
	defer s.mu.Unlock()
	coord := s.sys.Spawn("coordinator/"+s.cfg.Population,
		NewCoordinator(s.cfg.Population, s.lock, s.cfg.Store, s.cfg.Plans, s.selectors, s.cfg.MaxRounds, s.done, s.cfg.Now))
	s.coord = coord
	_ = coord.Send(msgTick{})

	// The Selector layer's supervision duty (Sec. 4.4: "if the Coordinator
	// dies, the Selector layer will detect this and respawn it").
	watcher := s.sys.Spawn("coordinator-watcher", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		if t, ok := msg.(actor.Terminated); ok && t.Ref == coord {
			if !s.closed.Load() && t.Failure {
				s.spawnCoordinator()
			}
			ctx.Stop()
		}
	}))
	s.sys.Watch(coord, watcher)
}

// Coordinator returns the current coordinator ref (tests).
func (s *Server) Coordinator() *actor.Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coord
}

// Done is closed when MaxRounds rounds have committed.
func (s *Server) Done() <-chan struct{} { return s.done }

// Stats queries coordinator progress.
func (s *Server) Stats() CoordinatorStats {
	reply := make(chan CoordinatorStats, 1)
	if err := s.Coordinator().Send(msgCoordinatorStats{Reply: reply}); err != nil {
		return CoordinatorStats{}
	}
	select {
	case st := <-reply:
		return st
	case <-time.After(5 * time.Second):
		return CoordinatorStats{}
	}
}

// SelectorStats sums stats across the selector layer.
func (s *Server) SelectorStats() SelectorStats {
	var total SelectorStats
	for _, sel := range s.selectors {
		reply := make(chan SelectorStats, 1)
		if sel.Send(msgSelectorStats{Reply: reply}) != nil {
			continue
		}
		select {
		case st := <-reply:
			total.Held += st.Held
			total.Accepted += st.Accepted
			total.Rejected += st.Rejected
		case <-time.After(5 * time.Second):
		}
	}
	return total
}

// Serve accepts device connections from l until l closes. Each connection's
// first message must be a CheckinRequest, which is dispatched to a Selector
// round-robin (Selectors are "globally distributed, close to devices" in
// the paper; round-robin stands in for geographic affinity).
func (s *Server) Serve(l transport.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		s.handlers.Add(1)
		go func() {
			defer s.handlers.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) handleConn(conn transport.Conn) {
	msg, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return
	}
	req, ok := msg.(protocol.CheckinRequest)
	if !ok {
		_ = conn.Close()
		return
	}
	idx := atomic.AddUint64(&s.nextSel, 1) % uint64(len(s.selectors))
	if err := s.selectors[idx].Send(msgCheckin{Req: req, Conn: conn}); err != nil {
		_ = conn.Close()
	}
}

// Close stops the actor system.
func (s *Server) Close() {
	s.closed.Store(true)
	refs := append([]*actor.Ref{}, s.selectors...)
	refs = append(refs, s.Coordinator())
	s.sys.Shutdown(refs...)
	s.handlers.Wait()
}
