package flserver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/actor"
	"repro/internal/attest"
	"repro/internal/pacing"
	"repro/internal/plan"
	"repro/internal/storage"
	"repro/internal/tasks"
	"repro/internal/transport"
)

// Config configures a Server for one FL population.
type Config struct {
	Population string
	// Plans seeds the population's task set with one Active, default-policy
	// task per plan — sugar for calling SubmitTask after New. Tasks can be
	// submitted, paused, resumed and retired on the live server at any
	// time; Plans may be empty when every task arrives via SubmitTask (or
	// is restored from a previously persisted task set in Store).
	Plans []*plan.Plan
	Store storage.Store
	// Verifier enables attestation checks when non-nil.
	Verifier *attest.Verifier
	Steering *pacing.Steering
	// PopulationEstimate feeds pace steering.
	PopulationEstimate int
	NumSelectors       int
	// SelectorCapacity bounds the parked devices per Selector (0 =
	// unbounded). Multi-population deployments (internal/fleet) set it to
	// get demand-weighted fair sharing of the parked pool.
	SelectorCapacity int
	// MaxRounds stops after that many committed rounds (0 = forever).
	MaxRounds int
	Seed      uint64
	// Now overrides the wall clock (tests).
	Now func() time.Time
}

// Server wires the actor architecture to a transport listener for a single
// FL population: it spawns the Selector layer and the Coordinator,
// dispatches device check-ins to Selectors, and supervises the Coordinator
// via the lock service (a dead Coordinator is detected and respawned
// exactly once, Sec. 4.4). The multi-population equivalent — one shared
// Selector layer serving many populations — is internal/fleet, built from
// the same actors.
type Server struct {
	cfg    Config
	sys    *actor.System
	lock   *actor.LockService
	router *CheckinRouter
	// tasks is the population's task registry. It outlives any one
	// Coordinator (respawns reuse it); mutations are routed through the
	// live Coordinator's mailbox so they serialize with round scheduling.
	tasks *tasks.TaskSet

	selectors []actor.Ref
	mu        sync.Mutex
	coord     actor.Ref
	done      chan struct{}

	closed atomic.Bool
}

// New builds the server and spawns its actors.
func New(cfg Config) (*Server, error) {
	if cfg.Population == "" || cfg.Store == nil {
		return nil, fmt.Errorf("flserver: Population and Store are required")
	}
	ts, err := tasks.New(cfg.Population, cfg.Store, cfg.Now)
	if err != nil {
		return nil, err
	}
	// Config.Plans is sugar: each plan becomes an Active default-policy
	// task. Seed validates every plan, checks it belongs to this
	// population, and rejects duplicate task IDs (colliding IDs would
	// silently share one checkpoint lineage).
	if err := ts.Seed(cfg.Plans); err != nil {
		return nil, err
	}
	if cfg.NumSelectors <= 0 {
		cfg.NumSelectors = 2
	}
	if cfg.Steering == nil {
		cfg.Steering = pacing.New(time.Minute)
	}
	if cfg.PopulationEstimate <= 0 {
		cfg.PopulationEstimate = 1000
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}

	ts.SetPopulationEstimate(cfg.PopulationEstimate)

	s := &Server{
		cfg:   cfg,
		sys:   actor.NewSystem(),
		lock:  actor.NewLockService(),
		tasks: ts,
		done:  make(chan struct{}),
	}
	pop := SelectorPopulation{
		Name:               cfg.Population,
		Steering:           cfg.Steering,
		PopulationEstimate: cfg.PopulationEstimate,
	}
	for i := 0; i < cfg.NumSelectors; i++ {
		sel := s.sys.Spawn(fmt.Sprintf("selector-%d", i),
			NewSelector(cfg.Verifier, cfg.Steering, cfg.SelectorCapacity, cfg.Seed+uint64(i), cfg.Now, pop))
		s.selectors = append(s.selectors, sel)
	}
	s.router = NewCheckinRouter(s.selectors, NewHinter(cfg.Steering, cfg.PopulationEstimate, cfg.Seed+7919, cfg.Now))
	s.spawnCoordinator()
	return s, nil
}

// spawnCoordinator starts a Coordinator and a watcher that respawns it on
// failure. The lock service guarantees a single live owner even if several
// watchers race.
func (s *Server) spawnCoordinator() {
	s.mu.Lock()
	defer s.mu.Unlock()
	coord := s.sys.Spawn("coordinator/"+s.cfg.Population,
		NewCoordinator(s.cfg.Population, s.lock, s.cfg.Store, s.tasks, s.selectors, s.cfg.MaxRounds, s.done, s.cfg.Now).
			WithPacing(s.cfg.Steering, s.cfg.PopulationEstimate))
	s.coord = coord

	// The Selector layer's supervision duty (Sec. 4.4: "if the Coordinator
	// dies, the Selector layer will detect this and respawn it"). Watch
	// before the first tick so even an instant crash is supervised.
	watcher := s.sys.Spawn("coordinator-watcher", actor.BehaviorFunc(func(ctx *actor.Context, msg actor.Message) {
		if t, ok := msg.(actor.Terminated); ok && t.Ref == coord {
			if !s.closed.Load() && t.Failure {
				s.spawnCoordinator()
			}
			ctx.Stop()
		}
	}))
	s.sys.Watch(coord, watcher)
	_ = StartCoordinator(coord)
}

// Coordinator returns the current coordinator ref (tests).
func (s *Server) Coordinator() actor.Ref {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coord
}

// Done is closed when MaxRounds rounds have committed.
func (s *Server) Done() <-chan struct{} { return s.done }

// Stats queries coordinator progress. The error is non-nil when the
// Coordinator is dead or unresponsive, so callers cannot mistake a dead
// coordinator for zero progress.
func (s *Server) Stats() (CoordinatorStats, error) {
	return QueryCoordinatorStats(s.Coordinator())
}

// SelectorStats sums stats across the selector layer. The error is non-nil
// when any Selector is dead or unresponsive.
func (s *Server) SelectorStats() (SelectorStats, error) {
	var total SelectorStats
	for _, sel := range s.selectors {
		st, err := QuerySelectorStats(sel, "")
		if err != nil {
			return SelectorStats{}, err
		}
		total.Add(st)
	}
	return total, nil
}

// PerSelectorStats reports each Selector's counts keyed by its actor name
// — the per-shard/per-selector breakdown behind SelectorStats' totals. The
// error is non-nil when any Selector is dead or unresponsive: a dead
// selector must read as an explicit failure, never as zeros.
func (s *Server) PerSelectorStats() (map[string]SelectorStats, error) {
	out := make(map[string]SelectorStats, len(s.selectors))
	for _, sel := range s.selectors {
		st, err := QuerySelectorStats(sel, "")
		if err != nil {
			return nil, err
		}
		out[sel.Name()] = st
	}
	return out, nil
}

// SubmitTask deploys a new FL task — plan plus scheduling policy — onto
// the live population (Sec. 7 model-engineer workflow): no restart, no
// effect on the round in flight. The task is scheduled per its policy from
// the next tick on. Routed through the Coordinator's mailbox so the
// mutation serializes with round scheduling.
func (s *Server) SubmitTask(p *plan.Plan, pol tasks.Policy) error {
	return SubmitTask(s.Coordinator(), p, pol)
}

// PauseTask stops scheduling the task; an in-flight round completes
// normally and the task's stats and checkpoint lineage are kept.
func (s *Server) PauseTask(id string) error { return PauseTask(s.Coordinator(), id) }

// ResumeTask reactivates a paused task.
func (s *Server) ResumeTask(id string) error { return ResumeTask(s.Coordinator(), id) }

// RetireTask permanently stops scheduling the task. A round already in
// flight completes (and is recorded) rather than being aborted.
func (s *Server) RetireTask(id string) error { return RetireTask(s.Coordinator(), id) }

// TaskStats reports every task's lifecycle record — state, policy, rounds
// committed/failed, cumulative devices, last round time — in submission
// order. The error is non-nil when the Coordinator is dead or
// unresponsive.
func (s *Server) TaskStats() ([]tasks.Stats, error) { return QueryTaskStats(s.Coordinator()) }

// Serve accepts device connections from l until l closes, routing each
// connection's first message through the shared CheckinRouter accept path.
func (s *Server) Serve(l transport.Listener) { s.router.Serve(l) }

// Close stops the actor system.
func (s *Server) Close() {
	s.closed.Store(true)
	refs := append([]actor.Ref{}, s.selectors...)
	refs = append(refs, s.Coordinator())
	s.sys.Shutdown(refs...)
	s.router.Wait()
}
