package fedanalytics

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/nn"
)

func TestQueryValidate(t *testing.T) {
	if err := (Query{}).Validate(); err == nil {
		t.Fatal("empty query must fail")
	}
	if err := (Query{Bins: 4}).Validate(); err == nil {
		t.Fatal("missing BinOf must fail")
	}
	if err := (Query{Bins: 4, PerToken: true}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := LabelHistogram(3).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLabelHistogram(t *testing.T) {
	q := LabelHistogram(3)
	v, err := DeviceVector(q, []nn.Example{{Y: 0}, {Y: 2}, {Y: 2}, {Y: 7}, {Y: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if v[0] != 1 || v[1] != 0 || v[2] != 2 {
		t.Fatalf("histogram = %v", v)
	}
}

func TestTokenHistogram(t *testing.T) {
	q := TokenHistogram(4)
	v, err := DeviceVector(q, []nn.Example{
		{Seq: []int{0, 1, 1}},
		{Seq: []int{3, 3, 3, 9}}, // 9 out of range, skipped
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 0, 3}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("token histogram = %v, want %v", v, want)
		}
	}
}

func TestAggregatePlain(t *testing.T) {
	vectors := map[int][]float64{
		1: {1, 0, 2},
		2: {0, 5, 1},
		3: {2, 2, 2},
	}
	total, err := Aggregate(vectors, 3, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 7, 5}
	for i := range want {
		if total[i] != want[i] {
			t.Fatalf("total = %v", total)
		}
	}
}

func TestAggregateSecureMatchesPlain(t *testing.T) {
	vectors := make(map[int][]float64)
	for id := 1; id <= 10; id++ {
		vectors[id] = []float64{float64(id), float64(id % 3), 1}
	}
	plain, err := Aggregate(vectors, 3, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	secure, err := Aggregate(vectors, 3, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if math.Abs(plain[i]-secure[i]) > 1e-3 {
			t.Fatalf("secure %v != plain %v", secure, plain)
		}
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Aggregate(nil, 0, false, 0); err == nil {
		t.Fatal("zero bins must fail")
	}
	if _, err := Aggregate(map[int][]float64{1: {1}}, 2, false, 0); err == nil {
		t.Fatal("bin mismatch must fail")
	}
	if _, err := Aggregate(map[int][]float64{1: {1}, 2: {2}}, 1, true, 1); err == nil {
		t.Fatal("groupSize 1 must fail")
	}
	if _, err := Aggregate(map[int][]float64{1: {1}}, 1, true, 4); err == nil {
		t.Fatal("too few devices for secure group must fail")
	}
}

func TestEndToEndWordFrequency(t *testing.T) {
	// The motivating scenario: which tokens does the fleet type most,
	// without any device revealing its text. Compare the securely
	// aggregated histogram against ground truth over the same corpus.
	corpus, err := data.MarkovLM(data.LMConfig{
		Users: 12, SentencesPer: 10, SentenceLen: 8, Vocab: 10, TestSize: 1, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := TokenHistogram(10)
	vectors := make(map[int][]float64)
	truth := make([]float64, 10)
	for u, exs := range corpus.Users {
		v, err := DeviceVector(q, exs)
		if err != nil {
			t.Fatal(err)
		}
		vectors[u+1] = v
		for i, x := range v {
			truth[i] += x
		}
	}
	got, err := Aggregate(vectors, 10, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for i := range truth {
		if math.Abs(got[i]-truth[i]) > 1e-3 {
			t.Fatalf("aggregate %v != truth %v", got, truth)
		}
		total += truth[i]
	}
	if total != float64(12*10*8) {
		t.Fatalf("token count = %v, want %d", total, 12*10*8)
	}
}
