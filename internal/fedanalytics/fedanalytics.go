// Package fedanalytics implements the Federated Analytics direction of
// Sec. 11 (Federated Computation): "monitor aggregate device statistics
// without logging raw device data to the cloud". A Query maps on-device
// examples to histogram bins; devices report only their local count vector,
// and the server aggregates sums — optionally through Secure Aggregation
// groups, so even per-device count vectors stay invisible.
//
// This reuses the paper's observation that the whole infrastructure only
// needs sums: the same aggregation path that carries model updates carries
// analytics vectors unchanged.
package fedanalytics

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/nn"
	"repro/internal/secagg"
)

// Query describes one aggregate statistic.
type Query struct {
	// Bins is the histogram size.
	Bins int
	// PerToken counts every token of sequence examples instead of one bin
	// per example.
	PerToken bool
	// BinOf maps an example to a bin in [0, Bins); return a negative value
	// to skip the example. Ignored when PerToken is set.
	BinOf func(ex nn.Example) int
}

// Validate reports whether the query is usable.
func (q Query) Validate() error {
	if q.Bins <= 0 {
		return fmt.Errorf("fedanalytics: Bins must be positive, got %d", q.Bins)
	}
	if !q.PerToken && q.BinOf == nil {
		return fmt.Errorf("fedanalytics: BinOf is required for per-example queries")
	}
	return nil
}

// LabelHistogram counts examples per class label.
func LabelHistogram(classes int) Query {
	return Query{Bins: classes, BinOf: func(ex nn.Example) int {
		if ex.Y < 0 || ex.Y >= classes {
			return -1
		}
		return ex.Y
	}}
}

// TokenHistogram counts token occurrences in sequence examples — the
// "which words do users type" query that motivates analytics without
// raw-data logging.
func TokenHistogram(vocab int) Query {
	return Query{Bins: vocab, PerToken: true}
}

// DeviceVector computes a device's local contribution for the query.
func DeviceVector(q Query, examples []nn.Example) ([]float64, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	out := make([]float64, q.Bins)
	for _, ex := range examples {
		if q.PerToken {
			for _, tok := range ex.Seq {
				if tok >= 0 && tok < q.Bins {
					out[tok]++
				}
			}
			continue
		}
		if bin := q.BinOf(ex); bin >= 0 && bin < q.Bins {
			out[bin]++
		}
	}
	return out, nil
}

// Aggregate sums per-device vectors. With secure=true the devices are
// partitioned into Secure Aggregation groups of at least groupSize, so the
// server only ever handles group sums (Sec. 6 applied to analytics).
func Aggregate(vectors map[int][]float64, bins int, secure bool, groupSize int) ([]float64, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("fedanalytics: bins must be positive")
	}
	for id, v := range vectors {
		if len(v) != bins {
			return nil, fmt.Errorf("fedanalytics: device %d vector has %d bins, want %d", id, len(v), bins)
		}
	}
	total := make([]float64, bins)
	if !secure {
		for _, v := range vectors {
			for i, x := range v {
				total[i] += x
			}
		}
		return total, nil
	}
	if groupSize < 2 {
		return nil, fmt.Errorf("fedanalytics: secure aggregation needs groupSize ≥ 2")
	}
	ids := make([]int, 0, len(vectors))
	for id := range vectors {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	if len(ids) < groupSize {
		return nil, fmt.Errorf("fedanalytics: %d devices below secure group size %d", len(ids), groupSize)
	}
	groups := secagg.GroupSpans(len(ids), groupSize)
	// Groups are independent Secure Aggregation instances; run them
	// concurrently and fold each group sum into the total under a lock.
	// The semaphore bounds concurrent protocol *instances* (a large query
	// may have thousands of groups); each admitted instance still fans out
	// its own worker pools, so worst-case transients are
	// O(GOMAXPROCS × workers × bins), acceptable at histogram sizes.
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for _, g := range groups {
		sem <- struct{}{} // acquire before spawning: bounds live goroutines too
		wg.Add(1)
		go func(g [2]int) {
			defer wg.Done()
			defer func() { <-sem }()
			group := ids[g[0]:g[1]]
			inputs := make(map[int][]float64, len(group))
			for i, id := range group {
				inputs[i+1] = vectors[id]
			}
			cfg := secagg.Config{N: len(group), T: len(group)/2 + 1, VectorLen: bins}
			sum, _, err := secagg.Run(cfg, inputs, nil, nil)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("fedanalytics: group starting at %d: %w", g[0], err)
				}
				return
			}
			for i, x := range sum {
				total[i] += x
			}
		}(g)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return total, nil
}
