package data

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// BlobsConfig configures the Gaussian-mixture classification dataset used
// for quick convergence experiments (e.g. the clients-per-round sweep).
type BlobsConfig struct {
	Users       int
	ExamplesPer int
	Features    int
	Classes     int
	TestSize    int
	// Skew in [0,1] controls label distribution skew per user: 0 = uniform
	// labels everywhere (IID); 1 = each user holds examples of mostly one
	// class (pathologically non-IID, as in McMahan et al. 2017).
	Skew float64
	Seed uint64
}

// Blobs builds a non-IID classification dataset. Class c has a Gaussian
// cluster center; users draw labels from a skewed distribution favouring a
// "home class", then sample features from the class cluster.
func Blobs(cfg BlobsConfig) (*Federated, error) {
	if cfg.Users <= 0 || cfg.ExamplesPer <= 0 || cfg.Features <= 0 || cfg.Classes <= 1 {
		return nil, fmt.Errorf("data: invalid BlobsConfig %+v", cfg)
	}
	if cfg.Skew < 0 || cfg.Skew > 1 {
		return nil, fmt.Errorf("data: Skew must be in [0,1], got %v", cfg.Skew)
	}
	rng := tensor.NewRNG(cfg.Seed)

	// Class centers: random placement plus a deterministic axis-aligned
	// offset so no two centers collide and the task stays learnable.
	centers := make([][]float64, cfg.Classes)
	crng := rng.Derive(1)
	for c := range centers {
		center := make([]float64, cfg.Features)
		for j := range center {
			center[j] = 2 * crng.NormFloat64()
		}
		center[c%cfg.Features] += 5 * float64(1+c/cfg.Features)
		centers[c] = center
	}

	sample := func(class int, rng *tensor.RNG) nn.Example {
		x := make([]float64, cfg.Features)
		for j := range x {
			x[j] = centers[class][j] + rng.NormFloat64()
		}
		return nn.Example{X: x, Y: class}
	}

	f := &Federated{Users: make([][]nn.Example, cfg.Users)}
	for u := 0; u < cfg.Users; u++ {
		urng := rng.Derive(uint64(u) + 5000)
		home := urng.Intn(cfg.Classes)
		exs := make([]nn.Example, cfg.ExamplesPer)
		for i := range exs {
			class := home
			if urng.Float64() >= cfg.Skew {
				class = urng.Intn(cfg.Classes)
			}
			exs[i] = sample(class, urng)
		}
		f.Users[u] = exs
	}

	trng := rng.Derive(2)
	f.Test = make([]nn.Example, cfg.TestSize)
	for i := range f.Test {
		f.Test[i] = sample(trng.Intn(cfg.Classes), trng)
	}
	return f, nil
}

// RankingConfig configures the on-device item-ranking dataset (Sec. 8:
// "each user interaction with the ranking feature can become a labeled data
// point"). Each example is a query context; the label is which of the
// Classes candidate items the user picked.
type RankingConfig struct {
	Users       int
	ExamplesPer int
	Features    int // context feature dimension
	Items       int // candidate items to rank
	TestSize    int
	Seed        uint64
}

// Ranking builds a federated click dataset. A global preference matrix maps
// contexts to item affinities; each user adds a personal bias toward a few
// favourite items, making the data non-IID the way real ranking feedback is.
func Ranking(cfg RankingConfig) (*Federated, error) {
	if cfg.Users <= 0 || cfg.ExamplesPer <= 0 || cfg.Features <= 0 || cfg.Items <= 1 {
		return nil, fmt.Errorf("data: invalid RankingConfig %+v", cfg)
	}
	rng := tensor.NewRNG(cfg.Seed)

	// Global affinity: items × features.
	aff := tensor.NewMatrix(cfg.Items, cfg.Features)
	rng.Derive(1).GlorotInit(aff)
	// Scale up so clicks are mostly determined by context (learnable).
	for i := range aff.Data {
		aff.Data[i] *= 4
	}

	gen := func(userBias tensor.Vector, rng *tensor.RNG) nn.Example {
		x := make([]float64, cfg.Features)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		scores := tensor.NewVector(cfg.Items)
		aff.MulVec(scores, x)
		if userBias != nil {
			scores.Axpy(1, userBias)
		}
		// The user clicks a softmax-ish sample over scores; use argmax with
		// small noise to keep labels mostly consistent.
		for i := range scores {
			scores[i] += 0.3 * rng.NormFloat64()
		}
		return nn.Example{X: x, Y: tensor.Argmax(scores)}
	}

	f := &Federated{Users: make([][]nn.Example, cfg.Users)}
	for u := 0; u < cfg.Users; u++ {
		urng := rng.Derive(uint64(u) + 9000)
		bias := tensor.NewVector(cfg.Items)
		for k := 0; k < 2; k++ { // two favourite items per user
			bias[urng.Intn(cfg.Items)] += 1.5
		}
		exs := make([]nn.Example, cfg.ExamplesPer)
		for i := range exs {
			exs[i] = gen(bias, urng)
		}
		f.Users[u] = exs
	}

	trng := rng.Derive(2)
	f.Test = make([]nn.Example, cfg.TestSize)
	for i := range f.Test {
		f.Test[i] = gen(nil, trng)
	}
	return f, nil
}
