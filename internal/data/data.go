// Package data generates the synthetic federated datasets the experiments
// train on. The paper's workloads (Gboard next-word prediction, on-device
// item ranking) use private on-device data we cannot access; these
// generators produce data with the property that actually matters for the
// system evaluation: it is partitioned per-user and non-IID, so federated
// optimization behaves like it does in the field (client drift, diminishing
// returns from more clients per round, etc.).
package data

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Federated is a dataset partitioned across users, plus a held-out test set
// drawn from the global distribution (the "proxy data" a model engineer
// evaluates against, Sec. 7.1).
type Federated struct {
	Users [][]nn.Example // Users[i] is user i's local example store content
	Test  []nn.Example
}

// NumUsers returns the number of users in the partition.
func (f *Federated) NumUsers() int { return len(f.Users) }

// TotalExamples returns the number of training examples across all users.
func (f *Federated) TotalExamples() int {
	n := 0
	for _, u := range f.Users {
		n += len(u)
	}
	return n
}

// LMConfig configures the synthetic next-word-prediction corpus.
type LMConfig struct {
	Users        int
	SentencesPer int // sentences per user
	SentenceLen  int // tokens per sentence
	Vocab        int
	TestSize     int // held-out sentences
	// Skew in [0,1]: 0 = every user samples from the global chain (IID);
	// 1 = each user's transition distribution is heavily personalised.
	Skew float64
	Seed uint64
}

// MarkovLM builds a non-IID language-modelling corpus. A global first-order
// Markov chain over the vocabulary defines the shared language; each user
// mixes it with a personal chain, controlled by Skew. This mirrors mobile
// keyboard data: mostly a common language, partly personal vocabulary habits.
func MarkovLM(cfg LMConfig) (*Federated, error) {
	if cfg.Users <= 0 || cfg.Vocab <= 1 || cfg.SentenceLen < 2 || cfg.SentencesPer <= 0 {
		return nil, fmt.Errorf("data: invalid LMConfig %+v", cfg)
	}
	if cfg.Skew < 0 || cfg.Skew > 1 {
		return nil, fmt.Errorf("data: Skew must be in [0,1], got %v", cfg.Skew)
	}
	rng := tensor.NewRNG(cfg.Seed)
	global := randomChain(cfg.Vocab, rng.Derive(1))

	f := &Federated{Users: make([][]nn.Example, cfg.Users)}
	for u := 0; u < cfg.Users; u++ {
		urng := rng.Derive(uint64(u) + 1000)
		chain := global
		if cfg.Skew > 0 {
			personal := randomChain(cfg.Vocab, urng.Derive(7))
			chain = mixChains(global, personal, cfg.Skew)
		}
		exs := make([]nn.Example, cfg.SentencesPer)
		for s := range exs {
			exs[s] = nn.Example{Seq: sampleSentence(chain, cfg.Vocab, cfg.SentenceLen, urng)}
		}
		f.Users[u] = exs
	}

	trng := rng.Derive(2)
	f.Test = make([]nn.Example, cfg.TestSize)
	for i := range f.Test {
		f.Test[i] = nn.Example{Seq: sampleSentence(global, cfg.Vocab, cfg.SentenceLen, trng)}
	}
	return f, nil
}

// randomChain builds a row-stochastic transition matrix with a strongly
// peaked structure (each token has a few likely successors), so next-word
// prediction is learnable well above chance.
func randomChain(vocab int, rng *tensor.RNG) []float64 {
	chain := make([]float64, vocab*vocab)
	for i := 0; i < vocab; i++ {
		row := chain[i*vocab : (i+1)*vocab]
		// A small number of preferred successors with geometric-ish mass.
		var sum float64
		for j := range row {
			row[j] = 0.02 * rng.ExpFloat64()
			sum += row[j]
		}
		for k := 0; k < 3; k++ {
			j := rng.Intn(vocab)
			boost := rng.ExpFloat64() * float64(3-k)
			row[j] += boost
			sum += boost
		}
		for j := range row {
			row[j] /= sum
		}
	}
	return chain
}

// mixChains returns (1-skew)·a + skew·b row-wise.
func mixChains(a, b []float64, skew float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = (1-skew)*a[i] + skew*b[i]
	}
	return out
}

// sampleSentence draws a token sequence from the chain.
func sampleSentence(chain []float64, vocab, length int, rng *tensor.RNG) []int {
	seq := make([]int, length)
	seq[0] = rng.Intn(vocab)
	for i := 1; i < length; i++ {
		seq[i] = sampleRow(chain[seq[i-1]*vocab:(seq[i-1]+1)*vocab], rng)
	}
	return seq
}

func sampleRow(row []float64, rng *tensor.RNG) int {
	u := rng.Float64()
	var cum float64
	for j, p := range row {
		cum += p
		if u < cum {
			return j
		}
	}
	return len(row) - 1
}
