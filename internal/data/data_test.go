package data

import (
	"testing"

	"repro/internal/nn"
)

func TestMarkovLMShape(t *testing.T) {
	f, err := MarkovLM(LMConfig{Users: 5, SentencesPer: 3, SentenceLen: 6, Vocab: 10, TestSize: 4, Skew: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumUsers() != 5 {
		t.Fatalf("NumUsers = %d", f.NumUsers())
	}
	if f.TotalExamples() != 15 {
		t.Fatalf("TotalExamples = %d, want 15", f.TotalExamples())
	}
	if len(f.Test) != 4 {
		t.Fatalf("Test size = %d", len(f.Test))
	}
	for _, u := range f.Users {
		for _, ex := range u {
			if len(ex.Seq) != 6 {
				t.Fatalf("sentence length = %d", len(ex.Seq))
			}
			for _, tok := range ex.Seq {
				if tok < 0 || tok >= 10 {
					t.Fatalf("token %d out of vocab", tok)
				}
			}
		}
	}
}

func TestMarkovLMInvalidConfig(t *testing.T) {
	for _, cfg := range []LMConfig{
		{Users: 0, SentencesPer: 1, SentenceLen: 3, Vocab: 5},
		{Users: 1, SentencesPer: 1, SentenceLen: 1, Vocab: 5},
		{Users: 1, SentencesPer: 1, SentenceLen: 3, Vocab: 1},
		{Users: 1, SentencesPer: 1, SentenceLen: 3, Vocab: 5, Skew: 2},
	} {
		if _, err := MarkovLM(cfg); err == nil {
			t.Errorf("MarkovLM(%+v) should fail", cfg)
		}
	}
}

func TestMarkovLMDeterministic(t *testing.T) {
	cfg := LMConfig{Users: 3, SentencesPer: 2, SentenceLen: 5, Vocab: 8, TestSize: 2, Seed: 42}
	a, _ := MarkovLM(cfg)
	b, _ := MarkovLM(cfg)
	for u := range a.Users {
		for s := range a.Users[u] {
			for i := range a.Users[u][s].Seq {
				if a.Users[u][s].Seq[i] != b.Users[u][s].Seq[i] {
					t.Fatal("same seed must produce identical corpus")
				}
			}
		}
	}
}

func TestMarkovLMIsLearnable(t *testing.T) {
	// A bigram model trained on the corpus must beat chance by a wide
	// margin, i.e. the chain is genuinely structured.
	f, err := MarkovLM(LMConfig{Users: 20, SentencesPer: 20, SentenceLen: 8, Vocab: 16, TestSize: 50, Skew: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	bg := nn.NewBigram(16)
	for _, u := range f.Users {
		for _, ex := range u {
			bg.Observe(ex.Seq)
		}
	}
	met := bg.Evaluate(f.Test)
	chance := 1.0 / 16
	if met.Accuracy < 3*chance {
		t.Fatalf("bigram top-1 = %v, want well above chance %v", met.Accuracy, chance)
	}
}

func TestMarkovLMSkewIncreasesHeterogeneity(t *testing.T) {
	// With high skew, a bigram trained on one user's data transfers worse to
	// the global test set than a bigram trained on the same amount of IID
	// data. This verifies Skew actually produces non-IID partitions.
	base := LMConfig{Users: 10, SentencesPer: 40, SentenceLen: 8, Vocab: 12, TestSize: 200, Seed: 7}
	iidCfg, skewCfg := base, base
	iidCfg.Skew, skewCfg.Skew = 0, 0.9
	iid, _ := MarkovLM(iidCfg)
	skew, _ := MarkovLM(skewCfg)

	evalUser0 := func(f *Federated) float64 {
		bg := nn.NewBigram(12)
		for _, ex := range f.Users[0] {
			bg.Observe(ex.Seq)
		}
		return bg.Evaluate(f.Test).Accuracy
	}
	accIID, accSkew := evalUser0(iid), evalUser0(skew)
	if accSkew >= accIID {
		t.Fatalf("skewed single-user transfer (%v) should be worse than IID (%v)", accSkew, accIID)
	}
}

func TestBlobsShapeAndLabels(t *testing.T) {
	f, err := Blobs(BlobsConfig{Users: 4, ExamplesPer: 10, Features: 3, Classes: 5, TestSize: 20, Skew: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumUsers() != 4 || f.TotalExamples() != 40 || len(f.Test) != 20 {
		t.Fatalf("shape: users=%d total=%d test=%d", f.NumUsers(), f.TotalExamples(), len(f.Test))
	}
	for _, ex := range f.Test {
		if len(ex.X) != 3 {
			t.Fatalf("feature dim = %d", len(ex.X))
		}
		if ex.Y < 0 || ex.Y >= 5 {
			t.Fatalf("label %d out of range", ex.Y)
		}
	}
}

func TestBlobsSkewConcentratesLabels(t *testing.T) {
	f, _ := Blobs(BlobsConfig{Users: 10, ExamplesPer: 100, Features: 2, Classes: 10, TestSize: 1, Skew: 1, Seed: 2})
	for u, exs := range f.Users {
		first := exs[0].Y
		for _, ex := range exs {
			if ex.Y != first {
				t.Fatalf("user %d: skew=1 should give single-class users", u)
			}
		}
	}
}

func TestBlobsLearnable(t *testing.T) {
	f, _ := Blobs(BlobsConfig{Users: 10, ExamplesPer: 50, Features: 4, Classes: 3, TestSize: 100, Skew: 0, Seed: 5})
	m := nn.NewLogistic(4, 3, 1)
	var all []nn.Example
	for _, u := range f.Users {
		all = append(all, u...)
	}
	for epoch := 0; epoch < 15; epoch++ {
		for i := 0; i < len(all); i += 20 {
			end := i + 20
			if end > len(all) {
				end = len(all)
			}
			m.TrainBatch(all[i:end], 0.1)
		}
	}
	if acc := m.Evaluate(f.Test).Accuracy; acc < 0.9 {
		t.Fatalf("blobs should be easily learnable, got accuracy %v", acc)
	}
}

func TestBlobsInvalidConfig(t *testing.T) {
	if _, err := Blobs(BlobsConfig{Users: 0}); err == nil {
		t.Fatal("want error for zero users")
	}
	if _, err := Blobs(BlobsConfig{Users: 1, ExamplesPer: 1, Features: 1, Classes: 2, Skew: -0.1}); err == nil {
		t.Fatal("want error for negative skew")
	}
}

func TestRankingShape(t *testing.T) {
	f, err := Ranking(RankingConfig{Users: 6, ExamplesPer: 8, Features: 5, Items: 7, TestSize: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumUsers() != 6 || f.TotalExamples() != 48 || len(f.Test) != 10 {
		t.Fatal("ranking shape mismatch")
	}
	for _, ex := range f.Test {
		if ex.Y < 0 || ex.Y >= 7 {
			t.Fatalf("clicked item %d out of range", ex.Y)
		}
	}
}

func TestRankingLearnable(t *testing.T) {
	f, _ := Ranking(RankingConfig{Users: 20, ExamplesPer: 50, Features: 6, Items: 5, TestSize: 200, Seed: 3})
	m := nn.NewLogistic(6, 5, 2)
	var all []nn.Example
	for _, u := range f.Users {
		all = append(all, u...)
	}
	for epoch := 0; epoch < 20; epoch++ {
		for i := 0; i < len(all); i += 25 {
			end := i + 25
			if end > len(all) {
				end = len(all)
			}
			m.TrainBatch(all[i:end], 0.1)
		}
	}
	acc := m.Evaluate(f.Test).Accuracy
	if acc < 0.5 { // chance is 0.2
		t.Fatalf("ranking should be learnable above chance, got %v", acc)
	}
}

func TestRankingInvalidConfig(t *testing.T) {
	if _, err := Ranking(RankingConfig{Users: 1, ExamplesPer: 1, Features: 1, Items: 1}); err == nil {
		t.Fatal("want error for Items=1")
	}
}
