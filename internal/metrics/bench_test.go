package metrics

import (
	"testing"

	"repro/internal/tensor"
)

func BenchmarkQuantileAdd(b *testing.B) {
	q, err := NewQuantile(0.9)
	if err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Add(rng.Float64())
	}
}

func BenchmarkSummaryAdd(b *testing.B) {
	s := NewSummary()
	rng := tensor.NewRNG(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(rng.Float64())
	}
}
