package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/tensor"
)

func TestQuantileRejectsBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		if _, err := NewQuantile(p); err == nil {
			t.Errorf("NewQuantile(%v) should fail", p)
		}
	}
}

func TestQuantileExactSmallN(t *testing.T) {
	q, _ := NewQuantile(0.5)
	if !math.IsNaN(q.Value()) {
		t.Fatal("empty estimator should be NaN")
	}
	for _, x := range []float64{5, 1, 3} {
		q.Add(x)
	}
	if q.Value() != 3 {
		t.Fatalf("median of {1,3,5} = %v, want 3", q.Value())
	}
	if q.Count() != 3 {
		t.Fatalf("Count = %d", q.Count())
	}
}

func TestQuantileAccuracyUniform(t *testing.T) {
	rng := tensor.NewRNG(1)
	for _, p := range []float64{0.5, 0.9, 0.99} {
		q, _ := NewQuantile(p)
		var all []float64
		for i := 0; i < 20000; i++ {
			x := rng.Float64()
			q.Add(x)
			all = append(all, x)
		}
		sort.Float64s(all)
		exact := all[int(p*float64(len(all)))]
		if math.Abs(q.Value()-exact) > 0.02 {
			t.Fatalf("p=%v: estimate %v vs exact %v", p, q.Value(), exact)
		}
	}
}

func TestQuantileAccuracyNormal(t *testing.T) {
	rng := tensor.NewRNG(2)
	q, _ := NewQuantile(0.9)
	for i := 0; i < 30000; i++ {
		q.Add(rng.NormFloat64())
	}
	// Standard normal 0.9 quantile ≈ 1.2816.
	if math.Abs(q.Value()-1.2816) > 0.08 {
		t.Fatalf("normal P90 estimate %v, want ≈ 1.2816", q.Value())
	}
}

func TestQuantileMonotoneSequence(t *testing.T) {
	q, _ := NewQuantile(0.5)
	for i := 1; i <= 1001; i++ {
		q.Add(float64(i))
	}
	if math.Abs(q.Value()-501) > 10 {
		t.Fatalf("median of 1..1001 estimated %v", q.Value())
	}
}

func TestSummaryMoments(t *testing.T) {
	s := NewSummary()
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	snap := s.Snapshot()
	if snap.Count != 8 || snap.Mean != 5 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if math.Abs(snap.Std-2) > 1e-9 {
		t.Fatalf("std = %v, want 2", snap.Std)
	}
	if snap.Min != 2 || snap.Max != 9 {
		t.Fatalf("min/max: %+v", snap)
	}
}

func TestSummaryEmpty(t *testing.T) {
	// An empty summary snapshots as all zeros: the internal ±Inf min/max
	// sentinels must not leak (they would poison JSON encoding of pooled
	// round-trace summaries).
	snap := NewSummary().Snapshot()
	if snap != (Snapshot{}) {
		t.Fatalf("empty snapshot: %+v, want zero value", snap)
	}
}

func TestSummaryReset(t *testing.T) {
	s := NewSummary()
	for i := 0; i < 100; i++ {
		s.Add(float64(i))
	}
	s.Reset()
	if snap := s.Snapshot(); snap != (Snapshot{}) {
		t.Fatalf("snapshot after Reset: %+v, want zero value", snap)
	}
	// A reset summary must behave exactly like a fresh one.
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	snap := s.Snapshot()
	if snap.Count != 8 || snap.Mean != 5 || snap.Min != 2 || snap.Max != 9 {
		t.Fatalf("snapshot after Reset+Add: %+v", snap)
	}
}

func TestSummaryConcurrent(t *testing.T) {
	s := NewSummary()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := tensor.NewRNG(seed)
			for i := 0; i < 1000; i++ {
				s.Add(rng.Float64())
			}
		}(uint64(w))
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Count != 8000 {
		t.Fatalf("count = %d, want 8000", snap.Count)
	}
	if snap.Mean < 0.45 || snap.Mean > 0.55 {
		t.Fatalf("mean of uniforms = %v", snap.Mean)
	}
}

func TestSummaryQuantilesOrdered(t *testing.T) {
	s := NewSummary()
	rng := tensor.NewRNG(5)
	for i := 0; i < 5000; i++ {
		s.Add(rng.ExpFloat64())
	}
	snap := s.Snapshot()
	if !(snap.Min <= snap.P50 && snap.P50 <= snap.P90 && snap.P90 <= snap.P99 && snap.P99 <= snap.Max) {
		t.Fatalf("quantiles not ordered: %+v", snap)
	}
}
