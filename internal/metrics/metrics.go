// Package metrics implements the metric summarization of Sec. 7.4: device
// reports within a round are condensed into "approximate order statistics
// and moments like mean". Order statistics use the P² streaming quantile
// estimator (Jain & Chlamtac 1985), so the server never stores per-device
// values — consistent with the system's no-per-device-logs stance.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Quantile is a P² streaming estimator for one quantile.
type Quantile struct {
	p       float64
	n       int
	initial []float64  // first five observations, sorted lazily
	q       [5]float64 // marker heights
	pos     [5]float64 // marker positions
	want    [5]float64 // desired positions
	inc     [5]float64 // desired position increments
}

// NewQuantile returns an estimator for the p-quantile, 0 < p < 1.
func NewQuantile(p float64) (*Quantile, error) {
	if p <= 0 || p >= 1 {
		return nil, fmt.Errorf("metrics: quantile p=%v outside (0,1)", p)
	}
	return &Quantile{p: p}, nil
}

// Add feeds one observation.
func (q *Quantile) Add(x float64) {
	q.n++
	if q.n <= 5 {
		q.initial = append(q.initial, x)
		if q.n == 5 {
			sort.Float64s(q.initial)
			for i := 0; i < 5; i++ {
				q.q[i] = q.initial[i]
				q.pos[i] = float64(i + 1)
			}
			p := q.p
			q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			q.inc = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}

	// Find cell k such that q[k] ≤ x < q[k+1], adjusting extremes.
	var k int
	switch {
	case x < q.q[0]:
		q.q[0] = x
		k = 0
	case x >= q.q[4]:
		q.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := 0; i < 5; i++ {
		q.want[i] += q.inc[i]
	}

	// Adjust interior markers with parabolic interpolation.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			cand := q.parabolic(i, sign)
			if q.q[i-1] < cand && cand < q.q[i+1] {
				q.q[i] = cand
			} else {
				q.q[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

func (q *Quantile) parabolic(i int, d float64) float64 {
	return q.q[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.q[i+1]-q.q[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.q[i]-q.q[i-1])/(q.pos[i]-q.pos[i-1]))
}

func (q *Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.q[i] + d*(q.q[j]-q.q[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current estimate. With fewer than five observations it
// falls back to the exact empirical quantile.
func (q *Quantile) Value() float64 {
	if q.n == 0 {
		return math.NaN()
	}
	if q.n <= 5 {
		s := append([]float64(nil), q.initial...)
		sort.Float64s(s)
		idx := int(q.p * float64(len(s)))
		if idx >= len(s) {
			idx = len(s) - 1
		}
		return s[idx]
	}
	return q.q[2]
}

// Count returns the number of observations.
func (q *Quantile) Count() int { return q.n }

// Reset returns the estimator to its empty state, keeping the target
// quantile. Pooled summaries reuse their estimators across rounds instead
// of reallocating five-marker state per round.
func (q *Quantile) Reset() {
	q.n = 0
	q.initial = q.initial[:0]
	q.q, q.pos, q.want, q.inc = [5]float64{}, [5]float64{}, [5]float64{}, [5]float64{}
}

// Summary condenses a stream of observations into moments and the standard
// quantile set (P50/P90/P99). Safe for concurrent use.
type Summary struct {
	mu            sync.Mutex
	n             int
	sum, sumSq    float64
	min, max      float64
	p50, p90, p99 *Quantile
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	p50, _ := NewQuantile(0.5)
	p90, _ := NewQuantile(0.9)
	p99, _ := NewQuantile(0.99)
	return &Summary{min: math.Inf(1), max: math.Inf(-1), p50: p50, p90: p90, p99: p99}
}

// Add feeds one observation.
func (s *Summary) Add(x float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	s.sum += x
	s.sumSq += x * x
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	s.p50.Add(x)
	s.p90.Add(x)
	s.p99.Add(x)
}

// Snapshot is an immutable view of a Summary, the unit materialized to
// storage with each round's metrics.
type Snapshot struct {
	Count         int
	Mean, Std     float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Reset returns the summary to its empty state so it can be pooled and
// reused across rounds (the obs round tracer keeps per-phase summaries
// alive for the process lifetime and resets them per materialization).
func (s *Summary) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n = 0
	s.sum, s.sumSq = 0, 0
	s.min, s.max = math.Inf(1), math.Inf(-1)
	s.p50.Reset()
	s.p90.Reset()
	s.p99.Reset()
}

// Snapshot returns the current state. An empty summary snapshots as all
// zeros — NOT the internal ±Inf min/max sentinels and NOT NaN, so a
// snapshot is always JSON-encodable (encoding/json rejects NaN/Inf) and a
// pooled-but-unused summary cannot leak ±Inf into a materialized record.
func (s *Summary) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := Snapshot{Count: s.n, Min: s.min, Max: s.max}
	if s.n == 0 {
		return Snapshot{}
	}
	snap.Mean = s.sum / float64(s.n)
	variance := s.sumSq/float64(s.n) - snap.Mean*snap.Mean
	if variance < 0 {
		variance = 0
	}
	snap.Std = math.Sqrt(variance)
	snap.P50 = s.p50.Value()
	snap.P90 = s.p90.Value()
	snap.P99 = s.p99.Value()
	return snap
}

// Materialized is a round's metrics record as written to server storage
// (Sec. 7.4): task name, round number, operational metadata, and named
// metric summaries.
type Materialized struct {
	TaskName string
	Round    int64
	Stats    map[string]Snapshot
}
