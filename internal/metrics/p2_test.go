package metrics

import (
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// p2Tolerance is the documented accuracy contract for the P² estimator on
// the 10k-sample streams below: the estimate must land within this
// fraction of the stream's value RANGE of the exact empirical quantile.
// (Jain & Chlamtac report errors well under 1% of range for smooth
// distributions; bimodal streams stress the parabolic adjustment, so the
// contract is deliberately looser than the typical observed error.)
const p2Tolerance = 0.05

// p2Streams are the distributions the accuracy contract is verified
// against: smooth unimodal (uniform, normal) and a hard bimodal mixture.
var p2Streams = []struct {
	name string
	gen  func(rng *tensor.RNG) float64
}{
	{"uniform", func(rng *tensor.RNG) float64 { return rng.Float64() }},
	{"normal", func(rng *tensor.RNG) float64 { return 10 + 2*rng.NormFloat64() }},
	{"bimodal", func(rng *tensor.RNG) float64 {
		// Two well-separated modes, 70/30 mixture.
		if rng.Float64() < 0.7 {
			return rng.NormFloat64()
		}
		return 50 + 3*rng.NormFloat64()
	}},
}

// TestQuantileAccuracyProperty is the property test behind the Sec. 7.4
// no-per-device-logs stance: for every stream shape and every tracked
// quantile, the streaming estimate must track the exact empirical
// quantile of the same 10k samples within p2Tolerance of the range.
func TestQuantileAccuracyProperty(t *testing.T) {
	const n = 10000
	for _, stream := range p2Streams {
		for seed := uint64(1); seed <= 3; seed++ {
			for _, p := range []float64{0.5, 0.9, 0.99} {
				rng := tensor.NewRNG(seed * 7919)
				q, err := NewQuantile(p)
				if err != nil {
					t.Fatal(err)
				}
				all := make([]float64, 0, n)
				for i := 0; i < n; i++ {
					x := stream.gen(rng)
					q.Add(x)
					all = append(all, x)
				}
				sort.Float64s(all)
				exact := all[int(p*float64(n))]
				span := all[n-1] - all[0]
				if got := q.Value(); math.Abs(got-exact) > p2Tolerance*span {
					t.Errorf("%s seed=%d p=%v: estimate %v vs exact %v (range %v, tolerance %v)",
						stream.name, seed, p, got, exact, span, p2Tolerance*span)
				}
			}
		}
	}
}

// TestSummaryAccuracyProperty runs the same contract through Summary's
// P50/P90/P99 plus its exact moments, on each stream shape.
func TestSummaryAccuracyProperty(t *testing.T) {
	const n = 10000
	for _, stream := range p2Streams {
		rng := tensor.NewRNG(42)
		s := NewSummary()
		all := make([]float64, 0, n)
		sum := 0.0
		for i := 0; i < n; i++ {
			x := stream.gen(rng)
			s.Add(x)
			all = append(all, x)
			sum += x
		}
		sort.Float64s(all)
		span := all[n-1] - all[0]
		snap := s.Snapshot()
		if snap.Count != n {
			t.Fatalf("%s: count %d", stream.name, snap.Count)
		}
		if math.Abs(snap.Mean-sum/n) > 1e-9*math.Abs(sum/n)+1e-12 {
			t.Errorf("%s: mean %v, want %v", stream.name, snap.Mean, sum/n)
		}
		if snap.Min != all[0] || snap.Max != all[n-1] {
			t.Errorf("%s: min/max %v/%v, want %v/%v", stream.name, snap.Min, snap.Max, all[0], all[n-1])
		}
		for _, pq := range []struct {
			p   float64
			got float64
		}{{0.5, snap.P50}, {0.9, snap.P90}, {0.99, snap.P99}} {
			exact := all[int(pq.p*float64(n))]
			if math.Abs(pq.got-exact) > p2Tolerance*span {
				t.Errorf("%s p=%v: estimate %v vs exact %v (tolerance %v)",
					stream.name, pq.p, pq.got, exact, p2Tolerance*span)
			}
		}
	}
}

// TestSummaryConcurrentSnapshotReset exercises Add racing Snapshot and
// Reset under -race: the obs registry snapshots live summaries while hot
// paths keep observing into them.
func TestSummaryConcurrentSnapshotReset(t *testing.T) {
	s := NewSummary()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := tensor.NewRNG(seed)
			for i := 0; i < 2000; i++ {
				s.Add(rng.Float64())
			}
		}(uint64(w + 1))
	}
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := s.Snapshot()
			if snap.Count == 0 && snap != (Snapshot{}) {
				t.Error("empty snapshot not zeroed")
				return
			}
			s.Reset()
		}
	}()
	wg.Wait()
	close(stop)
	s.Reset()
	s.Add(1)
	if snap := s.Snapshot(); snap.Count != 1 || snap.Min != 1 || snap.Max != 1 {
		t.Fatalf("summary unusable after concurrent reset: %+v", snap)
	}
}
