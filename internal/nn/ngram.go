package nn

// Bigram is the count-based n-gram baseline the paper compares the federated
// RNN against (Sec. 8: "improves top-1 recall over a baseline n-gram model").
// It is trained centrally from raw counts — it is the "what you could do
// without FL" comparator, so it does not implement the Model interface.
type Bigram struct {
	vocab  int
	counts []int // vocab × vocab, counts[prev*vocab+next]
	totals []int // per-prev totals
	uni    []int // unigram counts, fallback for unseen contexts
	uniTot int
}

// NewBigram returns an empty bigram model over the given vocabulary.
func NewBigram(vocab int) *Bigram {
	return &Bigram{
		vocab:  vocab,
		counts: make([]int, vocab*vocab),
		totals: make([]int, vocab),
		uni:    make([]int, vocab),
	}
}

// Observe adds a sentence's transitions to the counts.
func (b *Bigram) Observe(seq []int) {
	for i := 0; i+1 < len(seq); i++ {
		b.counts[seq[i]*b.vocab+seq[i+1]]++
		b.totals[seq[i]]++
		b.uni[seq[i+1]]++
		b.uniTot++
	}
}

// Predict returns the most likely next token after prev, falling back to the
// global unigram mode when prev was never observed.
func (b *Bigram) Predict(prev int) int {
	best, bi := -1, 0
	if b.totals[prev] > 0 {
		row := b.counts[prev*b.vocab : (prev+1)*b.vocab]
		for i, c := range row {
			if c > best {
				best, bi = c, i
			}
		}
		return bi
	}
	for i, c := range b.uni {
		if c > best {
			best, bi = c, i
		}
	}
	return bi
}

// Evaluate returns top-1 next-token recall over the sequences.
func (b *Bigram) Evaluate(examples []Example) Metrics {
	var met Metrics
	for _, ex := range examples {
		for i := 0; i+1 < len(ex.Seq); i++ {
			if b.Predict(ex.Seq[i]) == ex.Seq[i+1] {
				met.Accuracy++
			}
			met.Count++
		}
	}
	if met.Count > 0 {
		met.Accuracy /= float64(met.Count)
	}
	return met
}
