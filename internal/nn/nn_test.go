package nn

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

// xorExamples is a tiny nonlinearly-separable dataset for the MLP.
func xorExamples() []Example {
	return []Example{
		{X: []float64{0, 0}, Y: 0},
		{X: []float64{0, 1}, Y: 1},
		{X: []float64{1, 0}, Y: 1},
		{X: []float64{1, 1}, Y: 0},
	}
}

// blobs returns two linearly separable Gaussian blobs.
func blobs(n int, seed uint64) []Example {
	rng := tensor.NewRNG(seed)
	exs := make([]Example, 0, 2*n)
	for i := 0; i < n; i++ {
		exs = append(exs,
			Example{X: []float64{2 + 0.5*rng.NormFloat64(), 2 + 0.5*rng.NormFloat64()}, Y: 0},
			Example{X: []float64{-2 + 0.5*rng.NormFloat64(), -2 + 0.5*rng.NormFloat64()}, Y: 1},
		)
	}
	return exs
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Kind: KindLogistic, Features: 2, Classes: 2}, true},
		{Spec{Kind: KindLogistic, Features: 0, Classes: 2}, false},
		{Spec{Kind: KindLogistic, Features: 2, Classes: 1}, false},
		{Spec{Kind: KindMLP, Features: 2, Hidden: 4, Classes: 2}, true},
		{Spec{Kind: KindMLP, Features: 2, Hidden: 0, Classes: 2}, false},
		{Spec{Kind: KindRNNLM, Vocab: 10, Embed: 4, Hidden: 8}, true},
		{Spec{Kind: KindRNNLM, Vocab: 1, Embed: 4, Hidden: 8}, false},
		{Spec{Kind: 99}, false},
		{Spec{}, false},
	}
	for _, c := range cases {
		err := c.spec.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) err=%v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestSpecBuildAllKinds(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: KindLogistic, Features: 3, Classes: 2, Seed: 1},
		{Kind: KindMLP, Features: 3, Hidden: 5, Classes: 2, Seed: 1},
		{Kind: KindRNNLM, Vocab: 7, Embed: 3, Hidden: 4, Seed: 1},
	} {
		m, err := spec.Build()
		if err != nil {
			t.Fatalf("Build(%v): %v", spec.Kind, err)
		}
		if m.NumParams() <= 0 {
			t.Fatalf("%v NumParams = %d", spec.Kind, m.NumParams())
		}
	}
	if _, err := (Spec{Kind: 42}).Build(); err == nil {
		t.Fatal("Build with bad kind should error")
	}
}

func TestSpecBuildDeterministic(t *testing.T) {
	spec := Spec{Kind: KindMLP, Features: 4, Hidden: 6, Classes: 3, Seed: 99}
	a, _ := spec.Build()
	b, _ := spec.Build()
	pa := make(tensor.Vector, a.NumParams())
	pb := make(tensor.Vector, b.NumParams())
	a.ReadParams(pa)
	b.ReadParams(pb)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("same spec+seed must build identical models")
		}
	}
}

func TestReadWriteParamsRoundTrip(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: KindLogistic, Features: 3, Classes: 4, Seed: 2},
		{Kind: KindMLP, Features: 3, Hidden: 5, Classes: 4, Seed: 2},
		{Kind: KindRNNLM, Vocab: 6, Embed: 3, Hidden: 4, Seed: 2},
	} {
		m, _ := spec.Build()
		p := make(tensor.Vector, m.NumParams())
		m.ReadParams(p)
		// Write shifted params, read back, verify.
		q := p.Clone()
		for i := range q {
			q[i] += 1.5
		}
		m.WriteParams(q)
		r := make(tensor.Vector, m.NumParams())
		m.ReadParams(r)
		for i := range r {
			if r[i] != q[i] {
				t.Fatalf("%v: param round-trip mismatch at %d", spec.Kind, i)
			}
		}
	}
}

func TestLogisticLearnsBlobs(t *testing.T) {
	m := NewLogistic(2, 2, 1)
	train := blobs(100, 3)
	for epoch := 0; epoch < 20; epoch++ {
		for i := 0; i < len(train); i += 10 {
			end := min(i+10, len(train))
			m.TrainBatch(train[i:end], 0.1)
		}
	}
	met := m.Evaluate(blobs(50, 4))
	if met.Accuracy < 0.95 {
		t.Fatalf("logistic accuracy = %v, want ≥0.95", met.Accuracy)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	m := NewMLP(2, 8, 2, 5)
	exs := xorExamples()
	for i := 0; i < 3000; i++ {
		m.TrainBatch(exs, 0.3)
	}
	met := m.Evaluate(exs)
	if met.Accuracy != 1 {
		t.Fatalf("MLP XOR accuracy = %v, want 1.0 (loss %v)", met.Accuracy, met.Loss)
	}
}

func TestTrainReducesLoss(t *testing.T) {
	for _, spec := range []Spec{
		{Kind: KindLogistic, Features: 2, Classes: 2, Seed: 7},
		{Kind: KindMLP, Features: 2, Hidden: 6, Classes: 2, Seed: 7},
	} {
		m, _ := spec.Build()
		exs := blobs(50, 8)
		before := m.Evaluate(exs).Loss
		for i := 0; i < 10; i++ {
			m.TrainBatch(exs, 0.05)
		}
		after := m.Evaluate(exs).Loss
		if after >= before {
			t.Errorf("%v: loss %v -> %v, expected decrease", spec.Kind, before, after)
		}
	}
}

// deterministicCorpus builds sentences from a cyclic pattern so the RNN has
// a learnable structure: token i is followed by (i+1) mod vocab.
func deterministicCorpus(vocab, sentences, length int) []Example {
	exs := make([]Example, sentences)
	for s := range exs {
		seq := make([]int, length)
		start := s % vocab
		for i := range seq {
			seq[i] = (start + i) % vocab
		}
		exs[s] = Example{Seq: seq}
	}
	return exs
}

func TestRNNLMLearnsCycle(t *testing.T) {
	vocab := 8
	m := NewRNNLM(vocab, 8, 16, 3)
	corpus := deterministicCorpus(vocab, 16, 6)
	for epoch := 0; epoch < 150; epoch++ {
		m.TrainBatch(corpus, 0.5)
	}
	met := m.Evaluate(corpus)
	if met.Accuracy < 0.95 {
		t.Fatalf("RNN accuracy on deterministic cycle = %v, want ≥0.95 (loss %v)", met.Accuracy, met.Loss)
	}
}

func TestRNNLMEmptySequences(t *testing.T) {
	m := NewRNNLM(4, 2, 3, 1)
	loss := m.TrainBatch([]Example{{Seq: nil}, {Seq: []int{1}}}, 0.1)
	if loss != 0 {
		t.Fatalf("loss on empty sequences = %v, want 0", loss)
	}
	met := m.Evaluate([]Example{{Seq: []int{2}}})
	if met.Count != 0 {
		t.Fatalf("Count = %d, want 0", met.Count)
	}
}

func TestTrainBatchEmpty(t *testing.T) {
	m := NewLogistic(2, 2, 1)
	if loss := m.TrainBatch(nil, 0.1); loss != 0 {
		t.Fatalf("empty batch loss = %v", loss)
	}
}

func TestBigramLearnsTransitions(t *testing.T) {
	b := NewBigram(5)
	// 0->1 twice, 0->2 once: Predict(0) must be 1.
	b.Observe([]int{0, 1})
	b.Observe([]int{0, 1})
	b.Observe([]int{0, 2})
	if got := b.Predict(0); got != 1 {
		t.Fatalf("Predict(0) = %d, want 1", got)
	}
	// Unseen context falls back to the unigram mode (token 1 appeared most).
	if got := b.Predict(4); got != 1 {
		t.Fatalf("Predict(unseen) = %d, want unigram mode 1", got)
	}
}

func TestBigramEvaluate(t *testing.T) {
	b := NewBigram(4)
	b.Observe([]int{0, 1, 2, 3})
	met := b.Evaluate([]Example{{Seq: []int{0, 1, 2, 3}}})
	if met.Count != 3 {
		t.Fatalf("Count = %d, want 3", met.Count)
	}
	if met.Accuracy != 1 {
		t.Fatalf("Accuracy = %v, want 1", met.Accuracy)
	}
}

func TestRNNBeatsRandomQuickly(t *testing.T) {
	vocab := 6
	m := NewRNNLM(vocab, 6, 12, 9)
	corpus := deterministicCorpus(vocab, 12, 5)
	for i := 0; i < 30; i++ {
		m.TrainBatch(corpus, 0.5)
	}
	met := m.Evaluate(corpus)
	if met.Accuracy <= 1.0/float64(vocab) {
		t.Fatalf("RNN after 30 epochs no better than chance: %v", met.Accuracy)
	}
}

func TestGradientCheckLogistic(t *testing.T) {
	// Finite-difference check of the logistic gradient through one
	// TrainBatch step: loss must decrease along the step direction.
	m := NewLogistic(3, 3, 13)
	ex := []Example{{X: []float64{1, -1, 0.5}, Y: 2}}
	p0 := make(tensor.Vector, m.NumParams())
	m.ReadParams(p0)
	l0 := m.Evaluate(ex).Loss
	m.TrainBatch(ex, 0.01)
	l1 := m.Evaluate(ex).Loss
	if l1 >= l0 {
		t.Fatalf("single-example step did not reduce loss: %v -> %v", l0, l1)
	}
	// And the parameters actually moved.
	p1 := make(tensor.Vector, m.NumParams())
	m.ReadParams(p1)
	if d := tensor.Sub(nil, p1, p0); d.Norm2() == 0 {
		t.Fatal("parameters did not change")
	}
}

func TestKindString(t *testing.T) {
	if KindLogistic.String() != "logistic" || KindMLP.String() != "mlp" || KindRNNLM.String() != "rnnlm" {
		t.Fatal("Kind.String mismatch")
	}
	if Kind(250).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMetricsZeroOnEmptyEval(t *testing.T) {
	m := NewMLP(2, 3, 2, 1)
	met := m.Evaluate(nil)
	if met.Count != 0 || met.Loss != 0 || met.Accuracy != 0 || math.IsNaN(met.Loss) {
		t.Fatalf("empty eval = %+v", met)
	}
}
