package nn

import (
	"math"

	"repro/internal/tensor"
)

// Logistic is multiclass softmax regression: logits = W·x + b.
type Logistic struct {
	features, classes int
	w                 *tensor.Matrix // classes × features
	b                 tensor.Vector  // classes

	// scratch buffers reused across steps to avoid per-example allocation
	logits, probs tensor.Vector
}

// NewLogistic returns a softmax-regression model with Glorot-initialized
// weights and zero biases.
func NewLogistic(features, classes int, seed uint64) *Logistic {
	m := &Logistic{
		features: features,
		classes:  classes,
		w:        tensor.NewMatrix(classes, features),
		b:        tensor.NewVector(classes),
		logits:   tensor.NewVector(classes),
		probs:    tensor.NewVector(classes),
	}
	tensor.NewRNG(seed).GlorotInit(m.w)
	return m
}

// NumParams implements Model.
func (m *Logistic) NumParams() int { return m.classes*m.features + m.classes }

// ReadParams implements Model.
func (m *Logistic) ReadParams(dst tensor.Vector) { flatten(dst, m.w.Data, m.b) }

// WriteParams implements Model.
func (m *Logistic) WriteParams(src tensor.Vector) { unflatten(src, m.w.Data, m.b) }

// forward computes class probabilities for x into m.probs.
func (m *Logistic) forward(x []float64) {
	m.w.MulVec(m.logits, x)
	m.logits.Axpy(1, m.b)
	tensor.Softmax(m.probs, m.logits)
}

// TrainBatch implements Model. Gradients are averaged over the batch.
func (m *Logistic) TrainBatch(batch []Example, lr float64) float64 {
	if len(batch) == 0 {
		return 0
	}
	var loss float64
	scale := lr / float64(len(batch))
	for _, ex := range batch {
		m.forward(ex.X)
		p := m.probs[ex.Y]
		loss += -math.Log(math.Max(p, 1e-12))
		// dL/dlogits = probs - onehot(y); apply directly (SGD within batch,
		// which for these convex models matches averaged gradients closely
		// and avoids a gradient accumulation buffer).
		m.probs[ex.Y] -= 1
		m.w.AddOuter(-scale*float64(len(batch)), m.probs, ex.X)
		m.b.Axpy(-scale*float64(len(batch)), m.probs)
	}
	return loss / float64(len(batch))
}

// Evaluate implements Model.
func (m *Logistic) Evaluate(examples []Example) Metrics {
	var met Metrics
	for _, ex := range examples {
		m.forward(ex.X)
		met.Loss += -math.Log(math.Max(m.probs[ex.Y], 1e-12))
		if tensor.Argmax(m.probs) == ex.Y {
			met.Accuracy++
		}
		met.Count++
	}
	if met.Count > 0 {
		met.Loss /= float64(met.Count)
		met.Accuracy /= float64(met.Count)
	}
	return met
}
