package nn

import (
	"math"

	"repro/internal/tensor"
)

// MLP is a one-hidden-layer perceptron with tanh activation:
// h = tanh(W1·x + b1); logits = W2·h + b2.
type MLP struct {
	features, hidden, classes int
	w1                        *tensor.Matrix // hidden × features
	b1                        tensor.Vector
	w2                        *tensor.Matrix // classes × hidden
	b2                        tensor.Vector

	// scratch
	h, logits, probs, dh tensor.Vector
}

// NewMLP returns a Glorot-initialized MLP.
func NewMLP(features, hidden, classes int, seed uint64) *MLP {
	m := &MLP{
		features: features, hidden: hidden, classes: classes,
		w1: tensor.NewMatrix(hidden, features),
		b1: tensor.NewVector(hidden),
		w2: tensor.NewMatrix(classes, hidden),
		b2: tensor.NewVector(classes),
		h:  tensor.NewVector(hidden), logits: tensor.NewVector(classes),
		probs: tensor.NewVector(classes), dh: tensor.NewVector(hidden),
	}
	rng := tensor.NewRNG(seed)
	rng.GlorotInit(m.w1)
	rng.GlorotInit(m.w2)
	return m
}

// NumParams implements Model.
func (m *MLP) NumParams() int {
	return m.hidden*m.features + m.hidden + m.classes*m.hidden + m.classes
}

// ReadParams implements Model.
func (m *MLP) ReadParams(dst tensor.Vector) {
	flatten(dst, m.w1.Data, m.b1, m.w2.Data, m.b2)
}

// WriteParams implements Model.
func (m *MLP) WriteParams(src tensor.Vector) {
	unflatten(src, m.w1.Data, m.b1, m.w2.Data, m.b2)
}

func (m *MLP) forward(x []float64) {
	m.w1.MulVec(m.h, x)
	m.h.Axpy(1, m.b1)
	tensor.Tanh(m.h, m.h)
	m.w2.MulVec(m.logits, m.h)
	m.logits.Axpy(1, m.b2)
	tensor.Softmax(m.probs, m.logits)
}

// TrainBatch implements Model.
func (m *MLP) TrainBatch(batch []Example, lr float64) float64 {
	if len(batch) == 0 {
		return 0
	}
	var loss float64
	for _, ex := range batch {
		m.forward(ex.X)
		loss += -math.Log(math.Max(m.probs[ex.Y], 1e-12))
		// Backprop. dlogits = probs - onehot.
		m.probs[ex.Y] -= 1
		dlogits := m.probs
		// dh = W2ᵀ · dlogits, through tanh.
		m.w2.MulVecT(m.dh, dlogits)
		for i, hv := range m.h {
			m.dh[i] *= tensor.TanhPrimeFromOutput(hv)
		}
		// Parameter updates (per-example SGD).
		m.w2.AddOuter(-lr, dlogits, m.h)
		m.b2.Axpy(-lr, dlogits)
		m.w1.AddOuter(-lr, m.dh, ex.X)
		m.b1.Axpy(-lr, m.dh)
	}
	return loss / float64(len(batch))
}

// Evaluate implements Model.
func (m *MLP) Evaluate(examples []Example) Metrics {
	var met Metrics
	for _, ex := range examples {
		m.forward(ex.X)
		met.Loss += -math.Log(math.Max(m.probs[ex.Y], 1e-12))
		if tensor.Argmax(m.probs) == ex.Y {
			met.Accuracy++
		}
		met.Count++
	}
	if met.Count > 0 {
		met.Loss /= float64(met.Count)
		met.Accuracy /= float64(met.Count)
	}
	return met
}
