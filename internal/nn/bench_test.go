package nn

import (
	"testing"

	"repro/internal/tensor"
)

func benchBatch(features, classes, n int) []Example {
	rng := tensor.NewRNG(1)
	batch := make([]Example, n)
	for i := range batch {
		x := make([]float64, features)
		rng.FillNormal(x, 1)
		batch[i] = Example{X: x, Y: rng.Intn(classes)}
	}
	return batch
}

func BenchmarkLogisticTrainBatch(b *testing.B) {
	m := NewLogistic(64, 16, 1)
	batch := benchBatch(64, 16, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainBatch(batch, 0.05)
	}
}

func BenchmarkMLPTrainBatch(b *testing.B) {
	m := NewMLP(64, 128, 16, 1)
	batch := benchBatch(64, 16, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainBatch(batch, 0.05)
	}
}

func BenchmarkRNNLMTrainBatch(b *testing.B) {
	m := NewRNNLM(64, 16, 32, 1)
	rng := tensor.NewRNG(2)
	batch := make([]Example, 8)
	for i := range batch {
		seq := make([]int, 10)
		for j := range seq {
			seq[j] = rng.Intn(64)
		}
		batch[i] = Example{Seq: seq}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TrainBatch(batch, 0.3)
	}
}

func BenchmarkMLPEvaluate(b *testing.B) {
	m := NewMLP(64, 128, 16, 1)
	batch := benchBatch(64, 16, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Evaluate(batch)
	}
}
