package nn

import (
	"math"

	"repro/internal/tensor"
)

// RNNLM is an Elman recurrent language model for next-word prediction,
// the Gboard workload of Sec. 8:
//
//	e_t     = Embed[x_t]
//	h_t     = tanh(Wxh·e_t + Whh·h_{t-1} + bh)
//	logits  = Why·h_t + by
//	target  = x_{t+1}
//
// Training uses full backpropagation through time over each sentence with
// gradient clipping. Sentences are short (keyboard-style), so BPTT over the
// whole sequence is fine.
type RNNLM struct {
	vocab, embed, hidden int

	emb *tensor.Matrix // vocab × embed
	wxh *tensor.Matrix // hidden × embed
	whh *tensor.Matrix // hidden × hidden
	bh  tensor.Vector
	why *tensor.Matrix // vocab × hidden
	by  tensor.Vector

	// gradient accumulators (BPTT needs them; per-example updates would
	// double-count the recurrent weights)
	gEmb, gWxh, gWhh, gWhy *tensor.Matrix
	gBh, gBy               tensor.Vector

	clip float64
}

// NewRNNLM returns a Glorot-initialized RNN language model with gradient
// clipping at 5.0.
func NewRNNLM(vocab, embed, hidden int, seed uint64) *RNNLM {
	m := &RNNLM{
		vocab: vocab, embed: embed, hidden: hidden,
		emb:  tensor.NewMatrix(vocab, embed),
		wxh:  tensor.NewMatrix(hidden, embed),
		whh:  tensor.NewMatrix(hidden, hidden),
		bh:   tensor.NewVector(hidden),
		why:  tensor.NewMatrix(vocab, hidden),
		by:   tensor.NewVector(vocab),
		gEmb: tensor.NewMatrix(vocab, embed),
		gWxh: tensor.NewMatrix(hidden, embed),
		gWhh: tensor.NewMatrix(hidden, hidden),
		gWhy: tensor.NewMatrix(vocab, hidden),
		gBh:  tensor.NewVector(hidden),
		gBy:  tensor.NewVector(vocab),
		clip: 5.0,
	}
	rng := tensor.NewRNG(seed)
	rng.GlorotInit(m.emb)
	rng.GlorotInit(m.wxh)
	rng.GlorotInit(m.whh)
	rng.GlorotInit(m.why)
	return m
}

// NumParams implements Model.
func (m *RNNLM) NumParams() int {
	return m.vocab*m.embed + m.hidden*m.embed + m.hidden*m.hidden + m.hidden +
		m.vocab*m.hidden + m.vocab
}

// ReadParams implements Model.
func (m *RNNLM) ReadParams(dst tensor.Vector) {
	flatten(dst, m.emb.Data, m.wxh.Data, m.whh.Data, m.bh, m.why.Data, m.by)
}

// WriteParams implements Model.
func (m *RNNLM) WriteParams(src tensor.Vector) {
	unflatten(src, m.emb.Data, m.wxh.Data, m.whh.Data, m.bh, m.why.Data, m.by)
}

// seqLoss runs the forward pass over seq and, when train is true,
// accumulates gradients via BPTT. It returns the summed loss and the number
// of predictions, plus top-1 hits.
func (m *RNNLM) seqLoss(seq []int, train bool) (loss float64, preds, hits int) {
	steps := len(seq) - 1
	if steps <= 0 {
		return 0, 0, 0
	}
	// Forward pass, keeping states for BPTT.
	hs := make([]tensor.Vector, steps+1)
	hs[0] = tensor.NewVector(m.hidden)
	probs := make([]tensor.Vector, steps)
	pre := tensor.NewVector(m.hidden)
	tmp := tensor.NewVector(m.hidden)
	logits := tensor.NewVector(m.vocab)
	for t := 0; t < steps; t++ {
		x := seq[t]
		m.wxh.MulVec(pre, m.emb.Row(x))
		m.whh.MulVec(tmp, hs[t])
		pre.Axpy(1, tmp)
		pre.Axpy(1, m.bh)
		h := tensor.NewVector(m.hidden)
		tensor.Tanh(h, pre)
		hs[t+1] = h

		m.why.MulVec(logits, h)
		logits.Axpy(1, m.by)
		p := tensor.NewVector(m.vocab)
		tensor.Softmax(p, logits)
		probs[t] = p

		y := seq[t+1]
		loss += -math.Log(math.Max(p[y], 1e-12))
		preds++
		if tensor.Argmax(p) == y {
			hits++
		}
	}
	if !train {
		return loss, preds, hits
	}

	// Backward pass (BPTT).
	dhNext := tensor.NewVector(m.hidden)
	dh := tensor.NewVector(m.hidden)
	dpre := tensor.NewVector(m.hidden)
	dEmbRow := tensor.NewVector(m.embed)
	for t := steps - 1; t >= 0; t-- {
		dlogits := probs[t] // reuse as gradient buffer
		dlogits[seq[t+1]] -= 1

		m.gWhy.AddOuter(1, dlogits, hs[t+1])
		m.gBy.Axpy(1, dlogits)

		// dh = Whyᵀ·dlogits + carry from t+1
		m.why.MulVecT(dh, dlogits)
		dh.Axpy(1, dhNext)
		for i, hv := range hs[t+1] {
			dpre[i] = dh[i] * tensor.TanhPrimeFromOutput(hv)
		}

		m.gWxh.AddOuter(1, dpre, m.emb.Row(seq[t]))
		m.gWhh.AddOuter(1, dpre, hs[t])
		m.gBh.Axpy(1, dpre)

		// Gradient into the embedding row: Wxhᵀ·dpre.
		m.wxh.MulVecT(dEmbRow, dpre)
		m.gEmb.Row(seq[t]).Axpy(1, dEmbRow)

		// Carry to previous step: Whhᵀ·dpre.
		m.whh.MulVecT(dhNext, dpre)
	}
	return loss, preds, hits
}

func (m *RNNLM) zeroGrads() {
	m.gEmb.Zero()
	m.gWxh.Zero()
	m.gWhh.Zero()
	m.gWhy.Zero()
	m.gBh.Zero()
	m.gBy.Zero()
}

func (m *RNNLM) applyGrads(lr float64, scale float64) {
	step := -lr * scale
	for _, pair := range []struct {
		p, g tensor.Vector
	}{
		{tensor.Vector(m.emb.Data), tensor.Vector(m.gEmb.Data)},
		{tensor.Vector(m.wxh.Data), tensor.Vector(m.gWxh.Data)},
		{tensor.Vector(m.whh.Data), tensor.Vector(m.gWhh.Data)},
		{m.bh, m.gBh},
		{tensor.Vector(m.why.Data), tensor.Vector(m.gWhy.Data)},
		{m.by, m.gBy},
	} {
		tensor.Clip(pair.g, m.clip/math.Max(scale, 1e-12))
		pair.p.Axpy(step, pair.g)
	}
}

// TrainBatch implements Model. The batch gradient is the mean over all
// next-token predictions in the batch.
func (m *RNNLM) TrainBatch(batch []Example, lr float64) float64 {
	m.zeroGrads()
	var loss float64
	var preds int
	for _, ex := range batch {
		l, p, _ := m.seqLoss(ex.Seq, true)
		loss += l
		preds += p
	}
	if preds == 0 {
		return 0
	}
	m.applyGrads(lr, 1/float64(preds))
	return loss / float64(preds)
}

// Evaluate implements Model. Accuracy is top-1 recall over next-token
// predictions, the metric reported for the Gboard model.
func (m *RNNLM) Evaluate(examples []Example) Metrics {
	var met Metrics
	for _, ex := range examples {
		l, p, h := m.seqLoss(ex.Seq, false)
		met.Loss += l
		met.Count += p
		met.Accuracy += float64(h)
	}
	if met.Count > 0 {
		met.Loss /= float64(met.Count)
		met.Accuracy /= float64(met.Count)
	}
	return met
}
