// Package nn is the neural-network substrate standing in for TensorFlow in
// the original system. It provides small models (softmax regression, MLP,
// and a recurrent language model) with a uniform parameter-vector interface,
// which is exactly the contract the FL protocol needs: checkpoints and
// updates are flat vectors, and an FL plan carries a Spec from which the
// device reconstructs the model.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Example is one training or evaluation example. Dense models use X and Y;
// sequence models use Seq, where the training target at position i is
// Seq[i+1] (next-token prediction).
type Example struct {
	X   []float64 // dense features
	Seq []int     // token sequence for language models
	Y   int       // class label for dense models
}

// Metrics summarizes evaluation over a set of examples.
type Metrics struct {
	Loss     float64 // mean cross-entropy
	Accuracy float64 // top-1 accuracy (recall@1 for LMs)
	Count    int     // number of predictions scored
}

// Model is a trainable parametric model with a flat parameter vector.
//
// ReadParams/WriteParams copy the full parameter vector out of / into the
// model; the FL runtime uses them to load a global checkpoint before local
// training and to extract the locally trained weights afterwards.
type Model interface {
	// NumParams returns the length of the flat parameter vector.
	NumParams() int
	// ReadParams copies the parameters into dst, which must have length
	// NumParams.
	ReadParams(dst tensor.Vector)
	// WriteParams copies src, which must have length NumParams, into the
	// model parameters.
	WriteParams(src tensor.Vector)
	// TrainBatch performs one SGD step on the batch with learning rate lr
	// and returns the mean loss over the batch before the update.
	TrainBatch(batch []Example, lr float64) float64
	// Evaluate scores the examples without updating parameters.
	Evaluate(examples []Example) Metrics
}

// Kind identifies a model architecture in a Spec.
type Kind uint8

// Model architectures available to FL plans.
const (
	KindLogistic Kind = iota + 1 // multiclass softmax regression
	KindMLP                      // one-hidden-layer tanh MLP
	KindRNNLM                    // Elman RNN language model
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindLogistic:
		return "logistic"
	case KindMLP:
		return "mlp"
	case KindRNNLM:
		return "rnnlm"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Spec describes a model architecture so it can be embedded in an FL plan
// and reconstructed identically on every device. Seed makes initialization
// deterministic; the server initializes the global model from the same spec.
type Spec struct {
	Kind     Kind
	Features int // input dimension (logistic, MLP)
	Hidden   int // hidden units (MLP, RNN)
	Classes  int // output classes (logistic, MLP)
	Vocab    int // vocabulary size (RNN LM)
	Embed    int // embedding dimension (RNN LM)
	Seed     uint64
}

// Validate reports whether the spec describes a constructible model.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindLogistic:
		if s.Features <= 0 || s.Classes <= 1 {
			return fmt.Errorf("nn: logistic spec needs Features>0 and Classes>1, got %d/%d", s.Features, s.Classes)
		}
	case KindMLP:
		if s.Features <= 0 || s.Hidden <= 0 || s.Classes <= 1 {
			return fmt.Errorf("nn: mlp spec needs Features>0, Hidden>0, Classes>1, got %d/%d/%d", s.Features, s.Hidden, s.Classes)
		}
	case KindRNNLM:
		if s.Vocab <= 1 || s.Embed <= 0 || s.Hidden <= 0 {
			return fmt.Errorf("nn: rnnlm spec needs Vocab>1, Embed>0, Hidden>0, got %d/%d/%d", s.Vocab, s.Embed, s.Hidden)
		}
	default:
		return fmt.Errorf("nn: unknown model kind %v", s.Kind)
	}
	return nil
}

// Build constructs a freshly initialized model from the spec.
func (s Spec) Build() (Model, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	switch s.Kind {
	case KindLogistic:
		return NewLogistic(s.Features, s.Classes, s.Seed), nil
	case KindMLP:
		return NewMLP(s.Features, s.Hidden, s.Classes, s.Seed), nil
	case KindRNNLM:
		return NewRNNLM(s.Vocab, s.Embed, s.Hidden, s.Seed), nil
	default:
		return nil, fmt.Errorf("nn: unknown model kind %v", s.Kind)
	}
}

// flatten copies a list of parameter blocks into dst sequentially.
func flatten(dst tensor.Vector, blocks ...[]float64) {
	i := 0
	for _, b := range blocks {
		copy(dst[i:i+len(b)], b)
		i += len(b)
	}
	if i != len(dst) {
		panic(fmt.Sprintf("nn: flatten wrote %d of %d values", i, len(dst)))
	}
}

// unflatten copies src sequentially into a list of parameter blocks.
func unflatten(src tensor.Vector, blocks ...[]float64) {
	i := 0
	for _, b := range blocks {
		copy(b, src[i:i+len(b)])
		i += len(b)
	}
	if i != len(src) {
		panic(fmt.Sprintf("nn: unflatten read %d of %d values", i, len(src)))
	}
}
