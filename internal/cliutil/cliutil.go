// Package cliutil holds small flag helpers shared by the command-line
// binaries, so cmd/flserver and cmd/fldevices parse identical flag syntax
// into identical population sets.
package cliutil

import "strings"

// ListFlag collects repeatable, comma-separated flag values:
//
//	-population a,b -population c  →  [a b c]
//
// It implements flag.Value.
type ListFlag []string

// String implements flag.Value.
func (l *ListFlag) String() string { return strings.Join(*l, ",") }

// Set implements flag.Value.
func (l *ListFlag) Set(v string) error {
	for _, name := range strings.Split(v, ",") {
		if name = strings.TrimSpace(name); name != "" {
			*l = append(*l, name)
		}
	}
	return nil
}
