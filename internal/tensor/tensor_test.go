package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Fatalf("At(1,2) = %v, want 7", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %v, want 0", got)
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	x := Vector{1, 0, -1}
	dst := NewVector(2)
	m.MulVec(dst, x)
	if dst[0] != -2 || dst[1] != -2 {
		t.Fatalf("MulVec = %v, want [-2 -2]", dst)
	}
}

func TestMulVecT(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	x := Vector{1, -1}
	dst := NewVector(3)
	m.MulVecT(dst, x)
	want := Vector{-3, -3, -3}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecT = %v, want %v", dst, want)
		}
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2, 2)
	m.AddOuter(2, Vector{1, 2}, Vector{3, 4})
	want := []float64{6, 8, 12, 16}
	for i, w := range want {
		if m.Data[i] != w {
			t.Fatalf("AddOuter data = %v, want %v", m.Data, want)
		}
	}
}

func TestRowIsView(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row must return a view into the matrix")
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	x := Vector{1, 2, 3, 4}
	dst := NewVector(4)
	Softmax(dst, x)
	var sum float64
	for _, v := range dst {
		if v <= 0 {
			t.Fatalf("softmax produced non-positive %v", v)
		}
		sum += v
	}
	if !almostEqual(sum, 1, 1e-12) {
		t.Fatalf("softmax sum = %v, want 1", sum)
	}
	if Argmax(dst) != 3 {
		t.Fatalf("softmax argmax = %d, want 3", Argmax(dst))
	}
}

func TestSoftmaxStability(t *testing.T) {
	x := Vector{1000, 1001, 1002}
	dst := NewVector(3)
	Softmax(dst, x)
	for _, v := range dst {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax not stable for large inputs: %v", dst)
		}
	}
}

func TestArgmaxEmpty(t *testing.T) {
	if Argmax(nil) != -1 {
		t.Fatal("Argmax(nil) should be -1")
	}
}

func TestAxpyDotNorm(t *testing.T) {
	v := Vector{1, 2}
	v.Axpy(3, Vector{1, 1})
	if v[0] != 4 || v[1] != 5 {
		t.Fatalf("Axpy = %v", v)
	}
	if got := v.Dot(Vector{1, 0}); got != 4 {
		t.Fatalf("Dot = %v", got)
	}
	u := Vector{3, 4}
	if !almostEqual(u.Norm2(), 5, 1e-12) {
		t.Fatalf("Norm2 = %v, want 5", u.Norm2())
	}
}

func TestSubAllocates(t *testing.T) {
	d := Sub(nil, Vector{3, 3}, Vector{1, 2})
	if d[0] != 2 || d[1] != 1 {
		t.Fatalf("Sub = %v", d)
	}
}

func TestClip(t *testing.T) {
	v := Vector{-10, 0.5, 10}
	Clip(v, 1)
	if v[0] != -1 || v[1] != 0.5 || v[2] != 1 {
		t.Fatalf("Clip = %v", v)
	}
}

func TestShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	m := NewMatrix(2, 2)
	m.MulVec(NewVector(2), NewVector(3))
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	if NewRNG(1).Uint64() == NewRNG(2).Uint64() {
		t.Fatal("different seeds should diverge")
	}
}

func TestRNGDeriveIndependent(t *testing.T) {
	r := NewRNG(7)
	d1 := r.Derive(1)
	d2 := r.Derive(2)
	if d1.Uint64() == d2.Uint64() {
		t.Fatal("derived streams should differ")
	}
	// Deriving must not perturb the parent stream.
	r2 := NewRNG(7)
	if r.Uint64() != r2.Uint64() {
		t.Fatal("Derive must not advance the parent")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(11)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestGlorotInitBounds(t *testing.T) {
	r := NewRNG(9)
	m := NewMatrix(10, 20)
	r.GlorotInit(m)
	limit := math.Sqrt(6.0 / 30.0)
	for _, v := range m.Data {
		if v < -limit || v > limit {
			t.Fatalf("glorot value %v outside ±%v", v, limit)
		}
	}
}

// Property: softmax is invariant to adding a constant to all logits.
func TestSoftmaxShiftInvariance(t *testing.T) {
	f := func(a, b, c float64, shift float64) bool {
		for _, v := range []float64{a, b, c, shift} {
			if math.IsNaN(v) || math.Abs(v) > 100 {
				return true // skip pathological inputs
			}
		}
		x := Vector{a, b, c}
		y := Vector{a + shift, b + shift, c + shift}
		sx, sy := NewVector(3), NewVector(3)
		Softmax(sx, x)
		Softmax(sy, y)
		for i := range sx {
			if !almostEqual(sx[i], sy[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: dot product is symmetric and bilinear in the first argument.
func TestDotProperties(t *testing.T) {
	f := func(a1, a2, b1, b2, k float64) bool {
		for _, v := range []float64{a1, a2, b1, b2, k} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return true
			}
		}
		a := Vector{a1, a2}
		b := Vector{b1, b2}
		if !almostEqual(a.Dot(b), b.Dot(a), 1e-6) {
			return false
		}
		ka := a.Clone()
		ka.Scale(k)
		return almostEqual(ka.Dot(b), k*a.Dot(b), 1e-3*(1+math.Abs(k*a.Dot(b))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: MulVecT is the adjoint of MulVec: ⟨Mx, y⟩ = ⟨x, Mᵀy⟩.
func TestMulVecAdjoint(t *testing.T) {
	r := NewRNG(17)
	for trial := 0; trial < 50; trial++ {
		rows, cols := 1+r.Intn(8), 1+r.Intn(8)
		m := NewMatrix(rows, cols)
		r.FillNormal(Vector(m.Data), 1)
		x, y := NewVector(cols), NewVector(rows)
		r.FillNormal(x, 1)
		r.FillNormal(y, 1)
		mx := NewVector(rows)
		m.MulVec(mx, x)
		mty := NewVector(cols)
		m.MulVecT(mty, y)
		if !almostEqual(mx.Dot(y), x.Dot(mty), 1e-9*(1+math.Abs(mx.Dot(y)))) {
			t.Fatalf("adjoint property failed: %v vs %v", mx.Dot(y), x.Dot(mty))
		}
	}
}

func TestRelu(t *testing.T) {
	v := Vector{-1, 0, 2.5}
	Relu(v, v)
	if v[0] != 0 || v[1] != 0 || v[2] != 2.5 {
		t.Fatalf("Relu = %v", v)
	}
}

func TestExpFloat64Positive(t *testing.T) {
	r := NewRNG(5)
	var sum float64
	for i := 0; i < 5000; i++ {
		x := r.ExpFloat64()
		if x < 0 {
			t.Fatalf("exponential variate %v < 0", x)
		}
		sum += x
	}
	mean := sum / 5000
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("exponential mean = %v, want ≈ 1", mean)
	}
}

func TestVectorScaleZero(t *testing.T) {
	v := Vector{1, 2}
	v.Scale(0)
	if v[0] != 0 || v[1] != 0 {
		t.Fatalf("Scale(0) = %v", v)
	}
}
