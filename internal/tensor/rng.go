package tensor

import "math"

// RNG is a small deterministic pseudo-random generator (splitmix64 core,
// xoshiro-style output) used for reproducible weight initialization and
// synthetic data generation. We avoid math/rand so that simulations are
// bit-reproducible across Go versions and so that per-device streams can be
// derived cheaply from (seed, deviceID) pairs.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{state: seed}
	// Warm up so nearby seeds diverge immediately.
	r.Uint64()
	r.Uint64()
	return r
}

// Derive returns a new independent generator derived from r and the given
// stream identifier, without perturbing r's own sequence.
func (r *RNG) Derive(stream uint64) *RNG {
	return NewRNG(r.state ^ (stream*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate (Box–Muller).
func (r *RNG) NormFloat64() float64 {
	// Rejection-free Box–Muller; u1 in (0,1] to avoid log(0).
	u1 := 1 - r.Float64()
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// LogNormal returns exp(mu + sigma·Z) for standard normal Z. Device speed
// heterogeneity in the population model is lognormal.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// FillNormal fills v with N(0, std²) variates.
func (r *RNG) FillNormal(v Vector, std float64) {
	for i := range v {
		v[i] = std * r.NormFloat64()
	}
}

// GlorotInit fills the matrix with the Glorot/Xavier uniform initialization
// appropriate for a fanIn×fanOut dense layer.
func (r *RNG) GlorotInit(m *Matrix) {
	limit := math.Sqrt(6.0 / float64(m.Rows+m.Cols))
	for i := range m.Data {
		m.Data[i] = (2*r.Float64() - 1) * limit
	}
}
