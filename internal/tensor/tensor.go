// Package tensor provides the small dense linear-algebra kernels used by
// the neural-network substrate. Everything operates on float64 slices and
// row-major matrices; there are no external dependencies.
//
// The package exists so the rest of the system (checkpoints, plans,
// aggregation) can treat model parameters as flat vectors, which is exactly
// how the FL protocol ships them.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %d×%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets every element to zero.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes dst = m · x. dst must have length m.Rows and x length m.Cols.
func (m *Matrix) MulVec(dst, x Vector) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("tensor: MulVec shape mismatch: %d×%d · %d -> %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MulVecT computes dst = mᵀ · x. dst must have length m.Cols and x length m.Rows.
func (m *Matrix) MulVecT(dst, x Vector) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("tensor: MulVecT shape mismatch: %d×%d ᵀ· %d -> %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			dst[j] += v * xi
		}
	}
}

// AddOuter accumulates m += scale · (a ⊗ b), the rank-1 update used by
// dense-layer backprop. a must have length m.Rows, b length m.Cols.
func (m *Matrix) AddOuter(scale float64, a, b Vector) {
	if len(a) != m.Rows || len(b) != m.Cols {
		panic(fmt.Sprintf("tensor: AddOuter shape mismatch: %d×%d += %d⊗%d", m.Rows, m.Cols, len(a), len(b)))
	}
	for i := 0; i < m.Rows; i++ {
		s := scale * a[i]
		if s == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j := range row {
			row[j] += s * b[j]
		}
	}
}

// NewVector allocates a zeroed vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Zero sets every element to zero.
func (v Vector) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Axpy computes v += alpha · x.
func (v Vector) Axpy(alpha float64, x Vector) {
	if len(v) != len(x) {
		panic(fmt.Sprintf("tensor: Axpy length mismatch %d vs %d", len(v), len(x)))
	}
	for i := range v {
		v[i] += alpha * x[i]
	}
}

// Scale computes v *= alpha.
func (v Vector) Scale(alpha float64) {
	for i := range v {
		v[i] *= alpha
	}
}

// Dot returns the inner product of v and x.
func (v Vector) Dot(x Vector) float64 {
	if len(v) != len(x) {
		panic(fmt.Sprintf("tensor: Dot length mismatch %d vs %d", len(v), len(x)))
	}
	var s float64
	for i := range v {
		s += v[i] * x[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// Sub computes dst = a - b and returns dst (allocating when dst is nil).
func Sub(dst, a, b Vector) Vector {
	if len(a) != len(b) {
		panic(fmt.Sprintf("tensor: Sub length mismatch %d vs %d", len(a), len(b)))
	}
	if dst == nil {
		dst = make(Vector, len(a))
	}
	for i := range a {
		dst[i] = a[i] - b[i]
	}
	return dst
}

// Argmax returns the index of the largest element; -1 for an empty vector.
func Argmax(v Vector) int {
	if len(v) == 0 {
		return -1
	}
	best, bi := v[0], 0
	for i, x := range v[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}

// Softmax writes the softmax of x into dst (which may alias x) using the
// max-subtraction trick for numerical stability.
func Softmax(dst, x Vector) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("tensor: Softmax length mismatch %d vs %d", len(dst), len(x)))
	}
	if len(x) == 0 {
		return
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(v - m)
		dst[i] = e
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] *= inv
	}
}

// Tanh applies tanh element-wise, writing into dst (may alias x).
func Tanh(dst, x Vector) {
	for i, v := range x {
		dst[i] = math.Tanh(v)
	}
}

// TanhPrimeFromOutput returns the derivative of tanh given the tanh output y:
// d/dx tanh(x) = 1 - y².
func TanhPrimeFromOutput(y float64) float64 { return 1 - y*y }

// Relu applies max(0, x) element-wise, writing into dst (may alias x).
func Relu(dst, x Vector) {
	for i, v := range x {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// Clip bounds every element of v to [-c, c]. Used for gradient clipping in
// the RNN language model.
func Clip(v Vector, c float64) {
	for i, x := range v {
		if x > c {
			v[i] = c
		} else if x < -c {
			v[i] = -c
		}
	}
}
