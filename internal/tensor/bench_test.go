package tensor

import "testing"

func benchMatrix(rows, cols int) (*Matrix, Vector, Vector) {
	rng := NewRNG(1)
	m := NewMatrix(rows, cols)
	rng.FillNormal(Vector(m.Data), 1)
	x := NewVector(cols)
	rng.FillNormal(x, 1)
	return m, x, NewVector(rows)
}

func BenchmarkMulVec(b *testing.B) {
	m, x, dst := benchMatrix(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MulVec(dst, x)
	}
}

func BenchmarkMulVecT(b *testing.B) {
	m, _, y := benchMatrix(256, 256)
	rng := NewRNG(2)
	rng.FillNormal(y, 1)
	dst := NewVector(256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.MulVecT(dst, y)
	}
}

func BenchmarkAddOuter(b *testing.B) {
	m, x, y := benchMatrix(256, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.AddOuter(0.01, y, x)
	}
}

func BenchmarkSoftmax(b *testing.B) {
	rng := NewRNG(3)
	x := NewVector(1024)
	rng.FillNormal(x, 3)
	dst := NewVector(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Softmax(dst, x)
	}
}

func BenchmarkRNGNormal(b *testing.B) {
	rng := NewRNG(4)
	for i := 0; i < b.N; i++ {
		rng.NormFloat64()
	}
}
