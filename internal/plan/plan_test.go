package plan

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/nn"
)

func testConfig() Config {
	return Config{
		TaskID:        "pop/train-1",
		Population:    "pop",
		Model:         nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 2, Seed: 1},
		StoreName:     "clicks",
		BatchSize:     10,
		Epochs:        1,
		LearningRate:  0.1,
		TargetDevices: 100,
	}
}

func TestGenerateDefaults(t *testing.T) {
	p, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Server.OverSelectFactor != 1.3 {
		t.Errorf("OverSelectFactor = %v, want 1.3", p.Server.OverSelectFactor)
	}
	if p.Server.MinReportFraction != 0.8 {
		t.Errorf("MinReportFraction = %v, want 0.8", p.Server.MinReportFraction)
	}
	if p.Device.ReportEncoding != checkpoint.EncodingQuant8 {
		t.Errorf("ReportEncoding = %v, want Quant8", p.Device.ReportEncoding)
	}
	if p.Type != TaskTrain {
		t.Errorf("Type = %v, want train", p.Type)
	}
	if p.Server.ParticipationCap != p.Server.ReportTimeout {
		t.Errorf("ParticipationCap should default to ReportTimeout")
	}
	if p.Device.MinRuntimeVersion != 1 {
		t.Errorf("MinRuntimeVersion = %d, want 1", p.Device.MinRuntimeVersion)
	}
}

func TestSelectTargetIs130Percent(t *testing.T) {
	p, _ := Generate(testConfig())
	if got := p.Server.SelectTarget(); got != 130 {
		t.Fatalf("SelectTarget = %d, want 130", got)
	}
	if got := p.Server.MinReports(); got != 80 {
		t.Fatalf("MinReports = %d, want 80", got)
	}
}

func TestSelectTargetNeverBelowK(t *testing.T) {
	s := ServerPlan{TargetDevices: 10, OverSelectFactor: 1.0, MinReportFraction: 0.01}
	if s.SelectTarget() < 10 {
		t.Fatal("SelectTarget below K")
	}
	if s.MinReports() < 1 {
		t.Fatal("MinReports below 1")
	}
	s2 := ServerPlan{TargetDevices: 5, OverSelectFactor: 1.3, MinReportFraction: 1}
	if s2.MinReports() != 5 {
		t.Fatalf("MinReports = %d, want 5", s2.MinReports())
	}
}

func TestGenerateEvalPlan(t *testing.T) {
	cfg := testConfig()
	cfg.Type = TaskEval
	cfg.BatchSize, cfg.Epochs, cfg.LearningRate = 0, 0, 0
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range p.Device.Ops {
		if op == OpTrain || op == OpSaveUpdate || op == OpFusedTrainMetrics {
			t.Fatalf("eval plan contains training op %v", op)
		}
	}
}

func TestGenerateSecureAggregation(t *testing.T) {
	cfg := testConfig()
	cfg.SecureAggregation = true
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Server.Aggregation != AggregationSecure {
		t.Fatal("aggregation should be secure")
	}
	if p.Server.SecAggGroupSize != 16 {
		t.Fatalf("SecAggGroupSize default = %d, want 16", p.Server.SecAggGroupSize)
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	good, _ := Generate(testConfig())

	mutations := map[string]func(p *Plan){
		"empty id":          func(p *Plan) { p.ID = "" },
		"empty population":  func(p *Plan) { p.Population = "" },
		"bad model":         func(p *Plan) { p.Device.Model.Classes = 0 },
		"no ops":            func(p *Plan) { p.Device.Ops = nil },
		"no load first":     func(p *Plan) { p.Device.Ops = []Op{OpTrain, OpSaveUpdate} },
		"no save last":      func(p *Plan) { p.Device.Ops = []Op{OpLoadCheckpoint, OpTrain} },
		"zero batch":        func(p *Plan) { p.Device.BatchSize = 0 },
		"zero target":       func(p *Plan) { p.Server.TargetDevices = 0 },
		"underselect":       func(p *Plan) { p.Server.OverSelectFactor = 0.5 },
		"bad min fraction":  func(p *Plan) { p.Server.MinReportFraction = 0 },
		"secagg tiny group": func(p *Plan) { p.Server.Aggregation = AggregationSecure; p.Server.SecAggGroupSize = 1 },
	}
	for name, mutate := range mutations {
		p := *good
		p.Device = good.Device
		p.Device.Ops = append([]Op(nil), good.Device.Ops...)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate should fail", name)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	p, _ := Generate(testConfig())
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != p.ID || got.Population != p.Population || len(got.Device.Ops) != len(p.Device.Ops) {
		t.Fatalf("round-trip mismatch: %+v vs %+v", got, p)
	}
	if got.Server.TargetDevices != p.Server.TargetDevices {
		t.Fatal("server plan lost in round-trip")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not a plan")); err == nil {
		t.Fatal("expected error")
	}
}

func TestWireSizeScalesWithModel(t *testing.T) {
	small, _ := Generate(testConfig())
	bigCfg := testConfig()
	bigCfg.Model = nn.Spec{Kind: nn.KindMLP, Features: 100, Hidden: 200, Classes: 10, Seed: 1}
	big, _ := Generate(bigCfg)
	if big.WireSize() <= small.WireSize() {
		t.Fatalf("plan wire size should scale with model: %d vs %d", big.WireSize(), small.WireSize())
	}
}

func TestFusedOpsRequireNewRuntime(t *testing.T) {
	cfg := testConfig()
	cfg.UseFusedOps = true
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Device.MinRuntimeVersion != 3 {
		t.Fatalf("fused plan MinRuntimeVersion = %d, want 3", p.Device.MinRuntimeVersion)
	}
}

func TestForVersionIdentityWhenCompatible(t *testing.T) {
	p, _ := Generate(testConfig())
	q, err := p.ForVersion(5)
	if err != nil {
		t.Fatal(err)
	}
	if q != p {
		t.Fatal("compatible plan should be returned unchanged")
	}
}

func TestForVersionRewritesFusedOp(t *testing.T) {
	cfg := testConfig()
	cfg.UseFusedOps = true
	p, _ := Generate(cfg)
	q, err := p.ForVersion(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Op{OpLoadCheckpoint, OpSelectExamples, OpTrain, OpComputeMetrics, OpSaveUpdate}
	if len(q.Device.Ops) != len(want) {
		t.Fatalf("rewritten ops = %v, want %v", q.Device.Ops, want)
	}
	for i := range want {
		if q.Device.Ops[i] != want[i] {
			t.Fatalf("rewritten ops = %v, want %v", q.Device.Ops, want)
		}
	}
	if q.Device.MinRuntimeVersion != 1 {
		t.Fatalf("rewritten MinRuntimeVersion = %d, want 1", q.Device.MinRuntimeVersion)
	}
	// Original untouched.
	if p.Device.Ops[2] != OpFusedTrainMetrics {
		t.Fatal("ForVersion must not mutate the source plan")
	}
}

func TestForVersionSemanticEquivalence(t *testing.T) {
	// "Versioned and unversioned plans must pass the same release tests" —
	// the op multiset after rewriting must cover the same computation.
	cfg := testConfig()
	cfg.UseFusedOps = true
	p, _ := Generate(cfg)
	q, _ := p.ForVersion(1)
	if err := q.Validate(); err != nil {
		t.Fatalf("versioned plan invalid: %v", err)
	}
	if q.Type != p.Type || q.Device.Epochs != p.Device.Epochs || q.Device.LearningRate != p.Device.LearningRate {
		t.Fatal("versioning must not change hyperparameters")
	}
}

func TestForVersionImpossible(t *testing.T) {
	cfg := testConfig()
	cfg.UseFusedOps = true
	p, _ := Generate(cfg)
	if _, err := p.ForVersion(0); err == nil {
		t.Fatal("version 0 supports nothing; expected error")
	}
}

func TestForVersionRewriteChainSubstituteTooNew(t *testing.T) {
	// A rewrite exists for the fused op, but the substitute ops it produces
	// are THEMSELVES newer than the target version ("a slightly smaller
	// number that cannot be fixed without complex workarounds"): ForVersion
	// must fail on the substitute check, not emit an unexecutable plan. The
	// plan is hand-built so the fused op is the first op encountered.
	p := &Plan{
		ID: "pop/chain", Population: "pop", Type: TaskTrain,
		Device: DevicePlan{
			Ops:               []Op{OpFusedTrainMetrics},
			MinRuntimeVersion: 3,
		},
	}
	_, err := p.ForVersion(0)
	if err == nil {
		t.Fatal("rewrite whose substitutes are too new must fail")
	}
	// The failure must blame the substitute op, proving the chain was
	// followed into the rewrite rather than rejected at the fused op.
	if !strings.Contains(err.Error(), "rewrite of fused_train_metrics") ||
		!strings.Contains(err.Error(), "train") {
		t.Fatalf("error must name the unsupported substitute op: %v", err)
	}
}

func TestForVersionIdempotent(t *testing.T) {
	// Lowering an already-lowered plan must be the identity: the rewritten
	// op sequence satisfies the target version, so no second rewrite (and
	// no drift) can occur no matter how often ForVersion runs.
	cfg := testConfig()
	cfg.UseFusedOps = true
	p, _ := Generate(cfg)
	q1, err := p.ForVersion(1)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := q1.ForVersion(1)
	if err != nil {
		t.Fatal(err)
	}
	if q2 != q1 {
		t.Fatal("ForVersion on an already-lowered plan must return it unchanged")
	}
	// A higher-but-still-satisfied version is also the identity.
	q3, err := q1.ForVersion(2)
	if err != nil {
		t.Fatal(err)
	}
	if q3 != q1 {
		t.Fatal("ForVersion above the lowered plan's requirement must be the identity")
	}
	// And repeated lowering from the source converges to the same ops.
	q4, err := p.ForVersion(1)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(q4.Device.Ops) != fmt.Sprint(q1.Device.Ops) ||
		q4.Device.MinRuntimeVersion != q1.Device.MinRuntimeVersion {
		t.Fatalf("repeated lowering diverged: %v vs %v", q4.Device.Ops, q1.Device.Ops)
	}
}

func TestStringers(t *testing.T) {
	for op := OpLoadCheckpoint; op <= OpFusedTrainMetrics; op++ {
		if op.String() == "" {
			t.Fatalf("empty string for op %d", op)
		}
	}
	if Op(200).String() == "" || TaskTrain.String() != "train" || TaskEval.String() != "eval" {
		t.Fatal("stringer mismatch")
	}
	if AggregationSimple.String() != "simple" || AggregationSecure.String() != "secagg" {
		t.Fatal("aggregation stringer mismatch")
	}
}

func TestGenerateTimeoutsDefaulted(t *testing.T) {
	p, _ := Generate(testConfig())
	if p.Server.SelectionTimeout != 2*time.Minute || p.Server.ReportTimeout != 3*time.Minute {
		t.Fatalf("default timeouts: %v / %v", p.Server.SelectionTimeout, p.Server.ReportTimeout)
	}
}

// Property: any generated training plan lowered to any supported runtime
// version still validates and preserves its hyperparameters.
func TestForVersionProperty(t *testing.T) {
	for _, fused := range []bool{false, true} {
		for lr := 1; lr <= 3; lr++ {
			cfg := testConfig()
			cfg.UseFusedOps = fused
			cfg.LearningRate = float64(lr) / 10
			p, err := Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for v := 1; v <= 4; v++ {
				q, err := p.ForVersion(v)
				if err != nil {
					t.Fatalf("fused=%v v=%d: %v", fused, v, err)
				}
				if err := q.Validate(); err != nil {
					t.Fatalf("lowered plan invalid: %v", err)
				}
				if q.Device.MinRuntimeVersion > v {
					t.Fatalf("lowered plan still requires %d > %d", q.Device.MinRuntimeVersion, v)
				}
				if q.Device.LearningRate != p.Device.LearningRate || q.Device.Epochs != p.Device.Epochs {
					t.Fatal("hyperparameters changed by versioning")
				}
			}
		}
	}
}
