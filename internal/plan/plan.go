// Package plan implements FL plans (Sec. 2.1, 7.2): the data structure that
// tells a device what computation to run and the server how to aggregate.
// A plan has a device portion (model spec, example selection criteria,
// batching/epochs, an op sequence standing in for the TensorFlow graph) and
// a server portion (aggregation logic and round parameters).
//
// Plans are generated from a model + configuration (Generate), and can be
// transformed into versioned plans compatible with older device runtimes
// (Sec. 7.3), mirroring the paper's graph-transformation approach.
package plan

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/nn"
)

// Op is one step of the device-side computation. The sequence of ops is the
// stand-in for the TensorFlow graph: the device runtime interprets them in
// order, and plan versioning rewrites them (see versions.go).
type Op uint8

// Device-plan operations.
const (
	OpLoadCheckpoint Op = iota + 1 // restore global model into the runtime
	OpSelectExamples               // query the example store per criteria
	OpTrain                        // run E epochs of minibatch SGD
	OpEval                         // compute metrics on held-out local data
	OpComputeMetrics               // summarize training metrics
	OpSaveUpdate                   // emit the weighted model delta
	// OpFusedTrainMetrics is a newer fused op (train + metrics in one pass)
	// that old runtimes do not support; versioned plan transformation
	// rewrites it to OpTrain + OpComputeMetrics.
	OpFusedTrainMetrics
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpLoadCheckpoint:
		return "load_checkpoint"
	case OpSelectExamples:
		return "select_examples"
	case OpTrain:
		return "train"
	case OpEval:
		return "eval"
	case OpComputeMetrics:
		return "compute_metrics"
	case OpSaveUpdate:
		return "save_update"
	case OpFusedTrainMetrics:
		return "fused_train_metrics"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// TaskType distinguishes training tasks from evaluation tasks (Sec. 3:
// "FL plans are not specialized to training, but can also encode evaluation
// tasks").
type TaskType uint8

// Task types.
const (
	TaskTrain TaskType = iota + 1
	TaskEval
)

// String implements fmt.Stringer.
func (t TaskType) String() string {
	if t == TaskEval {
		return "eval"
	}
	return "train"
}

// SelectionCriteria tells the device which examples to query from its
// example store (Sec. 7.2: "selection criteria for training data in the
// example store").
type SelectionCriteria struct {
	StoreName   string
	MaxExamples int           // cap on examples used per round
	MaxAge      time.Duration // ignore examples older than this (0 = no limit)
}

// DevicePlan is the device portion of an FL plan.
type DevicePlan struct {
	Model        nn.Spec
	Ops          []Op
	Selection    SelectionCriteria
	BatchSize    int
	Epochs       int
	LearningRate float64
	// ReportEncoding is how the device encodes its update (updates are more
	// compressible than the global model, Fig. 9).
	ReportEncoding checkpoint.Encoding
	// MinRuntimeVersion is the oldest device runtime that can execute this
	// op sequence.
	MinRuntimeVersion int
	// ClipNorm, when positive, makes the device clip its update so the
	// per-example-average delta has L2 norm at most ClipNorm before
	// reporting (fedavg.ClipUpdate semantics). Generate mirrors
	// Server.Robust.ClipNorm here for norm_bound tasks: under secure
	// aggregation the server never sees individual updates, so client-side
	// clipping is the only place the bound can be enforced for honest
	// devices.
	ClipNorm float64
}

// AggregationKind selects the server-side aggregation mechanism
// (Sec. 2.2 Configuration: "simple or Secure Aggregation").
type AggregationKind uint8

// Aggregation mechanisms.
const (
	AggregationSimple AggregationKind = iota + 1
	AggregationSecure
)

// String implements fmt.Stringer.
func (a AggregationKind) String() string {
	if a == AggregationSecure {
		return "secagg"
	}
	return "simple"
}

// ServerPlan is the server portion of an FL plan: the aggregation logic and
// the round-window parameters of Sec. 2.2.
type ServerPlan struct {
	Aggregation AggregationKind
	// SecAggGroupSize is the parameter k of Sec. 6: updates are securely
	// aggregated over groups of at least this size.
	SecAggGroupSize int
	// SecAggThresholdFraction sets the Shamir threshold t of a secure
	// group as a fraction of the group size n (t = ⌈fraction × n⌉, clamped
	// to [2, n]). It trades dropout tolerance against collusion resistance:
	// a group survives up to n − t mid-protocol dropouts, while any t
	// colluding participants could reconstruct a dropped device's masking
	// key. 0 defaults to the majority threshold n/2 + 1.
	SecAggThresholdFraction float64
	// SecAggFinalizeTimeout bounds one group's Secure Aggregation
	// finalization. A run that exceeds it is abandoned with an attributed,
	// metric-carrying group error instead of stalling the round. 0 defaults
	// to 2 minutes.
	SecAggFinalizeTimeout time.Duration
	// TargetDevices is K, the number of reports needed to commit a round.
	TargetDevices int
	// OverSelectFactor is how many devices to admit relative to K
	// (typically 1.3, Sec. 9).
	OverSelectFactor float64
	// MinReportFraction is the minimal fraction of K required to commit the
	// round when the report window times out.
	MinReportFraction float64
	SelectionTimeout  time.Duration
	ReportTimeout     time.Duration
	// ParticipationCap bounds a single device's participation time
	// (the straggler cap visible in Fig. 8).
	ParticipationCap time.Duration
	// ReportEncoding is the uplink encoding the task requests for device
	// updates — the server-side knob of the Sec. 11 bandwidth lever
	// (EncodingQuant8 ships 1 byte/param instead of 8, an ~8× uplink
	// reduction, and the Reporting path dequantizes it straight into the
	// aggregation stripes). Generate mirrors it into the device plan; 0
	// defers to Device.ReportEncoding (plans marshaled before this field
	// existed).
	ReportEncoding checkpoint.Encoding
	// Robust selects the robust aggregation policy applied to this task's
	// updates before they reach the committed checkpoint (see RobustKind).
	// The zero value is the plain weighted mean.
	Robust RobustPolicy
}

// SelectTarget returns the number of devices to admit into a round.
func (s ServerPlan) SelectTarget() int {
	n := int(float64(s.TargetDevices)*s.OverSelectFactor + 0.5)
	if n < s.TargetDevices {
		n = s.TargetDevices
	}
	return n
}

// SecAggThreshold resolves the Shamir threshold for a secure group of n
// devices: ⌈SecAggThresholdFraction × n⌉ clamped to [2, n], or the
// majority n/2 + 1 when the fraction is unset.
func (s ServerPlan) SecAggThreshold(n int) int {
	if n < 2 {
		return n
	}
	t := n/2 + 1
	if f := s.SecAggThresholdFraction; f > 0 {
		t = int(math.Ceil(f * float64(n)))
	}
	if t < 2 {
		t = 2
	}
	if t > n {
		t = n
	}
	return t
}

// FinalizeTimeout resolves the per-group secagg finalization deadline.
func (s ServerPlan) FinalizeTimeout() time.Duration {
	if s.SecAggFinalizeTimeout > 0 {
		return s.SecAggFinalizeTimeout
	}
	return 2 * time.Minute
}

// MinReports returns the minimum number of reports to commit a round.
func (s ServerPlan) MinReports() int {
	m := int(float64(s.TargetDevices)*s.MinReportFraction + 0.5)
	if m < 1 {
		m = 1
	}
	if m > s.TargetDevices {
		m = s.TargetDevices
	}
	return m
}

// Plan is a complete FL plan for one FL task.
type Plan struct {
	// ID uniquely names the FL task this plan implements.
	ID string
	// Population is the globally unique FL population name (Sec. 2.1).
	Population string
	Type       TaskType
	Device     DevicePlan
	Server     ServerPlan
}

// Validate reports whether the plan is internally consistent and deployable.
func (p *Plan) Validate() error {
	if p.ID == "" || p.Population == "" {
		return fmt.Errorf("plan: ID and Population are required")
	}
	if err := p.Device.Model.Validate(); err != nil {
		return fmt.Errorf("plan %q: %w", p.ID, err)
	}
	if len(p.Device.Ops) == 0 {
		return fmt.Errorf("plan %q: empty op sequence", p.ID)
	}
	if p.Device.Ops[0] != OpLoadCheckpoint {
		return fmt.Errorf("plan %q: op sequence must start with load_checkpoint", p.ID)
	}
	if p.Type == TaskTrain {
		if p.Device.BatchSize <= 0 || p.Device.Epochs <= 0 || p.Device.LearningRate <= 0 {
			return fmt.Errorf("plan %q: training plan needs positive batch size, epochs, learning rate", p.ID)
		}
		last := p.Device.Ops[len(p.Device.Ops)-1]
		if last != OpSaveUpdate {
			return fmt.Errorf("plan %q: training plan must end with save_update", p.ID)
		}
	}
	if p.Server.TargetDevices <= 0 {
		return fmt.Errorf("plan %q: TargetDevices must be positive", p.ID)
	}
	if p.Server.OverSelectFactor < 1 {
		return fmt.Errorf("plan %q: OverSelectFactor must be ≥ 1", p.ID)
	}
	if p.Server.MinReportFraction <= 0 || p.Server.MinReportFraction > 1 {
		return fmt.Errorf("plan %q: MinReportFraction must be in (0,1]", p.ID)
	}
	if p.Server.Aggregation == AggregationSecure && p.Server.SecAggGroupSize < 2 {
		return fmt.Errorf("plan %q: secure aggregation needs SecAggGroupSize ≥ 2", p.ID)
	}
	if f := p.Server.SecAggThresholdFraction; f < 0 || f > 1 {
		return fmt.Errorf("plan %q: SecAggThresholdFraction must be in [0,1]", p.ID)
	}
	if p.Server.SecAggFinalizeTimeout < 0 {
		return fmt.Errorf("plan %q: SecAggFinalizeTimeout must be non-negative", p.ID)
	}
	if e := p.Server.ReportEncoding; e != 0 && e != checkpoint.EncodingFloat64 && e != checkpoint.EncodingQuant8 {
		return fmt.Errorf("plan %q: unknown report encoding %d", p.ID, e)
	}
	if p.Server.ReportEncoding != 0 && p.Device.ReportEncoding != 0 &&
		p.Server.ReportEncoding != p.Device.ReportEncoding {
		return fmt.Errorf("plan %q: server requests report encoding %d but device plan carries %d",
			p.ID, p.Server.ReportEncoding, p.Device.ReportEncoding)
	}
	if err := p.validateRobust(); err != nil {
		return err
	}
	return nil
}

// UplinkEncoding resolves the encoding devices use for their update
// reports: the server plan's request when set, else the device plan's
// (plans marshaled before ServerPlan.ReportEncoding existed), else full
// float64.
func (p *Plan) UplinkEncoding() checkpoint.Encoding {
	if p.Server.ReportEncoding != 0 {
		return p.Server.ReportEncoding
	}
	if p.Device.ReportEncoding != 0 {
		return p.Device.ReportEncoding
	}
	return checkpoint.EncodingFloat64
}

// Marshal encodes the plan for the wire.
func (p *Plan) Marshal() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		return nil, fmt.Errorf("plan: marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a plan produced by Marshal.
func Unmarshal(b []byte) (*Plan, error) {
	var p Plan
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
		return nil, fmt.Errorf("plan: unmarshal: %w", err)
	}
	return &p, nil
}

// WireSize returns the encoded plan size in bytes; the analytics layer uses
// it for traffic accounting. Plans are "comparable with the global model"
// in size (Fig. 9 discussion) because they embed the graph; our op list is
// tiny, so we also account a synthetic graph payload proportional to the
// model to preserve that property.
func (p *Plan) WireSize() int {
	b, err := p.Marshal()
	if err != nil {
		return 0
	}
	spec := p.Device.Model
	m, err := spec.Build()
	if err != nil {
		return len(b)
	}
	// The TensorFlow graph the real plan embeds is on the order of the
	// model itself; emulate with 8 bytes per parameter of graph payload.
	return len(b) + 8*m.NumParams()
}

// Config is what a model engineer supplies to Generate (Sec. 7.1: "the
// configuration of tasks is also written in Python and includes runtime
// parameters such as the optimal number of devices in a round as well as
// model hyperparameters like learning rate").
type Config struct {
	TaskID            string
	Population        string
	Type              TaskType
	Model             nn.Spec
	StoreName         string
	BatchSize         int
	Epochs            int
	LearningRate      float64
	MaxExamples       int
	TargetDevices     int
	OverSelectFactor  float64 // default 1.3
	MinReportFraction float64 // default 0.8
	SelectionTimeout  time.Duration
	ReportTimeout     time.Duration
	ParticipationCap  time.Duration
	SecureAggregation bool
	SecAggGroupSize   int // default 16 when secure aggregation is on
	// SecAggThresholdFraction and SecAggFinalizeTimeout mirror the
	// ServerPlan fields of the same names (0 = default).
	SecAggThresholdFraction float64
	SecAggFinalizeTimeout   time.Duration
	ReportEncoding          checkpoint.Encoding
	// Robust selects the robust aggregation policy (see RobustKind); the
	// zero value is the plain weighted mean. Per-update policies
	// (trimmed_mean, median, cosine_outlier) default the uplink encoding to
	// float64 unless QuantSafe is set or an encoding is given explicitly.
	Robust RobustPolicy
	// UseFusedOps emits the newer fused train+metrics op, exercising the
	// versioned-plan transformation for older runtimes.
	UseFusedOps bool
}

// Generate builds a validated plan from the engineer-supplied configuration,
// applying the paper's defaults where the config leaves zeros.
func Generate(cfg Config) (*Plan, error) {
	if cfg.OverSelectFactor == 0 {
		cfg.OverSelectFactor = 1.3
	}
	if cfg.MinReportFraction == 0 {
		cfg.MinReportFraction = 0.8
	}
	if cfg.SelectionTimeout == 0 {
		cfg.SelectionTimeout = 2 * time.Minute
	}
	if cfg.ReportTimeout == 0 {
		cfg.ReportTimeout = 3 * time.Minute
	}
	if cfg.ParticipationCap == 0 {
		cfg.ParticipationCap = cfg.ReportTimeout
	}
	if cfg.ReportEncoding == 0 {
		cfg.ReportEncoding = checkpoint.EncodingQuant8
		// A per-update robust policy decodes every update before reducing;
		// unless the task declared dequantize-then-reduce safe, keep the
		// defense exact by defaulting the uplink to full precision.
		if cfg.Robust.PerUpdate() && !cfg.Robust.QuantSafe {
			cfg.ReportEncoding = checkpoint.EncodingFloat64
		}
	}
	if cfg.Type == 0 {
		cfg.Type = TaskTrain
	}
	if cfg.SecureAggregation && cfg.SecAggGroupSize == 0 {
		cfg.SecAggGroupSize = 16
	}

	var ops []Op
	switch cfg.Type {
	case TaskTrain:
		if cfg.UseFusedOps {
			ops = []Op{OpLoadCheckpoint, OpSelectExamples, OpFusedTrainMetrics, OpSaveUpdate}
		} else {
			ops = []Op{OpLoadCheckpoint, OpSelectExamples, OpTrain, OpComputeMetrics, OpSaveUpdate}
		}
	case TaskEval:
		ops = []Op{OpLoadCheckpoint, OpSelectExamples, OpEval, OpComputeMetrics}
	default:
		return nil, fmt.Errorf("plan: unknown task type %d", cfg.Type)
	}

	agg := AggregationSimple
	if cfg.SecureAggregation {
		agg = AggregationSecure
	}
	// Norm-bound tasks mirror the clip into the device plan so honest
	// devices bound their own updates; under secagg that mirror is the
	// entire enforcement mechanism.
	var clipNorm float64
	if cfg.Robust.Kind == RobustNormBound {
		clipNorm = cfg.Robust.ClipNorm
	}
	p := &Plan{
		ID:         cfg.TaskID,
		Population: cfg.Population,
		Type:       cfg.Type,
		Device: DevicePlan{
			Model: cfg.Model,
			Ops:   ops,
			Selection: SelectionCriteria{
				StoreName:   cfg.StoreName,
				MaxExamples: cfg.MaxExamples,
			},
			BatchSize:         cfg.BatchSize,
			Epochs:            cfg.Epochs,
			LearningRate:      cfg.LearningRate,
			ReportEncoding:    cfg.ReportEncoding,
			MinRuntimeVersion: requiredVersion(ops),
			ClipNorm:          clipNorm,
		},
		Server: ServerPlan{
			Aggregation:             agg,
			SecAggGroupSize:         cfg.SecAggGroupSize,
			SecAggThresholdFraction: cfg.SecAggThresholdFraction,
			SecAggFinalizeTimeout:   cfg.SecAggFinalizeTimeout,
			TargetDevices:           cfg.TargetDevices,
			OverSelectFactor:        cfg.OverSelectFactor,
			MinReportFraction:       cfg.MinReportFraction,
			SelectionTimeout:        cfg.SelectionTimeout,
			ReportTimeout:           cfg.ReportTimeout,
			ParticipationCap:        cfg.ParticipationCap,
			ReportEncoding:          cfg.ReportEncoding,
			Robust:                  cfg.Robust,
		},
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}
