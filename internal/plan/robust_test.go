package plan

import (
	"strings"
	"testing"

	"repro/internal/checkpoint"
)

func TestRobustKindStrings(t *testing.T) {
	want := map[RobustKind]string{
		RobustNone:          "none",
		RobustNormBound:     "norm_bound",
		RobustTrimmedMean:   "trimmed_mean",
		RobustMedian:        "median",
		RobustCosineOutlier: "cosine_outlier",
		RobustKind(99):      "RobustKind(99)",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

func TestRobustPerUpdate(t *testing.T) {
	per := map[RobustKind]bool{
		RobustNone:          false,
		RobustNormBound:     false,
		RobustTrimmedMean:   true,
		RobustMedian:        true,
		RobustCosineOutlier: true,
	}
	for k, want := range per {
		if got := (RobustPolicy{Kind: k}).PerUpdate(); got != want {
			t.Errorf("PerUpdate(%s) = %v, want %v", k, got, want)
		}
	}
}

func TestGenerateNormBoundMirrorsClipToDevice(t *testing.T) {
	cfg := testConfig()
	cfg.Robust = RobustPolicy{Kind: RobustNormBound, ClipNorm: 1.5}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Device.ClipNorm != 1.5 {
		t.Fatalf("Device.ClipNorm = %v, want 1.5 (mirrored from Robust.ClipNorm)", p.Device.ClipNorm)
	}
	if p.Server.Robust.Kind != RobustNormBound {
		t.Fatalf("Server.Robust.Kind = %v, want norm_bound", p.Server.Robust.Kind)
	}
}

func TestGeneratePerUpdatePolicyDefaultsToFloat64(t *testing.T) {
	cfg := testConfig()
	cfg.Robust = RobustPolicy{Kind: RobustTrimmedMean, TrimFraction: 0.25}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.UplinkEncoding(); got != checkpoint.EncodingFloat64 {
		t.Fatalf("UplinkEncoding = %v, want float64 (per-update policy must not default to quant8)", got)
	}

	// A QuantSafe policy keeps the bandwidth-saving quant8 default.
	cfg.Robust.QuantSafe = true
	p, err = Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.UplinkEncoding(); got != checkpoint.EncodingQuant8 {
		t.Fatalf("UplinkEncoding = %v, want quant8 (QuantSafe keeps the default)", got)
	}
}

func TestValidateRobustComposition(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string
	}{
		{"norm_bound needs clip", func(c *Config) {
			c.Robust = RobustPolicy{Kind: RobustNormBound}
		}, "ClipNorm > 0"},
		{"trim fraction range low", func(c *Config) {
			c.Robust = RobustPolicy{Kind: RobustTrimmedMean}
		}, "TrimFraction in (0, 0.5)"},
		{"trim fraction range high", func(c *Config) {
			c.Robust = RobustPolicy{Kind: RobustTrimmedMean, TrimFraction: 0.5}
		}, "TrimFraction in (0, 0.5)"},
		{"cosine threshold range", func(c *Config) {
			c.Robust = RobustPolicy{Kind: RobustCosineOutlier, MaxCosineDistance: 3}
		}, "MaxCosineDistance in (0, 2]"},
		{"unknown kind", func(c *Config) {
			c.Robust = RobustPolicy{Kind: RobustKind(42)}
		}, "unknown robust policy kind"},
		{"trimmed mean under secagg", func(c *Config) {
			c.SecureAggregation = true
			c.Robust = RobustPolicy{Kind: RobustTrimmedMean, TrimFraction: 0.2}
		}, "secure aggregation hides individual updates"},
		{"median under secagg", func(c *Config) {
			c.SecureAggregation = true
			c.Robust = RobustPolicy{Kind: RobustMedian}
		}, "secure aggregation hides individual updates"},
		{"cosine under secagg", func(c *Config) {
			c.SecureAggregation = true
			c.Robust = RobustPolicy{Kind: RobustCosineOutlier, MaxCosineDistance: 0.5}
		}, "secure aggregation hides individual updates"},
		{"trimmed mean over explicit quant8", func(c *Config) {
			c.ReportEncoding = checkpoint.EncodingQuant8
			c.Robust = RobustPolicy{Kind: RobustTrimmedMean, TrimFraction: 0.2}
		}, "QuantSafe"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mutate(&cfg)
			_, err := Generate(cfg)
			if err == nil {
				t.Fatalf("Generate accepted invalid robust config")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestValidateRobustAccepts(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"norm_bound with secagg", func(c *Config) {
			c.SecureAggregation = true
			c.Robust = RobustPolicy{Kind: RobustNormBound, ClipNorm: 1}
		}},
		{"trimmed mean float64", func(c *Config) {
			c.ReportEncoding = checkpoint.EncodingFloat64
			c.Robust = RobustPolicy{Kind: RobustTrimmedMean, TrimFraction: 0.25}
		}},
		{"median quant8 quant-safe", func(c *Config) {
			c.ReportEncoding = checkpoint.EncodingQuant8
			c.Robust = RobustPolicy{Kind: RobustMedian, QuantSafe: true}
		}},
		{"cosine float64", func(c *Config) {
			c.ReportEncoding = checkpoint.EncodingFloat64
			c.Robust = RobustPolicy{Kind: RobustCosineOutlier, MaxCosineDistance: 0.8}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.mutate(&cfg)
			if _, err := Generate(cfg); err != nil {
				t.Fatalf("Generate rejected valid robust config: %v", err)
			}
		})
	}
}

func TestValidateRobustEvalTask(t *testing.T) {
	cfg := testConfig()
	cfg.Type = TaskEval
	cfg.BatchSize, cfg.Epochs, cfg.LearningRate = 0, 0, 0
	cfg.Robust = RobustPolicy{Kind: RobustMedian, QuantSafe: true}
	if _, err := Generate(cfg); err == nil || !strings.Contains(err.Error(), "eval task") {
		t.Fatalf("Generate(eval + robust) error = %v, want eval-task rejection", err)
	}
}

func TestRobustPolicySurvivesMarshal(t *testing.T) {
	cfg := testConfig()
	cfg.ReportEncoding = checkpoint.EncodingFloat64
	cfg.Robust = RobustPolicy{Kind: RobustCosineOutlier, MaxCosineDistance: 0.7, QuantSafe: true}
	p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.Server.Robust != p.Server.Robust {
		t.Fatalf("robust policy did not survive marshal: %+v != %+v", q.Server.Robust, p.Server.Robust)
	}
}
