package plan

import "fmt"

// Device runtimes in the field may be many months older than the newest
// plan generator (Sec. 7.3). Each op records the runtime version that
// introduced it; a versioned plan for an older runtime is derived from the
// default plan by rewriting newer ops into equivalent older sequences.
// Versioned and unversioned plans must be semantically equivalent — the
// device package's interpreter treats the rewritten sequence identically.

// opIntroducedIn maps each op to the first runtime version supporting it.
var opIntroducedIn = map[Op]int{
	OpLoadCheckpoint:    1,
	OpSelectExamples:    1,
	OpTrain:             1,
	OpEval:              1,
	OpComputeMetrics:    1,
	OpSaveUpdate:        1,
	OpFusedTrainMetrics: 3,
}

// rewrites maps a newer op to its equivalent sequence of older ops. An op
// absent from this table cannot be lowered ("a slightly smaller number that
// cannot be fixed without complex workarounds").
var rewrites = map[Op][]Op{
	OpFusedTrainMetrics: {OpTrain, OpComputeMetrics},
}

// requiredVersion returns the minimum runtime version able to execute ops.
func requiredVersion(ops []Op) int {
	v := 1
	for _, op := range ops {
		if iv, ok := opIntroducedIn[op]; ok && iv > v {
			v = iv
		}
	}
	return v
}

// ForVersion returns a plan executable by a device runtime of the given
// version. If the plan already satisfies the version it is returned
// unchanged; otherwise newer ops are rewritten. It returns an error when an
// op cannot be expressed for the target version.
func (p *Plan) ForVersion(runtimeVersion int) (*Plan, error) {
	if runtimeVersion >= p.Device.MinRuntimeVersion {
		return p, nil
	}
	out := *p
	out.Device.Ops = nil
	for _, op := range p.Device.Ops {
		iv := opIntroducedIn[op]
		if iv <= runtimeVersion {
			out.Device.Ops = append(out.Device.Ops, op)
			continue
		}
		rw, ok := rewrites[op]
		if !ok {
			return nil, fmt.Errorf("plan %q: op %v requires runtime ≥ %d and has no rewrite for version %d",
				p.ID, op, iv, runtimeVersion)
		}
		for _, sub := range rw {
			if opIntroducedIn[sub] > runtimeVersion {
				return nil, fmt.Errorf("plan %q: rewrite of %v produced op %v unsupported at version %d",
					p.ID, op, sub, runtimeVersion)
			}
		}
		out.Device.Ops = append(out.Device.Ops, rw...)
	}
	out.Device.MinRuntimeVersion = requiredVersion(out.Device.Ops)
	if out.Device.MinRuntimeVersion > runtimeVersion {
		return nil, fmt.Errorf("plan %q: could not lower to version %d", p.ID, runtimeVersion)
	}
	return &out, nil
}
