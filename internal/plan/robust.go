package plan

import (
	"fmt"

	"repro/internal/checkpoint"
)

// RobustKind selects the server-side robust aggregation policy for a task.
// Robust aggregation is the core defense against model poisoning in
// cross-device FL (arXiv 1912.04977 §5; arXiv 2012.06810): the plain
// weighted mean of Sec. 2.2 lets a single scaled update steer the global
// model, so a task may instead bound or reject suspicious updates before
// they reach the committed checkpoint.
type RobustKind uint8

// Robust aggregation policies.
const (
	// RobustNone is the plain weighted mean (the default).
	RobustNone RobustKind = iota
	// RobustNormBound clips each update so its per-example-average L2 norm
	// is at most ClipNorm, bounding any single device's influence. It folds
	// at the edge of the striped accumulator path and composes with secure
	// aggregation via client-side clipping.
	RobustNormBound
	// RobustTrimmedMean replaces the weighted mean with the coordinate-wise
	// trimmed mean of the per-example-average updates, discarding the
	// TrimFraction largest and smallest values per coordinate. Requires
	// per-update retention: incompatible with secure aggregation.
	RobustTrimmedMean
	// RobustMedian replaces the weighted mean with the coordinate-wise
	// median of the per-example-average updates. Requires per-update
	// retention: incompatible with secure aggregation.
	RobustMedian
	// RobustCosineOutlier rejects whole updates whose cosine distance to
	// the cohort centroid exceeds MaxCosineDistance, then averages the
	// survivors. Requires per-update retention: incompatible with secure
	// aggregation.
	RobustCosineOutlier
)

// String implements fmt.Stringer.
func (k RobustKind) String() string {
	switch k {
	case RobustNone:
		return "none"
	case RobustNormBound:
		return "norm_bound"
	case RobustTrimmedMean:
		return "trimmed_mean"
	case RobustMedian:
		return "median"
	case RobustCosineOutlier:
		return "cosine_outlier"
	default:
		return fmt.Sprintf("RobustKind(%d)", uint8(k))
	}
}

// RobustPolicy is the per-task robust aggregation knob of ServerPlan. The
// zero value means plain weighted-mean aggregation.
type RobustPolicy struct {
	Kind RobustKind
	// ClipNorm bounds the L2 norm of each update's per-example average
	// delta (the same quantity fedavg.ClipUpdate bounds for DP), so that a
	// device reporting n examples contributes at most n·ClipNorm of delta
	// mass. Required > 0 for RobustNormBound.
	ClipNorm float64
	// TrimFraction is the fraction of values trimmed from EACH tail per
	// coordinate for RobustTrimmedMean; must lie in (0, 0.5). With 20%
	// attackers, TrimFraction 0.25 removes every attacker value from every
	// coordinate in expectation.
	TrimFraction float64
	// MaxCosineDistance is the rejection threshold for RobustCosineOutlier:
	// updates with 1 − cos(update, centroid) above it are excluded. Must
	// lie in (0, 2].
	MaxCosineDistance float64
	// QuantSafe declares that the policy's semantics survive Quant8 uplink
	// encoding. Per-update policies decode (dequantize) the wire bytes
	// before reducing, which perturbs each coordinate by up to half a
	// quantization step (see checkpoint.Meta.AccumulateParams); a task must
	// opt in to that error bound explicitly, otherwise Validate rejects the
	// Quant8 × per-update-policy combination.
	QuantSafe bool
}

// PerUpdate reports whether the policy needs access to each individual
// update at aggregation time (retention), as opposed to folding into the
// running stripe sums at the edge. Per-update policies are incompatible
// with secure aggregation — secagg exists precisely so the server never
// sees an individual update — and with cross-shard deployments, where raw
// updates never leave the shard that terminated the device connection.
func (r RobustPolicy) PerUpdate() bool {
	switch r.Kind {
	case RobustTrimmedMean, RobustMedian, RobustCosineOutlier:
		return true
	}
	return false
}

// validate checks the policy parameters and its composition with the rest
// of the plan; called from Plan.Validate.
func (p *Plan) validateRobust() error {
	r := p.Server.Robust
	switch r.Kind {
	case RobustNone:
		return nil
	case RobustNormBound:
		if r.ClipNorm <= 0 {
			return fmt.Errorf("plan %q: robust policy norm_bound needs ClipNorm > 0", p.ID)
		}
	case RobustTrimmedMean:
		if r.TrimFraction <= 0 || r.TrimFraction >= 0.5 {
			return fmt.Errorf("plan %q: robust policy trimmed_mean needs TrimFraction in (0, 0.5), got %v",
				p.ID, r.TrimFraction)
		}
	case RobustMedian:
		// No parameters.
	case RobustCosineOutlier:
		if r.MaxCosineDistance <= 0 || r.MaxCosineDistance > 2 {
			return fmt.Errorf("plan %q: robust policy cosine_outlier needs MaxCosineDistance in (0, 2], got %v",
				p.ID, r.MaxCosineDistance)
		}
	default:
		return fmt.Errorf("plan %q: unknown robust policy kind %d", p.ID, r.Kind)
	}
	if p.Type == TaskEval {
		return fmt.Errorf("plan %q: robust policy %s is meaningless for an eval task", p.ID, r.Kind)
	}
	if r.PerUpdate() {
		if p.Server.Aggregation == AggregationSecure {
			return fmt.Errorf("plan %q: robust policy %s needs per-update access but secure aggregation hides individual updates; use norm_bound (client-side clipping) with secagg, or turn secagg off",
				p.ID, r.Kind)
		}
		if p.UplinkEncoding() == checkpoint.EncodingQuant8 && !r.QuantSafe {
			return fmt.Errorf("plan %q: robust policy %s over quant8 uplink perturbs each coordinate by up to half a quantization step before the reduce; set Robust.QuantSafe to accept that error bound or use float64 report encoding",
				p.ID, r.Kind)
		}
	}
	return nil
}
