package attest

import (
	"testing"
	"time"
)

var master = []byte("platform-master-secret-for-test")
var now = time.Date(2019, 3, 1, 12, 0, 0, 0, time.UTC)

func TestGenuineDeviceVerifies(t *testing.T) {
	d := NewGenuineDevice(master, "device-1")
	v := NewVerifier(master)
	tok := d.Mint("pop", now)
	if err := v.Verify("device-1", "pop", tok, now); err != nil {
		t.Fatal(err)
	}
}

func TestCompromisedDeviceFails(t *testing.T) {
	d, err := NewCompromisedDevice("device-2")
	if err != nil {
		t.Fatal(err)
	}
	v := NewVerifier(master)
	tok := d.Mint("pop", now)
	if err := v.Verify("device-2", "pop", tok, now); err == nil {
		t.Fatal("compromised device must fail attestation")
	}
}

func TestTokenBoundToDevice(t *testing.T) {
	d := NewGenuineDevice(master, "device-1")
	v := NewVerifier(master)
	tok := d.Mint("pop", now)
	if err := v.Verify("device-other", "pop", tok, now); err == nil {
		t.Fatal("token replayed under another device id must fail")
	}
}

func TestTokenBoundToPopulation(t *testing.T) {
	d := NewGenuineDevice(master, "device-1")
	v := NewVerifier(master)
	tok := d.Mint("pop-a", now)
	if err := v.Verify("device-1", "pop-b", tok, now); err == nil {
		t.Fatal("token for another population must fail")
	}
}

func TestStaleTokenFails(t *testing.T) {
	d := NewGenuineDevice(master, "device-1")
	v := NewVerifier(master)
	tok := d.Mint("pop", now)
	if err := v.Verify("device-1", "pop", tok, now.Add(TokenTTL+time.Minute)); err == nil {
		t.Fatal("stale token must fail")
	}
	if err := v.Verify("device-1", "pop", tok, now.Add(-TokenTTL-time.Minute)); err == nil {
		t.Fatal("future-dated token must fail")
	}
}

func TestMalformedToken(t *testing.T) {
	v := NewVerifier(master)
	if err := v.Verify("d", "p", []byte("short"), now); err == nil {
		t.Fatal("malformed token must fail")
	}
}

func TestTamperedToken(t *testing.T) {
	d := NewGenuineDevice(master, "device-1")
	v := NewVerifier(master)
	tok := d.Mint("pop", now)
	tok[len(tok)-1] ^= 1
	if err := v.Verify("device-1", "pop", tok, now); err == nil {
		t.Fatal("tampered token must fail")
	}
}

func TestWrongMasterFails(t *testing.T) {
	d := NewGenuineDevice(master, "device-1")
	v := NewVerifier([]byte("different-master"))
	tok := d.Mint("pop", now)
	if err := v.Verify("device-1", "pop", tok, now); err == nil {
		t.Fatal("verifier with wrong master must reject")
	}
}
