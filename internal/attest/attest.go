// Package attest simulates the remote attestation of Sec. 3: devices
// participate anonymously, so instead of authenticating users the server
// verifies that the *device* is genuine via a platform attestation
// mechanism (Android's SafetyNet in the paper). Here, genuine devices hold
// a per-device key derived from a platform master secret and mint HMAC
// tokens over a server-issued context; compromised devices hold a random
// key and fail verification, giving "some protection against data
// poisoning via compromised devices".
package attest

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// TokenTTL bounds token freshness.
const TokenTTL = 10 * time.Minute

// deriveDeviceKey is the platform key-derivation: the attestation authority
// (and only it) can derive a device's key from the master secret.
func deriveDeviceKey(master []byte, deviceID string) []byte {
	mac := hmac.New(sha256.New, master)
	mac.Write([]byte("device-key:"))
	mac.Write([]byte(deviceID))
	return mac.Sum(nil)
}

// Device is the device-side attestation state.
type Device struct {
	id  string
	key []byte
}

// NewGenuineDevice returns a device holding the correctly derived key.
func NewGenuineDevice(master []byte, deviceID string) *Device {
	return &Device{id: deviceID, key: deriveDeviceKey(master, deviceID)}
}

// NewCompromisedDevice returns a device with a random key: it produces
// well-formed tokens that fail verification.
func NewCompromisedDevice(deviceID string) (*Device, error) {
	key := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, key); err != nil {
		return nil, fmt.Errorf("attest: %w", err)
	}
	return &Device{id: deviceID, key: key}, nil
}

// Mint produces a token binding the device id, population and timestamp.
// Token layout: 8-byte unix-nano timestamp || 32-byte HMAC.
func (d *Device) Mint(population string, now time.Time) []byte {
	var ts [8]byte
	binary.BigEndian.PutUint64(ts[:], uint64(now.UnixNano()))
	mac := hmac.New(sha256.New, d.key)
	mac.Write(ts[:])
	mac.Write([]byte(d.id))
	mac.Write([]byte(population))
	return append(ts[:], mac.Sum(nil)...)
}

// Verifier is the server-side check, holding the master secret.
type Verifier struct {
	master []byte
}

// NewVerifier returns a verifier for the given master secret.
func NewVerifier(master []byte) *Verifier {
	return &Verifier{master: append([]byte(nil), master...)}
}

// Verify checks a token minted by deviceID for population at a time within
// TokenTTL of now.
func (v *Verifier) Verify(deviceID, population string, token []byte, now time.Time) error {
	if len(token) != 8+sha256.Size {
		return fmt.Errorf("attest: malformed token (%d bytes)", len(token))
	}
	ts := time.Unix(0, int64(binary.BigEndian.Uint64(token[:8])))
	age := now.Sub(ts)
	if age < -TokenTTL || age > TokenTTL {
		return fmt.Errorf("attest: token timestamp %v outside freshness window", ts)
	}
	key := deriveDeviceKey(v.master, deviceID)
	mac := hmac.New(sha256.New, key)
	mac.Write(token[:8])
	mac.Write([]byte(deviceID))
	mac.Write([]byte(population))
	if !hmac.Equal(mac.Sum(nil), token[8:]) {
		return fmt.Errorf("attest: device %s failed attestation", deviceID)
	}
	return nil
}
