// Package actor implements the Actor Programming Model the FL server is
// built on (Sec. 4.1): actors process their mailbox strictly sequentially,
// communicate only by message passing, can spawn ephemeral children, and
// keep all state in memory. Supervision is watch-based: watchers receive a
// Terminated message when an actor stops or panics, which is how the
// Coordinator restarts failed Master Aggregators and the Selector layer
// respawns a dead Coordinator (Sec. 4.4).
//
// Ref is an interface so references are location-transparent (Sec. 4.1:
// actor instances "may be co-located on the same process or distributed
// across multiple data centers"): the local implementation below is a
// mailbox in this process, and internal/remote provides an implementation
// that marshals messages over a transport connection to a peer process.
// In-process sends stay on the fast path — a local Send is a channel
// operation, never a codec hop.
package actor

import (
	"fmt"
	"sync"
)

// Message is anything sent to an actor.
type Message interface{}

// Ref is a location-transparent handle to a running actor. Implementations
// must be comparable (the supervision graph and the lock service key on Ref
// identity), which every pointer implementation is.
type Ref interface {
	// Name returns the actor's name.
	Name() string
	// Send enqueues a message. It returns an error when the actor has
	// stopped or (for remote refs) the peer is unreachable.
	Send(msg Message) error
	// Stop terminates the actor. Safe to call more than once and from any
	// goroutine.
	Stop()
	// Stopped reports whether the actor has terminated. For remote refs
	// this reflects peer liveness, so lock leases held by a dead peer are
	// stealable exactly like leases held by a dead local actor.
	Stopped() bool
}

// Terminated is delivered to watchers when an actor stops. Failure is true
// when the actor died from a panic rather than a clean stop.
type Terminated struct {
	Ref     Ref
	Failure bool
	// Reason carries the panic value for failures.
	Reason interface{}
}

// Behavior is an actor's message handler. Receive is never called
// concurrently for one actor instance.
type Behavior interface {
	Receive(ctx *Context, msg Message)
}

// BehaviorFunc adapts a function to the Behavior interface.
type BehaviorFunc func(ctx *Context, msg Message)

// Receive implements Behavior.
func (f BehaviorFunc) Receive(ctx *Context, msg Message) { f(ctx, msg) }

// Context is passed to Receive, giving the behavior access to its own ref
// and the system for spawning and watching.
type Context struct {
	Self   Ref
	System *System
}

// Spawn creates a child actor.
func (c *Context) Spawn(name string, b Behavior) Ref { return c.System.Spawn(name, b) }

// Watch registers Self to receive Terminated when target stops.
func (c *Context) Watch(target Ref) { c.System.watch(target, c.Self) }

// Stop stops this actor after the current message.
func (c *Context) Stop() { c.Self.Stop() }

const mailboxSize = 1024

// localRef is the in-process Ref implementation: a mailbox drained by one
// goroutine.
type localRef struct {
	name    string
	mailbox chan Message
	done    chan struct{}
	once    sync.Once
	sys     *System
	// failure/reason record how the actor terminated. Written inside
	// once.Do before done closes, so any goroutine that observes Stopped()
	// reads them safely.
	failure bool
	reason  interface{}
}

// Name implements Ref.
func (r *localRef) Name() string { return r.name }

// Send implements Ref. It returns an error when the actor has stopped; it
// blocks when the mailbox is full (backpressure).
func (r *localRef) Send(msg Message) error {
	select {
	case <-r.done:
		return fmt.Errorf("actor: %s is stopped", r.name)
	default:
	}
	select {
	case r.mailbox <- msg:
		return nil
	case <-r.done:
		return fmt.Errorf("actor: %s is stopped", r.name)
	}
}

// Stop implements Ref. Messages already enqueued may be dropped.
func (r *localRef) Stop() { r.stop(false, nil) }

func (r *localRef) stop(failure bool, reason interface{}) {
	r.once.Do(func() {
		r.failure, r.reason = failure, reason
		close(r.done)
		r.sys.notifyTermination(r, failure, reason)
	})
}

// Stopped implements Ref.
func (r *localRef) Stopped() bool {
	select {
	case <-r.done:
		return true
	default:
		return false
	}
}

// System owns the actor registry and supervision graph. Actors in one
// system share an address space, mirroring the paper's note that instances
// may be co-located or distributed; distribution happens at the transport
// layer (internal/remote), not here.
type System struct {
	mu       sync.Mutex
	watchers map[Ref][]Ref
	actors   []*localRef
	wg       sync.WaitGroup
	// down is set by Shutdown; later Spawns return already-stopped refs,
	// so a concurrent spawn (an actor mid-dispatch creating a child) can
	// never outlive Shutdown's wait.
	down bool
}

// NewSystem returns an empty actor system.
func NewSystem() *System {
	return &System{watchers: make(map[Ref][]Ref)}
}

// Spawn starts an actor with the given behavior. The actor's goroutine
// processes the mailbox until Stop; a panic in Receive terminates the actor
// and notifies watchers with Failure=true ("ephemeral actors", Sec. 4.2 —
// failure means losing the actor, not the process).
func (s *System) Spawn(name string, b Behavior) Ref {
	r := &localRef{
		name:    name,
		mailbox: make(chan Message, mailboxSize),
		done:    make(chan struct{}),
		sys:     s,
	}
	ctx := &Context{Self: r, System: s}
	s.mu.Lock()
	if s.down {
		s.mu.Unlock()
		r.once.Do(func() {
			r.failure, r.reason = false, nil
			close(r.done)
		})
		return r
	}
	s.actors = append(s.actors, r)
	// Ephemeral actors (one Master Aggregator and a handful of Aggregators
	// per round) would grow the registry forever on a long-running server;
	// compact stopped refs periodically.
	if len(s.actors)%256 == 0 {
		live := s.actors[:0]
		for _, a := range s.actors {
			if !a.Stopped() {
				live = append(live, a)
			}
		}
		s.actors = live
	}
	// Inside the lock: the down check, the registry append and the
	// WaitGroup increment must be atomic with respect to Shutdown's
	// snapshot + Wait, or an Add could race a blocked Wait.
	s.wg.Add(1)
	s.mu.Unlock()
	go func() {
		defer s.wg.Done()
		for {
			select {
			case <-r.done:
				return
			case msg := <-r.mailbox:
				s.dispatch(ctx, r, b, msg)
				if r.Stopped() {
					return
				}
			}
		}
	}()
	return r
}

// dispatch runs one Receive with panic isolation.
func (s *System) dispatch(ctx *Context, r *localRef, b Behavior, msg Message) {
	defer func() {
		if rec := recover(); rec != nil {
			r.stop(true, rec)
		}
	}()
	b.Receive(ctx, msg)
}

// Watch registers watcher to receive Terminated{target} when target stops.
// If target is already stopped, the notification is delivered immediately —
// preserving how it terminated, so a watcher registered just after a panic
// still sees Failure=true and can respawn. Termination notifications fire
// only for actors spawned in this system; watching a remote ref delivers
// immediately when the peer is already down, and is otherwise a no-op
// (remote liveness is the remote package's heartbeat concern).
func (s *System) watch(target, watcher Ref) {
	s.mu.Lock()
	if target.Stopped() {
		s.mu.Unlock()
		failure, reason := true, interface{}(nil)
		if lr, ok := target.(*localRef); ok {
			failure, reason = lr.failure, lr.reason
		}
		_ = watcher.Send(Terminated{Ref: target, Failure: failure, Reason: reason})
		return
	}
	if _, ok := target.(*localRef); !ok {
		s.mu.Unlock()
		return
	}
	s.watchers[target] = append(s.watchers[target], watcher)
	s.mu.Unlock()
}

// Watch is the non-actor entry point for watching (e.g. tests, transports).
func (s *System) Watch(target, watcher Ref) { s.watch(target, watcher) }

func (s *System) notifyTermination(r *localRef, failure bool, reason interface{}) {
	s.mu.Lock()
	ws := s.watchers[r]
	delete(s.watchers, r)
	s.mu.Unlock()
	for _, w := range ws {
		_ = w.Send(Terminated{Ref: r, Failure: failure, Reason: reason})
	}
}

// Shutdown stops the given actors, then every remaining actor ever spawned
// in the system (ephemeral children included), and waits for all their
// goroutines. Spawns racing the shutdown (an actor mid-dispatch creating a
// child, a watcher respawning a Coordinator) return already-stopped refs
// once the down flag is set, so the registry snapshot below is complete
// and the wait cannot hang on an actor nobody stops. Used at process
// teardown.
func (s *System) Shutdown(refs ...Ref) {
	for _, r := range refs {
		r.Stop()
	}
	s.mu.Lock()
	s.down = true
	all := append([]*localRef(nil), s.actors...)
	s.mu.Unlock()
	for _, r := range all {
		r.Stop()
	}
	s.wg.Wait()
}
