package actor

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// collect spawns an actor that appends every message to a slice guarded by
// a mutex and signals on each receipt.
func collect(s *System, name string) (Ref, func() []Message, chan struct{}) {
	var mu sync.Mutex
	var got []Message
	signal := make(chan struct{}, 1024)
	r := s.Spawn(name, BehaviorFunc(func(ctx *Context, msg Message) {
		mu.Lock()
		got = append(got, msg)
		mu.Unlock()
		signal <- struct{}{}
	}))
	return r, func() []Message {
		mu.Lock()
		defer mu.Unlock()
		return append([]Message(nil), got...)
	}, signal
}

func waitN(t *testing.T, ch chan struct{}, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out waiting for message %d/%d", i+1, n)
		}
	}
}

func TestSendReceiveOrder(t *testing.T) {
	s := NewSystem()
	r, got, sig := collect(s, "a")
	defer s.Shutdown(r)
	for i := 0; i < 100; i++ {
		if err := r.Send(i); err != nil {
			t.Fatal(err)
		}
	}
	waitN(t, sig, 100)
	msgs := got()
	for i, m := range msgs {
		if m.(int) != i {
			t.Fatalf("message order violated at %d: %v", i, m)
		}
	}
}

func TestSequentialProcessing(t *testing.T) {
	// Two concurrent senders; the actor must never run Receive twice at
	// once. Track with an atomic in/out counter.
	s := NewSystem()
	var inFlight, maxInFlight int64
	done := make(chan struct{}, 200)
	r := s.Spawn("seq", BehaviorFunc(func(ctx *Context, msg Message) {
		n := atomic.AddInt64(&inFlight, 1)
		if n > atomic.LoadInt64(&maxInFlight) {
			atomic.StoreInt64(&maxInFlight, n)
		}
		time.Sleep(100 * time.Microsecond)
		atomic.AddInt64(&inFlight, -1)
		done <- struct{}{}
	}))
	defer s.Shutdown(r)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = r.Send(i)
			}
		}()
	}
	wg.Wait()
	waitN(t, done, 200)
	if atomic.LoadInt64(&maxInFlight) != 1 {
		t.Fatalf("max in-flight = %d, want 1", maxInFlight)
	}
}

func TestSendToStoppedActorFails(t *testing.T) {
	s := NewSystem()
	r, _, _ := collect(s, "x")
	r.Stop()
	s.Shutdown()
	if err := r.Send("late"); err == nil {
		t.Fatal("send to stopped actor must fail")
	}
	if !r.Stopped() {
		t.Fatal("Stopped() should be true")
	}
}

func TestWatchCleanStop(t *testing.T) {
	s := NewSystem()
	watcher, got, sig := collect(s, "watcher")
	target := s.Spawn("target", BehaviorFunc(func(ctx *Context, msg Message) {}))
	s.Watch(target, watcher)
	target.Stop()
	waitN(t, sig, 1)
	term, ok := got()[0].(Terminated)
	if !ok || term.Ref != target || term.Failure {
		t.Fatalf("got %+v, want clean Terminated{target}", got()[0])
	}
	s.Shutdown(watcher)
}

func TestWatchPanicIsFailure(t *testing.T) {
	s := NewSystem()
	watcher, got, sig := collect(s, "watcher")
	target := s.Spawn("bomb", BehaviorFunc(func(ctx *Context, msg Message) {
		panic("boom")
	}))
	s.Watch(target, watcher)
	if err := target.Send("go"); err != nil {
		t.Fatal(err)
	}
	waitN(t, sig, 1)
	term := got()[0].(Terminated)
	if !term.Failure || term.Reason != "boom" {
		t.Fatalf("got %+v, want failure with reason boom", term)
	}
	if !target.Stopped() {
		t.Fatal("panicked actor must be stopped")
	}
	s.Shutdown(watcher)
}

func TestWatchAlreadyStopped(t *testing.T) {
	s := NewSystem()
	watcher, _, sig := collect(s, "watcher")
	target := s.Spawn("gone", BehaviorFunc(func(ctx *Context, msg Message) {}))
	target.Stop()
	s.Watch(target, watcher)
	waitN(t, sig, 1) // immediate notification
	s.Shutdown(watcher)
}

func TestPanicIsolation(t *testing.T) {
	// One actor panicking must not take down others.
	s := NewSystem()
	bomb := s.Spawn("bomb", BehaviorFunc(func(ctx *Context, msg Message) { panic("x") }))
	healthy, got, sig := collect(s, "healthy")
	_ = bomb.Send(1)
	if err := healthy.Send("alive"); err != nil {
		t.Fatal(err)
	}
	waitN(t, sig, 1)
	if got()[0] != "alive" {
		t.Fatal("healthy actor should keep processing")
	}
	s.Shutdown(healthy)
}

func TestContextSpawnAndStop(t *testing.T) {
	s := NewSystem()
	childMsgs := make(chan Message, 1)
	parent := s.Spawn("parent", BehaviorFunc(func(ctx *Context, msg Message) {
		child := ctx.Spawn("child", BehaviorFunc(func(cctx *Context, m Message) {
			childMsgs <- m
			cctx.Stop()
		}))
		_ = child.Send(msg)
	}))
	_ = parent.Send("hello")
	select {
	case m := <-childMsgs:
		if m != "hello" {
			t.Fatalf("child got %v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("child never received")
	}
	s.Shutdown(parent)
}

func TestLockServiceSingleOwner(t *testing.T) {
	s := NewSystem()
	l := NewLockService()
	a := s.Spawn("a", BehaviorFunc(func(ctx *Context, msg Message) {}))
	b := s.Spawn("b", BehaviorFunc(func(ctx *Context, msg Message) {}))
	defer s.Shutdown(a, b)

	if !l.Acquire("pop", a) {
		t.Fatal("first acquire must succeed")
	}
	if l.Acquire("pop", b) {
		t.Fatal("second acquire by other actor must fail")
	}
	if !l.Acquire("pop", a) {
		t.Fatal("re-acquire by owner must succeed")
	}
	if l.Owner("pop") != a {
		t.Fatal("owner should be a")
	}
	l.Release("pop", b) // non-owner release is a no-op
	if l.Owner("pop") != a {
		t.Fatal("non-owner release must not free the lock")
	}
	l.Release("pop", a)
	if l.Owner("pop") != nil {
		t.Fatal("lock should be free")
	}
}

func TestLockServiceStealFromDead(t *testing.T) {
	s := NewSystem()
	l := NewLockService()
	a := s.Spawn("a", BehaviorFunc(func(ctx *Context, msg Message) {}))
	b := s.Spawn("b", BehaviorFunc(func(ctx *Context, msg Message) {}))
	defer s.Shutdown(b)

	l.Acquire("pop", a)
	a.Stop()
	if l.Owner("pop") != nil {
		t.Fatal("dead owner must not be reported")
	}
	if !l.Acquire("pop", b) {
		t.Fatal("acquire from dead owner must succeed")
	}
	if l.Owner("pop") != b {
		t.Fatal("owner should now be b")
	}
}

func TestLockServiceExactlyOnceRespawn(t *testing.T) {
	// Many contenders race to steal a dead owner's lock; exactly one wins.
	s := NewSystem()
	l := NewLockService()
	dead := s.Spawn("dead", BehaviorFunc(func(ctx *Context, msg Message) {}))
	l.Acquire("pop", dead)
	dead.Stop()

	var winners int64
	var wg sync.WaitGroup
	refs := make([]Ref, 16)
	for i := range refs {
		refs[i] = s.Spawn("contender", BehaviorFunc(func(ctx *Context, msg Message) {}))
	}
	for _, r := range refs {
		wg.Add(1)
		go func(r Ref) {
			defer wg.Done()
			if l.Acquire("pop", r) {
				atomic.AddInt64(&winners, 1)
			}
		}(r)
	}
	wg.Wait()
	if winners != 1 {
		t.Fatalf("winners = %d, want exactly 1", winners)
	}
	s.Shutdown(refs...)
}

func TestShutdownRacesConcurrentSpawns(t *testing.T) {
	// Actors spawned concurrently with Shutdown (an actor mid-dispatch
	// creating a child, or plain racing callers) must not leave goroutines
	// the shutdown never stops — Shutdown would hang in wg.Wait forever.
	sys := NewSystem()
	stop := make(chan struct{})
	var spawner sync.WaitGroup
	spawner.Add(1)
	go func() {
		defer spawner.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			sys.Spawn("storm", BehaviorFunc(func(ctx *Context, msg Message) {}))
		}
	}()
	time.Sleep(5 * time.Millisecond)

	done := make(chan struct{})
	go func() {
		sys.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung on actors spawned during shutdown")
	}
	// Post-shutdown spawns return already-stopped refs.
	if r := sys.Spawn("late", BehaviorFunc(func(ctx *Context, msg Message) {})); !r.Stopped() {
		t.Fatal("spawn after Shutdown must return a stopped ref")
	}
	close(stop)
	spawner.Wait()
}

func TestWatchAfterTerminationPreservesFailure(t *testing.T) {
	// A watcher registered after the target already died from a panic must
	// still see Failure=true — supervision decisions (respawn or not) hang
	// on that flag.
	sys := NewSystem()
	defer sys.Shutdown()
	victim := sys.Spawn("victim", BehaviorFunc(func(ctx *Context, msg Message) {
		panic("boom")
	}))
	_ = victim.Send("die")
	for !victim.Stopped() {
		time.Sleep(time.Millisecond)
	}

	got := make(chan Terminated, 1)
	watcher := sys.Spawn("late-watcher", BehaviorFunc(func(ctx *Context, msg Message) {
		if term, ok := msg.(Terminated); ok {
			got <- term
		}
	}))
	sys.Watch(victim, watcher)
	select {
	case term := <-got:
		if !term.Failure {
			t.Fatal("late watcher lost the Failure flag")
		}
		if term.Reason != "boom" {
			t.Fatalf("late watcher lost the failure reason: %v", term.Reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("late watcher never notified")
	}
}
