package actor

import "sync"

// LockService is the shared locking service of Sec. 4.2: a Coordinator
// registers its address under its FL population name "so there is always a
// single owner for every FL population". Ownership is leased to a live
// actor; when the owner dies, the next Acquire steals the lock — and only
// one contender wins, which is what makes Coordinator respawn happen
// "exactly once" (Sec. 4.4).
//
// Owners are Refs, so leases are location-transparent: a remote ref whose
// Stopped() reflects peer liveness (internal/remote) holds and loses leases
// exactly like a local actor. internal/remote serves this service over the
// wire to other processes.
type LockService struct {
	mu     sync.Mutex
	owners map[string]Ref
}

// NewLockService returns an empty lock service.
func NewLockService() *LockService {
	return &LockService{owners: make(map[string]Ref)}
}

// Acquire attempts to take the lock for key on behalf of owner. It succeeds
// when the key is free, already held by owner, or held by a stopped actor.
func (l *LockService) Acquire(key string, owner Ref) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, ok := l.owners[key]
	if !ok || cur == owner || cur.Stopped() {
		l.owners[key] = owner
		return true
	}
	return false
}

// Release frees the lock if owner holds it.
func (l *LockService) Release(key string, owner Ref) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.owners[key] == owner {
		delete(l.owners, key)
	}
}

// Owner returns the current live owner of key, or nil.
func (l *LockService) Owner(key string) Ref {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur, ok := l.owners[key]
	if !ok || cur.Stopped() {
		return nil
	}
	return cur
}
