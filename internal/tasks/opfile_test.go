package tasks

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/plan"
)

func TestParseOpFile(t *testing.T) {
	op, err := ParseOpFile([]byte(`{
		"population": "gboard",
		"task": {
			"TaskID": "gboard/eval", "Population": "gboard", "Type": 2,
			"Model": {"Kind": 1, "Features": 4, "Classes": 3, "Seed": 1},
			"StoreName": "clicks", "TargetDevices": 4
		},
		"policy": {"EvalEvery": 2, "EvalOf": "gboard/train"}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if op.Action != OpSubmit || op.Task == nil || op.Policy.EvalEvery != 2 {
		t.Fatalf("parsed op = %+v", op)
	}
	// The parsed config must generate a valid plan.
	p, err := plan.Generate(*op.Task)
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != plan.TaskEval || p.Population != "gboard" {
		t.Fatalf("generated plan = %+v", p)
	}

	if _, err := ParseOpFile([]byte(`{"action":"retire","population":"gboard","task_id":"gboard/eval"}`)); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		`{`,
		`{"population":"p"}`,                    // submit without task
		`{"action":"pause","population":"p"}`,   // pause without task_id
		`{"action":"explode","population":"p"}`, // unknown action
		`{"action":"retire","task_id":"x"}`,     // no population
		`{"population":"p","unknown_field":1}`,  // typo'd field
		`{"action":"retire","population":"p","task_id":"x"}{"action":"pause","population":"p","task_id":"y"}`, // concatenated ops
		`{"action":"retire","population":"p","task_id":"x","task":{"TaskID":"x"}}`,                            // retire with config
	} {
		if _, err := ParseOpFile([]byte(bad)); err == nil {
			t.Fatalf("op %s must be rejected", bad)
		}
	}
}

func TestDirScannerYieldsEachFileOnce(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("02-pause.json", `{"action":"pause","population":"p","task_id":"p/train"}`)
	write("01-retire.json", `{"action":"retire","population":"p","task_id":"p/old"}`)
	write("ignore.txt", "not json")

	s := NewDirScanner(dir)
	ops, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 2 || ops[0].File != "01-retire.json" || ops[1].File != "02-pause.json" {
		t.Fatalf("scan = %+v", ops)
	}
	if ops[0].Err != nil || ops[0].Op.Action != OpRetire {
		t.Fatalf("first op = %+v", ops[0])
	}

	// A second scan yields nothing old; a new file (even a broken one) is
	// yielded once, with its parse error attached.
	write("03-broken.json", `{nope`)
	ops, err = s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 1 || ops[0].File != "03-broken.json" || ops[0].Err == nil {
		t.Fatalf("second scan = %+v", ops)
	}
	ops, err = s.Scan()
	if err != nil || len(ops) != 0 {
		t.Fatalf("third scan must be empty: %+v, %v", ops, err)
	}
}
