// Package tasks makes FL tasks the first-class unit the model engineer
// operates on (Sec. 7): a TaskSet is a concurrent, storage-backed registry
// of the FL tasks deployed to one population. Tasks are submitted, paused,
// resumed, and retired on a *live* population; each carries a scheduling
// policy (weight for weighted round-robin, eval cadence against committed
// train rounds, deployment gates) and cumulative per-task stats. The
// Coordinator asks the TaskSet for its next task every scheduling tick
// instead of walking a frozen plan slice.
//
// Concurrency: the TaskSet is safe for concurrent use, but in the server
// all *mutations* arrive serialized through the Coordinator's mailbox, so
// a task can never change state in the middle of a scheduling decision.
// The registry itself must still outlive any one Coordinator: it is owned
// by the Server/Fleet entry and survives Coordinator crash/respawn.
//
// Persistence: every mutation (and every round outcome) snapshots the
// registry to the population's storage.Store, so a restarted process
// resumes the same task set — states, policies, and stats included.
// Config.Plans remains sugar that seeds a TaskSet with default-policy
// tasks.
package tasks

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/storage"
)

// State is a task's lifecycle state.
type State uint8

// Task lifecycle states. Active tasks are scheduled; Paused tasks keep
// their stats and policy but are skipped until resumed; Retired is
// terminal — a retired task's in-flight round is allowed to complete, but
// the task is never scheduled again.
const (
	Active State = iota + 1
	Paused
	Retired
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Paused:
		return "paused"
	case Retired:
		return "retired"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Policy is a task's scheduling policy — the knobs of the paper's Sec. 7
// task configuration that govern *when* the task runs, as opposed to the
// plan, which governs *what* it runs.
type Policy struct {
	// Weight is the task's share in the weighted round-robin over active
	// train tasks (default 1). A weight-3 task is scheduled three times as
	// often as a weight-1 task.
	Weight int
	// EvalEvery is the eval cadence: run this evaluation task after every N
	// committed train rounds of the population (default 1 for eval tasks;
	// ignored for train tasks). Eval traffic paces against training
	// progress, not wall clock, so a stalled population stops paying for
	// eval rounds.
	EvalEvery int
	// EvalOf names the task whose latest committed checkpoint this eval
	// task evaluates (default: the population's first train task). Eval
	// rounds serve that checkpoint read-only — they never advance it.
	EvalOf string
	// MinDevices gates scheduling on the population estimate: while the
	// estimated population is below this, the task is skipped (0 = no gate).
	MinDevices int
	// MinRuntimeVersion forbids serving this task to device runtimes older
	// than this version, even when plan versioning could lower the plan for
	// them (0 = lower whenever possible).
	MinRuntimeVersion int
}

// withDefaults fills the policy's zero values for a plan of type t.
func (p Policy) withDefaults(t plan.TaskType) Policy {
	if p.Weight <= 0 {
		p.Weight = 1
	}
	if t == plan.TaskEval && p.EvalEvery <= 0 {
		p.EvalEvery = 1
	}
	return p
}

// Stats is one task's cumulative lifecycle record.
type Stats struct {
	ID     string
	Type   plan.TaskType
	State  State
	Policy Policy
	// RoundsCommitted / RoundsFailed count this task's round outcomes.
	RoundsCommitted int
	RoundsFailed    int
	// Devices is the cumulative number of device reports across the task's
	// committed rounds.
	Devices int
	// LastRound is the global-model round number of the task's most recent
	// committed round (for eval tasks: the round of the checkpoint served).
	LastRound int64
	// LastRoundAt is when that round committed.
	LastRoundAt time.Time
	SubmittedAt time.Time
	// Note is the operator-visible reason for the task's current state —
	// set when the system pauses a task on its own initiative (AutoPause),
	// cleared when the task is resumed. Empty for operator-driven states.
	Note string
}

// Task is an immutable scheduling snapshot: the plan to run and the policy
// it runs under.
type Task struct {
	Plan   *plan.Plan
	Policy Policy
}

// record is the registry's mutable per-task state.
type record struct {
	plan   *plan.Plan
	policy Policy
	state  State
	stats  Stats
	// evalClock is the value of trainCommitted when the eval task last ran
	// (or was submitted); the task is due again once trainCommitted has
	// advanced by EvalEvery.
	evalClock int
	// wrr is the smooth weighted-round-robin current weight.
	wrr int
}

// TaskSet is the concurrent registry of one population's FL tasks.
type TaskSet struct {
	population string

	mu    sync.Mutex
	store storage.Store // nil = not persisted
	order []string
	tasks map[string]*record
	// trainCommitted counts committed train rounds across all tasks — the
	// clock eval cadences run against.
	trainCommitted int
	// estimate is the population-size estimate MinDevices gates check.
	estimate int
	now      func() time.Time
}

// New builds the task registry for a population, restoring any snapshot
// previously persisted to store (store may be nil for an unpersisted set).
func New(population string, store storage.Store, now func() time.Time) (*TaskSet, error) {
	if now == nil {
		now = time.Now
	}
	ts := &TaskSet{
		population: population,
		store:      store,
		tasks:      make(map[string]*record),
		now:        now,
	}
	if store != nil {
		b, err := store.TaskSet()
		if err != nil {
			return nil, fmt.Errorf("tasks: load persisted set: %w", err)
		}
		if len(b) > 0 {
			if err := ts.restore(b); err != nil {
				return nil, err
			}
		}
	}
	return ts, nil
}

// Seed submits each plan as an Active default-policy task — the
// Config.Plans sugar. A plan whose ID was already restored from storage
// with the SAME plan body is skipped (a restarted process keeps the
// persisted state, including a pause or retirement, rather than silently
// resurrecting the task); a *different* plan body under a restored ID is
// an error — dropping it silently would leave the operator believing the
// new plan deployed. Duplicate IDs within plans are an error.
func (ts *TaskSet) Seed(plans []*plan.Plan) error {
	seen := make(map[string]bool, len(plans))
	for _, p := range plans {
		if seen[p.ID] {
			return fmt.Errorf("tasks: duplicate task ID %q in Plans — task IDs name per-task checkpoint lineages and must be unique", p.ID)
		}
		seen[p.ID] = true
	}
	for _, p := range plans {
		ts.mu.Lock()
		existing, exists := ts.tasks[p.ID]
		ts.mu.Unlock()
		if exists {
			same, err := samePlan(existing.plan, p)
			if err != nil {
				return err
			}
			if !same {
				return fmt.Errorf("tasks: task %q already exists (restored from storage) with a different plan; retire it or submit the new plan under a new ID", p.ID)
			}
			continue
		}
		if err := ts.Submit(p, Policy{}); err != nil {
			return err
		}
	}
	return nil
}

// samePlan reports whether two plans have identical bodies (via their
// canonical wire encoding). The uplink report encoding is compared in its
// RESOLVED form (Plan.UplinkEncoding): plans persisted before
// ServerPlan.ReportEncoding existed carry 0 there, and a restart must not
// refuse its own prior state just because the same configuration now
// populates the new field.
func samePlan(a, b *plan.Plan) (bool, error) {
	normalize := func(p *plan.Plan) *plan.Plan {
		n := *p
		n.Server.ReportEncoding = p.UplinkEncoding()
		return &n
	}
	ab, err := normalize(a).Marshal()
	if err != nil {
		return false, fmt.Errorf("tasks: compare plans: %w", err)
	}
	bb, err := normalize(b).Marshal()
	if err != nil {
		return false, fmt.Errorf("tasks: compare plans: %w", err)
	}
	return bytes.Equal(ab, bb), nil
}

// Submit adds a new Active task. The plan must validate, belong to this
// population, and carry an ID no live or retired task has used: task IDs
// name per-task checkpoint lineages in storage, so a colliding resubmit
// would silently graft onto the old task's model state.
func (ts *TaskSet) Submit(p *plan.Plan, pol Policy) error {
	if p == nil {
		return fmt.Errorf("tasks: nil plan")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	if ts.population != "" && p.Population != ts.population {
		return fmt.Errorf("tasks: plan %q is for population %q, task set is %q", p.ID, p.Population, ts.population)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, dup := ts.tasks[p.ID]; dup {
		return fmt.Errorf("tasks: task %q already exists in population %q", p.ID, ts.population)
	}
	pol = pol.withDefaults(p.Type)
	if p.Type == plan.TaskEval && pol.EvalOf == "" {
		pol.EvalOf = ts.firstTrainIDLocked()
	}
	if pol.EvalOf != "" {
		base, ok := ts.tasks[pol.EvalOf]
		if !ok {
			return fmt.Errorf("tasks: eval task %q evaluates unknown task %q", p.ID, pol.EvalOf)
		}
		if base.plan.Type != plan.TaskTrain {
			return fmt.Errorf("tasks: eval task %q must evaluate a train task, %q is %s", p.ID, pol.EvalOf, base.plan.Type)
		}
	}
	ts.tasks[p.ID] = &record{
		plan:   p,
		policy: pol,
		state:  Active,
		stats: Stats{
			ID: p.ID, Type: p.Type, State: Active, Policy: pol,
			SubmittedAt: ts.now(),
		},
		evalClock: ts.trainCommitted,
	}
	ts.order = append(ts.order, p.ID)
	if err := ts.persistLocked(); err != nil {
		// The mutation must not outlive a failed persist: the caller reads
		// the error as "not submitted", so an unpersisted task must not
		// start scheduling rounds behind their back.
		delete(ts.tasks, p.ID)
		ts.order = ts.order[:len(ts.order)-1]
		return err
	}
	ts.gaugeStatesLocked()
	return nil
}

// Pause stops scheduling the task; an in-flight round completes normally.
func (ts *TaskSet) Pause(id string) error {
	return ts.setState(id, Paused, "pause", Active)
}

// AutoPause pauses the task on the system's own initiative and records the
// reason in Stats.Note, so operators see WHY the scheduler stopped running
// it instead of a silent failure loop. Resume clears the note. Pausing a
// task that is already paused or retired is an error, same as Pause.
func (ts *TaskSet) AutoPause(id, reason string) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	r, ok := ts.tasks[id]
	if !ok {
		return fmt.Errorf("tasks: no task %q in population %q", id, ts.population)
	}
	if r.state != Active {
		return fmt.Errorf("tasks: cannot auto-pause task %q: it is %s", id, r.state)
	}
	prevNote := r.stats.Note
	r.state = Paused
	r.stats.State = Paused
	r.stats.Note = reason
	if err := ts.persistLocked(); err != nil {
		r.state = Active
		r.stats.State = Active
		r.stats.Note = prevNote
		return err
	}
	ts.gaugeStatesLocked()
	return nil
}

// Resume reactivates a paused task and clears any auto-pause note.
func (ts *TaskSet) Resume(id string) error {
	return ts.setState(id, Active, "resume", Paused)
}

// Retire permanently stops scheduling the task. The in-flight round, if
// any, completes and its outcome is still recorded; the task never
// reschedules and cannot be resumed.
func (ts *TaskSet) Retire(id string) error {
	return ts.setState(id, Retired, "retire", Active, Paused)
}

// setState transitions id to next if its current state is in from.
func (ts *TaskSet) setState(id string, next State, verb string, from ...State) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	r, ok := ts.tasks[id]
	if !ok {
		return fmt.Errorf("tasks: no task %q in population %q", id, ts.population)
	}
	allowed := false
	for _, s := range from {
		if r.state == s {
			allowed = true
			break
		}
	}
	if !allowed {
		return fmt.Errorf("tasks: cannot %s task %q: it is %s", verb, id, r.state)
	}
	prev := r.state
	prevNote := r.stats.Note
	r.state = next
	r.stats.State = next
	if next == Active {
		r.stats.Note = ""
	}
	if err := ts.persistLocked(); err != nil {
		// An errored transition must not silently take effect.
		r.state = prev
		r.stats.State = prev
		r.stats.Note = prevNote
		return err
	}
	ts.gaugeStatesLocked()
	return nil
}

// gaugeStatesLocked refreshes the fl_tasks{state=...} gauges from the
// registry. Called (with ts.mu held) on every mutation that can change a
// task's lifecycle state, so the gauges are event-driven rather than
// polled and never lag a transition.
func (ts *TaskSet) gaugeStatesLocked() {
	var active, paused, retired int
	for _, r := range ts.tasks {
		switch r.state {
		case Active:
			active++
		case Paused:
			paused++
		case Retired:
			retired++
		}
	}
	// Labeled by population: a fleet gateway runs one TaskSet per
	// population in the same process, and unlabeled gauges would have
	// each set overwrite the others' counts.
	obs.Default.Gauge(obs.Label("fl_tasks", "population", ts.population, "state", "active")).Set(float64(active))
	obs.Default.Gauge(obs.Label("fl_tasks", "population", ts.population, "state", "paused")).Set(float64(paused))
	obs.Default.Gauge(obs.Label("fl_tasks", "population", ts.population, "state", "retired")).Set(float64(retired))
}

// SetPopulationEstimate updates the estimate the MinDevices gates check.
// The Coordinator feeds it live from the Selector layer's observed
// check-in rates, so gates track the population actually reachable rather
// than the static configuration value.
func (ts *TaskSet) SetPopulationEstimate(n int) {
	ts.mu.Lock()
	ts.estimate = n
	ts.mu.Unlock()
}

// PopulationEstimate returns the current estimate.
func (ts *TaskSet) PopulationEstimate() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.estimate
}

// GatedByEstimate reports whether any Active task is currently held back
// solely by its MinDevices population gate — the signal the Coordinator
// uses to keep re-checking an otherwise idle population as fresh estimate
// samples arrive.
func (ts *TaskSet) GatedByEstimate() bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	for _, id := range ts.order {
		r := ts.tasks[id]
		if r.state == Active && r.policy.MinDevices > 0 && ts.estimate > 0 && ts.estimate < r.policy.MinDevices {
			return true
		}
	}
	return false
}

// schedulable reports whether r passes its policy's deployment gates.
func (ts *TaskSet) schedulable(r *record) bool {
	if r.state != Active {
		return false
	}
	if r.policy.MinDevices > 0 && ts.estimate > 0 && ts.estimate < r.policy.MinDevices {
		return false
	}
	return true
}

// hasTrainTask reports whether any train-type task exists in the set (any
// state): eval cadences are pegged to training progress whenever the set
// has training at all, and only a pure-eval deployment falls back to
// scheduling eval tasks round-robin.
func (ts *TaskSet) hasTrainTaskLocked() bool {
	for _, id := range ts.order {
		if ts.tasks[id].plan.Type == plan.TaskTrain {
			return true
		}
	}
	return false
}

// firstTrainIDLocked returns the first-submitted train task's ID, or "".
func (ts *TaskSet) firstTrainIDLocked() string {
	for _, id := range ts.order {
		if ts.tasks[id].plan.Type == plan.TaskTrain {
			return id
		}
	}
	return ""
}

// PrimaryID returns the population's first-submitted train task (falling
// back to the first task of any type), the task whose round number stands
// in for "the population's current round" in coarse progress reports.
func (ts *TaskSet) PrimaryID() (string, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if id := ts.firstTrainIDLocked(); id != "" {
		return id, true
	}
	if len(ts.order) > 0 {
		return ts.order[0], true
	}
	return "", false
}

// Next returns the task the population should run its next round for, or
// ok=false when nothing is schedulable. Due evaluation tasks take priority
// (their cadence owes rounds to already-committed training progress);
// otherwise active train tasks share rounds by smooth weighted
// round-robin. Picking a due eval task consumes its due-ness; NoteFailed
// re-arms it so a failed eval round retries instead of waiting out another
// full cadence.
func (ts *TaskSet) Next() (Task, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	hasTrain := ts.hasTrainTaskLocked()

	// 1. Due eval tasks, in submission order.
	if hasTrain {
		for _, id := range ts.order {
			r := ts.tasks[id]
			if r.plan.Type != plan.TaskEval || !ts.schedulable(r) {
				continue
			}
			if ts.trainCommitted-r.evalClock >= r.policy.EvalEvery {
				r.evalClock = ts.trainCommitted
				return Task{Plan: r.plan, Policy: r.policy}, true
			}
		}
	}

	// 2. Smooth weighted round-robin over schedulable train tasks — or over
	// every schedulable task when the set has no training at all (a
	// pure-eval deployment has no train-round clock to pace against).
	var eligible []*record
	total := 0
	for _, id := range ts.order {
		r := ts.tasks[id]
		if !ts.schedulable(r) {
			continue
		}
		if hasTrain && r.plan.Type != plan.TaskTrain {
			continue
		}
		eligible = append(eligible, r)
		total += r.policy.Weight
	}
	if len(eligible) == 0 {
		return Task{}, false
	}
	var pick *record
	for _, r := range eligible {
		r.wrr += r.policy.Weight
		if pick == nil || r.wrr > pick.wrr {
			pick = r
		}
	}
	pick.wrr -= total
	return Task{Plan: pick.plan, Policy: pick.policy}, true
}

// Get returns the task's scheduling snapshot.
func (ts *TaskSet) Get(id string) (Task, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	r, ok := ts.tasks[id]
	if !ok {
		return Task{}, false
	}
	return Task{Plan: r.plan, Policy: r.policy}, true
}

// NoteCommitted records a committed round for the task: round is the
// global-model round number, devices the reports that survived
// aggregation. Committed *train* rounds advance the cadence clock eval
// tasks pace against.
func (ts *TaskSet) NoteCommitted(id string, round int64, devices int, at time.Time) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	r, ok := ts.tasks[id]
	if !ok {
		return
	}
	r.stats.RoundsCommitted++
	r.stats.Devices += devices
	r.stats.LastRound = round
	r.stats.LastRoundAt = at
	if r.plan.Type == plan.TaskTrain {
		ts.trainCommitted++
	}
	_ = ts.persistLocked()
}

// NoteFailed records an abandoned round for the task. A failed eval round
// re-arms the task's cadence one train commit out — it retries without
// waiting out another full EvalEvery, but because due eval tasks preempt
// train rounds, re-arming to *immediately due* would let a persistently
// failing eval task hot-loop and starve training forever; requiring one
// fresh train commit between attempts keeps the population progressing.
func (ts *TaskSet) NoteFailed(id string) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	r, ok := ts.tasks[id]
	if !ok {
		return
	}
	r.stats.RoundsFailed++
	if r.plan.Type == plan.TaskEval && r.policy.EvalEvery > 0 {
		r.evalClock = ts.trainCommitted - r.policy.EvalEvery + 1
	}
	_ = ts.persistLocked()
}

// Stats returns every task's cumulative record, in submission order.
func (ts *TaskSet) Stats() []Stats {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]Stats, 0, len(ts.order))
	for _, id := range ts.order {
		out = append(out, ts.tasks[id].stats)
	}
	return out
}

// StatsFor returns one task's cumulative record.
func (ts *TaskSet) StatsFor(id string) (Stats, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	r, ok := ts.tasks[id]
	if !ok {
		return Stats{}, false
	}
	return r.stats, true
}

// Len returns the number of tasks in the registry (any state).
func (ts *TaskSet) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.order)
}

// --- persistence ---

// savedTask is the gob-serialized form of one task record.
type savedTask struct {
	Plan      *plan.Plan
	Policy    Policy
	State     State
	Stats     Stats
	EvalClock int
}

// savedSet is the gob-serialized registry snapshot.
type savedSet struct {
	Tasks          []savedTask // in submission order
	TrainCommitted int
}

// persistLocked snapshots the registry to storage. Callers hold ts.mu.
func (ts *TaskSet) persistLocked() error {
	if ts.store == nil {
		return nil
	}
	s := savedSet{TrainCommitted: ts.trainCommitted}
	for _, id := range ts.order {
		r := ts.tasks[id]
		s.Tasks = append(s.Tasks, savedTask{
			Plan: r.plan, Policy: r.policy, State: r.state,
			Stats: r.stats, EvalClock: r.evalClock,
		})
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		return fmt.Errorf("tasks: persist: %w", err)
	}
	if err := ts.store.PutTaskSet(buf.Bytes()); err != nil {
		return fmt.Errorf("tasks: persist: %w", err)
	}
	return nil
}

// restore loads a persisted snapshot into an empty registry.
func (ts *TaskSet) restore(b []byte) error {
	var s savedSet
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		return fmt.Errorf("tasks: restore persisted set: %w", err)
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	ts.trainCommitted = s.TrainCommitted
	for _, st := range s.Tasks {
		if st.Plan == nil || st.Plan.ID == "" {
			return fmt.Errorf("tasks: restore: snapshot contains task without plan")
		}
		ts.tasks[st.Plan.ID] = &record{
			plan: st.Plan, policy: st.Policy, state: st.State,
			stats: st.Stats, evalClock: st.EvalClock,
		}
		ts.order = append(ts.order, st.Plan.ID)
	}
	ts.gaugeStatesLocked()
	return nil
}
