package tasks

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/nn"
	"repro/internal/plan"
	"repro/internal/storage"
)

func trainPlan(t *testing.T, id string) *plan.Plan {
	t.Helper()
	p, err := plan.Generate(plan.Config{
		TaskID: id, Population: "pop",
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName: "clicks", BatchSize: 10, Epochs: 1, LearningRate: 0.05,
		TargetDevices: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func evalPlan(t *testing.T, id string) *plan.Plan {
	t.Helper()
	p, err := plan.Generate(plan.Config{
		TaskID: id, Population: "pop", Type: plan.TaskEval,
		Model:     nn.Spec{Kind: nn.KindLogistic, Features: 4, Classes: 3, Seed: 1},
		StoreName: "clicks", TargetDevices: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newSet(t *testing.T) *TaskSet {
	t.Helper()
	ts, err := New("pop", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// commitTrainRound simulates the Coordinator committing one round for the
// task Next returned.
func commitTrainRound(ts *TaskSet, tk Task, round int64) {
	ts.NoteCommitted(tk.Plan.ID, round, tk.Plan.Server.TargetDevices, time.Unix(round, 0))
}

func TestSeedRejectsDuplicateIDs(t *testing.T) {
	ts := newSet(t)
	p := trainPlan(t, "pop/train")
	if err := ts.Seed([]*plan.Plan{p, trainPlan(t, "pop/train")}); err == nil {
		t.Fatal("duplicate plan IDs must be rejected")
	} else if !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("unhelpful duplicate error: %v", err)
	}
}

func TestSubmitRejectsDuplicateAndWrongPopulation(t *testing.T) {
	ts := newSet(t)
	p := trainPlan(t, "pop/train")
	if err := ts.Submit(p, Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Submit(trainPlan(t, "pop/train"), Policy{}); err == nil {
		t.Fatal("resubmitting an existing task ID must fail")
	}
	// Retired IDs stay reserved: their checkpoint lineage exists in storage.
	if err := ts.Retire("pop/train"); err != nil {
		t.Fatal(err)
	}
	if err := ts.Submit(trainPlan(t, "pop/train"), Policy{}); err == nil {
		t.Fatal("a retired task's ID must stay reserved")
	}
	other := trainPlan(t, "other/train")
	other.Population = "other"
	if err := ts.Submit(other, Policy{}); err == nil {
		t.Fatal("population mismatch must fail")
	}
}

func TestWeightedRoundRobinHonorsWeights(t *testing.T) {
	ts := newSet(t)
	if err := ts.Submit(trainPlan(t, "a"), Policy{Weight: 3}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Submit(trainPlan(t, "b"), Policy{Weight: 1}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 40; i++ {
		tk, ok := ts.Next()
		if !ok {
			t.Fatal("nothing schedulable")
		}
		counts[tk.Plan.ID]++
		commitTrainRound(ts, tk, int64(i))
	}
	if counts["a"] != 30 || counts["b"] != 10 {
		t.Fatalf("weight-3 vs weight-1 split = %v, want 30/10", counts)
	}
}

func TestEvalCadenceInterleavesWithTraining(t *testing.T) {
	ts := newSet(t)
	if err := ts.Submit(trainPlan(t, "train"), Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Submit(evalPlan(t, "eval"), Policy{EvalEvery: 2}); err != nil {
		t.Fatal(err)
	}
	var seq []string
	for i := 0; i < 12; i++ {
		tk, ok := ts.Next()
		if !ok {
			t.Fatal("nothing schedulable")
		}
		seq = append(seq, tk.Plan.ID)
		commitTrainRound(ts, tk, int64(i))
	}
	// Eval runs after every 2 committed train rounds: t t e t t e ...
	want := []string{"train", "train", "eval", "train", "train", "eval", "train", "train", "eval", "train", "train", "eval"}
	if fmt.Sprint(seq) != fmt.Sprint(want) {
		t.Fatalf("schedule = %v, want %v", seq, want)
	}
	st, _ := ts.StatsFor("eval")
	if st.Policy.EvalOf != "train" {
		t.Fatalf("eval task must default EvalOf to the first train task, got %q", st.Policy.EvalOf)
	}
}

func TestFailedEvalRoundRearmsAfterOneTrainCommit(t *testing.T) {
	ts := newSet(t)
	if err := ts.Submit(trainPlan(t, "train"), Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Submit(evalPlan(t, "eval"), Policy{EvalEvery: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		tk, _ := ts.Next()
		if tk.Plan.ID != "train" {
			t.Fatalf("round %d: got %s", i, tk.Plan.ID)
		}
		commitTrainRound(ts, tk, int64(i))
	}
	tk, _ := ts.Next()
	if tk.Plan.ID != "eval" {
		t.Fatalf("eval should be due after 3 train commits, got %s", tk.Plan.ID)
	}
	ts.NoteFailed("eval")
	// A failed eval must NOT be immediately due again (a persistently
	// failing eval would starve training); it retries after ONE more train
	// commit instead of waiting out the full cadence.
	tk, _ = ts.Next()
	if tk.Plan.ID != "train" {
		t.Fatalf("after an eval failure training must proceed, got %s", tk.Plan.ID)
	}
	commitTrainRound(ts, tk, 3)
	tk, _ = ts.Next()
	if tk.Plan.ID != "eval" {
		t.Fatalf("failed eval must retry after one train commit, got %s", tk.Plan.ID)
	}
}

// failingTaskStore rejects task-set snapshots; the embedded Store serves
// everything else.
type failingTaskStore struct {
	storage.Store
	fail bool
}

func (s *failingTaskStore) PutTaskSet(b []byte) error {
	if s.fail {
		return fmt.Errorf("injected task-set persist failure")
	}
	return s.Store.PutTaskSet(b)
}

func TestFailedPersistRollsMutationBack(t *testing.T) {
	store := &failingTaskStore{Store: storage.NewMem()}
	ts, err := New("pop", store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Submit(trainPlan(t, "a"), Policy{}); err != nil {
		t.Fatal(err)
	}
	store.fail = true
	if err := ts.Submit(trainPlan(t, "b"), Policy{}); err == nil {
		t.Fatal("submit must surface the persist failure")
	}
	if ts.Len() != 1 {
		t.Fatalf("unpersisted submit left the task behind: %d tasks", ts.Len())
	}
	if err := ts.Pause("a"); err == nil {
		t.Fatal("pause must surface the persist failure")
	}
	if st, _ := ts.StatsFor("a"); st.State != Active {
		t.Fatalf("errored pause took effect: %v", st.State)
	}
	// Recovery: once storage heals, the same mutations succeed.
	store.fail = false
	if err := ts.Submit(trainPlan(t, "b"), Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Pause("a"); err != nil {
		t.Fatal(err)
	}
}

func TestSeedRejectsChangedPlanUnderRestoredID(t *testing.T) {
	store := storage.NewMem()
	ts, err := New("pop", store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Seed([]*plan.Plan{trainPlan(t, "pop/train")}); err != nil {
		t.Fatal(err)
	}
	// Restart with the identical plan: fine, persisted state kept.
	ts2, err := New("pop", store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts2.Seed([]*plan.Plan{trainPlan(t, "pop/train")}); err != nil {
		t.Fatal(err)
	}
	// Restart with a CHANGED plan under the same ID: silently keeping the
	// old plan would mislead the operator — it must error.
	changed := trainPlan(t, "pop/train")
	changed.Device.LearningRate = 0.5
	ts3, err := New("pop", store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts3.Seed([]*plan.Plan{changed}); err == nil {
		t.Fatal("a changed plan body under a restored task ID must be rejected")
	}
}

func TestPauseResumeRetire(t *testing.T) {
	ts := newSet(t)
	if err := ts.Submit(trainPlan(t, "a"), Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Submit(trainPlan(t, "b"), Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Pause("a"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		tk, ok := ts.Next()
		if !ok || tk.Plan.ID != "b" {
			t.Fatalf("paused task scheduled: %v %v", tk.Plan, ok)
		}
	}
	if err := ts.Pause("a"); err == nil {
		t.Fatal("pausing a paused task must fail")
	}
	if err := ts.Resume("a"); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		tk, _ := ts.Next()
		seen[tk.Plan.ID] = true
	}
	if !seen["a"] || !seen["b"] {
		t.Fatalf("resumed task not scheduled: %v", seen)
	}
	if err := ts.Retire("a"); err != nil {
		t.Fatal(err)
	}
	if err := ts.Resume("a"); err == nil {
		t.Fatal("retirement must be terminal")
	}
	for i := 0; i < 6; i++ {
		tk, ok := ts.Next()
		if !ok || tk.Plan.ID != "a" {
			continue
		}
		t.Fatal("retired task scheduled")
	}
	// A retired task's in-flight round outcome is still recorded.
	ts.NoteCommitted("a", 9, 4, time.Unix(9, 0))
	st, _ := ts.StatsFor("a")
	if st.RoundsCommitted != 1 || st.State != Retired {
		t.Fatalf("retired task stats = %+v", st)
	}
}

func TestAutoPauseRecordsReasonUntilResume(t *testing.T) {
	ts := newSet(t)
	if err := ts.Submit(trainPlan(t, "a"), Policy{}); err != nil {
		t.Fatal(err)
	}
	const reason = "secure aggregation is unavailable in sharded mode"
	if err := ts.AutoPause("a", reason); err != nil {
		t.Fatal(err)
	}
	st, _ := ts.StatsFor("a")
	if st.State != Paused || st.Note != reason {
		t.Fatalf("auto-paused stats = %+v, want Paused with note", st)
	}
	if _, ok := ts.Next(); ok {
		t.Fatal("auto-paused task must not schedule")
	}
	if err := ts.AutoPause("a", "again"); err == nil {
		t.Fatal("auto-pausing a paused task must fail")
	}
	if err := ts.AutoPause("missing", "x"); err == nil {
		t.Fatal("auto-pausing an unknown task must fail")
	}
	if err := ts.Resume("a"); err != nil {
		t.Fatal(err)
	}
	st, _ = ts.StatsFor("a")
	if st.State != Active || st.Note != "" {
		t.Fatalf("resume must clear the note: %+v", st)
	}
	if _, ok := ts.Next(); !ok {
		t.Fatal("resumed task must schedule again")
	}
}

func TestAutoPauseNoteSurvivesRestart(t *testing.T) {
	store := storage.NewMem()
	ts, err := New("pop", store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Submit(trainPlan(t, "a"), Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := ts.AutoPause("a", "why it stopped"); err != nil {
		t.Fatal(err)
	}
	ts2, err := New("pop", store, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := ts2.StatsFor("a")
	if !ok || st.State != Paused || st.Note != "why it stopped" {
		t.Fatalf("restored stats = %+v, want paused with note", st)
	}
}

func TestAllPausedMeansNothingSchedulable(t *testing.T) {
	ts := newSet(t)
	if err := ts.Submit(trainPlan(t, "a"), Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Pause("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := ts.Next(); ok {
		t.Fatal("nothing should be schedulable")
	}
}

func TestMinDevicesGate(t *testing.T) {
	ts := newSet(t)
	if err := ts.Submit(trainPlan(t, "big"), Policy{MinDevices: 5000}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Submit(trainPlan(t, "small"), Policy{}); err != nil {
		t.Fatal(err)
	}
	ts.SetPopulationEstimate(1000)
	for i := 0; i < 6; i++ {
		tk, ok := ts.Next()
		if !ok || tk.Plan.ID != "small" {
			t.Fatalf("gated task scheduled: %+v %v", tk, ok)
		}
	}
	ts.SetPopulationEstimate(10000)
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		tk, _ := ts.Next()
		seen[tk.Plan.ID] = true
	}
	if !seen["big"] {
		t.Fatal("task must schedule once the population estimate covers MinDevices")
	}
}

func TestPureEvalSetSchedulesRoundRobin(t *testing.T) {
	// A set with no train task has no cadence clock: eval tasks share
	// rounds by weighted round-robin instead of never running.
	ts := newSet(t)
	if err := ts.Submit(evalPlan(t, "e1"), Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Submit(evalPlan(t, "e2"), Policy{}); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		tk, ok := ts.Next()
		if !ok {
			t.Fatal("nothing schedulable")
		}
		counts[tk.Plan.ID]++
	}
	if counts["e1"] != 4 || counts["e2"] != 4 {
		t.Fatalf("pure-eval round robin = %v", counts)
	}
}

func TestEvalOfMustNameATrainTask(t *testing.T) {
	ts := newSet(t)
	if err := ts.Submit(evalPlan(t, "e1"), Policy{EvalOf: "nope"}); err == nil {
		t.Fatal("unknown EvalOf must be rejected")
	}
	if err := ts.Submit(evalPlan(t, "e1"), Policy{}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Submit(evalPlan(t, "e2"), Policy{EvalOf: "e1"}); err == nil {
		t.Fatal("EvalOf naming an eval task must be rejected")
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	store := storage.NewMem()
	ts, err := New("pop", store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Submit(trainPlan(t, "train"), Policy{Weight: 2}); err != nil {
		t.Fatal(err)
	}
	if err := ts.Submit(evalPlan(t, "eval"), Policy{EvalEvery: 3}); err != nil {
		t.Fatal(err)
	}
	ts.NoteCommitted("train", 7, 12, time.Unix(100, 0))
	if err := ts.Pause("eval"); err != nil {
		t.Fatal(err)
	}

	// A "restarted process": a fresh TaskSet over the same store.
	ts2, err := New("pop", store, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := ts2.Stats()
	if len(got) != 2 {
		t.Fatalf("restored %d tasks, want 2", len(got))
	}
	if got[0].ID != "train" || got[0].Policy.Weight != 2 || got[0].RoundsCommitted != 1 ||
		got[0].LastRound != 7 || got[0].Devices != 12 {
		t.Fatalf("restored train stats = %+v", got[0])
	}
	if got[1].ID != "eval" || got[1].State != Paused || got[1].Policy.EvalEvery != 3 ||
		got[1].Policy.EvalOf != "train" {
		t.Fatalf("restored eval stats = %+v", got[1])
	}
	// Seeding the restored set with the same plan must keep the persisted
	// state (no silent resurrection of the paused eval task).
	if err := ts2.Seed([]*plan.Plan{trainPlan(t, "train"), evalPlan(t, "eval")}); err != nil {
		t.Fatal(err)
	}
	if st, _ := ts2.StatsFor("eval"); st.State != Paused {
		t.Fatalf("seed resurrected a paused task: %+v", st)
	}
	// The cadence clock survived: one more train commit makes eval due
	// after resume... (EvalEvery 3, one committed so far).
	if err := ts2.Resume("eval"); err != nil {
		t.Fatal(err)
	}
	tk, ok := ts2.Next()
	if !ok || tk.Plan.ID != "train" {
		t.Fatalf("restored set scheduled %v, want train", tk.Plan)
	}
}

func TestConcurrentUse(t *testing.T) {
	// The registry must be safe under concurrent mutation + scheduling:
	// the server serializes mutations through the Coordinator, but the
	// TaskSet outlives Coordinators and is queried from other goroutines.
	ts := newSet(t)
	if err := ts.Submit(trainPlan(t, "seed"), Policy{}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("task-%d", w)
			_ = ts.Submit(trainPlan(t, id), Policy{Weight: w + 1})
			for i := 0; i < 100; i++ {
				if tk, ok := ts.Next(); ok {
					ts.NoteCommitted(tk.Plan.ID, int64(i), 1, time.Unix(int64(i), 0))
				}
				_ = ts.Stats()
				if i%10 == 0 {
					_ = ts.Pause(id)
					_ = ts.Resume(id)
				}
			}
		}()
	}
	wg.Wait()
	if ts.Len() != 9 {
		t.Fatalf("len = %d, want 9", ts.Len())
	}
}

func TestSeedAcceptsPlansPersistedBeforeServerReportEncoding(t *testing.T) {
	// Plans persisted before ServerPlan.ReportEncoding existed carry 0 in
	// that field; a restarted process re-generating the SAME configuration
	// (which now populates the field) must recognize its own prior state,
	// not refuse to start with "different plan".
	store := storage.NewMem()
	p := trainPlan(t, "upgrade")
	old := *p
	old.Server.ReportEncoding = 0 // pre-upgrade snapshot shape
	ts1, err := New("pop", store, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts1.Submit(&old, Policy{}); err != nil {
		t.Fatal(err)
	}
	ts2, err := New("pop", store, nil) // restores the old-shape snapshot
	if err != nil {
		t.Fatal(err)
	}
	if err := ts2.Seed([]*plan.Plan{p}); err != nil {
		t.Fatalf("restart refused its own pre-upgrade task set: %v", err)
	}
	// A genuinely different encoding is still a different plan.
	changed := *p
	changed.Server.ReportEncoding = checkpoint.EncodingFloat64
	changed.Device.ReportEncoding = checkpoint.EncodingFloat64
	if err := ts2.Seed([]*plan.Plan{&changed}); err == nil {
		t.Fatal("a changed uplink encoding must still read as a different plan")
	}
}
