package tasks

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/plan"
)

// OpFile is one operator instruction for a live FL process, dropped as a
// JSON file into the directory a server watches (`flserver -tasks-dir`).
// This is the paper's Sec. 7 workflow with the Python tooling swapped for
// files: a model engineer writes a task configuration, drops it next to a
// running deployment, and the new task is scheduled onto the live
// population — no restart, no redeploy.
//
//	{
//	  "action":     "submit",            // submit | pause | resume | retire
//	  "population": "gboard",
//	  "task":       { ...plan.Config... },      // submit only
//	  "policy":     { "EvalEvery": 2, "EvalOf": "gboard/train" },
//	  "task_id":    "gboard/eval"        // pause / resume / retire only
//	}
type OpFile struct {
	// Action defaults to "submit" when a task config is present.
	Action     string `json:"action"`
	Population string `json:"population"`
	// Task is the model-engineer task configuration (plan.Generate input);
	// required for submit.
	Task *plan.Config `json:"task"`
	// Policy is the submitted task's scheduling policy (optional).
	Policy Policy `json:"policy"`
	// TaskID names the task for pause / resume / retire.
	TaskID string `json:"task_id"`
}

// Op actions.
const (
	OpSubmit = "submit"
	OpPause  = "pause"
	OpResume = "resume"
	OpRetire = "retire"
)

// ParseOpFile decodes and validates one operator instruction.
func ParseOpFile(b []byte) (*OpFile, error) {
	var op OpFile
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&op); err != nil {
		return nil, fmt.Errorf("tasks: bad op file: %w", err)
	}
	if dec.More() {
		// Trailing data usually means two ops were concatenated into one
		// file; applying only the first silently would hide the mistake.
		return nil, fmt.Errorf("tasks: op file has trailing data after the op object (one op per file)")
	}
	if op.Action == "" {
		op.Action = OpSubmit
	}
	if op.Population == "" {
		return nil, fmt.Errorf("tasks: op file needs a population")
	}
	switch op.Action {
	case OpSubmit:
		if op.Task == nil {
			return nil, fmt.Errorf("tasks: submit op needs a task configuration")
		}
		if op.TaskID != "" && op.TaskID != op.Task.TaskID {
			return nil, fmt.Errorf("tasks: task_id %q contradicts task.TaskID %q", op.TaskID, op.Task.TaskID)
		}
	case OpPause, OpResume, OpRetire:
		if op.TaskID == "" {
			return nil, fmt.Errorf("tasks: %s op needs task_id", op.Action)
		}
		if op.Task != nil {
			return nil, fmt.Errorf("tasks: %s op must not carry a task configuration", op.Action)
		}
	default:
		return nil, fmt.Errorf("tasks: unknown action %q", op.Action)
	}
	return &op, nil
}

// DirScanner polls a directory for operator instruction files, yielding
// each *.json file exactly once (keyed by name; rewriting a processed file
// under a new name submits a new op). Files that fail to parse are also
// consumed — and reported — so a typo cannot wedge the watcher in a retry
// loop.
type DirScanner struct {
	dir  string
	seen map[string]bool
}

// NewDirScanner watches dir.
func NewDirScanner(dir string) *DirScanner {
	return &DirScanner{dir: dir, seen: make(map[string]bool)}
}

// PendingOp is one newly discovered instruction (or its parse failure).
type PendingOp struct {
	File string
	Op   *OpFile
	Err  error
}

// Scan returns the ops that appeared since the last scan, in file-name
// order (operators sequence multi-step rollouts with sortable names).
func (s *DirScanner) Scan() ([]PendingOp, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("tasks: scan %s: %w", s.dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != ".json" || s.seen[name] {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var out []PendingOp
	for _, name := range names {
		s.seen[name] = true
		p := PendingOp{File: name}
		b, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			p.Err = err
		} else {
			p.Op, p.Err = ParseOpFile(b)
		}
		out = append(out, p)
	}
	return out, nil
}
