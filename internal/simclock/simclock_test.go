package simclock

import (
	"testing"
	"time"
)

var t0 = time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC)

func TestScheduleOrdering(t *testing.T) {
	c := New(t0)
	var got []int
	c.Schedule(2*time.Second, func() { got = append(got, 2) })
	c.Schedule(1*time.Second, func() { got = append(got, 1) })
	c.Schedule(3*time.Second, func() { got = append(got, 3) })
	c.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v", got)
	}
	if c.Now() != t0.Add(3*time.Second) {
		t.Fatalf("final time = %v", c.Now())
	}
}

func TestTieBreakByScheduleOrder(t *testing.T) {
	c := New(t0)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(time.Second, func() { got = append(got, i) })
	}
	c.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("ties must run in schedule order, got %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	c := New(t0)
	var fired []string
	c.Schedule(time.Second, func() {
		fired = append(fired, "outer")
		c.Schedule(time.Second, func() { fired = append(fired, "inner") })
	})
	c.Run(0)
	if len(fired) != 2 || fired[1] != "inner" {
		t.Fatalf("fired = %v", fired)
	}
	if c.Now() != t0.Add(2*time.Second) {
		t.Fatalf("time = %v", c.Now())
	}
}

func TestRunUntilPartial(t *testing.T) {
	c := New(t0)
	var count int
	for i := 1; i <= 5; i++ {
		c.Schedule(time.Duration(i)*time.Minute, func() { count++ })
	}
	c.RunUntil(t0.Add(3 * time.Minute))
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if c.Now() != t0.Add(3*time.Minute) {
		t.Fatalf("time = %v", c.Now())
	}
	if c.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", c.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	c := New(t0)
	c.RunUntil(t0.Add(time.Hour))
	if c.Now() != t0.Add(time.Hour) {
		t.Fatal("RunUntil must advance time with no events")
	}
}

func TestRunForRelative(t *testing.T) {
	c := New(t0)
	fired := false
	c.Schedule(30*time.Minute, func() { fired = true })
	c.RunFor(time.Hour)
	if !fired {
		t.Fatal("event within window did not fire")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	c := New(t0)
	fired := false
	c.Schedule(-5*time.Second, func() { fired = true })
	c.Step()
	if !fired || c.Now() != t0 {
		t.Fatalf("negative delay: fired=%v now=%v", fired, c.Now())
	}
}

func TestScheduleAtPastClamped(t *testing.T) {
	c := New(t0)
	c.RunUntil(t0.Add(time.Hour))
	fired := false
	c.ScheduleAt(t0, func() { fired = true }) // in the past
	c.Step()
	if !fired || c.Now() != t0.Add(time.Hour) {
		t.Fatal("past events must run immediately without rewinding time")
	}
}

func TestMaxEventsGuard(t *testing.T) {
	c := New(t0)
	var reschedule func()
	n := 0
	reschedule = func() {
		n++
		c.Schedule(time.Second, reschedule)
	}
	c.Schedule(time.Second, reschedule)
	ran := c.Run(100)
	if ran != 100 || n != 100 {
		t.Fatalf("ran %d events, n=%d, want 100", ran, n)
	}
}

func TestStepEmpty(t *testing.T) {
	c := New(t0)
	if c.Step() {
		t.Fatal("Step on empty queue should return false")
	}
}
