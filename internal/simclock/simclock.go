// Package simclock provides a deterministic discrete-event clock. The
// paper's operational figures cover multi-day windows (Figs. 5–9); the
// simulation harness advances this clock through simulated days in
// milliseconds of wall time, with fully reproducible event ordering.
package simclock

import (
	"container/heap"
	"time"
)

// Clock is a discrete-event simulated clock. It is not safe for concurrent
// use: the simulation harness is single-threaded by design, which is what
// makes multi-day experiments deterministic.
type Clock struct {
	now time.Time
	seq uint64
	pq  eventHeap
}

type event struct {
	at  time.Time
	seq uint64 // tie-breaker: schedule order
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// New returns a clock starting at the given time.
func New(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Time { return c.now }

// Schedule runs fn after delay d (events at equal times run in schedule
// order). A negative delay is treated as zero.
func (c *Clock) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.ScheduleAt(c.now.Add(d), fn)
}

// ScheduleAt runs fn at time t; times before now are clamped to now.
func (c *Clock) ScheduleAt(t time.Time, fn func()) {
	if t.Before(c.now) {
		t = c.now
	}
	c.seq++
	heap.Push(&c.pq, &event{at: t, seq: c.seq, fn: fn})
}

// Pending returns the number of scheduled events.
func (c *Clock) Pending() int { return c.pq.Len() }

// Step executes the next event, advancing time to it. It returns false when
// no events remain.
func (c *Clock) Step() bool {
	if c.pq.Len() == 0 {
		return false
	}
	e := heap.Pop(&c.pq).(*event)
	c.now = e.at
	e.fn()
	return true
}

// RunUntil executes events up to and including time t, then advances the
// clock to t even if no event landed exactly there.
func (c *Clock) RunUntil(t time.Time) {
	for c.pq.Len() > 0 && !c.pq[0].at.After(t) {
		c.Step()
	}
	if c.now.Before(t) {
		c.now = t
	}
}

// RunFor executes events for the next duration d.
func (c *Clock) RunFor(d time.Duration) { c.RunUntil(c.now.Add(d)) }

// Run executes every scheduled event (including ones scheduled while
// running), stopping when the queue is empty or after maxEvents events (a
// guard against runaway self-rescheduling; pass 0 for no limit). It returns
// the number of events executed.
func (c *Clock) Run(maxEvents int) int {
	n := 0
	for c.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}
