package secagg

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/field"
)

// workers returns the degree of parallelism for protocol hot paths: one
// worker per scheduler proc, never more than one per task.
func workers(tasks int) int {
	w := runtime.GOMAXPROCS(0)
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runWorkers drains n tasks on w workers and returns the first error.
// Tasks are pulled from a shared atomic counter so uneven task costs (an
// ECDH here, a cache hit there) still balance; an error stops the other
// workers at their next pull.
func runWorkers(w, n int, body func(worker, task int) error) error {
	var (
		next int64
		wg   sync.WaitGroup
	)
	errs := make([]error, w)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				if err := body(k, i); err != nil {
					errs[k] = err
					atomic.StoreInt64(&next, int64(n)) // stop the other workers
					return
				}
			}
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// parallelFor runs fn(0..n-1) across the worker pool and returns the first
// error. With one worker it runs inline, adding nothing to the serial path.
func parallelFor(n int, fn func(i int) error) error {
	w := workers(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	return runWorkers(w, n, func(_, i int) error { return fn(i) })
}

// parallelMasks applies n mask expansions into dst. Each worker accumulates
// into a private partial vector in GF(2^61−1) — apply adds or subtracts its
// masks into the accumulator it is handed — and the partials are merged
// into dst once at the end, so workers never contend on dst and the
// transient memory is O(workers × len), not O(n × len). With one worker,
// apply writes straight into dst: the serial path allocates nothing extra.
func parallelMasks(dst []uint64, n int, apply func(i int, acc []uint64) error) error {
	w := workers(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if err := apply(i, dst); err != nil {
				return err
			}
		}
		return nil
	}
	partials := make([][]uint64, w)
	err := runWorkers(w, n, func(k, i int) error {
		if partials[k] == nil {
			partials[k] = make([]uint64, len(dst))
		}
		return apply(i, partials[k])
	})
	if err != nil {
		return err
	}
	for _, acc := range partials {
		if acc != nil {
			field.AddVec(dst, dst, acc)
		}
	}
	return nil
}
