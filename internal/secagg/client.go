package secagg

import (
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	"io"
	"sort"

	"repro/internal/field"
)

// KeyAdvert is a device's Round-0 message: its identity and two X25519
// public keys (CPub for share encryption, SPub for pairwise masking).
type KeyAdvert struct {
	ID   int
	CPub []byte
	SPub []byte
}

// RoutedShare is an encrypted Round-1 share bundle in transit: the server
// routes it to its holder, who needs Owner to derive the decryption key.
type RoutedShare struct {
	Owner  int
	Holder int
	CT     []byte
}

// OwnerShare is one revealed share in a Round-3 unmask response. Blinder
// opens the owner's broadcast commitment to this share, letting the
// server verify the revelation before it enters reconstruction.
type OwnerShare struct {
	Owner   int
	Share   chunkedShare
	Blinder []byte
}

// UnmaskResponse is a device's Round-3 message: shares of the personal mask
// seeds of survivors and of the masking secret keys of dropped devices.
// A correct client never reveals both kinds for the same owner.
type UnmaskResponse struct {
	From     int
	BShares  []OwnerShare
	SKShares []OwnerShare
}

// Client is one device's protocol state machine. IDs are 1-based and must
// be unique within the instance.
type Client struct {
	id  int
	cfg Config

	cKey *ecdh.PrivateKey // share-encryption keypair
	sKey *ecdh.PrivateKey // masking keypair
	seed []byte           // personal mask seed b_u

	roster    map[int]KeyAdvert
	rosterIDs []int

	held map[int]*shareBundle // shares I hold, keyed by owner

	// commits holds every owner's broadcast share commitments (installed
	// by ReceiveCommitments); own is this client's outgoing set.
	commits map[int]ShareCommitments
	own     *ShareCommitments

	// maskSet is the server's broadcast of the devices still in the
	// protocol after the share round (shares delivered, not blamed).
	// Pairwise masks cover exactly this set, so a device that vanished or
	// was excluded before masking leaves no residual mask to reconstruct.
	// Nil means the full roster (instances run without the complaint
	// round, e.g. the legacy driver path).
	maskSet map[int]bool

	// poison and forge are adversary injection hooks for the churn driver
	// and tests: poison corrupts the Round-1 share bundles after the
	// commitments are computed (holders detect the mismatch and complain);
	// forge corrupts the shares revealed in the Round-3 unmask response
	// (the server detects the mismatch and blames this responder).
	poison bool
	forge  bool

	// cShared caches the share-encryption ECDH secret per peer: the secret
	// is symmetric, so the value derived to encrypt an outgoing bundle in
	// Round 1 decrypts the incoming bundle from the same peer — computing
	// it twice would double the client's dominant X25519 cost.
	cShared map[int][]byte
}

// NewClient creates a device participant with fresh keys.
func NewClient(id int, cfg Config) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if id < 1 {
		return nil, fmt.Errorf("secagg: client id must be ≥ 1, got %d", id)
	}
	curve := ecdh.X25519()
	cKey, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secagg: keygen: %w", err)
	}
	sKey, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secagg: keygen: %w", err)
	}
	seed := make([]byte, secretByteLen)
	if _, err := io.ReadFull(rand.Reader, seed); err != nil {
		return nil, fmt.Errorf("secagg: seed: %w", err)
	}
	return &Client{
		id: id, cfg: cfg, cKey: cKey, sKey: sKey, seed: seed,
		held:    make(map[int]*shareBundle),
		cShared: make(map[int][]byte),
	}, nil
}

// ID returns the participant id.
func (c *Client) ID() int { return c.id }

// Advertise returns the Round-0 key advertisement.
func (c *Client) Advertise() KeyAdvert {
	return KeyAdvert{ID: c.id, CPub: c.cKey.PublicKey().Bytes(), SPub: c.sKey.PublicKey().Bytes()}
}

// ReceiveRoster installs the server's broadcast of Round-0 adverts (the set
// U1). The roster must contain this client and at least T participants.
func (c *Client) ReceiveRoster(roster []KeyAdvert) error {
	if len(roster) < c.cfg.T {
		return fmt.Errorf("secagg: roster of %d below threshold %d", len(roster), c.cfg.T)
	}
	m := make(map[int]KeyAdvert, len(roster))
	ids := make([]int, 0, len(roster))
	for _, a := range roster {
		if _, dup := m[a.ID]; dup {
			return fmt.Errorf("secagg: duplicate id %d in roster", a.ID)
		}
		m[a.ID] = a
		ids = append(ids, a.ID)
	}
	if _, ok := m[c.id]; !ok {
		return fmt.Errorf("secagg: roster does not include self (%d)", c.id)
	}
	sort.Ints(ids)
	c.roster = m
	c.rosterIDs = ids
	return nil
}

// ShareKeys produces the Round-1 encrypted share bundles, one per roster
// member (including one to self, which the server routes back), and the
// matching commitment broadcast (Commitments).
func (c *Client) ShareKeys() ([]RoutedShare, error) {
	if c.roster == nil {
		return nil, fmt.Errorf("secagg: ShareKeys before roster")
	}
	n := len(c.rosterIDs)
	bShares, err := splitBytes(c.seed, n, c.cfg.T, rand.Reader)
	if err != nil {
		return nil, err
	}
	skShares, err := splitBytes(c.sKey.Bytes(), n, c.cfg.T, rand.Reader)
	if err != nil {
		return nil, err
	}
	own := &ShareCommitments{Owner: c.id, B: make([][]byte, n), SK: make([][]byte, n)}
	out := make([]RoutedShare, n)
	secrets := make([][]byte, n)
	// One ECDH + AES-GCM seal per roster member: independent work, fanned
	// across the worker pool. Workers write only their own slots; the
	// secret cache (a map) is filled serially afterwards.
	err = parallelFor(n, func(i int) error {
		holder := c.rosterIDs[i]
		bundle := &shareBundle{Owner: c.id, Holder: holder, BShare: bShares[i], SKShare: skShares[i]}
		// Re-key share X coordinates to the holder id so reconstruction uses
		// consistent evaluation points across owners.
		bundle.BShare.X = uint64(i + 1)
		bundle.SKShare.X = uint64(i + 1)
		bBlind, err := field.NewBlinder(rand.Reader)
		if err != nil {
			return err
		}
		skBlind, err := field.NewBlinder(rand.Reader)
		if err != nil {
			return err
		}
		bundle.BBlind, bundle.SKBlind = bBlind, skBlind
		bc := commitChunked(c.id, kindB, bundle.BShare, bundle.BBlind)
		kc := commitChunked(c.id, kindSK, bundle.SKShare, bundle.SKBlind)
		own.B[i] = bc[:]
		own.SK[i] = kc[:]
		if c.poison {
			// Adversary hook: commit honestly, then ship a share that does
			// not open the commitment — the holder must detect and complain.
			bundle.BShare.Ys[0] = field.Add(bundle.BShare.Ys[0], 1)
			bundle.SKShare.Ys[0] = field.Add(bundle.SKShare.Ys[0], 1)
		}
		shared, err := c.deriveC(holder)
		if err != nil {
			return err
		}
		secrets[i] = shared
		ct, err := encryptBundle(shared, bundle)
		if err != nil {
			return err
		}
		out[i] = RoutedShare{Owner: c.id, Holder: holder, CT: ct}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, holder := range c.rosterIDs {
		c.cShared[holder] = secrets[i]
	}
	c.own = own
	return out, nil
}

// Commitments returns the commitment broadcast matching the last
// ShareKeys call.
func (c *Client) Commitments() (ShareCommitments, error) {
	if c.own == nil {
		return ShareCommitments{}, fmt.Errorf("secagg: Commitments before ShareKeys")
	}
	return *c.own, nil
}

// ReceiveCommitments installs the server's relay of every owner's share
// commitments. Structurally invalid sets are dropped (their owners' later
// bundles will draw complaints for missing commitments).
func (c *Client) ReceiveCommitments(all []ShareCommitments) error {
	if c.roster == nil {
		return fmt.Errorf("secagg: ReceiveCommitments before roster")
	}
	if c.commits == nil {
		c.commits = make(map[int]ShareCommitments, len(all))
	}
	for _, sc := range all {
		if _, ok := c.roster[sc.Owner]; !ok {
			continue
		}
		if err := sc.validate(len(c.rosterIDs)); err != nil {
			continue
		}
		c.commits[sc.Owner] = sc
	}
	return nil
}

// rosterIndex returns this client's 0-based position in the sorted roster
// (its shares' evaluation point is position+1).
func (c *Client) rosterIndex() int {
	for i, id := range c.rosterIDs {
		if id == c.id {
			return i
		}
	}
	return -1
}

// ReceiveShares decrypts, verifies, and stores the Round-1 bundles routed
// to this client. A bundle that fails decryption, is mis-addressed, or
// does not open its owner's broadcast commitments is NOT an error: it
// yields a Complaint attributing the bad share to its owner, and the
// protocol continues without that owner. Only a server-side routing bug
// (a bundle for a different holder) is a hard error.
func (c *Client) ReceiveShares(shares []RoutedShare) ([]Complaint, error) {
	idx := c.rosterIndex()
	if idx < 0 {
		return nil, fmt.Errorf("secagg: ReceiveShares before roster")
	}
	wantX := uint64(idx + 1)
	var complaints []Complaint
	complain := func(owner int, reason string) {
		complaints = append(complaints, Complaint{By: c.id, Against: owner, Reason: reason})
	}
	for _, rs := range shares {
		if rs.Holder != c.id {
			return nil, fmt.Errorf("secagg: share for holder %d routed to %d", rs.Holder, c.id)
		}
		shared, err := c.pairwiseC(rs.Owner)
		if err != nil {
			complain(rs.Owner, "unknown owner: "+err.Error())
			continue
		}
		bundle, err := decryptBundle(shared, rs.CT)
		if err != nil {
			complain(rs.Owner, "undecryptable bundle: "+err.Error())
			continue
		}
		if bundle.Owner != rs.Owner || bundle.Holder != c.id {
			complain(rs.Owner, fmt.Sprintf("bundle metadata mismatch (owner %d/%d, holder %d)",
				bundle.Owner, rs.Owner, bundle.Holder))
			continue
		}
		if bundle.BShare.X != wantX || bundle.SKShare.X != wantX {
			complain(rs.Owner, fmt.Sprintf("share evaluation point %d/%d, want %d",
				bundle.BShare.X, bundle.SKShare.X, wantX))
			continue
		}
		if com, ok := c.commits[rs.Owner]; ok {
			if !verifyChunked(rs.Owner, kindB, bundle.BShare, bundle.BBlind, com.B[idx]) ||
				!verifyChunked(rs.Owner, kindSK, bundle.SKShare, bundle.SKBlind, com.SK[idx]) {
				complain(rs.Owner, "share does not open broadcast commitment")
				continue
			}
		} else if c.commits != nil {
			// Commitments were broadcast but this owner's are missing or
			// malformed: its shares are unverifiable, so it cannot be
			// allowed to reach reconstruction.
			complain(rs.Owner, "no valid commitments broadcast")
			continue
		}
		c.held[bundle.Owner] = bundle
	}
	return complaints, nil
}

// ReceiveMaskSet installs the server's broadcast of the devices still in
// the protocol after the share round (the set U1.5: shares delivered and
// unblamed). Pairwise masks are computed over exactly this set.
func (c *Client) ReceiveMaskSet(ids []int) error {
	if c.roster == nil {
		return fmt.Errorf("secagg: ReceiveMaskSet before roster")
	}
	if len(ids) < c.cfg.T {
		return fmt.Errorf("secagg: mask set of %d below threshold %d", len(ids), c.cfg.T)
	}
	set := make(map[int]bool, len(ids))
	for _, id := range ids {
		if _, ok := c.roster[id]; !ok {
			return fmt.Errorf("secagg: mask set member %d not in roster", id)
		}
		set[id] = true
	}
	if !set[c.id] {
		return fmt.Errorf("secagg: excluded from mask set (%d)", c.id)
	}
	c.maskSet = set
	return nil
}

// inMaskSet reports whether id participates in masking (full roster when
// no mask set was broadcast).
func (c *Client) inMaskSet(id int) bool {
	if c.maskSet == nil {
		return true
	}
	return c.maskSet[id]
}

// MaskedInput computes the Round-2 masked vector for input x:
// Encode(x) + PRG(b_u) + Σ_{v>u} PRG(s_uv) − Σ_{v<u} PRG(s_uv).
func (c *Client) MaskedInput(x []float64) ([]uint64, error) {
	if c.roster == nil {
		return nil, fmt.Errorf("secagg: MaskedInput before roster")
	}
	if len(x) != c.cfg.VectorLen {
		return nil, fmt.Errorf("secagg: input length %d, want %d", len(x), c.cfg.VectorLen)
	}
	y := Encode(x)
	// Personal mask, streamed straight into the output.
	prgApply(seedKey(c.seed), y, false)
	// Pairwise masks over the mask set (the full roster U1 when none was
	// broadcast): a device excluded before this round leaves no residual
	// mask for the server to reconstruct. The ECDH + PRG expansions
	// dominate device-side cost; fan them across the worker pool, each
	// worker folding masks into a private accumulator. ECDH on the
	// (immutable) s-key and roster reads are safe concurrently.
	peers := make([]int, 0, len(c.rosterIDs)-1)
	for _, v := range c.rosterIDs {
		if v != c.id && c.inMaskSet(v) {
			peers = append(peers, v)
		}
	}
	err := parallelMasks(y, len(peers), func(i int, acc []uint64) error {
		v := peers[i]
		seedUV, err := c.pairwiseS(v)
		if err != nil {
			return err
		}
		prgApply(seedUV, acc, c.id > v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return y, nil
}

// Unmask produces the Round-3 response given the server's survivor set U2.
// It refuses to reveal when the survivor set is below threshold (which
// would let a malicious server unmask an individual) and never reveals both
// share kinds for one owner.
func (c *Client) Unmask(survivors []int) (*UnmaskResponse, error) {
	if c.roster == nil {
		return nil, fmt.Errorf("secagg: Unmask before roster")
	}
	if len(survivors) < c.cfg.T {
		return nil, fmt.Errorf("secagg: refusing to unmask with %d < T=%d survivors", len(survivors), c.cfg.T)
	}
	surv := make(map[int]bool, len(survivors))
	for _, id := range survivors {
		if _, ok := c.roster[id]; !ok {
			return nil, fmt.Errorf("secagg: survivor %d not in roster", id)
		}
		if !c.inMaskSet(id) {
			return nil, fmt.Errorf("secagg: claimed survivor %d is not in the mask set", id)
		}
		surv[id] = true
	}
	resp := &UnmaskResponse{From: c.id}
	for _, owner := range c.rosterIDs {
		if !c.inMaskSet(owner) {
			// Excluded before masking: it contributed no masks, so neither
			// of its secrets is needed — and revealing its masking key
			// gratuitously would erode the privacy margin.
			continue
		}
		bundle, ok := c.held[owner]
		if !ok {
			continue // never received a share from this owner
		}
		os := OwnerShare{Owner: owner}
		if surv[owner] {
			os.Share, os.Blinder = bundle.BShare, bundle.BBlind
			if c.forge {
				os.Share.Ys[0] = field.Add(os.Share.Ys[0], 1)
			}
			resp.BShares = append(resp.BShares, os)
		} else {
			os.Share, os.Blinder = bundle.SKShare, bundle.SKBlind
			if c.forge {
				os.Share.Ys[0] = field.Add(os.Share.Ys[0], 1)
			}
			resp.SKShares = append(resp.SKShares, os)
		}
	}
	return resp, nil
}

// deriveC computes the share-encryption secret with peer (cache-free; safe
// to call from workers).
func (c *Client) deriveC(peer int) ([]byte, error) {
	a, ok := c.roster[peer]
	if !ok {
		return nil, fmt.Errorf("secagg: unknown peer %d", peer)
	}
	pub, err := ecdh.X25519().NewPublicKey(a.CPub)
	if err != nil {
		return nil, fmt.Errorf("secagg: peer %d cpub: %w", peer, err)
	}
	return c.cKey.ECDH(pub)
}

// pairwiseC returns the share-encryption secret with peer, deriving and
// caching it on first use.
func (c *Client) pairwiseC(peer int) ([]byte, error) {
	if s, ok := c.cShared[peer]; ok {
		return s, nil
	}
	s, err := c.deriveC(peer)
	if err != nil {
		return nil, err
	}
	c.cShared[peer] = s
	return s, nil
}

// pairwiseS derives the masking PRG seed with peer from the s-keypair.
func (c *Client) pairwiseS(peer int) ([]byte, error) {
	a, ok := c.roster[peer]
	if !ok {
		return nil, fmt.Errorf("secagg: unknown peer %d", peer)
	}
	pub, err := ecdh.X25519().NewPublicKey(a.SPub)
	if err != nil {
		return nil, fmt.Errorf("secagg: peer %d spub: %w", peer, err)
	}
	shared, err := c.sKey.ECDH(pub)
	if err != nil {
		return nil, err
	}
	return pairwiseSeed(shared, 'p'), nil
}

// seedKey domain-separates the personal seed before use as a PRG key.
func seedKey(seed []byte) []byte {
	return pairwiseSeed(seed, 'b')
}
