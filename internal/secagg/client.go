package secagg

import (
	"crypto/ecdh"
	"crypto/rand"
	"fmt"
	"io"
	"sort"
)

// KeyAdvert is a device's Round-0 message: its identity and two X25519
// public keys (CPub for share encryption, SPub for pairwise masking).
type KeyAdvert struct {
	ID   int
	CPub []byte
	SPub []byte
}

// RoutedShare is an encrypted Round-1 share bundle in transit: the server
// routes it to its holder, who needs Owner to derive the decryption key.
type RoutedShare struct {
	Owner  int
	Holder int
	CT     []byte
}

// OwnerShare is one revealed share in a Round-3 unmask response.
type OwnerShare struct {
	Owner int
	Share chunkedShare
}

// UnmaskResponse is a device's Round-3 message: shares of the personal mask
// seeds of survivors and of the masking secret keys of dropped devices.
// A correct client never reveals both kinds for the same owner.
type UnmaskResponse struct {
	From     int
	BShares  []OwnerShare
	SKShares []OwnerShare
}

// Client is one device's protocol state machine. IDs are 1-based and must
// be unique within the instance.
type Client struct {
	id  int
	cfg Config

	cKey *ecdh.PrivateKey // share-encryption keypair
	sKey *ecdh.PrivateKey // masking keypair
	seed []byte           // personal mask seed b_u

	roster    map[int]KeyAdvert
	rosterIDs []int

	held map[int]*shareBundle // shares I hold, keyed by owner

	// cShared caches the share-encryption ECDH secret per peer: the secret
	// is symmetric, so the value derived to encrypt an outgoing bundle in
	// Round 1 decrypts the incoming bundle from the same peer — computing
	// it twice would double the client's dominant X25519 cost.
	cShared map[int][]byte
}

// NewClient creates a device participant with fresh keys.
func NewClient(id int, cfg Config) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if id < 1 {
		return nil, fmt.Errorf("secagg: client id must be ≥ 1, got %d", id)
	}
	curve := ecdh.X25519()
	cKey, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secagg: keygen: %w", err)
	}
	sKey, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("secagg: keygen: %w", err)
	}
	seed := make([]byte, secretByteLen)
	if _, err := io.ReadFull(rand.Reader, seed); err != nil {
		return nil, fmt.Errorf("secagg: seed: %w", err)
	}
	return &Client{
		id: id, cfg: cfg, cKey: cKey, sKey: sKey, seed: seed,
		held:    make(map[int]*shareBundle),
		cShared: make(map[int][]byte),
	}, nil
}

// ID returns the participant id.
func (c *Client) ID() int { return c.id }

// Advertise returns the Round-0 key advertisement.
func (c *Client) Advertise() KeyAdvert {
	return KeyAdvert{ID: c.id, CPub: c.cKey.PublicKey().Bytes(), SPub: c.sKey.PublicKey().Bytes()}
}

// ReceiveRoster installs the server's broadcast of Round-0 adverts (the set
// U1). The roster must contain this client and at least T participants.
func (c *Client) ReceiveRoster(roster []KeyAdvert) error {
	if len(roster) < c.cfg.T {
		return fmt.Errorf("secagg: roster of %d below threshold %d", len(roster), c.cfg.T)
	}
	m := make(map[int]KeyAdvert, len(roster))
	ids := make([]int, 0, len(roster))
	for _, a := range roster {
		if _, dup := m[a.ID]; dup {
			return fmt.Errorf("secagg: duplicate id %d in roster", a.ID)
		}
		m[a.ID] = a
		ids = append(ids, a.ID)
	}
	if _, ok := m[c.id]; !ok {
		return fmt.Errorf("secagg: roster does not include self (%d)", c.id)
	}
	sort.Ints(ids)
	c.roster = m
	c.rosterIDs = ids
	return nil
}

// ShareKeys produces the Round-1 encrypted share bundles, one per roster
// member (including one to self, which the server routes back).
func (c *Client) ShareKeys() ([]RoutedShare, error) {
	if c.roster == nil {
		return nil, fmt.Errorf("secagg: ShareKeys before roster")
	}
	n := len(c.rosterIDs)
	bShares, err := splitBytes(c.seed, n, c.cfg.T, rand.Reader)
	if err != nil {
		return nil, err
	}
	skShares, err := splitBytes(c.sKey.Bytes(), n, c.cfg.T, rand.Reader)
	if err != nil {
		return nil, err
	}
	out := make([]RoutedShare, n)
	secrets := make([][]byte, n)
	// One ECDH + AES-GCM seal per roster member: independent work, fanned
	// across the worker pool. Workers write only their own slots; the
	// secret cache (a map) is filled serially afterwards.
	err = parallelFor(n, func(i int) error {
		holder := c.rosterIDs[i]
		bundle := &shareBundle{Owner: c.id, Holder: holder, BShare: bShares[i], SKShare: skShares[i]}
		// Re-key share X coordinates to the holder id so reconstruction uses
		// consistent evaluation points across owners.
		bundle.BShare.X = uint64(i + 1)
		bundle.SKShare.X = uint64(i + 1)
		shared, err := c.deriveC(holder)
		if err != nil {
			return err
		}
		secrets[i] = shared
		ct, err := encryptBundle(shared, bundle)
		if err != nil {
			return err
		}
		out[i] = RoutedShare{Owner: c.id, Holder: holder, CT: ct}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, holder := range c.rosterIDs {
		c.cShared[holder] = secrets[i]
	}
	return out, nil
}

// ReceiveShares decrypts and stores the Round-1 bundles routed to this
// client. Bundles that fail authentication are rejected.
func (c *Client) ReceiveShares(shares []RoutedShare) error {
	for _, rs := range shares {
		if rs.Holder != c.id {
			return fmt.Errorf("secagg: share for holder %d routed to %d", rs.Holder, c.id)
		}
		shared, err := c.pairwiseC(rs.Owner)
		if err != nil {
			return err
		}
		bundle, err := decryptBundle(shared, rs.CT)
		if err != nil {
			return fmt.Errorf("secagg: share from %d: %w", rs.Owner, err)
		}
		if bundle.Owner != rs.Owner || bundle.Holder != c.id {
			return fmt.Errorf("secagg: bundle metadata mismatch (owner %d/%d)", bundle.Owner, rs.Owner)
		}
		c.held[bundle.Owner] = bundle
	}
	return nil
}

// MaskedInput computes the Round-2 masked vector for input x:
// Encode(x) + PRG(b_u) + Σ_{v>u} PRG(s_uv) − Σ_{v<u} PRG(s_uv).
func (c *Client) MaskedInput(x []float64) ([]uint64, error) {
	if c.roster == nil {
		return nil, fmt.Errorf("secagg: MaskedInput before roster")
	}
	if len(x) != c.cfg.VectorLen {
		return nil, fmt.Errorf("secagg: input length %d, want %d", len(x), c.cfg.VectorLen)
	}
	y := Encode(x)
	// Personal mask, streamed straight into the output.
	prgApply(seedKey(c.seed), y, false)
	// Pairwise masks over the full roster U1. The N−1 ECDH + PRG
	// expansions dominate device-side cost; fan them across the worker
	// pool, each worker folding masks into a private accumulator. ECDH on
	// the (immutable) s-key and roster reads are safe concurrently.
	peers := make([]int, 0, len(c.rosterIDs)-1)
	for _, v := range c.rosterIDs {
		if v != c.id {
			peers = append(peers, v)
		}
	}
	err := parallelMasks(y, len(peers), func(i int, acc []uint64) error {
		v := peers[i]
		seedUV, err := c.pairwiseS(v)
		if err != nil {
			return err
		}
		prgApply(seedUV, acc, c.id > v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return y, nil
}

// Unmask produces the Round-3 response given the server's survivor set U2.
// It refuses to reveal when the survivor set is below threshold (which
// would let a malicious server unmask an individual) and never reveals both
// share kinds for one owner.
func (c *Client) Unmask(survivors []int) (*UnmaskResponse, error) {
	if c.roster == nil {
		return nil, fmt.Errorf("secagg: Unmask before roster")
	}
	if len(survivors) < c.cfg.T {
		return nil, fmt.Errorf("secagg: refusing to unmask with %d < T=%d survivors", len(survivors), c.cfg.T)
	}
	surv := make(map[int]bool, len(survivors))
	for _, id := range survivors {
		if _, ok := c.roster[id]; !ok {
			return nil, fmt.Errorf("secagg: survivor %d not in roster", id)
		}
		surv[id] = true
	}
	resp := &UnmaskResponse{From: c.id}
	for _, owner := range c.rosterIDs {
		bundle, ok := c.held[owner]
		if !ok {
			continue // never received a share from this owner
		}
		if surv[owner] {
			resp.BShares = append(resp.BShares, OwnerShare{Owner: owner, Share: bundle.BShare})
		} else {
			resp.SKShares = append(resp.SKShares, OwnerShare{Owner: owner, Share: bundle.SKShare})
		}
	}
	return resp, nil
}

// deriveC computes the share-encryption secret with peer (cache-free; safe
// to call from workers).
func (c *Client) deriveC(peer int) ([]byte, error) {
	a, ok := c.roster[peer]
	if !ok {
		return nil, fmt.Errorf("secagg: unknown peer %d", peer)
	}
	pub, err := ecdh.X25519().NewPublicKey(a.CPub)
	if err != nil {
		return nil, fmt.Errorf("secagg: peer %d cpub: %w", peer, err)
	}
	return c.cKey.ECDH(pub)
}

// pairwiseC returns the share-encryption secret with peer, deriving and
// caching it on first use.
func (c *Client) pairwiseC(peer int) ([]byte, error) {
	if s, ok := c.cShared[peer]; ok {
		return s, nil
	}
	s, err := c.deriveC(peer)
	if err != nil {
		return nil, err
	}
	c.cShared[peer] = s
	return s, nil
}

// pairwiseS derives the masking PRG seed with peer from the s-keypair.
func (c *Client) pairwiseS(peer int) ([]byte, error) {
	a, ok := c.roster[peer]
	if !ok {
		return nil, fmt.Errorf("secagg: unknown peer %d", peer)
	}
	pub, err := ecdh.X25519().NewPublicKey(a.SPub)
	if err != nil {
		return nil, fmt.Errorf("secagg: peer %d spub: %w", peer, err)
	}
	shared, err := c.sKey.ECDH(pub)
	if err != nil {
		return nil, err
	}
	return pairwiseSeed(shared, 'p'), nil
}

// seedKey domain-separates the personal seed before use as a PRG key.
func seedKey(seed []byte) []byte {
	return pairwiseSeed(seed, 'b')
}
