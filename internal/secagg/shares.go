package secagg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/field"
)

// 32-byte secrets (X25519 private keys, PRG seeds) are shared through the
// 61-bit field by chunking into 48-bit pieces: 6 chunks cover 288 ≥ 256 bits.
const (
	secretChunks  = 6
	chunkBits     = 48
	chunkBytes    = chunkBits / 8
	secretByteLen = 32
)

// chunkedShare is one participant's share of a 32-byte secret.
type chunkedShare struct {
	X  uint64
	Ys [secretChunks]uint64
}

// splitBytes Shamir-shares a 32-byte secret into n chunked shares with
// threshold t.
func splitBytes(secret []byte, n, t int, rng io.Reader) ([]chunkedShare, error) {
	if len(secret) != secretByteLen {
		return nil, fmt.Errorf("secagg: secret must be %d bytes, got %d", secretByteLen, len(secret))
	}
	padded := make([]byte, secretChunks*chunkBytes)
	copy(padded, secret)
	out := make([]chunkedShare, n)
	for c := 0; c < secretChunks; c++ {
		chunk := uint64(0)
		for b := 0; b < chunkBytes; b++ {
			chunk = chunk<<8 | uint64(padded[c*chunkBytes+b])
		}
		shares, err := field.Split(chunk, n, t, rng)
		if err != nil {
			return nil, err
		}
		for i := range out {
			out[i].X = shares[i].X
			out[i].Ys[c] = shares[i].Y
		}
	}
	return out, nil
}

// reconstructBytes inverts splitBytes given at least t shares.
func reconstructBytes(shares []chunkedShare, t int) ([]byte, error) {
	if len(shares) < t {
		return nil, fmt.Errorf("secagg: need %d shares, have %d", t, len(shares))
	}
	padded := make([]byte, secretChunks*chunkBytes)
	fs := make([]field.Share, len(shares))
	for c := 0; c < secretChunks; c++ {
		for i, s := range shares {
			fs[i] = field.Share{X: s.X, Y: s.Ys[c]}
		}
		chunk, err := field.Reconstruct(fs, t)
		if err != nil {
			return nil, err
		}
		for b := chunkBytes - 1; b >= 0; b-- {
			padded[c*chunkBytes+b] = byte(chunk)
			chunk >>= 8
		}
	}
	return padded[:secretByteLen], nil
}

// shareBundle is what device owner sends to device holder in Round 1: the
// holder's shares of the owner's mask seed b and masking secret key, plus
// the blinders that open the owner's broadcast commitments to those
// shares. The blinders ride inside the AES-GCM envelope: only the holder
// can open the commitment, so the broadcast stays hiding, yet the holder
// (and, at unmask time, the server) can verify exactly what it reveals.
type shareBundle struct {
	Owner   int
	Holder  int
	BShare  chunkedShare
	SKShare chunkedShare
	BBlind  []byte
	SKBlind []byte
}

const bundleWireLen = 8 + 8 + 2*(8+secretChunks*8) + 2*field.BlinderLen

func (b *shareBundle) marshal() []byte {
	buf := make([]byte, 0, bundleWireLen)
	buf = binary.BigEndian.AppendUint64(buf, uint64(b.Owner))
	buf = binary.BigEndian.AppendUint64(buf, uint64(b.Holder))
	for _, cs := range []chunkedShare{b.BShare, b.SKShare} {
		buf = binary.BigEndian.AppendUint64(buf, cs.X)
		for _, y := range cs.Ys {
			buf = binary.BigEndian.AppendUint64(buf, y)
		}
	}
	for _, bl := range [][]byte{b.BBlind, b.SKBlind} {
		var fixed [field.BlinderLen]byte
		copy(fixed[:], bl)
		buf = append(buf, fixed[:]...)
	}
	return buf
}

func unmarshalBundle(buf []byte) (*shareBundle, error) {
	if len(buf) != bundleWireLen {
		return nil, fmt.Errorf("secagg: bundle length %d, want %d", len(buf), bundleWireLen)
	}
	b := &shareBundle{
		Owner:  int(binary.BigEndian.Uint64(buf)),
		Holder: int(binary.BigEndian.Uint64(buf[8:])),
	}
	off := 16
	for _, cs := range []*chunkedShare{&b.BShare, &b.SKShare} {
		cs.X = binary.BigEndian.Uint64(buf[off:])
		off += 8
		for i := range cs.Ys {
			cs.Ys[i] = binary.BigEndian.Uint64(buf[off:])
			off += 8
		}
	}
	b.BBlind = append([]byte(nil), buf[off:off+field.BlinderLen]...)
	off += field.BlinderLen
	b.SKBlind = append([]byte(nil), buf[off:off+field.BlinderLen]...)
	return b, nil
}

// encryptBundle seals a bundle with AES-GCM under the pairwise key derived
// from an ECDH shared secret.
func encryptBundle(shared []byte, b *shareBundle) ([]byte, error) {
	key := sha256.Sum256(append([]byte("saggenc"), shared...))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, err
	}
	return append(nonce, gcm.Seal(nil, nonce, b.marshal(), nil)...), nil
}

// decryptBundle opens a sealed bundle.
func decryptBundle(shared []byte, ct []byte) (*shareBundle, error) {
	key := sha256.Sum256(append([]byte("saggenc"), shared...))
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	if len(ct) < gcm.NonceSize() {
		return nil, fmt.Errorf("secagg: ciphertext too short")
	}
	pt, err := gcm.Open(nil, ct[:gcm.NonceSize()], ct[gcm.NonceSize():], nil)
	if err != nil {
		return nil, fmt.Errorf("secagg: decrypt: %w", err)
	}
	return unmarshalBundle(pt)
}
