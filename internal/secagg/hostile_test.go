package secagg

import (
	"strings"
	"testing"
)

// hostileHarness runs an honest instance — commitments, complaints, mask
// set and all — up to the survivor announcement, with dropAfterShare
// devices vanishing before the masked-input round. It returns the live
// server, the clients, and the survivor set, leaving the unmask round to
// the test so it can tamper with responses.
func hostileHarness(t *testing.T, cfg Config, n int, dropAfterShare []int) (*Server, map[int]*Client, []int) {
	t.Helper()
	dropped := toSet(dropAfterShare)
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clients := make(map[int]*Client, n)
	for id := 1; id <= n; id++ {
		c, err := NewClient(id, cfg)
		if err != nil {
			t.Fatal(err)
		}
		clients[id] = c
		if err := srv.RegisterAdvert(c.Advertise()); err != nil {
			t.Fatal(err)
		}
	}
	roster, err := srv.Roster()
	if err != nil {
		t.Fatal(err)
	}
	var all []RoutedShare
	for _, c := range clients {
		if err := c.ReceiveRoster(roster); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range clients {
		rs, err := c.ShareKeys()
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, rs...)
		sc, err := c.Commitments()
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.RegisterCommitments(sc); err != nil {
			t.Fatal(err)
		}
	}
	commits := srv.Commitments()
	for _, c := range clients {
		if err := c.ReceiveCommitments(commits); err != nil {
			t.Fatal(err)
		}
	}
	for holder, rs := range srv.RouteShares(all) {
		complaints, err := clients[holder].ReceiveShares(rs)
		if err != nil {
			t.Fatal(err)
		}
		if len(complaints) != 0 {
			t.Fatalf("honest shares drew complaints: %v", complaints)
		}
	}
	maskIDs, err := srv.MaskSet()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range maskIDs {
		if err := clients[id].ReceiveMaskSet(maskIDs); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range maskIDs {
		if dropped[id] {
			continue
		}
		in := make([]float64, cfg.VectorLen)
		for i := range in {
			in[i] = float64(id)
		}
		y, err := clients[id].MaskedInput(in)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.AddMasked(id, y); err != nil {
			t.Fatal(err)
		}
	}
	survivors, err := srv.Survivors()
	if err != nil {
		t.Fatal(err)
	}
	return srv, clients, survivors
}

// TestServerRejectsHostileUnmaskResponses throws every forgery the Round-3
// surface admits at the server: each is rejected with an error naming the
// offending device, and after the dust settles the honest responders'
// shares still reconstruct the correct sum — hostile input can force an
// attributed rejection but never a wrong aggregate.
func TestServerRejectsHostileUnmaskResponses(t *testing.T) {
	cfg := Config{N: 6, T: 3, VectorLen: 2}
	srv, clients, survivors := hostileHarness(t, cfg, 6, []int{2})

	honest := func(id int) *UnmaskResponse {
		r, err := clients[id].Unmask(survivors)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	cases := []struct {
		name string
		resp func() *UnmaskResponse
		want string // substring the attributed error must carry
	}{
		{"unknown responder", func() *UnmaskResponse {
			r := honest(1)
			r.From = 99
			return r
		}, "unknown device 99"},
		{"duplicate owner in response", func() *UnmaskResponse {
			r := honest(1)
			r.BShares = append(r.BShares, r.BShares[0])
			return r
		}, "duplicate share for owner"},
		{"share for non-roster device", func() *UnmaskResponse {
			r := honest(1)
			r.BShares[0].Owner = 42
			return r
		}, "non-roster device 42"},
		{"stolen response (wrong evaluation point)", func() *UnmaskResponse {
			// Device 3 replays device 1's shares as its own: every share
			// sits at evaluation point 1, not 3.
			r := honest(1)
			r.From = 3
			return r
		}, "evaluation point"},
		{"forged share value", func() *UnmaskResponse {
			r := honest(1)
			r.BShares[0].Share.Ys[0]++
			return r
		}, "forged share"},
		{"forged blinder", func() *UnmaskResponse {
			r := honest(1)
			r.BShares[0].Blinder = make([]byte, len(r.BShares[0].Blinder))
			return r
		}, "forged share"},
		{"masking-key share for a survivor", func() *UnmaskResponse {
			r := honest(1)
			os := r.SKShares[0] // dropped device 2's key share
			os.Owner = 4       // relabeled as survivor 4
			r.SKShares[0] = os
			r.BShares = nil // avoid tripping the duplicate-owner check first
			return r
		}, "refusing to unmask"},
		{"personal-seed share for a dropped device", func() *UnmaskResponse {
			r := honest(1)
			os := r.BShares[0]
			os.Owner = 2 // device 2 dropped; its seed must stay sealed
			r.BShares = append(r.BShares, os)
			return r
		}, "dropped device 2"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := srv.AddUnmaskResponse(tc.resp())
			if err == nil {
				t.Fatal("hostile response must be rejected")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q must attribute via %q", err, tc.want)
			}
		})
	}
	if srv.Responses() != 0 {
		t.Fatalf("%d hostile responses admitted", srv.Responses())
	}

	// Sub-threshold reconstruction attempt: two honest responses < T.
	for _, id := range []int{1, 3} {
		if err := srv.AddUnmaskResponse(honest(id)); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.AddUnmaskResponse(honest(1)); err == nil ||
		!strings.Contains(err.Error(), "duplicate unmask response") {
		t.Fatalf("duplicate response must be rejected, got %v", err)
	}
	if _, err := srv.Sum(); err == nil {
		t.Fatal("sub-threshold reconstruction must fail")
	}

	// One more honest responder reaches T and the sum comes out right —
	// none of the rejected forgeries above left a trace in the aggregate.
	if err := srv.AddUnmaskResponse(honest(4)); err != nil {
		t.Fatal(err)
	}
	sum, err := srv.Sum()
	if err != nil {
		t.Fatal(err)
	}
	got := Decode(sum)
	want := 0.0
	for _, id := range survivors {
		want += float64(id)
	}
	for i, v := range got {
		if v < want-1e-4 || v > want+1e-4 {
			t.Fatalf("sum[%d] = %v, want %v", i, v, want)
		}
	}
}

// TestServerRejectsHostileCommitmentsAndComplaints hardens the Round-1
// broadcast surface: malformed or mistimed commitment sets and complaints
// naming strangers are rejected with attributed errors.
func TestServerRejectsHostileCommitmentsAndComplaints(t *testing.T) {
	cfg := Config{N: 3, T: 2, VectorLen: 1}
	srv, _ := NewServer(cfg)
	var clients []*Client
	for id := 1; id <= 3; id++ {
		c, _ := NewClient(id, cfg)
		clients = append(clients, c)
		if err := srv.RegisterAdvert(c.Advertise()); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.RegisterCommitments(ShareCommitments{Owner: 1}); err == nil {
		t.Fatal("commitments before roster freeze must be rejected")
	}
	roster, err := srv.Roster()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range clients {
		if err := c.ReceiveRoster(roster); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.RegisterCommitments(ShareCommitments{Owner: 99}); err == nil {
		t.Fatal("commitments from unknown device must be rejected")
	}
	if err := srv.RegisterCommitments(ShareCommitments{Owner: 1}); err == nil {
		t.Fatal("short commitment set must be rejected")
	}
	if why, ok := srv.Blamed()[1]; !ok || !strings.Contains(why, "cover") {
		t.Fatalf("malformed commitments must blame the owner: %v", srv.Blamed())
	}
	if err := srv.RegisterComplaint(Complaint{By: 99, Against: 2}); err == nil {
		t.Fatal("complaint from unknown device must be rejected")
	}
	if err := srv.RegisterComplaint(Complaint{By: 2, Against: 99}); err == nil {
		t.Fatal("complaint against unknown device must be rejected")
	}

	// Devices 2 and 3 register honestly; blamed device 1 is excluded and
	// the mask set still freezes at T.
	for _, c := range clients[1:] {
		if _, err := c.ShareKeys(); err != nil {
			t.Fatal(err)
		}
		sc, err := c.Commitments()
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.RegisterCommitments(sc); err != nil {
			t.Fatal(err)
		}
	}
	maskIDs, err := srv.MaskSet()
	if err != nil {
		t.Fatal(err)
	}
	if len(maskIDs) != 2 || maskIDs[0] != 2 || maskIDs[1] != 3 {
		t.Fatalf("mask set = %v, want [2 3]", maskIDs)
	}
	if err := srv.RegisterComplaint(Complaint{By: 2, Against: 3}); err == nil {
		t.Fatal("complaint after mask-set freeze must be rejected")
	}
	if err := srv.AddMasked(1, make([]uint64, 1)); err == nil ||
		!strings.Contains(err.Error(), "not in the mask set") {
		t.Fatalf("masked input from excluded device must be rejected: %v", err)
	}
}
