// Package secagg implements the four-round Secure Aggregation protocol of
// Bonawitz et al. (CCS 2017) as deployed in the FL system (Sec. 6): the
// server learns only the sum of device update vectors, never an individual
// update, and the protocol tolerates devices dropping out between rounds.
//
// Protocol sketch (server mediates everything):
//
//	Round 0  AdvertiseKeys   — each device sends two X25519 public keys:
//	                           cPK (share encryption) and sPK (masking).
//	Round 1  ShareKeys       — each device Shamir-shares its masking secret
//	                           key and a personal mask seed b_u, encrypting
//	                           the shares pairwise (AES-GCM under ECDH keys).
//	                           (Rounds 0–1 are the paper's "Prepare" phase.)
//	Round 2  MaskedInput     — devices upload x_u + PRG(b_u)
//	                           + Σ_{v>u} PRG(s_uv) − Σ_{v<u} PRG(s_uv),
//	                           where s_uv is the pairwise ECDH secret.
//	                           (The paper's "Commit" phase.)
//	Round 3  Unmask          — survivors reveal shares: b_u shares for
//	                           surviving u, masking-key shares for dropped u.
//	                           The server reconstructs and removes the masks.
//	                           (The paper's "Finalization" phase.)
//
// Updates are real vectors; they are carried in GF(2^61−1) via fixed-point
// encoding (Encode/Decode). All masks cancel exactly in the field.
package secagg

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/field"
)

// Config describes one Secure Aggregation instance. The FL task defines the
// group size (the parameter k of Sec. 6); the aggregator runs one instance
// per group of at least that size.
type Config struct {
	// N is the number of participants in this instance.
	N int
	// T is the reconstruction threshold: the protocol completes iff at
	// least T devices survive to the finalization round, and fewer than T
	// colluding parties learn nothing.
	T int
	// VectorLen is the length of each device's input vector.
	VectorLen int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("secagg: need at least 2 participants, got %d", c.N)
	}
	if c.T < 1 || c.T > c.N {
		return fmt.Errorf("secagg: threshold %d outside [1,%d]", c.T, c.N)
	}
	if c.VectorLen <= 0 {
		return fmt.Errorf("secagg: non-positive vector length %d", c.VectorLen)
	}
	return nil
}

// GroupSpans partitions n items (indexes 0..n-1) into contiguous
// aggregation groups of at least groupSize by folding the remainder into
// the last group, so groups hold groupSize..2·groupSize−1 items and no
// group falls below groupSize — the "no secure group below 2" invariant
// shared by the FL server and federated analytics. Spans are half-open
// [start, end) pairs. When n < groupSize the single span is undersized;
// callers must reject it or refuse it downstream.
func GroupSpans(n, groupSize int) [][2]int {
	if n <= 0 || groupSize <= 0 {
		return nil
	}
	num := n / groupSize
	if num == 0 {
		num = 1
	}
	spans := make([][2]int, num)
	for g := range spans {
		spans[g] = [2]int{g * groupSize, (g + 1) * groupSize}
	}
	spans[num-1][1] = n
	return spans
}

// FixedPointScale is the fixed-point scale for Encode/Decode: values are
// quantized to 1/FixedPointScale resolution.
const FixedPointScale = 1 << 20

// Encode maps a real vector into field elements using fixed-point, two's
// complement style: negative values wrap mod P. The decoded sum is correct
// as long as |Σ x_i|·scale < P/2, comfortably true for model updates.
func Encode(x []float64) []uint64 {
	out := make([]uint64, len(x))
	for i, v := range x {
		q := int64(math.Round(v * FixedPointScale))
		if q >= 0 {
			out[i] = field.Reduce(uint64(q))
		} else {
			out[i] = field.Sub(0, field.Reduce(uint64(-q)))
		}
	}
	return out
}

// Decode inverts Encode on an aggregate, mapping field elements in the top
// half of the field back to negative reals.
func Decode(y []uint64) []float64 {
	out := make([]float64, len(y))
	half := field.P / 2
	for i, v := range y {
		if v > half {
			out[i] = -float64(field.P-v) / FixedPointScale
		} else {
			out[i] = float64(v) / FixedPointScale
		}
	}
	return out
}

// prgChunkElems bounds the transient keystream buffer of prgApply: masks of
// any length stream through one fixed 4 KiB chunk.
const prgChunkElems = 512

// zeroChunk is a shared all-zero XOR source; XORKeyStream against it writes
// raw keystream without first clearing the destination.
var zeroChunk [8 * prgChunkElems]byte

// prgApply expands a 32-byte seed with AES-256-CTR and adds (sub=false) or
// subtracts (sub=true) the resulting field elements into dst, streaming in
// fixed-size chunks. Both the device and the server (after reconstruction)
// must produce identical streams, which CTR over a zero IV guarantees.
// Unlike materializing the whole pad, this keeps the transient footprint at
// one chunk regardless of VectorLen, so mask removal over large vectors
// stays out of the allocator.
func prgApply(seed []byte, dst []uint64, sub bool) {
	if len(seed) != 32 {
		panic(fmt.Sprintf("secagg: prg seed must be 32 bytes, got %d", len(seed)))
	}
	block, err := aes.NewCipher(seed)
	if err != nil {
		panic("secagg: aes: " + err.Error()) // impossible for 32-byte key
	}
	var iv [aes.BlockSize]byte
	stream := cipher.NewCTR(block, iv[:])
	bufLen := len(dst)
	if bufLen > prgChunkElems {
		bufLen = prgChunkElems
	}
	buf := make([]byte, 8*bufLen)
	for off := 0; off < len(dst); off += prgChunkElems {
		n := len(dst) - off
		if n > prgChunkElems {
			n = prgChunkElems
		}
		stream.XORKeyStream(buf[:8*n], zeroChunk[:8*n])
		if sub {
			for i := 0; i < n; i++ {
				dst[off+i] = field.Sub(dst[off+i], field.Reduce(binary.BigEndian.Uint64(buf[8*i:])))
			}
		} else {
			for i := 0; i < n; i++ {
				dst[off+i] = field.Add(dst[off+i], field.Reduce(binary.BigEndian.Uint64(buf[8*i:])))
			}
		}
	}
}

// prg expands a seed into length fresh field elements (prgApply onto zero).
func prg(seed []byte, length int) []uint64 {
	out := make([]uint64, length)
	prgApply(seed, out, false)
	return out
}

// pairwiseSeed hashes an ECDH shared secret into a PRG seed with a domain
// separation tag.
func pairwiseSeed(shared []byte, tag byte) []byte {
	h := sha256.New()
	h.Write([]byte{'s', 'a', 'g', 'g', tag})
	h.Write(shared)
	return h.Sum(nil)
}
